//! Integration tests of the streaming factorization tier
//! ([`ata::FactoredGram`]): under any interleaving of pushes, scaled
//! pushes, decays and retractions, the live factor must answer queries
//! exactly like a from-scratch factorization of the accumulated Gram —
//! while the policy counters prove it almost never refactors.

use ata::linalg::cholesky_factor;
use ata::linalg::update::UpdateError;
use ata::mat::{gen, Matrix};
use ata::AtaContext;
use proptest::collection::vec;
use proptest::prelude::*;

/// Reference solve: snapshot the accumulated Gram, add `lambda` to the
/// diagonal, refactor from scratch, solve.
fn reference_solve(g: &Matrix<f64>, lambda: f64, rhs: &[f64]) -> Vec<f64> {
    let mut l = g.clone();
    for i in 0..l.rows() {
        l[(i, i)] += lambda;
    }
    cholesky_factor(&mut l).expect("reference mass is SPD");
    ata::linalg::cholesky_solve(&l, rhs).expect("shape")
}

fn rhs_for(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i as f64) * 0.37).sin() + 0.5).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random interleavings of push / push_scaled / decay / retract:
    /// `solve`, `ridge`, `logdet` and `leverage` all agree with a
    /// from-scratch factorization of the snapshot after every step.
    #[test]
    fn factored_gram_tracks_refactor_truth(
        seed in 0u64..500,
        n in 2usize..20,
        steps in vec((0usize..4, 1usize..30, 0.0f64..3.0), 2..8),
    ) {
        let ctx = AtaContext::serial();
        let mut fg = ctx.factored_gram::<f64>(n);
        // Seed mass so decay/retract act on something definite.
        let base = gen::standard::<f64>(seed, 3 * n + 2, n);
        fg.push(base.as_ref());
        let mut window: Vec<Matrix<f64>> = Vec::new();
        for (i, &(op, k, w)) in steps.iter().enumerate() {
            let chunk = gen::standard::<f64>(seed + 100 + i as u64, k, n);
            match op {
                0 => {
                    window.push(chunk.clone());
                    fg.push(chunk.as_ref());
                }
                1 => fg.push_scaled(0.25 + w, chunk.as_ref()),
                2 => fg.decay(0.5 + w / 4.0),
                _ => {
                    // Push then immediately retract an unrelated
                    // chunk: net mass unchanged, factor downdated.
                    fg.push(chunk.as_ref());
                    fg.retract(chunk.as_ref()).expect("mass stays definite");
                }
            }
            let g = fg.snapshot().into_dense();
            let rhs = rhs_for(n);
            let x = fg.solve(&rhs).expect("definite");
            let xr = reference_solve(&g, 0.0, &rhs);
            let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (u, v) in x.iter().zip(&xr) {
                prop_assert!((u - v).abs() <= 1e-7 * scale, "{u} vs {v}");
            }
        }
        // Final cross-checks on the whole query surface.
        let g = fg.snapshot().into_dense();
        let rhs = rhs_for(n);
        let lam = 0.75;
        let xr = fg.ridge(lam, &rhs).expect("ridge");
        let xr_ref = reference_solve(&g, lam, &rhs);
        for (u, v) in xr.iter().zip(&xr_ref) {
            prop_assert!((u - v).abs() <= 1e-7 * (1.0 + v.abs()));
        }
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        let logdet_ref: f64 = (0..n).map(|i| 2.0 * l[(i, i)].ln()).sum();
        let ld = fg.logdet().expect("definite");
        prop_assert!((ld - logdet_ref).abs() <= 1e-7 * (1.0 + logdet_ref.abs()));
        let lev = fg.leverage(&rhs).expect("definite");
        let x = fg.solve(&rhs).expect("definite");
        let lev_ref: f64 = rhs.iter().zip(&x).map(|(a, b)| a * b).sum();
        prop_assert!((lev - lev_ref).abs() <= 1e-6 * (1.0 + lev_ref.abs()));
    }

    /// A sliding window — push at the head, retract at the tail —
    /// matches a fresh accumulator holding only the live window.
    #[test]
    fn sliding_window_matches_fresh_accumulator(
        seed in 0u64..500,
        n in 2usize..16,
        window in 2usize..5,
        total in 6usize..14,
        k in 1usize..3,
    ) {
        let ctx = AtaContext::serial();
        let mut fg = ctx.factored_gram::<f64>(n);
        // Ridge mass keeps the window SPD even when it holds fewer
        // than n rows.
        let mut eye = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            eye[(i, i)] = 2.0;
        }
        fg.push(eye.as_ref());
        let chunks: Vec<Matrix<f64>> =
            (0..total).map(|i| gen::standard::<f64>(seed + i as u64, k, n)).collect();
        for (i, c) in chunks.iter().enumerate() {
            fg.push(c.as_ref());
            if i >= window {
                fg.retract(chunks[i - window].as_ref()).expect("window stays SPD");
            }
        }
        let mut fresh = ctx.gram_accumulator::<f64>(n);
        fresh.push(eye.as_ref());
        for c in &chunks[total - window..] {
            fresh.push(c.as_ref());
        }
        prop_assert_eq!(fg.rows(), fresh.rows());
        let rhs = rhs_for(n);
        let x = fg.solve(&rhs).expect("definite");
        let xr = reference_solve(&fresh.snapshot().into_dense(), 0.0, &rhs);
        for (u, v) in x.iter().zip(&xr) {
            prop_assert!((u - v).abs() <= 1e-6 * (1.0 + v.abs()), "{u} vs {v}");
        }
        prop_assert!(fg.factor_downdates() >= (total - window) as u64);
    }
}

/// Thin pushes take the `O(n²k)` sweep path: after the first query the
/// refactor count stays pinned while updates climb.
#[test]
fn thin_pushes_never_refactor() {
    let ctx = AtaContext::serial();
    let n = 24;
    let mut fg = ctx.factored_gram::<f64>(n);
    fg.push(gen::standard::<f64>(1, 2 * n, n).as_ref()); // tall: stale
    let rhs = rhs_for(n);
    fg.solve(&rhs).expect("definite"); // one lazy refactor
    assert_eq!(fg.factor_refactors(), 1);
    for seed in 0..50 {
        assert!(fg.updates_in_place(4));
        fg.push(gen::standard::<f64>(100 + seed, 4, n).as_ref());
        fg.solve(&rhs).expect("definite");
    }
    assert_eq!(fg.factor_refactors(), 1, "thin pushes must not refactor");
    assert_eq!(fg.factor_updates(), 50);
}

/// Consecutive tall pushes coalesce into a single lazy refactor at the
/// next query.
#[test]
fn tall_pushes_coalesce_refactors() {
    let ctx = AtaContext::serial();
    let n = 12;
    let mut fg = ctx.factored_gram::<f64>(n);
    for seed in 0..6 {
        assert!(!fg.updates_in_place(3 * n));
        fg.push(gen::standard::<f64>(seed, 3 * n, n).as_ref());
    }
    assert_eq!(fg.factor_refactors(), 0, "no factor work before a query");
    let rhs = rhs_for(n);
    fg.solve(&rhs).expect("definite");
    assert_eq!(fg.factor_refactors(), 1, "six tall pushes, one refactor");
    fg.solve(&rhs).expect("definite");
    assert_eq!(fg.factor_refactors(), 1);
}

/// A repeated λ hits the shifted-factor cache; only changing λ (or a
/// tall push, or decay) pays a rebuild.
#[test]
fn ridge_cache_hits_on_repeated_lambda() {
    let ctx = AtaContext::serial();
    let n = 18;
    let mut fg = ctx.factored_gram::<f64>(n);
    fg.push(gen::standard::<f64>(9, 2 * n, n).as_ref());
    let rhs = rhs_for(n);
    fg.ridge(0.5, &rhs).expect("SPD");
    let after_first = fg.factor_refactors();
    for _ in 0..10 {
        fg.ridge(0.5, &rhs).expect("SPD");
    }
    assert_eq!(
        fg.factor_refactors(),
        after_first,
        "repeated λ must hit the cache"
    );
    // Thin pushes keep the shifted cache fresh by lockstep sweeps.
    for seed in 0..5 {
        fg.push(gen::standard::<f64>(200 + seed, 1, n).as_ref());
        fg.ridge(0.5, &rhs).expect("SPD");
    }
    assert_eq!(
        fg.factor_refactors(),
        after_first,
        "lockstep sweeps keep the λ-cache warm"
    );
    fg.ridge(0.25, &rhs).expect("SPD");
    assert_eq!(
        fg.factor_refactors(),
        after_first + 1,
        "new λ rebuilds once"
    );
    fg.decay(0.9);
    fg.ridge(0.25, &rhs).expect("SPD");
    assert_eq!(
        fg.factor_refactors(),
        after_first + 2,
        "decay invalidates the λ-cache"
    );
}

/// Over-retraction drives the mass indefinite: queries report the
/// typed error — and keep reporting it — without a panic or a NaN.
#[test]
fn over_retraction_is_typed_at_query_time() {
    let ctx = AtaContext::serial();
    let n = 8;
    let mut fg = ctx.factored_gram::<f64>(n);
    fg.push(gen::standard::<f64>(3, 2 * n, n).as_ref());
    let rhs = rhs_for(n);
    fg.solve(&rhs).expect("definite");
    let phantom = gen::standard::<f64>(77, 1, n);
    let mut scaled = phantom.clone();
    for j in 0..n {
        scaled[(0, j)] *= 100.0;
    }
    // The in-place downdate sweep catches it immediately...
    assert!(matches!(
        fg.retract(scaled.as_ref()),
        Err(UpdateError::Indefinite { .. })
    ));
    // ...and the lazy refactor keeps reporting it on every query.
    for _ in 0..2 {
        let mut buf = rhs.clone();
        assert!(matches!(
            fg.solve(&rhs),
            Err(UpdateError::Indefinite { .. })
        ));
        assert!(matches!(
            fg.solve_in_place(&mut buf),
            Err(UpdateError::Indefinite { .. })
        ));
        assert!(buf.iter().all(|v| v.is_finite()), "no NaN leaks to callers");
        assert!(matches!(fg.logdet(), Err(UpdateError::Indefinite { .. })));
    }
    // Pushing the mass back restores service.
    let mut big = Matrix::<f64>::zeros(n, n);
    for i in 0..n {
        big[(i, i)] = 500.0;
    }
    fg.push(big.as_ref());
    fg.solve(&rhs).expect("restored mass solves again");
}

/// `pca_project` / `principal_variances` agree with a direct
/// eigendecomposition of the snapshot, and shape errors are typed.
#[test]
fn pca_projection_matches_direct_eigendecomposition() {
    let ctx = AtaContext::serial();
    let n = 10;
    let mut fg = ctx.factored_gram::<f64>(21);
    assert!(matches!(
        fg.pca_project(&[0.0; 3], 1),
        Err(UpdateError::ShapeMismatch {
            expected: 21,
            got: 3
        })
    ));
    let mut fg = ctx.factored_gram::<f64>(n);
    fg.push(gen::standard::<f64>(5, 4 * n, n).as_ref());
    let g = fg.snapshot().into_dense();
    let (w, v) = ata::linalg::eigen::jacobi_eigen(&g, 1e-12);
    let row = rhs_for(n);
    let proj = fg.pca_project(&row, 3).expect("shape ok");
    for (c, p) in proj.iter().enumerate() {
        let direct: f64 = (0..n).map(|i| v[(i, c)] * row[i]).sum();
        assert!((p - direct).abs() <= 1e-9 * (1.0 + direct.abs()));
    }
    let vars = fg.principal_variances(4).expect("shape ok");
    for (a, b) in vars.iter().zip(&w) {
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()));
    }
    assert!(vars[0] >= vars[3], "descending order");
    assert!(matches!(
        fg.principal_variances(n + 1),
        Err(UpdateError::ShapeMismatch { .. })
    ));
}

/// `solve_multi` equals column-by-column solves; shape errors typed.
#[test]
fn solve_multi_matches_column_solves() {
    let ctx = AtaContext::serial();
    let n = 9;
    let mut fg = ctx.factored_gram::<f64>(n);
    fg.push(gen::standard::<f64>(11, 3 * n, n).as_ref());
    let b = gen::standard::<f64>(12, n, 4);
    let x = fg.solve_multi(b.as_ref()).expect("definite");
    for c in 0..4 {
        let col: Vec<f64> = (0..n).map(|i| b[(i, c)]).collect();
        let xc = fg.solve(&col).expect("definite");
        for i in 0..n {
            assert!((x[(i, c)] - xc[i]).abs() <= 1e-12 * (1.0 + xc[i].abs()));
        }
    }
    let bad = gen::standard::<f64>(13, n + 1, 2);
    assert!(matches!(
        fg.solve_multi(bad.as_ref()),
        Err(UpdateError::ShapeMismatch { .. })
    ));
    assert!(matches!(
        fg.solve(&vec![0.0; n + 2]),
        Err(UpdateError::ShapeMismatch { .. })
    ));
}

/// The upgrade path: an accumulator with prior mass becomes a
/// `FactoredGram` whose first query factors that mass; `into_accumulator`
/// hands the mass back unchanged.
#[test]
fn upgrade_and_downgrade_preserve_mass() {
    let ctx = AtaContext::serial();
    let n = 7;
    let mut acc = ctx.gram_accumulator::<f64>(n);
    let a = gen::standard::<f64>(21, 5 * n, n);
    acc.push(a.as_ref());
    let before = acc.snapshot().into_dense();
    let mut fg = acc.into_factored();
    let rhs = rhs_for(n);
    let x = fg.solve(&rhs).expect("definite");
    let xr = reference_solve(&before, 0.0, &rhs);
    for (u, v) in x.iter().zip(&xr) {
        assert!((u - v).abs() <= 1e-9 * (1.0 + v.abs()));
    }
    assert_eq!(fg.rows(), 5 * n);
    let acc = fg.into_accumulator();
    let after = acc.snapshot().into_dense();
    for i in 0..n {
        for j in 0..n {
            assert_eq!(before[(i, j)], after[(i, j)], "mass must round-trip");
        }
    }
}
