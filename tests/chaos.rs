//! Chaos property tests: the serving stack under deterministic fault
//! injection.
//!
//! The contract these tests pin down, at two layers:
//!
//! * **AtA-D under any seeded fault schedule** (message drops, delivery
//!   delays, rank crashes; P ∈ {2, 4, 8}): every run terminates — the
//!   receive deadline turns lost messages into typed timeouts, crashed
//!   peers poison their mailboxes — and either *every* rank returns
//!   `Ok` and the root's Gram matrix is **bit-identical** to the
//!   fault-free run, or at least one rank returns a typed
//!   `DistError`. There is no third outcome: no hang, no silently
//!   wrong answer.
//! * **The sharded service under chaos floods**: every accepted job is
//!   answered with a correct result — split via AtA-D when a dispatch
//!   survives, degraded to the shared-memory backend when the retry
//!   budget runs out — and the accounting identity
//!   `split + degraded == accepted` holds for every seed. Retry
//!   backoff runs on a manual clock, so the modeled seconds of backoff
//!   cost the test suite no wall time.

use std::sync::Arc;

use ata::dist::{AtaDConfig, DistPlan};
use ata::mat::{gen, reference, Matrix};
use ata::mpisim::{CostModel, FaultPlan, FaultSpec, Universe};
use ata::shard::{RetryPolicy, ShardSubmitError, ShardedServiceBuilder, SplitChaos};
use ata::{AtaContext, ManualClock};
use proptest::prelude::*;

fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
    c.mirror_lower_to_upper();
    c
}

fn tolerance(m: usize, n: usize) -> f64 {
    ata::mat::ops::product_tol::<f64>(m.max(n), n, m as f64) * 2.0
}

/// The fault-free AtA-D result (and its total simulated traffic) for
/// the reference side of the bit-identity assertions.
fn fault_free(a: &Matrix<f64>, plan: &DistPlan) -> (Matrix<f64>, u64) {
    let report = Universe::new(plan.procs(), CostModel::zero()).run(move |comm| {
        let input = (comm.rank() == 0).then_some(a);
        plan.execute(input, comm).expect("fault-free universe")
    });
    let words = report.total_words();
    let root = report
        .results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 returns the Gram matrix");
    (root, words)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn ata_d_under_any_schedule_is_bit_identical_or_typed(
        p_idx in 0usize..3,
        seed in 0u64..100_000,
        m in 8usize..48,
        n in 4usize..32,
    ) {
        // Drops, delays and crashes together, on every cluster size the
        // paper's distributed experiments use.
        let procs = [2usize, 4, 8][p_idx];
        let a = gen::standard::<f64>(seed, m, n);
        let plan = DistPlan::build(m, n, procs, &AtaDConfig::default());
        let (want, _) = fault_free(&a, &plan);
        let (a_ref, plan_ref) = (&a, &plan);
        let report = Universe::new(procs, CostModel::zero())
            .faults(FaultPlan::seeded(seed, procs, &FaultSpec::default()))
            .recv_deadline(0.5)
            .run(move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                plan_ref.execute(input, comm)
            });
        // Reaching this line at all is the liveness half of the
        // contract: the run terminated under whatever the schedule did.
        let mut root = None;
        let mut faulted = false;
        for rank_result in report.results {
            match rank_result {
                Ok(Some(c)) => root = Some(c),
                Ok(None) => {}
                Err(_) => faulted = true,
            }
        }
        if !faulted {
            // Every rank finished clean: the answer must not merely be
            // close — it must be the same bits as the fault-free run.
            let got = root.expect("clean run returns on rank 0");
            prop_assert_eq!(
                got.max_abs_diff(&want), 0.0,
                "a run with no surfaced fault must be bit-identical (P={}, seed={})",
                procs, seed
            );
        }
    }

    #[test]
    fn delay_only_schedules_never_fail_and_move_identical_words(
        p_idx in 0usize..3,
        seed in 0u64..100_000,
        m in 8usize..40,
        n in 4usize..24,
    ) {
        // Delays reorder the simulated timeline but lose nothing: under
        // a generous receive deadline every rank must finish clean, with
        // the fault-free run's exact bits *and* exact traffic counters.
        let procs = [2usize, 4, 8][p_idx];
        let a = gen::standard::<f64>(seed, m, n);
        let plan = DistPlan::build(m, n, procs, &AtaDConfig::default());
        let (want, want_words) = fault_free(&a, &plan);
        let (a_ref, plan_ref) = (&a, &plan);
        let report = Universe::new(procs, CostModel::zero())
            .faults(FaultPlan::seeded(seed, procs, &FaultSpec::delays_only()))
            .recv_deadline(10.0)
            .run(move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                plan_ref.execute(input, comm)
            });
        let words = report.total_words();
        let mut root = None;
        for rank_result in report.results {
            let out = rank_result.expect("delays alone never surface an error");
            if let Some(c) = out {
                root = Some(c);
            }
        }
        prop_assert_eq!(root.expect("root returns").max_abs_diff(&want), 0.0);
        prop_assert_eq!(words, want_words, "delays move the same words, later");
    }

    #[test]
    fn chaos_floods_complete_every_job_correctly(
        seed in 0u64..100_000,
        jobs in 2usize..10,
        m in 16usize..40,
        n in 8usize..24,
    ) {
        // Every job splits (the threshold equals the operand size), so
        // every job walks the fault path; the manual clock makes the
        // retry backoff free and the whole flood deterministic.
        let ctx = AtaContext::serial();
        let svc = ShardedServiceBuilder::new(&ctx)
            .shards(4)
            .split_words(m * n)
            .clock(Arc::new(ManualClock::new()))
            .split_retry(RetryPolicy { budget: 1, ..RetryPolicy::default() })
            .split_chaos(SplitChaos::new(seed).recv_deadline(0.5))
            .build::<f64>();
        let inputs: Vec<Matrix<f64>> = (0..jobs)
            .map(|i| gen::standard::<f64>(seed.wrapping_add(i as u64), m, n))
            .collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|a| svc.submit(a.clone()).expect("healthy service accepts"))
            .collect();
        for (h, a) in handles.into_iter().zip(&inputs) {
            let g = h.wait().expect("split or degraded, never failed").into_dense();
            prop_assert!(
                g.max_abs_diff(&oracle(a)) <= tolerance(m, n),
                "chaos must never change the answer"
            );
        }
        let stats = svc.shutdown();
        prop_assert_eq!(stats.split_jobs + stats.degraded_jobs, jobs,
            "every accepted split job is split or degraded, never lost");
        prop_assert_eq!(stats.completed_jobs(), jobs);
        prop_assert_eq!(stats.failed_jobs, 0);
        prop_assert_eq!(stats.expired_jobs, 0);
        // Only clean dispatches are billed, so the predictor stays
        // bit-exact even when retries and degradations happened.
        prop_assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
        prop_assert_eq!(
            stats.predicted_root_recv_words,
            stats.simulated_root_recv_words
        );
    }
}

#[test]
fn chaotic_shutdown_under_load_answers_every_accepted_job() {
    // Saturate the bounded queues of a chaos-ridden service, then shut
    // down immediately: every accepted job must still be answered — a
    // result (split, degraded or whole), never a hang — and handles
    // waited on *after* shutdown still deliver.
    let ctx = AtaContext::serial();
    let svc = ShardedServiceBuilder::new(&ctx)
        .shards(2)
        .queue_capacity(2)
        .split_words(512)
        .clock(Arc::new(ManualClock::new()))
        .split_retry(RetryPolicy {
            budget: 1,
            ..RetryPolicy::default()
        })
        .split_chaos(SplitChaos::new(99).recv_deadline(0.5))
        .build::<f64>();
    let mut inputs = Vec::new();
    let mut handles = Vec::new();
    for i in 0..48u64 {
        // Even jobs split (64 x 16 = 1024 >= 512), odd run whole.
        let m = if i % 2 == 0 { 64 } else { 16 };
        let a = gen::standard::<f64>(i, m, 16);
        match svc.try_submit(a.clone()) {
            Ok(h) => {
                inputs.push(a);
                handles.push(h);
            }
            Err(ShardSubmitError::Full(_)) => {}
            other => panic!("service must be alive: {other:?}"),
        }
    }
    let accepted = handles.len();
    assert!(accepted > 0, "some jobs must get through");
    let stats = svc.shutdown();
    assert_eq!(
        stats.completed_jobs(),
        accepted,
        "chaos degrades but never drops accepted work"
    );
    assert_eq!(stats.failed_jobs, 0);
    for (h, a) in handles.into_iter().zip(&inputs) {
        let g = h
            .wait()
            .expect("waiting after shutdown still answers")
            .into_dense();
        let (m, n) = a.shape();
        assert!(g.max_abs_diff(&oracle(a)) <= tolerance(m, n));
    }
}

#[test]
fn wait_after_shutdown_reports_closed_for_unsent_jobs() {
    // Regression: a handle whose job was never accepted (service
    // already shut down) must resolve to the typed `Closed` error
    // through `wait_timeout`, not hang. Exercised via the one-shot
    // service facade's handle semantics on the sharded tier: shutting
    // down disconnects response channels only after draining, so a
    // drained handle delivers and a disconnected one errors — both
    // terminate.
    let ctx = AtaContext::serial();
    let svc = ShardedServiceBuilder::new(&ctx)
        .shards(2)
        .split_words(usize::MAX)
        .build::<f64>();
    let h = svc.submit(gen::standard::<f64>(5, 24, 12)).unwrap();
    drop(svc); // drain + join
    match h.wait_timeout(std::time::Duration::from_secs(30)) {
        Some(Ok(out)) => assert_eq!(out.order(), 12),
        Some(Err(e)) => panic!("drained job must complete, got {e}"),
        None => panic!("handle must resolve after shutdown"),
    }
}
