//! Property tests for the sharded serving layer: a panicking shard
//! (injected via a poison job) must never take innocent work down with
//! it.
//!
//! The quarantine policy makes the outcome deterministic enough to
//! assert exactly: the poison panics the shard that first coalesces it,
//! is requeued *solo*, panics a second shard, and is then convicted
//! (`attempts == 2` under the default budget) — so each poison kills at
//! most two shards, and with three or more shards every innocent job
//! still completes, bit-for-bit correct.

use ata::mat::{gen, reference, Matrix};
use ata::shard::{JobError, ShardedServiceBuilder};
use ata::AtaContext;
use proptest::prelude::*;

fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
    c.mirror_lower_to_upper();
    c
}

fn tolerance(m: usize, n: usize) -> f64 {
    ata::mat::ops::product_tol::<f64>(m.max(n), n, m as f64) * 2.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn a_poisoned_flood_completes_every_innocent_job(
        shards in 3usize..6,
        jobs in 1usize..12,
        poison_at in 0usize..12,
        max_batch in 1usize..5,
        m in 8usize..48,
        n in 4usize..24,
        seed in 0u64..1000,
    ) {
        let ctx = AtaContext::serial();
        let svc = ShardedServiceBuilder::new(&ctx)
            .shards(shards)
            .max_batch(max_batch)
            .split_words(usize::MAX)
            .build::<f64>();
        let inputs: Vec<Matrix<f64>> = (0..jobs)
            .map(|i| gen::standard::<f64>(seed + i as u64, m, n))
            .collect();
        // Interleave the poison anywhere in the flood (including after
        // it), so it coalesces with different neighbours across cases.
        let poison_at = poison_at % (jobs + 1);
        let mut poison = None;
        let mut handles = Vec::new();
        for (i, a) in inputs.iter().enumerate() {
            if i == poison_at {
                poison = Some(svc.submit_poison());
            }
            handles.push(svc.submit(a.clone()).expect("live shards accept work"));
        }
        let poison = poison.unwrap_or_else(|| svc.submit_poison());

        for (h, a) in handles.into_iter().zip(&inputs) {
            let g = h.wait().expect("innocent jobs must complete").into_dense();
            prop_assert!(
                g.max_abs_diff(&oracle(a)) <= tolerance(m, n),
                "a requeued job must still compute the right Gram matrix"
            );
        }
        // First panic requeues the poison solo; the solo panic convicts.
        prop_assert!(matches!(
            poison.wait(),
            Err(JobError::Requeued { attempts: 2 })
        ));

        let stats = svc.shutdown();
        prop_assert_eq!(stats.whole_jobs, jobs, "every innocent job is served");
        prop_assert_eq!(stats.failed_jobs, 1, "only the poison fails");
        prop_assert_eq!(stats.dead_shards, 2, "the poison kills exactly two shards");
        prop_assert_eq!(
            stats.per_shard.iter().filter(|s| s.dead).count(),
            stats.dead_shards,
            "per-shard dead flags agree with the aggregate"
        );
        prop_assert!(
            stats.requeued_jobs >= 1,
            "the poison's solo requeue must be counted"
        );
        prop_assert_eq!(stats.split_jobs, 0);
        prop_assert_eq!(stats.rejected_jobs, 0);
    }

    #[test]
    fn unpoisoned_floods_match_the_oracle_and_fail_nothing(
        shards in 1usize..5,
        jobs in 1usize..10,
        m in 8usize..40,
        n in 4usize..20,
        split_words in 64usize..2048,
        seed in 0u64..1000,
    ) {
        // Routing sanity across the whole/split boundary: whichever lane
        // each job lands in, answers match the oracle and the traffic
        // quote reconciles bit-exactly with the simulator.
        let ctx = AtaContext::serial();
        let svc = ShardedServiceBuilder::new(&ctx)
            .shards(shards)
            .split_words(split_words)
            .build::<f64>();
        let inputs: Vec<Matrix<f64>> = (0..jobs)
            .map(|i| gen::standard::<f64>(seed + i as u64, m, n))
            .collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|a| svc.submit(a.clone()).expect("healthy service accepts"))
            .collect();
        for (h, a) in handles.into_iter().zip(&inputs) {
            let g = h.wait().expect("completes").into_dense();
            prop_assert!(g.max_abs_diff(&oracle(a)) <= tolerance(m, n));
        }
        let stats = svc.shutdown();
        prop_assert_eq!(stats.completed_jobs(), jobs);
        prop_assert_eq!(stats.failed_jobs, 0);
        prop_assert_eq!(stats.dead_shards, 0);
        prop_assert_eq!(stats.predicted_split_words, stats.simulated_split_words);
        prop_assert_eq!(
            stats.predicted_root_recv_words,
            stats.simulated_root_recv_words
        );
    }
}
