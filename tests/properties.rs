//! Property-based tests (proptest) for the workspace invariants:
//! fast algorithms vs. naive oracles on arbitrary shapes, symmetry and
//! positive-semidefiniteness of Gram matrices, packed round trips, and
//! scheduler invariants under random process counts.

// The `lower_with` cases below intentionally keep exercising the
// deprecated one-shot wrappers next to the plan API they delegate to.
#![allow(deprecated)]

use ata::core::tasktree::{ComputeKind, DistTree, SharedPlan};
use ata::kernels::{gemm_tn, syrk_ln, CacheConfig};
use ata::mat::{gen, reference, Matrix};
use ata::strassen::{fast_strassen, winograd_strassen};
use ata::{lower_with, AtaContext, AtaOptions, Output, SymPacked};
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn tolerance(m: usize, n: usize) -> f64 {
    ata::mat::ops::product_tol::<f64>(m, n, m as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_gemm_matches_oracle(
        m in 1usize..48,
        n in 1usize..48,
        k in 1usize..48,
        seed in 0u64..1000,
        alpha in -2.0f64..2.0,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let b = gen::standard::<f64>(seed + 1, m, k);
        let mut fast = Matrix::zeros(n, k);
        let mut slow = Matrix::zeros(n, k);
        gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut fast.as_mut());
        reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        prop_assert!(fast.max_abs_diff(&slow) <= tolerance(m, n.max(k)) * 2.0);
    }

    #[test]
    fn strassen_matches_oracle_any_shape(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
        words in 4usize..64,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let b = gen::standard::<f64>(seed + 7, m, k);
        let cfg = CacheConfig::with_words(words);
        let mut fast = Matrix::zeros(n, k);
        let mut slow = Matrix::zeros(n, k);
        fast_strassen(1.0, a.as_ref(), b.as_ref(), &mut fast.as_mut(), &cfg);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        prop_assert!(fast.max_abs_diff(&slow) <= tolerance(m, n.max(k)) * 2.0);
    }

    #[test]
    fn ata_matches_syrk_any_shape(
        m in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1000,
        words in 4usize..64,
        threads in 1usize..9,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let opts = AtaOptions::with_threads(threads).cache_words(words);
        let fast = lower_with(a.as_ref(), &opts);
        let mut slow = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
        prop_assert!(fast.max_abs_diff_lower(&slow) <= tolerance(m, n) * 2.0);
    }

    #[test]
    fn gram_is_symmetric_and_psd_diagonal(
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let g = ata::gram(a.as_ref());
        prop_assert!(g.is_symmetric(0.0));
        // Diagonal entries are squared column norms.
        for j in 0..n {
            prop_assert!(g[(j, j)] >= -1e-12);
        }
        // Cauchy-Schwarz: |g_ij| <= sqrt(g_ii g_jj) + roundoff.
        for i in 0..n {
            for j in 0..n {
                let bound = (g[(i, i)] * g[(j, j)]).max(0.0).sqrt();
                prop_assert!(g[(i, j)].abs() <= bound + 1e-9);
            }
        }
    }

    #[test]
    fn packed_roundtrip_any_order(n in 0usize..64, seed in 0u64..1000) {
        let a = gen::standard::<f64>(seed, n + 1, n);
        let g = ata::gram(a.as_ref());
        let p = SymPacked::from_lower(&g);
        prop_assert_eq!(p.to_full().max_abs_diff(&g), 0.0);
    }

    #[test]
    fn shared_plan_invariants_hold(
        n in 1usize..160,
        procs in 1usize..40,
    ) {
        let plan = SharedPlan::build(n, procs);
        // Disjoint writes.
        for (i, t1) in plan.tasks.iter().enumerate() {
            for t2 in &plan.tasks[i + 1..] {
                prop_assert!(!t1.c.intersects(&t2.c));
            }
        }
        // Exact coverage of the lower triangle by area.
        let area: usize = plan.tasks.iter().map(|t| match t.kind {
            ComputeKind::AtA => t.c.rows() * (t.c.rows() + 1) / 2,
            ComputeKind::AtB => t.c.area(),
        }).sum();
        prop_assert_eq!(area, n * (n + 1) / 2);
        // Owners in range.
        prop_assert!(plan.tasks.iter().all(|t| t.proc_id < procs));
    }

    #[test]
    fn dist_tree_reconstructs_product(
        m in 1usize..40,
        n in 1usize..40,
        procs in 1usize..24,
        seed in 0u64..1000,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let tree = DistTree::build(m, n, procs);
        let mut c = Matrix::<f64>::zeros(n, n);
        for leaf in tree.leaves() {
            let a_blk = a.as_ref().block(leaf.a.r0, leaf.a.r1, leaf.a.c0, leaf.a.c1);
            let mut dst = c.as_mut().into_block(leaf.c.r0, leaf.c.r1, leaf.c.c0, leaf.c.c1);
            match leaf.kind {
                ComputeKind::AtA => reference::syrk_ln(1.0, a_blk, &mut dst),
                ComputeKind::AtB => {
                    let b_blk = a.as_ref().block(leaf.b.r0, leaf.b.r1, leaf.b.c0, leaf.b.c1);
                    reference::gemm_tn(1.0, a_blk, b_blk, &mut dst)
                }
            }
        }
        let mut slow = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
        prop_assert!(c.max_abs_diff_lower(&slow) <= tolerance(m, n) * 2.0);
    }

    #[test]
    fn alpha_linearity(
        m in 1usize..24,
        n in 1usize..24,
        seed in 0u64..1000,
        alpha in -3.0f64..3.0,
    ) {
        // lower(alpha, A) == alpha * lower(1, A) within roundoff.
        let a = gen::standard::<f64>(seed, m, n);
        let cfg = CacheConfig::with_words(16);
        let mut c1 = Matrix::zeros(n, n);
        ata::core::serial::ata_into(alpha, a.as_ref(), &mut c1.as_mut(), &cfg);
        let mut c2 = Matrix::zeros(n, n);
        ata::core::serial::ata_into(1.0, a.as_ref(), &mut c2.as_mut(), &cfg);
        c2.scale(alpha);
        prop_assert!(c1.max_abs_diff_lower(&c2) <= tolerance(m, n) * (1.0 + alpha.abs()));
    }

    #[test]
    fn syrk_kernel_never_touches_strict_upper(
        m in 1usize..32,
        n in 1usize..32,
        seed in 0u64..1000,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let sentinel = 123.456f64;
        let mut c = Matrix::from_fn(n, n, |_, _| sentinel);
        syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        for i in 0..n {
            for j in (i + 1)..n {
                prop_assert_eq!(c[(i, j)], sentinel);
            }
        }
    }

    #[test]
    fn winograd_matches_classic_any_shape(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        seed in 0u64..1000,
        words in 4usize..64,
    ) {
        // The two 7-product schemes compute the same field values; in
        // floating point they must agree to the common error bound.
        let a = gen::standard::<f64>(seed, m, n);
        let b = gen::standard::<f64>(seed + 13, m, k);
        let cfg = CacheConfig::with_words(words);
        let mut win = Matrix::zeros(n, k);
        let mut slow = Matrix::zeros(n, k);
        winograd_strassen(1.0, a.as_ref(), b.as_ref(), &mut win.as_mut(), &cfg);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        prop_assert!(win.max_abs_diff(&slow) <= tolerance(m, n.max(k)) * 4.0);
    }

    #[test]
    fn winograd_option_equals_classic_option(
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1000,
        threads in 1usize..6,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let classic = lower_with(a.as_ref(), &AtaOptions::with_threads(threads).cache_words(16));
        let winograd = lower_with(
            a.as_ref(),
            &AtaOptions::with_threads(threads).cache_words(16).winograd(),
        );
        prop_assert!(classic.max_abs_diff_lower(&winograd) <= tolerance(m, n) * 4.0);
    }

    #[test]
    fn ata_d_matches_syrk_any_shape_and_rank_count(
        m in 1usize..40,
        n in 1usize..40,
        procs in 1usize..14,
        seed in 0u64..500,
        words in 8usize..64,
    ) {
        use ata::dist::{ata_d, AtaDConfig};
        use ata::mpisim::{run, CostModel};
        let a = gen::standard::<f64>(seed, m, n);
        let cfg = AtaDConfig {
            cache: CacheConfig::with_words(words),
            ..AtaDConfig::default()
        };
        let a_ref = &a;
        let report = run(procs, CostModel::zero(), move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            ata_d(input, m, n, comm, &cfg)
        });
        let c = report.results.into_iter().flatten().next().expect("root");
        let mut slow = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
        prop_assert!(c.max_abs_diff_lower(&slow) <= tolerance(m, n) * 2.0);
    }

    #[test]
    fn dist_context_wire_formats_and_owned_plans_agree_bitwise(
        m in 1usize..28,
        n in 1usize..28,
        ranks in 1usize..9,
        seed in 0u64..500,
    ) {
        // The same input through the dist backend must yield identical
        // bits for (a) both wire formats, (b) repeated executions of one
        // plan, and (c) the owned-plan variant on another thread.
        use ata::mpisim::CostModel;
        use ata::{Backend, WireFormat};
        let a = gen::standard::<f64>(seed, m, n);
        let mk = |wire| {
            AtaContext::builder()
                .backend(Backend::SimulatedDist {
                    ranks: NonZeroUsize::new(ranks).expect("ranks > 0"),
                    loggp: CostModel::zero(),
                })
                .wire(wire)
                .build()
        };
        let packed_ctx = mk(WireFormat::SymPacked);
        let plan = packed_ctx.plan_with::<f64>(m, n, Output::Lower);
        let first = plan.execute(a.as_ref()).into_dense();
        let second = plan.execute(a.as_ref()).into_dense();
        prop_assert_eq!(first.max_abs_diff(&second), 0.0);
        let dense = mk(WireFormat::Dense).lower(a.as_ref());
        prop_assert_eq!(first.max_abs_diff(&dense), 0.0);
        let owned = plan.into_owned();
        let a2 = a.clone();
        let threaded = std::thread::spawn(move || owned.execute(a2.as_ref()).into_dense())
            .join()
            .expect("worker");
        prop_assert_eq!(first.max_abs_diff(&threaded), 0.0);
        let mut slow = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
        prop_assert!(first.max_abs_diff_lower(&slow) <= tolerance(m, n) * 2.0);
    }

    #[test]
    fn carma_matches_oracle_any_shape_and_budget(
        m in 1usize..32,
        n in 1usize..32,
        k in 1usize..32,
        procs in 1usize..10,
        seed in 0u64..500,
        mem_kwords in 1usize..8,
    ) {
        use ata::dist::{carma_like, CarmaConfig};
        use ata::mpisim::{run, CostModel};
        let a = gen::standard::<f64>(seed, m, n);
        let b = gen::standard::<f64>(seed + 3, m, k);
        let cfg = CarmaConfig {
            mem_words_per_rank: mem_kwords * 512,
            ..CarmaConfig::default()
        };
        let (ar, br) = (&a, &b);
        let report = run(procs, CostModel::zero(), move |comm| {
            let (ia, ib) = if comm.rank() == 0 { (Some(ar), Some(br)) } else { (None, None) };
            carma_like(ia, ib, m, n, k, comm, &cfg)
        });
        let c = report.results.into_iter().flatten().next().expect("root");
        let mut slow = Matrix::zeros(n, k);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        prop_assert!(c.max_abs_diff(&slow) <= tolerance(m, n.max(k)) * 2.0);
    }

    #[test]
    fn dist_tree_alpha_reconstructs_product(
        n in 1usize..32,
        procs in 1usize..20,
        seed in 0u64..500,
        alpha_pct in 15u32..85,
    ) {
        // Any load-balance alpha must leave correctness untouched.
        let alpha = alpha_pct as f64 / 100.0;
        let a = gen::standard::<f64>(seed, n + 3, n);
        let tree = DistTree::build_with_alpha(n + 3, n, procs, alpha);
        let mut c = Matrix::<f64>::zeros(n, n);
        for leaf in tree.leaves() {
            let a_blk = a.as_ref().block(leaf.a.r0, leaf.a.r1, leaf.a.c0, leaf.a.c1);
            let mut dst = c.as_mut().into_block(leaf.c.r0, leaf.c.r1, leaf.c.c0, leaf.c.c1);
            match leaf.kind {
                ComputeKind::AtA => reference::syrk_ln(1.0, a_blk, &mut dst),
                ComputeKind::AtB => {
                    let b_blk = a.as_ref().block(leaf.b.r0, leaf.b.r1, leaf.b.c0, leaf.b.c1);
                    reference::gemm_tn(1.0, a_blk, b_blk, &mut dst)
                }
            }
        }
        let mut slow = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
        prop_assert!(c.max_abs_diff_lower(&slow) <= tolerance(n + 3, n) * 2.0);
    }

    #[test]
    fn reused_plan_matches_naive_across_threads_and_outputs(
        m in 1usize..32,
        n in 1usize..32,
        seed in 0u64..500,
        words in 4usize..64,
    ) {
        // One plan per (threads, output), executed against several random
        // same-shape matrices: every execution must match the ata_naive
        // oracle within the f64 product tolerance.
        let cfg = CacheConfig::with_words(words);
        for threads in [1usize, 2, 4] {
            let mut builder = AtaContext::builder().cache(cfg).dedicated_pool(false);
            if threads > 1 {
                builder = builder.threads(NonZeroUsize::new(threads).expect("threads > 0"));
            }
            let ctx = builder.build();
            for output in [Output::Gram, Output::Lower, Output::Packed] {
                let plan = ctx.plan_with::<f64>(m, n, output);
                for round in 0..3u64 {
                    let a = gen::standard::<f64>(seed + round * 131, m, n);
                    let mut naive = Matrix::zeros(n, n);
                    ata::core::ata_naive(1.0, a.as_ref(), &mut naive.as_mut(), &cfg);
                    let got = plan.execute(a.as_ref()).into_dense();
                    prop_assert!(
                        got.max_abs_diff_lower(&naive) <= tolerance(m, n) * 2.0,
                        "threads={threads} output={output:?} round={round}"
                    );
                }
            }
        }
    }

    #[test]
    fn reused_plan_op_count_is_bit_for_bit_stable(
        m in 1usize..24,
        n in 1usize..24,
        seed in 0u64..500,
        words in 4usize..32,
    ) {
        // With the op-counting scalar, repeated executions of one plan
        // perform the *identical* sequence of scalar operations, and the
        // count equals the legacy one-shot path's: plan reuse changes
        // dispatch, never the computation.
        use ata::mat::tracked::{measure, Tracked};
        let opts = AtaOptions::serial().cache_words(words);
        let ctx = AtaContext::builder().cache(CacheConfig::with_words(words)).build();
        let plan = ctx.plan_with::<Tracked>(m, n, Output::Lower);
        let a = gen::standard::<Tracked>(seed, m, n);
        let (_, ops_first) = measure(|| {
            let _ = plan.execute(a.as_ref());
        });
        let (_, ops_again) = measure(|| {
            let _ = plan.execute(a.as_ref());
        });
        prop_assert_eq!(ops_first, ops_again, "plan reuse drifted in op count");
        // The true legacy oracle: ata-core's one-shot recursion (the
        // facade's lower_with now delegates to the plan path itself).
        let (_, ops_legacy) = measure(|| {
            let _ = ata::core::lower_with(a.as_ref(), &opts);
        });
        prop_assert_eq!(ops_first, ops_legacy, "plan path != legacy path in op count");
    }

    #[test]
    fn allgather_is_consistent_across_ranks(
        procs in 1usize..8,
        len in 0usize..16,
    ) {
        use ata::mpisim::{run, CostModel};
        let report = run(procs, CostModel::zero(), move |comm| {
            comm.allgather(vec![comm.rank() as f64; len])
        });
        for view in &report.results {
            prop_assert_eq!(view.len(), procs);
            for (src, part) in view.iter().enumerate() {
                prop_assert_eq!(part, &vec![src as f64; len]);
            }
        }
    }
}
