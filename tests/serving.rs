//! Property tests of the serving surface: streaming accumulation
//! (`GramAccumulator`), batched execution (`BatchPlan`) and the
//! blocking `AtaService` front-end.
//!
//! The load-bearing invariants:
//!
//! * chunked accumulation over *any* row partition — 1-row pushes,
//!   ragged tails, thin/tall mixes — matches the one-shot Gram within
//!   the product tolerance, on every backend configuration;
//! * the accumulate path's op counts are bit-reproducible (`Tracked`);
//! * `execute_batch` is bit-identical to a reused-plan serial loop;
//! * steady-state pushes allocate nothing (arena/pack reuse counters).

use ata::mat::tracked::{measure, Tracked};
use ata::mat::{gen, reference, Matrix, Scalar};
use ata::service::AtaServiceBuilder;
use ata::{AtaContext, AtaService, Output};
use proptest::collection::vec;
use proptest::prelude::*;
use std::num::NonZeroUsize;

fn tolerance(m: usize, n: usize) -> f64 {
    ata::mat::ops::product_tol::<f64>(m.max(n).max(1), n.max(1), m as f64)
}

/// Cut `a` into row chunks of the given heights (clamped to the rows
/// that remain; the tail past the last height becomes a final chunk).
fn chunk_rows(total: usize, heights: &[usize]) -> Vec<(usize, usize)> {
    let mut cuts = Vec::new();
    let mut r0 = 0usize;
    for &h in heights {
        if r0 >= total {
            break;
        }
        let r1 = (r0 + h.max(1)).min(total);
        cuts.push((r0, r1));
        r0 = r1;
    }
    if r0 < total {
        cuts.push((r0, total));
    }
    cuts
}

fn accumulate_chunked<T: Scalar + 'static>(
    ctx: &AtaContext,
    a: &Matrix<T>,
    heights: &[usize],
) -> Matrix<T> {
    let (m, n) = a.shape();
    let mut acc = ctx.gram_accumulator::<T>(n);
    for (r0, r1) in chunk_rows(m, heights) {
        acc.push(a.as_ref().block(r0, r1, 0, n));
    }
    acc.finish().into_dense()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn accumulator_matches_one_shot_over_random_chunkings(
        m in 1usize..120,
        n in 1usize..32,
        heights in vec(1usize..48, 1..8),
        seed in 0u64..1000,
        words in 4usize..256,
        threads in 1usize..5,
    ) {
        let mut builder = AtaContext::builder().cache_words(words);
        if threads > 1 {
            builder = builder.threads(NonZeroUsize::new(threads).unwrap());
        }
        let ctx = builder.build();
        let a = gen::standard::<f64>(seed, m, n);
        let chunked = accumulate_chunked(&ctx, &a, &heights);
        let mut oracle = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut oracle.as_mut());
        prop_assert!(
            chunked.max_abs_diff_lower(&oracle) <= tolerance(m, n) * 2.0,
            "chunking {heights:?} diverged"
        );
        prop_assert!(chunked.is_symmetric(0.0));
    }

    #[test]
    fn one_row_pushes_reduce_to_rank_one_updates(
        m in 1usize..40,
        n in 1usize..24,
        seed in 0u64..1000,
    ) {
        // Degenerate chunking: every push is a single row.
        let ctx = AtaContext::serial();
        let a = gen::standard::<f64>(seed, m, n);
        let chunked = accumulate_chunked(&ctx, &a, &vec![1; m]);
        let mut oracle = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut oracle.as_mut());
        prop_assert!(chunked.max_abs_diff_lower(&oracle) <= tolerance(m, n) * 2.0);
    }

    #[test]
    fn accumulator_op_counts_are_deterministic(
        m in 1usize..80,
        n in 1usize..24,
        heights in vec(1usize..32, 1..6),
        seed in 0u64..1000,
        words in 4usize..128,
    ) {
        // Serial context: Tracked counters are thread-local, so the
        // whole accumulate path must run on the calling thread.
        let ctx = AtaContext::builder().cache_words(words).build();
        let a = gen::standard::<Tracked>(seed, m, n);
        let (g1, ops1) = measure(|| accumulate_chunked(&ctx, &a, &heights));
        let (g2, ops2) = measure(|| accumulate_chunked(&ctx, &a, &heights));
        prop_assert_eq!(ops1, ops2, "accumulate path must replay the exact op sequence");
        prop_assert_eq!(g1.max_abs_diff(&g2), 0.0);
    }

    #[test]
    fn batch_is_bit_identical_to_reused_plan_serial_loop(
        problems in 1usize..8,
        m in 1usize..48,
        n in 1usize..24,
        seed in 0u64..1000,
        words in 4usize..256,
        threads in 1usize..5,
    ) {
        // Same cache budget on both sides: the batch's serial-leaf
        // recursion and the serial context's plan are then the same
        // algorithm, so results must match bit for bit.
        let batch_ctx = AtaContext::builder()
            .cache_words(words)
            .threads(NonZeroUsize::new(threads).unwrap())
            .build();
        let loop_ctx = AtaContext::builder().cache_words(words).build();
        let inputs: Vec<Matrix<f64>> = (0..problems)
            .map(|i| gen::standard::<f64>(seed + i as u64, m, n))
            .collect();
        let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();
        let batch = batch_ctx.batch_plan::<f64>(&vec![(m, n); problems], Output::Gram);
        let batched = batch.execute_batch(&refs);
        let plan = loop_ctx.plan_with::<f64>(m, n, Output::Gram);
        for (i, out) in batched.into_iter().enumerate() {
            let looped = plan.execute(refs[i]).into_dense();
            prop_assert_eq!(
                out.into_dense().max_abs_diff(&looped),
                0.0,
                "slot {} differs from the serial loop",
                i
            );
        }
    }

    #[test]
    fn accumulate_mode_equals_manual_sum(
        m in 1usize..64,
        n in 1usize..24,
        seed in 0u64..1000,
        words in 4usize..128,
    ) {
        // plan.execute_accumulate twice == 2 * one-shot (lower triangle).
        let ctx = AtaContext::builder().cache_words(words).build();
        let a = gen::standard::<f64>(seed, m, n);
        let plan = ctx.plan_with::<f64>(m, n, Output::Lower);
        let mut acc = Matrix::zeros(n, n);
        plan.execute_accumulate(a.as_ref(), &mut acc.as_mut());
        plan.execute_accumulate(a.as_ref(), &mut acc.as_mut());
        let mut twice = Matrix::zeros(n, n);
        reference::syrk_ln(2.0, a.as_ref(), &mut twice.as_mut());
        prop_assert!(acc.max_abs_diff_lower(&twice) <= tolerance(m, n) * 4.0);
    }
}

#[test]
fn steady_state_streaming_is_allocation_free() {
    // The acceptance hook: after the first push of a given shape, no
    // arena miss, no arena growth, no pack-buffer growth — every later
    // push reuses the warmed resources (the "no per-push heap
    // allocation" contract, observed through the reuse counters).
    let ctx = AtaContext::builder().cache_words(32).build();
    let n = 16usize;
    let mut acc = ctx.gram_accumulator::<f64>(n);
    acc.push(gen::standard::<f64>(0, 64, n).as_ref()); // tall: warms arena
    acc.push(gen::standard::<f64>(1, 1, n).as_ref()); // thin: no arena at all
    let warm = acc.arena_stats();
    let warm_pack = acc.pack_footprint_elems();
    let warm_footprint = ctx.plan_cache_len();
    for seed in 2..30u64 {
        let rows = if seed % 3 == 0 { 1 } else { 64 };
        acc.push(gen::standard::<f64>(seed, rows, n).as_ref());
    }
    let after = acc.arena_stats();
    assert_eq!(
        after.misses, warm.misses,
        "steady state must not allocate arenas"
    );
    assert_eq!(
        after.grows, warm.grows,
        "steady state must not regrow arenas"
    );
    assert!(
        after.checkouts > warm.checkouts,
        "tall pushes kept using the pool"
    );
    assert_eq!(acc.pack_footprint_elems(), warm_pack, "pack buffers stable");
    assert_eq!(ctx.plan_cache_len(), warm_footprint, "no new plan cores");
}

#[test]
fn accumulator_matches_shared_and_dist_backends() {
    // The same stream through all three backends agrees (the dist
    // backend folds cluster results into the accumulator via scratch).
    let n = 16usize;
    let chunks: Vec<Matrix<f64>> = (0..3).map(|i| gen::standard::<f64>(i, 40, n)).collect();
    let mut oracle = Matrix::zeros(n, n);
    for ch in &chunks {
        reference::syrk_ln(1.0, ch.as_ref(), &mut oracle.as_mut());
    }
    // cache_words(64) makes 40-row x 16-col chunks *tall* (threshold 4
    // rows) on every backend, so the dist context genuinely exercises
    // the scratch-fold arm of the accumulate path rather than the thin
    // syrk shortcut.
    let contexts = [
        AtaContext::builder().cache_words(64).build(),
        AtaContext::builder()
            .cache_words(64)
            .threads(NonZeroUsize::new(3).unwrap())
            .build(),
        AtaContext::builder()
            .cache_words(64)
            .backend(ata::Backend::SimulatedDist {
                ranks: NonZeroUsize::new(4).unwrap(),
                loggp: ata::mpisim::CostModel::zero(),
            })
            .build(),
    ];
    for (which, ctx) in contexts.iter().enumerate() {
        let mut acc = ctx.gram_accumulator::<f64>(n);
        for ch in &chunks {
            acc.push(ch.as_ref());
        }
        assert_eq!(acc.tall_pushes(), 3, "backend {which}: chunks must be tall");
        let g = acc.finish().into_dense();
        assert!(
            g.max_abs_diff_lower(&oracle) <= tolerance(120, n) * 2.0,
            "backend {which} diverged"
        );
    }
}

#[test]
fn service_round_trip_matches_batch_plan() {
    let ctx = AtaContext::builder()
        .cache_words(64)
        .threads(NonZeroUsize::new(2).unwrap())
        .build();
    let inputs: Vec<Matrix<f64>> = (0..6).map(|i| gen::standard::<f64>(i, 24, 12)).collect();
    let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();
    let direct = ctx
        .batch_plan::<f64>(&[(24, 12); 6], Output::Gram)
        .execute_batch(&refs);
    let svc: AtaService<f64> = AtaServiceBuilder::new(&ctx).max_batch(6).build();
    let handles: Vec<_> = inputs.iter().map(|a| svc.submit(a.clone())).collect();
    for (i, h) in handles.into_iter().enumerate() {
        let via_service = h.wait().expect("service alive").into_dense();
        let via_batch = direct[i].clone().into_dense();
        assert_eq!(
            via_service.max_abs_diff(&via_batch),
            0.0,
            "service job {i} must be bit-identical to the direct batch"
        );
    }
    let stats = svc.shutdown();
    assert_eq!(stats.jobs, 6);
}

#[test]
fn plan_cache_serves_every_front_end() {
    // One context: plans, accumulator chunks, batch slots and service
    // jobs of one shape must share a handful of cached cores instead of
    // re-planning per call.
    let ctx = AtaContext::builder().cache_words(32).build();
    let a = gen::standard::<f64>(1, 40, 16);
    let _ = ctx.gram(a.as_ref());
    let misses_after_first = ctx.plan_cache_misses();
    for _ in 0..5 {
        let _ = ctx.gram(a.as_ref());
    }
    assert_eq!(
        ctx.plan_cache_misses(),
        misses_after_first,
        "repeat one-shots must be cache hits"
    );
    assert!(ctx.plan_cache_hits() >= 5);
    // An accumulator folding the same tall shape reuses its one core.
    let mut acc = ctx.gram_accumulator::<f64>(16);
    for seed in 0..4 {
        acc.push(gen::standard::<f64>(seed, 40, 16).as_ref());
    }
    let misses_with_acc = ctx.plan_cache_misses();
    acc.push(gen::standard::<f64>(9, 40, 16).as_ref());
    assert_eq!(ctx.plan_cache_misses(), misses_with_acc);
}
