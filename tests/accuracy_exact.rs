//! Cross-validation of the accuracy substrate against exact rationals.
//!
//! `ata-core::accuracy` measures forward errors against a double-double
//! reference. That reference is itself floating point — so here the
//! reference is validated against ground truth that cannot be wrong:
//! the same Gram matrix computed over `Q64` exact rationals. Inputs are
//! dyadic (exactly representable in both `f64` and `Q64`), so the two
//! paths compute the *same* mathematical object.

use ata::core::accuracy::{
    abs_gram, compensated_gram, componentwise_factor, dd_dot, gram_forward_error, two_prod, two_sum,
};
use ata::field::Q64;
use ata::mat::{reference, Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Paired dyadic matrices: identical values as `f64` and as `Q64`.
fn dyadic_pair(seed: u64, m: usize, n: usize) -> (Matrix<f64>, Matrix<Q64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a64 = Matrix::<f64>::zeros(m, n);
    let mut aq = Matrix::<Q64>::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            // Numerator in [-255, 255], denominator 2^8: exact in both.
            let num = rng.random_range(-255i64..=255);
            a64[(i, j)] = num as f64 / 256.0;
            aq[(i, j)] = Q64::new(num, 256);
        }
    }
    (a64, aq)
}

#[test]
fn compensated_gram_matches_exact_rationals_to_the_last_bit() {
    // Gram entries are sums of m products of 16-bit dyadics: they fit
    // f64 exactly (needs ~26 bits), so a correct double-double reference
    // must equal the rational ground truth *exactly*, not approximately.
    let (m, n) = (64usize, 24);
    let (a64, aq) = dyadic_pair(42, m, n);
    let dd = compensated_gram(a64.as_ref());
    let mut exact = Matrix::<Q64>::zeros(n, n);
    reference::syrk_ln(Q64::ONE, aq.as_ref(), &mut exact.as_mut());
    for i in 0..n {
        for j in 0..=i {
            assert_eq!(
                dd[(i, j)],
                exact[(i, j)].to_f64(),
                "dd reference differs from exact rationals at ({i},{j})"
            );
        }
    }
}

#[test]
fn dd_dot_matches_exact_rationals_on_cancellation_heavy_input() {
    // Alternating huge/tiny dyadics: plain f64 summation loses the tail,
    // double-double must not (the result still fits one f64 exactly).
    let x64: Vec<f64> = (0..40)
        .map(|k| if k % 2 == 0 { 1024.0 } else { 1.0 / 1024.0 })
        .collect();
    let y64: Vec<f64> = (0..40)
        .map(|k| if k % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    let xq: Vec<Q64> = (0..40)
        .map(|k| {
            if k % 2 == 0 {
                Q64::new(1024, 1)
            } else {
                Q64::new(1, 1024)
            }
        })
        .collect();
    let yq: Vec<Q64> = (0..40)
        .map(|k| {
            if k % 2 == 0 {
                Q64::new(1, 1)
            } else {
                Q64::new(-1, 1)
            }
        })
        .collect();
    let exact: Q64 = xq.iter().zip(&yq).map(|(a, b)| *a * *b).sum();
    assert_eq!(dd_dot(&x64, &y64), exact.to_f64());
}

#[test]
fn eft_identities_hold_on_random_dyadics() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let a = rng.random_range(-1.0e6..1.0e6f64);
        let b = rng.random_range(-1.0e6..1.0e6f64);
        // two_sum: a + b == s + e exactly — verify in Q64 (both f64s are
        // dyadic rationals, so the identity is decidable).
        let (s, e) = two_sum(a, b);
        let lhs = Q64::from_f64(a) + Q64::from_f64(b);
        let rhs = Q64::from_f64(s) + Q64::from_f64(e);
        assert_eq!(lhs, rhs, "two_sum({a}, {b})");
        // two_prod on ~27-bit mantissas: products need ~54 bits, so f64
        // genuinely rounds (e != 0 for most draws) while the exact
        // rationals stay far inside Q64's range.
        let a = (a * 128.0).round() / 128.0;
        let b = (b * 128.0).round() / 128.0;
        let (p, e) = two_prod(a, b);
        let lhs = Q64::from_f64(a) * Q64::from_f64(b);
        let rhs = Q64::from_f64(p) + Q64::from_f64(e);
        assert_eq!(lhs, rhs, "two_prod({a}, {b})");
    }
}

#[test]
fn error_measurement_agrees_with_exact_error() {
    // Measure syrk's f32 error twice: once against the dd reference,
    // once against exact rationals converted to f64. The two error
    // statistics must agree to double precision.
    let (m, n) = (48usize, 20);
    let (a64, aq) = dyadic_pair(9, m, n);
    let a32 = Matrix::<f32>::from_fn(m, n, |i, j| a64[(i, j)] as f32);

    let mut c32 = Matrix::<f32>::zeros(n, n);
    ata::kernels::syrk_ln(1.0f32, a32.as_ref(), &mut c32.as_mut());

    let dd_ref = compensated_gram(a64.as_ref());
    let mut exact_q = Matrix::<Q64>::zeros(n, n);
    reference::syrk_ln(Q64::ONE, aq.as_ref(), &mut exact_q.as_mut());
    let exact_ref = Matrix::<f64>::from_fn(n, n, |i, j| {
        if j <= i {
            exact_q[(i, j)].to_f64()
        } else {
            0.0
        }
    });

    let st_dd = gram_forward_error(&c32, &dd_ref);
    let st_exact = gram_forward_error(&c32, &exact_ref);
    assert!((st_dd.max_abs - st_exact.max_abs).abs() < 1e-14);
    assert!((st_dd.fro_rel - st_exact.fro_rel).abs() < 1e-12);

    let scale = abs_gram(a64.as_ref());
    let f_dd = componentwise_factor(&c32, &dd_ref, &scale, f32::EPSILON as f64);
    let f_exact = componentwise_factor(&c32, &exact_ref, &scale, f32::EPSILON as f64);
    assert!((f_dd - f_exact).abs() < 1e-9, "{f_dd} vs {f_exact}");
}
