//! Cross-crate integration tests: the same input must yield the same
//! `A^T A` through every path the workspace offers — naive oracle,
//! serial AtA, shared-memory AtA-S, distributed AtA-D on the simulator,
//! and all three distributed baselines where applicable.
//!
//! The deprecated `gram_with`/`lower_with`/`packed_with` wrappers are
//! exercised deliberately: they must keep agreeing with the plan API
//! they now delegate to.
#![allow(deprecated)]

use ata::dist::baselines::{caps_like, cosma_like, pdsyrk_like};
use ata::dist::{ata_d, AtaDConfig};
use ata::kernels::CacheConfig;
use ata::mat::{gen, reference, Matrix};
use ata::mpisim::{run, CostModel};
use ata::{gram_with, lower_with, packed_with, AtaOptions};

fn oracle_lower(a: &Matrix<f64>) -> Matrix<f64> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
    c
}

#[test]
fn every_algorithm_agrees_on_one_input() {
    let (m, n) = (96usize, 80usize);
    let a = gen::standard::<f64>(123, m, n);
    let reference_c = oracle_lower(&a);
    let tol = ata::mat::ops::product_tol::<f64>(m, n, m as f64);

    // Serial, small base case to force deep recursion.
    let serial = lower_with(a.as_ref(), &AtaOptions::serial().cache_words(32));
    assert!(serial.max_abs_diff_lower(&reference_c) <= tol, "serial");

    // Shared-memory, several thread counts.
    for threads in [2usize, 5, 16] {
        let par = lower_with(
            a.as_ref(),
            &AtaOptions::with_threads(threads).cache_words(32),
        );
        assert!(
            par.max_abs_diff_lower(&reference_c) <= tol,
            "AtA-S P={threads}"
        );
    }

    // Distributed on the simulator.
    for ranks in [3usize, 8, 16] {
        let cfg = AtaDConfig {
            alpha: 0.5,
            cache: CacheConfig::with_words(64),
            strassen_leaves: true,
            threads_per_rank: 1,
            ..AtaDConfig::default()
        };
        let a_ref = &a;
        let report = run(ranks, CostModel::zero(), move |comm| {
            let input = if comm.rank() == 0 { Some(a_ref) } else { None };
            ata_d(input, m, n, comm, &cfg)
        });
        let c = report.results[0].as_ref().expect("root");
        assert!(c.max_abs_diff_lower(&reference_c) <= tol, "AtA-D P={ranks}");
    }
}

#[test]
fn baselines_agree_with_oracle_end_to_end() {
    let (m, n) = (64usize, 64usize);
    let a = gen::standard::<f64>(321, m, n);
    let reference_c = oracle_lower(&a);

    // pdsyrk-like.
    let a_ref = &a;
    let report = run(8, CostModel::zero(), move |comm| {
        let input = if comm.rank() == 0 { Some(a_ref) } else { None };
        pdsyrk_like(input, m, n, comm)
    });
    let c = report.results[0].as_ref().expect("root");
    assert!(c.max_abs_diff_lower(&reference_c) < 1e-9, "pdsyrk-like");

    // cosma-like computes the full A^T A (as A^T B with B = A).
    let a_ref = &a;
    let report = run(8, CostModel::zero(), move |comm| {
        let (ia, ib) = if comm.rank() == 0 {
            (Some(a_ref), Some(a_ref))
        } else {
            (None, None)
        };
        cosma_like(ia, ib, m, n, n, comm)
    });
    let c = report.results[0].as_ref().expect("root");
    let mut full_ref = reference_c.clone();
    full_ref.mirror_lower_to_upper();
    assert!(c.max_abs_diff(&full_ref) < 1e-9, "cosma-like");

    // caps-like (square only).
    let cache = CacheConfig::with_words(64);
    let a_ref = &a;
    let report = run(7, CostModel::zero(), move |comm| {
        let (ia, ib) = if comm.rank() == 0 {
            (Some(a_ref), Some(a_ref))
        } else {
            (None, None)
        };
        caps_like(ia, ib, n, comm, &cache)
    });
    let c = report.results[0].as_ref().expect("root");
    assert!(c.max_abs_diff(&full_ref) < 1e-8, "caps-like");
}

#[test]
fn f32_pipeline_works_end_to_end() {
    let (m, n) = (128usize, 48usize);
    let a = gen::standard::<f32>(55, m, n);
    let g = gram_with(a.as_ref(), &AtaOptions::with_threads(4).cache_words(64));
    let g_ref = reference::gram(a.as_ref());
    let tol = ata::mat::ops::product_tol::<f32>(m, n, m as f64);
    assert!(g.max_abs_diff(&g_ref) <= tol);
}

#[test]
fn packed_and_full_apis_are_consistent() {
    let a = gen::standard::<f64>(77, 60, 36);
    let opts = AtaOptions::serial().cache_words(64);
    let full = gram_with(a.as_ref(), &opts);
    let packed = packed_with(a.as_ref(), &opts);
    assert_eq!(packed.order(), 36);
    assert!(packed.to_full().max_abs_diff(&full) < 1e-14);
    // Symmetric accessors agree with the full matrix in both orders.
    for (i, j) in [(0usize, 5usize), (20, 3), (35, 35), (7, 30)] {
        assert_eq!(packed.get(i, j), full[(i, j)]);
        assert_eq!(packed.get(j, i), full[(i, j)]);
    }
}

#[test]
fn exactness_on_integer_inputs_across_algorithms() {
    // {-1, 0, 1} inputs: everything is exactly representable, so all
    // algorithms must agree bit-for-bit despite different bracketings.
    let (m, n) = (48usize, 40usize);
    let a = gen::ternary::<f64>(9, m, n);
    let reference_c = oracle_lower(&a);

    let serial = lower_with(a.as_ref(), &AtaOptions::serial().cache_words(16));
    assert_eq!(serial.max_abs_diff_lower(&reference_c), 0.0, "serial exact");

    let par = lower_with(a.as_ref(), &AtaOptions::with_threads(8).cache_words(16));
    assert_eq!(par.max_abs_diff_lower(&reference_c), 0.0, "AtA-S exact");

    let cfg = AtaDConfig {
        alpha: 0.5,
        cache: CacheConfig::with_words(16),
        strassen_leaves: true,
        threads_per_rank: 1,
        ..AtaDConfig::default()
    };
    let a_ref = &a;
    let report = run(12, CostModel::zero(), move |comm| {
        let input = if comm.rank() == 0 { Some(a_ref) } else { None };
        ata_d(input, m, n, comm, &cfg)
    });
    let c = report.results[0].as_ref().expect("root");
    assert_eq!(c.max_abs_diff_lower(&reference_c), 0.0, "AtA-D exact");
}

#[test]
fn context_backends_agree_through_one_api() {
    use ata::{AtaContext, Backend, Output};
    use std::num::NonZeroUsize;

    let (m, n) = (64usize, 48usize);
    let a = gen::standard::<f64>(2024, m, n);
    let reference_c = oracle_lower(&a);
    let tol = ata::mat::ops::product_tol::<f64>(m, n, m as f64);

    let backends = [
        Backend::Serial,
        Backend::Shared {
            threads: NonZeroUsize::new(4).unwrap(),
        },
        Backend::SimulatedDist {
            ranks: NonZeroUsize::new(6).unwrap(),
            loggp: CostModel::zero(),
        },
    ];
    for backend in backends {
        let ctx = AtaContext::builder()
            .backend(backend)
            .cache_words(64)
            .build();
        let plan = ctx.plan_with::<f64>(m, n, Output::Lower);
        // Execute twice through the same plan: reuse must not drift.
        let first = plan.execute(a.as_ref()).into_dense();
        let second = plan.execute(a.as_ref()).into_dense();
        assert!(
            first.max_abs_diff_lower(&reference_c) <= tol,
            "{backend:?} disagrees with the oracle"
        );
        assert_eq!(
            first.max_abs_diff(&second),
            0.0,
            "{backend:?} is not deterministic under plan reuse"
        );
    }
}

#[test]
fn deprecated_wrappers_match_context_results() {
    let (m, n) = (40usize, 32usize);
    let a = gen::standard::<f64>(99, m, n);
    let opts = AtaOptions::with_threads(3).cache_words(32);
    let legacy = gram_with(a.as_ref(), &opts);
    let ctx = ata::AtaContext::from_options(&opts);
    let modern = ctx.gram(a.as_ref());
    assert_eq!(
        legacy.max_abs_diff(&modern),
        0.0,
        "wrapper and context must run the identical computation"
    );
}

#[test]
fn simulated_cluster_reports_consistent_metrics() {
    let (m, n, p) = (64usize, 64usize, 8usize);
    let a = gen::standard::<f64>(31, m, n);
    let a_ref = &a;
    let report = run(p, CostModel::terastat(), move |comm| {
        let input = if comm.rank() == 0 { Some(a_ref) } else { None };
        ata_d(input, m, n, comm, &AtaDConfig::default());
    });
    assert_eq!(report.metrics.len(), p);
    // Critical path bounds every rank's simulated time.
    let cp = report.critical_path();
    for m in &report.metrics {
        assert!(m.sim_time <= cp + 1e-15);
        assert!(m.compute_time <= m.sim_time + 1e-15);
    }
    // The root must have sent A's blocks: nonzero traffic.
    assert!(report.metrics[0].words_sent > 0);
}
