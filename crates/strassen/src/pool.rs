//! Arena checkout/return — reusing [`StrassenWorkspace`] buffers across
//! calls.
//!
//! The paper sizes its pre-allocated matrices once and reuses them for
//! the whole recursion (§3.3); the Plan/Context execution API extends
//! that across *calls*: an [`ArenaPool`] caches returned workspaces so
//! repeated executions of the same plan stop paying the allocation (and
//! zero-fill) cost of the arena. Huang et al.'s BLIS-Strassen work makes
//! the same point for packing buffers — amortizing workspace across
//! invocations is where a practical Strassen wins or loses at small
//! sizes.
//!
//! The pool is a simple synchronized free list. `checkout` hands out the
//! largest cached arena (growing it to the requested floor if needed),
//! `give_back` returns it; concurrent workers each check out their own
//! arena, so the executing recursions never share a buffer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::workspace::StrassenWorkspace;
use ata_mat::Scalar;

/// Allocation-behavior counters of an [`ArenaPool`] — the observability
/// hook behind "steady-state executions allocate nothing" claims.
///
/// A warm pool serving a fixed working set has `misses` and `grows`
/// constant while `checkouts` keeps climbing: every checkout was served
/// from cache at sufficient capacity. Streaming callers (the facade's
/// `GramAccumulator`) assert exactly that across pushes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Total arenas handed out.
    pub checkouts: usize,
    /// Checkouts that found no cached arena and had to allocate fresh.
    pub misses: usize,
    /// Checkouts whose cached arena was under-sized and had to regrow.
    pub grows: usize,
}

/// A synchronized free list of [`StrassenWorkspace`] arenas.
///
/// Workspaces only ever grow (`reserve` never shrinks), so any cached
/// arena is valid for any problem; handing out the largest first
/// minimizes mid-recursion regrowth.
#[derive(Debug, Default)]
pub struct ArenaPool<T> {
    free: Mutex<Vec<StrassenWorkspace<T>>>,
    checkouts: AtomicUsize,
    misses: AtomicUsize,
    grows: AtomicUsize,
}

impl<T: Scalar> ArenaPool<T> {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Check out an arena with at least `min_elems` capacity, reusing a
    /// cached one when available.
    pub fn checkout(&self, min_elems: usize) -> StrassenWorkspace<T> {
        let cached = {
            let mut free = self.free.lock().expect("arena pool poisoned");
            // Largest-capacity arena first: avoids regrowing a small one
            // while a big one idles in the cache.
            let best = free
                .iter()
                .enumerate()
                .max_by_key(|(_, ws)| ws.capacity())
                .map(|(i, _)| i);
            best.map(|i| free.swap_remove(i))
        };
        self.checkouts.fetch_add(1, Ordering::Relaxed);
        if cached.is_none() {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else if cached.as_ref().is_some_and(|ws| ws.capacity() < min_elems) {
            self.grows.fetch_add(1, Ordering::Relaxed);
        }
        let mut ws = cached.unwrap_or_else(StrassenWorkspace::empty);
        ws.reserve_elems(min_elems);
        ws
    }

    /// Snapshot of the pool's allocation counters.
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            checkouts: self.checkouts.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
        }
    }

    /// Return an arena to the free list for future checkouts.
    pub fn give_back(&self, ws: StrassenWorkspace<T>) {
        self.free.lock().expect("arena pool poisoned").push(ws);
    }

    /// Pre-populate the pool with `count` arenas of `min_elems` capacity
    /// each, so the first execution allocates nothing.
    ///
    /// Undersized cached arenas are grown in place before any new one is
    /// allocated, so a long-lived pool warmed for successively larger
    /// problems tops out at `count * max(min_elems)` footprint instead
    /// of accumulating stale small arenas forever.
    pub fn warm(&self, count: usize, min_elems: usize) {
        let mut free = self.free.lock().expect("arena pool poisoned");
        for ws in free.iter_mut().take(count) {
            ws.reserve_elems(min_elems);
        }
        for _ in free.len()..count {
            free.push(StrassenWorkspace::with_capacity(min_elems));
        }
    }

    /// Number of arenas currently cached.
    pub fn cached(&self) -> usize {
        self.free.lock().expect("arena pool poisoned").len()
    }

    /// Total cached capacity in elements (the pool's memory footprint).
    pub fn cached_elems(&self) -> usize {
        self.free
            .lock()
            .expect("arena pool poisoned")
            .iter()
            .map(|ws| ws.capacity())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_from_empty_pool_allocates() {
        let pool = ArenaPool::<f64>::new();
        let ws = pool.checkout(128);
        assert!(ws.capacity() >= 128);
        assert_eq!(pool.cached(), 0);
        pool.give_back(ws);
        assert_eq!(pool.cached(), 1);
    }

    #[test]
    fn checkout_reuses_returned_arena() {
        let pool = ArenaPool::<f64>::new();
        let ws = pool.checkout(256);
        pool.give_back(ws);
        let ws2 = pool.checkout(64);
        // Got the cached 256-capacity arena back, not a fresh 64 one.
        assert!(ws2.capacity() >= 256);
        assert_eq!(pool.cached(), 0);
    }

    #[test]
    fn largest_arena_is_handed_out_first() {
        let pool = ArenaPool::<f64>::new();
        pool.give_back(StrassenWorkspace::with_capacity(32));
        pool.give_back(StrassenWorkspace::with_capacity(512));
        pool.give_back(StrassenWorkspace::with_capacity(128));
        assert_eq!(pool.checkout(0).capacity(), 512);
        assert_eq!(pool.checkout(0).capacity(), 128);
        assert_eq!(pool.checkout(0).capacity(), 32);
    }

    #[test]
    fn warm_prepopulates_to_count() {
        let pool = ArenaPool::<f64>::new();
        pool.warm(3, 100);
        assert_eq!(pool.cached(), 3);
        assert!(pool.cached_elems() >= 300);
        // Warming again with a smaller floor adds nothing.
        pool.warm(3, 50);
        assert_eq!(pool.cached(), 3);
    }

    #[test]
    fn warm_grows_in_place_instead_of_accumulating() {
        // Re-warming for successively larger problems must not leak
        // stale small arenas: count stays fixed, capacities grow.
        let pool = ArenaPool::<f64>::new();
        for elems in [10usize, 100, 1000] {
            pool.warm(2, elems);
            assert_eq!(pool.cached(), 2, "warm({elems}) accumulated arenas");
        }
        assert_eq!(pool.cached_elems(), 2 * 1000);
    }

    #[test]
    fn stats_track_misses_and_grows() {
        let pool = ArenaPool::<f64>::new();
        assert_eq!(pool.stats(), ArenaStats::default());
        // First checkout: a miss (fresh allocation).
        let ws = pool.checkout(64);
        assert_eq!(pool.stats().misses, 1);
        pool.give_back(ws);
        // Steady state: cached arena at sufficient capacity — no new
        // misses, no grows, only checkouts.
        for _ in 0..5 {
            let ws = pool.checkout(64);
            pool.give_back(ws);
        }
        let s = pool.stats();
        assert_eq!((s.checkouts, s.misses, s.grows), (6, 1, 0));
        // An oversized request regrows the cached arena.
        let ws = pool.checkout(256);
        pool.give_back(ws);
        assert_eq!(pool.stats().grows, 1);
    }

    #[test]
    fn concurrent_checkout_is_safe() {
        let pool = ArenaPool::<f64>::new();
        pool.warm(4, 64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..50 {
                        let ws = pool.checkout(64);
                        pool.give_back(ws);
                    }
                });
            }
        });
        assert_eq!(pool.cached(), 4);
    }
}
