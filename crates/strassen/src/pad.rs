//! Virtual-padding helpers shared by the Strassen and Strassen–Winograd
//! recursions.
//!
//! The paper avoids the peeling/padding of Huss-Lederman et al. by
//! "conveniently applying the BLAS routine `?axpy` ... so that it
//! simulates padding of an extra 0 column or row" (§3.1). These helpers
//! are that idea as code: sums of discordantly-sized quadrants are
//! written into ceil-sized workspace slots whose missing last row/column
//! is zero, and accumulations back into smaller `C` quadrants truncate
//! the virtual row/column again.

use ata_kernels::level1::{axpy, copy_padded};
use ata_mat::{MatMut, MatRef, Scalar};

/// `dst = pad(src)`: copy `src` into the top-left corner, zero the rest.
pub(crate) fn pad_into<T: Scalar>(dst: &mut MatMut<'_, T>, src: MatRef<'_, T>) {
    for i in 0..dst.rows() {
        let drow = dst.row_mut(i);
        if i < src.rows() {
            copy_padded(src.row(i), drow);
        } else {
            drow.fill(T::ZERO);
        }
    }
}

/// Build the `rows x cols` operand `pad(a) + sign * pad(b)` in `buf` and
/// return it as a view.
pub(crate) fn pad_sum<'s, T: Scalar>(
    buf: &'s mut [T],
    a: MatRef<'_, T>,
    sign: T,
    b: MatRef<'_, T>,
    rows: usize,
    cols: usize,
) -> MatRef<'s, T> {
    let mut dst = MatMut::from_slice(&mut buf[..rows * cols], rows, cols);
    pad_into(&mut dst, a);
    for i in 0..b.rows().min(rows) {
        axpy(sign, b.row(i), dst.row_mut(i));
    }
    dst.into_ref()
}

/// In-place chain update `dst -= pad(src)` on an operand slot that
/// already holds a previous chain value (Winograd's `T4 = T2 - B21`).
pub(crate) fn sub_padded<T: Scalar>(dst: &mut MatMut<'_, T>, src: MatRef<'_, T>) {
    for i in 0..src.rows().min(dst.rows()) {
        axpy(T::NEG_ONE, src.row(i), dst.row_mut(i));
    }
}

/// In-place chain update `dst = pad(src) - dst` (Winograd's
/// `T2 = B22 - T1` with `T1` already in the slot). Rows of `dst` beyond
/// `src` are negated (they subtract from virtual zeros).
pub(crate) fn rsub_padded<T: Scalar>(dst: &mut MatMut<'_, T>, src: MatRef<'_, T>) {
    for i in 0..dst.rows() {
        let drow = dst.row_mut(i);
        if i < src.rows() {
            let srow = src.row(i);
            let len = srow.len().min(drow.len());
            for (d, s) in drow[..len].iter_mut().zip(&srow[..len]) {
                *d = *s - *d;
            }
            for d in &mut drow[len..] {
                *d = -*d;
            }
        } else {
            for d in drow {
                *d = -*d;
            }
        }
    }
}

/// Return `src` directly if it already has the target shape, otherwise
/// pad-copy it into `buf` (the odd-dimension case).
pub(crate) fn direct_or_pad<'s, T: Scalar>(
    buf: &'s mut [T],
    src: MatRef<'s, T>,
    rows: usize,
    cols: usize,
) -> MatRef<'s, T> {
    if src.shape() == (rows, cols) {
        src
    } else {
        let mut dst = MatMut::from_slice(&mut buf[..rows * cols], rows, cols);
        pad_into(&mut dst, src);
        dst.into_ref()
    }
}

/// `c += coeff * mm`, truncating `mm` to `c`'s shape (the virtual-padding
/// inverse: rows/cols beyond `c` belong to the zero padding).
pub(crate) fn accumulate<T: Scalar>(c: &mut MatMut<'_, T>, mm: MatRef<'_, T>, coeff: T) {
    debug_assert!(c.rows() <= mm.rows() && c.cols() <= mm.cols());
    for i in 0..c.rows() {
        axpy(coeff, mm.row(i), c.row_mut(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::Matrix;

    #[test]
    fn pad_into_zero_extends() {
        let src = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let mut buf = vec![9.0f64; 9];
        let mut dst = MatMut::from_slice(&mut buf, 3, 3);
        pad_into(&mut dst, src.as_ref());
        assert_eq!(buf, [1.0, 2.0, 0.0, 3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn pad_sum_discordant_sizes() {
        // a: 2x2, b: 1x2 -> pad(a) - pad(b) at 2x2.
        let a = Matrix::from_fn(2, 2, |_, _| 5.0f64);
        let b = Matrix::from_fn(1, 2, |_, _| 2.0f64);
        let mut buf = vec![0.0f64; 4];
        let s = pad_sum(&mut buf, a.as_ref(), -1.0, b.as_ref(), 2, 2);
        assert_eq!(s[(0, 0)], 3.0);
        assert_eq!(s[(1, 1)], 5.0, "row beyond b gets pad(a) only");
    }

    #[test]
    fn sub_padded_leaves_virtual_rows() {
        let src = Matrix::from_fn(1, 2, |_, j| (j + 1) as f64);
        let mut buf = vec![10.0f64; 4];
        let mut dst = MatMut::from_slice(&mut buf, 2, 2);
        sub_padded(&mut dst, src.as_ref());
        assert_eq!(buf, [9.0, 8.0, 10.0, 10.0]);
    }

    #[test]
    fn rsub_padded_negates_virtual_region() {
        let src = Matrix::from_fn(1, 1, |_, _| 7.0f64);
        let mut buf = vec![1.0f64, 2.0, 3.0, 4.0];
        let mut dst = MatMut::from_slice(&mut buf, 2, 2);
        rsub_padded(&mut dst, src.as_ref());
        // (0,0): 7 - 1; (0,1): 0 - 2; row 1 entirely negated.
        assert_eq!(buf, [6.0, -2.0, -3.0, -4.0]);
    }

    #[test]
    fn direct_or_pad_passthrough_and_copy() {
        let m = Matrix::from_fn(2, 2, |i, j| (i + j) as f64);
        let mut buf = vec![0.0f64; 4];
        let v = direct_or_pad(&mut buf, m.as_ref(), 2, 2);
        assert_eq!(v[(1, 1)], 2.0);
        // Odd source gets padded.
        let s = Matrix::from_fn(1, 2, |_, j| j as f64 + 1.0);
        let mut buf2 = vec![9.0f64; 4];
        let v2 = direct_or_pad(&mut buf2, s.as_ref(), 2, 2);
        assert_eq!(v2[(0, 1)], 2.0);
        assert_eq!(v2[(1, 0)], 0.0);
    }

    #[test]
    fn accumulate_truncates() {
        let mm = Matrix::from_fn(3, 3, |_, _| 1.0f64);
        let mut c = Matrix::zeros(2, 2);
        accumulate(&mut c.as_mut(), mm.as_ref(), 2.0);
        assert_eq!(c[(0, 0)], 2.0);
        assert_eq!(c[(1, 1)], 2.0);
    }
}
