//! The *allocating* Strassen variant — the ablation baseline of §3.3.
//!
//! "One drawback of the naive Strassen implementation is the great amount
//! of memory allocated at each recursive step to store the results of the
//! intermediate matrix additions." This module is exactly that naive
//! variant: numerically identical to [`crate::fast_strassen`], but every
//! recursion level allocates its three temporaries from the heap. The
//! Figure 4 harness benches both to reproduce the paper's demonstration
//! that pre-allocation pays.

use crate::workspace::is_base;
use ata_kernels::level1::{axpy, copy_padded};
use ata_kernels::{gemm_tn, CacheConfig};
use ata_mat::{half_up, MatMut, MatRef, Matrix, Scalar};

/// `dst = pad(a) + sign * pad(b)` as a freshly allocated matrix.
fn pad_sum_alloc<T: Scalar>(
    a: MatRef<'_, T>,
    sign: T,
    b: MatRef<'_, T>,
    rows: usize,
    cols: usize,
) -> Matrix<T> {
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..a.rows() {
        copy_padded(a.row(i), out.row_mut(i));
    }
    for i in 0..b.rows() {
        axpy(sign, b.row(i), out.row_mut(i));
    }
    out
}

/// `pad(src)` as a freshly allocated matrix.
fn pad_alloc<T: Scalar>(src: MatRef<'_, T>, rows: usize, cols: usize) -> Matrix<T> {
    let mut out = Matrix::zeros(rows, cols);
    for i in 0..src.rows() {
        copy_padded(src.row(i), out.row_mut(i));
    }
    out
}

fn accumulate<T: Scalar>(c: &mut MatMut<'_, T>, mm: &Matrix<T>, coeff: T) {
    for i in 0..c.rows() {
        axpy(coeff, mm.row(i), c.row_mut(i));
    }
}

/// `C += alpha * A^T B`, allocating temporaries at every level.
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
pub fn strassen_allocating<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(
        m, mb,
        "strassen_allocating: A is {m}x{n} but B has {mb} rows"
    );
    assert_eq!(c.shape(), (n, k), "strassen_allocating: C must be {n}x{k}");
    rec(alpha, a, b, c, cfg);
}

fn rec<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let (m, n) = a.shape();
    let k = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if is_base(m, n, k, cfg) {
        gemm_tn(alpha, a, b, c);
        return;
    }

    let (m1, n1, k1) = (half_up(m), half_up(n), half_up(k));
    let (a11, a12, a21, a22) = a.quad_split();
    let (b11, b12, b21, b22) = b.quad_split();
    let (c11, c12, c21, c22) = (
        (0, n1, 0, k1),
        (0, n1, k1, k),
        (n1, n, 0, k1),
        (n1, n, k1, k),
    );

    // Every product allocates tA, tB (when needed) and M — the behaviour
    // the fast variant exists to avoid.
    // (quadrant bounds, accumulation sign) pairs for one product.
    type Targets = [((usize, usize, usize, usize), i8)];
    let run = |ta: MatRef<'_, T>, tb: MatRef<'_, T>, targets: &Targets, c: &mut MatMut<'_, T>| {
        let mut mm = Matrix::<T>::zeros(n1, k1);
        rec(T::ONE, ta, tb, &mut mm.as_mut(), cfg);
        for &((r0, r1, q0, q1), sgn) in targets {
            let mut cq = c.block_mut(r0, r1, q0, q1);
            let coeff = if sgn >= 0 { alpha } else { -alpha };
            accumulate(&mut cq, &mm, coeff);
        }
    };

    let ta = pad_sum_alloc(a11, T::ONE, a22, m1, n1);
    let tb = pad_sum_alloc(b11, T::ONE, b22, m1, k1);
    run(ta.as_ref(), tb.as_ref(), &[(c11, 1), (c22, 1)], c);

    let ta = pad_sum_alloc(a12, T::ONE, a22, m1, n1);
    run(ta.as_ref(), b11, &[(c21, 1), (c22, -1)], c);

    let tb = pad_sum_alloc(b12, T::NEG_ONE, b22, m1, k1);
    run(a11, tb.as_ref(), &[(c12, 1), (c22, 1)], c);

    let ta = pad_alloc(a22, m1, n1);
    let tb = pad_sum_alloc(b21, T::NEG_ONE, b11, m1, k1);
    run(ta.as_ref(), tb.as_ref(), &[(c11, 1), (c21, 1)], c);

    let ta = pad_sum_alloc(a11, T::ONE, a21, m1, n1);
    let tb = pad_alloc(b22, m1, k1);
    run(ta.as_ref(), tb.as_ref(), &[(c11, -1), (c12, 1)], c);

    let ta = pad_sum_alloc(a12, T::NEG_ONE, a11, m1, n1);
    let tb = pad_sum_alloc(b11, T::ONE, b12, m1, k1);
    run(ta.as_ref(), tb.as_ref(), &[(c22, 1)], c);

    let ta = pad_sum_alloc(a21, T::NEG_ONE, a22, m1, n1);
    let tb = pad_sum_alloc(b21, T::ONE, b22, m1, k1);
    run(ta.as_ref(), tb.as_ref(), &[(c11, 1)], c);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_strassen;
    use ata_mat::{gen, reference, Matrix};

    #[test]
    fn allocating_matches_fast_bitwise() {
        // Same arithmetic order => identical floating-point results.
        let cfg = CacheConfig::with_words(8);
        for &(m, n, k) in &[(8, 8, 8), (7, 9, 5), (16, 12, 20), (13, 13, 13)] {
            let a = gen::standard::<f64>(m as u64, m, n);
            let b = gen::standard::<f64>(n as u64, m, k);
            let mut c1 = Matrix::zeros(n, k);
            let mut c2 = Matrix::zeros(n, k);
            strassen_allocating(1.0, a.as_ref(), b.as_ref(), &mut c1.as_mut(), &cfg);
            fast_strassen(1.0, a.as_ref(), b.as_ref(), &mut c2.as_mut(), &cfg);
            assert_eq!(c1.max_abs_diff(&c2), 0.0, "({m},{n},{k})");
        }
    }

    #[test]
    fn allocating_matches_oracle() {
        let cfg = CacheConfig::with_words(16);
        let (m, n, k) = (21, 14, 19);
        let a = gen::standard::<f64>(51, m, n);
        let b = gen::standard::<f64>(52, m, k);
        let mut c = gen::standard::<f64>(53, n, k);
        let mut c_ref = c.clone();
        strassen_allocating(-0.5, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
        reference::gemm_tn(-0.5, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-10);
    }
}
