//! The arena-based Strassen recursion for `C += alpha * A^T B`.
//!
//! See the crate docs for the derivation of the transposed-left product
//! table. Each level computes the seven products one at a time into a
//! single `M` slot and accumulates them immediately into the affected `C`
//! quadrants, so only three workspace slots per level are live:
//!
//! | slot | shape            | holds                              |
//! |------|------------------|------------------------------------|
//! | `tA` | ⌈m/2⌉ x ⌈n/2⌉    | padded sums of `A` quadrants       |
//! | `tB` | ⌈m/2⌉ x ⌈k/2⌉    | padded sums of `B` quadrants       |
//! | `M`  | ⌈n/2⌉ x ⌈k/2⌉    | the current product `Mi`           |
//!
//! Quadrants that already have full ceil-size (`A11`, `B11`) are passed
//! to the recursion directly without copying.

use crate::pad::{accumulate, direct_or_pad, pad_sum};
use crate::workspace::{is_base, StrassenWorkspace};
use ata_kernels::{gemm_tn, CacheConfig};
use ata_mat::{half_up, MatMut, MatRef, Scalar};

/// The recursion. `ws` must hold at least
/// [`required_elems`]`(m, n, k, cfg)` elements.
fn rec<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    ws: &mut [T],
) {
    let (m, n) = a.shape();
    let k = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if is_base(m, n, k, cfg) {
        gemm_tn(alpha, a, b, c);
        return;
    }

    let (m1, n1, k1) = (half_up(m), half_up(n), half_up(k));
    let (a11, a12, a21, a22) = a.quad_split();
    let (b11, b12, b21, b22) = b.quad_split();

    let (ta_buf, rest) = ws.split_at_mut(m1 * n1);
    let (tb_buf, rest) = rest.split_at_mut(m1 * k1);
    let (mm_buf, rest) = rest.split_at_mut(n1 * k1);

    // C quadrant index ranges (C is n x k).
    let (c11, c12, c21, c22) = (
        (0, n1, 0, k1),
        (0, n1, k1, k),
        (n1, n, 0, k1),
        (n1, n, k1, k),
    );

    // Runs one product `M = tA^T tB` and adds `±alpha * M` to the listed
    // C quadrants. `mm_buf` is zeroed each time because the recursion has
    // accumulate semantics.
    macro_rules! product {
        ($ta:expr, $tb:expr, [$(($quad:expr, $sgn:expr)),+]) => {{
            let ta = $ta;
            let tb = $tb;
            let mut mm = MatMut::from_slice(mm_buf, n1, k1);
            mm.fill_zero();
            rec(T::ONE, ta, tb, &mut mm, cfg, rest);
            let mm = mm.into_ref();
            $(
                let (r0, r1, q0, q1) = $quad;
                let mut cq = c.block_mut(r0, r1, q0, q1);
                // `Neg` rather than `ZERO - alpha`: negation is free in
                // the flop accounting (and cheaper at run time).
                let coeff = if $sgn >= 0 { alpha } else { -alpha };
                accumulate(&mut cq, mm, coeff);
            )+
        }};
    }

    // M1 = (A11 + A22)^T (B11 + B22)  ->  +C11, +C22
    product!(
        pad_sum(ta_buf, a11, T::ONE, a22, m1, n1),
        pad_sum(tb_buf, b11, T::ONE, b22, m1, k1),
        [(c11, 1), (c22, 1)]
    );
    // M2 = (A12 + A22)^T B11          ->  +C21, -C22
    product!(
        pad_sum(ta_buf, a12, T::ONE, a22, m1, n1),
        b11,
        [(c21, 1), (c22, -1)]
    );
    // M3 = A11^T (B12 - B22)          ->  +C12, +C22
    product!(
        a11,
        pad_sum(tb_buf, b12, T::NEG_ONE, b22, m1, k1),
        [(c12, 1), (c22, 1)]
    );
    // M4 = A22^T (B21 - B11)          ->  +C11, +C21
    product!(
        direct_or_pad(ta_buf, a22, m1, n1),
        pad_sum(tb_buf, b21, T::NEG_ONE, b11, m1, k1),
        [(c11, 1), (c21, 1)]
    );
    // M5 = (A11 + A21)^T B22          ->  -C11, +C12
    product!(
        pad_sum(ta_buf, a11, T::ONE, a21, m1, n1),
        direct_or_pad(tb_buf, b22, m1, k1),
        [(c11, -1), (c12, 1)]
    );
    // M6 = (A12 - A11)^T (B11 + B12)  ->  +C22
    product!(
        pad_sum(ta_buf, a12, T::NEG_ONE, a11, m1, n1),
        pad_sum(tb_buf, b11, T::ONE, b12, m1, k1),
        [(c22, 1)]
    );
    // M7 = (A21 - A22)^T (B21 + B22)  ->  +C11
    product!(
        pad_sum(ta_buf, a21, T::NEG_ONE, a22, m1, n1),
        pad_sum(tb_buf, b21, T::ONE, b22, m1, k1),
        [(c11, 1)]
    );
}

/// `C += alpha * A^T B` by Strassen's algorithm with a caller-provided
/// workspace — the paper's `Strassen` called from `FastStrassen`
/// (Algorithm 1 line 18). The workspace is grown if undersized, so a
/// single arena can serve a whole sequence of calls.
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
pub fn fast_strassen_with<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    ws: &mut StrassenWorkspace<T>,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "fast_strassen: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "fast_strassen: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    ws.reserve_for(m, n, k, cfg);
    rec(alpha, a, b, c, cfg, ws.as_mut_slice());
}

/// `C += alpha * A^T B` allocating the workspace internally — the paper's
/// `FastStrassen` entry point (allocate once, then run the allocation-free
/// recursion).
///
/// # Panics
/// On inconsistent shapes.
pub fn fast_strassen<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let mut ws = StrassenWorkspace::empty();
    fast_strassen_with(alpha, a, b, c, cfg, &mut ws);
}

/// Theoretical number of scalar *multiplications* the recursion performs
/// (products only; the `±1`-scaled block sums are multiplication-free).
/// For `n = 2^q` square problems under a fully-recursive config this is
/// exactly `7^q = n^(log2 7)` — Strassen's count, which the measured-flop
/// tests compare against.
pub fn strassen_mults(m: usize, n: usize, k: usize, cfg: &CacheConfig) -> u64 {
    if m == 0 || n == 0 || k == 0 {
        return 0;
    }
    if is_base(m, n, k, cfg) {
        return (m as u64) * (n as u64) * (k as u64);
    }
    7 * strassen_mults(half_up(m), half_up(n), half_up(k), cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::tracked::{measure, Tracked};
    use ata_mat::{gen, ops, reference, Matrix};

    /// Oracle comparison on one shape with a recursion-forcing config.
    fn check(m: usize, n: usize, k: usize, alpha: f64, words: usize) {
        let a = gen::standard::<f64>(m as u64 * 31 + n as u64, m, n);
        let b = gen::standard::<f64>(k as u64 * 17 + 5, m, k);
        let mut c_fast = gen::standard::<f64>(99, n, k);
        let mut c_ref = c_fast.clone();
        let cfg = CacheConfig::with_words(words);
        fast_strassen(alpha, a.as_ref(), b.as_ref(), &mut c_fast.as_mut(), &cfg);
        reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        let tol = ops::product_tol::<f64>(m.max(n), k, m as f64);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff <= tol,
            "({m},{n},{k}) strassen differs from oracle by {diff} > {tol}"
        );
    }

    #[test]
    fn power_of_two_squares() {
        for n in [2usize, 4, 8, 16, 32] {
            check(n, n, n, 1.0, 8);
        }
    }

    #[test]
    fn odd_and_prime_shapes() {
        for &(m, n, k) in &[
            (3, 3, 3),
            (5, 5, 5),
            (7, 11, 13),
            (9, 6, 15),
            (17, 17, 17),
            (23, 29, 31),
        ] {
            check(m, n, k, 1.0, 8);
        }
    }

    #[test]
    fn rectangular_shapes() {
        for &(m, n, k) in &[
            (64, 8, 8),
            (8, 64, 8),
            (8, 8, 64),
            (40, 12, 28),
            (12, 40, 4),
        ] {
            check(m, n, k, 1.0, 16);
        }
    }

    #[test]
    fn alpha_scaling() {
        check(12, 12, 12, -1.5, 8);
        check(13, 9, 7, 0.25, 8);
    }

    #[test]
    fn one_dimensional_edges() {
        check(1, 5, 5, 1.0, 4);
        check(5, 1, 5, 1.0, 4);
        check(5, 5, 1, 1.0, 4);
        check(1, 1, 1, 1.0, 4);
    }

    #[test]
    fn exact_on_ternary_integers() {
        // {-1,0,1} inputs make every intermediate integral: Strassen's
        // rearrangement must give bit-exact results.
        let (m, n, k) = (24, 20, 28);
        let a = gen::ternary::<f64>(1, m, n);
        let b = gen::ternary::<f64>(2, m, k);
        let mut c_fast = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        let cfg = CacheConfig::with_words(8);
        fast_strassen(1.0, a.as_ref(), b.as_ref(), &mut c_fast.as_mut(), &cfg);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_eq!(c_fast.max_abs_diff(&c_ref), 0.0);
    }

    #[test]
    fn workspace_reuse_across_calls() {
        let cfg = CacheConfig::with_words(8);
        let mut ws = StrassenWorkspace::for_problem(16, 16, 16, &cfg);
        for trial in 0..3u64 {
            let a = gen::standard::<f64>(trial, 16, 16);
            let b = gen::standard::<f64>(100 + trial, 16, 16);
            let mut c = Matrix::zeros(16, 16);
            fast_strassen_with(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg, &mut ws);
            let mut c_ref = Matrix::zeros(16, 16);
            reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-10);
        }
    }

    #[test]
    fn strassen_mult_count_is_exact_powers_of_two() {
        // Full recursion: base only at 1x1x1 (words = 2).
        let cfg = CacheConfig::with_words(2);
        for q in 0..6u32 {
            let n = 1usize << q;
            assert_eq!(strassen_mults(n, n, n, &cfg), 7u64.pow(q), "n={n}");
        }
    }

    #[test]
    fn measured_mults_match_theory_exactly() {
        let cfg = CacheConfig::with_words(2);
        for q in 1..5u32 {
            let n = 1usize << q;
            let a = gen::standard::<Tracked>(3, n, n);
            let b = gen::standard::<Tracked>(4, n, n);
            let mut c = Matrix::<Tracked>::zeros(n, n);
            let (_, ops) = measure(|| {
                fast_strassen(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
            });
            assert_eq!(
                ops.muls,
                7u64.pow(q),
                "n={n}: measured muls must equal 7^q exactly"
            );
        }
    }

    #[test]
    fn measured_block_sums_match_the_papers_18() {
        // One recursion level on an even problem: 10 operand sums
        // (tA/tB builds) + 12 quadrant accumulations, each (n/2)^2
        // elementwise adds/subs. The paper counts 18 "matrix additions"
        // because it counts C-quadrant writes as 8 combinations; our
        // accumulate-in-place scheme performs 12 cheaper ones. Verify the
        // additive volume: (10 + 12) * (n/2)^2.
        let n = 8usize;
        // Stop after one level: (4,4,4) -> 4*4+4*4 = 32 <= 32.
        let cfg = CacheConfig::with_words(32);
        let a = gen::standard::<Tracked>(5, n, n);
        let b = gen::standard::<Tracked>(6, n, n);
        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, ops) = measure(|| {
            fast_strassen(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
        });
        let half_sq = (n / 2 * n / 2) as u64;
        // Each of the 7 base-case gemms on (4,4,4) does one add per
        // multiply: 4^3 adds.
        let base_adds = 7 * (n / 2).pow(3) as u64;
        assert_eq!(
            ops.additive() - base_adds,
            22 * half_sq,
            "block-sum volume must be 22 half-squares"
        );
    }

    #[test]
    fn undersized_workspace_grows_transparently() {
        let cfg = CacheConfig::with_words(8);
        let mut ws = StrassenWorkspace::<f64>::with_capacity(1);
        let a = gen::standard::<f64>(1, 12, 12);
        let b = gen::standard::<f64>(2, 12, 12);
        let mut c = Matrix::zeros(12, 12);
        fast_strassen_with(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg, &mut ws);
        let mut c_ref = Matrix::zeros(12, 12);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "fast_strassen")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(4, 4);
        let b = Matrix::<f64>::zeros(5, 4);
        let mut c = Matrix::<f64>::zeros(4, 4);
        fast_strassen(
            1.0,
            a.as_ref(),
            b.as_ref(),
            &mut c.as_mut(),
            &CacheConfig::default(),
        );
    }
}
