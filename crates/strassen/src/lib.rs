//! FastStrassen: Strassen's algorithm for `C += alpha * A^T B` on
//! rectangular, odd-sized matrices, with a pre-allocated workspace.
//!
//! This crate implements §3.1–§3.3 of Arrigoni et al. (ICPP 2021):
//!
//! * the seven-product recursion is specialized for a **transposed left
//!   operand**, so `A^T` is never materialized: with `X = A^T` the block
//!   sums `X11 + X22 = (A11 + A22)^T` etc. are computed on untransposed
//!   blocks of `A`, and every product `Mi` is again a transposed-left
//!   product;
//! * odd dimensions use **virtual padding**: quadrant sums are written
//!   into ceil-sized workspace slots whose missing last row/column is
//!   zero-filled (the paper does this with size-aware `?axpy` calls
//!   instead of the peeling/padding of Huss-Lederman et al.), and
//!   accumulation into smaller `C` quadrants simply truncates;
//! * the recursion runs inside a **single arena** ([`StrassenWorkspace`])
//!   allocated once up front — the paper's `FastStrassen` wrapper
//!   (Algorithm 1, lines 14–18). Per-level slots are carved off with
//!   `split_at_mut`, so the compute phase performs no heap allocation;
//! * [`alloc::strassen_allocating`] is the naive variant that allocates
//!   temporaries at every level — kept as the ablation baseline of
//!   Figure 4, which shows the benefit of pre-allocation.

#![forbid(unsafe_code)]

pub mod alloc;
pub mod fast;
pub(crate) mod pad;
pub mod pool;
pub mod winograd;
pub mod workspace;

pub use fast::{fast_strassen, fast_strassen_with, strassen_mults};
pub use pool::{ArenaPool, ArenaStats};
pub use winograd::{required_elems_winograd, winograd_strassen, winograd_strassen_with};
pub use workspace::{required_elems, StrassenWorkspace};
