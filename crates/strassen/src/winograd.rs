//! The Strassen–Winograd variant of [`crate::fast_strassen`]:
//! 7 multiplications, 15 block additions instead of 18.
//!
//! §3.2 of the paper counts "18 sums between sub-matrices" for classic
//! Strassen. Winograd's 1971 rearrangement shares three intermediate
//! sums (`U2 = M1 + M6`, `U3 = U2 + M7`, `U4 = U2 + M5`) and reaches the
//! minimum of 15 additions for any 7-multiplication scheme (Probert's
//! lower bound). The paper leaves this as an implementation alternative;
//! we build it as an ablation of the block-addition count.
//!
//! Under this workspace's *accumulate* semantics (`C += alpha A^T B`
//! rather than `C = A^T B`) the counts shift by the four unavoidable
//! C-quadrant accumulations: classic performs 22 block-add volumes per
//! level (10 operand sums + 12 accumulations), Winograd 19 (8 operand
//! sums + 2 shared-U builds + 9 accumulations) — the same 3-addition
//! saving, verified *by measurement* in the tests below.
//!
//! With `X = A^T` the operands map to untransposed quadrants of `A`
//! (`X11 = A11^T, X12 = A21^T, X21 = A12^T, X22 = A22^T`), so like the
//! classic recursion, `A^T` is never materialized:
//!
//! ```text
//! S1 = (A12 + A22)^T        T1 = B12 - B11        M5 = S1 T1
//! S2 = S1 - A11^T           T2 = B22 - T1         M6 = S2 T2
//! S4 = (A21)^T - S2         T4 = T2 - B21         M4 = A22^T T4
//! S3 = (A11 - A12)^T        T3 = B22 - B12        M7 = S3 T3
//! M1 = A11^T B11            M2 = A21^T B21        M3 = S4 B22
//!
//! C11 += a (M1 + M2)                 U2 = M1 + M6
//! C12 += a (U2 + M5 + M3)            U3 = U2 + M7
//! C21 += a (U3 - M4)
//! C22 += a (U3 + M5)
//! ```
//!
//! The S/T chains are computed *in place* in the two operand slots (each
//! chain step is one block addition), which is why the operand-sum count
//! drops from 10 to 8. The price is workspace: three product slots must
//! be live at once (`M6`, `M7`, `M1` while building `U2`/`U3`) plus a
//! second A-side slot for `direct_or_pad` while a chain value is held —
//! `2·⌈m/2⌉⌈n/2⌉ + ⌈m/2⌉⌈k/2⌉ + 3·⌈n/2⌉⌈k/2⌉` per level against classic's
//! `⌈m/2⌉⌈n/2⌉ + ⌈m/2⌉⌈k/2⌉ + ⌈n/2⌉⌈k/2⌉`. The `ablation` bench bin
//! quantifies the trade on real workloads.

use crate::pad::{accumulate, direct_or_pad, pad_sum, rsub_padded, sub_padded};
use crate::workspace::{is_base, StrassenWorkspace};
use ata_kernels::level1::axpy;
use ata_kernels::{gemm_tn, CacheConfig};
use ata_mat::{half_up, MatMut, MatRef, Scalar};

/// Exact number of workspace elements the Winograd recursion on a
/// `(m, n, k)` problem consumes (counterpart of
/// [`crate::workspace::required_elems`]).
pub fn required_elems_winograd(m: usize, n: usize, k: usize, cfg: &CacheConfig) -> usize {
    if m == 0 || n == 0 || k == 0 || is_base(m, n, k, cfg) {
        return 0;
    }
    let (m1, n1, k1) = (half_up(m), half_up(n), half_up(k));
    2 * m1 * n1 + m1 * k1 + 3 * n1 * k1 + required_elems_winograd(m1, n1, k1, cfg)
}

/// The recursion. `ws` must hold at least
/// [`required_elems_winograd`]`(m, n, k, cfg)` elements.
fn rec<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    ws: &mut [T],
) {
    let (m, n) = a.shape();
    let k = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if is_base(m, n, k, cfg) {
        gemm_tn(alpha, a, b, c);
        return;
    }

    let (m1, n1, k1) = (half_up(m), half_up(n), half_up(k));
    let (a11, a12, a21, a22) = a.quad_split();
    let (b11, b12, b21, b22) = b.quad_split();

    let (ta_buf, rest) = ws.split_at_mut(m1 * n1);
    let (ta2_buf, rest) = rest.split_at_mut(m1 * n1);
    let (tb_buf, rest) = rest.split_at_mut(m1 * k1);
    let (p1_buf, rest) = rest.split_at_mut(n1 * k1);
    let (p2_buf, rest) = rest.split_at_mut(n1 * k1);
    let (p3_buf, rest) = rest.split_at_mut(n1 * k1);

    // C quadrant index ranges (C is n x k).
    let (c11, c12, c21, c22) = (
        (0, n1, 0, k1),
        (0, n1, k1, k),
        (n1, n, 0, k1),
        (n1, n, k1, k),
    );

    // Run one product `P = ta^T tb` into a zeroed slot.
    macro_rules! product {
        ($p:ident, $ta:expr, $tb:expr, $rest:expr) => {{
            let ta = $ta;
            let tb = $tb;
            let mut p = MatMut::from_slice($p, n1, k1);
            p.fill_zero();
            rec(T::ONE, ta, tb, &mut p, cfg, $rest);
        }};
    }
    // `c_quad += sgn * alpha * P` (truncating).
    macro_rules! acc {
        ($quad:expr, $p:ident, $sgn:expr) => {{
            let (r0, r1, q0, q1) = $quad;
            let mut cq = c.block_mut(r0, r1, q0, q1);
            let p = MatRef::from_slice(&$p[..n1 * k1], n1, k1);
            let coeff = if $sgn >= 0 { alpha } else { -alpha };
            accumulate(&mut cq, p, coeff);
        }};
    }

    // ---- step 1: S1 = A12 + A22, T1 = B12 - B11, M5 = S1^T T1 ----
    {
        let ta = pad_sum(ta_buf, a12, T::ONE, a22, m1, n1);
        let tb = pad_sum(tb_buf, b12, T::NEG_ONE, b11, m1, k1);
        product!(p1_buf, ta, tb, rest);
    }
    acc!(c12, p1_buf, 1); // C12 += a M5
    acc!(c22, p1_buf, 1); // C22 += a M5  (P1 free)

    // ---- step 2: S2 = S1 - A11 (in place), T2 = B22 - T1 (in place),
    //              M6 = S2^T T2 (kept for U2) ----
    {
        let mut ta = MatMut::from_slice(&mut ta_buf[..m1 * n1], m1, n1);
        sub_padded(&mut ta, a11);
        let mut tb = MatMut::from_slice(&mut tb_buf[..m1 * k1], m1, k1);
        rsub_padded(&mut tb, b22);
    }
    {
        let ta = MatRef::from_slice(&ta_buf[..m1 * n1], m1, n1);
        let tb = MatRef::from_slice(&tb_buf[..m1 * k1], m1, k1);
        product!(p2_buf, ta, tb, rest);
    }

    // ---- step 3: T4 = T2 - B21 (in place), M4 = A22^T T4 ----
    {
        let mut tb = MatMut::from_slice(&mut tb_buf[..m1 * k1], m1, k1);
        sub_padded(&mut tb, b21);
    }
    {
        let ta = direct_or_pad(ta2_buf, a22, m1, n1);
        let tb = MatRef::from_slice(&tb_buf[..m1 * k1], m1, k1);
        product!(p3_buf, ta, tb, rest);
    }
    acc!(c21, p3_buf, -1); // C21 -= a M4  (P3 free)

    // ---- step 4: S4 = A21 - S2 (in place), M3 = S4^T B22 ----
    {
        let mut ta = MatMut::from_slice(&mut ta_buf[..m1 * n1], m1, n1);
        rsub_padded(&mut ta, a21);
    }
    {
        let ta = MatRef::from_slice(&ta_buf[..m1 * n1], m1, n1);
        let tb = direct_or_pad(tb_buf, b22, m1, k1);
        product!(p3_buf, ta, tb, rest);
    }
    acc!(c12, p3_buf, 1); // C12 += a M3  (P3 free)

    // ---- step 5: S3 = A11 - A12, T3 = B22 - B12, M7 = S3^T T3 (kept) ----
    {
        let ta = pad_sum(ta2_buf, a11, T::NEG_ONE, a12, m1, n1);
        let tb = pad_sum(tb_buf, b22, T::NEG_ONE, b12, m1, k1);
        product!(p3_buf, ta, tb, rest);
    }

    // ---- step 6: M1 = A11^T B11 ----
    {
        let ta = direct_or_pad(ta_buf, a11, m1, n1);
        let tb = direct_or_pad(tb_buf, b11, m1, k1);
        product!(p1_buf, ta, tb, rest);
    }
    acc!(c11, p1_buf, 1); // C11 += a M1

    // ---- step 7: U2 = M1 + M6 (into P2), C12 += a U2;
    //              U3 = U2 + M7 (into P2), C21 += a U3, C22 += a U3 ----
    axpy(T::ONE, &p1_buf[..n1 * k1], &mut p2_buf[..n1 * k1]); // P2 = U2
    acc!(c12, p2_buf, 1);
    axpy(T::ONE, &p3_buf[..n1 * k1], &mut p2_buf[..n1 * k1]); // P2 = U3
    acc!(c21, p2_buf, 1);
    acc!(c22, p2_buf, 1);

    // ---- step 8: M2 = A21^T B21, C11 += a M2 ----
    {
        let ta = direct_or_pad(ta_buf, a21, m1, n1);
        let tb = direct_or_pad(tb_buf, b21, m1, k1);
        product!(p1_buf, ta, tb, rest);
    }
    acc!(c11, p1_buf, 1);
}

/// `C += alpha * A^T B` by the Strassen–Winograd algorithm with a
/// caller-provided workspace. Drop-in replacement for
/// [`crate::fast_strassen_with`]; same contract, 15 block additions per
/// level instead of 18, ~2x workspace.
///
/// # Panics
/// On inconsistent shapes.
pub fn winograd_strassen_with<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    ws: &mut StrassenWorkspace<T>,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "winograd_strassen: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "winograd_strassen: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    ws.reserve_elems(required_elems_winograd(m, n, k, cfg));
    rec(alpha, a, b, c, cfg, ws.as_mut_slice());
}

/// `C += alpha * A^T B` by Strassen–Winograd, allocating the workspace
/// internally. Drop-in replacement for [`crate::fast_strassen`].
///
/// # Panics
/// On inconsistent shapes.
pub fn winograd_strassen<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let mut ws = StrassenWorkspace::empty();
    winograd_strassen_with(alpha, a, b, c, cfg, &mut ws);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fast_strassen;
    use ata_mat::tracked::{measure, Tracked};
    use ata_mat::{gen, ops, reference, Matrix};

    fn check(m: usize, n: usize, k: usize, alpha: f64, words: usize) {
        let a = gen::standard::<f64>(m as u64 * 37 + n as u64, m, n);
        let b = gen::standard::<f64>(k as u64 * 13 + 7, m, k);
        let mut c_fast = gen::standard::<f64>(55, n, k);
        let mut c_ref = c_fast.clone();
        let cfg = CacheConfig::with_words(words);
        winograd_strassen(alpha, a.as_ref(), b.as_ref(), &mut c_fast.as_mut(), &cfg);
        reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        let tol = ops::product_tol::<f64>(m.max(n), k, m as f64);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff <= tol,
            "({m},{n},{k}) winograd differs from oracle by {diff} > {tol}"
        );
    }

    #[test]
    fn power_of_two_squares() {
        for n in [2usize, 4, 8, 16, 32] {
            check(n, n, n, 1.0, 8);
        }
    }

    #[test]
    fn odd_and_prime_shapes() {
        for &(m, n, k) in &[
            (3, 3, 3),
            (5, 5, 5),
            (7, 11, 13),
            (9, 6, 15),
            (17, 17, 17),
            (23, 29, 31),
        ] {
            check(m, n, k, 1.0, 8);
        }
    }

    #[test]
    fn rectangular_shapes() {
        for &(m, n, k) in &[
            (64, 8, 8),
            (8, 64, 8),
            (8, 8, 64),
            (40, 12, 28),
            (12, 40, 4),
        ] {
            check(m, n, k, 1.0, 16);
        }
    }

    #[test]
    fn alpha_scaling_and_edges() {
        check(12, 12, 12, -1.5, 8);
        check(13, 9, 7, 0.25, 8);
        check(1, 5, 5, 1.0, 4);
        check(5, 1, 5, 1.0, 4);
        check(5, 5, 1, 1.0, 4);
    }

    #[test]
    fn exact_on_ternary_integers() {
        let (m, n, k) = (24, 20, 28);
        let a = gen::ternary::<f64>(11, m, n);
        let b = gen::ternary::<f64>(12, m, k);
        let mut c_win = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        let cfg = CacheConfig::with_words(8);
        winograd_strassen(1.0, a.as_ref(), b.as_ref(), &mut c_win.as_mut(), &cfg);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_eq!(c_win.max_abs_diff(&c_ref), 0.0);
    }

    #[test]
    fn agrees_with_classic_strassen_exactly_on_integers() {
        // Same field values, different add schedules: on integer inputs
        // both must land on the identical matrix.
        let (m, n, k) = (17, 15, 19);
        let a = gen::ternary::<f64>(21, m, n);
        let b = gen::ternary::<f64>(22, m, k);
        let cfg = CacheConfig::with_words(8);
        let mut c_win = Matrix::zeros(n, k);
        let mut c_cls = Matrix::zeros(n, k);
        winograd_strassen(1.0, a.as_ref(), b.as_ref(), &mut c_win.as_mut(), &cfg);
        fast_strassen(1.0, a.as_ref(), b.as_ref(), &mut c_cls.as_mut(), &cfg);
        assert_eq!(c_win.max_abs_diff(&c_cls), 0.0);
    }

    #[test]
    fn measured_mults_match_strassen_count() {
        // Winograd changes the additions only: multiplications stay 7^q.
        let cfg = CacheConfig::with_words(2);
        for q in 1..5u32 {
            let n = 1usize << q;
            let a = gen::standard::<Tracked>(3, n, n);
            let b = gen::standard::<Tracked>(4, n, n);
            let mut c = Matrix::<Tracked>::zeros(n, n);
            let (_, ops) = measure(|| {
                winograd_strassen(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
            });
            assert_eq!(ops.muls, 7u64.pow(q), "n={n}");
        }
    }

    #[test]
    fn measured_block_adds_beat_classic_by_three() {
        // One recursion level on an even problem: Winograd must perform
        // exactly 19 half-square add-volumes against classic's 22 — the
        // 18-vs-15 textbook gap shifted by the common 4 accumulate-mode
        // C-writes.
        let n = 8usize;
        let cfg = CacheConfig::with_words(32); // base at (4,4,4)
        let half_sq = (n / 2 * n / 2) as u64;
        let base_adds = 7 * (n / 2).pow(3) as u64;

        let a = gen::standard::<Tracked>(5, n, n);
        let b = gen::standard::<Tracked>(6, n, n);

        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, win) = measure(|| {
            winograd_strassen(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
        });
        assert_eq!(
            win.additive() - base_adds,
            19 * half_sq,
            "winograd block-sum volume"
        );

        let mut c2 = Matrix::<Tracked>::zeros(n, n);
        let (_, cls) = measure(|| {
            fast_strassen(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c2.as_mut(), &cfg);
        });
        assert_eq!(
            cls.additive() - base_adds,
            22 * half_sq,
            "classic block-sum volume"
        );
    }

    #[test]
    fn workspace_requirement_is_larger_but_bounded() {
        let cfg = CacheConfig::with_words(2);
        for n in [8usize, 16, 33, 100] {
            let w = required_elems_winograd(n, n, n, &cfg);
            let s = crate::workspace::required_elems(n, n, n, &cfg);
            assert!(w > s, "n={n}: winograd needs more workspace");
            // Per level 6 ceil-half-squares vs 3: at most ~2x plus
            // rounding slack.
            assert!(
                w <= 2 * s + 6 * (n + 2),
                "n={n}: requirement {w} not within 2x of classic {s}"
            );
        }
    }

    #[test]
    fn workspace_reuse_across_calls() {
        let cfg = CacheConfig::with_words(8);
        let mut ws = StrassenWorkspace::<f64>::empty();
        for trial in 0..3u64 {
            let a = gen::standard::<f64>(trial, 16, 16);
            let b = gen::standard::<f64>(100 + trial, 16, 16);
            let mut c = Matrix::zeros(16, 16);
            winograd_strassen_with(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg, &mut ws);
            let mut c_ref = Matrix::zeros(16, 16);
            reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "winograd_strassen")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(4, 4);
        let b = Matrix::<f64>::zeros(5, 4);
        let mut c = Matrix::<f64>::zeros(4, 4);
        winograd_strassen(
            1.0,
            a.as_ref(),
            b.as_ref(),
            &mut c.as_mut(),
            &CacheConfig::default(),
        );
    }
}
