//! The pre-allocated Strassen arena (§3.3 of the paper).
//!
//! "In order to avoid frequent memory allocations and releases, we call
//! recursive Strassen on pre-allocated matrices M, P and Q. The size of
//! such matrices is sufficiently large to store all intermediate matrix
//! operation results throughout the recursive calls."
//!
//! Instead of three separate arrays, the arena is one buffer from which
//! each recursion level carves its three slots (`tA`: ⌈m/2⌉x⌈n/2⌉,
//! `tB`: ⌈m/2⌉x⌈k/2⌉, `M`: ⌈n/2⌉x⌈k/2⌉) with `split_at_mut`, passing the
//! tail to the child call. The required capacity is computed by
//! *simulating* the recursion's dimension sequence, so it is exact — and
//! provably below the paper's `3/2 n^2` bound (Eq. 4), which a unit test
//! checks.

use ata_kernels::CacheConfig;
use ata_mat::{half_up, Scalar};

/// Decide whether a `(m, n, k)` transposed-left product is a recursion
/// base case. Must be used identically by the size simulation and the
/// actual recursion (a mismatch would over- or under-allocate).
#[inline]
pub(crate) fn is_base(m: usize, n: usize, k: usize, cfg: &CacheConfig) -> bool {
    // The 1x1x1 guard keeps the recursion terminating even for absurdly
    // small cache budgets used in counting tests.
    cfg.gemm_base(m, n, k) || (m <= 1 && n <= 1 && k <= 1)
}

/// Exact number of workspace elements the recursion on a `(m, n, k)`
/// problem consumes.
pub fn required_elems(m: usize, n: usize, k: usize, cfg: &CacheConfig) -> usize {
    if m == 0 || n == 0 || k == 0 || is_base(m, n, k, cfg) {
        return 0;
    }
    let (m1, n1, k1) = (half_up(m), half_up(n), half_up(k));
    m1 * n1 + m1 * k1 + n1 * k1 + required_elems(m1, n1, k1, cfg)
}

/// Reusable arena for [`crate::fast_strassen_with`].
///
/// A workspace sized for one problem can be reused for any problem with
/// equal or smaller requirement — AtA does exactly that, sizing one arena
/// for its largest `FastStrassen` call and sharing it across the whole
/// recursion (§3.3).
#[derive(Debug, Clone)]
pub struct StrassenWorkspace<T> {
    buf: Vec<T>,
}

impl<T: Scalar> StrassenWorkspace<T> {
    /// Arena sized exactly for a `(m, n, k)` product under `cfg`.
    pub fn for_problem(m: usize, n: usize, k: usize, cfg: &CacheConfig) -> Self {
        Self {
            buf: vec![T::ZERO; required_elems(m, n, k, cfg)],
        }
    }

    /// Arena with an explicit element capacity.
    pub fn with_capacity(elems: usize) -> Self {
        Self {
            buf: vec![T::ZERO; elems],
        }
    }

    /// Empty arena (only valid for base-case-sized problems).
    pub fn empty() -> Self {
        Self { buf: Vec::new() }
    }

    /// Capacity in elements.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Grow (never shrink) to cover a `(m, n, k)` problem.
    pub fn reserve_for(&mut self, m: usize, n: usize, k: usize, cfg: &CacheConfig) {
        self.reserve_elems(required_elems(m, n, k, cfg));
    }

    /// Grow (never shrink) to an explicit element count — used by the
    /// Winograd variant, whose per-level slot layout differs.
    pub fn reserve_elems(&mut self, need: usize) {
        if need > self.buf.len() {
            self.buf.resize(need, T::ZERO);
        }
    }

    /// Whole buffer as a mutable slice for the recursion to carve.
    pub(crate) fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_case_needs_nothing() {
        let cfg = CacheConfig::default();
        assert_eq!(required_elems(10, 10, 10, &cfg), 0);
        assert_eq!(required_elems(0, 500, 500, &cfg), 0);
    }

    #[test]
    fn requirement_is_monotone_in_size() {
        let cfg = CacheConfig::with_words(16);
        let mut prev = 0;
        for n in [8usize, 16, 32, 64, 128] {
            let need = required_elems(n, n, n, &cfg);
            assert!(need >= prev, "requirement must grow with n");
            prev = need;
        }
    }

    #[test]
    fn eq4_bound_holds_for_square_problems() {
        // Paper Eq. 4: the per-matrix workspace is <= n^2/2, totalling
        // 3/2 n^2 across M, P, Q. Our exact accounting must stay below.
        let cfg = CacheConfig::with_words(2);
        for n in [4usize, 7, 16, 33, 100, 257] {
            let need = required_elems(n, n, n, &cfg);
            let bound = 3 * n * n / 2 + 3 * n; // small-n slack for ceils
            assert!(
                need <= bound,
                "n={n}: required {need} exceeds 3/2 n^2 bound {bound}"
            );
            // And it is a genuine geometric sum: more than one level's worth.
            assert!(need > 3 * (n / 2) * (n / 2), "n={n}: {need} too small");
        }
    }

    #[test]
    fn first_level_slots_match_formula() {
        // For even (m, n, k) and a cfg that stops after one level, the
        // requirement is exactly m/2*n/2 + m/2*k/2 + n/2*k/2.
        let (m, n, k) = (8usize, 6, 4);
        // After one split: (4,3,2): 4*3+4*2 = 20 <= 20 -> base.
        let cfg = CacheConfig::with_words(20);
        assert_eq!(required_elems(m, n, k, &cfg), 4 * 3 + 4 * 2 + 3 * 2);
    }

    #[test]
    fn workspace_reuse_and_growth() {
        let cfg = CacheConfig::with_words(2);
        let mut ws = StrassenWorkspace::<f64>::for_problem(8, 8, 8, &cfg);
        let c8 = ws.capacity();
        ws.reserve_for(4, 4, 4, &cfg);
        assert_eq!(ws.capacity(), c8, "reserve never shrinks");
        ws.reserve_for(16, 16, 16, &cfg);
        assert!(ws.capacity() > c8, "reserve grows for bigger problems");
    }

    #[test]
    fn rectangular_requirements_follow_shape() {
        let cfg = CacheConfig::with_words(8);
        // Very tall-thin product needs much less workspace than square of
        // the long side.
        let tall = required_elems(1024, 8, 8, &cfg);
        let square = required_elems(1024, 1024, 1024, &cfg);
        assert!(tall < square / 100);
    }
}
