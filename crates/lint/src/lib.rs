//! `ata-lint`: in-repo static analysis for the `ata` workspace.
//!
//! The workspace carries invariants that `rustc` and `clippy` cannot
//! see: exact-op kernel contracts, `Tracked` thread-local op counting
//! that breaks when threads are spawned outside the vendored pool,
//! raw-pointer matrix views with hand-written `Send`/`Sync`, and a
//! serving layer whose lock-and-channel discipline is otherwise only
//! enforced by tests. This crate makes those invariants mechanically
//! checkable, in the spirit of the layer contracts that make the
//! BLIS-style kernel methodology work.
//!
//! Two subsystems, both dependency-free (the build is fully offline,
//! so no `syn` — a hand-rolled lexer in [`lex`] provides token-level
//! structure):
//!
//! - [`lints`] / [`check`]: five repo-specific lints over every
//!   workspace source file, each with an inline
//!   `// ata-lint: allow(<lint>)` escape hatch.
//! - [`api`] / [`write_api`] / [`verify_api`]: per-crate public-API
//!   signature snapshots committed under `API/`, so any unacknowledged
//!   public-surface change fails CI (`ata-lint api --verify`).
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run -p ata-lint -- check         # lint the tree
//! cargo run -p ata-lint -- api           # regenerate API/ snapshots
//! cargo run -p ata-lint -- api --verify  # fail on snapshot drift
//! ```

#![forbid(unsafe_code)]

pub mod api;
pub mod lex;
pub mod lints;

pub use lints::{lint_file, Diagnostic, LINT_NAMES, UNSAFE_ALLOWLIST};

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: VCS state, build output, the
/// vendored stand-ins (not ours to lint), lint test fixtures
/// (intentionally bad), and the snapshot directory itself.
pub const SKIP_DIRS: [&str; 5] = [".git", "target", "third_party", "fixtures", "API"];

/// All workspace-relative `/`-separated paths of `.rs` files under
/// `root`, sorted, skipping [`SKIP_DIRS`].
pub fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    visit(root, root, &mut out)?;
    out.sort();
    Ok(out)
}

fn visit(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_str()) {
                visit(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(rel_str(root, &path));
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel_str(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.iter()
        .map(|c| c.to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Run every lint over every workspace source file.
pub fn check(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    for rel in rust_sources(root)? {
        let src = fs::read_to_string(root.join(&rel))?;
        diags.extend(lint_file(&rel, &src));
    }
    Ok(diags)
}

/// The workspace's own crates as `(name, src_dir)`, facade first, then
/// `crates/*` sorted by directory. Vendored `third_party/*` stand-ins
/// are excluded: their API is not ours to snapshot.
pub fn workspace_crates(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    if let Some(name) = crate_name(&root.join("Cargo.toml"))? {
        out.push((name, root.join("src")));
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        dirs.sort();
        for dir in dirs {
            if let Some(name) = crate_name(&dir.join("Cargo.toml"))? {
                out.push((name, dir.join("src")));
            }
        }
    }
    Ok(out)
}

/// The `name = ".."` from a manifest's `[package]` section, if any.
fn crate_name(manifest: &Path) -> io::Result<Option<String>> {
    if !manifest.is_file() {
        return Ok(None);
    }
    let text = fs::read_to_string(manifest)?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
        } else if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    return Ok(Some(rest.trim().trim_matches('"').to_string()));
                }
            }
        }
    }
    Ok(None)
}

/// Extract one crate's public-API entries from its `src_dir`.
pub fn crate_api(src_dir: &Path) -> io::Result<BTreeSet<String>> {
    let mut entries = BTreeSet::new();
    let mut files = Vec::new();
    visit(src_dir, src_dir, &mut files)?;
    files.sort();
    for rel in files {
        let src = fs::read_to_string(src_dir.join(&rel))?;
        entries.extend(api::extract(&api::mod_path_of(&rel), &src));
    }
    Ok(entries)
}

/// Rendered `API/<crate>.txt` contents for every workspace crate.
pub fn api_snapshots(root: &Path) -> io::Result<BTreeMap<String, String>> {
    let mut out = BTreeMap::new();
    for (name, src_dir) in workspace_crates(root)? {
        if !src_dir.is_dir() {
            continue;
        }
        let entries = crate_api(&src_dir)?;
        let mut text = format!(
            "# Public API of `{name}` — generated by `cargo run -p ata-lint -- api`.\n\
             # Verified in CI by `ata-lint api --verify`; regenerate on intentional changes.\n"
        );
        for e in &entries {
            text.push_str(e);
            text.push('\n');
        }
        out.insert(name, text);
    }
    Ok(out)
}

/// Write (or refresh) `API/<crate>.txt` snapshots; returns the
/// workspace-relative paths written.
pub fn write_api(root: &Path) -> io::Result<Vec<String>> {
    let dir = root.join("API");
    fs::create_dir_all(&dir)?;
    let mut written = Vec::new();
    for (name, text) in api_snapshots(root)? {
        let path = dir.join(format!("{name}.txt"));
        fs::write(&path, text)?;
        written.push(rel_str(root, &path));
    }
    Ok(written)
}

/// Compare current sources against committed `API/` snapshots; returns
/// one human-readable problem per drifted, missing or orphaned file.
pub fn verify_api(root: &Path) -> io::Result<Vec<String>> {
    let mut problems = Vec::new();
    let expected = api_snapshots(root)?;
    for (name, want) in &expected {
        let path = root.join("API").join(format!("{name}.txt"));
        match fs::read_to_string(&path) {
            Err(_) => problems.push(format!(
                "API/{name}.txt is missing — run `cargo run -p ata-lint -- api`"
            )),
            Ok(have) if have != *want => {
                let have_set: BTreeSet<&str> = have.lines().collect();
                let want_set: BTreeSet<&str> = want.lines().collect();
                for gone in have_set.difference(&want_set) {
                    problems.push(format!("API/{name}.txt: removed: {gone}"));
                }
                for new in want_set.difference(&have_set) {
                    problems.push(format!("API/{name}.txt: added: {new}"));
                }
                if have_set == want_set {
                    problems.push(format!("API/{name}.txt: entries reordered or reformatted"));
                }
            }
            Ok(_) => {}
        }
    }
    let api_dir = root.join("API");
    if api_dir.is_dir() {
        for entry in fs::read_dir(&api_dir)? {
            let path = entry?.path();
            let stem = path
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            if !expected.contains_key(&stem) {
                problems.push(format!(
                    "API/{stem}.txt does not correspond to any workspace crate"
                ));
            }
        }
    }
    Ok(problems)
}
