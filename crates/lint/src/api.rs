//! Public-API signature extraction: the `ata-lint api` subsystem.
//!
//! Walks a crate's `src/` tree and records every `pub` item signature
//! at token level — functions, structs (with their `pub` fields), enums
//! (with all variants), traits (with their items), impl blocks (trait
//! impl headers plus `pub fn` methods), type aliases, consts, statics,
//! modules and `pub use` re-exports. The rendered, sorted entries form
//! the committed `API/<crate>.txt` snapshots; `ata-lint api --verify`
//! fails on any diff, making accidental public-API changes loud.
//!
//! Scope notes: entries are recorded for `pub` items wherever they sit
//! (including inside private modules — the facade re-exports those via
//! `pub use`, so they are part of the surface); `pub(crate)` and
//! `pub(super)` are *not* public and are skipped; `#[cfg(test)]` and
//! `#[doc(hidden)]` items are skipped (`doc(hidden)` is the repo's
//! marker for unsupported escape hatches — test hooks like failure
//! injection stay out of the frozen surface, so using one in anger is
//! a deliberate act, not an API commitment). This over-approximates
//! strict reachability, which is
//! exactly what a tripwire wants: renames and signature changes show up
//! as diffs even when re-export wiring hides them from rustdoc.

use crate::lex::{lex, Tok, TokKind};
use std::collections::BTreeSet;

/// Extract public-API entries from one file. `mod_path` is the
/// file-derived module prefix (empty for `lib.rs`/`main.rs`,
/// `["a", "b"]` for `src/a/b.rs`).
pub fn extract(mod_path: &[String], src: &str) -> BTreeSet<String> {
    let lx = lex(src);
    let mut out = BTreeSet::new();
    let mut p = Parser {
        t: &lx.toks,
        out: &mut out,
    };
    let end = p.t.len();
    p.items(0, end, &mod_path.join("::"));
    out
}

/// Module path for a file under `src/`: `lib.rs`, `main.rs` and
/// `mod.rs` map to their directory, `a/b.rs` to `a::b`.
pub fn mod_path_of(rel_in_src: &str) -> Vec<String> {
    let mut parts: Vec<&str> = rel_in_src.split('/').collect();
    let last = parts.pop().unwrap_or("");
    let stem = last.strip_suffix(".rs").unwrap_or(last);
    if !matches!(stem, "lib" | "main" | "mod") {
        parts.push(stem);
    }
    parts.iter().map(|s| s.to_string()).collect()
}

struct Parser<'a> {
    t: &'a [Tok],
    out: &'a mut BTreeSet<String>,
}

impl Parser<'_> {
    /// Scan items in `t[i..end]` under module context `ctx`.
    fn items(&mut self, mut i: usize, end: usize, ctx: &str) {
        while i < end {
            // Attributes: note #[cfg(test)] / #[doc(hidden)], skip the
            // group either way.
            let mut skip = false;
            while self.at_attr(i) {
                skip |= self.attr_doc_hidden(i);
                let (cfg, test, not, after) = crate::lints::attr_flags(self.t, i + 1);
                skip |= cfg && test && !not;
                i = after;
                // An inner attribute (`#![..]`) is not attached to an item.
                if self.t.get(i).is_some_and(|x| x.is_punct("!")) {
                    i += 1;
                }
            }
            if i >= end {
                break;
            }
            if skip {
                i = self.skip_item(i, end);
                continue;
            }
            // Visibility: only a bare `pub` is public API. Signatures
            // are rendered from `start` so they keep the `pub` prefix.
            let start = i;
            let mut is_pub = false;
            if self.t[i].is_ident("pub") {
                if self.t.get(i + 1).is_some_and(|x| x.is_punct("(")) {
                    i = self.skip_group(i + 1, end, "(", ")");
                } else {
                    is_pub = true;
                    i += 1;
                }
            }
            if i >= end {
                break;
            }
            // Modifiers before the item keyword. `const` only counts as
            // a modifier when another modifier or `fn` follows (a
            // `const NAME: ..` item keeps `const` as its keyword).
            let mut j = i;
            while let Some(tok) = self.t.get(j) {
                let const_modifier = tok.is_ident("const")
                    && self.t.get(j + 1).is_some_and(|x| {
                        ["fn", "unsafe", "async", "extern"]
                            .iter()
                            .any(|m| x.is_ident(m))
                    });
                if tok.is_ident("unsafe") || tok.is_ident("async") || const_modifier {
                    j += 1;
                } else if tok.is_ident("extern")
                    && self.t.get(j + 1).is_some_and(|x| x.kind == TokKind::Str)
                {
                    j += 2; // extern "C"
                } else {
                    break;
                }
            }
            let kw = self.t.get(j).map(|x| x.text.as_str()).unwrap_or("");
            match kw {
                "impl" => {
                    i = self.item_impl(start, end, ctx);
                }
                "mod" => {
                    i = self.item_mod(start, end, ctx, is_pub);
                }
                "trait" if is_pub => {
                    i = self.item_trait(start, end, ctx);
                }
                "struct" if is_pub => {
                    i = self.item_struct(start, end, ctx);
                }
                "enum" if is_pub => {
                    i = self.item_enum(start, end, ctx);
                }
                "fn" | "type" | "use" | "macro" if is_pub => {
                    let (sig, next) = self.signature(start, end);
                    self.record(ctx, &sig);
                    i = next;
                }
                "const" | "static" if is_pub => {
                    // Stop the signature at `=`: the value is not API.
                    let (sig, next) = self.signature_until_eq(start, end);
                    self.record(ctx, &sig);
                    i = next;
                }
                _ => {
                    i = self.skip_item(i, end);
                }
            }
        }
    }

    fn record(&mut self, ctx: &str, sig: &str) {
        let entry = if ctx.is_empty() {
            sig.to_string()
        } else {
            format!("[{ctx}] {sig}")
        };
        self.out.insert(entry);
    }

    /// Whether the attribute whose `#` sits at `i` is `#[doc(hidden)]`
    /// (in any argument position, e.g. `#[doc(hidden, alias = "x")]`).
    fn attr_doc_hidden(&self, i: usize) -> bool {
        let mut j = i + 1;
        if self.t.get(j).is_some_and(|x| x.is_punct("!")) {
            j += 1;
        }
        if !self.t.get(j).is_some_and(|x| x.is_punct("[")) {
            return false;
        }
        let after = self.skip_group(j, self.t.len(), "[", "]");
        let inner = &self.t[j + 1..after.saturating_sub(1)];
        inner.first().is_some_and(|x| x.is_ident("doc"))
            && inner.iter().any(|x| x.is_ident("hidden"))
    }

    fn at_attr(&self, i: usize) -> bool {
        self.t.get(i).is_some_and(|x| x.is_punct("#"))
            && (self.t.get(i + 1).is_some_and(|x| x.is_punct("["))
                || (self.t.get(i + 1).is_some_and(|x| x.is_punct("!"))
                    && self.t.get(i + 2).is_some_and(|x| x.is_punct("["))))
    }

    /// Skip a balanced group whose opener is at or after `i`.
    fn skip_group(&self, mut i: usize, end: usize, open: &str, close: &str) -> usize {
        let mut depth = 0usize;
        while i < end {
            if self.t[i].is_punct(open) {
                depth += 1;
            } else if self.t[i].is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// Skip one item: to a top-level `;` or through the body braces.
    fn skip_item(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut body = false;
        while i < end {
            let tok = &self.t[i];
            if depth == 0 && tok.is_punct(";") {
                return i + 1;
            }
            if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") {
                if depth == 0 && tok.is_punct("{") {
                    body = true;
                }
                depth += 1;
            } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct("}") {
                depth -= 1;
                if depth <= 0 && tok.is_punct("}") && body {
                    return i + 1;
                }
                if depth < 0 {
                    return i; // closing brace of an enclosing block
                }
            }
            i += 1;
        }
        end
    }

    /// Render tokens from `i` to the item's body `{` or terminating `;`
    /// (exclusive); returns the signature and the index after the item.
    fn signature(&self, i: usize, end: usize) -> (String, usize) {
        let (stop, after) = self.sig_stop(i, end, false);
        (render(&self.t[i..stop]), after)
    }

    fn signature_until_eq(&self, i: usize, end: usize) -> (String, usize) {
        let (stop, after) = self.sig_stop(i, end, true);
        (render(&self.t[i..stop]), after)
    }

    /// Find where the signature stops: a top-level `{`, `;`, or (when
    /// `at_eq`) `=`. Returns `(stop_index, index_after_item)`.
    fn sig_stop(&self, mut i: usize, end: usize, at_eq: bool) -> (usize, usize) {
        let mut depth = 0i32;
        while i < end {
            let tok = &self.t[i];
            if depth == 0 {
                if tok.is_punct(";") {
                    return (i, i + 1);
                }
                if tok.is_punct("{") {
                    return (i, self.skip_item(i, end));
                }
                if at_eq && tok.is_punct("=") {
                    return (i, self.skip_item(i, end));
                }
            }
            if tok.is_punct("(") || tok.is_punct("[") {
                depth += 1;
            } else if tok.is_punct(")") || tok.is_punct("]") {
                depth -= 1;
            }
            i += 1;
        }
        (end, end)
    }

    /// `impl` blocks: a trait impl's header is itself API; `pub fn`s in
    /// any impl are recorded under `ctx::<Target>`.
    fn item_impl(&mut self, i: usize, end: usize, ctx: &str) -> usize {
        let (header_stop, _) = self.sig_stop(i, end, false);
        let header = render_generics_stripped(&self.t[i..header_stop]);
        if header.contains(" for ") {
            self.record(ctx, &render(&self.t[i..header_stop]));
        }
        let Some(body) = self.body_range(header_stop, end) else {
            return self.skip_item(i, end);
        };
        // Context for methods: the Self type (after `for`, or after the
        // impl generics), with its own generics stripped for brevity.
        let target = match header.rfind(" for ") {
            Some(p) => header[p + 5..].to_string(),
            None => header.strip_prefix("impl ").unwrap_or(&header).to_string(),
        };
        let sub = if ctx.is_empty() {
            target
        } else {
            format!("{ctx}::{target}")
        };
        self.impl_body(body.0, body.1, &sub);
        body.1 + 1
    }

    /// Methods inside an impl body: record `pub fn`/`pub const` items
    /// unless marked `#[doc(hidden)]`.
    fn impl_body(&mut self, mut i: usize, end: usize, ctx: &str) {
        while i < end {
            let mut hidden = false;
            while self.at_attr(i) {
                hidden |= self.attr_doc_hidden(i);
                let (_, _, _, after) = crate::lints::attr_flags(self.t, i + 1);
                i = after;
            }
            if i >= end {
                break;
            }
            if hidden {
                i = self.skip_item(i, end);
            } else if self.t[i].is_ident("pub") {
                if self.t.get(i + 1).is_some_and(|x| x.is_punct("(")) {
                    i = self.skip_group(i + 1, end, "(", ")");
                    i = self.skip_item(i, end);
                } else {
                    let (sig, next) = self.signature(i, end);
                    self.record(ctx, &sig);
                    i = next;
                }
            } else {
                i = self.skip_item(i, end);
            }
        }
    }

    /// `pub mod`: record the declaration; recurse into an inline body.
    /// Private inline mods are recursed into as well (their `pub` items
    /// surface through re-exports) but not recorded themselves.
    fn item_mod(&mut self, i: usize, end: usize, ctx: &str, is_pub: bool) -> usize {
        let (stop, _) = self.sig_stop(i, end, false);
        let name = self
            .t
            .get(stop.saturating_sub(1))
            .map(|x| x.text.clone())
            .unwrap_or_default();
        if is_pub {
            self.record(ctx, &render(&self.t[i..stop]));
        }
        match self.body_range(stop, end) {
            Some((b0, b1)) => {
                let sub = if ctx.is_empty() {
                    name
                } else {
                    format!("{ctx}::{name}")
                };
                self.items(b0, b1, &sub);
                b1 + 1
            }
            None => self.skip_item(i, end),
        }
    }

    /// `pub trait`: the header plus every item in the body (trait items
    /// are public through the trait).
    fn item_trait(&mut self, i: usize, end: usize, ctx: &str) -> usize {
        let (stop, _) = self.sig_stop(i, end, false);
        let header = render(&self.t[i..stop]);
        self.record(ctx, &header);
        let Some((mut j, b1)) = self.body_range(stop, end) else {
            return self.skip_item(i, end);
        };
        let name = trait_name(&self.t[i..stop]);
        let sub = if ctx.is_empty() {
            name
        } else {
            format!("{ctx}::{name}")
        };
        while j < b1 {
            let mut hidden = false;
            while self.at_attr(j) {
                hidden |= self.attr_doc_hidden(j);
                let (_, _, _, after) = crate::lints::attr_flags(self.t, j + 1);
                j = after;
            }
            if j >= b1 {
                break;
            }
            let (sig, next) = self.signature(j, b1);
            if !sig.is_empty() && !hidden {
                self.record(&sub, &sig);
            }
            if next == j {
                break;
            }
            j = next;
        }
        b1 + 1
    }

    /// `pub struct`: the header, plus each `pub` field of a braced body
    /// (tuple structs keep their full field list in the header).
    fn item_struct(&mut self, i: usize, end: usize, ctx: &str) -> usize {
        let (stop, after_semi) = self.sig_stop(i, end, false);
        // Tuple struct / unit struct: everything up to `;` is the header.
        if !self.t.get(stop).is_some_and(|x| x.is_punct("{")) {
            self.record(ctx, &render(&self.t[i..stop]));
            return after_semi;
        }
        let header = render(&self.t[i..stop]);
        self.record(ctx, &header);
        let Some((mut j, b1)) = self.body_range(stop, end) else {
            return self.skip_item(i, end);
        };
        let name = struct_name(&self.t[i..stop]);
        let sub = if ctx.is_empty() {
            name
        } else {
            format!("{ctx}::{name}")
        };
        while j < b1 {
            let mut hidden = false;
            while self.at_attr(j) {
                hidden |= self.attr_doc_hidden(j);
                let (_, _, _, after) = crate::lints::attr_flags(self.t, j + 1);
                j = after;
            }
            if j >= b1 {
                break;
            }
            if !hidden
                && self.t[j].is_ident("pub")
                && !self.t.get(j + 1).is_some_and(|x| x.is_punct("("))
            {
                let f0 = j;
                j = self.field_end(j, b1);
                self.record(&sub, &render(&self.t[f0..j]));
            } else {
                j = self.field_end(j, b1);
            }
            if self.t.get(j).is_some_and(|x| x.is_punct(",")) {
                j += 1;
            }
        }
        b1 + 1
    }

    /// `pub enum`: the header plus every variant (variants are public).
    fn item_enum(&mut self, i: usize, end: usize, ctx: &str) -> usize {
        let (stop, _) = self.sig_stop(i, end, false);
        self.record(ctx, &render(&self.t[i..stop]));
        let Some((mut j, b1)) = self.body_range(stop, end) else {
            return self.skip_item(i, end);
        };
        let name = enum_name(&self.t[i..stop]);
        let sub = if ctx.is_empty() {
            name
        } else {
            format!("{ctx}::{name}")
        };
        while j < b1 {
            let mut hidden = false;
            while self.at_attr(j) {
                hidden |= self.attr_doc_hidden(j);
                let (_, _, _, after) = crate::lints::attr_flags(self.t, j + 1);
                j = after;
            }
            if j >= b1 {
                break;
            }
            let v0 = j;
            j = self.field_end(j, b1);
            let v = render(&self.t[v0..j]);
            if !v.is_empty() && !hidden {
                self.record(&sub, &v);
            }
            if self.t.get(j).is_some_and(|x| x.is_punct(",")) {
                j += 1;
            }
        }
        b1 + 1
    }

    /// End of a struct field / enum variant: the next top-level `,`.
    fn field_end(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            let tok = &self.t[i];
            if depth == 0 && tok.is_punct(",") {
                return i;
            }
            if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") || tok.is_punct("<") {
                depth += 1;
            } else if tok.is_punct(")")
                || tok.is_punct("]")
                || tok.is_punct("}")
                || tok.is_punct(">")
            {
                depth -= 1;
            }
            i += 1;
        }
        end
    }

    /// The `{ .. }` body starting at `open` (which must be `{`):
    /// returns the (first-inner, one-past-last-inner) token range.
    fn body_range(&self, open: usize, end: usize) -> Option<(usize, usize)> {
        if !self.t.get(open).is_some_and(|x| x.is_punct("{")) {
            return None;
        }
        let after = self.skip_group(open, end, "{", "}");
        Some((open + 1, after - 1))
    }
}

fn trait_name(header: &[Tok]) -> String {
    name_after(header, "trait")
}
fn struct_name(header: &[Tok]) -> String {
    name_after(header, "struct")
}
fn enum_name(header: &[Tok]) -> String {
    name_after(header, "enum")
}

fn name_after(toks: &[Tok], kw: &str) -> String {
    toks.iter()
        .position(|t| t.is_ident(kw))
        .and_then(|p| toks.get(p + 1))
        .map(|t| t.text.clone())
        .unwrap_or_default()
}

/// Render an impl header with generic argument lists removed, used only
/// to derive the `for`-target context (`Mat<T>` → `Mat`).
fn render_generics_stripped(toks: &[Tok]) -> String {
    let mut depth = 0i32;
    let mut kept = Vec::new();
    for t in toks {
        if t.is_punct("<") {
            depth += 1;
            continue;
        }
        if t.is_punct(">") {
            depth -= 1;
            continue;
        }
        if depth == 0 {
            kept.push(t.clone());
        }
    }
    render(&kept)
}

/// Deterministically render tokens as one line of Rust-ish text.
pub fn render(toks: &[Tok]) -> String {
    let mut out = String::new();
    for (i, t) in toks.iter().enumerate() {
        let text = t.text.as_str();
        if !out.is_empty() && needs_space(toks, i) {
            out.push(' ');
        }
        out.push_str(text);
    }
    out
}

/// Spacing rules for [`render`]: tight around path/generic/grouping
/// punctuation, spaced elsewhere (`->`, `=`, `+`, keywords).
fn needs_space(toks: &[Tok], i: usize) -> bool {
    let cur = &toks[i];
    let prev = &toks[i - 1];
    const TIGHT_BEFORE: [&str; 9] = [",", ";", ":", "::", ")", "]", ">", "(", "<"];
    const TIGHT_AFTER: [&str; 7] = ["::", "(", "[", "<", "&", "#", "!"];
    if prev.kind == TokKind::Punct && TIGHT_AFTER.contains(&prev.text.as_str()) {
        return false;
    }
    if cur.kind == TokKind::Punct && TIGHT_BEFORE.contains(&cur.text.as_str()) {
        // `fn f (` would be odd, but `-> (` keeps its space; only
        // suppress the space after an identifier or closing bracket.
        if cur.text == "(" || cur.text == "<" {
            return !(prev.kind == TokKind::Ident
                || prev.kind == TokKind::Lifetime
                || prev.is_punct(")")
                || prev.is_punct("]")
                || prev.is_punct(">"));
        }
        return false;
    }
    if prev.is_punct("'") || cur.is_punct("'") {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entries(src: &str) -> Vec<String> {
        extract(&[], src).into_iter().collect()
    }

    #[test]
    fn fn_signature_without_body() {
        let e = entries("pub fn dot(a: &[f64], b: &[f64]) -> f64 { 0.0 }\n");
        assert_eq!(e, vec!["pub fn dot(a: &[f64], b: &[f64]) -> f64"]);
    }

    #[test]
    fn private_items_and_pub_crate_are_skipped() {
        let e = entries("fn hidden() {}\npub(crate) fn also_hidden() {}\n");
        assert!(e.is_empty());
    }

    #[test]
    fn struct_fields_and_enum_variants() {
        let e = entries(
            "pub struct P { pub x: usize, y: usize }\npub enum E { A, B(u8), C { n: usize } }\n",
        );
        assert!(e.contains(&"pub struct P".to_string()));
        assert!(e.contains(&"[P] pub x: usize".to_string()));
        assert!(!e.iter().any(|s| s.contains("y: usize")));
        assert!(e.contains(&"[E] A".to_string()));
        assert!(e.contains(&"[E] B(u8)".to_string()));
    }

    #[test]
    fn impl_methods_and_trait_impl_headers() {
        let src = "pub struct S;\nimpl S {\n    pub fn new() -> Self { S }\n    fn private(&self) {}\n}\nimpl Clone for S {\n    fn clone(&self) -> Self { S }\n}\n";
        let e = entries(src);
        assert!(e.contains(&"[S] pub fn new() -> Self".to_string()));
        assert!(e.contains(&"impl Clone for S".to_string()));
        assert!(!e.iter().any(|s| s.contains("private")));
    }

    #[test]
    fn doc_hidden_items_are_invisible() {
        let src = "#[doc(hidden)]\npub fn escape_hatch() {}\npub struct S { #[doc(hidden)] pub raw: usize, pub n: usize }\nimpl S {\n    #[doc(hidden)]\n    pub fn poison(&self) {}\n    pub fn real(&self) {}\n}\npub enum E { A, #[doc(hidden)] Secret }\npub trait T {\n    #[doc(hidden)]\n    fn internal(&self);\n    fn stable(&self);\n}\n";
        let e = entries(src);
        assert!(!e.iter().any(|s| s.contains("escape_hatch")));
        assert!(!e.iter().any(|s| s.contains("raw")));
        assert!(e.contains(&"[S] pub n: usize".to_string()));
        assert!(!e.iter().any(|s| s.contains("poison")));
        assert!(e.contains(&"[S] pub fn real(&self)".to_string()));
        assert!(!e.iter().any(|s| s.contains("Secret")));
        assert!(e.contains(&"[E] A".to_string()));
        assert!(!e.iter().any(|s| s.contains("internal")));
        assert!(e.contains(&"[T] fn stable(&self)".to_string()));
        // `#[doc(alias = "other")]` is not hidden.
        let e = entries("#[doc(alias = \"g\")]\npub fn f() {}\n");
        assert_eq!(e, vec!["pub fn f()"]);
    }

    #[test]
    fn cfg_test_items_are_invisible() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\npub fn real() {}\n";
        let e = entries(src);
        assert_eq!(e, vec!["pub fn real()"]);
    }

    #[test]
    fn const_value_is_not_part_of_the_signature() {
        let e = entries("pub const LIMIT: usize = 4 * 1024;\n");
        assert_eq!(e, vec!["pub const LIMIT: usize"]);
    }

    #[test]
    fn mod_paths_from_file_names() {
        assert!(mod_path_of("lib.rs").is_empty());
        assert_eq!(mod_path_of("plan.rs"), vec!["plan"]);
        assert_eq!(mod_path_of("tree/mod.rs"), vec!["tree"]);
        assert_eq!(mod_path_of("tree/pack.rs"), vec!["tree", "pack"]);
    }

    #[test]
    fn nested_mod_context() {
        let src = "pub mod outer {\n    pub fn f() {}\n}\nmod private {\n    pub fn g() {}\n}\n";
        let e = entries(src);
        assert!(e.contains(&"pub mod outer".to_string()));
        assert!(e.contains(&"[outer] pub fn f()".to_string()));
        // `g` is pub inside a private mod: recorded (re-export tripwire).
        assert!(e.contains(&"[private] pub fn g()".to_string()));
    }

    #[test]
    fn render_is_stable_and_readable() {
        let lx = crate::lex::lex("pub fn eval < T : Field > ( & self , m : & Mat < T > ) -> T");
        assert_eq!(
            render(&lx.toks),
            "pub fn eval<T: Field>(&self, m: &Mat<T>) -> T"
        );
    }
}
