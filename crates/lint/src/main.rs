//! Command-line front-end for [`ata_lint`].
//!
//! ```text
//! ata-lint check                  lint every workspace source file
//! ata-lint api                    regenerate API/<crate>.txt snapshots
//! ata-lint api --verify           fail (exit 1) on snapshot drift
//!     --root <DIR>                workspace root (default: found by
//!                                 walking up to a [workspace] manifest)
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage or I/O error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut verify = false;
    let mut root = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "api" if cmd.is_none() => cmd = Some(a.clone()),
            "--verify" => verify = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            other => return usage(&format!("unrecognised argument `{other}`")),
        }
    }
    let Some(cmd) = cmd else {
        return usage("expected a subcommand: check | api");
    };
    let root = match root.map(Ok).unwrap_or_else(find_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ata-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let run = match cmd.as_str() {
        "check" => run_check(&root),
        _ => run_api(&root, verify),
    };
    match run {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ata-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("ata-lint: {err}");
    eprintln!("usage: ata-lint <check | api> [--verify] [--root DIR]");
    ExitCode::from(2)
}

/// Walk up from the current directory to the first manifest declaring
/// `[workspace]`.
fn find_root() -> std::io::Result<PathBuf> {
    let mut dir = std::env::current_dir()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && std::fs::read_to_string(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(std::io::Error::other(
                "no workspace root found above the current directory",
            ));
        }
    }
}

fn run_check(root: &std::path::Path) -> std::io::Result<ExitCode> {
    let diags = ata_lint::check(root)?;
    for d in &diags {
        println!("{d}");
    }
    let n_files = ata_lint::rust_sources(root)?.len();
    if diags.is_empty() {
        println!("ata-lint: clean ({n_files} files checked)");
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "ata-lint: {} finding(s) in {n_files} files (suppress with `// ata-lint: allow(<lint>)` + reason)",
            diags.len()
        );
        Ok(ExitCode::from(1))
    }
}

fn run_api(root: &std::path::Path, verify: bool) -> std::io::Result<ExitCode> {
    if verify {
        let problems = ata_lint::verify_api(root)?;
        for p in &problems {
            println!("{p}");
        }
        if problems.is_empty() {
            println!("ata-lint: API snapshots match the sources");
            Ok(ExitCode::SUCCESS)
        } else {
            println!(
                "ata-lint: {} API drift(s) — if intentional, regenerate with `cargo run -p ata-lint -- api` and commit",
                problems.len()
            );
            Ok(ExitCode::from(1))
        }
    } else {
        for path in ata_lint::write_api(root)? {
            println!("wrote {path}");
        }
        Ok(ExitCode::SUCCESS)
    }
}
