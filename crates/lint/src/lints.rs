//! The repo-invariant lints.
//!
//! Every lint works on the token stream from [`crate::lex`], so comments
//! and string literals can never trigger a false positive. Each lint has
//! an inline escape hatch: a comment containing
//! `ata-lint: allow(<lint-name>)` on the diagnostic's line or the line
//! directly above suppresses it (a trailing `: reason` is encouraged).
//! Unknown lint names inside an `allow(..)` are themselves diagnosed, so
//! a typo cannot silently disable a lint.
//!
//! Path scoping (all paths are `/`-separated and relative to the
//! workspace root):
//!
//! - `safety-comment`, `unsafe-allowlist`: every file.
//! - `no-raw-spawn`: every file except `tests/`, `benches/`,
//!   `examples/` trees and `#[cfg(test)]` spans.
//! - `lock-across-blocking`: only `src/service.rs`, `src/shard.rs`,
//!   `src/stream.rs` (the serving layer's lock-and-channel discipline).
//! - `no-unwrap-in-lib`: the facade `src/`, `crates/dist/src/`,
//!   `crates/kernels/src/`, `crates/linalg/src/`; `#[cfg(test)]` spans
//!   are exempt.

use crate::lex::{lex, Lexed, Tok, TokKind};

/// One lint finding at a file and line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path (`/`-separated).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (one of [`LINT_NAMES`], or `unknown-allow`).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.lint, self.message
        )
    }
}

/// All lint names recognised by `ata-lint: allow(..)`.
pub const LINT_NAMES: [&str; 5] = [
    "safety-comment",
    "unsafe-allowlist",
    "no-raw-spawn",
    "lock-across-blocking",
    "no-unwrap-in-lib",
];

/// Files in which `unsafe` is permitted (plus anything under
/// `third_party/`, which the workspace walker skips entirely).
pub const UNSAFE_ALLOWLIST: [&str; 4] = [
    "crates/mat/src/view.rs",
    "crates/core/src/parallel.rs",
    "crates/kernels/src/simd/mod.rs",
    "crates/kernels/src/simd/x86.rs",
];

/// Files the `lock-across-blocking` heuristic applies to.
const LOCK_SCOPED: [&str; 3] = ["src/service.rs", "src/shard.rs", "src/stream.rs"];

/// Method names treated as blocking channel operations.
const BLOCKING_CALLS: [&str; 4] = ["send", "recv", "recv_timeout", "wait"];

/// Lint one source file. `rel_path` must be workspace-relative with
/// `/` separators — path scoping and the unsafe allowlist key off it.
pub fn lint_file(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let lx = lex(src);
    let ctx = FileCtx::new(rel_path, &lx);
    let mut out = Vec::new();
    ctx.unknown_allows(&mut out);
    ctx.safety_comment(&mut out);
    ctx.unsafe_allowlist(&mut out);
    ctx.no_raw_spawn(&mut out);
    ctx.lock_across_blocking(&mut out);
    ctx.no_unwrap_in_lib(&mut out);
    out.sort_by(|a, b| (a.line, a.lint).cmp(&(b.line, b.lint)));
    out
}

/// Per-file lint state: the lexed stream plus derived line tables.
struct FileCtx<'a> {
    path: &'a str,
    lx: &'a Lexed,
    /// `#[cfg(test)]` item spans as inclusive 1-based line ranges.
    test_spans: Vec<(usize, usize)>,
    /// First token index on each 1-based line, if any.
    first_tok_on_line: Vec<Option<usize>>,
}

impl<'a> FileCtx<'a> {
    fn new(path: &'a str, lx: &'a Lexed) -> Self {
        let mut first_tok_on_line = vec![None; lx.n_lines + 2];
        for (i, t) in lx.toks.iter().enumerate() {
            if t.line < first_tok_on_line.len() && first_tok_on_line[t.line].is_none() {
                first_tok_on_line[t.line] = Some(i);
            }
        }
        FileCtx {
            path,
            lx,
            test_spans: test_spans(lx),
            first_tok_on_line,
        }
    }

    fn toks(&self) -> &[Tok] {
        &self.lx.toks
    }

    fn in_test(&self, line: usize) -> bool {
        self.test_spans.iter().any(|&(s, e)| s <= line && line <= e)
    }

    /// Whole-file exemptions for test/bench/example trees.
    fn test_tree(&self) -> bool {
        self.path
            .split('/')
            .any(|seg| seg == "tests" || seg == "benches" || seg == "examples" || seg == "build.rs")
    }

    /// Is the diagnostic at `line` suppressed by an
    /// `ata-lint: allow(<name>)` comment on that line or anywhere in
    /// the contiguous comment block directly above it (so the reason
    /// may wrap over several comment lines)?
    fn allowed(&self, line: usize, name: &str) -> bool {
        let needle = format!("ata-lint: allow({name})");
        if self.lx.comment_on_line_contains(line, &needle) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if !self.lx.comment_covers_line(l) || self.lx.has_code(l) {
                return false;
            }
            if self.lx.comment_on_line_contains(l, &needle) {
                return true;
            }
        }
        false
    }

    fn emit(&self, out: &mut Vec<Diagnostic>, line: usize, lint: &'static str, msg: String) {
        if !self.allowed(line, lint) {
            out.push(Diagnostic {
                path: self.path.to_string(),
                line,
                lint,
                message: msg,
            });
        }
    }

    /// Diagnose `ata-lint: allow(..)` comments naming unknown lints.
    fn unknown_allows(&self, out: &mut Vec<Diagnostic>) {
        for c in &self.lx.comments {
            let mut rest = c.text.as_str();
            while let Some(pos) = rest.find("ata-lint: allow(") {
                rest = &rest[pos + "ata-lint: allow(".len()..];
                let name = rest.split(')').next().unwrap_or("");
                // Only lint-name-shaped text is a candidate: doc prose
                // placeholders like `<lint>` or `..` are not typos.
                let name_shaped =
                    !name.is_empty() && name.chars().all(|c| c.is_ascii_lowercase() || c == '-');
                if name_shaped && !LINT_NAMES.contains(&name) {
                    out.push(Diagnostic {
                        path: self.path.to_string(),
                        line: c.start_line,
                        lint: "unknown-allow",
                        message: format!(
                            "unknown lint `{name}` in allow (known: {})",
                            LINT_NAMES.join(", ")
                        ),
                    });
                }
            }
        }
    }

    /// Lint 1: every `unsafe` must have an adjacent `// SAFETY:` comment
    /// (or a `/// # Safety` doc section for `unsafe fn` declarations).
    fn safety_comment(&self, out: &mut Vec<Diagnostic>) {
        for t in self.toks() {
            if !t.is_ident("unsafe") {
                continue;
            }
            if !self.has_safety_comment(t.line) {
                self.emit(
                    out,
                    t.line,
                    "safety-comment",
                    "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
                );
            }
        }
    }

    fn has_safety_comment(&self, line: usize) -> bool {
        let hit = |l: usize| {
            self.lx.comment_on_line_contains(l, "SAFETY:")
                || self.lx.comment_on_line_contains(l, "# Safety")
        };
        if hit(line) {
            return true; // trailing comment on the same line
        }
        // Walk up through the contiguous comment/attribute block above.
        let mut l = line;
        while l > 1 {
            l -= 1;
            if hit(l) {
                return true;
            }
            let comment_only = self.lx.comment_covers_line(l) && !self.lx.has_code(l);
            let attr_line =
                self.first_tok_on_line[l].is_some_and(|i| self.lx.toks[i].is_punct("#"));
            if !(comment_only || attr_line) {
                return false;
            }
        }
        false
    }

    /// Lint 2: `unsafe` only in the allowlisted files.
    fn unsafe_allowlist(&self, out: &mut Vec<Diagnostic>) {
        if UNSAFE_ALLOWLIST.contains(&self.path) {
            return;
        }
        for t in self.toks() {
            if t.is_ident("unsafe") {
                self.emit(
                    out,
                    t.line,
                    "unsafe-allowlist",
                    format!(
                        "`unsafe` outside the allowlist ({})",
                        UNSAFE_ALLOWLIST.join(", ")
                    ),
                );
            }
        }
    }

    /// Lint 3: no raw thread spawns — parallelism must go through the
    /// vendored pool so `Tracked` op counting observes it.
    fn no_raw_spawn(&self, out: &mut Vec<Diagnostic>) {
        if self.test_tree() {
            return;
        }
        let t = self.toks();
        for i in 0..t.len() {
            if !t[i].is_ident("spawn") || self.in_test(t[i].line) {
                continue;
            }
            let method_call =
                i > 0 && t[i - 1].is_punct(".") && t.get(i + 1).is_some_and(|n| n.is_punct("("));
            let path_call = i >= 2 && t[i - 1].is_punct("::") && t[i - 2].is_ident("thread");
            if method_call || path_call {
                self.emit(
                    out,
                    t[i].line,
                    "no-raw-spawn",
                    "raw thread spawn outside the vendored pool (invisible to Tracked op counting)"
                        .to_string(),
                );
            }
        }
    }

    /// Lint 4: a lock guard binding that is still live across a blocking
    /// channel call in the serving layer — a deadlock heuristic.
    ///
    /// Only simple `let [mut] name = ...` bindings whose initialiser
    /// calls `.lock()` / `.read()` / `.write()` are tracked; statements
    /// that immediately `.clone()` or `into_inner()` the guarded value
    /// are skipped (the guard is a temporary). Tracking ends at an
    /// explicit `drop(name)` or the end of the enclosing block.
    fn lock_across_blocking(&self, out: &mut Vec<Diagnostic>) {
        if !LOCK_SCOPED.contains(&self.path) {
            return;
        }
        let t = self.toks();
        for i in 0..t.len() {
            if !t[i].is_ident("let") || self.in_test(t[i].line) {
                continue;
            }
            // Simple binding only: `let name =` / `let mut name =` (or
            // with a type ascription). Pattern bindings never hold the
            // guard itself here.
            let mut j = i + 1;
            if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            let Some(name_tok) = t.get(j) else { continue };
            if name_tok.kind != TokKind::Ident
                || !t
                    .get(j + 1)
                    .is_some_and(|x| x.is_punct("=") || x.is_punct(":"))
            {
                continue;
            }
            let name = name_tok.text.clone();
            let Some(stmt_end) = stmt_end(t, i) else {
                continue;
            };
            let stmt = &t[i..stmt_end];
            if !acquires_guard(stmt) || guard_is_temporary(stmt) {
                continue;
            }
            let block_end = block_end(t, stmt_end);
            let mut k = stmt_end;
            while k < block_end {
                // `drop(name)` releases the guard early.
                if t[k].is_ident("drop")
                    && t.get(k + 1).is_some_and(|x| x.is_punct("("))
                    && t.get(k + 2).is_some_and(|x| x.is_ident(&name))
                {
                    break;
                }
                let blocking = t[k].kind == TokKind::Ident
                    && BLOCKING_CALLS.contains(&t[k].text.as_str())
                    && k > 0
                    && t[k - 1].is_punct(".")
                    && t.get(k + 1).is_some_and(|x| x.is_punct("("));
                if blocking {
                    self.emit(
                        out,
                        t[k].line,
                        "lock-across-blocking",
                        format!(
                            "lock guard `{name}` (taken on line {}) still live across blocking `.{}()`",
                            name_tok.line, t[k].text
                        ),
                    );
                    break;
                }
                k += 1;
            }
        }
    }

    /// Lint 5: no `.unwrap()` / `.expect(..)` in library serving paths.
    fn no_unwrap_in_lib(&self, out: &mut Vec<Diagnostic>) {
        let scoped = self.path.starts_with("src/")
            || self.path.starts_with("crates/dist/src/")
            || self.path.starts_with("crates/kernels/src/")
            || self.path.starts_with("crates/linalg/src/");
        if !scoped || self.test_tree() {
            return;
        }
        let t = self.toks();
        for i in 0..t.len() {
            let is_hit = (t[i].is_ident("unwrap") || t[i].is_ident("expect"))
                && i > 0
                && t[i - 1].is_punct(".")
                && t.get(i + 1).is_some_and(|n| n.is_punct("("));
            if is_hit && !self.in_test(t[i].line) {
                self.emit(
                    out,
                    t[i].line,
                    "no-unwrap-in-lib",
                    format!(
                        "`.{}()` in a library serving path — return an error or allow with a documented invariant",
                        t[i].text
                    ),
                );
            }
        }
    }
}

/// Inclusive line spans of `#[cfg(test)]` items (attribute line through
/// the item's closing `}` or `;`).
fn test_spans(lx: &Lexed) -> Vec<(usize, usize)> {
    let t = &lx.toks;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < t.len() {
        if !(t[i].is_punct("#") && t.get(i + 1).is_some_and(|x| x.is_punct("["))) {
            i += 1;
            continue;
        }
        let attr_line = t[i].line;
        let (has_cfg, has_test, has_not, after) = attr_flags(t, i + 1);
        if has_cfg && has_test && !has_not {
            if let Some((end_line, next)) = item_extent(t, after) {
                spans.push((attr_line, end_line));
                i = next;
                continue;
            }
        }
        i = after;
    }
    spans
}

/// Scan a balanced `[ ... ]` attribute group starting at the `[`;
/// returns (`cfg` seen, `test` seen, `not` seen, index after `]`).
pub(crate) fn attr_flags(t: &[Tok], open: usize) -> (bool, bool, bool, usize) {
    let (mut cfg, mut test, mut not) = (false, false, false);
    let mut depth = 0usize;
    let mut j = open;
    while j < t.len() {
        if t[j].is_punct("[") {
            depth += 1;
        } else if t[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (cfg, test, not, j + 1);
            }
        } else if t[j].kind == TokKind::Ident {
            cfg |= t[j].text == "cfg";
            test |= t[j].text == "test";
            not |= t[j].text == "not";
        }
        j += 1;
    }
    (cfg, test, not, j)
}

/// Extent of the item starting at `k` (after its attribute): the line
/// of the `;` ending it, or of the `}` matching its first top-level
/// `{`. Leading further attributes are skipped. Returns
/// `(end_line, index_after_item)`.
fn item_extent(t: &[Tok], mut k: usize) -> Option<(usize, usize)> {
    while t.get(k).is_some_and(|x| x.is_punct("#")) && t.get(k + 1).is_some_and(|x| x.is_punct("["))
    {
        let (_, _, _, after) = attr_flags(t, k + 1);
        k = after;
    }
    let mut depth = 0i32;
    let mut body_open = false;
    while k < t.len() {
        let tok = &t[k];
        if depth == 0 && tok.is_punct(";") {
            return Some((tok.line, k + 1));
        }
        if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") {
            if depth == 0 && tok.is_punct("{") {
                body_open = true;
            }
            depth += 1;
        } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct("}") {
            depth -= 1;
            if depth == 0 && tok.is_punct("}") && body_open {
                return Some((tok.line, k + 1));
            }
        }
        k += 1;
    }
    None
}

/// Index one past the `;` ending the statement that starts at `start`.
fn stmt_end(t: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = start;
    while k < t.len() {
        let tok = &t[k];
        if depth == 0 && tok.is_punct(";") {
            return Some(k + 1);
        }
        if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") {
            depth += 1;
        } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return None; // ran off the enclosing block
            }
        }
        k += 1;
    }
    None
}

/// Index of the token closing the block that encloses position `k`.
fn block_end(t: &[Tok], mut k: usize) -> usize {
    let mut depth = 0i32;
    while k < t.len() {
        let tok = &t[k];
        if tok.is_punct("(") || tok.is_punct("[") || tok.is_punct("{") {
            depth += 1;
        } else if tok.is_punct(")") || tok.is_punct("]") || tok.is_punct("}") {
            depth -= 1;
            if depth < 0 {
                return k;
            }
        }
        k += 1;
    }
    k
}

/// Does the statement call `.lock()`, `.read()` or `.write()`?
fn acquires_guard(stmt: &[Tok]) -> bool {
    stmt.iter().enumerate().any(|(i, tok)| {
        (tok.is_ident("lock") || tok.is_ident("read") || tok.is_ident("write"))
            && i > 0
            && stmt[i - 1].is_punct(".")
            && stmt.get(i + 1).is_some_and(|n| n.is_punct("("))
    })
}

/// The guard never escapes into the binding: the statement clones the
/// protected value out or consumes the lock with `into_inner`.
fn guard_is_temporary(stmt: &[Tok]) -> bool {
    stmt.iter()
        .any(|tok| tok.is_ident("clone") || tok.is_ident("into_inner"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.lint).collect()
    }

    #[test]
    fn safety_comment_fires_and_is_satisfied() {
        let bad = "pub fn f() { unsafe { g() } }\n";
        let d = lint_file("crates/mat/src/view.rs", bad);
        assert_eq!(lints_of(&d), vec!["safety-comment"]);
        assert_eq!(d[0].line, 1);

        let good = "// SAFETY: g has no requirements.\npub fn f() { unsafe { g() } }\n";
        assert!(lint_file("crates/mat/src/view.rs", good).is_empty());
    }

    #[test]
    fn safety_comment_walks_over_attributes_and_doc_blocks() {
        let src = "/// Does a thing.\n///\n/// # Safety\n/// Caller upholds X.\n#[inline]\npub unsafe fn f() {}\n";
        assert!(lint_file("crates/mat/src/view.rs", src).is_empty());
    }

    #[test]
    fn unsafe_allowlist_scopes_by_path() {
        let src = "// SAFETY: fine.\npub fn f() { unsafe { g() } }\n";
        assert!(lint_file("crates/mat/src/view.rs", src).is_empty());
        let d = lint_file("crates/linalg/src/lib.rs", src);
        assert_eq!(lints_of(&d), vec!["unsafe-allowlist"]);
    }

    #[test]
    fn raw_spawn_flagged_outside_tests() {
        let src = "fn f() { std::thread::spawn(|| {}); }\n";
        let d = lint_file("crates/core/src/lib.rs", src);
        assert_eq!(lints_of(&d), vec!["no-raw-spawn"]);

        let test_src = "#[cfg(test)]\nmod tests {\n    fn f() { std::thread::spawn(|| {}); }\n}\n";
        assert!(lint_file("crates/core/src/lib.rs", test_src).is_empty());
    }

    #[test]
    fn builder_spawn_is_a_method_call_hit() {
        let src = "fn f() { std::thread::Builder::new().spawn(|| {}); }\n";
        let d = lint_file("src/service.rs", src);
        assert!(lints_of(&d).contains(&"no-raw-spawn"));
    }

    #[test]
    fn lock_across_blocking_guard_vs_clone() {
        let bad = "fn f() {\n    let guard = q.lock().unwrap();\n    tx.send(1).ok();\n}\n";
        let d = lint_file("src/service.rs", bad);
        assert!(lints_of(&d).contains(&"lock-across-blocking"));

        let cloned =
            "fn f() {\n    let tx2 = q.lock().unwrap().clone();\n    tx2.send(1).ok();\n}\n";
        let d = lint_file("src/service.rs", cloned);
        assert!(!lints_of(&d).contains(&"lock-across-blocking"));

        let dropped = "fn f() {\n    let guard = q.lock().unwrap();\n    drop(guard);\n    tx.send(1).ok();\n}\n";
        let d = lint_file("src/service.rs", dropped);
        assert!(!lints_of(&d).contains(&"lock-across-blocking"));
    }

    #[test]
    fn unwrap_scoping_and_allow() {
        let src = "pub fn f() { x.unwrap(); }\n";
        assert_eq!(
            lints_of(&lint_file("src/context.rs", src)),
            vec!["no-unwrap-in-lib"]
        );
        // CLI and unscoped crates are exempt.
        assert!(lint_file("crates/cli/src/main.rs", src).is_empty());
        assert!(lint_file("crates/mat/src/layout.rs", src).is_empty());

        let allowed =
            "pub fn f() { x.unwrap(); } // ata-lint: allow(no-unwrap-in-lib): test of allow\n";
        assert!(lint_file("src/context.rs", allowed).is_empty());
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let src = "pub fn f() { x.unwrap_or_else(std::sync::PoisonError::into_inner); }\n";
        assert!(lint_file("src/context.rs", src).is_empty());
    }

    #[test]
    fn unknown_allow_is_diagnosed() {
        let src = "pub fn f() {} // ata-lint: allow(no-such-lint)\n";
        let d = lint_file("crates/field/src/lib.rs", src);
        assert_eq!(lints_of(&d), vec!["unknown-allow"]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(not(test))]\npub fn f() { x.unwrap(); }\n";
        assert_eq!(
            lints_of(&lint_file("src/context.rs", src)),
            vec!["no-unwrap-in-lib"]
        );
    }
}
