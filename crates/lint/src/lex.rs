//! A minimal Rust lexer: just enough structure for repo lints.
//!
//! The workspace builds fully offline, so `syn` is not available; the
//! lints only need token-level structure anyway. The lexer splits a
//! source file into [`Tok`]s (identifiers, punctuation, string/char
//! literals, lifetimes, numbers) with 1-based line numbers, collects
//! comments into a side table (they never appear in the token stream),
//! and records which lines carry code — the substrate for the
//! `// SAFETY:` adjacency check and the `// ata-lint: allow(..)`
//! escape hatch.
//!
//! Deliberately *not* handled: macros are lexed like any other tokens
//! (their bodies are token trees to rustc too), and exotic literals
//! (raw identifiers, C string literals) degrade to ordinary tokens
//! rather than failing.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `fn`, `spawn`, ...).
    Ident,
    /// Punctuation; multi-character operators `::`, `->`, `=>` and `..`
    /// are fused into one token, everything else is a single character.
    Punct,
    /// String, raw-string, byte-string or char literal (content kept
    /// verbatim, including quotes).
    Str,
    /// A lifetime such as `'a` (text includes the leading `'`).
    Lifetime,
    /// A numeric literal.
    Num,
}

/// One token with its 1-based starting line.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Lexeme kind.
    pub kind: TokKind,
    /// Verbatim text of the lexeme.
    pub text: String,
    /// 1-based line the lexeme starts on.
    pub line: usize,
}

impl Tok {
    /// True if this token is the identifier/keyword `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// One comment (line or block), with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line the comment starts on.
    pub start_line: usize,
    /// 1-based line the comment ends on (same as `start_line` for `//`).
    pub end_line: usize,
    /// Comment text without the `//` / `/* */` markers.
    pub text: String,
}

impl Comment {
    /// Whether the comment covers 1-based line `l`.
    pub fn covers(&self, l: usize) -> bool {
        self.start_line <= l && l <= self.end_line
    }
}

/// A lexed source file: the token stream plus the comment side table.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub toks: Vec<Tok>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// `code_lines[l]` is true when 1-based line `l` carries any code
    /// token (index 0 is unused).
    pub code_lines: Vec<bool>,
    /// Number of lines in the file.
    pub n_lines: usize,
}

impl Lexed {
    /// True if 1-based line `l` has a code token on it.
    pub fn has_code(&self, l: usize) -> bool {
        self.code_lines.get(l).copied().unwrap_or(false)
    }

    /// True if any comment covering line `l` contains `needle`.
    pub fn comment_on_line_contains(&self, l: usize, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|c| c.covers(l) && c.text.contains(needle))
    }

    /// True if line `l` is covered by some comment (of any content).
    pub fn comment_covers_line(&self, l: usize) -> bool {
        self.comments.iter().any(|c| c.covers(l))
    }
}

/// Lex `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: usize,
    out: Lexed,
}

impl Lexer {
    fn new(src: &str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            i: 0,
            line: 1,
            out: Lexed::default(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied();
        if let Some(c) = c {
            self.i += 1;
            if c == '\n' {
                self.line += 1;
            }
        }
        c
    }

    fn push_tok(&mut self, kind: TokKind, text: String, line: usize) {
        self.mark_code(line);
        self.mark_code(self.line);
        self.out.toks.push(Tok { kind, text, line });
    }

    fn mark_code(&mut self, line: usize) {
        if self.out.code_lines.len() <= line {
            self.out.code_lines.resize(line + 1, false);
        }
        self.out.code_lines[line] = true;
    }

    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string('"'),
                '\'' => self.char_or_lifetime(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => self.punct(),
            }
        }
        self.out.n_lines = self.line;
        let n = self.line + 1;
        if self.out.code_lines.len() < n {
            self.out.code_lines.resize(n, false);
        }
        self.out
    }

    fn line_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        self.bump();
        self.bump(); // consume `//`
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: start,
            text,
        });
    }

    fn block_comment(&mut self) {
        let start = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.out.comments.push(Comment {
            start_line: start,
            end_line: self.line,
            text,
        });
    }

    /// Ordinary, raw, byte and raw-byte strings. `open` is `"`.
    fn string(&mut self, open: char) {
        let start = self.line;
        let mut text = String::new();
        text.push(open);
        self.bump();
        while let Some(c) = self.peek(0) {
            text.push(c);
            self.bump();
            if c == '\\' {
                if let Some(esc) = self.peek(0) {
                    text.push(esc);
                    self.bump();
                }
            } else if c == open {
                break;
            }
        }
        self.push_tok(TokKind::Str, text, start);
    }

    /// Raw string after an `r`/`br` prefix: `r#"..."#` with any number
    /// of `#`s (including zero).
    fn raw_string(&mut self, mut text: String) {
        let start = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            text.push('#');
            self.bump();
        }
        text.push('"');
        self.bump(); // the opening quote
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        let mut tail = String::new();
        while let Some(c) = self.peek(0) {
            tail.push(c);
            self.bump();
            if tail.ends_with(&closer) {
                break;
            }
        }
        text.push_str(&tail);
        self.push_tok(TokKind::Str, text, start);
    }

    /// Distinguish `'a` (lifetime) from `'x'` / `'\n'` (char literal):
    /// after the quote, an identifier-ish char not followed by a
    /// closing quote is a lifetime.
    fn char_or_lifetime(&mut self) {
        let start = self.line;
        let c1 = self.peek(1);
        let c2 = self.peek(2);
        let is_lifetime = match (c1, c2) {
            (Some(a), Some(b)) => (a.is_alphabetic() || a == '_') && b != '\'',
            (Some(a), None) => a.is_alphabetic() || a == '_',
            _ => false,
        };
        if is_lifetime {
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                if c.is_alphanumeric() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            self.push_tok(TokKind::Lifetime, text, start);
        } else {
            // Char literal: consume to the closing quote, honoring `\`.
            let mut text = String::from("'");
            self.bump();
            while let Some(c) = self.peek(0) {
                text.push(c);
                self.bump();
                if c == '\\' {
                    if let Some(esc) = self.peek(0) {
                        text.push(esc);
                        self.bump();
                    }
                } else if c == '\'' {
                    break;
                }
            }
            self.push_tok(TokKind::Str, text, start);
        }
    }

    fn ident(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        // String-literal prefixes: r"..", r#"..", b"..", br#"..".
        let next = self.peek(0);
        match (text.as_str(), next) {
            ("r" | "b" | "br" | "rb", Some('"')) => {
                if text.starts_with('r') || text.ends_with('r') {
                    self.raw_string(text);
                } else {
                    // b"..": an ordinary escaped string with a prefix.
                    let mut s = text;
                    s.push('"');
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        s.push(c);
                        self.bump();
                        if c == '\\' {
                            if let Some(esc) = self.peek(0) {
                                s.push(esc);
                                self.bump();
                            }
                        } else if c == '"' {
                            break;
                        }
                    }
                    self.push_tok(TokKind::Str, s, start);
                }
            }
            ("r" | "br" | "rb", Some('#')) if self.raw_string_ahead() => {
                self.raw_string(text);
            }
            _ => self.push_tok(TokKind::Ident, text, start),
        }
    }

    /// After an `r`/`br` prefix sitting before `#`s: is this a raw
    /// string (`r##"`), as opposed to a raw identifier (`r#ident`)?
    fn raw_string_ahead(&self) -> bool {
        let mut k = 0usize;
        while self.peek(k) == Some('#') {
            k += 1;
        }
        k > 0 && self.peek(k) == Some('"')
    }

    fn number(&mut self) {
        let start = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else if c == '.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !text.contains('.')
            {
                // `1.5` but not the range `0..7`.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push_tok(TokKind::Num, text, start);
    }

    fn punct(&mut self) {
        let start = self.line;
        let c = self.bump().unwrap_or(' ');
        let fused = match (c, self.peek(0)) {
            (':', Some(':')) => Some("::"),
            ('-', Some('>')) => Some("->"),
            ('=', Some('>')) => Some("=>"),
            ('.', Some('.')) => Some(".."),
            _ => None,
        };
        let text = match fused {
            Some(t) => {
                self.bump();
                t.to_string()
            }
            None => c.to_string(),
        };
        self.push_tok(TokKind::Punct, text, start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn comments_do_not_produce_tokens() {
        let lx = lex("// unsafe in a comment\nfn f() {} /* unsafe too */\n");
        assert!(lx.toks.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].text.contains("unsafe in a comment"));
    }

    #[test]
    fn strings_are_single_tokens() {
        let src = "let s = \"unsafe { }\"; let r = r#\"also unsafe\"#;";
        let lx = lex(src);
        assert!(lx.toks.iter().all(|t| !t.is_ident("unsafe")));
        assert_eq!(lx.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let lx = lex("fn f<'a>(x: &'a u8) -> char { 'x' }");
        let lifetimes: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        assert_eq!(
            lx.toks.iter().filter(|t| t.kind == TokKind::Str).count(),
            1,
            "'x' is a char literal"
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let lx = lex("fn a() {}\n\nfn b() {}\n");
        let b_line = lx
            .toks
            .iter()
            .find(|t| t.is_ident("b"))
            .map(|t| t.line)
            .unwrap_or(0);
        assert_eq!(b_line, 3);
        assert!(lx.has_code(1));
        assert!(!lx.has_code(2));
        assert!(lx.has_code(3));
    }

    #[test]
    fn fused_puncts() {
        let lx = lex("a::b -> c => d .. e");
        let puncts: Vec<_> = lx
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect::<Vec<_>>();
        assert_eq!(puncts, vec!["::", "->", "=>", ".."]);
    }

    #[test]
    fn underscored_identifiers_are_not_keywords() {
        assert_eq!(
            idents("deny(unsafe_op_in_unsafe_fn) forbid(unsafe_code)"),
            vec!["deny", "unsafe_op_in_unsafe_fn", "forbid", "unsafe_code"]
        );
    }

    #[test]
    fn multi_line_block_comment_covers_lines() {
        let lx = lex("/* SAFETY:\n   spans lines */\nlet x = 1;");
        assert!(lx.comment_on_line_contains(1, "SAFETY"));
        assert!(lx.comment_covers_line(2));
        assert!(lx.has_code(3));
    }
}
