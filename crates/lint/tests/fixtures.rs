//! Every lint is proven live: each known-bad fixture fires its lint at
//! the expected file:line, and the clean fixtures stay silent under the
//! strictest path scoping.

use ata_lint::lint_file;

/// `(line, lint)` pairs for linting `src` as if it lived at `path`.
fn diags(path: &str, src: &str) -> Vec<(usize, &'static str)> {
    lint_file(path, src)
        .into_iter()
        .map(|d| (d.line, d.lint))
        .collect()
}

#[test]
fn safety_comment_fires_at_expected_line() {
    // An allowlisted path, so only the missing SAFETY comment fires.
    let d = diags(
        "crates/mat/src/view.rs",
        include_str!("fixtures/bad_safety.rs"),
    );
    assert_eq!(d, vec![(5, "safety-comment")]);
}

#[test]
fn simd_unsafe_without_safety_comment_still_fires() {
    // The SIMD kernel files are unsafe-allowlisted, but the allowlist
    // never waives the SAFETY-comment discipline: an undocumented
    // intrinsics block inside them is still a diagnostic.
    for path in [
        "crates/kernels/src/simd/mod.rs",
        "crates/kernels/src/simd/x86.rs",
    ] {
        let d = diags(path, include_str!("fixtures/bad_simd.rs"));
        assert_eq!(d, vec![(13, "safety-comment")], "at {path}");
    }
}

#[test]
fn simd_fixture_outside_the_allowlist_also_trips_the_allowlist_lint() {
    let d = diags(
        "crates/kernels/src/micro.rs",
        include_str!("fixtures/bad_simd.rs"),
    );
    assert!(d.contains(&(13, "safety-comment")), "got {d:?}");
    assert!(d.iter().any(|&(_, l)| l == "unsafe-allowlist"), "got {d:?}");
}

#[test]
fn unsafe_allowlist_fires_at_expected_line() {
    let d = diags(
        "crates/strassen/src/lib.rs",
        include_str!("fixtures/bad_allowlist.rs"),
    );
    assert_eq!(d, vec![(4, "unsafe-allowlist")]);
}

#[test]
fn no_raw_spawn_fires_at_expected_line() {
    let d = diags(
        "crates/core/src/tracked.rs",
        include_str!("fixtures/bad_spawn.rs"),
    );
    assert_eq!(d, vec![(4, "no-raw-spawn")]);
}

#[test]
fn lock_across_blocking_fires_at_expected_line() {
    let d = diags("src/service.rs", include_str!("fixtures/bad_lock.rs"));
    // The guard taken on line 6 is still live across the send on line 7
    // (and the `.unwrap()` on the lock is itself a serving-path hit).
    assert!(d.contains(&(7, "lock-across-blocking")), "got {d:?}");
    assert!(d.contains(&(6, "no-unwrap-in-lib")), "got {d:?}");
}

#[test]
fn no_unwrap_in_lib_fires_at_expected_lines() {
    let d = diags("src/stream.rs", include_str!("fixtures/bad_unwrap.rs"));
    assert_eq!(d, vec![(4, "no-unwrap-in-lib"), (8, "no-unwrap-in-lib")]);
}

#[test]
fn bad_fixtures_are_path_scoped() {
    // The same unwrap fixture is fine outside the scoped paths...
    let d = diags(
        "crates/mat/src/chol.rs",
        include_str!("fixtures/bad_unwrap.rs"),
    );
    assert!(d.is_empty(), "got {d:?}");
    // ...but crates/linalg/src/ is scoped (the factorization tier is a
    // serving path).
    let d = diags(
        "crates/linalg/src/chol.rs",
        include_str!("fixtures/bad_unwrap.rs"),
    );
    assert_eq!(d, vec![(4, "no-unwrap-in-lib"), (8, "no-unwrap-in-lib")]);
    // ...and the lock fixture's heuristic only applies to the three
    // serving files (the unwrap hit remains, facade src/ is scoped).
    let d = diags("src/context.rs", include_str!("fixtures/bad_lock.rs"));
    assert!(!d.contains(&(7, "lock-across-blocking")), "got {d:?}");
}

#[test]
fn clean_fixture_is_silent_under_strictest_scoping() {
    let d = diags("src/service.rs", include_str!("fixtures/clean.rs"));
    assert!(d.is_empty(), "clean fixture tripped: {d:?}");
}

#[test]
fn documented_unsafe_fixture_is_silent() {
    let d = diags(
        "crates/core/src/parallel.rs",
        include_str!("fixtures/clean_unsafe.rs"),
    );
    assert!(d.is_empty(), "clean unsafe fixture tripped: {d:?}");
}

#[test]
fn allow_comment_silences_each_bad_fixture() {
    // Appending a trailing allow on the diagnostic line silences it.
    let silenced = include_str!("fixtures/bad_spawn.rs").replace(
        "std::thread::spawn(|| {});",
        "std::thread::spawn(|| {}); // ata-lint: allow(no-raw-spawn): fixture",
    );
    let d = diags("crates/core/src/tracked.rs", &silenced);
    assert!(d.is_empty(), "allow did not silence: {d:?}");
}
