//! The gate itself, as tests: the workspace tree is lint-clean, and the
//! committed `API/` snapshots match the sources. `cargo test` therefore
//! enforces the same invariants CI runs via `ata-lint check` and
//! `ata-lint api --verify`.

use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_tree_is_lint_clean() {
    let diags = ata_lint::check(&workspace_root()).expect("workspace sources readable");
    for d in &diags {
        eprintln!("{d}");
    }
    assert!(
        diags.is_empty(),
        "{} lint finding(s) — run `cargo run -p ata-lint -- check`",
        diags.len()
    );
}

#[test]
fn api_snapshots_match_the_sources() {
    let problems = ata_lint::verify_api(&workspace_root()).expect("workspace sources readable");
    for p in &problems {
        eprintln!("{p}");
    }
    assert!(
        problems.is_empty(),
        "{} API drift(s) — run `cargo run -p ata-lint -- api` and commit if intentional",
        problems.len()
    );
}

#[test]
fn api_snapshots_are_stable_across_runs() {
    let root = workspace_root();
    let first = ata_lint::api_snapshots(&root).expect("workspace sources readable");
    let second = ata_lint::api_snapshots(&root).expect("workspace sources readable");
    assert_eq!(first, second, "snapshot extraction must be deterministic");
    assert!(
        first.keys().any(|k| k == "ata"),
        "the facade crate must be snapshotted, got {:?}",
        first.keys().collect::<Vec<_>>()
    );
}
