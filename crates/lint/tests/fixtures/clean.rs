//! Fixture: serving-path constructs that must NOT trip any lint, even
//! under the strictest path scoping (`src/service.rs`: unwrap scope +
//! lock scope).

use std::sync::Mutex;

/// Docs may talk about `unsafe { .. }`, `x.unwrap()` and
/// `std::thread::spawn` freely — comments are not code.
pub fn strings_are_not_code() -> &'static str {
    // Neither are string literals:
    "unsafe { std::thread::spawn(|| q.lock().unwrap()) }"
}

pub fn guard_cloned_out_then_send(q: &Mutex<Option<Sender<u8>>>, x: u8) {
    // The guard is a temporary: only the cloned sender lives on.
    let tx = q.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
    if let Some(tx) = tx {
        let _ = tx.send(x);
    }
}

pub fn guard_dropped_before_send(q: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let guard = q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let first = guard.first().copied().unwrap_or(0);
    drop(guard);
    let _ = tx.send(first);
}

pub fn documented_invariant(x: Option<u8>) -> u8 {
    // ata-lint: allow(no-unwrap-in-lib): fixture proving the escape
    // hatch works, reason wrapped over two comment lines.
    x.expect("the fixture always passes Some")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_spawn_and_unwrap() {
        let h = std::thread::spawn(|| 1u8);
        assert_eq!(h.join().unwrap(), 1);
    }
}
