//! Fixture: `unsafe` outside the allowlisted files (line 4).

// SAFETY: documented, so only the allowlist lint fires.
pub fn rogue(p: *const u8) -> u8 { unsafe { p.read() } }
