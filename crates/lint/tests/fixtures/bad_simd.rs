//! Fixture: an intrinsics-style kernel in an allowlisted SIMD file
//! whose first `unsafe` block is missing the mandatory SAFETY comment
//! (line 13).

use core::arch::x86_64::*;

/// One fused tile step.
///
/// # Safety
/// `p` must be valid for four f64 reads.
#[target_feature(enable = "avx2,fma")]
pub unsafe fn undocumented_tile(p: *const f64) -> __m256d {
    let v = unsafe { _mm256_loadu_pd(p) };
    // SAFETY: same caller contract as the load above.
    unsafe { _mm256_fmadd_pd(v, v, v) }
}
