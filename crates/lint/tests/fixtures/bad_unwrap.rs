//! Fixture: `.unwrap()` / `.expect(..)` on a serving path (lines 4, 8).

pub fn brittle(x: Option<u8>) -> u8 {
    x.unwrap()
}

pub fn also_brittle(x: Option<u8>) -> u8 {
    x.expect("still brittle")
}
