//! Fixture: a lock guard live across a blocking send (lines 6-7).

use std::sync::Mutex;

pub fn deadlock_bait(q: &Mutex<Vec<u8>>, tx: &Sender<u8>) {
    let guard = q.lock().unwrap();
    tx.send(guard[0]).ok();
}
