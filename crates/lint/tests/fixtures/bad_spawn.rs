//! Fixture: raw `std::thread::spawn` outside the pool (line 4).

pub fn leak_a_thread() {
    std::thread::spawn(|| {});
}
