//! Fixture: `unsafe` with no adjacent SAFETY comment (line 5).

pub fn totally_fine() {}

pub fn missing_safety(p: *const u8) -> u8 { unsafe { p.read() } }
