//! Fixture: properly documented `unsafe` in an allowlisted file.

/// Reads one byte.
///
/// # Safety
/// `p` must be valid for reads and properly aligned.
#[inline]
pub unsafe fn read_byte(p: *const u8) -> u8 {
    // SAFETY: the caller upholds validity and alignment (doc contract
    // above); the comment block may span multiple lines.
    unsafe { p.read() }
}
