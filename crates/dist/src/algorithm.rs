//! AtA-D (Algorithm 4, §4.2–§4.3): the distributed `A^T A` on the
//! simulated cluster.
//!
//! Structure follows the paper's distribute–compute–retrieve phases,
//! built on the plan/execute split of [`DistPlan`]:
//!
//! 1. **Planning** — every rank deterministically builds the same
//!    [`DistTree`] (the §4.1 task-tree process mapping) plus the
//!    distribution layout: per-rank scatter payload sizes derived from
//!    the leaves each rank owns. A [`DistPlan`] is built once per
//!    `(m, n, P, config)` and executed any number of times — the facade's
//!    `AtaPlan` holds one so serving loops never rebuild the tree.
//! 2. **Distribution** (§4.3) — `p0` owns the input; it assembles one
//!    concatenated operand chunk per rank (every remotely-owned leaf's
//!    block(s), in tree order) and ships them down a binomial tree with
//!    [`Comm::tree_scatterv`]. The root pays `O(log P)` latencies
//!    instead of one per leaf block, and transfers overlap down the
//!    subtrees under the LogGP clock.
//! 3. **Compute** — every rank executes its leaf tasks locally: `A^T A`
//!    leaves run the serial AtA recursion (Algorithm 1), `A^T B` leaves
//!    run FastStrassen — or the plain BLAS-substitute kernels when
//!    [`AtaDConfig::strassen_leaves`] is off (the §4.3.1 leaf-kernel
//!    choice, ablated in `ata-bench/bin/ablation`). With
//!    [`AtaDConfig::threads_per_rank`] > 1 the leaves run their
//!    shared-memory variants, modeling the paper's hybrid SM+DM setup
//!    (Table 1: 6 processes x 16 threads).
//! 4. **Retrieval** — results climb the tree: each node's owner sums its
//!    children's contributions (children writing the same `C` block are
//!    *summed by the parent*, §4.1.1) and forwards the accumulated block
//!    to its parent's owner, until the root holds the lower triangle.
//!    Symmetric (`A^T A`) blocks travel in the §4.3.1 packed encoding
//!    when [`AtaDConfig::wire`] is [`WireFormat::SymPacked`] (the
//!    default), cutting the words that converge on the root.
//!
//! Every message is accounted by the LogGP clock of [`Comm`]; compute is
//! charged at the model's flop rate (divided by `threads_per_rank`), so
//! critical paths mirror the paper's §4.3.2 cost analysis. The exact
//! per-rank message/word counts are predicted by [`crate::traffic`] and
//! audited against Proposition 4.2 in `tests/traffic.rs`.

use std::collections::HashMap;

use ata_core::analysis::ata_mults;
use ata_core::parallel::ata_s;
use ata_core::serial::{ata_into_with_kind, StrassenKind};
use ata_core::tasktree::{ComputeKind, DistNode, DistTree};
use ata_kernels::par::{par_gemm_tn, par_syrk_ln};
use ata_kernels::{gemm_tn, syrk_ln, CacheConfig};
use ata_mat::{ops, MatRef, Matrix, Scalar};
use ata_mpisim::Comm;
use ata_strassen::{fast_strassen, strassen_mults, StrassenWorkspace};

use crate::error::{DistError, DistPhase};
use crate::wire::{self, WireFormat};
use ata_mpisim::CommError;

/// Tuning knobs of AtA-D.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AtaDConfig {
    /// Load-balance parameter of the task tree (§4.1.2; the paper
    /// derives `alpha = 1/2` from the gemm/syrk flop ratio).
    pub alpha: f64,
    /// Cache model for the leaf recursions' base cases.
    pub cache: CacheConfig,
    /// Run AtA/FastStrassen at the leaves (`true`, §4.3.1's default for
    /// "larger volumes of data") or the plain blocked kernels (`false`).
    pub strassen_leaves: bool,
    /// Threads per rank for the leaf computations (> 1 models the hybrid
    /// SM+DM runs of Table 1; the modeled compute time divides by it).
    pub threads_per_rank: usize,
    /// Wire encoding of result blocks during retrieval (§4.3.1). The
    /// packed default is bit-identical to dense and strictly cheaper on
    /// the root's received words.
    pub wire: WireFormat,
}

impl Default for AtaDConfig {
    fn default() -> Self {
        Self {
            alpha: 0.5,
            cache: CacheConfig::default(),
            strassen_leaves: true,
            threads_per_rank: 1,
            wire: WireFormat::SymPacked,
        }
    }
}

/// Charge `flops` of modeled compute spread over `threads` workers.
fn charge<T: Send + 'static>(comm: &mut Comm<T>, flops: f64, threads: usize) {
    let secs = comm.model().compute_time(flops) / threads.max(1) as f64;
    comm.add_compute_seconds(secs);
}

/// Wrap a communication failure in its Algorithm 4 context and poison
/// the peers so errors cascade instead of deadlocking (see
/// [`Comm::abandon`]).
fn fail<T: Send + 'static>(comm: &mut Comm<T>, phase: DistPhase, error: CommError) -> DistError {
    comm.abandon();
    DistError {
        phase,
        rank: comm.rank(),
        error,
    }
}

/// Execute one leaf task into a freshly allocated `C` block.
fn compute_leaf<T: Scalar>(
    node: &DistNode,
    a_blk: MatRef<'_, T>,
    b_blk: Option<MatRef<'_, T>>,
    comm: &mut Comm<T>,
    cfg: &AtaDConfig,
) -> Matrix<T> {
    let mut out = Matrix::zeros(node.c.rows(), node.c.cols());
    let threads = cfg.threads_per_rank;
    match node.kind {
        ComputeKind::AtA => {
            let (mb, nb) = a_blk.shape();
            let flops = if cfg.strassen_leaves {
                2.0 * ata_mults(mb, nb, &cfg.cache) as f64
            } else {
                (mb * nb * (nb + 1)) as f64
            };
            if threads > 1 && cfg.strassen_leaves {
                ata_s(T::ONE, a_blk, &mut out.as_mut(), threads, &cfg.cache);
            } else if threads > 1 {
                par_syrk_ln(T::ONE, a_blk, &mut out.as_mut(), threads);
            } else if cfg.strassen_leaves {
                let mut ws = StrassenWorkspace::empty();
                ata_into_with_kind(
                    T::ONE,
                    a_blk,
                    &mut out.as_mut(),
                    &cfg.cache,
                    StrassenKind::Classic,
                    &mut ws,
                );
            } else {
                syrk_ln(T::ONE, a_blk, &mut out.as_mut());
            }
            charge(comm, flops, threads);
        }
        ComputeKind::AtB => {
            let b_blk = b_blk.expect("AtB leaf carries a B block"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
            let (mb, nb) = a_blk.shape();
            let kb = b_blk.cols();
            // No parallel FastStrassen exists: multi-threaded leaves run
            // the plain blocked kernel, so charge its flops, not
            // Strassen's.
            let flops = if cfg.strassen_leaves && threads == 1 {
                2.0 * strassen_mults(mb, nb, kb, &cfg.cache) as f64
            } else {
                2.0 * (mb * nb * kb) as f64
            };
            if threads > 1 {
                par_gemm_tn(T::ONE, a_blk, b_blk, &mut out.as_mut(), threads);
            } else if cfg.strassen_leaves {
                fast_strassen(T::ONE, a_blk, b_blk, &mut out.as_mut(), &cfg.cache);
            } else {
                gemm_tn(T::ONE, a_blk, b_blk, &mut out.as_mut());
            }
            charge(comm, flops, threads);
        }
    }
    out
}

/// A prebuilt AtA-D execution plan: the §4.1 task tree plus the
/// distribution layout, reusable across any number of executions.
///
/// Building is the expensive, allocation-heavy phase (tree construction
/// is `O(nodes)`); [`DistPlan::execute`] then runs the
/// distribute–compute–retrieve schedule without rebuilding anything —
/// the facade's simulated-dist backend holds one plan per problem shape
/// and the `DistTree::build_count` tests prove repeat executions rebuild
/// no tree.
#[derive(Debug, Clone)]
pub struct DistPlan {
    m: usize,
    n: usize,
    procs: usize,
    cfg: AtaDConfig,
    tree: DistTree,
    /// Distribution layout: operand words shipped to each rank by the
    /// scatter (concatenated leaf blocks, tree order; `counts[0] == 0`
    /// because the root reads its own leaves in place).
    counts: Vec<usize>,
}

impl DistPlan {
    /// Build the plan for an `m x n` input on `procs` ranks.
    ///
    /// # Panics
    /// If `procs == 0`, `cfg.threads_per_rank == 0`, or `cfg.alpha` is
    /// outside `(0, 1)`.
    pub fn build(m: usize, n: usize, procs: usize, cfg: &AtaDConfig) -> Self {
        assert!(
            cfg.threads_per_rank > 0,
            "threads_per_rank must be positive"
        );
        let tree = DistTree::build_with_alpha(m, n, procs, cfg.alpha);
        let mut counts = vec![0usize; procs];
        for node in tree.leaves().filter(|nd| nd.owner != 0) {
            counts[node.owner] += node.a.area();
            if node.kind == ComputeKind::AtB {
                counts[node.owner] += node.b.area();
            }
        }
        Self {
            m,
            n,
            procs,
            cfg: *cfg,
            tree,
            counts,
        }
    }

    /// Planned input shape `(m, n)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Rank count the plan was built for.
    pub fn procs(&self) -> usize {
        self.procs
    }

    /// The configuration the plan was built with.
    pub fn config(&self) -> &AtaDConfig {
        &self.cfg
    }

    /// The prebuilt task tree.
    pub fn tree(&self) -> &DistTree {
        &self.tree
    }

    /// Per-rank scatter payload sizes (words), indexed by rank — the
    /// `counts` argument of [`Comm::tree_scatterv`].
    pub fn scatter_counts(&self) -> &[usize] {
        &self.counts
    }

    /// Execute the plan (Algorithm 4) on the simulated cluster.
    ///
    /// SPMD contract: every rank calls this on the same plan; rank 0
    /// passes `Some(&a)` (the full `m x n` input), everyone else `None`.
    /// Rank 0 returns `Ok(Some(C))` — an `n x n` matrix whose
    /// strictly-upper part is zero — and all other ranks return
    /// `Ok(None)`.
    ///
    /// # Errors
    /// On a faulted universe (see [`ata_mpisim::FaultPlan`]), a rank
    /// whose communication fails returns a [`DistError`] identifying
    /// the phase, the observing rank, and the transport cause — after
    /// poisoning its peers ([`Comm::abandon`]) so the whole universe
    /// resolves in bounded simulated time instead of deadlocking. On a
    /// fault-free universe this never returns `Err`, and the traffic
    /// counters are bit-identical to what they were before fault
    /// injection existed.
    ///
    /// # Panics
    /// If the universe size differs from the planned rank count, the
    /// root passes `None` / a wrong-shape matrix, or a non-root passes
    /// `Some`.
    pub fn execute<T: Scalar>(
        &self,
        input: Option<&Matrix<T>>,
        comm: &mut Comm<T>,
    ) -> Result<Option<Matrix<T>>, DistError> {
        let rank = comm.rank();
        let (m, n) = (self.m, self.n);
        assert_eq!(
            comm.size(),
            self.procs,
            "plan built for {} ranks, universe has {}",
            self.procs,
            comm.size()
        );
        if rank == 0 {
            let a = input.expect("rank 0 must provide the input matrix"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
            assert_eq!(a.shape(), (m, n), "input must be {m} x {n}");
        } else {
            assert!(input.is_none(), "non-root rank {rank} must pass None");
        }

        let tree = &self.tree;
        let cfg = &self.cfg;
        let tag_c = |id: usize| id as u64;

        // --- Phase 1: distribution (binomial-tree scatter of the
        // per-rank operand chunks; root leaves stay in place). ---
        let mut received: HashMap<usize, (Matrix<T>, Option<Matrix<T>>)> = HashMap::new();
        if self.procs > 1 {
            let chunks = (rank == 0).then(|| {
                let a = input.expect("checked above"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                let mut chunks: Vec<Vec<T>> =
                    self.counts.iter().map(|&c| Vec::with_capacity(c)).collect();
                for node in tree.leaves().filter(|nd| nd.owner != 0) {
                    let chunk = &mut chunks[node.owner];
                    wire::append_view(
                        chunk,
                        a.as_ref().block(node.a.r0, node.a.r1, node.a.c0, node.a.c1),
                    );
                    if node.kind == ComputeKind::AtB {
                        wire::append_view(
                            chunk,
                            a.as_ref().block(node.b.r0, node.b.r1, node.b.c0, node.b.c1),
                        );
                    }
                }
                chunks
            });
            let mine = comm
                .tree_scatterv_checked(chunks, &self.counts)
                .map_err(|e| fail(comm, DistPhase::Scatter, e))?;
            if rank != 0 {
                // Disassemble the chunk in the same deterministic order
                // the root packed it.
                let mut off = 0usize;
                for node in tree.leaves().filter(|nd| nd.owner == rank) {
                    let a_blk = wire::read_block(&mine, &mut off, node.a.rows(), node.a.cols());
                    let b_blk = (node.kind == ComputeKind::AtB)
                        .then(|| wire::read_block(&mine, &mut off, node.b.rows(), node.b.cols()));
                    received.insert(node.id, (a_blk, b_blk));
                }
                debug_assert_eq!(off, mine.len(), "chunk fully consumed");
            }
        }

        // --- Phases 2 + 3: leaf compute and upward accumulation. ---
        // Reverse creation order visits children before parents (ids grow
        // downward), so every dependency is ready — or in flight from
        // another rank — by the time its parent gathers.
        let mut pending: HashMap<usize, Matrix<T>> = HashMap::new();
        let mut result = None;
        for node in tree.nodes.iter().rev() {
            if node.owner != rank {
                continue;
            }
            let block = if node.is_leaf() {
                if rank == 0 {
                    let a = input.expect("checked above"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                    let a_blk = a.as_ref().block(node.a.r0, node.a.r1, node.a.c0, node.a.c1);
                    let b_blk = (node.kind == ComputeKind::AtB)
                        .then(|| a.as_ref().block(node.b.r0, node.b.r1, node.b.c0, node.b.c1));
                    compute_leaf(node, a_blk, b_blk, comm, cfg)
                } else {
                    let (a_blk, b_blk) = received.remove(&node.id).expect("operands distributed"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                    let b_ref = b_blk.as_ref().map(|b| b.as_ref());
                    compute_leaf(node, a_blk.as_ref(), b_ref, comm, cfg)
                }
            } else {
                // Gather-with-sums (§4.1.1): overlapping children accumulate.
                let mut acc = Matrix::zeros(node.c.rows(), node.c.cols());
                for &cid in &node.children {
                    let child = &tree.nodes[cid];
                    let contrib = if child.owner == rank {
                        // ata-lint: allow(no-unwrap-in-lib): SPMD invariant
                        // stated in the expect message.
                        pending.remove(&cid).expect("child result computed first")
                    } else {
                        let payload = comm
                            .recv_checked(child.owner, tag_c(cid))
                            .map_err(|e| fail(comm, DistPhase::Gather, e))?;
                        wire::unpack_c(
                            payload,
                            child.kind,
                            child.c.rows(),
                            child.c.cols(),
                            cfg.wire,
                        )
                    };
                    let r0 = child.c.r0 - node.c.r0;
                    let c0 = child.c.c0 - node.c.c0;
                    let mut dst =
                        acc.as_mut()
                            .into_block(r0, r0 + child.c.rows(), c0, c0 + child.c.cols());
                    ops::add_assign(&mut dst, contrib.as_ref());
                    comm.add_compute_flops(child.c.area() as f64);
                }
                acc
            };
            match node.parent {
                None => result = Some(block),
                Some(pid) => {
                    let parent_owner = tree.nodes[pid].owner;
                    if parent_owner == rank {
                        pending.insert(node.id, block);
                    } else {
                        let payload = wire::pack_c(&block, node.kind, cfg.wire);
                        comm.send_checked(parent_owner, tag_c(node.id), payload)
                            .map_err(|e| fail(comm, DistPhase::Gather, e))?;
                    }
                }
            }
        }
        Ok(result)
    }
}

/// AtA-D (Algorithm 4): lower triangle of `C = A^T A` on the simulated
/// cluster — the one-shot entry point. Every rank builds the (identical,
/// deterministic) [`DistPlan`] and executes it once; serving loops
/// should build the plan once and call [`DistPlan::execute`] instead.
///
/// SPMD contract: every rank calls this with the same `m`, `n` and
/// config; rank 0 passes `Some(&a)` (the full `m x n` input), everyone
/// else `None`. Rank 0 returns `Some(C)` — an `n x n` matrix whose
/// strictly-upper part is zero — and all other ranks return `None`.
///
/// # Panics
/// If the root passes `None` / a wrong-shape matrix, a non-root passes
/// `Some`, or `cfg.threads_per_rank == 0`.
pub fn ata_d<T: Scalar>(
    input: Option<&Matrix<T>>,
    m: usize,
    n: usize,
    comm: &mut Comm<T>,
    cfg: &AtaDConfig,
) -> Option<Matrix<T>> {
    // The one-shot entry point keeps the infallible signature: faults
    // only exist on explicitly faulted universes, where callers should
    // hold a plan and use `execute` to observe them as errors.
    DistPlan::build(m, n, comm.size(), cfg)
        .execute(input, comm)
        .unwrap_or_else(|e| panic!("ata_d on a faulted universe: {e} (use DistPlan::execute)"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};
    use ata_mpisim::{run, CostModel};

    fn oracle(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c
    }

    fn check(m: usize, n: usize, procs: usize, cfg: AtaDConfig) {
        let a = gen::standard::<f64>(m as u64 * 31 + n as u64 + procs as u64, m, n);
        let c_ref = oracle(&a);
        let a_ref = &a;
        let report = run(procs, CostModel::zero(), move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            ata_d(input, m, n, comm, &cfg)
        });
        let c = report.results[0].as_ref().expect("root returns C");
        let tol = ata_mat::ops::product_tol::<f64>(m, n, m as f64);
        let diff = c.max_abs_diff_lower(&c_ref);
        assert!(
            diff <= tol,
            "m={m} n={n} P={procs}: AtA-D differs by {diff} > {tol}"
        );
        // Non-roots return nothing.
        for r in 1..procs {
            assert!(report.results[r].is_none(), "rank {r} must return None");
        }
        // Strict upper is zero at the root.
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(c[(i, j)], 0.0, "upper ({i},{j}) written");
            }
        }
    }

    #[test]
    fn matches_oracle_across_rank_counts() {
        for procs in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16] {
            check(
                48,
                40,
                procs,
                AtaDConfig {
                    cache: CacheConfig::with_words(64),
                    ..AtaDConfig::default()
                },
            );
        }
    }

    #[test]
    fn rectangular_and_tiny_inputs() {
        let cfg = AtaDConfig {
            cache: CacheConfig::with_words(32),
            ..AtaDConfig::default()
        };
        check(70, 20, 8, cfg);
        check(20, 70, 8, cfg);
        check(5, 64, 12, cfg);
        check(1, 1, 4, cfg);
        check(3, 2, 16, cfg);
    }

    #[test]
    fn dense_wire_matches_oracle_across_rank_counts() {
        for procs in [2usize, 5, 8, 12] {
            check(
                44,
                36,
                procs,
                AtaDConfig {
                    cache: CacheConfig::with_words(64),
                    wire: WireFormat::Dense,
                    ..AtaDConfig::default()
                },
            );
        }
    }

    #[test]
    fn wire_formats_are_bit_identical() {
        let (m, n) = (52usize, 44usize);
        let a = gen::standard::<f64>(123, m, n);
        for procs in [2usize, 6, 8, 13] {
            let mut results = Vec::new();
            for wire in [WireFormat::Dense, WireFormat::SymPacked] {
                let cfg = AtaDConfig {
                    cache: CacheConfig::with_words(64),
                    wire,
                    ..AtaDConfig::default()
                };
                let a_ref = &a;
                let report = run(procs, CostModel::zero(), move |comm| {
                    let input = (comm.rank() == 0).then_some(a_ref);
                    ata_d(input, m, n, comm, &cfg)
                });
                results.push(report.results[0].clone().expect("root"));
            }
            assert_eq!(
                results[0].max_abs_diff(&results[1]),
                0.0,
                "P={procs}: wire formats must agree bit-for-bit"
            );
        }
    }

    #[test]
    fn plan_reuse_is_deterministic_and_rebuilds_no_tree() {
        // Shape chosen to be unique within this test binary, so the
        // shape-keyed build counter cannot race with sibling tests.
        let (m, n, procs) = (41usize, 33usize, 9usize);
        let cfg = AtaDConfig {
            cache: CacheConfig::with_words(64),
            ..AtaDConfig::default()
        };
        let plan = DistPlan::build(m, n, procs, &cfg);
        let a = gen::standard::<f64>(9, m, n);
        let builds_before = DistTree::build_count_for(m, n, procs);
        let mut runs = Vec::new();
        for _ in 0..3 {
            let (a_ref, plan_ref) = (&a, &plan);
            let report = run(procs, CostModel::zero(), move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                plan_ref.execute(input, comm).expect("fault-free universe")
            });
            runs.push(report.results[0].clone().expect("root"));
        }
        assert_eq!(
            DistTree::build_count_for(m, n, procs),
            builds_before,
            "plan executions must not rebuild the DistTree"
        );
        assert_eq!(runs[0].max_abs_diff(&runs[1]), 0.0);
        assert_eq!(runs[0].max_abs_diff(&runs[2]), 0.0);
    }

    #[test]
    fn plan_scatter_counts_cover_remote_leaf_operands() {
        let plan = DistPlan::build(64, 48, 8, &AtaDConfig::default());
        assert_eq!(plan.scatter_counts()[0], 0, "root keeps its leaves local");
        let total: usize = plan.scatter_counts().iter().sum();
        let expect: usize = plan
            .tree()
            .leaves()
            .filter(|nd| nd.owner != 0)
            .map(|nd| {
                nd.a.area()
                    + if nd.kind == ComputeKind::AtB {
                        nd.b.area()
                    } else {
                        0
                    }
            })
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    #[should_panic(expected = "plan built for")]
    fn plan_rank_count_mismatch_rejected() {
        let plan = DistPlan::build(16, 16, 4, &AtaDConfig::default());
        let _ = run(2, CostModel::zero(), move |comm| {
            let input = None;
            if comm.rank() == 0 {
                let a = Matrix::<f64>::zeros(16, 16);
                plan.execute(Some(&a), comm).expect("unreachable")
            } else {
                plan.execute(input, comm).expect("unreachable")
            }
        });
    }

    #[test]
    fn blas_leaves_agree_with_strassen_leaves() {
        let (m, n, p) = (52, 44, 8);
        let a = gen::standard::<f64>(77, m, n);
        let c_ref = oracle(&a);
        for strassen in [false, true] {
            let cfg = AtaDConfig {
                cache: CacheConfig::with_words(64),
                strassen_leaves: strassen,
                ..AtaDConfig::default()
            };
            let a_ref = &a;
            let report = run(p, CostModel::zero(), move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                ata_d(input, m, n, comm, &cfg)
            });
            let c = report.results[0].as_ref().expect("root");
            let tol = ata_mat::ops::product_tol::<f64>(m, n, m as f64);
            assert!(c.max_abs_diff_lower(&c_ref) <= tol, "strassen={strassen}");
        }
    }

    #[test]
    fn hybrid_threads_per_rank() {
        let cfg = AtaDConfig {
            cache: CacheConfig::with_words(64),
            threads_per_rank: 4,
            ..AtaDConfig::default()
        };
        check(64, 48, 6, cfg);
    }

    #[test]
    fn alpha_sweep_stays_correct() {
        for alpha in [0.25, 0.4, 0.6, 0.75] {
            check(
                40,
                36,
                12,
                AtaDConfig {
                    alpha,
                    cache: CacheConfig::with_words(32),
                    ..AtaDConfig::default()
                },
            );
        }
    }

    #[test]
    fn compute_time_is_charged_under_costed_model() {
        let (m, n, p) = (64, 64, 8);
        let a = gen::standard::<f64>(3, m, n);
        let a_ref = &a;
        let report = run(p, CostModel::terastat(), move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            ata_d(input, m, n, comm, &AtaDConfig::default());
        });
        assert!(report.critical_path() > 0.0);
        assert!(report.metrics.iter().any(|m| m.compute_time > 0.0));
        assert!(
            report.metrics[0].words_sent > 0,
            "root distributes A blocks"
        );
    }

    #[test]
    #[should_panic(expected = "must provide the input")]
    fn missing_root_input_rejected() {
        let _ = run::<f64, _, _>(1, CostModel::zero(), |comm| {
            ata_d::<f64>(None, 4, 4, comm, &AtaDConfig::default());
        });
    }

    #[test]
    fn faulted_execution_fails_typed_or_matches_reference() {
        use ata_mpisim::{FaultPlan, FaultSpec, Universe};
        let (m, n) = (40usize, 32usize);
        let a = gen::standard::<f64>(11, m, n);
        let c_ref = oracle(&a);
        let tol = ata_mat::ops::product_tol::<f64>(m, n, m as f64);
        for procs in [2usize, 4, 8] {
            let cfg = AtaDConfig {
                cache: CacheConfig::with_words(64),
                ..AtaDConfig::default()
            };
            let plan = DistPlan::build(m, n, procs, &cfg);
            let (mut oks, mut errs) = (0usize, 0usize);
            for seed in 0..24u64 {
                let faults = FaultPlan::seeded(seed, procs, &FaultSpec::default());
                let (a_ref, plan_ref) = (&a, &plan);
                let report = Universe::new(procs, CostModel::zero())
                    .faults(faults)
                    .recv_deadline(1.0)
                    .run(move |comm| {
                        let input = (comm.rank() == 0).then_some(a_ref);
                        plan_ref.execute(input, comm)
                    });
                match &report.results[0] {
                    Ok(Some(c)) => {
                        oks += 1;
                        let diff = c.max_abs_diff_lower(&c_ref);
                        assert!(diff <= tol, "seed {seed} P={procs}: wrong answer ({diff})");
                    }
                    Ok(None) => panic!("root must hold the result on success"),
                    Err(_) => errs += 1, // typed failure is the contract
                }
                // The simulated clocks stayed bounded: a hang would
                // have tripped the universe's wall-clock guard instead.
                assert!(report.critical_path().is_finite());
            }
            assert!(oks > 0, "P={procs}: every seed failed — sweep too hostile");
            assert!(errs > 0, "P={procs}: no seed failed — sweep too tame");
        }
    }

    #[test]
    fn delay_only_faults_keep_results_bit_identical() {
        use ata_mpisim::{FaultPlan, FaultSpec, Universe};
        let (m, n, procs) = (36usize, 28usize, 4usize);
        let a = gen::standard::<f64>(5, m, n);
        let cfg = AtaDConfig {
            cache: CacheConfig::with_words(64),
            ..AtaDConfig::default()
        };
        let plan = DistPlan::build(m, n, procs, &cfg);
        let run_with = |faults: FaultPlan| {
            let (a_ref, plan_ref) = (&a, &plan);
            Universe::new(procs, CostModel::zero())
                .faults(faults)
                .recv_deadline(1.0)
                .run(move |comm| {
                    let input = (comm.rank() == 0).then_some(a_ref);
                    plan_ref.execute(input, comm)
                })
        };
        let clean = run_with(FaultPlan::new());
        let c_clean = clean.results[0]
            .as_ref()
            .expect("fault-free")
            .as_ref()
            .expect("root");
        for seed in 0..8u64 {
            let faults = FaultPlan::seeded(seed, procs, &FaultSpec::delays_only());
            let delayed = run_with(faults);
            let c = delayed.results[0]
                .as_ref()
                .expect("delays cannot fail an execution")
                .as_ref()
                .expect("root");
            assert_eq!(
                c.max_abs_diff(c_clean),
                0.0,
                "seed {seed}: not bit-identical"
            );
        }
    }

    #[test]
    fn crashed_root_fails_every_rank_typed() {
        use ata_mpisim::{CommError, FaultPlan, Universe};
        let (m, n, procs) = (32usize, 24usize, 4usize);
        let a = gen::standard::<f64>(7, m, n);
        let plan = DistPlan::build(m, n, procs, &AtaDConfig::default());
        let (a_ref, plan_ref) = (&a, &plan);
        let report = Universe::new(procs, CostModel::zero())
            .faults(FaultPlan::new().crash_rank(0, 0))
            .recv_deadline(1.0)
            .run(move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                plan_ref.execute(input, comm)
            });
        for (rank, res) in report.results.iter().enumerate() {
            let err = res.as_ref().expect_err("all ranks must fail");
            assert_eq!(err.rank, rank, "error reports the observing rank");
            if rank == 0 {
                assert_eq!(err.error, CommError::Crashed { rank: 0, op: 0 });
            }
        }
    }
}
