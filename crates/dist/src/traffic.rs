//! Exact traffic prediction for AtA-D — the analytical side of
//! Proposition 4.2.
//!
//! [`ata_d_traffic`] (and [`plan_traffic`], its plan-level form) replays
//! the communication schedule of [`crate::DistPlan::execute`] on the
//! task tree *without running anything*:
//!
//! * the **distribution** phase walks the same binomial scatter tree as
//!   `tree_scatterv`, charging each subtree leader the concatenated
//!   operand words it forwards;
//! * the **retrieval** phase ships every node's `C` block to its
//!   parent's owner when they differ, in the plan's [`WireFormat`] —
//!   symmetric blocks count `n(n+1)/2` words under
//!   [`WireFormat::SymPacked`], `n^2` under [`WireFormat::Dense`].
//!
//! Because the simulator's counters are exact, `tests/traffic.rs`
//! asserts bit-exact agreement between this prediction and
//! [`ata_mpisim::RankMetrics`] — send *and* receive side — then checks
//! the Proposition 4.2 scaling: per-level volume is `O(mn + n^2)`, the
//! level count grows like Eq. 5's `l(P)`, and the packed wire format
//! strictly reduces the words converging on the root versus dense.

use crate::algorithm::{AtaDConfig, DistPlan};
use crate::wire::WireFormat;

/// Predicted per-rank traffic (messages and payload words, both
/// directions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankTraffic {
    /// Messages this rank sends.
    pub msgs: u64,
    /// Payload words this rank sends.
    pub words: u64,
    /// Messages this rank receives.
    pub msgs_recv: u64,
    /// Payload words this rank receives.
    pub words_recv: u64,
}

/// Predicted traffic of a whole AtA-D run.
#[derive(Debug, Clone)]
pub struct TrafficPlan {
    /// Per-rank prediction, indexed by rank.
    pub per_rank: Vec<RankTraffic>,
    /// Depth of the task tree the prediction was derived from.
    pub levels: usize,
    /// Wire format the prediction was derived for.
    pub wire: WireFormat,
}

/// The predicted communication bill of dispatching one problem through
/// AtA-D — the quote a router compares against an admission budget
/// *before* committing ranks to the split (see `ata::shard`).
///
/// Produced by [`TrafficPlan::price`]; every field is a deterministic
/// replay of the schedule, so two quotes for the same `(m, n, P, wire)`
/// are bit-identical and match the simulator's counters exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoutePrice {
    /// Words converging on the root during retrieval.
    pub root_recv_words: u64,
    /// Words the root scatters during distribution.
    pub root_sent_words: u64,
    /// The heaviest rank's sent + received words — the per-processor
    /// bandwidth of Proposition 4.2, and the natural admission metric:
    /// it bounds how long any one link is busy on this dispatch.
    pub max_rank_words: u64,
    /// Total words moved by the whole dispatch.
    pub total_words: u64,
    /// Total messages (latency term).
    pub total_msgs: u64,
}

impl TrafficPlan {
    /// Collapse the per-rank prediction into a [`RoutePrice`] quote.
    pub fn price(&self) -> RoutePrice {
        RoutePrice {
            root_recv_words: self.root_recv_words(),
            root_sent_words: self.root_sent_words(),
            max_rank_words: self.max_rank_words(),
            total_words: self.total_words(),
            total_msgs: self.total_msgs(),
        }
    }

    /// Total words sent by all ranks.
    pub fn total_words(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words).sum()
    }

    /// Total messages sent by all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs).sum()
    }

    /// Words converging on the root — the retrieval-phase bandwidth term
    /// of Proposition 4.2 that the packed wire format attacks.
    pub fn root_recv_words(&self) -> u64 {
        self.per_rank[0].words_recv
    }

    /// Words leaving the root — the distribution-phase bandwidth term
    /// (wire-format independent: operand blocks are always dense).
    pub fn root_sent_words(&self) -> u64 {
        self.per_rank[0].words
    }

    /// The heaviest rank's total word traffic (sent + received): the
    /// per-processor bandwidth of Proposition 4.2's critical path.
    pub fn max_rank_words(&self) -> u64 {
        self.per_rank
            .iter()
            .map(|r| r.words + r.words_recv)
            .max()
            .unwrap_or(0)
    }

    /// The Proposition 4.2-style upper bound on any one rank's word
    /// traffic for an `m x n` input: `2 (mn + n^2)` per tree level, plus
    /// one level's worth for the final retrieval into `p0`.
    pub fn word_bound(m: usize, n: usize, levels: usize) -> u64 {
        2 * (m * n + n * n) as u64 * (levels as u64 + 1)
    }
}

fn ceil_log2(x: usize) -> u32 {
    (usize::BITS - x.saturating_sub(1).leading_zeros()).min(usize::BITS - 1)
}

/// Charge the binomial-tree scatter of `counts` onto `per_rank` —
/// the exact mirror of `Comm::tree_scatterv`'s recursion.
fn scatter_traffic(counts: &[usize], per_rank: &mut [RankTraffic]) {
    fn rec(lo: usize, hi: usize, counts: &[usize], per_rank: &mut [RankTraffic]) {
        if hi - lo <= 1 {
            return;
        }
        let mid = lo + (1usize << (ceil_log2(hi - lo) - 1));
        let tail: u64 = counts[mid..hi].iter().map(|&c| c as u64).sum();
        per_rank[lo].msgs += 1;
        per_rank[lo].words += tail;
        per_rank[mid].msgs_recv += 1;
        per_rank[mid].words_recv += tail;
        rec(lo, mid, counts, per_rank);
        rec(mid, hi, counts, per_rank);
    }
    rec(0, counts.len(), counts, per_rank);
}

/// Replay the communication schedule of a prebuilt [`DistPlan`].
pub fn plan_traffic(plan: &DistPlan) -> TrafficPlan {
    let procs = plan.procs();
    let tree = plan.tree();
    let wire = plan.config().wire;
    let mut per_rank = vec![RankTraffic::default(); procs];

    // Distribution: the binomial scatter of the per-rank operand chunks
    // (every rank participates; empty chunks still ride the tree).
    if procs > 1 {
        scatter_traffic(plan.scatter_counts(), &mut per_rank);
    }

    // Retrieval: every node ships its C block to its parent's owner when
    // the owners differ, encoded per the wire format.
    for node in &tree.nodes {
        if let Some(pid) = node.parent {
            let parent_owner = tree.nodes[pid].owner;
            if parent_owner != node.owner {
                let words = wire.c_words(node.kind, node.c.rows(), node.c.cols()) as u64;
                per_rank[node.owner].msgs += 1;
                per_rank[node.owner].words += words;
                per_rank[parent_owner].msgs_recv += 1;
                per_rank[parent_owner].words_recv += words;
            }
        }
    }

    TrafficPlan {
        per_rank,
        levels: tree.depth,
        wire,
    }
}

/// Replay AtA-D's communication schedule for an `m x n` input on
/// `procs` ranks under `cfg` (load balance, wire format).
///
/// # Panics
/// Same contract as [`DistPlan::build`].
pub fn ata_d_traffic(m: usize, n: usize, procs: usize, cfg: &AtaDConfig) -> TrafficPlan {
    plan_traffic(&DistPlan::build(m, n, procs, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(wire: WireFormat) -> AtaDConfig {
        AtaDConfig {
            wire,
            ..AtaDConfig::default()
        }
    }

    #[test]
    fn single_rank_is_silent() {
        for wire in [WireFormat::Dense, WireFormat::SymPacked] {
            let plan = ata_d_traffic(64, 48, 1, &cfg(wire));
            assert_eq!(plan.total_words(), 0);
            assert_eq!(plan.total_msgs(), 0);
            assert_eq!(plan.root_recv_words(), 0);
        }
    }

    #[test]
    fn multi_rank_runs_communicate() {
        let plan = ata_d_traffic(64, 48, 8, &AtaDConfig::default());
        assert!(plan.per_rank[0].words > 0, "root distributes blocks");
        assert!(plan.root_recv_words() > 0, "results converge on the root");
        assert!(plan.total_msgs() > 0);
    }

    #[test]
    fn send_and_recv_sides_balance() {
        for p in [2usize, 4, 8, 13] {
            let plan = ata_d_traffic(64, 48, p, &AtaDConfig::default());
            let sent: u64 = plan.per_rank.iter().map(|r| r.words).sum();
            let recv: u64 = plan.per_rank.iter().map(|r| r.words_recv).sum();
            assert_eq!(sent, recv, "P={p}: every sent word is received once");
            let ms: u64 = plan.per_rank.iter().map(|r| r.msgs).sum();
            let mr: u64 = plan.per_rank.iter().map(|r| r.msgs_recv).sum();
            assert_eq!(ms, mr, "P={p}");
        }
    }

    #[test]
    fn packed_wire_strictly_cuts_root_recv_words() {
        for p in [2usize, 4, 8, 16, 32] {
            let dense = ata_d_traffic(96, 80, p, &cfg(WireFormat::Dense));
            let packed = ata_d_traffic(96, 80, p, &cfg(WireFormat::SymPacked));
            assert!(
                packed.root_recv_words() < dense.root_recv_words(),
                "P={p}: packed {} !< dense {}",
                packed.root_recv_words(),
                dense.root_recv_words()
            );
            // Distribution is format-independent.
            assert_eq!(packed.root_sent_words(), dense.root_sent_words());
        }
    }

    #[test]
    fn per_rank_words_respect_the_bound() {
        for p in [2usize, 4, 8, 16, 32, 64] {
            let (m, n) = (96usize, 80usize);
            for wire in [WireFormat::Dense, WireFormat::SymPacked] {
                let plan = ata_d_traffic(m, n, p, &cfg(wire));
                let bound = TrafficPlan::word_bound(m, n, plan.levels);
                assert!(
                    plan.max_rank_words() <= bound,
                    "P={p} {wire:?}: {} words > bound {bound}",
                    plan.max_rank_words()
                );
            }
        }
    }

    #[test]
    fn price_is_a_faithful_summary() {
        for p in [1usize, 2, 8, 16] {
            let plan = ata_d_traffic(96, 80, p, &AtaDConfig::default());
            let quote = plan.price();
            assert_eq!(quote.root_recv_words, plan.root_recv_words());
            assert_eq!(quote.root_sent_words, plan.root_sent_words());
            assert_eq!(quote.max_rank_words, plan.max_rank_words());
            assert_eq!(quote.total_words, plan.total_words());
            assert_eq!(quote.total_msgs, plan.total_msgs());
            // The quote is deterministic: pricing twice is bit-identical.
            assert_eq!(
                quote,
                ata_d_traffic(96, 80, p, &AtaDConfig::default()).price()
            );
        }
    }

    #[test]
    fn scatter_is_logarithmic_at_the_root() {
        // The old rooted-linear distribution sent one message per remote
        // leaf operand; the binomial tree sends ceil(log2 P) from rank 0.
        // Rank 0 owns the whole first-child chain up to the root, so it
        // sends nothing during retrieval: its message count is exactly
        // the scatter's ceil(log2 16) = 4.
        let plan = ata_d_traffic(128, 128, 16, &AtaDConfig::default());
        assert_eq!(plan.per_rank[0].msgs, 4);
    }

    #[test]
    fn levels_grow_logarithmically() {
        let l8 = ata_d_traffic(128, 128, 8, &AtaDConfig::default()).levels;
        let l64 = ata_d_traffic(128, 128, 64, &AtaDConfig::default()).levels;
        assert!(
            l64 <= l8 + 2,
            "levels must grow like Eq. 5, got {l8} -> {l64}"
        );
    }
}
