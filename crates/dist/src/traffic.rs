//! Exact traffic prediction for AtA-D — the analytical side of
//! Proposition 4.2.
//!
//! [`ata_d_traffic`] replays the communication schedule of
//! [`crate::ata_d`] on the task tree *without running anything*: the
//! distribution phase ships every remotely-owned leaf's operand blocks
//! from `p0`, the retrieval phase ships every node's `C` block to its
//! parent's owner when they differ. Because the simulator's counters are
//! exact, `tests/traffic.rs` asserts bit-exact agreement between this
//! prediction and [`ata_mpisim::RankMetrics`], then checks the
//! Proposition 4.2 scaling: per-level volume is `O(mn + n^2)` and the
//! level count grows like Eq. 5's `l(P)`, so total words are bounded by
//! `2 (mn + n^2) (l + 1)`.

use ata_core::tasktree::{ComputeKind, DistTree};

/// Predicted per-rank traffic (messages and payload words sent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RankTraffic {
    /// Messages this rank sends.
    pub msgs: u64,
    /// Payload words this rank sends.
    pub words: u64,
}

/// Predicted traffic of a whole AtA-D run.
#[derive(Debug, Clone)]
pub struct TrafficPlan {
    /// Per-rank prediction, indexed by rank.
    pub per_rank: Vec<RankTraffic>,
    /// Depth of the task tree the prediction was derived from.
    pub levels: usize,
}

impl TrafficPlan {
    /// Total words sent by all ranks.
    pub fn total_words(&self) -> u64 {
        self.per_rank.iter().map(|r| r.words).sum()
    }

    /// Total messages sent by all ranks.
    pub fn total_msgs(&self) -> u64 {
        self.per_rank.iter().map(|r| r.msgs).sum()
    }

    /// The Proposition 4.2-style upper bound on total words for an
    /// `m x n` input: `2 (mn + n^2)` per tree level, plus one level's
    /// worth for the final retrieval into `p0`.
    pub fn word_bound(m: usize, n: usize, levels: usize) -> u64 {
        2 * (m * n + n * n) as u64 * (levels as u64 + 1)
    }
}

/// Replay AtA-D's communication schedule for an `m x n` input on
/// `procs` ranks with load-balance `alpha`.
///
/// # Panics
/// If `procs == 0` or `alpha` is outside `(0, 1)` (same contract as
/// [`DistTree::build_with_alpha`]).
pub fn ata_d_traffic(m: usize, n: usize, procs: usize, alpha: f64) -> TrafficPlan {
    let tree = DistTree::build_with_alpha(m, n, procs, alpha);
    let mut per_rank = vec![RankTraffic::default(); procs];

    for node in &tree.nodes {
        // Distribution: p0 ships every remotely-owned leaf's operands.
        if node.is_leaf() && node.owner != 0 {
            per_rank[0].msgs += 1;
            per_rank[0].words += node.a.area() as u64;
            if node.kind == ComputeKind::AtB {
                per_rank[0].msgs += 1;
                per_rank[0].words += node.b.area() as u64;
            }
        }
        // Retrieval: every node ships its C block to its parent's owner
        // when the owners differ.
        if let Some(pid) = node.parent {
            let parent_owner = tree.nodes[pid].owner;
            if parent_owner != node.owner {
                per_rank[node.owner].msgs += 1;
                per_rank[node.owner].words += node.c.area() as u64;
            }
        }
    }

    TrafficPlan {
        per_rank,
        levels: tree.depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_silent() {
        let plan = ata_d_traffic(64, 48, 1, 0.5);
        assert_eq!(plan.total_words(), 0);
        assert_eq!(plan.total_msgs(), 0);
    }

    #[test]
    fn multi_rank_runs_communicate() {
        let plan = ata_d_traffic(64, 48, 8, 0.5);
        assert!(plan.per_rank[0].words > 0, "root distributes blocks");
        assert!(plan.total_msgs() > 0);
    }

    #[test]
    fn words_respect_the_bound() {
        for p in [2usize, 4, 8, 16, 32, 64] {
            let (m, n) = (96usize, 80usize);
            let plan = ata_d_traffic(m, n, p, 0.5);
            let bound = TrafficPlan::word_bound(m, n, plan.levels);
            assert!(
                plan.total_words() <= bound,
                "P={p}: {} words > bound {bound}",
                plan.total_words()
            );
        }
    }

    #[test]
    fn levels_grow_logarithmically() {
        let l8 = ata_d_traffic(128, 128, 8, 0.5).levels;
        let l64 = ata_d_traffic(128, 128, 64, 0.5).levels;
        assert!(
            l64 <= l8 + 2,
            "levels must grow like Eq. 5, got {l8} -> {l64}"
        );
    }
}
