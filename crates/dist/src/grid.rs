//! 2D process grids and the `pdsyrk_`-style 2D baseline.
//!
//! ScaLAPACK distributes over a near-square `pr x pc` process grid; the
//! [`Grid2d`] type reproduces that mapping (row-major rank order, like
//! BLACS' default), and [`pdsyrk_2d`] is the corresponding 2D stand-in
//! for `pdsyrk` — each grid cell owns one tile of the lower triangle of
//! `C = A^T A`. Compare with the 1D [`crate::baselines::pdsyrk_like`];
//! `ata-bench/bin/ablation` runs both (Ablation 2).

use ata_kernels::gemm_tn;
use ata_mat::{Matrix, Scalar};
use ata_mpisim::Comm;

use crate::wire;

const TAG_PANEL_I: u64 = 1;
const TAG_PANEL_J: u64 = 2;
const TAG_TILE: u64 = 3;

/// A `rows x cols` process grid over ranks `0 .. rows * cols` in
/// row-major order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid2d {
    /// Process-grid rows (`pr`).
    pub rows: usize,
    /// Process-grid columns (`pc`).
    pub cols: usize,
}

impl Grid2d {
    /// The most-square grid with `rows * cols == p` (ScaLAPACK's usual
    /// choice): the largest divisor pair closest to `sqrt(p)`.
    ///
    /// # Panics
    /// If `p == 0`.
    pub fn square(p: usize) -> Self {
        assert!(p > 0, "grid needs at least one process");
        let mut pr = (p as f64).sqrt().floor() as usize;
        while pr > 1 && !p.is_multiple_of(pr) {
            pr -= 1;
        }
        let pr = pr.max(1);
        Self {
            rows: pr,
            cols: p / pr,
        }
    }

    /// Number of grid cells.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// True when the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Grid coordinates of `rank`, or `None` if the rank is outside the
    /// grid (ranks beyond `rows * cols` idle, as in BLACS).
    pub fn coords(&self, rank: usize) -> Option<(usize, usize)> {
        (rank < self.len()).then(|| (rank / self.cols, rank % self.cols))
    }

    /// Rank owning grid cell `(i, j)`.
    ///
    /// # Panics
    /// If the cell is out of range.
    pub fn rank_of(&self, i: usize, j: usize) -> usize {
        assert!(
            i < self.rows && j < self.cols,
            "cell ({i},{j}) outside {self:?}"
        );
        i * self.cols + j
    }
}

/// `parts + 1` boundaries splitting `0..n` into near-equal parts.
pub(crate) fn even_partition(n: usize, parts: usize) -> Vec<usize> {
    assert!(parts > 0, "partition needs at least one part");
    let base = n / parts;
    let extra = n % parts;
    let mut bounds = Vec::with_capacity(parts + 1);
    bounds.push(0);
    for t in 0..parts {
        bounds.push(bounds[t] + base + usize::from(t < extra));
    }
    bounds
}

/// 2D-grid `pdsyrk` stand-in: lower triangle of `C = A^T A` with each
/// grid cell owning one `C` tile.
///
/// SPMD contract as in [`crate::ata_d`]: rank 0 passes `Some(&a)`
/// (`m x n`), others `None`; rank 0 returns the `n x n` lower-triangular
/// result. Tiles strictly above the diagonal are skipped; diagonal tiles
/// are masked to the lower triangle, so the strictly-upper part of the
/// result is zero.
///
/// # Panics
/// On contract violations (wrong rank passing input, shape mismatch).
pub fn pdsyrk_2d<T: Scalar>(
    input: Option<&Matrix<T>>,
    m: usize,
    n: usize,
    comm: &mut Comm<T>,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    if rank == 0 {
        let a = input.expect("rank 0 must provide the input matrix"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        assert_eq!(a.shape(), (m, n), "input must be {m} x {n}");
    } else {
        assert!(input.is_none(), "non-root rank {rank} must pass None");
    }

    let grid = Grid2d::square(comm.size());
    let rb = even_partition(n, grid.rows);
    let cb = even_partition(n, grid.cols);
    // A cell (i, j) is active when its tile intersects the lower
    // triangle and is non-empty.
    let active = |i: usize, j: usize| {
        let (r0, r1) = (rb[i], rb[i + 1]);
        let (c0, c1) = (cb[j], cb[j + 1]);
        r1 > r0 && c1 > c0 && r1 > c0
    };

    if rank == 0 {
        let a = input.expect("checked above"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                                               // Ship the two column panels each active cell needs.
        for i in 0..grid.rows {
            for j in 0..grid.cols {
                let target = grid.rank_of(i, j);
                if target == 0 || !active(i, j) {
                    continue;
                }
                comm.send(
                    target,
                    TAG_PANEL_I,
                    wire::pack_view(a.as_ref().block(0, m, rb[i], rb[i + 1])),
                );
                comm.send(
                    target,
                    TAG_PANEL_J,
                    wire::pack_view(a.as_ref().block(0, m, cb[j], cb[j + 1])),
                );
            }
        }
        // Own tile (cell (0, 0) — always on the diagonal).
        let mut c = Matrix::zeros(n, n);
        if active(0, 0) {
            let tile = compute_tile(
                a.as_ref().block(0, m, rb[0], rb[1]).to_matrix(),
                a.as_ref().block(0, m, cb[0], cb[1]).to_matrix(),
                (rb[0], cb[0]),
                comm,
            );
            paste_tile(&mut c, &tile, rb[0], cb[0]);
        }
        // Collect everyone else's tile.
        for i in 0..grid.rows {
            for j in 0..grid.cols {
                let source = grid.rank_of(i, j);
                if source == 0 || !active(i, j) {
                    continue;
                }
                let rows = rb[i + 1] - rb[i];
                let cols = cb[j + 1] - cb[j];
                let tile = wire::unpack(comm.recv(source, TAG_TILE), rows, cols);
                paste_tile(&mut c, &tile, rb[i], cb[j]);
            }
        }
        Some(c)
    } else {
        if let Some((i, j)) = grid.coords(rank) {
            if active(i, j) {
                let rows = rb[i + 1] - rb[i];
                let cols = cb[j + 1] - cb[j];
                let panel_i = wire::unpack(comm.recv(0, TAG_PANEL_I), m, rows);
                let panel_j = wire::unpack(comm.recv(0, TAG_PANEL_J), m, cols);
                let tile = compute_tile(panel_i, panel_j, (rb[i], cb[j]), comm);
                comm.send(0, TAG_TILE, tile.into_vec());
            }
        }
        None
    }
}

/// Compute one (masked) tile `A[:, Ri]^T A[:, Cj]`, keeping only entries
/// on or below the global diagonal.
fn compute_tile<T: Scalar>(
    panel_i: Matrix<T>,
    panel_j: Matrix<T>,
    origin: (usize, usize),
    comm: &mut Comm<T>,
) -> Matrix<T> {
    let (m, rows) = panel_i.shape();
    let cols = panel_j.cols();
    let mut tile = Matrix::zeros(rows, cols);
    gemm_tn(
        T::ONE,
        panel_i.as_ref(),
        panel_j.as_ref(),
        &mut tile.as_mut(),
    );
    comm.add_compute_flops(2.0 * (m * rows * cols) as f64);
    // Mask the strictly-upper part of diagonal-crossing tiles.
    let (r_origin, c_origin) = origin;
    for r in 0..rows {
        for c in 0..cols {
            if r_origin + r < c_origin + c {
                tile[(r, c)] = T::ZERO;
            }
        }
    }
    tile
}

/// Copy a tile into the result at `(r0, c0)`.
fn paste_tile<T: Scalar>(c: &mut Matrix<T>, tile: &Matrix<T>, r0: usize, c0: usize) {
    let mut dst = c
        .as_mut()
        .into_block(r0, r0 + tile.rows(), c0, c0 + tile.cols());
    dst.copy_from(tile.as_ref());
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};
    use ata_mpisim::{run, CostModel};

    #[test]
    fn square_grids_are_sane() {
        assert_eq!(Grid2d::square(1), Grid2d { rows: 1, cols: 1 });
        assert_eq!(Grid2d::square(4), Grid2d { rows: 2, cols: 2 });
        assert_eq!(Grid2d::square(6), Grid2d { rows: 2, cols: 3 });
        assert_eq!(Grid2d::square(12), Grid2d { rows: 3, cols: 4 });
        assert_eq!(Grid2d::square(7), Grid2d { rows: 1, cols: 7 });
        for p in 1..40 {
            let g = Grid2d::square(p);
            assert_eq!(g.len(), p, "grid must use all ranks for P={p}");
            assert!(g.rows <= g.cols);
        }
    }

    #[test]
    fn coords_roundtrip() {
        let g = Grid2d::square(12);
        for rank in 0..12 {
            let (i, j) = g.coords(rank).expect("in grid");
            assert_eq!(g.rank_of(i, j), rank);
        }
        assert_eq!(g.coords(12), None);
    }

    #[test]
    fn even_partition_covers_and_balances() {
        for (n, p) in [(10usize, 3usize), (7, 7), (5, 8), (64, 4), (0, 2)] {
            let b = even_partition(n, p);
            assert_eq!(b.len(), p + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[p], n);
            for w in b.windows(2) {
                assert!(w[1] >= w[0]);
                assert!(w[1] - w[0] <= n / p + 1);
            }
        }
    }

    #[test]
    fn pdsyrk_2d_matches_oracle() {
        for (m, n, p) in [
            (40usize, 32usize, 1usize),
            (40, 32, 4),
            (48, 48, 6),
            (30, 45, 9),
            (33, 17, 8),
        ] {
            let a = gen::standard::<f64>(m as u64 + n as u64 * 5 + p as u64, m, n);
            let mut c_ref = Matrix::zeros(n, n);
            reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
            let a_ref = &a;
            let report = run(p, CostModel::zero(), move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                pdsyrk_2d(input, m, n, comm)
            });
            let c = report.results[0].as_ref().expect("root");
            assert!(c.max_abs_diff_lower(&c_ref) < 1e-10, "m={m} n={n} P={p}");
            for i in 0..n {
                for j in (i + 1)..n {
                    assert_eq!(c[(i, j)], 0.0, "upper touched at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn more_ranks_than_tiles_is_fine() {
        let (m, n, p) = (12usize, 3usize, 16usize);
        let a = gen::standard::<f64>(9, m, n);
        let mut c_ref = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        let a_ref = &a;
        let report = run(p, CostModel::zero(), move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            pdsyrk_2d(input, m, n, comm)
        });
        let c = report.results[0].as_ref().expect("root");
        assert!(c.max_abs_diff_lower(&c_ref) < 1e-12);
    }
}
