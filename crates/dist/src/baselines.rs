//! The distributed baselines AtA-D is compared against in Figure 6:
//!
//! * [`pdsyrk_like`] — the ScaLAPACK `pdsyrk` stand-in, 1D variant:
//!   balanced row bands of the lower triangle (see
//!   [`triangle_row_partition`]), bands returning to the root through
//!   the binomial [`Comm::tree_gatherv`]; the 2D-grid variant lives in
//!   [`crate::grid::pdsyrk_2d`].
//! * [`cosma_like`] — a COSMA-flavored `C = A^T B`: the process grid is
//!   chosen to minimize per-rank communication volume for the given
//!   shape (the communication-optimal split of Kwasniewski et al.),
//!   then each rank owns one output tile.
//! * [`caps_like`] — CAPS (Communication-Avoiding Parallel Strassen,
//!   Ballard et al.): BFS steps divide the ranks into seven groups, one
//!   per Strassen product, recursing while at least seven ranks remain.
//!   Remainder groups of `1 < q < 7` ranks take a *hybrid BFS/DFS step*
//!   (the schedule mix of Ballard et al.): the seven products of one
//!   Strassen level are multiplexed round-robin over the `q` members,
//!   each computing its share locally, so no rank sits out a level.
//!   Only a lone rank falls back to the pure DFS base (local
//!   FastStrassen). Square inputs only — the same limitation the paper
//!   reports (§5.5).
//!
//! All baselines follow the same SPMD contract as [`crate::ata_d`]:
//! rank 0 provides the input(s) and receives the result.

use ata_kernels::syrk::triangle_row_partition;
use ata_kernels::{gemm_tn, syrk_ln, CacheConfig};
use ata_mat::{half_up, ops, MatRef, Matrix, Scalar};
use ata_mpisim::Comm;
use ata_strassen::{fast_strassen, strassen_mults};

use crate::wire;

const TAG_PANEL: u64 = 11;
const TAG_A: u64 = 13;
const TAG_B: u64 = 14;
const TAG_TILE: u64 = 15;

/// ScaLAPACK-`pdsyrk` stand-in (1D): lower triangle of `C = A^T A`.
///
/// The triangle's rows are cut into `P` contiguous bands of equal area;
/// rank `r` receives the column panel `A[:, 0..r1]` and computes its
/// band (a rectangle via `gemm_tn` plus a diagonal tile via `syrk_ln`).
/// Bands return to the root through the binomial
/// [`Comm::tree_gatherv`] — the retrieval-phase analogue of AtA-D's
/// tree-pipelined distribution, cutting the root's receive latency from
/// `P - 1` messages to `ceil(log2 P)`.
///
/// Rank 0 passes `Some(&a)` and returns `Some(C)` (`n x n`, strictly
/// upper zero); everyone else passes `None` and returns `None`.
///
/// # Panics
/// On SPMD-contract violations.
pub fn pdsyrk_like<T: Scalar>(
    input: Option<&Matrix<T>>,
    m: usize,
    n: usize,
    comm: &mut Comm<T>,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    let size = comm.size();
    if rank == 0 {
        let a = input.expect("rank 0 must provide the input matrix"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        assert_eq!(a.shape(), (m, n), "input must be {m} x {n}");
    } else {
        assert!(input.is_none(), "non-root rank {rank} must pass None");
    }

    let parts = size.min(n.max(1));
    let bounds = triangle_row_partition(n, parts);
    // Gather counts, known on every rank: band r is rows r0..r1 of the
    // first r1 columns. The root's own band stays local (count 0), and
    // ranks beyond `parts` contribute nothing but still ride the tree.
    let counts: Vec<usize> = (0..size)
        .map(|r| {
            if r == 0 || r >= parts {
                0
            } else {
                (bounds[r + 1] - bounds[r]) * bounds[r + 1]
            }
        })
        .collect();

    if rank == 0 {
        let a = input.expect("checked above"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                                               // Distribute: rank r needs columns 0..r1 of A.
        for r in 1..parts {
            let (r0, r1) = (bounds[r], bounds[r + 1]);
            if r0 == r1 {
                continue;
            }
            comm.send(r, TAG_PANEL, wire::pack_view(a.as_ref().block(0, m, 0, r1)));
        }
        let mut c = Matrix::zeros(n, n);
        // Own band.
        compute_band(a.as_ref(), bounds[0], bounds[1], &mut c, comm);
        // Retrieve the other bands (rows r0..r1, columns 0..r1) up the
        // binomial gather tree.
        let bands = comm
            .tree_gatherv(Vec::new(), &counts)
            .expect("root gathers"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        for (r, payload) in bands.into_iter().enumerate().skip(1) {
            if counts[r] == 0 {
                continue;
            }
            let (r0, r1) = (bounds[r], bounds[r + 1]);
            let band = wire::unpack(payload, r1 - r0, r1);
            let mut dst = c.as_mut().into_block(r0, r1, 0, r1);
            dst.copy_from(band.as_ref());
        }
        Some(c)
    } else {
        let mut payload = Vec::new();
        if counts[rank] > 0 {
            let (r0, r1) = (bounds[rank], bounds[rank + 1]);
            let panel = wire::unpack(comm.recv(0, TAG_PANEL), m, r1);
            let mut band = Matrix::zeros(r1 - r0, r1);
            {
                // Shift the band so local row 0 is global row r0.
                let mut c_view = band.as_mut();
                if r0 > 0 {
                    let a_i = panel.as_ref().block(0, m, r0, r1);
                    let a_j = panel.as_ref().block(0, m, 0, r0);
                    let mut rect = c_view.block_mut(0, r1 - r0, 0, r0);
                    gemm_tn(T::ONE, a_i, a_j, &mut rect);
                }
                let a_d = panel.as_ref().block(0, m, r0, r1);
                let mut diag = c_view.block_mut(0, r1 - r0, r0, r1);
                syrk_ln(T::ONE, a_d, &mut diag);
            }
            comm.add_compute_flops(band_flops(m, r0, r1));
            payload = band.into_vec();
        }
        let gathered = comm.tree_gatherv(payload, &counts);
        debug_assert!(gathered.is_none(), "only the root gathers");
        None
    }
}

/// Root-local band computation for [`pdsyrk_like`].
fn compute_band<T: Scalar>(
    a: MatRef<'_, T>,
    r0: usize,
    r1: usize,
    c: &mut Matrix<T>,
    comm: &mut Comm<T>,
) {
    if r0 == r1 {
        return;
    }
    let m = a.rows();
    if r0 > 0 {
        let a_i = a.block(0, m, r0, r1);
        let a_j = a.block(0, m, 0, r0);
        let mut rect = c.as_mut().into_block(r0, r1, 0, r0);
        gemm_tn(T::ONE, a_i, a_j, &mut rect);
    }
    let a_d = a.block(0, m, r0, r1);
    let mut diag = c.as_mut().into_block(r0, r1, r0, r1);
    syrk_ln(T::ONE, a_d, &mut diag);
    comm.add_compute_flops(band_flops(m, r0, r1));
}

fn band_flops(m: usize, r0: usize, r1: usize) -> f64 {
    let rows = r1 - r0;
    (2 * m * rows * r0 + m * rows * (rows + 1)) as f64
}

/// COSMA-flavored distributed `C = A^T B` (`A` is `m x n`, `B` is
/// `m x k`, `C` is the full `n x k` product).
///
/// The rank grid `(pr, pc)` tiling `C` is chosen to minimize the
/// per-rank communication volume `m*n/pr + m*k/pc` subject to
/// `pr * pc <= P` — the shape-aware split at the heart of COSMA's
/// optimality argument. Each rank receives its two operand panels,
/// computes its tile with `gemm_tn`, and ships it back.
///
/// Rank 0 passes `Some` for both inputs and returns `Some(C)`.
///
/// # Panics
/// On SPMD-contract violations.
pub fn cosma_like<T: Scalar>(
    input_a: Option<&Matrix<T>>,
    input_b: Option<&Matrix<T>>,
    m: usize,
    n: usize,
    k: usize,
    comm: &mut Comm<T>,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    if rank == 0 {
        let a = input_a.expect("rank 0 must provide A"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let b = input_b.expect("rank 0 must provide B"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        assert_eq!(a.shape(), (m, n), "A must be {m} x {n}");
        assert_eq!(b.shape(), (m, k), "B must be {m} x {k}");
    } else {
        assert!(
            input_a.is_none() && input_b.is_none(),
            "non-root rank {rank} must pass None"
        );
    }

    let (pr, pc) = cosma_grid(comm.size(), n, k);
    let rb = crate::grid::even_partition(n, pr);
    let cb = crate::grid::even_partition(k, pc);
    let rank_of = |i: usize, j: usize| i * pc + j;

    if rank == 0 {
        let a = input_a.expect("checked above"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let b = input_b.expect("checked above"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        for i in 0..pr {
            for j in 0..pc {
                let target = rank_of(i, j);
                if target == 0 || rb[i] == rb[i + 1] || cb[j] == cb[j + 1] {
                    continue;
                }
                comm.send(
                    target,
                    TAG_A,
                    wire::pack_view(a.as_ref().block(0, m, rb[i], rb[i + 1])),
                );
                comm.send(
                    target,
                    TAG_B,
                    wire::pack_view(b.as_ref().block(0, m, cb[j], cb[j + 1])),
                );
            }
        }
        let mut c = Matrix::zeros(n, k);
        // Own tile (0, 0).
        if rb[0] < rb[1] && cb[0] < cb[1] {
            let mut dst = c.as_mut().into_block(0, rb[1], 0, cb[1]);
            gemm_tn(
                T::ONE,
                a.as_ref().block(0, m, 0, rb[1]),
                b.as_ref().block(0, m, 0, cb[1]),
                &mut dst,
            );
            comm.add_compute_flops(2.0 * (m * rb[1] * cb[1]) as f64);
        }
        for i in 0..pr {
            for j in 0..pc {
                let source = rank_of(i, j);
                if source == 0 || rb[i] == rb[i + 1] || cb[j] == cb[j + 1] {
                    continue;
                }
                let tile = wire::unpack(
                    comm.recv(source, TAG_TILE),
                    rb[i + 1] - rb[i],
                    cb[j + 1] - cb[j],
                );
                let mut dst = c.as_mut().into_block(rb[i], rb[i + 1], cb[j], cb[j + 1]);
                dst.copy_from(tile.as_ref());
            }
        }
        Some(c)
    } else {
        if rank < pr * pc {
            let (i, j) = (rank / pc, rank % pc);
            if rb[i] < rb[i + 1] && cb[j] < cb[j + 1] {
                let rows = rb[i + 1] - rb[i];
                let cols = cb[j + 1] - cb[j];
                let panel_a = wire::unpack(comm.recv(0, TAG_A), m, rows);
                let panel_b = wire::unpack(comm.recv(0, TAG_B), m, cols);
                let mut tile = Matrix::zeros(rows, cols);
                gemm_tn(
                    T::ONE,
                    panel_a.as_ref(),
                    panel_b.as_ref(),
                    &mut tile.as_mut(),
                );
                comm.add_compute_flops(2.0 * (m * rows * cols) as f64);
                comm.send(0, TAG_TILE, tile.into_vec());
            }
        }
        None
    }
}

/// Grid minimizing per-rank operand volume `n/pr + k/pc`, `pr * pc <= p`.
fn cosma_grid(p: usize, n: usize, k: usize) -> (usize, usize) {
    assert!(p > 0, "cosma grid needs at least one rank");
    let mut best = (1usize, 1usize);
    let mut best_cost = f64::INFINITY;
    for pr in 1..=p {
        let pc = p / pr;
        let cost = n as f64 / pr as f64 + k as f64 / pc as f64;
        if cost < best_cost {
            best_cost = cost;
            best = (pr, pc);
        }
    }
    best
}

/// CAPS stand-in (Communication-Avoiding Parallel Strassen): full
/// `C = A^T B` for **square** `n x n` operands.
///
/// BFS steps: while a group holds at least seven ranks (and the problem
/// can still halve), the group leader forms the seven Strassen operand
/// pairs — specialized for the transposed left operand, so `A^T` is
/// never materialized — and hands one to each of seven subgroups; below
/// seven ranks the leader computes its product with a local
/// [`fast_strassen`]. Rank 0 passes both inputs and returns `Some(C)`.
///
/// # Panics
/// On SPMD-contract violations or a non-square input.
pub fn caps_like<T: Scalar>(
    input_a: Option<&Matrix<T>>,
    input_b: Option<&Matrix<T>>,
    n: usize,
    comm: &mut Comm<T>,
    cache: &CacheConfig,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    if rank == 0 {
        let a = input_a.expect("rank 0 must provide A"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let b = input_b.expect("rank 0 must provide B"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        assert_eq!(a.shape(), (n, n), "CAPS handles square matrices only");
        assert_eq!(b.shape(), (n, n), "CAPS handles square matrices only");
    } else {
        assert!(
            input_a.is_none() && input_b.is_none(),
            "non-root rank {rank} must pass None"
        );
    }
    let task = input_a.map(|a| (a.clone(), input_b.expect("checked above").clone())); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
    caps_group(comm, 0, comm.size(), n, task, cache, 0)
}

/// Tags for CAPS level `depth`, product `i`: operands and results.
fn caps_tags(depth: usize, i: usize) -> (u64, u64, u64) {
    let base = 100 + depth as u64 * 64;
    (
        base + 2 * i as u64,
        base + 2 * i as u64 + 1,
        base + 32 + i as u64,
    )
}

/// One BFS level of CAPS over ranks `[lo, hi)`; the leader (`lo`) holds
/// the task. Returns `Some(product)` at the leader.
fn caps_group<T: Scalar>(
    comm: &mut Comm<T>,
    lo: usize,
    hi: usize,
    n: usize,
    task: Option<(Matrix<T>, Matrix<T>)>,
    cache: &CacheConfig,
    depth: usize,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    let q = hi - lo;
    debug_assert!((lo..hi).contains(&rank));

    if q == 1 || n < 2 {
        // DFS base: a lone rank (or a scalar-sized problem) computes
        // locally.
        return task.map(|(a, b)| {
            let mut c = Matrix::zeros(n, n);
            fast_strassen(T::ONE, a.as_ref(), b.as_ref(), &mut c.as_mut(), cache);
            comm.add_compute_flops(2.0 * strassen_mults(n, n, n, cache) as f64);
            c
        });
    }
    if q < 7 {
        // Hybrid BFS/DFS step: too few ranks for a full BFS level, so
        // the seven products are multiplexed over the q members instead
        // of idling everyone but the leader.
        return caps_hybrid(comm, lo, hi, n, task, cache, depth);
    }

    // Subgroup boundaries: deterministic from (lo, hi) alone, so every
    // rank computes the same partition without communication.
    let bounds: Vec<usize> = crate::grid::even_partition(q, 7)
        .into_iter()
        .map(|b| lo + b)
        .collect();
    let my_group = (0..7)
        .find(|&i| (bounds[i]..bounds[i + 1]).contains(&rank))
        .expect("rank inside its group"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message

    let h = half_up(n);
    let is_leader = rank == lo;

    // Leader: build the seven operand pairs and ship pairs 1..7.
    let mut my_task: Option<(Matrix<T>, Matrix<T>)> = None;
    if is_leader {
        let (a, b) = task.expect("leader holds the task"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let pairs = strassen_operands(&a, &b, comm);
        let mut pairs = Vec::from(pairs);
        // Ship in reverse so we can pop; pair 0 stays local.
        for i in (1..7).rev() {
            let (l, r) = pairs.pop().expect("seven pairs built"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
            let (tag_l, tag_r, _) = caps_tags(depth, i);
            comm.send(bounds[i], tag_l, l.into_vec());
            comm.send(bounds[i], tag_r, r.into_vec());
        }
        my_task = pairs.pop();
        debug_assert!(pairs.is_empty());
    } else if rank == bounds[my_group] {
        // Sub-leader: receive this level's operand pair.
        let (tag_l, tag_r, _) = caps_tags(depth, my_group);
        let l = wire::unpack(comm.recv(lo, tag_l), h, h);
        let r = wire::unpack(comm.recv(lo, tag_r), h, h);
        my_task = Some((l, r));
    }

    // Recurse into my subgroup.
    let sub = caps_group(
        comm,
        bounds[my_group],
        bounds[my_group + 1],
        h,
        my_task,
        cache,
        depth + 1,
    );

    if is_leader {
        // Gather the seven products and recombine.
        let mut products: Vec<Matrix<T>> = Vec::with_capacity(7);
        products.push(sub.expect("leader computed product 0")); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        for (i, &sub_lo) in bounds.iter().enumerate().take(7).skip(1) {
            let (_, _, tag_m) = caps_tags(depth, i);
            products.push(wire::unpack(comm.recv(sub_lo, tag_m), h, h));
        }
        Some(strassen_combine(n, &products, comm))
    } else {
        if let Some(mi) = sub {
            let (_, _, tag_m) = caps_tags(depth, my_group);
            comm.send(lo, tag_m, mi.into_vec());
        }
        None
    }
}

/// One hybrid BFS/DFS step over ranks `[lo, hi)` with `1 < hi - lo < 7`
/// (Ballard et al.'s schedule mix): the leader forms the seven Strassen
/// operand pairs of one level (a BFS-style split) and deals them
/// round-robin over the group — product `i` goes to rank
/// `lo + (i mod q)` — and every member computes its share locally with
/// [`fast_strassen`] (a DFS step). Since `q <= 7`, every rank owns at
/// least one product: remainder ranks contribute work and traffic
/// instead of sitting out the level, which is what fixes the zero-word
/// `RankMetrics` phases the rooted DFS base used to report.
fn caps_hybrid<T: Scalar>(
    comm: &mut Comm<T>,
    lo: usize,
    hi: usize,
    n: usize,
    task: Option<(Matrix<T>, Matrix<T>)>,
    cache: &CacheConfig,
    depth: usize,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    let q = hi - lo;
    let h = half_up(n);
    let owner = |i: usize| lo + (i % q);

    // Deal the seven operand pairs (leader) / collect mine (members).
    let mut local: Vec<(usize, Matrix<T>, Matrix<T>)> = Vec::new();
    if rank == lo {
        let (a, b) = task.expect("leader holds the task"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let pairs = strassen_operands(&a, &b, comm);
        for (i, (l, r)) in pairs.into_iter().enumerate() {
            if owner(i) == lo {
                local.push((i, l, r));
            } else {
                let (tag_l, tag_r, _) = caps_tags(depth, i);
                comm.send(owner(i), tag_l, l.into_vec());
                comm.send(owner(i), tag_r, r.into_vec());
            }
        }
    } else {
        for i in 0..7 {
            if owner(i) == rank {
                let (tag_l, tag_r, _) = caps_tags(depth, i);
                let l = wire::unpack(comm.recv(lo, tag_l), h, h);
                let r = wire::unpack(comm.recv(lo, tag_r), h, h);
                local.push((i, l, r));
            }
        }
    }

    // DFS: compute my share of the level locally.
    let mut computed: Vec<(usize, Matrix<T>)> = Vec::with_capacity(local.len());
    for (i, l, r) in local {
        let mut c = Matrix::zeros(h, h);
        fast_strassen(T::ONE, l.as_ref(), r.as_ref(), &mut c.as_mut(), cache);
        comm.add_compute_flops(2.0 * strassen_mults(h, h, h, cache) as f64);
        computed.push((i, c));
    }

    if rank == lo {
        let mut products: Vec<Option<Matrix<T>>> = (0..7).map(|_| None).collect();
        for (i, c) in computed {
            products[i] = Some(c);
        }
        for (i, slot) in products.iter_mut().enumerate() {
            if owner(i) != lo {
                let (_, _, tag_m) = caps_tags(depth, i);
                *slot = Some(wire::unpack(comm.recv(owner(i), tag_m), h, h));
            }
        }
        let products: Vec<Matrix<T>> = products
            .into_iter()
            .map(|p| p.expect("all seven products accounted for")) // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
            .collect();
        Some(strassen_combine(n, &products, comm))
    } else {
        for (i, c) in computed {
            let (_, _, tag_m) = caps_tags(depth, i);
            comm.send(lo, tag_m, c.into_vec());
        }
        None
    }
}

/// Copy `src` into the top-left corner of an `h x h` zero matrix.
fn padded<T: Scalar>(src: MatRef<'_, T>, h: usize) -> Matrix<T> {
    let mut out = Matrix::zeros(h, h);
    let mut dst = out.as_mut().into_block(0, src.rows(), 0, src.cols());
    dst.copy_from(src);
    out
}

/// `dst += sign * src` over the whole matrix.
fn accumulate<T: Scalar>(dst: &mut Matrix<T>, src: &Matrix<T>, sign: T) {
    ops::axpy_assign(&mut dst.as_mut(), sign, src.as_ref());
}

/// The seven operand pairs of Strassen's recursion for `C = A^T B`,
/// specialized for the transposed left operand: with `X = A^T` the block
/// sums `X11 + X22 = (A11 + A22)^T` etc. are formed on untransposed
/// blocks of `A`, so each pair is again a transposed-left product.
fn strassen_operands<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    comm: &mut Comm<T>,
) -> [(Matrix<T>, Matrix<T>); 7] {
    let n = a.rows();
    let h = half_up(n);
    let (a11, a12, a21, a22) = a.as_ref().quad_split();
    let (b11, b12, b21, b22) = b.as_ref().quad_split();
    let p = |v: MatRef<'_, T>| padded(v, h);
    let add = |x: MatRef<'_, T>, y: MatRef<'_, T>| {
        let mut out = padded(x, h);
        let tmp = padded(y, h);
        accumulate(&mut out, &tmp, T::ONE);
        out
    };
    let sub = |x: MatRef<'_, T>, y: MatRef<'_, T>| {
        let mut out = padded(x, h);
        let tmp = padded(y, h);
        accumulate(&mut out, &tmp, T::NEG_ONE);
        out
    };
    // 10 block add/subtracts of h^2 elements each (the classic scheme's
    // operand side; the recombination adds the other 8).
    comm.add_compute_flops(10.0 * (h * h) as f64);
    [
        (add(a11, a22), add(b11, b22)), // M1 = (X11+X22)(B11+B22)
        (add(a12, a22), p(b11)),        // M2 = (X21+X22) B11
        (p(a11), sub(b12, b22)),        // M3 = X11 (B12-B22)
        (p(a22), sub(b21, b11)),        // M4 = X22 (B21-B11)
        (add(a11, a21), p(b22)),        // M5 = (X11+X12) B22
        (sub(a12, a11), add(b11, b12)), // M6 = (X21-X11)(B11+B12)
        (sub(a21, a22), add(b21, b22)), // M7 = (X12-X22)(B21+B22)
    ]
}

/// Recombine the seven `h x h` products into the `n x n` result
/// (quadrants truncate the virtual padding).
fn strassen_combine<T: Scalar>(n: usize, m: &[Matrix<T>], comm: &mut Comm<T>) -> Matrix<T> {
    let h = half_up(n);
    let n2 = n - h;
    let mut c11 = m[0].clone(); // M1
    accumulate(&mut c11, &m[3], T::ONE); // + M4
    accumulate(&mut c11, &m[4], T::NEG_ONE); // - M5
    accumulate(&mut c11, &m[6], T::ONE); // + M7
    let mut c12 = m[2].clone(); // M3
    accumulate(&mut c12, &m[4], T::ONE); // + M5
    let mut c21 = m[1].clone(); // M2
    accumulate(&mut c21, &m[3], T::ONE); // + M4
    let mut c22 = m[0].clone(); // M1
    accumulate(&mut c22, &m[1], T::NEG_ONE); // - M2
    accumulate(&mut c22, &m[2], T::ONE); // + M3
    accumulate(&mut c22, &m[5], T::ONE); // + M6
    comm.add_compute_flops(8.0 * (h * h) as f64);

    let mut c = Matrix::zeros(n, n);
    c.as_mut().into_block(0, h, 0, h).copy_from(c11.as_ref());
    if n2 > 0 {
        c.as_mut()
            .into_block(0, h, h, n)
            .copy_from(c12.as_ref().block(0, h, 0, n2));
        c.as_mut()
            .into_block(h, n, 0, h)
            .copy_from(c21.as_ref().block(0, n2, 0, h));
        c.as_mut()
            .into_block(h, n, h, n)
            .copy_from(c22.as_ref().block(0, n2, 0, n2));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};
    use ata_mpisim::{run, CostModel};

    fn oracle_lower(a: &Matrix<f64>) -> Matrix<f64> {
        let n = a.cols();
        let mut c = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        c
    }

    #[test]
    fn pdsyrk_matches_oracle_across_rank_counts() {
        let (m, n) = (40usize, 36usize);
        let a = gen::standard::<f64>(5, m, n);
        let c_ref = oracle_lower(&a);
        for p in [1usize, 2, 3, 5, 8, 16, 40] {
            let a_ref = &a;
            let report = run(p, CostModel::zero(), move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                pdsyrk_like(input, m, n, comm)
            });
            let c = report.results[0].as_ref().expect("root");
            assert!(c.max_abs_diff_lower(&c_ref) < 1e-10, "P={p}");
        }
    }

    #[test]
    fn pdsyrk_distributes_panels() {
        let (m, n, p) = (32usize, 32usize, 8usize);
        let a = gen::standard::<f64>(6, m, n);
        let a_ref = &a;
        let report = run(p, CostModel::zero(), move |comm| {
            let input = (comm.rank() == 0).then_some(a_ref);
            pdsyrk_like(input, m, n, comm);
        });
        assert!(report.metrics[0].words_sent > 0);
        assert!(report.metrics[1..].iter().any(|r| r.words_sent > 0));
    }

    #[test]
    fn cosma_matches_oracle_on_rectangles() {
        for (m, n, k, p) in [
            (24usize, 20usize, 28usize, 1usize),
            (24, 20, 28, 6),
            (17, 33, 9, 8),
            (40, 8, 40, 12),
        ] {
            let a = gen::standard::<f64>(7, m, n);
            let b = gen::standard::<f64>(8, m, k);
            let mut c_ref = Matrix::zeros(n, k);
            reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
            let (ar, br) = (&a, &b);
            let report = run(p, CostModel::zero(), move |comm| {
                let (ia, ib) = if comm.rank() == 0 {
                    (Some(ar), Some(br))
                } else {
                    (None, None)
                };
                cosma_like(ia, ib, m, n, k, comm)
            });
            let c = report.results[0].as_ref().expect("root");
            assert!(c.max_abs_diff(&c_ref) < 1e-10, "m={m} n={n} k={k} P={p}");
        }
    }

    #[test]
    fn cosma_grid_tracks_aspect_ratio() {
        // Tall C: more grid rows than columns; wide C: the reverse.
        let (pr_tall, pc_tall) = cosma_grid(16, 1024, 16);
        assert!(pr_tall > pc_tall);
        let (pr_wide, pc_wide) = cosma_grid(16, 16, 1024);
        assert!(pc_wide > pr_wide);
        let (pr_sq, pc_sq) = cosma_grid(16, 512, 512);
        assert_eq!((pr_sq, pc_sq), (4, 4));
    }

    #[test]
    fn caps_matches_oracle_on_squares() {
        let cache = CacheConfig::with_words(64);
        for (n, p) in [
            (32usize, 1usize),
            (32, 7),
            (31, 7),
            (24, 10),
            (33, 14),
            (16, 49),
        ] {
            let a = gen::standard::<f64>(9, n, n);
            let b = gen::standard::<f64>(10, n, n);
            let mut c_ref = Matrix::zeros(n, n);
            reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
            let (ar, br) = (&a, &b);
            let report = run(p, CostModel::zero(), move |comm| {
                let (ia, ib) = if comm.rank() == 0 {
                    (Some(ar), Some(br))
                } else {
                    (None, None)
                };
                caps_like(ia, ib, n, comm, &cache)
            });
            let c = report.results[0].as_ref().expect("root");
            assert!(c.max_abs_diff(&c_ref) < 1e-9, "n={n} P={p}");
        }
    }

    #[test]
    fn caps_hybrid_keeps_remainder_ranks_busy() {
        // Rank counts with remainder groups below the 7-way split: the
        // hybrid BFS/DFS step must give every rank real work, so no rank
        // reports a zero-word phase in `RankMetrics`.
        let cache = CacheConfig::with_words(32);
        for (n, p) in [(32usize, 5usize), (32, 8), (32, 10), (24, 12)] {
            let a = gen::standard::<f64>(21, n, n);
            let b = gen::standard::<f64>(22, n, n);
            let mut c_ref = Matrix::zeros(n, n);
            reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
            let (ar, br) = (&a, &b);
            let report = run(p, CostModel::zero(), move |comm| {
                let (ia, ib) = if comm.rank() == 0 {
                    (Some(ar), Some(br))
                } else {
                    (None, None)
                };
                caps_like(ia, ib, n, comm, &cache)
            });
            let c = report.results[0].as_ref().expect("root");
            assert!(c.max_abs_diff(&c_ref) < 1e-9, "n={n} P={p}");
            for (r, m) in report.metrics.iter().enumerate() {
                assert!(
                    m.words_sent > 0,
                    "n={n} P={p}: rank {r} sat out the run (zero words sent)"
                );
                assert!(m.compute_time >= 0.0);
            }
        }
    }

    #[test]
    fn caps_computes_ata_via_b_equals_a() {
        let n = 28usize;
        let cache = CacheConfig::with_words(32);
        let a = gen::standard::<f64>(11, n, n);
        let mut full = oracle_lower(&a);
        full.mirror_lower_to_upper();
        let ar = &a;
        let report = run(7, CostModel::zero(), move |comm| {
            let (ia, ib) = if comm.rank() == 0 {
                (Some(ar), Some(ar))
            } else {
                (None, None)
            };
            caps_like(ia, ib, n, comm, &cache)
        });
        let c = report.results[0].as_ref().expect("root");
        assert!(c.max_abs_diff(&full) < 1e-9);
    }
}
