//! Wire format helpers: matrix blocks travel between ranks as row-major
//! flattened `Vec<T>` payloads (the simulator's word-count accounting
//! then equals the element count, which is what Proposition 4.2 talks
//! about).

use ata_core::tasktree::Region;
use ata_mat::{MatRef, Matrix, Scalar};

/// Flatten a view row-major.
pub(crate) fn pack_view<T: Scalar>(v: MatRef<'_, T>) -> Vec<T> {
    let mut out = Vec::with_capacity(v.rows() * v.cols());
    for i in 0..v.rows() {
        out.extend_from_slice(v.row(i));
    }
    out
}

/// Flatten the `region` block of `a` row-major.
pub(crate) fn pack_region<T: Scalar>(a: MatRef<'_, T>, region: &Region) -> Vec<T> {
    pack_view(a.block(region.r0, region.r1, region.c0, region.c1))
}

/// Rebuild a `rows x cols` matrix from a flattened payload.
///
/// # Panics
/// If the payload length does not match the shape.
pub(crate) fn unpack<T: Scalar>(data: Vec<T>, rows: usize, cols: usize) -> Matrix<T> {
    assert_eq!(data.len(), rows * cols, "payload shape mismatch");
    Matrix::from_vec(data, rows, cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::gen;

    #[test]
    fn pack_unpack_roundtrip() {
        let a = gen::standard::<f64>(3, 7, 5);
        let packed = pack_view(a.as_ref());
        let back = unpack(packed, 7, 5);
        assert_eq!(back.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn pack_region_extracts_block() {
        let a = gen::standard::<f64>(4, 8, 6);
        let r = Region::new(2, 5, 1, 4);
        let packed = pack_region(a.as_ref(), &r);
        assert_eq!(packed.len(), 9);
        let back = unpack(packed, 3, 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(back[(i, j)], a[(i + 2, j + 1)]);
            }
        }
    }
}
