//! The wire layer: how matrix blocks travel between ranks.
//!
//! Payloads are flattened `Vec<T>` buffers, so the simulator's
//! word-count accounting equals the element count — the quantity
//! Proposition 4.2 talks about. Two encodings exist, selected by
//! [`WireFormat`]:
//!
//! * [`WireFormat::Dense`] — row-major flattening of the full block
//!   (`rows * cols` words). Always used for operand blocks of `A` and
//!   for the rectangular `A^T B` result blocks, which have no exploitable
//!   structure.
//! * [`WireFormat::SymPacked`] — §4.3.1's packed encoding for the
//!   *symmetric* `A^T A` result blocks: only the lower triangle ships
//!   (`n(n+1)/2` words for an order-`n` block), carried by the
//!   [`SymPacked`] payload type. These payloads are what Proposition
//!   4.2 upper-bounds with its `n(n+2)/2` term, and they strictly
//!   reduce the words converging on the root during retrieval versus
//!   the `n^2` dense encoding.
//!
//! The encoding is lossless either way: `A^T A` blocks are computed with
//! a zero strict-upper triangle, so dropping it on the wire and
//! re-materializing zeros on receive reproduces the dense block
//! bit-for-bit ([`pack_c`] / [`unpack_c`] round-trip exactly, which the
//! `wire_props` proptests pin down).

use ata_core::tasktree::ComputeKind;
use ata_mat::{MatRef, Matrix, Scalar};

pub use ata_mat::packed::{packed_len, SymPacked};

/// Encoding of result (`C`) blocks on the wire (§4.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Row-major dense blocks, `rows * cols` words each.
    Dense,
    /// Packed lower triangles for symmetric (`A^T A`) blocks — the
    /// paper's default for "larger volumes of data" (§4.3.1); general
    /// (`A^T B`) blocks still ship dense.
    #[default]
    SymPacked,
}

impl WireFormat {
    /// Words on the wire for a `rows x cols` result block of the given
    /// task kind.
    ///
    /// # Panics
    /// If an [`ComputeKind::AtA`] block is not square.
    pub fn c_words(self, kind: ComputeKind, rows: usize, cols: usize) -> usize {
        match (self, kind) {
            (WireFormat::SymPacked, ComputeKind::AtA) => {
                assert_eq!(rows, cols, "A^T A blocks are square");
                packed_len(rows)
            }
            _ => rows * cols,
        }
    }
}

/// Flatten a view row-major.
pub fn pack_view<T: Scalar>(v: MatRef<'_, T>) -> Vec<T> {
    let mut out = Vec::with_capacity(v.rows() * v.cols());
    append_view(&mut out, v);
    out
}

/// Append a row-major flattening of `v` to an existing payload buffer
/// (the scatter-chunk assembly path).
pub fn append_view<T: Scalar>(dst: &mut Vec<T>, v: MatRef<'_, T>) {
    for i in 0..v.rows() {
        dst.extend_from_slice(v.row(i));
    }
}

/// Rebuild a `rows x cols` matrix from a flattened payload.
///
/// # Panics
/// If the payload length does not match the shape.
pub fn unpack<T: Scalar>(data: Vec<T>, rows: usize, cols: usize) -> Matrix<T> {
    assert_eq!(data.len(), rows * cols, "payload shape mismatch");
    Matrix::from_vec(data, rows, cols)
}

/// Read the next `rows x cols` block out of a concatenated payload,
/// advancing `off` — the receive side of scatter-chunk disassembly.
///
/// # Panics
/// If fewer than `rows * cols` elements remain.
pub fn read_block<T: Scalar>(data: &[T], off: &mut usize, rows: usize, cols: usize) -> Matrix<T> {
    let len = rows * cols;
    assert!(
        *off + len <= data.len(),
        "payload underrun: need {len} at offset {off}, have {}",
        data.len()
    );
    let m = Matrix::from_vec(data[*off..*off + len].to_vec(), rows, cols);
    *off += len;
    m
}

/// Pack the lower triangle of a square view into a [`SymPacked`]
/// payload (§4.3.1's encoding for symmetric result blocks).
///
/// # Panics
/// If the view is not square.
pub fn pack_lower<T: Scalar>(v: MatRef<'_, T>) -> SymPacked<T> {
    assert_eq!(v.rows(), v.cols(), "pack_lower requires a square block");
    let n = v.rows();
    let mut data = Vec::with_capacity(packed_len(n));
    for i in 0..n {
        data.extend_from_slice(&v.row(i)[..=i]);
    }
    SymPacked::from_vec(data, n)
}

/// Expand a [`SymPacked`] payload back to a dense block with the
/// **strict upper triangle zeroed** — exactly the shape `A^T A` result
/// blocks have before packing, so the round-trip is bit-identical (the
/// gather-side sums never see a difference between wire formats).
pub fn unpack_lower<T: Scalar>(p: SymPacked<T>) -> Matrix<T> {
    let n = p.order();
    let mut out = Matrix::zeros(n, n);
    let data = p.as_slice();
    for i in 0..n {
        let row = &data[i * (i + 1) / 2..i * (i + 1) / 2 + i + 1];
        out.row_mut(i)[..=i].copy_from_slice(row);
    }
    out
}

/// Encode a result block for the wire: symmetric (`AtA`) blocks pack
/// their lower triangle under [`WireFormat::SymPacked`], everything
/// else ships dense.
pub fn pack_c<T: Scalar>(block: &Matrix<T>, kind: ComputeKind, format: WireFormat) -> Vec<T> {
    match (format, kind) {
        (WireFormat::SymPacked, ComputeKind::AtA) => pack_lower(block.as_ref()).into_vec(),
        _ => pack_view(block.as_ref()),
    }
}

/// Decode a result block from the wire (inverse of [`pack_c`]).
///
/// # Panics
/// If the payload length does not match the declared shape and format.
pub fn unpack_c<T: Scalar>(
    data: Vec<T>,
    kind: ComputeKind,
    rows: usize,
    cols: usize,
    format: WireFormat,
) -> Matrix<T> {
    match (format, kind) {
        (WireFormat::SymPacked, ComputeKind::AtA) => {
            assert_eq!(rows, cols, "A^T A blocks are square");
            unpack_lower(SymPacked::from_vec(data, rows))
        }
        _ => unpack(data, rows, cols),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::gen;

    #[test]
    fn pack_unpack_roundtrip() {
        let a = gen::standard::<f64>(3, 7, 5);
        let packed = pack_view(a.as_ref());
        let back = unpack(packed, 7, 5);
        assert_eq!(back.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn pack_block_view_extracts_region() {
        let a = gen::standard::<f64>(4, 8, 6);
        let packed = pack_view(a.as_ref().block(2, 5, 1, 4));
        assert_eq!(packed.len(), 9);
        let back = unpack(packed, 3, 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(back[(i, j)], a[(i + 2, j + 1)]);
            }
        }
    }

    #[test]
    fn append_and_read_block_concatenate() {
        let a = gen::standard::<f64>(5, 6, 6);
        let mut buf = Vec::new();
        append_view(&mut buf, a.as_ref().block(0, 2, 0, 3));
        append_view(&mut buf, a.as_ref().block(2, 6, 3, 6));
        let mut off = 0usize;
        let first = read_block(&buf, &mut off, 2, 3);
        let second = read_block(&buf, &mut off, 4, 3);
        assert_eq!(off, buf.len());
        assert_eq!(first[(1, 2)], a[(1, 2)]);
        assert_eq!(second[(0, 0)], a[(2, 3)]);
    }

    #[test]
    fn lower_roundtrip_is_bit_identical() {
        // An AtA-style block: lower populated, strict upper zero.
        let n = 9usize;
        let mut blk = Matrix::<f64>::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                blk[(i, j)] = (i * n + j) as f64 * 0.25 - 3.0;
            }
        }
        let p = pack_lower(blk.as_ref());
        assert_eq!(p.len(), packed_len(n));
        let back = unpack_lower(p);
        assert_eq!(back.max_abs_diff(&blk), 0.0);
    }

    #[test]
    fn c_words_counts_both_formats() {
        use ComputeKind::{AtA, AtB};
        assert_eq!(WireFormat::Dense.c_words(AtA, 8, 8), 64);
        assert_eq!(WireFormat::SymPacked.c_words(AtA, 8, 8), 36);
        assert_eq!(WireFormat::SymPacked.c_words(AtB, 4, 6), 24);
        // Packed is strictly smaller from order 2 on.
        for n in 2..20 {
            assert!(
                WireFormat::SymPacked.c_words(AtA, n, n) < WireFormat::Dense.c_words(AtA, n, n)
            );
        }
    }

    #[test]
    fn pack_c_dispatches_on_kind_and_format() {
        let a = gen::standard::<f64>(6, 5, 5);
        let dense = pack_c(&a, ComputeKind::AtA, WireFormat::Dense);
        assert_eq!(dense.len(), 25);
        let packed = pack_c(&a, ComputeKind::AtA, WireFormat::SymPacked);
        assert_eq!(packed.len(), 15);
        let rect = pack_c(&a, ComputeKind::AtB, WireFormat::SymPacked);
        assert_eq!(rect.len(), 25, "general products always ship dense");
        let back = unpack_c(packed, ComputeKind::AtA, 5, 5, WireFormat::SymPacked);
        for i in 0..5 {
            for j in 0..=i {
                assert_eq!(back[(i, j)], a[(i, j)]);
            }
        }
    }
}
