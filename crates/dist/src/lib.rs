//! AtA-D (Algorithm 4) and the distributed baselines, on the
//! `ata-mpisim` simulated cluster.
//!
//! This crate holds the distributed-memory side of Arrigoni et al.
//! (ICPP 2021):
//!
//! * [`ata_d`] / [`AtaDConfig`] — Algorithm 4: the §4.1 task tree maps
//!   the AtA recursion onto `P` ranks; `p0` distributes operand blocks,
//!   leaves compute locally (AtA/FastStrassen or plain kernels,
//!   optionally multi-threaded per rank), and results climb the tree
//!   with parents summing overlapping contributions (§4.3);
//! * [`grid`] — `pdsyrk_`-style 2D process grids and the 2D ScaLAPACK
//!   stand-in;
//! * [`baselines`] — the Figure 6 comparators: [`baselines::pdsyrk_like`]
//!   (1D ScaLAPACK), [`baselines::cosma_like`] (shape-aware
//!   communication-optimal grid) and [`baselines::caps_like`]
//!   (Communication-Avoiding Parallel Strassen, square only);
//! * [`carma_like`] / [`CarmaConfig`] — CARMA, the recursive-halving
//!   comparator the paper could not run (§5.5), re-implemented
//!   structurally;
//! * [`traffic`] — exact per-rank message/word prediction for AtA-D,
//!   audited against the simulator's counters and the Proposition 4.2
//!   bounds in `tests/traffic.rs`;
//! * [`wire`] — the wire layer: [`wire::WireFormat`] selects between
//!   dense blocks and §4.3.1's packed lower-triangle encoding
//!   ([`wire::SymPacked`]) for symmetric result blocks;
//! * [`DistPlan`] — the plan/execute split: tree + distribution layout
//!   built once, executed many times (what the facade's `AtaPlan`
//!   holds for its simulated-dist backend).
//!
//! # Example
//!
//! ```
//! use ata_dist::{ata_d, AtaDConfig};
//! use ata_mat::{gen, reference, Matrix};
//! use ata_mpisim::{run, CostModel};
//!
//! let (m, n, ranks) = (32usize, 24usize, 4usize);
//! let a = gen::standard::<f64>(1, m, n);
//! let a_ref = &a;
//! let report = run(ranks, CostModel::zero(), move |comm| {
//!     let input = (comm.rank() == 0).then_some(a_ref);
//!     ata_d(input, m, n, comm, &AtaDConfig::default())
//! });
//! let c = report.results[0].as_ref().expect("root holds C");
//! let mut oracle = Matrix::zeros(n, n);
//! reference::syrk_ln(1.0, a.as_ref(), &mut oracle.as_mut());
//! assert!(c.max_abs_diff_lower(&oracle) < 1e-10);
//! ```

#![forbid(unsafe_code)]

mod algorithm;
pub mod baselines;
mod carma;
mod error;
pub mod grid;
pub mod traffic;
pub mod wire;

pub use algorithm::{ata_d, AtaDConfig, DistPlan};
pub use carma::{carma_like, CarmaConfig};
pub use error::{DistError, DistPhase};
pub use traffic::{plan_traffic, RoutePrice, TrafficPlan};
pub use wire::WireFormat;
