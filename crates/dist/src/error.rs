//! Typed failure propagation for the distributed algorithms.
//!
//! Under an injected [`ata_mpisim::FaultPlan`], a communication op
//! inside [`crate::DistPlan::execute`] can fail with a typed
//! [`CommError`]. Rather than panicking the whole universe, the failing
//! rank wraps the error in a [`DistError`] identifying *where* in
//! Algorithm 4 it happened, calls [`ata_mpisim::Comm::abandon`] so its
//! peers fail fast instead of deadlocking, and returns. The serving
//! tier's retry/degradation logic keys off this type.

use ata_mpisim::CommError;
use std::fmt;

/// The phase of Algorithm 4 in which a [`DistError`] occurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistPhase {
    /// Phase 1: binomial-tree scatter of the operand chunks.
    Scatter,
    /// Phases 2–3: leaf compute and upward gather-with-sums.
    Gather,
}

impl fmt::Display for DistPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistPhase::Scatter => write!(f, "scatter"),
            DistPhase::Gather => write!(f, "gather"),
        }
    }
}

/// A distributed execution failure: which rank failed, in which phase,
/// and the underlying communication error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistError {
    /// Algorithm 4 phase that was executing when the fault surfaced.
    pub phase: DistPhase,
    /// The rank that observed the failure (not necessarily the faulty
    /// rank — a timeout is observed by the receiver).
    pub rank: usize,
    /// The underlying transport-level error.
    pub error: CommError,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AtA-D {} phase failed at rank {}: {}",
            self.phase, self.rank, self.error
        )
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_phase_rank_and_cause() {
        let e = DistError {
            phase: DistPhase::Gather,
            rank: 3,
            error: CommError::Timeout { from: 1, tag: 9 },
        };
        let s = e.to_string();
        assert!(s.contains("gather"), "{s}");
        assert!(s.contains("rank 3"), "{s}");
        assert!(s.contains("src=1"), "{s}");
    }

    #[test]
    fn source_chains_to_the_comm_error() {
        let e = DistError {
            phase: DistPhase::Scatter,
            rank: 0,
            error: CommError::PeerCrashed { from: 2 },
        };
        let src = std::error::Error::source(&e).expect("has a source");
        assert!(src.to_string().contains("rank 2"));
    }
}
