//! CARMA (Demmel et al., "Communication-Optimal Parallel Recursive
//! Rectangular Matrix Multiplication"): the comparator the paper could
//! not run — its Cilk Plus implementation no longer builds (§5.5) — as a
//! structural re-implementation on the simulator.
//!
//! BFS steps: while a group holds more than one rank, the largest of the
//! three dimensions `(m, n, k)` of `C = A^T B` is halved and the two
//! halves recurse on the two halves of the rank group; an `m`-split
//! produces two partial products that the group leader sums (the one
//! case requiring a reduction, exactly as in CARMA). With one rank left,
//! the leader computes locally — splitting depth-first until the
//! operands fit [`CarmaConfig::mem_words_per_rank`] (CARMA's
//! memory-constrained DFS steps), then calling [`fast_strassen`].

use ata_kernels::CacheConfig;
use ata_mat::{half_up, ops, MatMut, MatRef, Matrix, Scalar};
use ata_mpisim::Comm;
use ata_strassen::{fast_strassen, strassen_mults};

use crate::wire;

/// Tuning knobs of [`carma_like`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarmaConfig {
    /// Per-rank memory budget (elements). Operands above it are split
    /// depth-first before computing; the default is effectively
    /// unbounded, giving the pure-BFS schedule.
    pub mem_words_per_rank: usize,
    /// Cache model for the local FastStrassen leaves.
    pub cache: CacheConfig,
}

impl Default for CarmaConfig {
    fn default() -> Self {
        Self {
            mem_words_per_rank: usize::MAX / 4,
            cache: CacheConfig::default(),
        }
    }
}

const TAG_A: u64 = 21;
const TAG_B: u64 = 22;
const TAG_C: u64 = 23;

/// CARMA-style distributed `C = A^T B` (`A` is `m x n`, `B` is `m x k`,
/// `C` the full `n x k` product).
///
/// SPMD contract as in [`crate::ata_d`]: rank 0 passes both inputs and
/// returns `Some(C)`; everyone else passes `None` and returns `None`.
///
/// # Panics
/// On SPMD-contract violations.
pub fn carma_like<T: Scalar>(
    input_a: Option<&Matrix<T>>,
    input_b: Option<&Matrix<T>>,
    m: usize,
    n: usize,
    k: usize,
    comm: &mut Comm<T>,
    cfg: &CarmaConfig,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    if rank == 0 {
        let a = input_a.expect("rank 0 must provide A"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let b = input_b.expect("rank 0 must provide B"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        assert_eq!(a.shape(), (m, n), "A must be {m} x {n}");
        assert_eq!(b.shape(), (m, k), "B must be {m} x {k}");
    } else {
        assert!(
            input_a.is_none() && input_b.is_none(),
            "non-root rank {rank} must pass None"
        );
    }
    let task = input_a.map(|a| (a.clone(), input_b.expect("checked above").clone())); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
    carma_group(comm, 0, comm.size(), (m, n, k), task, cfg, 0)
}

/// One BFS level over ranks `[lo, hi)`; the leader (`lo`) holds the
/// task. Every rank derives the same split from `(dims, lo, hi)` alone.
fn carma_group<T: Scalar>(
    comm: &mut Comm<T>,
    lo: usize,
    hi: usize,
    dims: (usize, usize, usize),
    task: Option<(Matrix<T>, Matrix<T>)>,
    cfg: &CarmaConfig,
    depth: usize,
) -> Option<Matrix<T>> {
    let rank = comm.rank();
    let q = hi - lo;
    let (m, n, k) = dims;

    if q <= 1 {
        return task.map(|(a, b)| {
            let mut c = Matrix::zeros(n, k);
            carma_local(a.as_ref(), b.as_ref(), &mut c.as_mut(), comm, cfg);
            c
        });
    }

    let q1 = half_up(q);
    let mid = lo + q1;
    let in_left = rank < mid;
    let tag_base = depth as u64 * 4;
    let peer = mid; // leader of the right half
    let is_leader = rank == lo;

    // Split the largest dimension (CARMA's rule); ties favor the
    // reduction-free splits (n, then k, then m).
    let (split, d1, d2) = if n >= k && n >= m {
        ('n', half_up(n), n - half_up(n))
    } else if k >= m {
        ('k', half_up(k), k - half_up(k))
    } else {
        ('m', half_up(m), m - half_up(m))
    };

    let left_dims;
    let right_dims;
    let mut my_task: Option<(Matrix<T>, Matrix<T>)> = None;
    match split {
        'n' => {
            left_dims = (m, d1, k);
            right_dims = (m, d2, k);
            if is_leader {
                let (a, b) = task.expect("leader holds the task"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                comm.send(
                    peer,
                    TAG_A + tag_base,
                    wire::pack_view(a.as_ref().block(0, m, d1, n)),
                );
                comm.send(
                    peer,
                    TAG_B + tag_base,
                    wire::pack_view(b.as_ref().block(0, m, 0, k)),
                );
                my_task = Some((a.as_ref().block(0, m, 0, d1).to_matrix(), b));
            } else if rank == peer {
                let a_r = wire::unpack(comm.recv(lo, TAG_A + tag_base), m, d2);
                let b_r = wire::unpack(comm.recv(lo, TAG_B + tag_base), m, k);
                my_task = Some((a_r, b_r));
            }
        }
        'k' => {
            left_dims = (m, n, d1);
            right_dims = (m, n, d2);
            if is_leader {
                let (a, b) = task.expect("leader holds the task"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                comm.send(
                    peer,
                    TAG_A + tag_base,
                    wire::pack_view(a.as_ref().block(0, m, 0, n)),
                );
                comm.send(
                    peer,
                    TAG_B + tag_base,
                    wire::pack_view(b.as_ref().block(0, m, d1, k)),
                );
                my_task = Some((a, b.as_ref().block(0, m, 0, d1).to_matrix()));
            } else if rank == peer {
                let a_r = wire::unpack(comm.recv(lo, TAG_A + tag_base), m, n);
                let b_r = wire::unpack(comm.recv(lo, TAG_B + tag_base), m, d2);
                my_task = Some((a_r, b_r));
            }
        }
        _ => {
            left_dims = (d1, n, k);
            right_dims = (d2, n, k);
            if is_leader {
                let (a, b) = task.expect("leader holds the task"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
                comm.send(
                    peer,
                    TAG_A + tag_base,
                    wire::pack_view(a.as_ref().block(d1, m, 0, n)),
                );
                comm.send(
                    peer,
                    TAG_B + tag_base,
                    wire::pack_view(b.as_ref().block(d1, m, 0, k)),
                );
                my_task = Some((
                    a.as_ref().block(0, d1, 0, n).to_matrix(),
                    b.as_ref().block(0, d1, 0, k).to_matrix(),
                ));
            } else if rank == peer {
                let a_r = wire::unpack(comm.recv(lo, TAG_A + tag_base), d2, n);
                let b_r = wire::unpack(comm.recv(lo, TAG_B + tag_base), d2, k);
                my_task = Some((a_r, b_r));
            }
        }
    }

    let sub = if in_left {
        carma_group(comm, lo, mid, left_dims, my_task, cfg, depth + 1)
    } else {
        carma_group(comm, mid, hi, right_dims, my_task, cfg, depth + 1)
    };

    if is_leader {
        let mut left = sub.expect("leader computed the left part"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
        let (rn, rk) = match split {
            'n' => (d2, k),
            'k' => (n, d2),
            _ => (n, k),
        };
        let right = wire::unpack(comm.recv(peer, TAG_C + tag_base), rn, rk);
        let mut c = Matrix::zeros(n, k);
        match split {
            'n' => {
                c.as_mut().into_block(0, d1, 0, k).copy_from(left.as_ref());
                c.as_mut().into_block(d1, n, 0, k).copy_from(right.as_ref());
            }
            'k' => {
                c.as_mut().into_block(0, n, 0, d1).copy_from(left.as_ref());
                c.as_mut().into_block(0, n, d1, k).copy_from(right.as_ref());
            }
            _ => {
                // The reduction case: sum the two partial products.
                ops::add_assign(&mut left.as_mut(), right.as_ref());
                comm.add_compute_flops((n * k) as f64);
                c = left;
            }
        }
        Some(c)
    } else {
        if rank == peer {
            let mine = sub.expect("right leader computed its part"); // ata-lint: allow(no-unwrap-in-lib): SPMD invariant stated in the expect message
            comm.send(lo, TAG_C + tag_base, mine.into_vec());
        }
        None
    }
}

/// Local compute with CARMA's memory-constrained DFS: split the largest
/// dimension until the operands fit the budget, then FastStrassen.
///
/// Accumulating (`C += A^T B`), like the kernels it wraps: halves of
/// every split write (or re-accumulate into) the destination view
/// directly, so the DFS allocates nothing.
fn carma_local<T: Scalar>(
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    comm: &mut Comm<T>,
    cfg: &CarmaConfig,
) {
    let (m, n) = a.shape();
    let k = b.cols();
    let footprint = m * n + m * k + n * k;
    if footprint <= cfg.mem_words_per_rank || (m <= 1 && n <= 1 && k <= 1) {
        fast_strassen(T::ONE, a, b, c, &cfg.cache);
        comm.add_compute_flops(2.0 * strassen_mults(m, n, k, &cfg.cache) as f64);
        return;
    }
    if n >= k && n >= m && n > 1 {
        // Split C's rows: recurse on A's column halves.
        let d1 = half_up(n);
        let (mut top, mut bot) = c.rb_mut().split_at_row_mut(d1);
        carma_local(a.block(0, m, 0, d1), b, &mut top, comm, cfg);
        carma_local(a.block(0, m, d1, n), b, &mut bot, comm, cfg);
    } else if k >= m && k > 1 {
        // Split C's columns: recurse on B's column halves.
        let d1 = half_up(k);
        let (mut left, mut right) = c.rb_mut().split_at_col_mut(d1);
        carma_local(a, b.block(0, m, 0, d1), &mut left, comm, cfg);
        carma_local(a, b.block(0, m, d1, k), &mut right, comm, cfg);
    } else if m > 1 {
        // The DFS reduction: both row-halves accumulate into the same C.
        let d1 = half_up(m);
        carma_local(a.block(0, d1, 0, n), b.block(0, d1, 0, k), c, comm, cfg);
        carma_local(a.block(d1, m, 0, n), b.block(d1, m, 0, k), c, comm, cfg);
    } else {
        fast_strassen(T::ONE, a, b, c, &cfg.cache);
        comm.add_compute_flops(2.0 * strassen_mults(m, n, k, &cfg.cache) as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};
    use ata_mpisim::{run, CostModel};

    fn check(m: usize, n: usize, k: usize, p: usize, mem: usize) {
        let a = gen::standard::<f64>(m as u64 + 11 * n as u64 + k as u64, m, n);
        let b = gen::standard::<f64>(77 + k as u64, m, k);
        let mut c_ref = Matrix::zeros(n, k);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        let cfg = CarmaConfig {
            mem_words_per_rank: mem,
            ..CarmaConfig::default()
        };
        let (ar, br) = (&a, &b);
        let report = run(p, CostModel::zero(), move |comm| {
            let (ia, ib) = if comm.rank() == 0 {
                (Some(ar), Some(br))
            } else {
                (None, None)
            };
            carma_like(ia, ib, m, n, k, comm, &cfg)
        });
        let c = report.results[0].as_ref().expect("root");
        let tol = ata_mat::ops::product_tol::<f64>(m, n.max(k), m as f64) * 2.0;
        let diff = c.max_abs_diff(&c_ref);
        assert!(
            diff <= tol,
            "m={m} n={n} k={k} P={p} mem={mem}: differs by {diff}"
        );
    }

    #[test]
    fn matches_oracle_across_rank_counts() {
        for p in [1usize, 2, 3, 4, 6, 8, 13] {
            check(24, 20, 28, p, usize::MAX / 4);
        }
    }

    #[test]
    fn memory_budget_forces_dfs_but_keeps_correctness() {
        for mem in [64usize, 512, 4096] {
            check(24, 20, 28, 4, mem);
            check(31, 9, 17, 3, mem);
        }
    }

    #[test]
    fn degenerate_shapes() {
        check(1, 1, 1, 4, 64);
        check(5, 1, 9, 6, 64);
        check(1, 8, 1, 3, 64);
    }

    #[test]
    fn tall_split_reduces_with_m_dominant() {
        // m >> n, k: the first split must be the m (reduction) split and
        // results must still be exact to tolerance.
        check(64, 4, 4, 8, usize::MAX / 4);
    }
}
