//! Traffic audit for AtA-D: the per-rank message/word counters reported
//! by `ata_mpisim::RankMetrics` — send **and** receive side — must agree
//! **exactly** with the analytical prediction replayed from the task
//! tree (`ata_dist::traffic`), for both wire formats. On top of the
//! bit-exact audit this checks the Proposition 4.2 scaling: per-rank
//! communication volume `O(mn + n^2)` with the level count of Eq. 5, and
//! §4.3.1's packed encoding strictly reducing the words that converge on
//! the root versus dense at every tested rank count.

use ata_dist::traffic::{ata_d_traffic, TrafficPlan};
use ata_dist::{ata_d, AtaDConfig, WireFormat};
use ata_kernels::CacheConfig;
use ata_mat::gen;
use ata_mpisim::{run, CostModel, RunReport};

fn run_sim(m: usize, n: usize, procs: usize, cfg: AtaDConfig) -> RunReport<()> {
    let a = gen::standard::<f64>(m as u64 * 13 + n as u64 + procs as u64, m, n);
    let a_ref = &a;
    run(procs, CostModel::zero(), move |comm| {
        let input = (comm.rank() == 0).then_some(a_ref);
        ata_d(input, m, n, comm, &cfg);
    })
}

fn run_and_audit(m: usize, n: usize, procs: usize, cfg: AtaDConfig) -> TrafficPlan {
    let report = run_sim(m, n, procs, cfg);
    let plan = ata_d_traffic(m, n, procs, &cfg);
    assert_eq!(plan.per_rank.len(), procs);
    let ctx = format!(
        "m={m} n={n} P={procs} alpha={} wire={:?}",
        cfg.alpha, cfg.wire
    );
    for (rank, (metrics, predicted)) in report.metrics.iter().zip(&plan.per_rank).enumerate() {
        assert_eq!(
            metrics.msgs_sent, predicted.msgs,
            "{ctx}: rank {rank} sent-message count"
        );
        assert_eq!(
            metrics.words_sent, predicted.words,
            "{ctx}: rank {rank} sent-word count"
        );
        assert_eq!(
            metrics.msgs_recv, predicted.msgs_recv,
            "{ctx}: rank {rank} received-message count"
        );
        assert_eq!(
            metrics.words_recv, predicted.words_recv,
            "{ctx}: rank {rank} received-word count"
        );
    }
    assert_eq!(report.total_words(), plan.total_words());
    assert_eq!(report.total_msgs(), plan.total_msgs());
    plan
}

fn cfg_with(alpha: f64, wire: WireFormat) -> AtaDConfig {
    AtaDConfig {
        alpha,
        cache: CacheConfig::with_words(64),
        strassen_leaves: true,
        threads_per_rank: 1,
        wire,
    }
}

#[test]
fn counters_match_prediction_across_rank_counts() {
    for procs in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        for wire in [WireFormat::Dense, WireFormat::SymPacked] {
            run_and_audit(64, 48, procs, cfg_with(0.5, wire));
        }
    }
}

#[test]
fn counters_match_prediction_on_rectangles() {
    for &(m, n) in &[(96usize, 24usize), (24, 96), (40, 40), (7, 50)] {
        for wire in [WireFormat::Dense, WireFormat::SymPacked] {
            run_and_audit(m, n, 8, cfg_with(0.5, wire));
        }
    }
}

#[test]
fn counters_match_prediction_across_alpha() {
    for &alpha in &[0.25, 0.4, 0.5, 0.6, 0.75] {
        run_and_audit(48, 40, 12, cfg_with(alpha, WireFormat::SymPacked));
    }
}

/// The Proposition 4.2 audit: at every tested rank count the packed
/// retrieval path must move **strictly fewer** words into the root than
/// dense (both paths having passed the bit-exact counter audit above),
/// and no rank may exceed the per-processor word bound.
#[test]
fn packed_wire_strictly_reduces_root_words_in_prop42_audit() {
    let (m, n) = (96usize, 80usize);
    for procs in [2usize, 4, 8, 16, 32] {
        let dense = run_and_audit(m, n, procs, cfg_with(0.5, WireFormat::Dense));
        let packed = run_and_audit(m, n, procs, cfg_with(0.5, WireFormat::SymPacked));
        assert!(
            packed.root_recv_words() < dense.root_recv_words(),
            "P={procs}: packed root words {} !< dense {}",
            packed.root_recv_words(),
            dense.root_recv_words()
        );
        assert!(
            packed.total_words() < dense.total_words(),
            "P={procs}: packed total {} !< dense {}",
            packed.total_words(),
            dense.total_words()
        );
        // Distribution is wire-independent (operands ship dense).
        assert_eq!(packed.root_sent_words(), dense.root_sent_words());
        for plan in [&dense, &packed] {
            let bound = TrafficPlan::word_bound(m, n, plan.levels);
            assert!(
                plan.max_rank_words() <= bound,
                "P={procs} {:?}: {} words exceed the Prop 4.2 bound {bound}",
                plan.wire,
                plan.max_rank_words()
            );
        }
    }
}

#[test]
fn distribution_is_rooted_and_retrieval_converges_to_root() {
    // Only p0 injects operand data into the scatter tree; every other
    // communicating rank forwards scatter chunks or ships results
    // upward, and the results ultimately converge on the root.
    let plan = run_and_audit(64, 64, 8, cfg_with(0.5, WireFormat::SymPacked));
    assert!(plan.per_rank[0].words > 0, "root must distribute A blocks");
    assert!(plan.root_recv_words() > 0, "root must receive results");
    let others: u64 = plan.per_rank[1..].iter().map(|r| r.words).sum();
    assert!(others > 0, "workers must retrieve results");
}

#[test]
fn tree_scatter_bounds_root_messages_logarithmically() {
    // The rooted linear distribution used to pay one message per remote
    // leaf operand at the root; the binomial scatter pays at most
    // ceil(log2 P) plus any retrieval sends (rank 0 has none).
    for procs in [4usize, 8, 16, 32] {
        let plan = run_and_audit(96, 80, procs, cfg_with(0.5, WireFormat::SymPacked));
        let log2 = usize::BITS - (procs - 1).leading_zeros();
        assert!(
            plan.per_rank[0].msgs <= log2 as u64,
            "P={procs}: root sent {} messages > log2 bound {log2}",
            plan.per_rank[0].msgs
        );
        let remote_leaves = procs; // every rank owns >= 1 leaf at these sizes
        assert!(
            (plan.per_rank[0].msgs as usize) < remote_leaves,
            "P={procs}: tree scatter must beat one-message-per-leaf"
        );
    }
}

#[test]
fn single_rank_sends_nothing() {
    let plan = run_and_audit(32, 32, 1, cfg_with(0.5, WireFormat::SymPacked));
    assert_eq!(plan.total_words(), 0);
    assert_eq!(plan.total_msgs(), 0);
}
