//! Traffic audit for AtA-D: the per-rank message/word counters reported
//! by `ata_mpisim::RankMetrics` must agree **exactly** with the
//! analytical prediction replayed from the task tree
//! (`ata_dist::traffic`), and the totals must respect the Proposition
//! 4.2 scaling — per-level communication volume `O(mn + n^2)` with the
//! level count of Eq. 5.

use ata_dist::traffic::{ata_d_traffic, TrafficPlan};
use ata_dist::{ata_d, AtaDConfig};
use ata_kernels::CacheConfig;
use ata_mat::gen;
use ata_mpisim::{run, CostModel};

fn run_and_audit(m: usize, n: usize, procs: usize, alpha: f64) -> TrafficPlan {
    let a = gen::standard::<f64>(m as u64 * 13 + n as u64 + procs as u64, m, n);
    let cfg = AtaDConfig {
        alpha,
        cache: CacheConfig::with_words(64),
        strassen_leaves: true,
        threads_per_rank: 1,
    };
    let a_ref = &a;
    let report = run(procs, CostModel::zero(), move |comm| {
        let input = (comm.rank() == 0).then_some(a_ref);
        ata_d(input, m, n, comm, &cfg);
    });
    let plan = ata_d_traffic(m, n, procs, alpha);
    assert_eq!(plan.per_rank.len(), procs);
    for (rank, (metrics, predicted)) in report.metrics.iter().zip(&plan.per_rank).enumerate() {
        assert_eq!(
            metrics.msgs_sent, predicted.msgs,
            "m={m} n={n} P={procs} alpha={alpha}: rank {rank} message count"
        );
        assert_eq!(
            metrics.words_sent, predicted.words,
            "m={m} n={n} P={procs} alpha={alpha}: rank {rank} word count"
        );
    }
    assert_eq!(report.total_words(), plan.total_words());
    assert_eq!(report.total_msgs(), plan.total_msgs());
    plan
}

#[test]
fn counters_match_prediction_across_rank_counts() {
    for procs in [1usize, 2, 3, 4, 6, 8, 12, 16] {
        run_and_audit(64, 48, procs, 0.5);
    }
}

#[test]
fn counters_match_prediction_on_rectangles() {
    for &(m, n) in &[(96usize, 24usize), (24, 96), (40, 40), (7, 50)] {
        run_and_audit(m, n, 8, 0.5);
    }
}

#[test]
fn counters_match_prediction_across_alpha() {
    for &alpha in &[0.25, 0.4, 0.5, 0.6, 0.75] {
        run_and_audit(48, 40, 12, alpha);
    }
}

#[test]
fn total_words_respect_proposition_42_bound() {
    let (m, n) = (96usize, 80usize);
    for procs in [2usize, 4, 8, 16, 32] {
        let plan = run_and_audit(m, n, procs, 0.5);
        let bound = TrafficPlan::word_bound(m, n, plan.levels);
        assert!(
            plan.total_words() <= bound,
            "P={procs}: {} words exceed the Prop 4.2 bound {bound}",
            plan.total_words()
        );
    }
}

#[test]
fn distribution_is_rooted_and_retrieval_converges_to_root() {
    // Only p0 distributes; every other communicating rank only ships
    // results upward, so with the zero-cost model the root's received
    // volume equals everyone else's sent volume.
    let plan = run_and_audit(64, 64, 8, 0.5);
    assert!(plan.per_rank[0].words > 0, "root must distribute A blocks");
    let others: u64 = plan.per_rank[1..].iter().map(|r| r.words).sum();
    assert!(others > 0, "workers must retrieve results");
}

#[test]
fn single_rank_sends_nothing() {
    let plan = run_and_audit(32, 32, 1, 0.5);
    assert_eq!(plan.total_words(), 0);
    assert_eq!(plan.total_msgs(), 0);
}
