//! Property tests for the wire layer (§4.3.1): packed lower-triangle
//! payloads must round-trip **bit-identically** against their dense
//! counterparts on arbitrary (ragged, odd) shapes and scalar types, and
//! the whole AtA-D pipeline must produce the same bits no matter which
//! wire format carried the blocks — including across repeated
//! executions of one prebuilt [`DistPlan`].

use ata_core::tasktree::ComputeKind;
use ata_dist::wire::{self, packed_len, WireFormat};
use ata_dist::{ata_d, AtaDConfig, DistPlan};
use ata_kernels::CacheConfig;
use ata_mat::{gen, Matrix, Scalar};
use ata_mpisim::{run, CostModel};
use proptest::prelude::*;

/// A random square block shaped like an `A^T A` result: populated lower
/// triangle, zero strict upper.
fn lower_block<T: Scalar>(seed: u64, n: usize) -> Matrix<T> {
    let full = gen::standard::<T>(seed, n, n);
    let mut blk = Matrix::<T>::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            blk[(i, j)] = full[(i, j)];
        }
    }
    blk
}

fn lower_roundtrip_bits<T: Scalar>(seed: u64, n: usize) {
    let blk = lower_block::<T>(seed, n);
    // SymPacked payload: exactly n(n+1)/2 words, bit-exact round trip.
    let payload = wire::pack_c(&blk, ComputeKind::AtA, WireFormat::SymPacked);
    assert_eq!(payload.len(), packed_len(n));
    let back = wire::unpack_c(payload, ComputeKind::AtA, n, n, WireFormat::SymPacked);
    assert_eq!(back.max_abs_diff(&blk), 0.0);
    // And it agrees with the dense encoding's round trip bit-for-bit.
    let dense = wire::pack_c(&blk, ComputeKind::AtA, WireFormat::Dense);
    assert_eq!(dense.len(), n * n);
    let back_dense = wire::unpack_c(dense, ComputeKind::AtA, n, n, WireFormat::Dense);
    assert_eq!(back.max_abs_diff(&back_dense), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sympacked_roundtrips_against_dense_f64(
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        lower_roundtrip_bits::<f64>(seed, n);
    }

    #[test]
    fn sympacked_roundtrips_against_dense_f32(
        n in 1usize..40,
        seed in 0u64..10_000,
    ) {
        lower_roundtrip_bits::<f32>(seed, n);
    }

    #[test]
    fn ragged_block_concatenation_roundtrips(
        rows1 in 1usize..17,
        cols1 in 1usize..17,
        rows2 in 1usize..17,
        cols2 in 1usize..17,
        seed in 0u64..10_000,
    ) {
        // Scatter chunks concatenate ragged (odd-shaped) blocks; the
        // receive side must carve them back exactly.
        let a = gen::standard::<f64>(seed, rows1.max(rows2) + 3, cols1.max(cols2) + 5);
        let b1 = a.as_ref().block(1, 1 + rows1, 2, 2 + cols1);
        let b2 = a.as_ref().block(0, rows2, 0, cols2);
        let mut buf = Vec::new();
        wire::append_view(&mut buf, b1);
        wire::append_view(&mut buf, b2);
        prop_assert_eq!(buf.len(), rows1 * cols1 + rows2 * cols2);
        let mut off = 0usize;
        let r1 = wire::read_block(&buf, &mut off, rows1, cols1);
        let r2 = wire::read_block(&buf, &mut off, rows2, cols2);
        prop_assert_eq!(off, buf.len());
        prop_assert_eq!(r1.max_abs_diff(&b1.to_matrix()), 0.0);
        prop_assert_eq!(r2.max_abs_diff(&b2.to_matrix()), 0.0);
    }

    #[test]
    fn ata_d_bits_identical_across_wire_formats_and_reuses(
        m in 1usize..36,
        n in 1usize..36,
        procs in 1usize..13,
        seed in 0u64..5_000,
        words in 8usize..64,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        let mut outputs: Vec<Matrix<f64>> = Vec::new();
        for wire_fmt in [WireFormat::Dense, WireFormat::SymPacked] {
            let cfg = AtaDConfig {
                cache: CacheConfig::with_words(words),
                wire: wire_fmt,
                ..AtaDConfig::default()
            };
            // One prebuilt plan, three executions: all must agree.
            let plan = DistPlan::build(m, n, procs, &cfg);
            for _ in 0..3 {
                let (a_ref, plan_ref) = (&a, &plan);
                let report = run(procs, CostModel::zero(), move |comm| {
                    let input = (comm.rank() == 0).then_some(a_ref);
                    plan_ref.execute(input, comm).expect("fault-free universe")
                });
                outputs.push(report.results.into_iter().flatten().next().expect("root"));
            }
            // The one-shot wrapper is the same schedule.
            let (a_ref, cfg_ref) = (&a, &cfg);
            let report = run(procs, CostModel::zero(), move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                ata_d(input, m, n, comm, cfg_ref)
            });
            outputs.push(report.results.into_iter().flatten().next().expect("root"));
        }
        let first = &outputs[0];
        for (i, out) in outputs.iter().enumerate().skip(1) {
            prop_assert_eq!(
                first.max_abs_diff(out),
                0.0,
                "run {} differs from run 0 (m={} n={} P={})",
                i, m, n, procs
            );
        }
    }
}
