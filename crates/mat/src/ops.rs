//! Whole-matrix elementwise helpers shared across the workspace.
//!
//! These are deliberately simple loops over contiguous rows — the
//! performance-critical paths live in `ata-kernels`; this module serves
//! tests, examples and glue code (gather-side sums of the distributed
//! algorithm, operand preparation, etc.).

use crate::{MatMut, MatRef, Scalar};

/// `dst += src`, elementwise.
///
/// # Panics
/// If shapes differ.
pub fn add_assign<T: Scalar>(dst: &mut MatMut<'_, T>, src: MatRef<'_, T>) {
    assert_eq!(dst.shape(), src.shape(), "add_assign shape mismatch");
    for i in 0..dst.rows() {
        let d = dst.row_mut(i);
        let s = src.row(i);
        for (dv, sv) in d.iter_mut().zip(s) {
            *dv += *sv;
        }
    }
}

/// `dst += alpha * src`, elementwise.
///
/// # Panics
/// If shapes differ.
pub fn axpy_assign<T: Scalar>(dst: &mut MatMut<'_, T>, alpha: T, src: MatRef<'_, T>) {
    assert_eq!(dst.shape(), src.shape(), "axpy_assign shape mismatch");
    for i in 0..dst.rows() {
        let d = dst.row_mut(i);
        let s = src.row(i);
        for (dv, sv) in d.iter_mut().zip(s) {
            *dv += alpha * *sv;
        }
    }
}

/// `dst = a + b`, elementwise.
///
/// # Panics
/// If any shape differs.
pub fn add_into<T: Scalar>(dst: &mut MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    assert_eq!(a.shape(), b.shape(), "add_into operand shape mismatch");
    assert_eq!(dst.shape(), a.shape(), "add_into output shape mismatch");
    for i in 0..dst.rows() {
        let d = dst.row_mut(i);
        let (ar, br) = (a.row(i), b.row(i));
        for ((dv, av), bv) in d.iter_mut().zip(ar).zip(br) {
            *dv = *av + *bv;
        }
    }
}

/// `dst = a - b`, elementwise.
///
/// # Panics
/// If any shape differs.
pub fn sub_into<T: Scalar>(dst: &mut MatMut<'_, T>, a: MatRef<'_, T>, b: MatRef<'_, T>) {
    assert_eq!(a.shape(), b.shape(), "sub_into operand shape mismatch");
    assert_eq!(dst.shape(), a.shape(), "sub_into output shape mismatch");
    for i in 0..dst.rows() {
        let d = dst.row_mut(i);
        let (ar, br) = (a.row(i), b.row(i));
        for ((dv, av), bv) in d.iter_mut().zip(ar).zip(br) {
            *dv = *av - *bv;
        }
    }
}

/// Scale every element of `dst` by `s`.
pub fn scale<T: Scalar>(dst: &mut MatMut<'_, T>, s: T) {
    for i in 0..dst.rows() {
        for v in dst.row_mut(i) {
            *v *= s;
        }
    }
}

/// Max-norm distance between two views.
///
/// # Panics
/// If shapes differ.
pub fn max_abs_diff<T: Scalar>(a: MatRef<'_, T>, b: MatRef<'_, T>) -> f64 {
    assert_eq!(a.shape(), b.shape(), "max_abs_diff shape mismatch");
    let mut worst = 0.0f64;
    for i in 0..a.rows() {
        for (x, y) in a.row(i).iter().zip(b.row(i)) {
            worst = worst.max((x.to_f64() - y.to_f64()).abs());
        }
    }
    worst
}

/// Relative tolerance for comparing a computed `m x n`-sized product
/// against an oracle: `c * max(m, n) * eps * scale`, where `scale` bounds
/// the magnitude of the entries. Strassen-type algorithms have a slightly
/// worse error constant than the classical one, which the factor `c`
/// absorbs (Brent's classical analysis, cited as \[6\] in the paper).
pub fn product_tol<T: Scalar>(m: usize, n: usize, scale: f64) -> f64 {
    let dim = m.max(n).max(2) as f64;
    // log-factor for the Strassen recursion depth; generous but tight
    // enough to catch real indexing bugs (which produce O(scale) errors).
    64.0 * dim.log2().powi(2) * T::epsilon() * scale.max(1.0) * dim.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Matrix;

    fn m(rows: usize, cols: usize, f: impl FnMut(usize, usize) -> f64) -> Matrix<f64> {
        Matrix::from_fn(rows, cols, f)
    }

    #[test]
    fn add_sub_axpy() {
        let a = m(2, 3, |i, j| (i + j) as f64);
        let b = m(2, 3, |i, j| (i * j) as f64);
        let mut out = Matrix::zeros(2, 3);
        add_into(&mut out.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(out[(1, 2)], 3.0 + 2.0);

        sub_into(&mut out.as_mut(), a.as_ref(), b.as_ref());
        assert_eq!(out[(1, 2)], 3.0 - 2.0);

        let mut acc = a.clone();
        axpy_assign(&mut acc.as_mut(), 2.0, b.as_ref());
        assert_eq!(acc[(1, 2)], 3.0 + 2.0 * 2.0);

        let mut acc2 = a.clone();
        add_assign(&mut acc2.as_mut(), b.as_ref());
        assert_eq!(acc2[(1, 2)], 5.0);
    }

    #[test]
    fn scale_in_place() {
        let mut a = m(2, 2, |_, _| 3.0);
        scale(&mut a.as_mut(), 2.0);
        assert_eq!(a.as_slice(), &[6.0; 4]);
    }

    #[test]
    fn diff_metric() {
        let a = m(2, 2, |_, _| 1.0);
        let b = m(2, 2, |i, j| if (i, j) == (1, 1) { 3.0 } else { 1.0 });
        assert_eq!(max_abs_diff(a.as_ref(), b.as_ref()), 2.0);
    }

    #[test]
    fn tolerance_scales_with_size_and_precision() {
        let t_small = product_tol::<f64>(8, 8, 1.0);
        let t_big = product_tol::<f64>(4096, 4096, 1.0);
        assert!(t_big > t_small);
        assert!(product_tol::<f32>(64, 64, 1.0) > product_tol::<f64>(64, 64, 1.0));
        // Even the big tolerance must stay far below O(1) entry magnitude.
        assert!(t_big < 1e-6);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let a = m(2, 3, |_, _| 0.0);
        let b = m(3, 2, |_, _| 0.0);
        let _ = max_abs_diff(a.as_ref(), b.as_ref());
    }

    #[test]
    fn ops_on_strided_views() {
        // Operate on the 2x2 top-left block of a 4x4 buffer and verify the
        // rest is untouched.
        let mut buf = Matrix::from_fn(4, 4, |_, _| 1.0);
        let ones = m(2, 2, |_, _| 1.0);
        {
            let mut blk = buf.as_mut().into_block(0, 2, 0, 2);
            axpy_assign(&mut blk, 10.0, ones.as_ref());
        }
        assert_eq!(buf[(0, 0)], 11.0);
        assert_eq!(buf[(1, 1)], 11.0);
        assert_eq!(buf[(0, 2)], 1.0);
        assert_eq!(buf[(2, 0)], 1.0);
    }
}
