//! Matrix file I/O: CSV for interoperability and a simple binary format
//! for round-tripping large matrices without parsing cost.
//!
//! The binary format (`.atm`) is: magic `b"ATAM"`, a format version
//! byte, an element-kind byte (`4`/`8` = f32/f64 width), two
//! little-endian `u64` dimensions, then `rows * cols` little-endian
//! elements in row-major order.

use crate::{Matrix, Scalar};
use std::io::{self, BufRead, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ATAM";
const VERSION: u8 = 1;

/// Errors from matrix readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem with the file contents.
    Format(String),
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

/// Write a matrix as CSV (one row per line, `,` separator, full
/// precision round-trippable floats).
pub fn write_csv<T: Scalar>(m: &Matrix<T>, w: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    for i in 0..m.rows() {
        let mut first = true;
        for v in m.row(i) {
            if !first {
                write!(w, ",")?;
            }
            first = false;
            // `{:?}`-style shortest round-trip via Display on f64.
            write!(w, "{}", v.to_f64())?;
        }
        writeln!(w)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a CSV matrix (rectangular; blank lines ignored).
///
/// # Errors
/// [`IoError::Format`] on ragged rows, empty input or unparsable cells.
pub fn read_csv<T: Scalar>(r: impl Read) -> Result<Matrix<T>, IoError> {
    let reader = io::BufReader::new(r);
    let mut data: Vec<T> = Vec::new();
    let mut cols: Option<usize> = None;
    let mut rows = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut count = 0usize;
        for cell in trimmed.split(',') {
            let v: f64 = cell.trim().parse().map_err(|_| {
                IoError::Format(format!("line {}: bad number '{cell}'", lineno + 1))
            })?;
            data.push(T::from_f64(v));
            count += 1;
        }
        match cols {
            None => cols = Some(count),
            Some(c) if c != count => {
                return Err(IoError::Format(format!(
                    "line {}: expected {c} columns, got {count}",
                    lineno + 1
                )))
            }
            _ => {}
        }
        rows += 1;
    }
    let cols = cols.ok_or_else(|| IoError::Format("empty matrix".into()))?;
    Ok(Matrix::from_vec(data, rows, cols))
}

/// Write the binary `.atm` format.
pub fn write_binary<T: Scalar>(m: &Matrix<T>, w: impl Write) -> Result<(), IoError> {
    let mut w = BufWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&[VERSION, std::mem::size_of::<T>() as u8])?;
    w.write_all(&(m.rows() as u64).to_le_bytes())?;
    w.write_all(&(m.cols() as u64).to_le_bytes())?;
    // Elements as f64 bits when T is f64, else f32 bits.
    if std::mem::size_of::<T>() == 4 {
        for v in m.as_slice() {
            w.write_all(&(v.to_f64() as f32).to_le_bytes())?;
        }
    } else {
        for v in m.as_slice() {
            w.write_all(&v.to_f64().to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Read the binary `.atm` format.
///
/// # Errors
/// [`IoError::Format`] on bad magic/version/width or truncation.
pub fn read_binary<T: Scalar>(mut r: impl Read) -> Result<Matrix<T>, IoError> {
    let mut head = [0u8; 6];
    r.read_exact(&mut head)?;
    if &head[..4] != MAGIC {
        return Err(IoError::Format("bad magic (not an .atm file)".into()));
    }
    if head[4] != VERSION {
        return Err(IoError::Format(format!("unsupported version {}", head[4])));
    }
    let width = head[5] as usize;
    if width != std::mem::size_of::<T>() {
        return Err(IoError::Format(format!(
            "element width {width} does not match requested scalar ({} bytes)",
            std::mem::size_of::<T>()
        )));
    }
    let mut dims = [0u8; 16];
    r.read_exact(&mut dims)?;
    let rows = u64::from_le_bytes(dims[..8].try_into().expect("8 bytes")) as usize;
    let cols = u64::from_le_bytes(dims[8..].try_into().expect("8 bytes")) as usize;
    let count = rows
        .checked_mul(cols)
        .ok_or_else(|| IoError::Format("dimension overflow".into()))?;
    let mut data = Vec::with_capacity(count);
    if width == 4 {
        let mut buf = [0u8; 4];
        for _ in 0..count {
            r.read_exact(&mut buf)?;
            data.push(T::from_f64(f32::from_le_bytes(buf) as f64));
        }
    } else {
        let mut buf = [0u8; 8];
        for _ in 0..count {
            r.read_exact(&mut buf)?;
            data.push(T::from_f64(f64::from_le_bytes(buf)));
        }
    }
    Ok(Matrix::from_vec(data, rows, cols))
}

/// Load a matrix from a path, selecting the format by extension
/// (`.csv` vs anything else = binary).
pub fn load<T: Scalar>(path: impl AsRef<Path>) -> Result<Matrix<T>, IoError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        read_csv(f)
    } else {
        read_binary(f)
    }
}

/// Save a matrix to a path, selecting the format by extension.
pub fn save<T: Scalar>(m: &Matrix<T>, path: impl AsRef<Path>) -> Result<(), IoError> {
    let path = path.as_ref();
    let f = std::fs::File::create(path)?;
    if path.extension().is_some_and(|e| e == "csv") {
        write_csv(m, f)
    } else {
        write_binary(m, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn csv_roundtrip_f64() {
        let m = gen::standard::<f64>(1, 7, 5);
        let mut buf = Vec::new();
        write_csv(&m, &mut buf).expect("write");
        let back = read_csv::<f64>(&buf[..]).expect("read");
        assert_eq!(
            m.max_abs_diff(&back),
            0.0,
            "CSV must round-trip f64 exactly"
        );
    }

    #[test]
    fn binary_roundtrip_both_precisions() {
        let m64 = gen::standard::<f64>(2, 9, 4);
        let mut buf = Vec::new();
        write_binary(&m64, &mut buf).expect("write");
        let back = read_binary::<f64>(&buf[..]).expect("read");
        assert_eq!(m64.max_abs_diff(&back), 0.0);

        let m32 = gen::standard::<f32>(3, 4, 9);
        let mut buf = Vec::new();
        write_binary(&m32, &mut buf).expect("write");
        let back = read_binary::<f32>(&buf[..]).expect("read");
        assert_eq!(m32.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn csv_rejects_ragged_rows() {
        let bad = "1,2,3\n4,5\n";
        let err = read_csv::<f64>(bad.as_bytes()).expect_err("ragged");
        assert!(err.to_string().contains("expected 3 columns"));
    }

    #[test]
    fn csv_rejects_garbage_cells() {
        let bad = "1,2\n3,abc\n";
        assert!(read_csv::<f64>(bad.as_bytes()).is_err());
    }

    #[test]
    fn binary_rejects_wrong_magic_and_width() {
        let m = gen::standard::<f64>(4, 2, 2);
        let mut buf = Vec::new();
        write_binary(&m, &mut buf).expect("write");
        // Wrong scalar width requested.
        assert!(read_binary::<f32>(&buf[..]).is_err());
        // Corrupt magic.
        buf[0] = b'X';
        assert!(read_binary::<f64>(&buf[..]).is_err());
    }

    #[test]
    fn truncated_binary_is_an_error() {
        let m = gen::standard::<f64>(5, 3, 3);
        let mut buf = Vec::new();
        write_binary(&m, &mut buf).expect("write");
        buf.truncate(buf.len() - 5);
        assert!(read_binary::<f64>(&buf[..]).is_err());
    }

    #[test]
    fn path_based_save_load_by_extension() {
        let dir = std::env::temp_dir().join("ata_io_test");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let m = gen::standard::<f64>(6, 5, 3);

        let csv = dir.join("m.csv");
        save(&m, &csv).expect("save csv");
        assert_eq!(load::<f64>(&csv).expect("load csv").max_abs_diff(&m), 0.0);

        let bin = dir.join("m.atm");
        save(&m, &bin).expect("save bin");
        assert_eq!(load::<f64>(&bin).expect("load bin").max_abs_diff(&m), 0.0);
        // Binary is smaller than CSV for the same data.
        let csv_len = std::fs::metadata(&csv).expect("meta").len();
        let bin_len = std::fs::metadata(&bin).expect("meta").len();
        assert!(bin_len < csv_len);
    }

    #[test]
    fn empty_csv_is_an_error() {
        assert!(read_csv::<f64>(&b""[..]).is_err());
        assert!(read_csv::<f64>(&b"\n\n"[..]).is_err());
    }
}
