//! Seeded random workload generation.
//!
//! The paper evaluates on "dense matrices of variable size... generated
//! randomly" (§5.1). All generators here take an explicit seed so every
//! experiment in the harness is reproducible bit-for-bit.

use crate::{Matrix, Scalar};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform random matrix with entries in `[lo, hi)`.
pub fn uniform<T: Scalar>(seed: u64, rows: usize, cols: usize, lo: f64, hi: f64) -> Matrix<T> {
    assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| T::from_f64(rng.random_range(lo..hi)))
}

/// Standard workload of the benchmark harness: entries uniform in
/// `[-1, 1)`, which keeps `A^T A` entries `O(m)` and avoids overflow in
/// `f32` runs at the paper's sizes.
pub fn standard<T: Scalar>(seed: u64, rows: usize, cols: usize) -> Matrix<T> {
    uniform(seed, rows, cols, -1.0, 1.0)
}

/// Matrix with entries drawn from `{-1, 0, 1}`; products are exactly
/// representable integers, so tests using it can compare with `== 0`
/// tolerance even through Strassen's add/subtract recombinations.
pub fn ternary<T: Scalar>(seed: u64, rows: usize, cols: usize) -> Matrix<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| {
        T::from_f64((rng.random_range(0..3i32) - 1) as f64)
    })
}

/// Well-conditioned tall matrix for the least-squares example: a random
/// perturbation of the first `cols` columns of the identity.
pub fn tall_well_conditioned<T: Scalar>(seed: u64, rows: usize, cols: usize) -> Matrix<T> {
    assert!(rows >= cols, "tall matrix needs rows >= cols");
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |i, j| {
        let base = if i == j { 1.0 } else { 0.0 };
        T::from_f64(base + 0.1 * rng.random_range(-1.0..1.0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = standard::<f64>(42, 8, 5);
        let b = standard::<f64>(42, 8, 5);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        let c = standard::<f64>(43, 8, 5);
        assert!(a.max_abs_diff(&c) > 0.0, "different seeds differ");
    }

    #[test]
    fn uniform_respects_range() {
        let a = uniform::<f64>(7, 20, 20, -2.0, 3.0);
        for &v in a.as_slice() {
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn ternary_entries_are_exact() {
        let a = ternary::<f32>(1, 16, 16);
        for &v in a.as_slice() {
            assert!(v == -1.0 || v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn tall_well_conditioned_diagonal_dominates() {
        let a = tall_well_conditioned::<f64>(3, 10, 4);
        for j in 0..4 {
            assert!(a[(j, j)].abs() > 0.8);
        }
    }

    #[test]
    #[should_panic(expected = "rows >= cols")]
    fn tall_shape_checked() {
        let _ = tall_well_conditioned::<f64>(0, 2, 3);
    }
}
