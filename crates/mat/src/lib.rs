//! Dense-matrix substrate for the `ata` workspace.
//!
//! This crate provides the storage and view types every other crate builds
//! on:
//!
//! * [`Scalar`] — the element abstraction (implemented by `f32`, `f64` and
//!   the op-counting [`tracked::Tracked`] type used to *measure* flop
//!   counts of the algorithms rather than trusting closed-form recurrences);
//! * [`Matrix`] — an owned, row-major dense matrix;
//! * [`MatRef`] / [`MatMut`] — borrowed, possibly strided views supporting
//!   the quadrant / strip splits that the recursive algorithms of the paper
//!   are built from (§3.1 of Arrigoni et al., ICPP 2021);
//! * [`SymPacked`] — packed lower-triangular storage for symmetric
//!   matrices, used both to halve memory for `A^T A` results and as the
//!   wire format of the distributed algorithm (§4.3.1);
//! * [`mod@reference`] — textbook `O(n^3)` implementations used as correctness
//!   oracles throughout the workspace;
//! * [`gen`] — seeded random workload generation;
//! * [`io`] — CSV and binary matrix files.
//!
//! Everything is row-major. Views carry an explicit row stride so that a
//! sub-block of a matrix is itself a view without copying — the property
//! that makes the recursion of AtA allocation-free outside the Strassen
//! arena.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod dense;
pub mod gen;
pub mod io;
pub mod ops;
pub mod packed;
pub mod reference;
pub mod scalar;
pub mod tracked;
pub mod view;

pub use dense::Matrix;
pub use packed::SymPacked;
pub use scalar::Scalar;
pub use view::{MatMut, MatRef};

/// Ceiling of `x / 2`; the paper's `m1 = ⌈m/2⌉` block split (§3.3 rounds
/// *up* when halving odd dimensions).
#[inline]
pub const fn half_up(x: usize) -> usize {
    x.div_ceil(2)
}

/// Floor of `x / 2`; the paper's `m2 = ⌊m/2⌋`.
#[inline]
pub const fn half_down(x: usize) -> usize {
    x / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_split_evenly() {
        for x in 0..100 {
            assert_eq!(half_up(x) + half_down(x), x);
            assert!(half_up(x) >= half_down(x));
            assert!(half_up(x) - half_down(x) <= 1);
        }
    }

    #[test]
    fn halves_match_paper_examples() {
        assert_eq!(half_up(5), 3);
        assert_eq!(half_down(5), 2);
        assert_eq!(half_up(4), 2);
        assert_eq!(half_down(4), 2);
        assert_eq!(half_up(1), 1);
        assert_eq!(half_down(1), 0);
    }
}
