//! An op-counting scalar for *measuring* flop counts.
//!
//! The paper's complexity claims (Eq. 3: AtA needs `2/3` of Strassen's
//! multiplications, i.e. `14/3 n^(log2 7)` flops; §3.2: Strassen performs
//! 18 block additions per level, AtA only needs 16-equivalent work) are
//! verified in this workspace by actually *running* the algorithms on
//! [`Tracked`] elements and reading the thread-local operation counters —
//! not by re-deriving recurrences on paper.
//!
//! `Tracked` wraps an `f64` and increments per-thread counters on every
//! arithmetic operation. Counters are per-thread, so parallel algorithms
//! must be counted on a single thread (all counting tests do).

use crate::Scalar;
use std::cell::Cell;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

thread_local! {
    static ADDS: Cell<u64> = const { Cell::new(0) };
    static SUBS: Cell<u64> = const { Cell::new(0) };
    static MULS: Cell<u64> = const { Cell::new(0) };
    static NEGS: Cell<u64> = const { Cell::new(0) };
}

/// Snapshot of the thread-local operation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// Number of scalar additions.
    pub adds: u64,
    /// Number of scalar subtractions.
    pub subs: u64,
    /// Number of scalar multiplications.
    pub muls: u64,
    /// Number of scalar negations.
    pub negs: u64,
}

impl OpCounts {
    /// Total floating-point operations (flops) in the classical sense.
    pub fn total(&self) -> u64 {
        self.adds + self.subs + self.muls + self.negs
    }

    /// Additive operations (`adds + subs`), the paper's "matrix sums" cost.
    pub fn additive(&self) -> u64 {
        self.adds + self.subs
    }
}

/// Reset this thread's counters to zero.
pub fn reset() {
    ADDS.with(|c| c.set(0));
    SUBS.with(|c| c.set(0));
    MULS.with(|c| c.set(0));
    NEGS.with(|c| c.set(0));
}

/// Read this thread's counters.
pub fn counts() -> OpCounts {
    OpCounts {
        adds: ADDS.with(Cell::get),
        subs: SUBS.with(Cell::get),
        muls: MULS.with(Cell::get),
        negs: NEGS.with(Cell::get),
    }
}

/// Run `f` with fresh counters and return `(result, counts)`.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, OpCounts) {
    reset();
    let r = f();
    (r, counts())
}

/// `f64` wrapper whose arithmetic increments thread-local counters.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Tracked(pub f64);

impl std::fmt::Display for Tracked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl Add for Tracked {
    type Output = Tracked;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        ADDS.with(|c| c.set(c.get() + 1));
        Tracked(self.0 + rhs.0)
    }
}

impl Sub for Tracked {
    type Output = Tracked;
    #[allow(clippy::suspicious_arithmetic_impl)] // the + increments the op counter
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        SUBS.with(|c| c.set(c.get() + 1));
        Tracked(self.0 - rhs.0)
    }
}

impl Mul for Tracked {
    type Output = Tracked;
    #[allow(clippy::suspicious_arithmetic_impl)] // the + increments the op counter
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        MULS.with(|c| c.set(c.get() + 1));
        Tracked(self.0 * rhs.0)
    }
}

impl Neg for Tracked {
    type Output = Tracked;
    #[inline]
    fn neg(self) -> Self {
        NEGS.with(|c| c.set(c.get() + 1));
        Tracked(-self.0)
    }
}

impl AddAssign for Tracked {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Tracked {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Tracked {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Tracked {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Tracked(0.0), |a, b| a + b)
    }
}

impl Scalar for Tracked {
    const ZERO: Self = Tracked(0.0);
    const ONE: Self = Tracked(1.0);
    const NEG_ONE: Self = Tracked(-1.0);
    const NAME: &'static str = "tracked";

    /// Exact-op semantics: counts one multiplication and one addition and
    /// computes the *unfused* `self * a + b`, so results (and measured
    /// flop counts) are bit-identical whether a kernel uses `mul_add`
    /// chains — as the packed microkernel engine does — or separate
    /// `*`/`+` operations like the reference loops.
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        MULS.with(|c| c.set(c.get() + 1));
        ADDS.with(|c| c.set(c.get() + 1));
        Tracked(self.0 * a.0 + b.0)
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        Tracked(x)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self.0
    }

    #[inline]
    fn epsilon() -> f64 {
        f64::EPSILON
    }

    #[inline]
    fn abs(self) -> Self {
        // Not counted: |x| is bookkeeping (norms, comparisons), never part
        // of the multiplication algorithms whose cost we measure.
        Tracked(self.0.abs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{reference, Matrix};

    #[test]
    fn counts_individual_ops() {
        let (_, c) = measure(|| {
            let a = Tracked(2.0);
            let b = Tracked(3.0);
            let _ = a + b;
            let _ = a - b;
            let _ = a * b;
            let _ = -a;
            let mut x = a;
            x += b;
            x -= b;
            x *= b;
        });
        assert_eq!(
            c,
            OpCounts {
                adds: 2,
                subs: 2,
                muls: 2,
                negs: 1
            }
        );
        assert_eq!(c.total(), 7);
        assert_eq!(c.additive(), 4);
    }

    #[test]
    fn reset_clears() {
        let _ = Tracked(1.0) + Tracked(1.0);
        reset();
        assert_eq!(counts(), OpCounts::default());
    }

    #[test]
    fn naive_gemm_tn_flop_count_is_exact() {
        // C (n x k) += A^T B with A: m x n, B: m x k does m*n*k muls and
        // m*n*k adds (accumulator) plus n*k muls (alpha) and n*k adds.
        let (m, n, k) = (4, 3, 5);
        let a = Matrix::<Tracked>::from_fn(m, n, |i, j| Tracked((i + j) as f64));
        let b = Matrix::<Tracked>::from_fn(m, k, |i, j| Tracked((i * j) as f64));
        let mut c = Matrix::<Tracked>::zeros(n, k);
        let (_, ops) = measure(|| {
            reference::gemm_tn(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut());
        });
        assert_eq!(ops.muls as usize, m * n * k + n * k);
        assert_eq!(ops.adds as usize, m * n * k + n * k);
    }

    #[test]
    fn syrk_counts_roughly_half_of_gemm() {
        let (m, n) = (6, 8);
        let a = Matrix::<Tracked>::from_fn(m, n, |i, j| Tracked((i + 2 * j) as f64));
        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, syrk_ops) = measure(|| {
            reference::syrk_ln(Tracked(1.0), a.as_ref(), &mut c.as_mut());
        });
        let mut c2 = Matrix::<Tracked>::zeros(n, n);
        let (_, gemm_ops) = measure(|| {
            reference::gemm_tn(Tracked(1.0), a.as_ref(), a.as_ref(), &mut c2.as_mut());
        });
        // lower triangle has n(n+1)/2 of n^2 entries.
        let expect = (n * (n + 1) / 2) as f64 / (n * n) as f64;
        let ratio = syrk_ops.muls as f64 / gemm_ops.muls as f64;
        assert!((ratio - expect).abs() < 0.01, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn values_track_f64_semantics() {
        let a = Tracked(0.5);
        let b = Tracked(0.25);
        assert_eq!((a * b).to_f64(), 0.125);
        assert_eq!(Scalar::mul_add(a, b, Tracked(1.0)).to_f64(), 1.125);
        assert_eq!(Tracked::from_f64(2.0).to_f64(), 2.0);
    }
}
