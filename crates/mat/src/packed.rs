//! Packed lower-triangular storage for symmetric matrices.
//!
//! The product `C = A^T A` is symmetric, so AtA only ever computes its
//! lower triangle (§3.1). `SymPacked` stores exactly those `n(n+1)/2`
//! entries row by row: element `(i, j)` with `i >= j` lives at index
//! `i(i+1)/2 + j`.
//!
//! The distributed algorithm also uses this layout as its wire format:
//! "we encode the sub-matrices resulting from A^T A operations as packed
//! lower triangular matrices" (§4.3.1), which is what drives the
//! `n(n+2)/2` bandwidth term of Proposition 4.2.

use crate::{Matrix, Scalar};

/// Symmetric `n x n` matrix stored as its packed lower triangle.
#[derive(Clone, Debug, PartialEq)]
pub struct SymPacked<T> {
    data: Vec<T>,
    n: usize,
}

/// Number of stored entries for an `n x n` packed lower triangle.
#[inline]
pub const fn packed_len(n: usize) -> usize {
    n * (n + 1) / 2
}

impl<T: Scalar> SymPacked<T> {
    /// Zero-initialized packed matrix of order `n`.
    pub fn zeros(n: usize) -> Self {
        Self {
            data: vec![T::ZERO; packed_len(n)],
            n,
        }
    }

    /// Wrap an existing packed buffer.
    ///
    /// # Panics
    /// If `data.len() != n(n+1)/2`.
    pub fn from_vec(data: Vec<T>, n: usize) -> Self {
        assert_eq!(
            data.len(),
            packed_len(n),
            "packed length {} != n(n+1)/2 for n={n}",
            data.len()
        );
        Self { data, n }
    }

    /// Extract the lower triangle of a square matrix.
    ///
    /// # Panics
    /// If `full` is not square.
    pub fn from_lower(full: &Matrix<T>) -> Self {
        assert_eq!(
            full.rows(),
            full.cols(),
            "from_lower requires a square matrix"
        );
        let n = full.rows();
        let mut data = Vec::with_capacity(packed_len(n));
        for i in 0..n {
            data.extend_from_slice(&full.row(i)[..=i]);
        }
        Self { data, n }
    }

    /// Matrix order.
    #[inline]
    pub fn order(&self) -> usize {
        self.n
    }

    /// Stored entry count (`n(n+1)/2`).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when `n == 0`.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Flat packed storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable flat packed storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the packed buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Symmetric element access: `get(i, j) == get(j, i)`.
    ///
    /// # Panics
    /// On out-of-bounds indices.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> T {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of bounds for order {}",
            self.n
        );
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        self.data[r * (r + 1) / 2 + c]
    }

    /// Write the lower-triangle element `(i, j)`, `i >= j`.
    ///
    /// # Panics
    /// If `i < j` (the strictly-upper part is not stored) or out of bounds.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: T) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of bounds for order {}",
            self.n
        );
        assert!(i >= j, "set({i},{j}): only the lower triangle is stored");
        self.data[i * (i + 1) / 2 + j] = v;
    }

    /// Accumulate `v` onto element `(i, j)`, `i >= j`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, v: T) {
        assert!(
            i < self.n && j < self.n,
            "index ({i},{j}) out of bounds for order {}",
            self.n
        );
        assert!(i >= j, "add({i},{j}): only the lower triangle is stored");
        self.data[i * (i + 1) / 2 + j] += v;
    }

    /// Expand to a full symmetric [`Matrix`].
    pub fn to_full(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.n, self.n);
        for i in 0..self.n {
            for j in 0..=i {
                let v = self.data[i * (i + 1) / 2 + j];
                out[(i, j)] = v;
                out[(j, i)] = v;
            }
        }
        out
    }

    /// Elementwise `self += other`, the gather-side reduction of AtA-D.
    ///
    /// # Panics
    /// If orders differ.
    pub fn add_assign(&mut self, other: &SymPacked<T>) {
        assert_eq!(self.n, other.n, "add_assign order mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_formula() {
        assert_eq!(packed_len(0), 0);
        assert_eq!(packed_len(1), 1);
        assert_eq!(packed_len(4), 10);
        assert_eq!(packed_len(100), 5050);
    }

    #[test]
    fn roundtrip_full_packed_full() {
        let mut full = Matrix::from_fn(5, 5, |i, j| (i * 5 + j) as f64);
        full.mirror_lower_to_upper();
        let p = SymPacked::from_lower(&full);
        assert_eq!(p.len(), packed_len(5));
        let back = p.to_full();
        assert_eq!(full.max_abs_diff(&back), 0.0);
    }

    #[test]
    fn symmetric_get() {
        let mut p = SymPacked::zeros(3);
        p.set(2, 0, 7.0f64);
        assert_eq!(p.get(2, 0), 7.0);
        assert_eq!(p.get(0, 2), 7.0);
        p.add(2, 0, 1.0);
        assert_eq!(p.get(0, 2), 8.0);
    }

    #[test]
    #[should_panic(expected = "lower triangle")]
    fn set_upper_panics() {
        let mut p = SymPacked::<f64>::zeros(3);
        p.set(0, 2, 1.0);
    }

    #[test]
    fn add_assign_reduces() {
        let mut a = SymPacked::from_vec(vec![1.0f64, 2.0, 3.0], 2);
        let b = SymPacked::from_vec(vec![10.0f64, 20.0, 30.0], 2);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn wire_size_matches_prop_4_2_term() {
        // Prop 4.2 counts n(n+2)/2 words for the packed result of a child of
        // order n/2... sanity: packed order-n payload is ~n^2/2 words.
        let n = 64;
        assert!(packed_len(n) * 2 <= n * (n + 2));
        assert!(packed_len(n) * 2 >= n * n);
    }
}
