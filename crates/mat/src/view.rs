//! Borrowed matrix views with explicit row strides.
//!
//! [`MatRef`] and [`MatMut`] are the workhorses of every recursive
//! algorithm in the workspace: the paper's quadrant split (Eq. 1) and
//! vertical/horizontal tiling (Fig. 2) are zero-copy re-interpretations of
//! an existing buffer, expressed here as view splits.
//!
//! # Safety model
//!
//! Views store a raw pointer plus `(rows, cols, row_stride)` and a lifetime
//! marker. All public constructors check that every addressable element
//! `(i, j)` (`i < rows`, `j < cols`, flat index `i * row_stride + j`) lies
//! inside the backing slice. Splitting a `MatMut` produces views over
//! *disjoint* index sets (different row ranges, or different column ranges
//! of the same rows), so handing out several `MatMut`s derived from one
//! parent is sound even though their address ranges interleave — exactly
//! the guarantee the embarrassingly-parallel AtA-S scheduler relies on
//! (§4.2.1: "each thread writes on a different and disjoint memory
//! location").

use crate::Scalar;
use std::marker::PhantomData;

/// Immutable view of an `rows x cols` row-major block with row stride
/// `row_stride >= cols` (columns are always contiguous).
#[derive(Clone, Copy)]
pub struct MatRef<'a, T> {
    ptr: *const T,
    rows: usize,
    cols: usize,
    row_stride: usize,
    _marker: PhantomData<&'a T>,
}

// SAFETY: a MatRef is semantically a shared reference to its elements,
// so it may move between threads whenever `&T` could (`T: Sync`).
unsafe impl<T: Sync> Send for MatRef<'_, T> {}
// SAFETY: sharing a MatRef across threads only ever hands out `&T`
// reads, which `T: Sync` makes sound.
unsafe impl<T: Sync> Sync for MatRef<'_, T> {}

/// Mutable view of an `rows x cols` row-major block with row stride
/// `row_stride >= cols`.
pub struct MatMut<'a, T> {
    ptr: *mut T,
    rows: usize,
    cols: usize,
    row_stride: usize,
    _marker: PhantomData<&'a mut T>,
}

// SAFETY: a MatMut is semantically a unique reference to its elements;
// moving it to another thread moves exclusive access with it, exactly
// as for `&mut T` (`T: Send`).
unsafe impl<T: Send> Send for MatMut<'_, T> {}
// SAFETY: a shared `&MatMut` only exposes read access to the elements
// (all mutation requires `&mut self`), so `T: Sync` suffices.
unsafe impl<T: Sync> Sync for MatMut<'_, T> {}

#[inline]
fn check_dims(len: usize, rows: usize, cols: usize, row_stride: usize) {
    assert!(
        row_stride >= cols || rows <= 1,
        "row_stride ({row_stride}) must be >= cols ({cols})"
    );
    if rows > 0 && cols > 0 {
        let last = (rows - 1)
            .checked_mul(row_stride)
            .and_then(|x| x.checked_add(cols))
            .expect("matrix extent overflows usize");
        assert!(
            last <= len,
            "view of {rows}x{cols} (stride {row_stride}) needs {last} elements, slice has {len}"
        );
    }
}

impl<'a, T> MatRef<'a, T> {
    /// View over a contiguous row-major slice (`row_stride == cols`).
    ///
    /// # Panics
    /// If `data.len() < rows * cols`.
    #[inline]
    pub fn from_slice(data: &'a [T], rows: usize, cols: usize) -> Self {
        Self::from_slice_strided(data, rows, cols, cols)
    }

    /// View with an explicit row stride.
    ///
    /// # Panics
    /// If the last addressable element would fall outside `data`.
    #[inline]
    pub fn from_slice_strided(data: &'a [T], rows: usize, cols: usize, row_stride: usize) -> Self {
        check_dims(data.len(), rows, cols, row_stride);
        Self {
            ptr: data.as_ptr(),
            rows,
            cols,
            row_stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between the starts of consecutive rows.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the view holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Element `(i, j)`.
    ///
    /// # Panics
    /// On out-of-bounds indices (debug and release).
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: bounds checked above; constructor validated the extent.
        unsafe { &*self.ptr.add(i * self.row_stride + j) }
    }

    /// Row `i` as a contiguous slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [T] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        // SAFETY: row i spans [i*stride, i*stride + cols) which is in bounds.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.row_stride), self.cols) }
    }

    /// Sub-block `rows r0..r1`, `cols c0..c1` (half-open).
    ///
    /// # Panics
    /// If the ranges are not ordered or exceed the view.
    #[inline]
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatRef<'a, T> {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} invalid for {} rows",
            self.rows
        );
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "col range {c0}..{c1} invalid for {} cols",
            self.cols
        );
        MatRef {
            // SAFETY: offset stays within the validated extent.
            ptr: unsafe { self.ptr.add(r0 * self.row_stride + c0) },
            rows: r1 - r0,
            cols: c1 - c0,
            row_stride: self.row_stride,
            _marker: PhantomData,
        }
    }

    /// The paper's quadrant split (Eq. 1): `m1 = ⌈m/2⌉`, `n1 = ⌈n/2⌉`.
    /// Returns `(A11, A12, A21, A22)`.
    #[inline]
    pub fn quad_split(&self) -> (MatRef<'a, T>, MatRef<'a, T>, MatRef<'a, T>, MatRef<'a, T>) {
        let m1 = crate::half_up(self.rows);
        let n1 = crate::half_up(self.cols);
        (
            self.block(0, m1, 0, n1),
            self.block(0, m1, n1, self.cols),
            self.block(m1, self.rows, 0, n1),
            self.block(m1, self.rows, n1, self.cols),
        )
    }

    /// Left/right column strips split at `c` (Fig. 2's vertical tiling).
    #[inline]
    pub fn split_at_col(&self, c: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        (
            self.block(0, self.rows, 0, c),
            self.block(0, self.rows, c, self.cols),
        )
    }

    /// Top/bottom row strips split at `r` (Fig. 2's horizontal tiling).
    #[inline]
    pub fn split_at_row(&self, r: usize) -> (MatRef<'a, T>, MatRef<'a, T>) {
        (
            self.block(0, r, 0, self.cols),
            self.block(r, self.rows, 0, self.cols),
        )
    }
}

impl<'a, T: Scalar> MatRef<'a, T> {
    /// Copy the view into an owned [`crate::Matrix`].
    pub fn to_matrix(&self) -> crate::Matrix<T> {
        let mut out = crate::Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            out.row_mut(i).copy_from_slice(self.row(i));
        }
        out
    }

    /// Max-norm of the view.
    pub fn max_abs(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for v in self.row(i) {
                m = m.max(v.abs().to_f64());
            }
        }
        m
    }

    /// Frobenius norm of the view (accumulated in `f64`).
    pub fn frobenius(&self) -> f64 {
        let mut acc = 0.0f64;
        for i in 0..self.rows {
            for v in self.row(i) {
                let x = v.to_f64();
                acc += x * x;
            }
        }
        acc.sqrt()
    }
}

impl<'a, T> MatMut<'a, T> {
    /// Mutable view over a contiguous row-major slice.
    ///
    /// # Panics
    /// If `data.len() < rows * cols`.
    #[inline]
    pub fn from_slice(data: &'a mut [T], rows: usize, cols: usize) -> Self {
        Self::from_slice_strided(data, rows, cols, cols)
    }

    /// Mutable view with an explicit row stride.
    ///
    /// # Panics
    /// If the last addressable element would fall outside `data`.
    #[inline]
    pub fn from_slice_strided(
        data: &'a mut [T],
        rows: usize,
        cols: usize,
        row_stride: usize,
    ) -> Self {
        check_dims(data.len(), rows, cols, row_stride);
        Self {
            ptr: data.as_mut_ptr(),
            rows,
            cols,
            row_stride,
            _marker: PhantomData,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance in elements between the starts of consecutive rows.
    #[inline]
    pub fn row_stride(&self) -> usize {
        self.row_stride
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the view holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0 || self.cols == 0
    }

    /// Immutable snapshot of this view (shares the borrow).
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            _marker: PhantomData,
        }
    }

    /// Consume the unique view into a shared one with the full lifetime
    /// (used to hand freshly-written workspace slots to recursive calls).
    #[inline]
    pub fn into_ref(self) -> MatRef<'a, T> {
        MatRef {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            _marker: PhantomData,
        }
    }

    /// Reborrow mutably with a shorter lifetime (needed to split a view
    /// repeatedly inside a recursion without consuming it).
    #[inline]
    pub fn rb_mut(&mut self) -> MatMut<'_, T> {
        MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: self.cols,
            row_stride: self.row_stride,
            _marker: PhantomData,
        }
    }

    /// Shared reference to element `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: bounds checked; extent validated by constructor.
        unsafe { &*self.ptr.add(i * self.row_stride + j) }
    }

    /// Mutable reference to element `(i, j)`.
    #[inline]
    pub fn at_mut(&mut self, i: usize, j: usize) -> &mut T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        // SAFETY: bounds checked; extent validated by constructor.
        unsafe { &mut *self.ptr.add(i * self.row_stride + j) }
    }

    /// Row `i` as a contiguous mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        // SAFETY: row i spans [i*stride, i*stride + cols) which is in bounds
        // and uniquely borrowed through self.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(i * self.row_stride), self.cols) }
    }

    /// Row `i` as a contiguous shared slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(
            i < self.rows,
            "row {i} out of bounds for {} rows",
            self.rows
        );
        // SAFETY: as above, shared.
        unsafe { std::slice::from_raw_parts(self.ptr.add(i * self.row_stride), self.cols) }
    }

    /// Consume the view and return a sub-block (rows `r0..r1`, cols
    /// `c0..c1`). Use [`Self::rb_mut`] first to keep the parent.
    ///
    /// # Panics
    /// If the ranges are not ordered or exceed the view.
    #[inline]
    pub fn into_block(self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatMut<'a, T> {
        assert!(
            r0 <= r1 && r1 <= self.rows,
            "row range {r0}..{r1} invalid for {} rows",
            self.rows
        );
        assert!(
            c0 <= c1 && c1 <= self.cols,
            "col range {c0}..{c1} invalid for {} cols",
            self.cols
        );
        MatMut {
            // SAFETY: offset stays within the validated extent.
            ptr: unsafe { self.ptr.add(r0 * self.row_stride + c0) },
            rows: r1 - r0,
            cols: c1 - c0,
            row_stride: self.row_stride,
            _marker: PhantomData,
        }
    }

    /// Short-lived sub-block without consuming the parent.
    #[inline]
    pub fn block_mut(&mut self, r0: usize, r1: usize, c0: usize, c1: usize) -> MatMut<'_, T> {
        self.rb_mut().into_block(r0, r1, c0, c1)
    }

    /// Split into top (`0..r`) and bottom (`r..rows`) views.
    ///
    /// The two views cover disjoint row ranges, so handing them to
    /// different threads is sound.
    #[inline]
    pub fn split_at_row_mut(self, r: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(
            r <= self.rows,
            "split row {r} out of bounds for {} rows",
            self.rows
        );
        let top = MatMut {
            ptr: self.ptr,
            rows: r,
            cols: self.cols,
            row_stride: self.row_stride,
            _marker: PhantomData,
        };
        let bot = MatMut {
            // SAFETY: r <= rows so the offset is within the extent.
            ptr: unsafe { self.ptr.add(r * self.row_stride) },
            rows: self.rows - r,
            cols: self.cols,
            row_stride: self.row_stride,
            _marker: PhantomData,
        };
        (top, bot)
    }

    /// Split into left (`0..c`) and right (`c..cols`) views.
    ///
    /// The views interleave in memory but address disjoint element sets.
    #[inline]
    pub fn split_at_col_mut(self, c: usize) -> (MatMut<'a, T>, MatMut<'a, T>) {
        assert!(
            c <= self.cols,
            "split col {c} out of bounds for {} cols",
            self.cols
        );
        let left = MatMut {
            ptr: self.ptr,
            rows: self.rows,
            cols: c,
            row_stride: self.row_stride,
            _marker: PhantomData,
        };
        let right = MatMut {
            // SAFETY: c <= cols <= row_stride keeps the pointer in the extent.
            ptr: unsafe { self.ptr.add(c) },
            rows: self.rows,
            cols: self.cols - c,
            row_stride: self.row_stride,
            _marker: PhantomData,
        };
        (left, right)
    }

    /// Quadrant split at `(⌈m/2⌉, ⌈n/2⌉)` returning
    /// `(C11, C12, C21, C22)` — the mutable counterpart of
    /// [`MatRef::quad_split`].
    #[inline]
    pub fn quad_split_mut(self) -> (MatMut<'a, T>, MatMut<'a, T>, MatMut<'a, T>, MatMut<'a, T>) {
        let m1 = crate::half_up(self.rows);
        let n1 = crate::half_up(self.cols);
        let (top, bot) = self.split_at_row_mut(m1);
        let (c11, c12) = top.split_at_col_mut(n1);
        let (c21, c22) = bot.split_at_col_mut(n1);
        (c11, c12, c21, c22)
    }
}

impl<'a, T: Scalar> MatMut<'a, T> {
    /// Set every element to zero.
    pub fn fill_zero(&mut self) {
        for i in 0..self.rows {
            self.row_mut(i).fill(T::ZERO);
        }
    }

    /// Overwrite this view with the contents of `src`.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn copy_from(&mut self, src: MatRef<'_, T>) {
        assert_eq!(self.shape(), src.shape(), "copy_from shape mismatch");
        for i in 0..self.rows {
            self.row_mut(i).copy_from_slice(src.row(i));
        }
    }
}

impl<T> std::ops::Index<(usize, usize)> for MatRef<'_, T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        self.at(i, j)
    }
}

impl<T> std::ops::Index<(usize, usize)> for MatMut<'_, T> {
    type Output = T;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        self.at(i, j)
    }
}

impl<T> std::ops::IndexMut<(usize, usize)> for MatMut<'_, T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        self.at_mut(i, j)
    }
}

impl<T: Scalar> std::fmt::Debug for MatRef<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "MatRef {}x{} (stride {})",
            self.rows, self.cols, self.row_stride
        )?;
        for i in 0..self.rows.min(8) {
            write!(f, " [")?;
            for j in 0..self.cols.min(8) {
                write!(f, " {:>10.4}", self.at(i, j))?;
            }
            writeln!(f, "{}]", if self.cols > 8 { " ..." } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

impl<T: Scalar> std::fmt::Debug for MatMut<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_ref().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f64> {
        (0..n).map(|x| x as f64).collect()
    }

    #[test]
    fn ref_indexing_and_rows() {
        let data = seq(12);
        let a = MatRef::from_slice(&data, 3, 4);
        assert_eq!(*a.at(0, 0), 0.0);
        assert_eq!(*a.at(2, 3), 11.0);
        assert_eq!(a.row(1), &[4.0, 5.0, 6.0, 7.0]);
        assert_eq!(a.shape(), (3, 4));
    }

    #[test]
    fn strided_view_skips_tail_of_rows() {
        let data = seq(12);
        // 3x2 view of the left half of a 3x4 buffer.
        let a = MatRef::from_slice_strided(&data, 3, 2, 4);
        assert_eq!(a.row(0), &[0.0, 1.0]);
        assert_eq!(a.row(2), &[8.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn oversized_view_panics() {
        let data = seq(10);
        let _ = MatRef::from_slice(&data, 3, 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let data = seq(12);
        let a = MatRef::from_slice(&data, 3, 4);
        let _ = a.at(3, 0);
    }

    #[test]
    fn quad_split_shapes_odd() {
        let data = seq(35);
        let a = MatRef::from_slice(&data, 5, 7);
        let (a11, a12, a21, a22) = a.quad_split();
        assert_eq!(a11.shape(), (3, 4));
        assert_eq!(a12.shape(), (3, 3));
        assert_eq!(a21.shape(), (2, 4));
        assert_eq!(a22.shape(), (2, 3));
        // A22 starts at row 3, col 4 -> element (0,0) = 3*7+4 = 25.
        assert_eq!(*a22.at(0, 0), 25.0);
    }

    #[test]
    fn quad_split_shapes_even() {
        let data = seq(16);
        let a = MatRef::from_slice(&data, 4, 4);
        let (a11, a12, a21, a22) = a.quad_split();
        for q in [&a11, &a12, &a21, &a22] {
            assert_eq!(q.shape(), (2, 2));
        }
        assert_eq!(*a12.at(1, 1), 7.0);
        assert_eq!(*a21.at(0, 0), 8.0);
    }

    #[test]
    fn mut_split_writes_disjoint_regions() {
        let mut data = vec![0.0f64; 16];
        let c = MatMut::from_slice(&mut data, 4, 4);
        let (mut c11, mut c12, mut c21, mut c22) = c.quad_split_mut();
        c11.fill_zero();
        *c11.at_mut(0, 0) = 1.0;
        *c12.at_mut(0, 0) = 2.0;
        *c21.at_mut(0, 0) = 3.0;
        *c22.at_mut(1, 1) = 4.0;
        assert_eq!(data[0], 1.0); // (0,0)
        assert_eq!(data[2], 2.0); // (0,2)
        assert_eq!(data[8], 3.0); // (2,0)
        assert_eq!(data[15], 4.0); // (3,3)
    }

    #[test]
    fn mut_col_split_covers_every_element_once() {
        let mut data = vec![0.0f64; 20];
        let c = MatMut::from_slice(&mut data, 4, 5);
        let (mut l, mut r) = c.split_at_col_mut(2);
        for i in 0..4 {
            for v in l.row_mut(i) {
                *v += 1.0;
            }
            for v in r.row_mut(i) {
                *v += 1.0;
            }
        }
        assert!(
            data.iter().all(|&x| x == 1.0),
            "each element written exactly once"
        );
    }

    #[test]
    fn reborrow_allows_repeated_splits() {
        let mut data = vec![0.0f64; 9];
        let mut c = MatMut::from_slice(&mut data, 3, 3);
        for step in 0..3 {
            // `block_mut` reborrows, so `c` stays usable on the next turn.
            let mut b = c.block_mut(step, step + 1, step, step + 1);
            *b.at_mut(0, 0) = step as f64 + 1.0;
        }
        assert_eq!(data[0], 1.0);
        assert_eq!(data[4], 2.0);
        assert_eq!(data[8], 3.0);
    }

    #[test]
    fn copy_from_and_to_matrix_roundtrip() {
        let data = seq(6);
        let a = MatRef::from_slice(&data, 2, 3);
        let m = a.to_matrix();
        let mut out = vec![0.0f64; 6];
        let mut v = MatMut::from_slice(&mut out, 2, 3);
        v.copy_from(m.as_ref());
        assert_eq!(out, data);
    }

    #[test]
    fn norms() {
        let data = vec![3.0f64, -4.0];
        let a = MatRef::from_slice(&data, 1, 2);
        assert_eq!(a.max_abs(), 4.0);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_views_are_fine() {
        let data: Vec<f64> = vec![];
        let a = MatRef::from_slice(&data, 0, 5);
        assert!(a.is_empty());
        let b = MatRef::from_slice(&data, 5, 0);
        assert!(b.is_empty());
        let (l, r) = b.split_at_col(0);
        assert!(l.is_empty() && r.is_empty());
    }
}
