//! Owned, row-major dense matrix.

use crate::{MatMut, MatRef, Scalar};
use std::ops::{Index, IndexMut};

/// Owned `rows x cols` matrix stored contiguously in row-major order.
///
/// `Matrix` is the storage type of the public API; all algorithms operate
/// on [`MatRef`]/[`MatMut`] views of it.
#[derive(Clone, PartialEq)]
pub struct Matrix<T> {
    data: Vec<T>,
    rows: usize,
    cols: usize,
}

impl<T: Scalar> Matrix<T> {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            data: vec![T::ZERO; rows * cols],
            rows,
            cols,
        }
    }

    /// Identity matrix (`n x n`).
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = T::ONE;
        }
        m
    }

    /// Build from a row-major vector.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(data: Vec<T>, rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "from_vec: length {} != {rows}x{cols}",
            data.len()
        );
        Self { data, rows, cols }
    }

    /// Build from a closure `f(i, j)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { data, rows, cols }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow as an immutable view.
    #[inline]
    pub fn as_ref(&self) -> MatRef<'_, T> {
        MatRef::from_slice(&self.data, self.rows, self.cols)
    }

    /// Borrow as a mutable view.
    #[inline]
    pub fn as_mut(&mut self) -> MatMut<'_, T> {
        MatMut::from_slice(&mut self.data, self.rows, self.cols)
    }

    /// Underlying row-major storage.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable underlying row-major storage.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume into the backing vector.
    #[inline]
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[T] {
        assert!(i < self.rows, "row {i} out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [T] {
        assert!(i < self.rows, "row {i} out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Freshly allocated transpose.
    pub fn transposed(&self) -> Matrix<T> {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// `max_ij |self - other|`, for test tolerances.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Same as [`Self::max_abs_diff`] but only over the lower triangle
    /// (`i >= j`); used to compare algorithms that, per the paper, leave the
    /// strictly-upper part untouched.
    pub fn max_abs_diff_lower(&self, other: &Matrix<T>) -> f64 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "max_abs_diff_lower shape mismatch"
        );
        let mut worst = 0.0f64;
        for i in 0..self.rows {
            for j in 0..=i.min(self.cols.saturating_sub(1)) {
                let d = (self[(i, j)].to_f64() - other[(i, j)].to_f64()).abs();
                worst = worst.max(d);
            }
        }
        worst
    }

    /// Copy the lower triangle onto the upper one, making the matrix
    /// symmetric. Used after AtA which only fills `i >= j` (§3.1).
    ///
    /// # Panics
    /// If the matrix is not square.
    pub fn mirror_lower_to_upper(&mut self) {
        assert_eq!(self.rows, self.cols, "mirror requires a square matrix");
        for i in 0..self.rows {
            for j in 0..i {
                let v = self[(i, j)];
                self[(j, i)] = v;
            }
        }
    }

    /// True if `|self[(i,j)] - self[(j,i)]| <= tol` for all pairs.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in 0..i {
                if (self[(i, j)].to_f64() - self[(j, i)].to_f64()).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Zero the strictly upper triangle (`i < j`).
    pub fn zero_strict_upper(&mut self) {
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                self[(i, j)] = T::ZERO;
            }
        }
    }

    /// Multiply every element by `s`.
    pub fn scale(&mut self, s: T) {
        for v in &mut self.data {
            *v *= s;
        }
    }
}

impl<T: Scalar> Index<(usize, usize)> for Matrix<T> {
    type Output = T;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl<T: Scalar> IndexMut<(usize, usize)> for Matrix<T> {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut T {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl<T: Scalar> std::fmt::Debug for Matrix<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_ref().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_identity_from_fn() {
        let z = Matrix::<f64>::zeros(2, 3);
        assert_eq!(z.as_slice(), &[0.0; 6]);
        let i = Matrix::<f64>::identity(3);
        assert_eq!(i[(1, 1)], 1.0);
        assert_eq!(i[(1, 2)], 0.0);
        let f = Matrix::from_fn(2, 2, |i, j| (10 * i + j) as f64);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 10.0, 11.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let att = a.transposed().transposed();
        assert_eq!(a.max_abs_diff(&att), 0.0);
        assert_eq!(a.transposed().shape(), (5, 3));
        assert_eq!(a.transposed()[(4, 2)], a[(2, 4)]);
    }

    #[test]
    fn mirror_makes_symmetric() {
        let mut c = Matrix::from_fn(4, 4, |i, j| if i >= j { (i * 4 + j) as f64 } else { -1.0 });
        assert!(!c.is_symmetric(0.0));
        c.mirror_lower_to_upper();
        assert!(c.is_symmetric(0.0));
        assert_eq!(c[(0, 3)], c[(3, 0)]);
    }

    #[test]
    fn lower_diff_ignores_upper_garbage() {
        let a = Matrix::from_fn(3, 3, |i, j| if i >= j { 1.0 } else { 42.0 });
        let b = Matrix::from_fn(3, 3, |i, j| if i >= j { 1.0 } else { -42.0 });
        assert_eq!(a.max_abs_diff_lower(&b), 0.0);
        assert!(a.max_abs_diff(&b) > 0.0);
    }

    #[test]
    fn scale_and_zero_upper() {
        let mut a = Matrix::from_fn(2, 2, |_, _| 2.0f32);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
        a.zero_strict_upper();
        assert_eq!(a.as_slice(), &[1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "from_vec")]
    fn from_vec_length_checked() {
        let _ = Matrix::from_vec(vec![1.0f64; 5], 2, 3);
    }
}
