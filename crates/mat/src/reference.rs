//! Textbook reference implementations used as correctness oracles.
//!
//! Every fast algorithm in the workspace is property-tested against these
//! `O(mnk)` triple loops. They are intentionally written in the most
//! obvious way possible — the oracle must be easy to audit.

use crate::{MatMut, MatRef, Matrix, Scalar};

/// `C += alpha * A^T B` (naive), the semantic contract of the paper's
/// `FastStrassen` and of the BLAS `?gemm` call in Algorithm 2.
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm_tn<T: Scalar>(alpha: T, a: MatRef<'_, T>, b: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "gemm_tn: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "gemm_tn: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    for i in 0..n {
        for j in 0..k {
            let mut acc = T::ZERO;
            for l in 0..m {
                acc += *a.at(l, i) * *b.at(l, j);
            }
            *c.at_mut(i, j) += alpha * acc;
        }
    }
}

/// Lower triangle of `C += alpha * A^T A` (naive), the contract of the
/// BLAS `?syrk` base case of Algorithm 1. Entries with `i < j` are left
/// untouched.
///
/// Shapes: `A: m x n`, `C: n x n`.
///
/// # Panics
/// On inconsistent shapes.
pub fn syrk_ln<T: Scalar>(alpha: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
    let (m, n) = a.shape();
    assert_eq!(
        c.shape(),
        (n, n),
        "syrk_ln: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    for i in 0..n {
        for j in 0..=i {
            let mut acc = T::ZERO;
            for l in 0..m {
                acc += *a.at(l, i) * *a.at(l, j);
            }
            *c.at_mut(i, j) += alpha * acc;
        }
    }
}

/// Full symmetric Gram matrix `A^T A` as an owned matrix (both triangles
/// filled) — the end-to-end oracle for the public API.
pub fn gram<T: Scalar>(a: MatRef<'_, T>) -> Matrix<T> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    syrk_ln(T::ONE, a, &mut c.as_mut());
    c.mirror_lower_to_upper();
    c
}

/// `C += alpha * A B` (naive, no transposition); used by the CAPS-like
/// baseline which multiplies untransposed operands.
///
/// Shapes: `A: m x k`, `B: k x n`, `C: m x n`.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm_nn<T: Scalar>(alpha: T, a: MatRef<'_, T>, b: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
    let (m, ka) = a.shape();
    let (kb, n) = b.shape();
    assert_eq!(ka, kb, "gemm_nn: inner dimensions differ ({ka} vs {kb})");
    assert_eq!(
        c.shape(),
        (m, n),
        "gemm_nn: C must be {m}x{n}, got {:?}",
        c.shape()
    );
    for i in 0..m {
        for j in 0..n {
            let mut acc = T::ZERO;
            for l in 0..ka {
                acc += *a.at(i, l) * *b.at(l, j);
            }
            *c.at_mut(i, j) += alpha * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_tn_known_values() {
        // A = [[1,2],[3,4],[5,6]] (3x2), B = [[1,0],[0,1],[1,1]] (3x2)
        let a = Matrix::from_vec(vec![1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2);
        let b = Matrix::from_vec(vec![1.0f64, 0.0, 0.0, 1.0, 1.0, 1.0], 3, 2);
        let mut c = Matrix::zeros(2, 2);
        gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
        // A^T B = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]] = [[6,8],[8,10]]
        assert_eq!(c.as_slice(), &[6.0, 8.0, 8.0, 10.0]);
    }

    #[test]
    fn gemm_tn_accumulates_and_scales() {
        let a = Matrix::from_vec(vec![1.0f64, 1.0], 2, 1); // 2x1
        let b = Matrix::from_vec(vec![2.0f64, 3.0], 2, 1); // 2x1
        let mut c = Matrix::from_vec(vec![100.0f64], 1, 1);
        gemm_tn(2.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
        assert_eq!(c[(0, 0)], 100.0 + 2.0 * 5.0);
    }

    #[test]
    fn syrk_matches_gemm_with_self_on_lower() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 * 0.5 - 2.0);
        let mut via_syrk = Matrix::zeros(3, 3);
        syrk_ln(1.5, a.as_ref(), &mut via_syrk.as_mut());
        let mut via_gemm = Matrix::zeros(3, 3);
        gemm_tn(1.5, a.as_ref(), a.as_ref(), &mut via_gemm.as_mut());
        assert!(via_syrk.max_abs_diff_lower(&via_gemm) < 1e-12);
        // Upper strictly triangle untouched (still zero).
        assert_eq!(via_syrk[(0, 2)], 0.0);
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let a = Matrix::from_fn(5, 4, |i, j| ((i + 2 * j) % 5) as f64 - 2.0);
        let g = gram(a.as_ref());
        assert!(g.is_symmetric(0.0));
        // Diagonal of a Gram matrix = squared column norms >= 0.
        for i in 0..4 {
            assert!(g[(i, i)] >= 0.0);
        }
    }

    #[test]
    fn gemm_nn_identity() {
        let a = Matrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64);
        let id = Matrix::identity(3);
        let mut c = Matrix::zeros(3, 3);
        gemm_nn(1.0, a.as_ref(), id.as_ref(), &mut c.as_mut());
        assert_eq!(c.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn empty_inner_dimension_is_noop() {
        let a = Matrix::<f64>::zeros(0, 3);
        let b = Matrix::<f64>::zeros(0, 2);
        let mut c = Matrix::from_fn(3, 2, |_, _| 7.0);
        gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
        assert!(c.as_slice().iter().all(|&x| x == 7.0));
    }
}
