//! The [`Scalar`] element abstraction.
//!
//! The paper's algorithms work "on any algebraic field" (§1); our kernels
//! are generic over this trait so that a single implementation serves
//! `f32`, `f64` and the instrumented [`crate::tracked::Tracked`] scalar
//! that counts floating-point operations at run time.

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// Element type of all matrices in the workspace.
///
/// The arithmetic super-traits let generic kernels use ordinary operators;
/// the associated constants and conversions support workload generation and
/// tolerance-based comparisons. Implementations must behave like a subfield
/// of the reals (the paper's algorithms assume commutativity only for the
/// symmetry argument `C12 = C21^T`).
pub trait Scalar:
    Copy
    + Send
    + Sync
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + Default
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + Sum
    + 'static
{
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Additive inverse of [`Self::ONE`]; lets kernels turn `±1` scalings
    /// into pure adds/subtracts (both a real micro-optimization and the
    /// reason measured flop counts match the paper's formulas exactly).
    const NEG_ONE: Self;

    /// Short type tag used in benchmark output (`"f32"`, `"f64"`, ...).
    const NAME: &'static str;

    /// Multiply-add `self * a + b` — the one operation the packed
    /// microkernel engine (`ata-kernels::micro`) issues per accumulator
    /// update.
    ///
    /// Contract: implementations must cost exactly one multiplication
    /// plus one addition in the workspace's operation accounting and
    /// round like the unfused expression, so kernels built on `mul_add`
    /// chains stay bit-identical (and measured-flop-identical) to the
    /// reference loops. The float impls deliberately stay unfused: a
    /// forced FMA instruction would change rounding *and* often defeat
    /// autovectorization on targets without vector FMA.
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    /// Conversion from `f64`, used by generators and scaling factors.
    fn from_f64(x: f64) -> Self;

    /// Lossy conversion to `f64`, used by norms and comparisons.
    fn to_f64(self) -> f64;

    /// Unit roundoff of the underlying format (used to derive test
    /// tolerances that scale with problem size).
    fn epsilon() -> f64;

    /// Absolute value.
    fn abs(self) -> Self;
}

impl Scalar for f32 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_ONE: Self = -1.0;
    const NAME: &'static str = "f32";

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        // Plain expression: lets LLVM vectorize; `f32::mul_add` would force
        // an FMA instruction per element and often defeats SIMD on targets
        // without vector FMA.
        self * a + b
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        x as f32
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }

    #[inline]
    fn epsilon() -> f64 {
        f32::EPSILON as f64
    }

    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;
    const ONE: Self = 1.0;
    const NEG_ONE: Self = -1.0;
    const NAME: &'static str = "f64";

    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }

    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self
    }

    #[inline]
    fn epsilon() -> f64 {
        f64::EPSILON
    }

    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axpy_generic<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    #[test]
    fn generic_kernels_work_for_both_precisions() {
        let x32 = [1.0f32, 2.0, 3.0];
        let mut y32 = [1.0f32; 3];
        axpy_generic(2.0f32, &x32, &mut y32);
        assert_eq!(y32, [3.0, 5.0, 7.0]);

        let x64 = [1.0f64, 2.0, 3.0];
        let mut y64 = [1.0f64; 3];
        axpy_generic(0.5f64, &x64, &mut y64);
        assert_eq!(y64, [1.5, 2.0, 2.5]);
    }

    #[test]
    fn constants_and_conversions() {
        assert_eq!(f64::from_f64(1.25), 1.25);
        assert_eq!(f32::from_f64(1.25), 1.25f32);
        assert_eq!(<f64 as Scalar>::ZERO + <f64 as Scalar>::ONE, 1.0);
        assert!(f32::epsilon() > f64::epsilon());
        assert_eq!((-2.0f64).abs(), 2.0);
        assert_eq!(Scalar::mul_add(2.0f64, 3.0, 4.0), 10.0);
    }

    #[test]
    fn names_are_distinct() {
        assert_eq!(<f32 as Scalar>::NAME, "f32");
        assert_eq!(<f64 as Scalar>::NAME, "f64");
    }
}
