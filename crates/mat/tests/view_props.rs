//! Property tests for the view layer: every split must partition the
//! index set exactly (no element lost, none duplicated) — the invariant
//! the embarrassingly-parallel scheduler's safety rests on.

use ata_mat::{gen, half_down, half_up, MatMut, Matrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn quad_split_partitions_every_element(m in 0usize..24, n in 0usize..24) {
        let a = Matrix::from_fn(m, n, |i, j| (i * n + j) as f64);
        let (a11, a12, a21, a22) = a.as_ref().quad_split();
        let (m1, n1) = (half_up(m), half_up(n));
        prop_assert_eq!(a11.shape(), (m1, n1));
        prop_assert_eq!(a12.shape(), (m1, half_down(n)));
        prop_assert_eq!(a21.shape(), (half_down(m), n1));
        prop_assert_eq!(a22.shape(), (half_down(m), half_down(n)));
        // Every element appears in exactly one quadrant with its value.
        let mut seen = vec![false; m * n];
        let mut visit = |q: ata_mat::MatRef<'_, f64>, r0: usize, c0: usize| {
            for i in 0..q.rows() {
                for j in 0..q.cols() {
                    let gi = r0 + i;
                    let gj = c0 + j;
                    assert_eq!(*q.at(i, j), (gi * n + gj) as f64);
                    assert!(!seen[gi * n + gj], "duplicate coverage");
                    seen[gi * n + gj] = true;
                }
            }
        };
        visit(a11, 0, 0);
        visit(a12, 0, n1);
        visit(a21, m1, 0);
        visit(a22, m1, n1);
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mut_splits_write_each_element_once(
        m in 1usize..20,
        n in 1usize..20,
        r in 0usize..20,
        c in 0usize..20,
    ) {
        let r = r.min(m);
        let c = c.min(n);
        let mut data = vec![0.0f64; m * n];
        {
            let v = MatMut::from_slice(&mut data, m, n);
            let (top, bot) = v.split_at_row_mut(r);
            for mut half in [top, bot] {
                let cc = c.min(half.cols());
                let (mut l, mut rgt) = half.rb_mut().split_at_col_mut(cc);
                for i in 0..l.rows() {
                    for x in l.row_mut(i) { *x += 1.0; }
                }
                for i in 0..rgt.rows() {
                    for x in rgt.row_mut(i) { *x += 1.0; }
                }
            }
        }
        prop_assert!(data.iter().all(|&x| x == 1.0), "each element written exactly once");
    }

    #[test]
    fn nested_blocks_compose(
        m in 2usize..24,
        n in 2usize..24,
        seed in 0u64..100,
    ) {
        let a = gen::standard::<f64>(seed, m, n);
        // block of a block == directly-indexed block.
        let outer = a.as_ref().block(1, m, 1, n);
        let inner = outer.block(0, outer.rows() / 2 + 1, 0, outer.cols() / 2 + 1);
        for i in 0..inner.rows() {
            for j in 0..inner.cols() {
                prop_assert_eq!(*inner.at(i, j), a[(i + 1, j + 1)]);
            }
        }
    }

    #[test]
    fn packed_get_is_symmetric(n in 1usize..32, seed in 0u64..100) {
        let a = gen::standard::<f64>(seed, n + 1, n);
        let g = ata_mat::reference::gram(a.as_ref());
        let p = ata_mat::SymPacked::from_lower(&g);
        for i in 0..n {
            for j in 0..n {
                prop_assert_eq!(p.get(i, j), p.get(j, i));
                prop_assert_eq!(p.get(i, j), g[(i, j)]);
            }
        }
    }

    #[test]
    fn transpose_is_involution(m in 0usize..16, n in 0usize..16, seed in 0u64..50) {
        let a = gen::standard::<f64>(seed, m, n);
        prop_assert_eq!(a.transposed().transposed().max_abs_diff(&a), 0.0);
    }

    #[test]
    fn csv_roundtrip_any_shape(m in 1usize..12, n in 1usize..12, seed in 0u64..50) {
        let a = gen::standard::<f64>(seed, m, n);
        let mut buf = Vec::new();
        ata_mat::io::write_csv(&a, &mut buf).expect("write");
        let back = ata_mat::io::read_csv::<f64>(&buf[..]).expect("read");
        prop_assert_eq!(a.max_abs_diff(&back), 0.0);
    }
}
