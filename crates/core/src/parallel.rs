//! AtA-S (Algorithm 3) — the shared-memory parallel algorithm.
//!
//! Phase 1 builds the [`SharedPlan`] task tree (§4.1); phase 2 hands each
//! thread its tasks. Because the plan's `C` regions are pairwise
//! disjoint by construction, the output buffer can be carved into one
//! independent `MatMut` per task and the threads run with **no
//! synchronization whatsoever** until the final join — the paper's
//! "perfect parallelism by preventing memory collisions" (§4.2.1).
//!
//! Each thread owns a private Strassen arena, sized once before the
//! parallel phase, and processes its task list sequentially with the
//! serial [`crate::serial`] routines ("each thread operates on the same
//! data throughout its entire lifespan", §4.2.1).

use crate::serial::{ata_into_with_kind, ata_workspace_elems, StrassenKind};
use crate::tasktree::{ComputeKind, SharedLeaf, SharedPlan};
use ata_kernels::CacheConfig;
use ata_mat::{MatMut, MatRef, Scalar};
use ata_strassen::ArenaPool;
use rayon::prelude::*;

/// Carve one disjoint `MatMut` per task out of `c`.
///
/// The regions come from [`SharedPlan`], whose construction guarantees
/// pairwise disjointness (property-tested in `tasktree`); a debug
/// assertion re-checks here.
fn carve_tasks<'c, T: Scalar>(
    c: &'c mut MatMut<'_, T>,
    tasks: &[SharedLeaf],
) -> Vec<MatMut<'c, T>> {
    #[cfg(debug_assertions)]
    for (i, t1) in tasks.iter().enumerate() {
        for t2 in &tasks[i + 1..] {
            debug_assert!(
                !t1.c.intersects(&t2.c),
                "shared plan produced overlapping regions: {t1:?} vs {t2:?}"
            );
        }
    }
    tasks
        .iter()
        .map(|t| {
            // SAFETY-BY-CONSTRUCTION: each block_mut reborrows `c`, and the
            // returned views address pairwise-disjoint element sets (checked
            // above), so extending their lifetimes to 'c is sound. We go
            // through `rb_mut`/`into_block` which performs the bounds
            // checks; the transmute-free way to keep all views alive at
            // once is to derive each from a fresh reborrow.
            let view = c.rb_mut().into_block(t.c.r0, t.c.r1, t.c.c0, t.c.c1);
            // SAFETY: the transmute only extends the view's lifetime from
            // the reborrow to 'c; the element sets are pairwise disjoint
            // (checked above), so the simultaneous unique views never
            // alias and `c` itself is not used while they live.
            unsafe { std::mem::transmute::<MatMut<'_, T>, MatMut<'c, T>>(view) }
        })
        .collect()
}

/// Lower triangle of `C += alpha * A^T A` computed by `threads`
/// cooperating workers (AtA-S, Algorithm 3).
///
/// Call inside a fixed-size rayon pool (`pool.install(..)`) to model a
/// specific core count; otherwise the global pool is used. `threads`
/// controls the *task decomposition* (the paper's fixed 16-thread setup
/// decouples task count from core count, §5.4).
///
/// # Panics
/// On inconsistent shapes or `threads == 0`.
pub fn ata_s<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    threads: usize,
    cfg: &CacheConfig,
) {
    ata_s_kind(alpha, a, c, threads, cfg, StrassenKind::Classic);
}

/// [`ata_s`] with an explicit product scheme for `A^T B` tasks and the
/// `C21` products inside `A^T A` tasks.
///
/// # Panics
/// On inconsistent shapes or `threads == 0`.
pub fn ata_s_kind<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    threads: usize,
    cfg: &CacheConfig,
    kind: StrassenKind,
) {
    assert!(threads > 0, "ata_s: threads must be positive");
    let plan = SharedPlan::build(a.cols(), threads);
    let arenas = ArenaPool::new();
    ata_s_planned(alpha, a, c, &plan, cfg, kind, &arenas);
}

/// Strassen-workspace requirement (elements) of one shared-plan task —
/// used to pre-warm arena caches so a plan's first execution is already
/// allocation-free.
pub fn task_workspace_elems(
    task: &SharedLeaf,
    m: usize,
    cfg: &CacheConfig,
    kind: StrassenKind,
) -> usize {
    match task.kind {
        ComputeKind::AtA => ata_workspace_elems(m, task.a_cols.1 - task.a_cols.0, cfg, kind),
        ComputeKind::AtB => kind.gemm_workspace_elems(
            m,
            task.a_cols.1 - task.a_cols.0,
            task.b_cols.1 - task.b_cols.0,
            cfg,
        ),
    }
}

/// Largest per-thread workspace requirement (elements) of a whole
/// [`SharedPlan`] on an `m`-row input: the arena one worker needs to
/// process any of its tasks without regrowth.
pub fn plan_workspace_elems(
    plan: &SharedPlan,
    m: usize,
    cfg: &CacheConfig,
    kind: StrassenKind,
) -> usize {
    plan.tasks
        .iter()
        .map(|t| task_workspace_elems(t, m, cfg, kind))
        .max()
        .unwrap_or(0)
}

/// Execute a prebuilt [`SharedPlan`] — the reusable core of AtA-S.
///
/// This is the execution half of the plan/execute split: the task tree
/// (phase 1 of Algorithm 3) was built once by [`SharedPlan::build`] and
/// can be replayed against many same-shape inputs. Worker arenas come
/// from `arenas` (checkout/return), so a warm [`ArenaPool`] makes
/// repeated executions allocation-free; the one-shot wrappers simply
/// pass an empty pool.
///
/// # Panics
/// If `plan` was built for a different `n` than `a.cols()`, or on
/// inconsistent shapes.
pub fn ata_s_planned<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    plan: &SharedPlan,
    cfg: &CacheConfig,
    kind: StrassenKind,
    arenas: &ArenaPool<T>,
) {
    let (m, n) = a.shape();
    assert_eq!(
        plan.n, n,
        "ata_s: plan built for n={} but A has {n} columns",
        plan.n
    );
    assert_eq!(
        c.shape(),
        (n, n),
        "ata_s: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 {
        return;
    }

    let views = carve_tasks(c, &plan.tasks);

    // Group (task, view) pairs by owning thread so each worker processes
    // its list sequentially with one private arena — mirroring the
    // paper's thread lifespan data reuse.
    let mut per_proc: Vec<Vec<(&SharedLeaf, MatMut<'_, T>)>> =
        (0..plan.procs).map(|_| Vec::new()).collect();
    for (task, view) in plan.tasks.iter().zip(views) {
        per_proc[task.proc_id].push((task, view));
    }

    per_proc.into_par_iter().for_each(|list| {
        let mut ws = arenas.checkout(0);
        for (task, mut view) in list {
            let a_left = a.block(0, m, task.a_cols.0, task.a_cols.1);
            match task.kind {
                ComputeKind::AtA => {
                    ata_into_with_kind(alpha, a_left, &mut view, cfg, kind, &mut ws);
                }
                ComputeKind::AtB => {
                    let b = a.block(0, m, task.b_cols.0, task.b_cols.1);
                    kind.gemm_into(alpha, a_left, b, &mut view, cfg, &mut ws);
                }
            }
        }
        arenas.give_back(ws);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_kernels::par::pool_with_threads;
    use ata_mat::{gen, reference, Matrix};

    fn check(m: usize, n: usize, threads: usize, words: usize) {
        let a = gen::standard::<f64>(m as u64 * 3 + n as u64 + threads as u64, m, n);
        let mut c = Matrix::zeros(n, n);
        ata_s(
            1.0,
            a.as_ref(),
            &mut c.as_mut(),
            threads,
            &CacheConfig::with_words(words),
        );
        let mut c_ref = Matrix::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
        let diff = c.max_abs_diff_lower(&c_ref);
        assert!(
            diff <= tol,
            "(m={m},n={n},P={threads}) AtA-S differs by {diff} > {tol}"
        );
        // Strict upper untouched.
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(c[(i, j)], 0.0, "upper ({i},{j}) touched");
            }
        }
    }

    #[test]
    fn matches_oracle_across_thread_counts() {
        for threads in [1usize, 2, 3, 4, 5, 8, 16] {
            check(48, 40, threads, 64);
        }
    }

    #[test]
    fn odd_sizes_and_tall_matrices() {
        check(37, 29, 4, 16);
        check(101, 17, 8, 16);
        check(16, 64, 6, 32);
    }

    #[test]
    fn tiny_matrix_many_threads() {
        check(3, 2, 16, 4);
        check(1, 1, 8, 4);
    }

    #[test]
    fn agrees_with_serial_ata() {
        let (m, n) = (52, 44);
        let a = gen::standard::<f64>(9, m, n);
        let cfg = CacheConfig::with_words(32);
        let mut c_par = Matrix::zeros(n, n);
        ata_s(1.0, a.as_ref(), &mut c_par.as_mut(), 8, &cfg);
        let mut c_ser = Matrix::zeros(n, n);
        crate::serial::ata_into(1.0, a.as_ref(), &mut c_ser.as_mut(), &cfg);
        // Different split orders -> tiny roundoff differences allowed.
        assert!(c_par.max_abs_diff_lower(&c_ser) < 1e-10);
    }

    #[test]
    fn runs_inside_fixed_pool() {
        let pool = pool_with_threads(3);
        let a = gen::standard::<f64>(5, 30, 24);
        let mut c = Matrix::zeros(24, 24);
        pool.install(|| {
            ata_s(
                1.0,
                a.as_ref(),
                &mut c.as_mut(),
                16,
                &CacheConfig::with_words(16),
            )
        });
        let mut c_ref = Matrix::zeros(24, 24);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff_lower(&c_ref) < 1e-10);
    }

    #[test]
    fn alpha_accumulates_onto_existing_c() {
        let (m, n) = (20, 18);
        let a = gen::standard::<f64>(11, m, n);
        let mut c = gen::standard::<f64>(12, n, n);
        c.zero_strict_upper();
        let mut c_ref = c.clone();
        ata_s(
            -0.5,
            a.as_ref(),
            &mut c.as_mut(),
            4,
            &CacheConfig::with_words(16),
        );
        reference::syrk_ln(-0.5, a.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff_lower(&c_ref) < 1e-10);
    }

    #[test]
    fn planned_execution_reuses_plan_and_arenas() {
        let (m, n, threads) = (40usize, 32usize, 4usize);
        let cfg = CacheConfig::with_words(32);
        let kind = StrassenKind::Classic;
        let plan = SharedPlan::build(n, threads);
        let arenas = ArenaPool::new();
        let need = plan_workspace_elems(&plan, m, &cfg, kind);
        arenas.warm(threads, need);
        for seed in 0..3u64 {
            let a = gen::standard::<f64>(seed, m, n);
            let mut c = Matrix::zeros(n, n);
            ata_s_planned(1.0, a.as_ref(), &mut c.as_mut(), &plan, &cfg, kind, &arenas);
            let mut c_ref = Matrix::zeros(n, n);
            reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
            assert!(c.max_abs_diff_lower(&c_ref) < 1e-10, "seed {seed}");
        }
        // Every checked-out arena came back, and none regrew: the warmed
        // capacity covered all executions.
        assert_eq!(arenas.cached(), threads);
        assert_eq!(arenas.cached_elems(), threads * need);
    }

    #[test]
    #[should_panic(expected = "plan built for n=16")]
    fn plan_shape_mismatch_rejected() {
        let plan = SharedPlan::build(16, 2);
        let a = gen::standard::<f64>(1, 8, 8);
        let mut c = Matrix::zeros(8, 8);
        ata_s_planned(
            1.0,
            a.as_ref(),
            &mut c.as_mut(),
            &plan,
            &CacheConfig::default(),
            StrassenKind::Classic,
            &ArenaPool::new(),
        );
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_rejected() {
        let a = Matrix::<f64>::zeros(2, 2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        ata_s(1.0, a.as_ref(), &mut c.as_mut(), 0, &CacheConfig::default());
    }
}
