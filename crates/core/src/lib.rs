//! AtA — Strassen-based multiplication of a matrix by its transpose.
//!
//! This crate is the primary contribution of Arrigoni, Maggioli, Massini
//! and Rodolà, *Efficiently Parallelizable Strassen-Based Multiplication
//! of a Matrix by its Transpose* (ICPP 2021), reproduced in Rust:
//!
//! * [`serial`] — Algorithm 1, the cache-oblivious recursion computing
//!   the lower triangle of `C = alpha * A^T A + C` with
//!   `2/3 n^(log2 7) + 1/3 n^2` multiplications;
//! * [`tasktree`] — the §4.1 scheduler that maps the recursion onto `P`
//!   parallel processes (both the shared and the distributed variants);
//! * [`parallel`] — AtA-S (Algorithm 3), the lock-free shared-memory
//!   algorithm;
//! * [`analysis`] — measured-flop validation of the paper's complexity
//!   claims and the effective-GFLOPs metric (Eq. 9).
//!
//! The distributed algorithm AtA-D (Algorithm 4) lives in the `ata-dist`
//! crate, on top of the `ata-mpisim` message-passing substrate.
//!
//! # Quickstart
//!
//! ```
//! use ata_core::gram;
//! use ata_mat::Matrix;
//!
//! // A is 4 x 3; G = A^T A is 3 x 3, symmetric.
//! let a = Matrix::<f64>::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
//! let g = gram(a.as_ref());
//! assert_eq!(g.shape(), (3, 3));
//! assert!(g.is_symmetric(0.0));
//! // Entry (0, 1) is the dot product of columns 0 and 1.
//! let dot01: f64 = (0..4).map(|i| a[(i, 0)] * a[(i, 1)]).sum();
//! assert_eq!(g[(0, 1)], dot01);
//! ```

#![deny(unsafe_op_in_unsafe_fn)]

pub mod accuracy;
pub mod analysis;
pub mod blas_parity;
pub mod naive;
pub mod parallel;
pub mod render;
pub mod serial;
pub mod tasktree;

pub use accuracy::{
    abs_gram, compensated_gram, componentwise_factor, gram_forward_error, ErrorStats,
};
pub use analysis::{ata_mults, effective_gflops};
pub use blas_parity::{aat, aat_lower, ata_syrk, strassen_gemm};
pub use naive::{ata_naive, recursive_gemm};
pub use parallel::{ata_s, ata_s_kind, ata_s_planned, plan_workspace_elems, task_workspace_elems};
pub use serial::{
    ata_into, ata_into_with, ata_into_with_kind, ata_workspace_elems, chunk_rows_for_budget,
    StrassenKind,
};

use ata_kernels::CacheConfig;
use ata_mat::{MatRef, Matrix, Scalar, SymPacked};

/// Tuning knobs of the high-level API.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AtaOptions {
    /// Cache model deciding the recursion base case.
    pub cache: CacheConfig,
    /// Worker threads for the shared-memory path (`1` = serial).
    pub threads: usize,
    /// Product scheme for the off-diagonal Strassen calls.
    pub strassen: StrassenKind,
}

impl Default for AtaOptions {
    fn default() -> Self {
        Self {
            cache: CacheConfig::default(),
            threads: 1,
            strassen: StrassenKind::Classic,
        }
    }
}

impl AtaOptions {
    /// Serial execution with the default cache model.
    pub fn serial() -> Self {
        Self::default()
    }

    /// Shared-memory execution with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        assert!(threads > 0, "threads must be positive");
        Self {
            threads,
            ..Self::default()
        }
    }

    /// Override the cache budget (elements).
    pub fn cache_words(mut self, words: usize) -> Self {
        self.cache = CacheConfig::with_words(words);
        self
    }

    /// Use the Strassen–Winograd products (15 block adds per level
    /// instead of 18, ~2x workspace, slightly larger rounding error).
    pub fn winograd(mut self) -> Self {
        self.strassen = StrassenKind::Winograd;
        self
    }
}

/// Shared implementation of the legacy one-shot entry points.
pub(crate) fn lower_impl<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    if opts.threads <= 1 {
        let mut ws = ata_strassen::StrassenWorkspace::empty();
        serial::ata_into_with_kind(
            T::ONE,
            a,
            &mut c.as_mut(),
            &opts.cache,
            opts.strassen,
            &mut ws,
        );
    } else {
        parallel::ata_s_kind(
            T::ONE,
            a,
            &mut c.as_mut(),
            opts.threads,
            &opts.cache,
            opts.strassen,
        );
    }
    c
}

/// Full symmetric Gram matrix `A^T A` (both triangles filled) with
/// default options — the one-call entry point.
pub fn gram<T: Scalar>(a: MatRef<'_, T>) -> Matrix<T> {
    let mut c = lower_impl(a, &AtaOptions::default());
    c.mirror_lower_to_upper();
    c
}

/// Full symmetric Gram matrix `A^T A` with explicit options.
#[deprecated(note = "use AtaContext/AtaPlan (the `ata` facade's plan–execute API) instead")]
pub fn gram_with<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    let mut c = lower_impl(a, opts);
    c.mirror_lower_to_upper();
    c
}

/// Lower-triangular `A^T A` (strictly-upper entries are zero), default
/// options.
pub fn lower<T: Scalar>(a: MatRef<'_, T>) -> Matrix<T> {
    lower_impl(a, &AtaOptions::default())
}

/// Lower-triangular `A^T A` with explicit options.
#[deprecated(note = "use AtaContext/AtaPlan (the `ata` facade's plan–execute API) instead")]
pub fn lower_with<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    lower_impl(a, opts)
}

/// `A^T A` in packed lower-triangular storage (`n(n+1)/2` elements) —
/// the memory-saving representation of §3.1 / wire format of §4.3.1.
pub fn packed<T: Scalar>(a: MatRef<'_, T>) -> SymPacked<T> {
    SymPacked::from_lower(&lower_impl(a, &AtaOptions::default()))
}

/// Packed `A^T A` with explicit options.
#[deprecated(note = "use AtaContext/AtaPlan (the `ata` facade's plan–execute API) instead")]
pub fn packed_with<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> SymPacked<T> {
    SymPacked::from_lower(&lower_impl(a, opts))
}

#[cfg(test)]
mod tests {
    // These tests intentionally exercise the deprecated one-shot legacy
    // path (the `_with` free functions) alongside the defaults.
    #![allow(deprecated)]

    use super::*;
    use ata_mat::{gen, reference};

    #[test]
    fn gram_matches_reference() {
        let a = gen::standard::<f64>(1, 40, 32);
        let g = gram(a.as_ref());
        let g_ref = reference::gram(a.as_ref());
        assert!(g.max_abs_diff(&g_ref) < 1e-10);
        assert!(g.is_symmetric(0.0));
    }

    #[test]
    fn gram_parallel_option() {
        let a = gen::standard::<f32>(2, 64, 48);
        let opts = AtaOptions::with_threads(4).cache_words(64);
        let g = gram_with(a.as_ref(), &opts);
        let g_ref = reference::gram(a.as_ref());
        assert!(g.max_abs_diff(&g_ref) < 1e-2);
    }

    #[test]
    fn lower_leaves_upper_zero() {
        let a = gen::standard::<f64>(3, 10, 8);
        let l = lower(a.as_ref());
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn packed_roundtrips_to_gram() {
        let a = gen::standard::<f64>(4, 20, 12);
        let p = packed(a.as_ref());
        assert_eq!(p.order(), 12);
        let full = p.to_full();
        let g = gram(a.as_ref());
        assert!(full.max_abs_diff(&g) < 1e-12);
    }

    #[test]
    fn options_builder() {
        let o = AtaOptions::with_threads(8).cache_words(1024);
        assert_eq!(o.threads, 8);
        assert_eq!(o.cache.words, 1024);
        assert_eq!(AtaOptions::serial().threads, 1);
        assert_eq!(o.strassen, StrassenKind::Classic);
        assert_eq!(o.winograd().strassen, StrassenKind::Winograd);
    }

    #[test]
    fn winograd_option_matches_reference_serial_and_parallel() {
        let a = gen::standard::<f64>(31, 72, 56);
        let g_ref = reference::gram(a.as_ref());
        let serial = gram_with(a.as_ref(), &AtaOptions::serial().cache_words(32).winograd());
        assert!(serial.max_abs_diff(&g_ref) < 1e-10, "serial winograd");
        let par = gram_with(
            a.as_ref(),
            &AtaOptions::with_threads(4).cache_words(32).winograd(),
        );
        assert!(par.max_abs_diff(&g_ref) < 1e-10, "parallel winograd");
    }

    #[test]
    fn winograd_option_saves_measured_additions() {
        use ata_mat::tracked::{measure, Tracked};
        let n = 32usize;
        let a = gen::standard::<Tracked>(5, n, n);
        let opts_c = AtaOptions::serial().cache_words(8);
        let opts_w = opts_c.winograd();
        let (_, classic) = measure(|| {
            let _ = lower_with(a.as_ref(), &opts_c);
        });
        let (_, winograd) = measure(|| {
            let _ = lower_with(a.as_ref(), &opts_w);
        });
        assert_eq!(
            classic.muls, winograd.muls,
            "both schemes use 7 multiplications per level"
        );
        assert!(
            winograd.additive() < classic.additive(),
            "winograd adds {} !< classic adds {}",
            winograd.additive(),
            classic.additive()
        );
    }

    #[test]
    #[should_panic(expected = "threads must be positive")]
    fn zero_threads_in_options_rejected() {
        let _ = AtaOptions::with_threads(0);
    }
}
