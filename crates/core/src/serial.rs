//! Algorithm 1 — the serial AtA recursion.
//!
//! `C_low += alpha * A^T A` for `A: m x n`, touching only the lower
//! triangle of `C`:
//!
//! ```text
//! C11 += A11^T A11 + A21^T A21     (two recursive AtA calls)
//! C22 += A12^T A12 + A22^T A22     (two recursive AtA calls)
//! C21 += A12^T A11 + A22^T A21     (two FastStrassen calls)
//! C12  = C21^T                     (never computed — symmetry)
//! ```
//!
//! The base case (`m * n` fits the cache budget) calls the blocked
//! `syrk_ln` kernel, exactly as the paper calls BLAS `?syrk`. The
//! quadrant split rounds *up* (`m1 = ⌈m/2⌉`, `n1 = ⌈n/2⌉`), so `C21` is
//! always a full rectangle lying entirely inside the lower triangle.
//!
//! All Strassen calls share one [`StrassenWorkspace`] (§3.3): the serial
//! recursion never runs two products concurrently, so a single arena
//! sized for the top-level product serves every level.

use ata_kernels::{syrk_ln, CacheConfig};
use ata_mat::{half_up, MatMut, MatRef, Scalar};
use ata_strassen::{fast_strassen_with, winograd_strassen_with, StrassenWorkspace};

/// Which 7-multiplication scheme the `C21` products use.
///
/// Both compute the same field values; they differ in block-addition
/// count and workspace (see `ata-strassen::winograd`), and — in floating
/// point — in their error constants (see [`crate::accuracy`] and the
/// `accuracy` bench bin).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StrassenKind {
    /// The paper's FastStrassen: 18 textbook block additions per level
    /// (22 add-volumes in accumulate form), minimal workspace.
    #[default]
    Classic,
    /// Strassen–Winograd: 15 block additions per level (19 in accumulate
    /// form, the Probert minimum), ~2x workspace, slightly larger error
    /// constant.
    Winograd,
}

impl StrassenKind {
    /// Exact workspace requirement (elements) of one `C += alpha A^T B`
    /// product under this scheme.
    pub fn gemm_workspace_elems(self, m: usize, n: usize, k: usize, cfg: &CacheConfig) -> usize {
        match self {
            StrassenKind::Classic => ata_strassen::required_elems(m, n, k, cfg),
            StrassenKind::Winograd => ata_strassen::required_elems_winograd(m, n, k, cfg),
        }
    }

    /// Dispatch `C += alpha A^T B` to the selected scheme.
    #[inline]
    pub fn gemm_into<T: Scalar>(
        self,
        alpha: T,
        a: MatRef<'_, T>,
        b: MatRef<'_, T>,
        c: &mut MatMut<'_, T>,
        cfg: &CacheConfig,
        ws: &mut StrassenWorkspace<T>,
    ) {
        match self {
            StrassenKind::Classic => fast_strassen_with(alpha, a, b, c, cfg, ws),
            StrassenKind::Winograd => winograd_strassen_with(alpha, a, b, c, cfg, ws),
        }
    }
}

/// `C_low += alpha * A^T A` (Algorithm 1) with caller-provided workspace.
///
/// Shapes: `A: m x n`, `C: n x n`; entries with `i < j` are never read or
/// written.
///
/// # Panics
/// On inconsistent shapes.
pub fn ata_into_with<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    ws: &mut StrassenWorkspace<T>,
) {
    ata_into_with_kind(alpha, a, c, cfg, StrassenKind::Classic, ws);
}

/// [`ata_into_with`] with an explicit product scheme for the `C21`
/// off-diagonal products.
///
/// # Panics
/// On inconsistent shapes.
pub fn ata_into_with_kind<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    kind: StrassenKind,
    ws: &mut StrassenWorkspace<T>,
) {
    let (m, n) = a.shape();
    assert_eq!(
        c.shape(),
        (n, n),
        "ata: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 {
        return;
    }
    rec(alpha, a, c, cfg, kind, ws);
}

/// `C_low += alpha * A^T A` allocating the Strassen workspace internally.
///
/// # Panics
/// On inconsistent shapes.
pub fn ata_into<T: Scalar>(alpha: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>, cfg: &CacheConfig) {
    let mut ws = StrassenWorkspace::empty();
    ata_into_with(alpha, a, c, cfg, &mut ws);
}

/// Exact Strassen-workspace requirement (elements) of the whole serial
/// AtA recursion on an `m x n` input.
///
/// The recursion shares a single arena across all its `C21` products, so
/// the requirement is the *maximum* over the six children of each level
/// — an arena of this size makes [`ata_into_with_kind`] allocation-free.
/// Plan construction (the `ata` facade's `AtaPlan`) uses this to warm
/// the context's arena cache before the first execution.
pub fn ata_workspace_elems(m: usize, n: usize, cfg: &CacheConfig, kind: StrassenKind) -> usize {
    if m == 0 || n == 0 || cfg.ata_base(m, n) {
        return 0;
    }
    let (m1, n1) = (half_up(m), half_up(n));
    let (m2, n2) = (m - m1, n - n1);
    // Mirror rec(): four AtA quadrant recursions and the two C21
    // products A12^T A11 (m1 x n2 by m1 x n1) and A22^T A21.
    [
        ata_workspace_elems(m1, n1, cfg, kind),
        ata_workspace_elems(m2, n1, cfg, kind),
        ata_workspace_elems(m1, n2, cfg, kind),
        ata_workspace_elems(m2, n2, cfg, kind),
        kind.gemm_workspace_elems(m1, n2, n1, cfg),
        kind.gemm_workspace_elems(m2, n2, n1, cfg),
    ]
    .into_iter()
    .max()
    .unwrap_or(0)
}

/// Tallest row-chunk height that still hits the `syrk` base case for an
/// `n`-column input under `cfg` — the thin/tall threshold of streaming
/// Gram accumulation.
///
/// A chunk of at most this many rows satisfies `cfg.ata_base(rows, n)`,
/// so `C += Aᵢᵀ Aᵢ` runs as one direct β = 1 `syrk_ln` rank update with
/// no recursion and no Strassen workspace; taller chunks are worth the
/// full AtA recursion. Always at least 1 (a single row is a rank-1
/// update no matter how wide), and saturates to `usize::MAX` for `n = 0`.
pub fn chunk_rows_for_budget(n: usize, cfg: &CacheConfig) -> usize {
    if n == 0 {
        return usize::MAX;
    }
    (cfg.words / n).max(1)
}

fn rec<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
    kind: StrassenKind,
    ws: &mut StrassenWorkspace<T>,
) {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return;
    }
    if cfg.ata_base(m, n) {
        syrk_ln(alpha, a, c);
        return;
    }

    let n1 = half_up(n);
    let (a11, a12, a21, a22) = a.quad_split();

    // C11 (lines 7-8): both column-left recursions accumulate into the
    // same diagonal block.
    {
        let mut c11 = c.block_mut(0, n1, 0, n1);
        rec(alpha, a11, &mut c11, cfg, kind, ws);
    }
    {
        let mut c11 = c.block_mut(0, n1, 0, n1);
        rec(alpha, a21, &mut c11, cfg, kind, ws);
    }
    // C22 (lines 9-10).
    {
        let mut c22 = c.block_mut(n1, n, n1, n);
        rec(alpha, a12, &mut c22, cfg, kind, ws);
    }
    {
        let mut c22 = c.block_mut(n1, n, n1, n);
        rec(alpha, a22, &mut c22, cfg, kind, ws);
    }
    // C21 (lines 11-12): C21 += alpha * (A12^T A11 + A22^T A21).
    {
        let mut c21 = c.block_mut(n1, n, 0, n1);
        kind.gemm_into(alpha, a12, a11, &mut c21, cfg, ws);
    }
    {
        let mut c21 = c.block_mut(n1, n, 0, n1);
        kind.gemm_into(alpha, a22, a21, &mut c21, cfg, ws);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference, Matrix};

    fn check(m: usize, n: usize, alpha: f64, words: usize) {
        let a = gen::standard::<f64>(m as u64 * 131 + n as u64, m, n);
        let mut c_fast = gen::standard::<f64>(7, n, n);
        let mut c_ref = c_fast.clone();
        let cfg = CacheConfig::with_words(words);
        ata_into(alpha, a.as_ref(), &mut c_fast.as_mut(), &cfg);
        reference::syrk_ln(alpha, a.as_ref(), &mut c_ref.as_mut());
        let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
        let diff = c_fast.max_abs_diff_lower(&c_ref);
        assert!(
            diff <= tol,
            "({m},{n}) AtA differs from syrk oracle by {diff} > {tol}"
        );
        // Entire matrix must agree too: strictly-upper entries were common
        // garbage in both and must be untouched by both.
        assert_eq!(
            c_fast.max_abs_diff(&c_ref),
            diff,
            "({m},{n}) strict upper touched"
        );
    }

    #[test]
    fn square_power_of_two() {
        for n in [2usize, 4, 8, 16, 32] {
            check(n, n, 1.0, 4);
        }
    }

    #[test]
    fn odd_and_prime_sizes() {
        for &(m, n) in &[
            (3, 3),
            (5, 5),
            (7, 7),
            (9, 11),
            (13, 10),
            (17, 23),
            (31, 29),
        ] {
            check(m, n, 1.0, 4);
        }
    }

    #[test]
    fn tall_and_wide() {
        for &(m, n) in &[(64, 8), (8, 64), (100, 13), (13, 100), (1, 16), (16, 1)] {
            check(m, n, 1.0, 16);
        }
    }

    #[test]
    fn alpha_scaling_and_accumulation() {
        check(12, 12, -2.0, 8);
        check(10, 14, 0.5, 8);
    }

    #[test]
    fn larger_base_case_changes_nothing_numerically() {
        // Same product, different recursion cut-offs: results must agree
        // within the Strassen error bound.
        let (m, n) = (48, 40);
        let a = gen::standard::<f64>(77, m, n);
        let mut shallow = Matrix::zeros(n, n);
        let mut deep = Matrix::zeros(n, n);
        ata_into(
            1.0,
            a.as_ref(),
            &mut shallow.as_mut(),
            &CacheConfig::with_words(4096),
        );
        ata_into(
            1.0,
            a.as_ref(),
            &mut deep.as_mut(),
            &CacheConfig::with_words(4),
        );
        assert!(shallow.max_abs_diff_lower(&deep) < 1e-10);
    }

    #[test]
    fn exact_on_ternary_inputs() {
        let a = gen::ternary::<f64>(3, 20, 24);
        let mut c = Matrix::zeros(24, 24);
        ata_into(
            1.0,
            a.as_ref(),
            &mut c.as_mut(),
            &CacheConfig::with_words(8),
        );
        let mut c_ref = Matrix::zeros(24, 24);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        assert_eq!(c.max_abs_diff_lower(&c_ref), 0.0);
    }

    #[test]
    fn workspace_shared_across_whole_recursion() {
        let cfg = CacheConfig::with_words(8);
        let mut ws = StrassenWorkspace::<f64>::empty();
        let a = gen::standard::<f64>(5, 32, 32);
        let mut c = Matrix::zeros(32, 32);
        ata_into_with(1.0, a.as_ref(), &mut c.as_mut(), &cfg, &mut ws);
        let cap_after_first = ws.capacity();
        // Second run must not need any further growth.
        let mut c2 = Matrix::zeros(32, 32);
        ata_into_with(1.0, a.as_ref(), &mut c2.as_mut(), &cfg, &mut ws);
        assert_eq!(ws.capacity(), cap_after_first);
        assert_eq!(c.max_abs_diff(&c2), 0.0);
    }

    #[test]
    fn workspace_elems_presizes_exactly() {
        // An arena warmed to ata_workspace_elems covers the whole
        // recursion: no mid-execution regrowth (the plan path relies on
        // this to stay allocation-free after warm-up).
        for kind in [StrassenKind::Classic, StrassenKind::Winograd] {
            for &(m, n, words) in &[(32usize, 32usize, 8usize), (37, 29, 16), (64, 48, 4)] {
                let cfg = CacheConfig::with_words(words);
                let need = ata_workspace_elems(m, n, &cfg, kind);
                let a = gen::standard::<f64>(1, m, n);
                let mut c = Matrix::zeros(n, n);
                let mut ws = StrassenWorkspace::<f64>::with_capacity(need);
                ata_into_with_kind(1.0, a.as_ref(), &mut c.as_mut(), &cfg, kind, &mut ws);
                assert_eq!(
                    ws.capacity(),
                    need,
                    "({m},{n},{words},{kind:?}): presized arena regrew"
                );
            }
        }
    }

    #[test]
    fn chunk_threshold_matches_base_case_predicate() {
        for words in [4usize, 64, 1024, 131_072] {
            let cfg = CacheConfig::with_words(words);
            for n in [1usize, 7, 32, 100] {
                let rows = chunk_rows_for_budget(n, &cfg);
                assert!(rows >= 1);
                if rows < usize::MAX && rows * n <= words {
                    assert!(cfg.ata_base(rows, n), "({words},{n}): {rows} not base");
                }
                if rows.saturating_mul(n) > words {
                    // Only possible through the >= 1 floor.
                    assert_eq!(rows, 1, "({words},{n})");
                }
                // One more row must overflow the budget (or be the floor).
                if rows < usize::MAX && rows > 1 {
                    assert!(!cfg.ata_base(rows + 1, n), "({words},{n}) not maximal");
                }
            }
        }
        assert_eq!(
            chunk_rows_for_budget(0, &CacheConfig::with_words(16)),
            usize::MAX
        );
    }

    #[test]
    fn workspace_requirement_is_monotone_in_rows() {
        // Streaming accumulators warm one arena for their tallest chunk
        // and reuse it for every shorter one; that is sound because the
        // requirement never shrinks as rows grow.
        for kind in [StrassenKind::Classic, StrassenKind::Winograd] {
            for words in [4usize, 16, 64] {
                let cfg = CacheConfig::with_words(words);
                for n in [5usize, 16, 33] {
                    let mut prev = 0usize;
                    for m in 1..=64usize {
                        let need = ata_workspace_elems(m, n, &cfg, kind);
                        assert!(need >= prev, "({m},{n},{words},{kind:?}): {need} < {prev}");
                        prev = need;
                    }
                }
            }
        }
    }

    #[test]
    fn empty_matrix_is_noop() {
        let a = Matrix::<f64>::zeros(0, 4);
        let mut c = Matrix::from_fn(4, 4, |_, _| 3.0);
        ata_into(1.0, a.as_ref(), &mut c.as_mut(), &CacheConfig::default());
        assert!(c.as_slice().iter().all(|&x| x == 3.0));
    }

    #[test]
    #[should_panic(expected = "ata: C must be")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(4, 4);
        let mut c = Matrix::<f64>::zeros(3, 3);
        ata_into(1.0, a.as_ref(), &mut c.as_mut(), &CacheConfig::default());
    }
}
