//! Forward-error measurement for the fast `A^T A` algorithms.
//!
//! Strassen-type algorithms trade numerical headroom for speed: their
//! block recombinations satisfy a weaker error bound than the classical
//! inner-product algorithm (Higham, *Accuracy and Stability of Numerical
//! Algorithms*, §23.2.2). The paper does not evaluate accuracy; this
//! module adds the standard study so that users of `AtA` know what the
//! `2/3`-of-Strassen flop saving costs in ulps, and `bin/accuracy`
//! regenerates the sweep.
//!
//! Three pieces:
//!
//! * a **double-double reference**: Gram matrices computed with exact
//!   FMA-based product splitting and compensated accumulation
//!   ([`compensated_gram`]), accurate to ~2^-105 — a valid ground truth
//!   for measuring the error of *both* `f32` and `f64` runs;
//! * [`gram_forward_error`], turning a computed lower triangle plus the
//!   reference into max-abs / componentwise-relative / Frobenius error
//!   statistics ([`ErrorStats`]);
//! * Higham's **bound factors** ([`classical_bound_factor`],
//!   [`strassen_bound_factor`]) against which the measured errors are
//!   asserted — measured error must stay below `factor * u * ||A||^2`
//!   scale, and the test suite enforces it.

use ata_mat::{MatRef, Matrix, Scalar};

/// Error-free transformation of a sum: returns `(s, e)` with
/// `s = fl(a + b)` and `a + b = s + e` exactly (Knuth / Møller two-sum,
/// valid for any ordering of magnitudes).
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let ap = s - b;
    let bp = s - ap;
    let e = (a - ap) + (b - bp);
    (s, e)
}

/// Error-free transformation of a product: returns `(p, e)` with
/// `p = fl(a * b)` and `a * b = p + e` exactly. Uses the FMA, which
/// rounds `a * b - p` once.
#[inline]
pub fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let e = f64::mul_add(a, b, -p);
    (p, e)
}

/// Dot product in double-double arithmetic: the result is the correctly
/// rounded head of a ~106-bit accumulation (Ogita–Rump–Oishi `Dot2`).
pub fn dd_dot(x: &[f64], y: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), y.len());
    let mut hi = 0.0f64;
    let mut lo = 0.0f64;
    for (&xi, &yi) in x.iter().zip(y) {
        let (p, pe) = two_prod(xi, yi);
        let (s, se) = two_sum(hi, p);
        hi = s;
        lo += se + pe;
    }
    hi + lo
}

/// Strided dot product `sum_k a[k, i] * a[k, j]` in double-double
/// arithmetic — the column-column inner products of the Gram matrix,
/// without materializing `A^T`.
fn dd_dot_cols(a: MatRef<'_, f64>, i: usize, j: usize) -> f64 {
    let mut hi = 0.0f64;
    let mut lo = 0.0f64;
    for k in 0..a.rows() {
        let row = a.row(k);
        let (p, pe) = two_prod(row[i], row[j]);
        let (s, se) = two_sum(hi, p);
        hi = s;
        lo += se + pe;
    }
    hi + lo
}

/// Ground-truth Gram matrix: lower triangle of `A^T A` via double-double
/// column dots, strict upper zero — accurate to far below one `f64` ulp
/// of each entry, hence usable as the "exact" value when measuring both
/// `f32` and `f64` algorithm runs.
pub fn compensated_gram(a: MatRef<'_, f64>) -> Matrix<f64> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            c[(i, j)] = dd_dot_cols(a, i, j);
        }
    }
    c
}

/// Lower triangle of `|A|^T |A|` in plain `f64` — the natural
/// componentwise *scale* of each Gram entry's computation. Higham's
/// bounds are all of the form `|C - Ĉ| <= factor * u * (|A|^T|A|)`,
/// so errors divided by this matrix are directly comparable to the
/// factors below. (Entries of `|A|^T|A|` cannot suffer cancellation,
/// so plain `f64` is plenty accurate for a denominator.)
pub fn abs_gram(a: MatRef<'_, f64>) -> Matrix<f64> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    for k in 0..a.rows() {
        let row = a.row(k);
        for i in 0..n {
            let ai = row[i].abs();
            for (j, v) in row[..=i].iter().enumerate() {
                c[(i, j)] += ai * v.abs();
            }
        }
    }
    c
}

/// Forward-error statistics of a computed Gram matrix against a
/// reference (both lower-triangular-only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// `max_{i>=j} |C - C_ref|`.
    pub max_abs: f64,
    /// `max_{i>=j} |C - C_ref| / max(|C_ref|, tiny)` — componentwise
    /// relative error; entries whose reference magnitude is below
    /// `norm * 1e-8` are measured against the norm instead (pure
    /// cancellation entries would otherwise dominate meaninglessly).
    pub max_rel: f64,
    /// `||C - C_ref||_F / ||C_ref||_F` over the lower triangle.
    pub fro_rel: f64,
}

/// Compare the lower triangle of `computed` (any scalar type) against a
/// double-double reference.
///
/// # Panics
/// If shapes differ or the matrices are not square.
pub fn gram_forward_error<T: Scalar>(computed: &Matrix<T>, reference: &Matrix<f64>) -> ErrorStats {
    let n = reference.rows();
    assert_eq!(reference.shape(), (n, n), "reference must be square");
    assert_eq!(
        computed.shape(),
        (n, n),
        "computed/reference shape mismatch"
    );

    // Scale floor for relative error: largest reference magnitude.
    let mut norm = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            norm = norm.max(reference[(i, j)].abs());
        }
    }
    let floor = norm.max(f64::MIN_POSITIVE) * 1e-8;

    let (mut max_abs, mut max_rel) = (0.0f64, 0.0f64);
    let (mut dfro, mut rfro) = (0.0f64, 0.0f64);
    for i in 0..n {
        for j in 0..=i {
            let r = reference[(i, j)];
            let d = (computed[(i, j)].to_f64() - r).abs();
            max_abs = max_abs.max(d);
            max_rel = max_rel.max(d / r.abs().max(floor));
            dfro += d * d;
            rfro += r * r;
        }
    }
    ErrorStats {
        max_abs,
        max_rel,
        fro_rel: if rfro > 0.0 {
            (dfro / rfro).sqrt()
        } else {
            0.0
        },
    }
}

/// Componentwise error in Higham units: `max_{i>=j} |C - C_ref|_{ij} /
/// (u * scale_{ij})` where `scale` is [`abs_gram`] of the input and `u`
/// the unit roundoff of the computing type. The result is directly
/// comparable to [`classical_bound_factor`] / [`strassen_bound_factor`]:
/// a correct classical implementation must return less than `m`.
///
/// Entries whose scale is zero (both columns zero) are skipped — their
/// error is exactly zero for any correct algorithm, which the function
/// asserts.
///
/// # Panics
/// If shapes differ, or a zero-scale entry carries error.
pub fn componentwise_factor<T: Scalar>(
    computed: &Matrix<T>,
    reference: &Matrix<f64>,
    scale: &Matrix<f64>,
    unit_roundoff: f64,
) -> f64 {
    let n = reference.rows();
    assert_eq!(computed.shape(), (n, n), "computed shape");
    assert_eq!(scale.shape(), (n, n), "scale shape");
    let mut worst = 0.0f64;
    for i in 0..n {
        for j in 0..=i {
            let d = (computed[(i, j)].to_f64() - reference[(i, j)]).abs();
            let s = scale[(i, j)];
            if s == 0.0 {
                assert_eq!(d, 0.0, "error on a structurally-zero entry ({i},{j})");
            } else {
                worst = worst.max(d / (unit_roundoff * s));
            }
        }
    }
    worst
}

/// Higham's componentwise bound factor for the classical inner-product
/// algorithm: `|C - Ĉ| <= gamma_m |A|^T |A|` with `gamma_m ≈ m u`, so the
/// factor (in units of `u * (|A|^T|A|)_{ij}`) is `m`, the dot length.
pub fn classical_bound_factor(m: usize) -> f64 {
    m as f64
}

/// Higham's normwise bound factor for Strassen with base size `n0`
/// (Accuracy and Stability, 2nd ed., Eq. 23.10):
///
/// ```text
/// ||C - Ĉ|| <= [ (n/n0)^(log2 12) (n0^2 + 5 n0) - 5 n ] u ||A|| ||B|| + O(u^2)
/// ```
///
/// (max-norms). At `n0 = n` (no recursion) it reduces to the classical
/// `n^2` max-norm factor; each extra level multiplies the leading term
/// by 12/4 = 3 — the well-known `n^(log2 12)` growth.
///
/// # Panics
/// If `n0 == 0` or `n < n0`.
pub fn strassen_bound_factor(n: usize, n0: usize) -> f64 {
    assert!(n0 > 0, "base size must be positive");
    assert!(n >= n0, "n must be at least the base size");
    let ratio = n as f64 / n0 as f64;
    let levels_factor = ratio.powf(12f64.log2());
    levels_factor * (n0 as f64 * n0 as f64 + 5.0 * n0 as f64) - 5.0 * n as f64
}

/// Strict upper triangle is ignored by [`gram_forward_error`]; mirror a
/// lower triangle into a full symmetric matrix when a downstream
/// consumer needs one.
pub fn mirror_lower<T: Scalar>(c: &Matrix<T>) -> Matrix<T> {
    let n = c.rows();
    assert_eq!(c.shape(), (n, n), "mirror_lower needs a square matrix");
    Matrix::from_fn(n, n, |i, j| if j <= i { c[(i, j)] } else { c[(j, i)] })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::ata_into;
    use ata_kernels::{syrk_ln, CacheConfig};
    use ata_mat::{gen, reference};

    #[test]
    fn two_sum_is_error_free() {
        // Catastrophic case: the error term recovers what the sum lost.
        let (s, e) = two_sum(1e16, 1.0);
        assert_eq!(s, 1e16);
        assert_eq!(e, 1.0);
        let (s, e) = two_sum(0.1, 0.2);
        // s + e reproduces the exact real sum of the two representable
        // inputs: check via higher-precision identity s + e == a + b.
        assert_eq!(s, 0.1 + 0.2);
        assert!(e != 0.0, "0.1 + 0.2 is inexact in f64");
    }

    #[test]
    fn two_prod_is_error_free() {
        let a = 1.0 + f64::EPSILON; // 1 + 2^-52
        let (p, e) = two_prod(a, a);
        // a^2 = 1 + 2^-51 + 2^-104; p rounds away the 2^-104 term.
        assert_eq!(p, 1.0 + 2.0 * f64::EPSILON);
        assert_eq!(e, f64::EPSILON * f64::EPSILON);
        // Exact products have zero error term.
        let (p, e) = two_prod(3.0, 4.0);
        assert_eq!((p, e), (12.0, 0.0));
    }

    #[test]
    fn dd_dot_survives_cancellation() {
        // Naive summation loses the 1.0 entirely; Dot2 keeps it.
        let x = [1e16, 1.0, -1e16];
        let y = [1.0, 1.0, 1.0];
        let naive: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert_eq!(naive, 0.0, "naive sum demonstrates the failure");
        assert_eq!(dd_dot(&x, &y), 1.0);
    }

    #[test]
    fn dd_dot_matches_integer_ground_truth() {
        let x: Vec<f64> = (1..=100).map(|k| k as f64).collect();
        let s = dd_dot(&x, &x);
        // sum k^2 = n(n+1)(2n+1)/6 = 338350.
        assert_eq!(s, 338350.0);
    }

    #[test]
    fn compensated_gram_exact_on_integers() {
        let a = gen::ternary::<f64>(3, 40, 12);
        let g = compensated_gram(a.as_ref());
        let mut g_ref = Matrix::zeros(12, 12);
        reference::syrk_ln(1.0, a.as_ref(), &mut g_ref.as_mut());
        assert_eq!(g.max_abs_diff_lower(&g_ref), 0.0);
    }

    #[test]
    fn error_stats_zero_for_identical() {
        let a = gen::standard::<f64>(1, 20, 10);
        let g = compensated_gram(a.as_ref());
        let st = gram_forward_error(&g, &g);
        assert_eq!(st.max_abs, 0.0);
        assert_eq!(st.max_rel, 0.0);
        assert_eq!(st.fro_rel, 0.0);
    }

    #[test]
    fn error_stats_detect_injected_fault() {
        let a = gen::standard::<f64>(2, 16, 8);
        let g = compensated_gram(a.as_ref());
        let mut bad = g.clone();
        bad[(5, 3)] += 1e-3;
        let st = gram_forward_error(&bad, &g);
        assert!((st.max_abs - 1e-3).abs() < 1e-12);
        assert!(st.max_rel > 0.0);
        assert!(st.fro_rel > 0.0);
    }

    #[test]
    fn f32_syrk_error_is_f32_scale_and_below_classical_bound() {
        let m = 64usize;
        let a64 = gen::standard::<f64>(7, m, 24);
        let a32 = Matrix::from_fn(m, 24, |i, j| a64[(i, j)] as f32);
        let reference = compensated_gram(a64.as_ref());
        let mut c = Matrix::<f32>::zeros(24, 24);
        syrk_ln(1.0f32, a32.as_ref(), &mut c.as_mut());
        let st = gram_forward_error(&c, &reference);
        // Conversion alone costs up to ~u32 * |entry| per factor; the
        // classical dot bound is gamma_m. Everything is O(m * u32).
        let u32_ = f32::EPSILON as f64;
        let bound = 4.0 * classical_bound_factor(m) * u32_ * m as f64; // |entries| <= 1 => |C| <= m
        assert!(st.max_abs > 0.0, "f32 arithmetic cannot be exact here");
        assert!(st.max_abs < bound, "{} !< {bound}", st.max_abs);
    }

    #[test]
    fn f64_ata_error_below_strassen_bound() {
        let (m, n) = (96usize, 96usize);
        let a = gen::standard::<f64>(11, m, n);
        let reference = compensated_gram(a.as_ref());
        let cfg = CacheConfig::with_words(256); // force several levels
        let mut c = Matrix::<f64>::zeros(n, n);
        ata_into(1.0, a.as_ref(), &mut c.as_mut(), &cfg);
        let st = gram_forward_error(&c, &reference);
        let u = f64::EPSILON;
        // Norm scale ||A||_max^2 * m with entries in [-1,1): <= m.
        let bound = strassen_bound_factor(n, 8) * u * m as f64;
        assert!(st.max_abs < bound, "{} !< {bound}", st.max_abs);
        assert!(st.max_abs > 0.0);
    }

    #[test]
    fn abs_gram_matches_reference_on_abs_input() {
        let a = gen::standard::<f64>(5, 30, 12);
        let a_abs = Matrix::from_fn(30, 12, |i, j| a[(i, j)].abs());
        let mut want = Matrix::zeros(12, 12);
        reference::syrk_ln(1.0, a_abs.as_ref(), &mut want.as_mut());
        let got = abs_gram(a.as_ref());
        assert!(got.max_abs_diff_lower(&want) < 1e-12);
    }

    #[test]
    fn componentwise_factor_respects_higham_classical_bound() {
        // Plain f64 syrk on random data must land below gamma_m = m.
        let (m, n) = (128usize, 48);
        let a = gen::standard::<f64>(9, m, n);
        let reference = compensated_gram(a.as_ref());
        let scale = abs_gram(a.as_ref());
        let mut c = Matrix::<f64>::zeros(n, n);
        syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        let factor = componentwise_factor(&c, &reference, &scale, f64::EPSILON);
        assert!(factor > 0.0, "f64 arithmetic cannot be exact here");
        assert!(
            factor < classical_bound_factor(m),
            "{factor} !< {m} — syrk broke the classical componentwise bound"
        );
    }

    #[test]
    fn componentwise_factor_ata_within_strassen_bound_margin() {
        let (m, n) = (96usize, 96);
        let a = gen::standard::<f64>(13, m, n);
        let reference = compensated_gram(a.as_ref());
        let scale = abs_gram(a.as_ref());
        let cfg = CacheConfig::with_words(256);
        let mut c = Matrix::<f64>::zeros(n, n);
        ata_into(1.0, a.as_ref(), &mut c.as_mut(), &cfg);
        let factor = componentwise_factor(&c, &reference, &scale, f64::EPSILON);
        // The Strassen bound is normwise; componentwise-scaled factors can
        // exceed the classical gamma_m but stay far below the Strassen
        // factor on benign data.
        assert!(factor < strassen_bound_factor(n, 8), "{factor}");
    }

    #[test]
    fn componentwise_factor_skips_structural_zeros() {
        // A zero column makes scale entries exactly zero; a correct
        // algorithm also produces exactly zero there.
        let a = Matrix::<f64>::from_fn(6, 3, |i, j| if j == 1 { 0.0 } else { (i + j) as f64 });
        let reference = compensated_gram(a.as_ref());
        let scale = abs_gram(a.as_ref());
        let mut c = Matrix::<f64>::zeros(3, 3);
        syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        let f = componentwise_factor(&c, &reference, &scale, f64::EPSILON);
        assert_eq!(f, 0.0, "integer data: no rounding at all");
    }

    #[test]
    fn bound_factors_reduce_and_grow_sanely() {
        // No recursion: Strassen bound reduces to the classical n^2 + 5n
        // - 5n = n^2 max-norm factor.
        assert_eq!(strassen_bound_factor(64, 64), 64.0 * 64.0);
        // One extra level multiplies the leading term by ~3.
        let one = strassen_bound_factor(128, 64);
        let zero = strassen_bound_factor(128, 128);
        assert!(one > zero, "recursion weakens the bound");
        // Monotone in n for fixed base.
        assert!(strassen_bound_factor(256, 16) > strassen_bound_factor(128, 16));
        assert_eq!(classical_bound_factor(1000), 1000.0);
    }

    #[test]
    fn mirror_lower_reflects() {
        let mut c = Matrix::<f64>::zeros(3, 3);
        c[(1, 0)] = 5.0;
        c[(2, 1)] = 7.0;
        c[(0, 0)] = 1.0;
        let full = mirror_lower(&c);
        assert_eq!(full[(0, 1)], 5.0);
        assert_eq!(full[(1, 2)], 7.0);
        assert!(full.is_symmetric(0.0));
    }

    #[test]
    #[should_panic(expected = "base size must be positive")]
    fn zero_base_rejected() {
        let _ = strassen_bound_factor(8, 0);
    }
}
