//! The task-tree scheduler of §4.1.
//!
//! Both parallel algorithms start from the same idea: every process (or
//! thread) deterministically builds the recursion tree of `AtANaive` —
//! AtA with naive recursive GEMM instead of Strassen (§4.1.3) — and reads
//! its own tasks off the leaves, "simulating" a fork-join execution
//! without ever spawning nested tasks (§4.1).
//!
//! Two builders live here, because the paper uses two different trees:
//!
//! * [`DistTree`] (§4.1.1–4.1.2, Figure 1) — the distributed tree. An
//!   `A^T A` node has six children (four AtA quadrant recursions, two
//!   general products for `C21`); an `A^T B` node has eight (Algorithm
//!   2's `2 x 2 x 2` loop nest). With the load-balancing parameter
//!   `alpha = 1/2`, half the processes serve the gemm children and half
//!   the AtA children. Children writing the same `C` block (the two
//!   contributions to `C11`, `C22`, `C21`, and the `k`-halves of a gemm
//!   node) are *summed by the parent* during result retrieval. When a
//!   node has fewer processes than children, its work is tiled into
//!   vertical/horizontal strips instead (Figure 2) — one strip per
//!   process.
//! * [`SharedPlan`] (§4.1.2 last paragraph, §4.2) — the shared-memory
//!   tree. To avoid concurrent overlapping writes, the matrix is split
//!   into full-height *column strips* using Eq. 7
//!   (`C_ij = A_{*,i}^T A_{*,j}`), which fuses the quadrant sums: every
//!   `C` block has exactly one writer, making AtA-S embarrassingly
//!   parallel. An AtA node has three children (left-half AtA, right-half
//!   AtA, and the `C21` product); a gemm node has four.
//!
//! The closed-form level counts of Eq. 5 and Eq. 6 are implemented as
//! [`dist_levels`] / [`shared_levels`] and tested against the built
//! trees. Where the paper's prose under-specifies remainder handling
//! (process counts that are not products of complete levels), our
//! construction may be one level deeper than the formula; the tests pin
//! down exactly when.

use ata_kernels::syrk::triangle_row_partition;
use ata_mat::half_up;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide count of [`DistTree`] constructions (see
/// [`DistTree::build_count`]).
static DIST_TREE_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Build counts keyed by `(m, n, procs)` (see [`DIST_TREE_BUILDS_BY_SHAPE`]).
type ShapeBuildCounts = HashMap<(usize, usize, usize), u64>;

/// Per-`(m, n, procs)` build counts, for amortization tests that must
/// not race with unrelated tree builds on sibling test threads.
static DIST_TREE_BUILDS_BY_SHAPE: Mutex<Option<ShapeBuildCounts>> = Mutex::new(None);

/// Half-open 2D index region (`rows r0..r1`, `cols c0..c1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First row (inclusive).
    pub r0: usize,
    /// Last row (exclusive).
    pub r1: usize,
    /// First column (inclusive).
    pub c0: usize,
    /// Last column (exclusive).
    pub c1: usize,
}

impl Region {
    /// Validated constructor.
    ///
    /// # Panics
    /// If the ranges are reversed.
    pub fn new(r0: usize, r1: usize, c0: usize, c1: usize) -> Self {
        assert!(
            r0 <= r1 && c0 <= c1,
            "invalid region ({r0}..{r1}, {c0}..{c1})"
        );
        Self { r0, r1, c0, c1 }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.c1 - self.c0
    }

    /// True when the region holds no elements.
    pub fn is_empty(&self) -> bool {
        self.r0 == self.r1 || self.c0 == self.c1
    }

    /// Element count.
    pub fn area(&self) -> usize {
        self.rows() * self.cols()
    }

    /// True when the rectangles share at least one element.
    pub fn intersects(&self, o: &Region) -> bool {
        !self.is_empty()
            && !o.is_empty()
            && self.r0 < o.r1
            && o.r0 < self.r1
            && self.c0 < o.c1
            && o.c0 < self.c1
    }
}

/// Which computation a task performs (§4.1.1 point 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputeKind {
    /// A symmetric product `A_blk^T A_blk` (lower triangle only).
    AtA,
    /// A general product `A_blk^T B_blk`.
    AtB,
}

// ---------------------------------------------------------------------
// Closed-form level counts.
// ---------------------------------------------------------------------

/// Eq. 5 — number of parallel levels of the distributed task tree.
pub fn dist_levels(p: usize) -> usize {
    match p {
        0 | 1 => 0,
        2..=6 => 1,
        _ => {
            let quarter = p / 4;
            let mut k = 0usize;
            while quarter / 8usize.pow(k as u32 + 1) >= 1 {
                k += 1;
            }
            let modulus = 8usize.pow(k.max(1) as u32);
            1 + k + usize::from(!quarter.is_multiple_of(modulus))
        }
    }
}

/// Eq. 6 — number of parallel levels of the shared-memory task tree.
pub fn shared_levels(p: usize) -> usize {
    match p {
        0 | 1 => 0,
        2 | 3 => 1,
        _ => {
            let half = p / 2;
            let mut k = 0usize;
            while half / 4usize.pow(k as u32 + 1) >= 1 {
                k += 1;
            }
            let modulus = 4usize.pow(k.max(1) as u32);
            1 + k + usize::from(!half.is_multiple_of(modulus))
        }
    }
}

// ---------------------------------------------------------------------
// Shared-memory plan (AtA-S).
// ---------------------------------------------------------------------

/// One leaf task of the shared-memory plan. Operands are *full-height*
/// column strips of `A` (Eq. 7), so no two tasks write the same `C`
/// element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedLeaf {
    /// Thread that executes this task.
    pub proc_id: usize,
    /// Task kind.
    pub kind: ComputeKind,
    /// Column range of `A` forming the (transposed) left operand.
    pub a_cols: (usize, usize),
    /// Column range of `A` forming the right operand (equals `a_cols`
    /// for [`ComputeKind::AtA`]).
    pub b_cols: (usize, usize),
    /// Destination block of `C`. For `AtA` leaves this is the square
    /// diagonal block of which only the lower triangle is written.
    pub c: Region,
}

/// The complete shared-memory schedule for `P` threads.
#[derive(Debug, Clone)]
pub struct SharedPlan {
    /// Output order (`C` is `n x n`) the plan was built for.
    pub n: usize,
    /// Thread count the plan was built for.
    pub procs: usize,
    /// All leaf tasks; a thread may own several.
    pub tasks: Vec<SharedLeaf>,
    /// Depth of the deepest leaf (root = level 0).
    pub depth: usize,
}

impl SharedPlan {
    /// Build the plan for an `m x n` input (`m` is irrelevant to the
    /// split — strips are full height) and `procs` threads.
    ///
    /// # Panics
    /// If `procs == 0`.
    pub fn build(n: usize, procs: usize) -> Self {
        assert!(procs > 0, "SharedPlan needs at least one thread");
        let mut plan = SharedPlan {
            n,
            procs,
            tasks: Vec::new(),
            depth: 0,
        };
        if n > 0 {
            plan.ata_node(0, n, 0, procs, 0);
        }
        plan
    }

    /// Tasks owned by one thread, in creation (BFS-ish) order.
    pub fn tasks_for(&self, proc_id: usize) -> impl Iterator<Item = &SharedLeaf> {
        self.tasks.iter().filter(move |t| t.proc_id == proc_id)
    }

    fn leaf(&mut self, leaf: SharedLeaf, depth: usize) {
        self.depth = self.depth.max(depth);
        self.tasks.push(leaf);
    }

    fn ata_node(&mut self, c0: usize, c1: usize, lo: usize, hi: usize, depth: usize) {
        let p = hi - lo;
        let len = c1 - c0;
        if len == 0 {
            return;
        }
        if p <= 1 || len <= 1 {
            self.leaf(
                SharedLeaf {
                    proc_id: lo,
                    kind: ComputeKind::AtA,
                    a_cols: (c0, c1),
                    b_cols: (c0, c1),
                    c: Region::new(c0, c1, c0, c1),
                },
                depth,
            );
            return;
        }
        let mid = c0 + half_up(len);
        // alpha = 1/2: the C21 product costs as much as both diagonal
        // recursions together, so half the threads go to it.
        let gp = (p / 2).max(1);
        let rem = p - gp;
        self.gemm_node((mid, c1), (c0, mid), lo, lo + gp, depth + 1);
        if rem == 1 {
            // A single thread serves both diagonal halves (two leaves).
            self.ata_node(c0, mid, lo + gp, hi, depth + 1);
            self.ata_node(mid, c1, lo + gp, hi, depth + 1);
        } else {
            let lp = half_up(rem);
            self.ata_node(c0, mid, lo + gp, lo + gp + lp, depth + 1);
            self.ata_node(mid, c1, lo + gp + lp, hi, depth + 1);
        }
    }

    /// `C[ci, cj] += A[:, ci]^T A[:, cj]` distributed over `lo..hi`.
    fn gemm_node(
        &mut self,
        ci: (usize, usize),
        cj: (usize, usize),
        lo: usize,
        hi: usize,
        depth: usize,
    ) {
        let q = hi - lo;
        let (i0, i1) = ci;
        let (j0, j1) = cj;
        if i1 == i0 || j1 == j0 {
            return;
        }
        if q <= 1 {
            self.leaf(
                SharedLeaf {
                    proc_id: lo,
                    kind: ComputeKind::AtB,
                    a_cols: ci,
                    b_cols: cj,
                    c: Region::new(i0, i1, j0, j1),
                },
                depth,
            );
            return;
        }
        if q < 4 || (i1 - i0 <= 1 && j1 - j0 <= 1) {
            // Incomplete level: vertical tiling of the C block (Fig. 2).
            let strips = q.min((j1 - j0).max(1));
            let w = (j1 - j0).div_ceil(strips);
            for t in 0..strips {
                let s0 = j0 + t * w;
                let s1 = (s0 + w).min(j1);
                if s0 >= s1 {
                    break;
                }
                self.leaf(
                    SharedLeaf {
                        proc_id: lo + t,
                        kind: ComputeKind::AtB,
                        a_cols: ci,
                        b_cols: (s0, s1),
                        c: Region::new(i0, i1, s0, s1),
                    },
                    depth + 1,
                );
            }
            return;
        }
        // Complete level: quadrants of the C block, threads split 4 ways.
        let im = i0 + half_up(i1 - i0);
        let jm = j0 + half_up(j1 - j0);
        let quads = [
            ((i0, im), (j0, jm)),
            ((i0, im), (jm, j1)),
            ((im, i1), (j0, jm)),
            ((im, i1), (jm, j1)),
        ];
        // q >= 4 here, so every share is >= 1 and the shares sum to q.
        let base = q / 4;
        let extra = q % 4;
        let mut cur = lo;
        for (t, &(qi, qj)) in quads.iter().enumerate() {
            let share = base + usize::from(t < extra);
            self.gemm_node(qi, qj, cur, cur + share, depth + 1);
            cur += share;
        }
        debug_assert_eq!(cur, hi);
    }
}

// ---------------------------------------------------------------------
// Distributed tree (AtA-D).
// ---------------------------------------------------------------------

/// A node of the distributed task tree.
#[derive(Debug, Clone)]
pub struct DistNode {
    /// Index in [`DistTree::nodes`].
    pub id: usize,
    /// Parent node (`None` for the root).
    pub parent: Option<usize>,
    /// Children node ids (empty for leaves).
    pub children: Vec<usize>,
    /// Process that owns this node: executes the leaf computation, or
    /// gathers/sums the children's results for inner nodes.
    pub owner: usize,
    /// Processes `[lo, hi)` cooperating below this node.
    pub procs: (usize, usize),
    /// Task kind.
    pub kind: ComputeKind,
    /// Left operand: a block of `A` (transposed in the product).
    pub a: Region,
    /// Right operand: a block of `A` (`== a` for `AtA` nodes).
    pub b: Region,
    /// Destination region of `C`. For `AtA` nodes only the lower
    /// triangle of this square region is meaningful.
    pub c: Region,
}

impl DistNode {
    /// True when this node carries a leaf computation.
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }
}

/// The distributed task tree (Figure 1).
#[derive(Debug, Clone)]
pub struct DistTree {
    /// Process count the tree was built for.
    pub procs: usize,
    /// Nodes in creation order; node 0 is the root.
    pub nodes: Vec<DistNode>,
    /// Depth of the deepest leaf (root = 0).
    pub depth: usize,
}

impl DistTree {
    /// Build the tree for an `m x n` matrix and `procs` processes with
    /// the paper's load-balance parameter `alpha = 1/2` (§4.1.2).
    ///
    /// # Panics
    /// If `procs == 0`.
    pub fn build(m: usize, n: usize, procs: usize) -> Self {
        Self::build_with_alpha(m, n, procs, 0.5)
    }

    /// Build the tree with an explicit load-balance parameter
    /// `alpha ∈ (0, 1)`: the fraction of each level's processes assigned
    /// to the two `A^T B` children (§4.1.2 derives `alpha = 1/2` from
    /// `4 T(n)/(1-alpha)P = 4 T(n)/alpha P`; the `ablation` bench sweeps
    /// it to confirm the optimum). The fraction is clamped so that both
    /// gemm children and the AtA group keep at least one process.
    ///
    /// # Panics
    /// If `procs == 0` or `alpha` is not in `(0, 1)`.
    pub fn build_with_alpha(m: usize, n: usize, procs: usize, alpha: f64) -> Self {
        assert!(procs > 0, "DistTree needs at least one process");
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "alpha must be in (0, 1), got {alpha}"
        );
        DIST_TREE_BUILDS.fetch_add(1, Ordering::Relaxed);
        *DIST_TREE_BUILDS_BY_SHAPE
            .lock()
            .expect("build counter poisoned")
            .get_or_insert_with(HashMap::new)
            .entry((m, n, procs))
            .or_insert(0) += 1;
        let mut tree = DistTree {
            procs,
            nodes: Vec::new(),
            depth: 0,
        };
        tree.ata_node(
            None,
            Region::new(0, m, 0, n),
            Region::new(0, n, 0, n),
            0,
            procs,
            0,
            alpha,
        );
        tree
    }

    /// Process-wide number of [`DistTree`] constructions so far.
    pub fn build_count() -> u64 {
        DIST_TREE_BUILDS.load(Ordering::Relaxed)
    }

    /// Process-wide number of [`DistTree`] constructions for one
    /// specific `(m, n, procs)` shape.
    ///
    /// Plan-level amortization tests snapshot this around repeated
    /// executions to prove the distributed backend builds its tree once
    /// at planning time and never again (the PR 2 follow-up the
    /// `DistPlan` refactor closes). Keying by shape keeps the assertion
    /// deterministic under the parallel test harness: sibling tests
    /// building trees for *other* shapes cannot perturb the count, so a
    /// test only needs a shape unique within its own binary.
    pub fn build_count_for(m: usize, n: usize, procs: usize) -> u64 {
        DIST_TREE_BUILDS_BY_SHAPE
            .lock()
            .expect("build counter poisoned")
            .as_ref()
            .and_then(|map| map.get(&(m, n, procs)).copied())
            .unwrap_or(0)
    }

    /// All leaf nodes.
    pub fn leaves(&self) -> impl Iterator<Item = &DistNode> {
        self.nodes.iter().filter(|n| n.is_leaf())
    }

    /// Leaf tasks owned by `rank`.
    pub fn tasks_for(&self, rank: usize) -> Vec<&DistNode> {
        self.nodes
            .iter()
            .filter(|n| n.is_leaf() && n.owner == rank)
            .collect()
    }

    /// Inner nodes owned by `rank`, deepest first (gather order).
    pub fn gathers_for(&self, rank: usize) -> Vec<&DistNode> {
        let mut v: Vec<&DistNode> = self
            .nodes
            .iter()
            .filter(|n| !n.is_leaf() && n.owner == rank)
            .collect();
        v.sort_by_key(|n| std::cmp::Reverse(self.depth_of(n.id)));
        v
    }

    /// Depth of a node (root = 0).
    pub fn depth_of(&self, id: usize) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.nodes[cur].parent {
            d += 1;
            cur = p;
        }
        d
    }

    #[allow(clippy::too_many_arguments)] // one argument per DistNode field
    fn push(
        &mut self,
        parent: Option<usize>,
        kind: ComputeKind,
        a: Region,
        b: Region,
        c: Region,
        lo: usize,
        hi: usize,
        depth: usize,
    ) -> usize {
        let id = self.nodes.len();
        self.nodes.push(DistNode {
            id,
            parent,
            children: Vec::new(),
            owner: lo,
            procs: (lo, hi),
            kind,
            a,
            b,
            c,
        });
        if let Some(p) = parent {
            self.nodes[p].children.push(id);
        }
        self.depth = self.depth.max(depth);
        id
    }

    #[allow(clippy::too_many_arguments)]
    fn ata_node(
        &mut self,
        parent: Option<usize>,
        a: Region,
        c: Region,
        lo: usize,
        hi: usize,
        depth: usize,
        alpha: f64,
    ) -> usize {
        let id = self.push(parent, ComputeKind::AtA, a, a, c, lo, hi, depth);
        let p = hi - lo;
        if p <= 1 || a.cols() <= 1 || a.is_empty() {
            return id; // leaf
        }
        if p < 6 {
            // Incomplete level: equal-area triangle bands, one process
            // each; a band is one A^T B rectangle plus one diagonal A^T A
            // tile (both leaves, same owner).
            let bounds = triangle_row_partition(a.cols(), p);
            for t in 0..p {
                let (b0, b1) = (bounds[t], bounds[t + 1]);
                if b0 == b1 {
                    continue;
                }
                let band_cols = Region::new(a.r0, a.r1, a.c0 + b0, a.c0 + b1);
                if b0 > 0 {
                    let left_cols = Region::new(a.r0, a.r1, a.c0, a.c0 + b0);
                    let c_rect = Region::new(c.r0 + b0, c.r0 + b1, c.c0, c.c0 + b0);
                    self.push(
                        Some(id),
                        ComputeKind::AtB,
                        band_cols,
                        left_cols,
                        c_rect,
                        lo + t,
                        lo + t + 1,
                        depth + 1,
                    );
                }
                let c_diag = Region::new(c.r0 + b0, c.r0 + b1, c.c0 + b0, c.c0 + b1);
                self.push(
                    Some(id),
                    ComputeKind::AtA,
                    band_cols,
                    band_cols,
                    c_diag,
                    lo + t,
                    lo + t + 1,
                    depth + 1,
                );
            }
            return id;
        }

        // Complete level: quadrants. alpha = 1/2 (§4.1.2): half the
        // processes to the two gemm children, half to the four AtA
        // children; the owner (lo) joins the first gemm group, matching
        // "after the first parallel level, p0 works on an A^T B task".
        // At exactly p = 6 each of the six children gets one process —
        // this is what makes l(6) = 1 in Eq. 5.
        let rm = a.r0 + half_up(a.rows());
        let cm = a.c0 + half_up(a.cols());
        let a11 = Region::new(a.r0, rm, a.c0, cm);
        let a12 = Region::new(a.r0, rm, cm, a.c1);
        let a21 = Region::new(rm, a.r1, a.c0, cm);
        let a22 = Region::new(rm, a.r1, cm, a.c1);
        let half = cm - a.c0;
        let c11 = Region::new(c.r0, c.r0 + half, c.c0, c.c0 + half);
        let c22 = Region::new(c.r0 + half, c.r1, c.c0 + half, c.c1);
        let c21 = Region::new(c.r0 + half, c.r1, c.c0, c.c0 + half);

        let (g1, g2, a_total) = if p == 6 {
            (1, 1, 4)
        } else {
            // alpha * P processes for the two gemm children, clamped so
            // both gemm children and the AtA group stay non-empty.
            let g_total = ((alpha * p as f64).round() as usize).clamp(2, p - 4);
            (half_up(g_total), g_total - half_up(g_total), p - g_total)
        };
        // Spread a_total over four AtA children; zero-share children are
        // co-hosted by the last process of the AtA group.
        let ab = a_total / 4;
        let ar = a_total % 4;
        let mut shares = [0usize; 4];
        for (t, s) in shares.iter_mut().enumerate() {
            *s = ab + usize::from(t < ar);
        }

        let mut cur = lo;
        self.atb_node(Some(id), a12, a11, c21, cur, cur + g1, depth + 1);
        cur += g1;
        self.atb_node(Some(id), a22, a21, c21, cur, cur + g2, depth + 1);
        cur += g2;
        let ata_children = [(a11, c11), (a21, c11), (a12, c22), (a22, c22)];
        for (t, &(ablk, cblk)) in ata_children.iter().enumerate() {
            if shares[t] == 0 {
                // co-host on the last proc
                self.ata_node(Some(id), ablk, cblk, hi - 1, hi, depth + 1, alpha);
            } else {
                self.ata_node(Some(id), ablk, cblk, cur, cur + shares[t], depth + 1, alpha);
                cur += shares[t];
            }
        }
        id
    }

    #[allow(clippy::too_many_arguments)]
    fn atb_node(
        &mut self,
        parent: Option<usize>,
        a: Region,
        b: Region,
        c: Region,
        lo: usize,
        hi: usize,
        depth: usize,
    ) -> usize {
        let id = self.push(parent, ComputeKind::AtB, a, b, c, lo, hi, depth);
        let q = hi - lo;
        if q <= 1 || c.is_empty() {
            return id; // leaf
        }
        if q < 8 {
            // Incomplete level: vertical tiling of the C block (Fig. 2) —
            // one column strip of B (and C) per process.
            let strips = q.min(b.cols().max(1));
            let w = b.cols().div_ceil(strips);
            for t in 0..strips {
                let s0 = b.c0 + t * w;
                let s1 = (s0 + w).min(b.c1);
                if s0 >= s1 {
                    break;
                }
                let b_strip = Region::new(b.r0, b.r1, s0, s1);
                let c_strip = Region::new(c.r0, c.r1, c.c0 + (s0 - b.c0), c.c0 + (s1 - b.c0));
                self.push(
                    Some(id),
                    ComputeKind::AtB,
                    a,
                    b_strip,
                    c_strip,
                    lo + t,
                    lo + t + 1,
                    depth + 1,
                );
            }
            return id;
        }
        // Complete level: Algorithm 2's eight recursive calls — quadrant
        // split of A's columns (i), B's columns (j) and the shared row
        // range (l). (i, j, 1) and (i, j, 2) write the same C block;
        // the parent sums them at retrieval.
        let rm = a.r0 + half_up(a.rows());
        let am = a.c0 + half_up(a.cols());
        let bm = b.c0 + half_up(b.cols());
        // q >= 8 here, so every share is >= 1 and the shares sum to q.
        let base = q / 8;
        let extra = q % 8;
        let mut cur = lo;
        let mut t = 0;
        for (i0, i1) in [(a.c0, am), (am, a.c1)] {
            for (j0, j1) in [(b.c0, bm), (bm, b.c1)] {
                for (r0, r1) in [(a.r0, rm), (rm, a.r1)] {
                    let share = base + usize::from(t < extra);
                    let a_blk = Region::new(r0, r1, i0, i1);
                    let b_blk = Region::new(r0, r1, j0, j1);
                    let c_blk = Region::new(
                        c.r0 + (i0 - a.c0),
                        c.r0 + (i1 - a.c0),
                        c.c0 + (j0 - b.c0),
                        c.c0 + (j1 - b.c0),
                    );
                    self.atb_node(Some(id), a_blk, b_blk, c_blk, cur, cur + share, depth + 1);
                    cur += share;
                    t += 1;
                }
            }
        }
        debug_assert_eq!(cur, hi);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference, Matrix};

    // ---------- closed forms ----------

    #[test]
    fn dist_levels_matches_paper_examples() {
        assert_eq!(dist_levels(1), 0);
        for p in 2..=6 {
            assert_eq!(dist_levels(p), 1, "P={p}");
        }
        // P = 16: k = 0 (4/8 < 1), sign(4 mod 8) = 1 -> 2 (Figure 1).
        assert_eq!(dist_levels(16), 2);
        // P = 32: k = 1 (8/8 = 1), sign(8 mod 8) = 0 -> 2.
        assert_eq!(dist_levels(32), 2);
        // P = 64: k = 1 (16/8 >= 1, 16/64 < 1), sign(16 mod 8) = 0 -> 2.
        assert_eq!(dist_levels(64), 2);
        // P = 256: k = 2, sign(64 mod 64) = 0 -> 3.
        assert_eq!(dist_levels(256), 3);
    }

    #[test]
    fn shared_levels_matches_paper_examples() {
        assert_eq!(shared_levels(1), 0);
        assert_eq!(shared_levels(2), 1);
        assert_eq!(shared_levels(3), 1);
        // P = 4: k=0, sign(2 mod 4)=1 -> 2.
        assert_eq!(shared_levels(4), 2);
        // P = 8: half=4, k=1, sign(4 mod 4)=0 -> 2.
        assert_eq!(shared_levels(8), 2);
        // P = 16: half=8, k=1, sign(8 mod 4)=0 -> 2.
        assert_eq!(shared_levels(16), 2);
        // P = 32: half=16, k=2, sign(16 mod 16)=0 -> 3.
        assert_eq!(shared_levels(32), 3);
    }

    #[test]
    fn level_functions_are_monotone_stepwise() {
        for f in [dist_levels as fn(usize) -> usize, shared_levels] {
            let mut prev = 0;
            for p in 1..=512 {
                let l = f(p);
                assert!(l + 1 >= prev, "levels must not drop by more than roundoff");
                assert!(l >= prev.saturating_sub(1));
                prev = prev.max(l);
            }
            // log-like growth: l(512) stays small.
            assert!(f(512) <= 5);
        }
    }

    // ---------- shared plan ----------

    /// Execute a shared plan sequentially with naive kernels; must
    /// reproduce the full lower triangle of A^T A exactly once.
    fn run_shared_plan(n: usize, p: usize) {
        let m = n + 3;
        let a = gen::standard::<f64>(n as u64 * 7 + p as u64, m, n);
        let plan = SharedPlan::build(n, p);
        let mut c = Matrix::<f64>::zeros(n, n);
        for t in &plan.tasks {
            let a_left = a.as_ref().block(0, m, t.a_cols.0, t.a_cols.1);
            match t.kind {
                ComputeKind::AtA => {
                    let mut blk = c.as_mut().into_block(t.c.r0, t.c.r1, t.c.c0, t.c.c1);
                    reference::syrk_ln(1.0, a_left, &mut blk);
                }
                ComputeKind::AtB => {
                    let b = a.as_ref().block(0, m, t.b_cols.0, t.b_cols.1);
                    let mut blk = c.as_mut().into_block(t.c.r0, t.c.r1, t.c.c0, t.c.c1);
                    reference::gemm_tn(1.0, a_left, b, &mut blk);
                }
            }
        }
        let mut c_ref = Matrix::<f64>::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        let diff = c.max_abs_diff_lower(&c_ref);
        assert!(
            diff < 1e-10,
            "n={n} P={p}: plan execution differs by {diff}"
        );
    }

    #[test]
    fn shared_plan_reconstructs_ata_for_many_p() {
        for p in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16, 31, 32] {
            run_shared_plan(64, p);
        }
    }

    #[test]
    fn shared_plan_small_matrices() {
        for p in [1usize, 2, 4, 16] {
            for n in [1usize, 2, 3, 5] {
                run_shared_plan(n, p);
            }
        }
    }

    #[test]
    fn shared_plan_regions_are_pairwise_disjoint() {
        for p in [2usize, 3, 4, 7, 8, 16, 64] {
            let plan = SharedPlan::build(128, p);
            for (i, t1) in plan.tasks.iter().enumerate() {
                for t2 in &plan.tasks[i + 1..] {
                    assert!(
                        !t1.c.intersects(&t2.c),
                        "P={p}: overlapping writes {t1:?} vs {t2:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn shared_plan_covers_lower_triangle_area() {
        let n = 96usize;
        for p in [1usize, 2, 5, 8, 16] {
            let plan = SharedPlan::build(n, p);
            let area: usize = plan
                .tasks
                .iter()
                .map(|t| match t.kind {
                    ComputeKind::AtA => {
                        let l = t.c.rows();
                        l * (l + 1) / 2
                    }
                    ComputeKind::AtB => t.c.area(),
                })
                .sum();
            assert_eq!(area, n * (n + 1) / 2, "P={p}");
        }
    }

    #[test]
    fn shared_plan_uses_all_procs_when_matrix_is_big_enough() {
        for p in [2usize, 4, 8, 16] {
            let plan = SharedPlan::build(256, p);
            let mut used = vec![false; p];
            for t in &plan.tasks {
                assert!(t.proc_id < p);
                used[t.proc_id] = true;
            }
            assert!(used.iter().all(|&u| u), "P={p}: idle threads {used:?}");
        }
    }

    #[test]
    fn shared_plan_depth_matches_formula_on_complete_levels() {
        // Complete levels: P = 2 * 4^k and the trivial cases.
        for (p, expect) in [(1usize, 0usize), (2, 1), (3, 1), (8, 2), (32, 3)] {
            let plan = SharedPlan::build(1 << 12, p);
            assert_eq!(plan.depth, expect, "P={p}");
            assert_eq!(shared_levels(p), expect, "formula P={p}");
        }
        // Elsewhere the construction is within one level of Eq. 6.
        for p in [4usize, 5, 6, 7, 12, 16, 24, 64] {
            let plan = SharedPlan::build(1 << 12, p);
            let f = shared_levels(p);
            assert!(
                plan.depth >= f && plan.depth <= f + 1,
                "P={p}: depth {} vs formula {f}",
                plan.depth
            );
        }
    }

    // ---------- distributed tree ----------

    /// Execute a dist tree: leaves computed naively, then accumulated
    /// (simulating gather-with-sums). Must reproduce lower(A^T A).
    fn run_dist_tree(m: usize, n: usize, p: usize) {
        let a = gen::standard::<f64>(m as u64 + n as u64 * 3 + p as u64, m, n);
        let tree = DistTree::build(m, n, p);
        let mut c = Matrix::<f64>::zeros(n, n);
        for leaf in tree.leaves() {
            let a_blk = a.as_ref().block(leaf.a.r0, leaf.a.r1, leaf.a.c0, leaf.a.c1);
            match leaf.kind {
                ComputeKind::AtA => {
                    let mut blk = c
                        .as_mut()
                        .into_block(leaf.c.r0, leaf.c.r1, leaf.c.c0, leaf.c.c1);
                    reference::syrk_ln(1.0, a_blk, &mut blk);
                }
                ComputeKind::AtB => {
                    let b_blk = a.as_ref().block(leaf.b.r0, leaf.b.r1, leaf.b.c0, leaf.b.c1);
                    let mut blk = c
                        .as_mut()
                        .into_block(leaf.c.r0, leaf.c.r1, leaf.c.c0, leaf.c.c1);
                    reference::gemm_tn(1.0, a_blk, b_blk, &mut blk);
                }
            }
        }
        let mut c_ref = Matrix::<f64>::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        let diff = c.max_abs_diff_lower(&c_ref);
        assert!(
            diff < 1e-10,
            "m={m} n={n} P={p}: dist tree differs by {diff}"
        );
    }

    #[test]
    fn dist_tree_reconstructs_ata_for_many_p() {
        for p in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 48, 64] {
            run_dist_tree(40, 36, p);
        }
    }

    #[test]
    fn dist_tree_rectangular_inputs() {
        for &(m, n) in &[(70, 20), (20, 70), (33, 33), (5, 64)] {
            for p in [4usize, 16, 64] {
                run_dist_tree(m, n, p);
            }
        }
    }

    /// Execute a dist tree built with an explicit alpha; correctness must
    /// be alpha-independent (only the load balance changes).
    fn run_dist_tree_alpha(m: usize, n: usize, p: usize, alpha: f64) {
        let a = gen::standard::<f64>(77, m, n);
        let tree = DistTree::build_with_alpha(m, n, p, alpha);
        let mut c = Matrix::<f64>::zeros(n, n);
        for leaf in tree.leaves() {
            let a_blk = a.as_ref().block(leaf.a.r0, leaf.a.r1, leaf.a.c0, leaf.a.c1);
            match leaf.kind {
                ComputeKind::AtA => {
                    let mut blk = c
                        .as_mut()
                        .into_block(leaf.c.r0, leaf.c.r1, leaf.c.c0, leaf.c.c1);
                    reference::syrk_ln(1.0, a_blk, &mut blk);
                }
                ComputeKind::AtB => {
                    let b_blk = a.as_ref().block(leaf.b.r0, leaf.b.r1, leaf.b.c0, leaf.b.c1);
                    let mut blk = c
                        .as_mut()
                        .into_block(leaf.c.r0, leaf.c.r1, leaf.c.c0, leaf.c.c1);
                    reference::gemm_tn(1.0, a_blk, b_blk, &mut blk);
                }
            }
        }
        let mut c_ref = Matrix::<f64>::zeros(n, n);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        let diff = c.max_abs_diff_lower(&c_ref);
        assert!(
            diff < 1e-10,
            "alpha={alpha} P={p}: dist tree differs by {diff}"
        );
    }

    #[test]
    fn dist_tree_alpha_sweep_stays_correct() {
        for &alpha in &[0.1, 0.25, 0.4, 0.5, 0.6, 0.75, 0.9] {
            for p in [7usize, 12, 16, 32] {
                run_dist_tree_alpha(48, 40, p, alpha);
            }
        }
    }

    #[test]
    fn dist_tree_alpha_half_is_default_build() {
        let t1 = DistTree::build(64, 64, 24);
        let t2 = DistTree::build_with_alpha(64, 64, 24, 0.5);
        assert_eq!(t1.nodes.len(), t2.nodes.len());
        for (a, b) in t1.nodes.iter().zip(&t2.nodes) {
            assert_eq!(a.owner, b.owner);
            assert_eq!(a.procs, b.procs);
            assert_eq!(a.kind, b.kind);
        }
    }

    #[test]
    fn dist_tree_alpha_shifts_gemm_share() {
        // With alpha = 0.75 the two gemm children of the root get 3/4 of
        // the processes; with 0.25 only a quarter.
        let p = 32usize;
        let share = |alpha: f64| {
            let tree = DistTree::build_with_alpha(64, 64, p, alpha);
            let root_children: Vec<_> = tree.nodes[0]
                .children
                .iter()
                .map(|&c| &tree.nodes[c])
                .collect();
            root_children
                .iter()
                .filter(|n| n.kind == ComputeKind::AtB)
                .map(|n| n.procs.1 - n.procs.0)
                .sum::<usize>()
        };
        assert_eq!(share(0.5), 16);
        assert_eq!(share(0.75), 24);
        assert_eq!(share(0.25), 8);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn dist_tree_alpha_out_of_range_rejected() {
        let _ = DistTree::build_with_alpha(8, 8, 8, 1.0);
    }

    #[test]
    fn dist_tree_root_is_proc_zero_and_parents_consistent() {
        let tree = DistTree::build(64, 64, 16);
        assert_eq!(tree.nodes[0].owner, 0);
        assert_eq!(tree.nodes[0].parent, None);
        for node in &tree.nodes[1..] {
            let parent = &tree.nodes[node.parent.expect("non-root must have parent")];
            assert!(parent.children.contains(&node.id));
            // Child procs nest inside parent procs.
            assert!(node.procs.0 >= parent.procs.0 && node.procs.1 <= parent.procs.1);
        }
    }

    #[test]
    fn dist_tree_p0_computes_a_gemm_task_after_level_one() {
        // §4.3.2: "After the first parallel level, p0 works on a A^T B task".
        let tree = DistTree::build(256, 256, 16);
        let tasks = tree.tasks_for(0);
        assert!(!tasks.is_empty());
        assert!(tasks.iter().all(|t| t.kind == ComputeKind::AtB));
    }

    #[test]
    fn dist_tree_figure1_shape_for_p16() {
        // Level 1 must have 6 children: 2 gemm (4 procs each), 4 AtA
        // (2 procs each) — Figure 1's split.
        let tree = DistTree::build(1 << 10, 1 << 10, 16);
        let root = &tree.nodes[0];
        assert_eq!(root.children.len(), 6);
        let kinds: Vec<_> = root.children.iter().map(|&c| tree.nodes[c].kind).collect();
        assert_eq!(kinds.iter().filter(|k| **k == ComputeKind::AtB).count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == ComputeKind::AtA).count(), 4);
        for &cid in &root.children {
            let c = &tree.nodes[cid];
            let share = c.procs.1 - c.procs.0;
            match c.kind {
                ComputeKind::AtB => assert_eq!(share, 4, "gemm children get P/4"),
                ComputeKind::AtA => assert_eq!(share, 2, "AtA children get P/8"),
            }
        }
        assert_eq!(tree.depth, 2, "Figure 1 has two parallel levels");
        assert_eq!(tree.depth, dist_levels(16));
    }

    #[test]
    fn dist_tree_depth_tracks_formula() {
        for (p, exact) in [
            (1usize, true),
            (2, true),
            (4, true),
            (6, true),
            (16, true),
            (32, true),
        ] {
            let tree = DistTree::build(1 << 11, 1 << 11, p);
            let f = dist_levels(p);
            if exact {
                assert_eq!(tree.depth, f, "P={p}");
            }
        }
        // Remainder handling may cost one extra level vs Eq. 5.
        for p in [8usize, 12, 24, 48, 64, 128] {
            let tree = DistTree::build(1 << 11, 1 << 11, p);
            let f = dist_levels(p);
            assert!(
                tree.depth >= f && tree.depth <= f + 1,
                "P={p}: depth {} vs formula {f}",
                tree.depth
            );
        }
    }

    #[test]
    fn dist_tree_every_proc_gets_work_on_big_inputs() {
        for p in [2usize, 6, 8, 16, 64] {
            let tree = DistTree::build(512, 512, p);
            let mut used = vec![false; p];
            for leaf in tree.leaves() {
                assert!(leaf.owner < p, "owner out of range");
                used[leaf.owner] = true;
            }
            assert!(used.iter().all(|&u| u), "P={p}: idle processes");
        }
    }

    #[test]
    fn region_intersection_logic() {
        let a = Region::new(0, 4, 0, 4);
        let b = Region::new(3, 5, 3, 5);
        let c = Region::new(4, 8, 0, 4);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert!(
            !Region::new(0, 0, 0, 4).intersects(&a),
            "empty never intersects"
        );
        assert_eq!(a.area(), 16);
        assert_eq!(b.rows(), 2);
    }
}
