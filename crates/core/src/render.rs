//! Task-tree rendering: ASCII trees for terminals and DOT graphs for
//! Graphviz — the tooling counterpart of the paper's Figure 1.

use crate::tasktree::{ComputeKind, DistTree, SharedPlan};
use std::fmt::Write;

fn kind_label(kind: ComputeKind) -> &'static str {
    match kind {
        ComputeKind::AtA => "AtA",
        ComputeKind::AtB => "AtB",
    }
}

/// Render a [`DistTree`] as an indented ASCII tree (one line per node:
/// kind, owner, process range, operand and destination regions).
pub fn dist_tree_ascii(tree: &DistTree) -> String {
    let mut out = String::new();
    fn visit(tree: &DistTree, id: usize, depth: usize, out: &mut String) {
        let n = &tree.nodes[id];
        let pad = "  ".repeat(depth);
        let leaf = if n.is_leaf() { " [leaf]" } else { "" };
        writeln!(
            out,
            "{pad}{} p{} procs[{},{}) A({}..{},{}..{}) -> C({}..{},{}..{}){leaf}",
            kind_label(n.kind),
            n.owner,
            n.procs.0,
            n.procs.1,
            n.a.r0,
            n.a.r1,
            n.a.c0,
            n.a.c1,
            n.c.r0,
            n.c.r1,
            n.c.c0,
            n.c.c1,
        )
        .expect("write to string");
        for &c in &n.children {
            visit(tree, c, depth + 1, out);
        }
    }
    visit(tree, 0, 0, &mut out);
    out
}

/// Render a [`DistTree`] as a Graphviz DOT digraph. Leaf nodes are
/// boxes (computations); inner nodes are ellipses (gather/sum duties),
/// mirroring Figure 1's drawing.
pub fn dist_tree_dot(tree: &DistTree) -> String {
    let mut out = String::from("digraph ata_d {\n  rankdir=TB;\n");
    for n in &tree.nodes {
        let shape = if n.is_leaf() { "box" } else { "ellipse" };
        writeln!(
            out,
            "  n{} [shape={shape}, label=\"{} p{}\\nprocs [{}, {})\"];",
            n.id,
            kind_label(n.kind),
            n.owner,
            n.procs.0,
            n.procs.1
        )
        .expect("write to string");
        if let Some(p) = n.parent {
            writeln!(out, "  n{} -> n{};", p, n.id).expect("write to string");
        }
    }
    out.push_str("}\n");
    out
}

/// Render a [`SharedPlan`] as a per-thread task listing.
pub fn shared_plan_ascii(plan: &SharedPlan) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "shared plan: {} threads, {} tasks, depth {}",
        plan.procs,
        plan.tasks.len(),
        plan.depth
    )
    .expect("write to string");
    for proc_id in 0..plan.procs {
        let tasks: Vec<String> = plan
            .tasks_for(proc_id)
            .map(|t| {
                format!(
                    "{}(cols {}..{} x {}..{})",
                    kind_label(t.kind),
                    t.a_cols.0,
                    t.a_cols.1,
                    t.b_cols.0,
                    t.b_cols.1
                )
            })
            .collect();
        writeln!(
            out,
            "  t{proc_id}: {}",
            if tasks.is_empty() {
                "(idle)".into()
            } else {
                tasks.join(", ")
            }
        )
        .expect("write to string");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascii_tree_mentions_every_leaf() {
        let tree = DistTree::build(64, 64, 16);
        let text = dist_tree_ascii(&tree);
        let leaf_count = tree.leaves().count();
        assert_eq!(text.matches("[leaf]").count(), leaf_count);
        // Root line is unindented and first.
        assert!(text.starts_with("AtA p0"));
    }

    #[test]
    fn dot_output_is_wellformed() {
        let tree = DistTree::build(32, 32, 8);
        let dot = dist_tree_dot(&tree);
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        // One node statement per tree node, one edge per non-root.
        assert_eq!(dot.matches("shape=").count(), tree.nodes.len());
        assert_eq!(dot.matches(" -> ").count(), tree.nodes.len() - 1);
    }

    #[test]
    fn shared_listing_covers_all_threads() {
        let plan = SharedPlan::build(256, 8);
        let text = shared_plan_ascii(&plan);
        for t in 0..8 {
            assert!(text.contains(&format!("t{t}:")), "thread {t} missing");
        }
        assert!(text.contains("8 threads"));
    }

    #[test]
    fn figure1_shape_visible_in_ascii() {
        // P = 16 on a square matrix: the Figure 1 structure — 2 gemm
        // children with 4 procs, 4 AtA children with 2 procs.
        let tree = DistTree::build(1 << 8, 1 << 8, 16);
        let text = dist_tree_ascii(&tree);
        assert_eq!(text.matches("procs[0,4)").count(), 1, "first gemm child");
        assert!(text.contains("AtB p0 procs[0,4)"));
        assert!(text.contains("AtB p4 procs[4,8)"));
    }
}
