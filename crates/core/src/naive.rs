//! Algorithm 2 (`RecursiveGEMM`) and `AtANaive` — the naive recursive
//! variants the paper defines alongside AtA.
//!
//! `RecursiveGEMM` is the classical divide-and-conquer `C += A^T B`
//! (eight recursive sub-products, no Strassen); `AtANaive` is Algorithm 1
//! with `RecursiveGEMM` in place of `FastStrassen`. The paper uses their
//! recursion *trees* to schedule the parallel algorithms (§4.1.3: naive
//! recursion avoids Strassen's extra memory and keeps the workload
//! balanceable), and they double as cache-oblivious baselines: same
//! memory behaviour as AtA, classical flop count.

use ata_kernels::{gemm_tn, syrk_ln, CacheConfig};
use ata_mat::{half_up, MatMut, MatRef, Scalar};

/// Algorithm 2: `C += alpha * A^T B` by eight-way recursion.
///
/// Base case per the paper (line 2): both operands fit in cache
/// (`m*n + m*k <= cache words`), where the blocked `gemm_tn` kernel runs.
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
pub fn recursive_gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "recursive_gemm: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "recursive_gemm: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    rec_gemm(alpha, a, b, c, cfg);
}

#[allow(clippy::needless_range_loop)] // the [l][i]/[l][j] indexing mirrors Algorithm 2
fn rec_gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let (m, n) = a.shape();
    let k = b.cols();
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if cfg.gemm_base(m, n, k) || (m <= 1 && n <= 1 && k <= 1) {
        gemm_tn(alpha, a, b, c);
        return;
    }
    let (a11, a12, a21, a22) = a.quad_split();
    let (b11, b12, b21, b22) = b.quad_split();
    let n1 = half_up(n);
    let k1 = half_up(k);

    // The 2x2x2 loop nest of Algorithm 2: C_ij += A_li^T B_lj.
    // (i = A column half, j = B column half, l = shared row half.)
    let a_halves = [[a11, a12], [a21, a22]]; // indexed [l][i]
    let b_halves = [[b11, b12], [b21, b22]]; // indexed [l][j]
    for i in 0..2 {
        for j in 0..2 {
            let (r0, r1) = if i == 0 { (0, n1) } else { (n1, n) };
            let (q0, q1) = if j == 0 { (0, k1) } else { (k1, k) };
            for l in 0..2 {
                let mut cij = c.block_mut(r0, r1, q0, q1);
                rec_gemm(alpha, a_halves[l][i], b_halves[l][j], &mut cij, cfg);
            }
        }
    }
}

/// `AtANaive`: Algorithm 1 with [`recursive_gemm`] for the off-diagonal
/// block — the variant whose recursion tree drives the §4.1 scheduler.
///
/// Shapes: `A: m x n`, `C: n x n` (lower triangle only).
///
/// # Panics
/// On inconsistent shapes.
pub fn ata_naive<T: Scalar>(alpha: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>, cfg: &CacheConfig) {
    let (m, n) = a.shape();
    assert_eq!(
        c.shape(),
        (n, n),
        "ata_naive: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 {
        return;
    }
    rec_naive(alpha, a, c, cfg);
}

fn rec_naive<T: Scalar>(alpha: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>, cfg: &CacheConfig) {
    let (m, n) = a.shape();
    if m == 0 || n == 0 {
        return;
    }
    if cfg.ata_base(m, n) {
        syrk_ln(alpha, a, c);
        return;
    }
    let n1 = half_up(n);
    let (a11, a12, a21, a22) = a.quad_split();
    {
        let mut c11 = c.block_mut(0, n1, 0, n1);
        rec_naive(alpha, a11, &mut c11, cfg);
    }
    {
        let mut c11 = c.block_mut(0, n1, 0, n1);
        rec_naive(alpha, a21, &mut c11, cfg);
    }
    {
        let mut c22 = c.block_mut(n1, n, n1, n);
        rec_naive(alpha, a12, &mut c22, cfg);
    }
    {
        let mut c22 = c.block_mut(n1, n, n1, n);
        rec_naive(alpha, a22, &mut c22, cfg);
    }
    {
        let mut c21 = c.block_mut(n1, n, 0, n1);
        rec_gemm(alpha, a12, a11, &mut c21, cfg);
    }
    {
        let mut c21 = c.block_mut(n1, n, 0, n1);
        rec_gemm(alpha, a22, a21, &mut c21, cfg);
    }
}

/// Multiplications performed by [`recursive_gemm`] — exactly the
/// classical `m*n*k` regardless of the recursion (a test asserts this;
/// the recursion buys cache behaviour, not flops). Used by the §4.1.2
/// load-balance discussion: "the computational complexity of
/// RecursiveGEMM is roughly twice the one of AtA".
pub fn recursive_gemm_mults(m: usize, n: usize, k: usize) -> u64 {
    (m as u64) * (n as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::tracked::{measure, Tracked};
    use ata_mat::{gen, reference, Matrix};

    #[test]
    fn recursive_gemm_matches_oracle() {
        for &(m, n, k) in &[(1, 1, 1), (8, 8, 8), (7, 9, 5), (33, 17, 21), (16, 64, 4)] {
            let a = gen::standard::<f64>(m as u64, m, n);
            let b = gen::standard::<f64>(n as u64 + 9, m, k);
            let mut fast = gen::standard::<f64>(3, n, k);
            let mut slow = fast.clone();
            recursive_gemm(
                1.5,
                a.as_ref(),
                b.as_ref(),
                &mut fast.as_mut(),
                &CacheConfig::with_words(16),
            );
            reference::gemm_tn(1.5, a.as_ref(), b.as_ref(), &mut slow.as_mut());
            assert!(fast.max_abs_diff(&slow) < 1e-10, "({m},{n},{k})");
        }
    }

    #[test]
    fn ata_naive_matches_oracle() {
        for &(m, n) in &[(1, 1), (12, 12), (13, 9), (9, 13), (40, 24)] {
            let a = gen::standard::<f64>(m as u64 * 3 + n as u64, m, n);
            let mut fast = Matrix::zeros(n, n);
            ata_naive(
                1.0,
                a.as_ref(),
                &mut fast.as_mut(),
                &CacheConfig::with_words(8),
            );
            let mut slow = Matrix::zeros(n, n);
            reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
            assert!(fast.max_abs_diff_lower(&slow) < 1e-10, "({m},{n})");
        }
    }

    #[test]
    fn recursion_does_not_change_the_classical_flop_count() {
        // RecursiveGEMM must do exactly m*n*k multiplications (plus the
        // alpha-free accumulates) at every recursion depth.
        let (m, n, k) = (8usize, 8usize, 8usize);
        let a = gen::standard::<Tracked>(1, m, n);
        let b = gen::standard::<Tracked>(2, m, k);
        for words in [2usize, 64, 1 << 20] {
            let mut c = Matrix::<Tracked>::zeros(n, k);
            let cfg = CacheConfig::with_words(words);
            let (_, ops) = measure(|| {
                recursive_gemm(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
            });
            assert_eq!(
                ops.muls,
                recursive_gemm_mults(m, n, k),
                "words={words}: classical count must be recursion-invariant"
            );
        }
    }

    #[test]
    fn gemm_costs_twice_ata_per_element() {
        // §4.1.2: "the number of multiplications carried out in T to
        // perform A^T B is twice the one needed to compute A^T A" — on a
        // square n, gemm does n^3 while the triangle costs n^2(n+1)/2.
        let n = 16u64;
        let gemm = recursive_gemm_mults(n as usize, n as usize, n as usize);
        let ata_classical = n * n * (n + 1) / 2;
        let ratio = gemm as f64 / ata_classical as f64;
        assert!((ratio - 2.0).abs() < 0.15, "ratio {ratio}");
    }

    #[test]
    fn ata_naive_agrees_with_strassen_ata_bitwise_on_ternary() {
        let (m, n) = (24usize, 20usize);
        let a = gen::ternary::<f64>(4, m, n);
        let cfg = CacheConfig::with_words(16);
        let mut naive = Matrix::zeros(n, n);
        ata_naive(1.0, a.as_ref(), &mut naive.as_mut(), &cfg);
        let mut fast = Matrix::zeros(n, n);
        crate::serial::ata_into(1.0, a.as_ref(), &mut fast.as_mut(), &cfg);
        assert_eq!(naive.max_abs_diff_lower(&fast), 0.0);
    }

    #[test]
    #[should_panic(expected = "recursive_gemm")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 3);
        let b = Matrix::<f64>::zeros(4, 3);
        let mut c = Matrix::<f64>::zeros(3, 3);
        recursive_gemm(
            1.0,
            a.as_ref(),
            b.as_ref(),
            &mut c.as_mut(),
            &CacheConfig::default(),
        );
    }
}
