//! Complexity analysis — §3.2's claims, *measured*, not just derived.
//!
//! The headline result of the paper (Eq. 3 and the abstract) is that AtA
//! needs `2/3 n^(log2 7) + 1/3 n^2` multiplications — two thirds of
//! Strassen. This module provides
//!
//! * closed-form multiplication counts mirroring the recursions
//!   ([`ata_mults`], re-exporting [`ata_strassen::strassen_mults`]),
//! * the paper's formula [`ata_mults_closed_form`] for fully-recursive
//!   powers of two, and
//! * the effective-GFLOPs metric of Eq. 9 used by every benchmark.
//!
//! The unit tests run the *real* algorithms on the op-counting
//! [`ata_mat::tracked::Tracked`] scalar and assert the measured counts
//! equal these formulas exactly.

use ata_kernels::CacheConfig;
use ata_mat::{half_down, half_up};
use ata_strassen::strassen_mults;

/// Scalar multiplications performed by the AtA recursion (Algorithm 1)
/// on an `m x n` input under cache config `cfg`.
///
/// Base case: `syrk_ln` does `m * n(n+1)/2` multiplications. Recursive
/// case: four AtA quadrant calls plus two Strassen products
/// (`(m1, n2, n1)` and `(m2, n2, n1)`).
pub fn ata_mults(m: usize, n: usize, cfg: &CacheConfig) -> u64 {
    if m == 0 || n == 0 {
        return 0;
    }
    if cfg.ata_base(m, n) {
        return (m as u64) * (n as u64) * (n as u64 + 1) / 2;
    }
    let (m1, m2) = (half_up(m), half_down(m));
    let (n1, n2) = (half_up(n), half_down(n));
    ata_mults(m1, n1, cfg)
        + ata_mults(m2, n1, cfg)
        + ata_mults(m1, n2, cfg)
        + ata_mults(m2, n2, cfg)
        + strassen_mults(m1, n2, n1, cfg)
        + strassen_mults(m2, n2, n1, cfg)
}

/// The paper's closed form for fully-recursive square powers of two:
/// `2/3 * n^(log2 7) + 1/3 * n^2 = (2 * 7^q + 4^q) / 3` for `n = 2^q`.
pub fn ata_mults_closed_form(q: u32) -> u64 {
    (2 * 7u64.pow(q) + 4u64.pow(q)) / 3
}

/// Effective GFLOPs (Eq. 9): `r * m * n^2 / (seconds * 1e9)` for an
/// `m x n` input. `r = 1` for `A^T A`-specific algorithms, `r = 2` for
/// general matrix multiplication. For square matrices this reduces to
/// the paper's `r n^3 / time`.
pub fn effective_gflops(r: f64, m: usize, n: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "effective_gflops needs positive time");
    r * (m as f64) * (n as f64) * (n as f64) / (seconds * 1e9)
}

/// Classical flop count of the `A^T A` product (`~ m n^2` multiply-adds,
/// counting the lower triangle once): used for the %-of-theoretical-peak
/// metric of Figure 6.
pub fn classical_ata_flops(m: usize, n: usize) -> f64 {
    (m as f64) * (n as f64) * (n as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serial::ata_into;
    use ata_mat::tracked::{measure, Tracked};
    use ata_mat::{gen, Matrix};

    /// Fully-recursive config: base cases only at single elements.
    fn deep() -> CacheConfig {
        CacheConfig::with_words(2)
    }

    #[test]
    fn closed_form_matches_recurrence_for_powers_of_two() {
        for q in 0..8u32 {
            let n = 1usize << q;
            assert_eq!(
                ata_mults(n, n, &deep()),
                ata_mults_closed_form(q),
                "n = {n}"
            );
        }
    }

    #[test]
    fn eq3_ratio_two_thirds_of_strassen() {
        // Eq. 3: T_AtA(n) ~ 2/3 T_Strassen(n); the ratio converges from
        // above as the n^2 term fades.
        let mut prev_ratio = f64::INFINITY;
        for q in 3..9u32 {
            let n = 1usize << q;
            let ata = ata_mults(n, n, &deep()) as f64;
            let strassen = strassen_mults(n, n, n, &deep()) as f64;
            let ratio = ata / strassen;
            assert!(ratio > 2.0 / 3.0, "ratio must stay above 2/3");
            assert!(ratio < prev_ratio, "ratio must decrease monotonically");
            prev_ratio = ratio;
        }
        // By n = 256 the ratio is within 2% of 2/3.
        assert!((prev_ratio - 2.0 / 3.0) < 0.02, "ratio {prev_ratio}");
    }

    #[test]
    fn measured_ata_mults_match_formula_exactly() {
        // The flagship reproduction test: run the real Algorithm 1 on
        // counting scalars; measured multiplications must equal
        // (2*7^q + 4^q)/3 exactly.
        for q in 1..5u32 {
            let n = 1usize << q;
            let a = gen::standard::<Tracked>(q as u64, n, n);
            let mut c = Matrix::<Tracked>::zeros(n, n);
            let (_, ops) = measure(|| {
                ata_into(Tracked(1.0), a.as_ref(), &mut c.as_mut(), &deep());
            });
            assert_eq!(
                ops.muls,
                ata_mults_closed_form(q),
                "n={n}: measured muls != (2*7^q + 4^q)/3"
            );
        }
    }

    #[test]
    fn measured_mults_match_recurrence_on_odd_and_rect_shapes() {
        for &(m, n) in &[(3usize, 3usize), (5, 4), (6, 7), (9, 9), (12, 10)] {
            let a = gen::standard::<Tracked>((m * 100 + n) as u64, m, n);
            let mut c = Matrix::<Tracked>::zeros(n, n);
            let (_, ops) = measure(|| {
                ata_into(Tracked(1.0), a.as_ref(), &mut c.as_mut(), &deep());
            });
            assert_eq!(ops.muls, ata_mults(m, n, &deep()), "shape ({m},{n})");
        }
    }

    #[test]
    fn ata_beats_naive_and_strassen_asymptotically() {
        // Multiplication counts at n = 512 (full recursion):
        // naive syrk ~ n^2(n+1)/2, Strassen ~ n^2.807, AtA ~ 2/3 Strassen.
        let n = 512usize;
        let ata = ata_mults(n, n, &deep());
        let strassen = strassen_mults(n, n, n, &deep());
        let naive = (n as u64) * (n as u64) * (n as u64 + 1) / 2;
        assert!(ata < strassen);
        assert!(strassen < naive * 2); // strassen vs full gemm count 2x
        assert!(ata < naive, "AtA must beat even the syrk count at n=512");
    }

    #[test]
    fn base_case_size_controls_the_counts() {
        // With a huge cache budget, AtA degenerates to one syrk call.
        let n = 64usize;
        let big = CacheConfig::with_words(usize::MAX / 2);
        assert_eq!(
            ata_mults(n, n, &big),
            (n as u64) * (n as u64) * (n as u64 + 1) / 2
        );
    }

    #[test]
    fn effective_gflops_metric() {
        // 1000^3 flops in 1 s = 1 GFLOP with r = 1.
        assert!((effective_gflops(1.0, 1000, 1000, 1.0) - 1.0).abs() < 1e-12);
        // r = 2 doubles the credit (general-gemm accounting).
        assert!((effective_gflops(2.0, 1000, 1000, 1.0) - 2.0).abs() < 1e-12);
        // Tall matrix: m n^2 scaling.
        assert!((effective_gflops(1.0, 8000, 1000, 1.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn classical_flops_scale() {
        assert_eq!(classical_ata_flops(10, 10), 10.0 * 10.0 * 11.0);
    }

    #[test]
    #[should_panic(expected = "positive time")]
    fn zero_time_rejected() {
        let _ = effective_gflops(1.0, 10, 10, 0.0);
    }
}
