//! BLAS-parity wrappers: `beta` scaling and the `A A^T` variant.
//!
//! §3.1 of the paper: "AtA and FastStrassen are designed to be efficient
//! alternatives to the BLAS routines `?gemm` and `?syrk`. Thus, they
//! perform the same operations, respectively `C = alpha A^T B + beta C`
//! and `C = alpha A^T A + beta C`. However, we avoid introducing the
//! scaling factor `beta` [...] since `C` can be simply scaled before
//! applying the algorithms." These wrappers do exactly that pre-scale,
//! giving the full BLAS contracts.
//!
//! The paper also remarks that "our solution also works for the product
//! `A A^T`" — provided here by running AtA on an explicitly materialized
//! `A^T` ([`aat_lower`]), since with row-major storage `A^T A` is the
//! cache-hostile case the algorithms are built around and `A A^T`
//! reduces to it by transposition.

use crate::serial::ata_into_with;
use ata_kernels::level1::scal;
use ata_kernels::CacheConfig;
use ata_mat::{MatMut, MatRef, Matrix, Scalar};
use ata_strassen::{fast_strassen_with, StrassenWorkspace};

/// Scale the lower triangle (incl. diagonal) of a square view by `beta`.
/// `beta == 1` is free; `beta == 0` zero-fills (exactly like BLAS, so
/// `NaN`s in uninitialized `C` are squashed rather than propagated).
pub fn scale_lower<T: Scalar>(c: &mut MatMut<'_, T>, beta: T) {
    assert_eq!(c.rows(), c.cols(), "scale_lower needs a square view");
    if beta == T::ONE {
        return;
    }
    for i in 0..c.rows() {
        let row = &mut c.row_mut(i)[..=i];
        if beta == T::ZERO {
            row.fill(T::ZERO);
        } else {
            scal(beta, row);
        }
    }
}

/// Full BLAS `?syrk('L','T')` contract via AtA:
/// `C_low = alpha * A^T A + beta * C_low`.
///
/// # Panics
/// On inconsistent shapes.
pub fn ata_syrk<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    let n = a.cols();
    assert_eq!(
        c.shape(),
        (n, n),
        "ata_syrk: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    scale_lower(c, beta);
    let mut ws = StrassenWorkspace::empty();
    ata_into_with(alpha, a, c, cfg, &mut ws);
}

/// Full BLAS `?gemm('T','N')` contract via FastStrassen:
/// `C = alpha * A^T B + beta * C`.
///
/// # Panics
/// On inconsistent shapes.
pub fn strassen_gemm<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    beta: T,
    c: &mut MatMut<'_, T>,
    cfg: &CacheConfig,
) {
    if beta != T::ONE {
        for i in 0..c.rows() {
            let row = c.row_mut(i);
            if beta == T::ZERO {
                row.fill(T::ZERO);
            } else {
                scal(beta, row);
            }
        }
    }
    let mut ws = StrassenWorkspace::empty();
    fast_strassen_with(alpha, a, b, c, cfg, &mut ws);
}

/// Lower triangle of the *other* symmetric product, `A A^T` (`m x m`):
/// materializes `A^T` once and runs AtA on it.
pub fn aat_lower<T: Scalar>(a: MatRef<'_, T>, cfg: &CacheConfig) -> Matrix<T> {
    let at = a.to_matrix().transposed();
    let m = a.rows();
    let mut c = Matrix::zeros(m, m);
    let mut ws = StrassenWorkspace::empty();
    ata_into_with(T::ONE, at.as_ref(), &mut c.as_mut(), cfg, &mut ws);
    c
}

/// Full symmetric `A A^T` (`m x m`, both triangles).
pub fn aat<T: Scalar>(a: MatRef<'_, T>, cfg: &CacheConfig) -> Matrix<T> {
    let mut c = aat_lower(a, cfg);
    c.mirror_lower_to_upper();
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};

    #[test]
    fn syrk_contract_with_beta() {
        let (m, n) = (20usize, 16usize);
        let a = gen::standard::<f64>(1, m, n);
        let c0 = gen::standard::<f64>(2, n, n);
        let cfg = CacheConfig::with_words(32);

        for &(alpha, beta) in &[(1.0, 0.0), (2.0, 1.0), (-1.0, 0.5), (0.5, -2.0)] {
            let mut c_fast = c0.clone();
            ata_syrk(alpha, a.as_ref(), beta, &mut c_fast.as_mut(), &cfg);
            // Oracle: scale then accumulate.
            let mut c_ref = c0.clone();
            for i in 0..n {
                for j in 0..=i {
                    c_ref[(i, j)] *= beta;
                }
            }
            reference::syrk_ln(alpha, a.as_ref(), &mut c_ref.as_mut());
            assert!(
                c_fast.max_abs_diff_lower(&c_ref) < 1e-10,
                "alpha={alpha}, beta={beta}"
            );
            // Strict upper untouched by both.
            assert_eq!(
                c_fast.max_abs_diff(&c_ref),
                c_fast.max_abs_diff_lower(&c_ref)
            );
        }
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = gen::standard::<f64>(3, 8, 6);
        let mut c = Matrix::from_fn(6, 6, |_, _| f64::NAN);
        c.zero_strict_upper(); // NaN lower, zero upper
        ata_syrk(
            1.0,
            a.as_ref(),
            0.0,
            &mut c.as_mut(),
            &CacheConfig::default(),
        );
        let mut c_ref = Matrix::zeros(6, 6);
        reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
        assert!(
            c.max_abs_diff_lower(&c_ref) < 1e-12,
            "beta=0 must squash NaNs"
        );
    }

    #[test]
    fn gemm_contract_with_beta() {
        let (m, n, k) = (14usize, 10usize, 12usize);
        let a = gen::standard::<f64>(4, m, n);
        let b = gen::standard::<f64>(5, m, k);
        let c0 = gen::standard::<f64>(6, n, k);
        let cfg = CacheConfig::with_words(16);

        let mut c_fast = c0.clone();
        strassen_gemm(
            1.5,
            a.as_ref(),
            b.as_ref(),
            0.25,
            &mut c_fast.as_mut(),
            &cfg,
        );
        let mut c_ref = c0.clone();
        c_ref.scale(0.25);
        reference::gemm_tn(1.5, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert!(c_fast.max_abs_diff(&c_ref) < 1e-10);
    }

    #[test]
    fn aat_matches_gram_of_transpose() {
        let a = gen::standard::<f64>(7, 18, 30);
        let got = aat(a.as_ref(), &CacheConfig::with_words(32));
        let expect = reference::gram(a.as_ref().to_matrix().transposed().as_ref());
        assert_eq!(got.shape(), (18, 18));
        assert!(got.max_abs_diff(&expect) < 1e-10);
        assert!(got.is_symmetric(0.0));
    }

    #[test]
    fn aat_and_ata_agree_on_symmetric_input() {
        // For symmetric S, S^T S == S S^T.
        let mut s = gen::standard::<f64>(8, 12, 12);
        s.mirror_lower_to_upper();
        let cfg = CacheConfig::with_words(16);
        let left = crate::lower_impl(s.as_ref(), &crate::AtaOptions::serial().cache_words(16));
        let left = {
            let mut full = left;
            full.mirror_lower_to_upper();
            full
        };
        let right = aat(s.as_ref(), &cfg);
        assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn scale_lower_leaves_upper_alone() {
        let mut c = Matrix::from_fn(4, 4, |_, _| 2.0);
        scale_lower(&mut c.as_mut(), 0.5);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i >= j { 1.0 } else { 2.0 };
                assert_eq!(c[(i, j)], expect);
            }
        }
    }
}
