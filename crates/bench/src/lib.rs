//! Benchmark-harness utilities shared by the figure/table binaries.
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see DESIGN.md §4 for the experiment index):
//!
//! | binary     | reproduces                                            |
//! |------------|-------------------------------------------------------|
//! | `fig3`     | Fig. 3 — serial AtA vs `dsyrk` (time, eff. GFLOPs)    |
//! | `fig4`     | Fig. 4 — FastStrassen vs `dgemm` + prealloc ablation  |
//! | `fig5`     | Fig. 5 — AtA-S vs parallel `ssyrk`, P = 1..16         |
//! | `fig6`     | Fig. 6 — AtA-D vs pdsyrk/CAPS/COSMA, P = 8..64        |
//! | `table1`   | Table 1 — shared vs distributed on large matrices     |
//! | `flops`    | Eq. 3 — multiplication-count table (incl. measured)   |
//! | `levels`   | Eq. 5/6 — `l(P)` formulas vs constructed tree depths  |
//! | `prop31`   | Prop. 3.1 — ideal-cache miss counts, measured         |
//! | `accuracy` | extension — forward error vs Higham bound factors     |
//! | `ablation` | extension — leaf kernels, grids, task count, alpha, Strassen variants |
//!
//! Every binary accepts `--scale <f>` to shrink/grow the default sizes,
//! `--paper-scale` for the paper's original sizes (hours of runtime —
//! meant for big machines), `--reps <k>` for timing repetitions, and
//! `--csv <dir>` to also dump machine-readable CSV.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::time::Instant;

pub use ata_core::analysis::effective_gflops;

/// Minimal `--key value` / `--flag` command-line parser (no external
/// dependencies, which keeps the offline build lean).
#[derive(Debug, Clone, Default)]
pub struct Cli {
    kv: HashMap<String, String>,
    flags: Vec<String>,
}

impl Cli {
    /// Parse the process arguments.
    pub fn from_env() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse an explicit argument list (testable).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut cli = Cli::default();
        let mut args = args.into_iter().peekable();
        while let Some(arg) = args.next() {
            if let Some(key) = arg.strip_prefix("--") {
                match args.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = args.next().expect("peeked");
                        cli.kv.insert(key.to_string(), v);
                    }
                    _ => cli.flags.push(key.to_string()),
                }
            }
        }
        cli
    }

    /// True if `--flag` was passed.
    pub fn has(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// `--key <usize>` with default.
    pub fn usize(&self, key: &str, default: usize) -> usize {
        self.kv
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects an integer, got '{v}'"))
            })
            .unwrap_or(default)
    }

    /// `--key <f64>` with default.
    pub fn f64(&self, key: &str, default: f64) -> f64 {
        self.kv
            .get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("--{key} expects a number, got '{v}'"))
            })
            .unwrap_or(default)
    }

    /// `--key a,b,c` as a usize list, with default.
    pub fn usize_list(&self, key: &str, default: &[usize]) -> Vec<usize> {
        match self.kv.get(key) {
            None => default.to_vec(),
            Some(v) => v
                .split(',')
                .map(|t| {
                    t.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("--{key} expects integers, got '{t}'"))
                })
                .collect(),
        }
    }

    /// `--key <string>`.
    pub fn string(&self, key: &str) -> Option<&str> {
        self.kv.get(key).map(String::as_str)
    }
}

/// Median wall-clock seconds of `reps` runs of `f` (one warm-up run).
pub fn time_median<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps >= 1);
    f(); // warm-up
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    times[times.len() / 2]
}

/// A result table that prints aligned text and optionally CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render aligned text to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", joined.join("  "));
        };
        line(&self.headers);
        line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
        for row in &self.rows {
            line(row);
        }
    }

    /// Write CSV into `dir/<slug>.csv` (slug derived from the title).
    pub fn write_csv(&self, dir: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .title
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = format!("{dir}/{slug}.csv");
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        std::fs::write(&path, out)?;
        println!("  [csv written to {path}]");
        Ok(())
    }

    /// Print, and also dump CSV when the CLI asked for it.
    pub fn emit(&self, cli: &Cli) {
        self.print();
        if let Some(dir) = cli.string("csv") {
            self.write_csv(dir).expect("CSV write failed");
        }
    }
}

/// Modeled flop load of an AtA-S run: `(total, max_per_thread)` over the
/// shared task plan, counting 2 flops per multiplication of the
/// recursion (`ata-core::analysis` counts). The ratio
/// `total / max_per_thread` is the plan's ideal speedup — what a machine
/// with enough cores would observe, and what the `fig5`/`table1`
/// binaries report as *modeled* time next to the (single-core-hostage)
/// wall clock.
pub fn ata_s_modeled_flops(
    m: usize,
    n: usize,
    threads: usize,
    cache: &ata_kernels::CacheConfig,
) -> (f64, f64) {
    use ata_core::tasktree::{ComputeKind, SharedPlan};
    let plan = SharedPlan::build(n, threads);
    let mut per_proc = vec![0.0f64; threads];
    for t in &plan.tasks {
        let flops = match t.kind {
            ComputeKind::AtA => {
                2.0 * ata_core::analysis::ata_mults(m, t.a_cols.1 - t.a_cols.0, cache) as f64
            }
            ComputeKind::AtB => {
                2.0 * ata_strassen::strassen_mults(
                    m,
                    t.a_cols.1 - t.a_cols.0,
                    t.b_cols.1 - t.b_cols.0,
                    cache,
                ) as f64
            }
        };
        per_proc[t.proc_id] += flops;
    }
    let total: f64 = per_proc.iter().sum();
    let max = per_proc.iter().cloned().fold(0.0, f64::max);
    (total, max)
}

/// Format seconds with sensible precision.
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}us", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.3}s")
    }
}

/// Scale a base size by `--scale` (or `--paper-scale`), rounding to a
/// multiple of 16 with a floor of 32.
pub fn scaled(cli: &Cli, base: usize, paper: usize) -> usize {
    if cli.has("paper-scale") {
        return paper;
    }
    let s = cli.f64("scale", 1.0);
    (((base as f64 * s) as usize) / 16 * 16).max(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(args: &[&str]) -> Cli {
        Cli::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn cli_parses_kv_flags_and_lists() {
        let c = cli(&["--reps", "5", "--paper-scale", "--sizes", "128,256, 512"]);
        assert_eq!(c.usize("reps", 3), 5);
        assert!(c.has("paper-scale"));
        assert!(!c.has("csv"));
        assert_eq!(c.usize_list("sizes", &[64]), vec![128, 256, 512]);
        assert_eq!(c.usize_list("procs", &[1, 2]), vec![1, 2]);
    }

    #[test]
    fn cli_defaults() {
        let c = cli(&[]);
        assert_eq!(c.usize("reps", 3), 3);
        assert_eq!(c.f64("scale", 1.0), 1.0);
        assert!(c.string("csv").is_none());
    }

    #[test]
    fn timing_returns_positive_median() {
        let mut n = 0u64;
        let t = time_median(3, || {
            n += 1;
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(t >= 0.0);
        assert_eq!(n, 4, "warm-up plus reps");
    }

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.print();
        let dir = std::env::temp_dir().join("ata_bench_test");
        t.write_csv(dir.to_str().expect("utf8")).expect("csv");
        let csv = std::fs::read_to_string(dir.join("demo.csv")).expect("read");
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn scaled_sizes() {
        let c = cli(&["--scale", "0.5"]);
        assert_eq!(scaled(&c, 1024, 30000), 512);
        let p = cli(&["--paper-scale"]);
        assert_eq!(scaled(&p, 1024, 30000), 30000);
        assert_eq!(scaled(&cli(&[]), 1024, 0), 1024);
    }

    #[test]
    fn fmt_secs_ranges() {
        assert!(fmt_secs(12e-6).ends_with("us"));
        assert!(fmt_secs(0.02).ends_with("ms"));
        assert!(fmt_secs(3.5).ends_with('s'));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
