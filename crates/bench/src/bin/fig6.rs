//! Figure 6 — distributed AtA-D vs ScaLAPACK-`pdsyrk`, CAPS and COSMA
//! stand-ins, varying the process count.
//!
//! Paper: f64; square 10Kx10K and 20Kx20K plus tall 60Kx5K; P = 8..64
//! step 8, one core per process, 4 GB/core; panels per shape: elapsed
//! time (log scale), effective GFLOPs (Eq. 9: r = 1 for the `A^T A`
//! methods, r = 2 for CAPS/COSMA), and % of theoretical peak — where
//! AtA-D's flop count uses the AtA complexity (Eq. 3), as in the paper.
//!
//! All four algorithms run on the `ata-mpisim` simulated cluster under
//! the TeraStat cost model: numerics are real, elapsed time is the
//! simulated critical path (see DESIGN.md §3.7). CAPS is skipped on the
//! tall shape (it handles square matrices only — same limitation the
//! paper reports).
//!
//! ```text
//! cargo run --release -p ata-bench --bin fig6 [-- --procs 8,16,...,64]
//! ```

use ata_bench::{effective_gflops, scaled, Cli, Table};
use ata_core::analysis::ata_mults;
use ata_dist::baselines::{caps_like, cosma_like, pdsyrk_like};
use ata_dist::{ata_d, carma_like, AtaDConfig, CarmaConfig};
use ata_kernels::CacheConfig;
use ata_mat::gen;
use ata_mpisim::{run, CostModel};

struct ShapeResult {
    p: usize,
    times: [Option<f64>; 5], // ata_d, pdsyrk, caps, cosma, carma
}

fn run_shape(cli: &Cli, label: &str, m: usize, n: usize, model: CostModel) {
    let procs = cli.usize_list("procs", &[8, 16, 24, 32, 40, 48, 56, 64]);
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));
    let square = m == n;

    let a = gen::standard::<f64>(42, m, n);
    let cfg = AtaDConfig {
        cache,
        strassen_leaves: true,
        threads_per_rank: 1,
        ..AtaDConfig::default()
    };

    let mut rows = Vec::new();
    for &p in &procs {
        let a_ref = &a;
        let t_ata = run(p, model, move |comm| {
            let input = if comm.rank() == 0 { Some(a_ref) } else { None };
            ata_d(input, m, n, comm, &cfg);
        })
        .critical_path();

        let a_ref = &a;
        let t_pdsyrk = run(p, model, move |comm| {
            let input = if comm.rank() == 0 { Some(a_ref) } else { None };
            pdsyrk_like(input, m, n, comm);
        })
        .critical_path();

        let t_caps = if square {
            let a_ref = &a;
            Some(
                run(p, model, move |comm| {
                    let (ia, ib) = if comm.rank() == 0 {
                        (Some(a_ref), Some(a_ref))
                    } else {
                        (None, None)
                    };
                    caps_like(ia, ib, n, comm, &cache);
                })
                .critical_path(),
            )
        } else {
            None
        };

        let a_ref = &a;
        let t_cosma = run(p, model, move |comm| {
            let (ia, ib) = if comm.rank() == 0 {
                (Some(a_ref), Some(a_ref))
            } else {
                (None, None)
            };
            cosma_like(ia, ib, m, n, n, comm);
        })
        .critical_path();

        // CARMA: the comparator the paper could not run (Cilk Plus
        // deprecated); our structural re-implementation can. Rectangular-
        // capable, so it runs on every shape. Unbounded memory budget =
        // pure-BFS schedule.
        let a_ref = &a;
        let carma_cfg = CarmaConfig {
            cache,
            ..CarmaConfig::default()
        };
        let t_carma = run(p, model, move |comm| {
            let (ia, ib) = if comm.rank() == 0 {
                (Some(a_ref), Some(a_ref))
            } else {
                (None, None)
            };
            carma_like(ia, ib, m, n, n, comm, &carma_cfg);
        })
        .critical_path();

        rows.push(ShapeResult {
            p,
            times: [
                Some(t_ata),
                Some(t_pdsyrk),
                t_caps,
                Some(t_cosma),
                Some(t_carma),
            ],
        });
    }

    // Panel (a/d/g): elapsed simulated time.
    let mut t_time = Table::new(
        &format!("Fig 6 — elapsed simulated time (s), A = {label}"),
        &["P", "AtA-D", "pdsyrk", "CAPS", "COSMA", "CARMA"],
    );
    // Panel (b/e/h): effective GFLOPs.
    let mut t_eg = Table::new(
        &format!("Fig 6 — effective GFLOPs, A = {label}"),
        &[
            "P",
            "AtA-D(r=1)",
            "pdsyrk(r=1)",
            "CAPS(r=2)",
            "COSMA(r=2)",
            "CARMA(r=2)",
        ],
    );
    // Panel (c/f/i): % of theoretical peak.
    let peak_per_core = 1.0 / model.flop_time / 1e9; // GFLOPs
    let ata_flops = 2.0 * ata_mults(m, n, &cache) as f64; // Eq. 3 accounting
    let mut t_tpp = Table::new(
        &format!("Fig 6 — %% of theoretical peak, A = {label}"),
        &["P", "AtA-D", "pdsyrk", "CAPS", "COSMA", "CARMA"],
    );

    let fmt_opt =
        |x: Option<f64>, f: &dyn Fn(f64) -> String| x.map(&f).unwrap_or_else(|| "-".into());
    for r in &rows {
        let [ta, tp, tc, tm, tr] = r.times;
        t_time.row(vec![
            r.p.to_string(),
            fmt_opt(ta, &|t| format!("{t:.4}")),
            fmt_opt(tp, &|t| format!("{t:.4}")),
            fmt_opt(tc, &|t| format!("{t:.4}")),
            fmt_opt(tm, &|t| format!("{t:.4}")),
            fmt_opt(tr, &|t| format!("{t:.4}")),
        ]);
        t_eg.row(vec![
            r.p.to_string(),
            fmt_opt(ta, &|t| format!("{:.1}", effective_gflops(1.0, m, n, t))),
            fmt_opt(tp, &|t| format!("{:.1}", effective_gflops(1.0, m, n, t))),
            fmt_opt(tc, &|t| format!("{:.1}", effective_gflops(2.0, m, n, t))),
            fmt_opt(tm, &|t| format!("{:.1}", effective_gflops(2.0, m, n, t))),
            fmt_opt(tr, &|t| format!("{:.1}", effective_gflops(2.0, m, n, t))),
        ]);
        let peak = peak_per_core * r.p as f64;
        t_tpp.row(vec![
            r.p.to_string(),
            fmt_opt(ta, &|t| {
                format!("{:.1}%", 100.0 * (ata_flops / t / 1e9) / peak)
            }),
            fmt_opt(tp, &|t| {
                format!("{:.1}%", 100.0 * effective_gflops(1.0, m, n, t) / peak)
            }),
            fmt_opt(tc, &|t| {
                format!("{:.1}%", 100.0 * effective_gflops(2.0, m, n, t) / peak)
            }),
            fmt_opt(tm, &|t| {
                format!("{:.1}%", 100.0 * effective_gflops(2.0, m, n, t) / peak)
            }),
            fmt_opt(tr, &|t| {
                format!("{:.1}%", 100.0 * effective_gflops(2.0, m, n, t) / peak)
            }),
        ]);
    }
    t_time.emit(cli);
    t_eg.emit(cli);
    t_tpp.emit(cli);
}

fn main() {
    let cli = Cli::from_env();
    println!("Figure 6: distributed A^T A on the simulated TeraStat cluster (f64)");
    println!("(timings are simulated critical paths under the LogGP model; numerics run for real)");

    let model = CostModel::terastat();
    // Paper shapes: 10Kx10K, 20Kx20K, 60Kx5K.
    let shapes = [
        (scaled(&cli, 512, 10_000), scaled(&cli, 512, 10_000)),
        (scaled(&cli, 1024, 20_000), scaled(&cli, 1024, 20_000)),
        (scaled(&cli, 1536, 60_000), scaled(&cli, 128, 5_000)),
    ];
    for (m, n) in shapes {
        run_shape(&cli, &format!("{m}x{n}"), m, n, model);
    }
    println!("\nExpected shapes (paper Fig. 6): AtA-D steps down with P per Eq. 5 and wins on large/square inputs;");
    println!(
        "CAPS only on square shapes; AtA-D's %TPP dips on the tall shape (short-row axpy effect)."
    );
    println!("CARMA (the baseline the paper could not run) behaves like COSMA's recursion with");
    println!("binary-halving groups: competitive on rectangles, no Strassen flop advantage.");
}
