//! Table 1 — shared memory (16 cores) vs distributed memory (96 cores)
//! on large square matrices.
//!
//! Paper: n = 30K..60K; SM = AtA-S on one 16-core node, DM = AtA-D on
//! 6 nodes (96 cores), DM times include distribution and retrieval;
//! speed-up = T_SM / T_DM grows with n as computation overwhelms the
//! communication overhead.
//!
//! Reproduction: both columns come from the same machine model —
//! SM(16) is the shared plan's critical path (slowest of 16 threads,
//! no communication) at the model's flop rate; DM(96) is the simulated
//! AtA-D critical path under the TeraStat model (communication
//! included). The *speed-up trend with n* is the paper's claim and is
//! what this table reproduces.
//!
//! ```text
//! cargo run --release -p ata-bench --bin table1 [-- --sizes 512,768,1024,1280]
//! ```

use ata_bench::{ata_s_modeled_flops, Cli, Table};
use ata_dist::{ata_d, AtaDConfig};
use ata_kernels::CacheConfig;
use ata_mat::gen;
use ata_mpisim::{run, CostModel};

fn main() {
    let cli = Cli::from_env();
    let sizes = if cli.has("paper-scale") {
        vec![30_000, 40_000, 50_000, 60_000]
    } else {
        cli.usize_list("sizes", &[512, 768, 1024, 1280])
    };
    let sm_cores = cli.usize("sm-cores", 16);
    let dm_nodes = cli.usize("dm-nodes", 6);
    let dm_threads = cli.usize("dm-threads", 16);
    let dm_cores = dm_nodes * dm_threads;
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));
    let model = CostModel::terastat();

    println!("Table 1: shared memory ({sm_cores} cores) vs distributed memory ({dm_cores} cores), f64 square");
    println!("(both under the TeraStat machine model; DM includes simulated communication)");

    let mut table = Table::new(
        "Table 1 — SM vs DM on large square matrices",
        &["n", "SM (s)", "DM (s)", "Speed-up"],
    );

    // The paper's Table 1 setup: 6 distributed processes, each calling
    // 16-thread AtA-S at its leaves (hybrid SM+DM, §5.5).
    let cfg = AtaDConfig {
        cache,
        strassen_leaves: true,
        threads_per_rank: dm_threads,
        ..AtaDConfig::default()
    };
    let mut speedups = Vec::new();
    for &n in &sizes {
        // SM: critical path of the 16-thread shared plan, compute only.
        let (_, max_per_thread) = ata_s_modeled_flops(n, n, sm_cores, &cache);
        let t_sm = max_per_thread * model.flop_time;

        // DM: simulated AtA-D with 96 ranks (includes distribution and
        // retrieval communication).
        let a = gen::standard::<f64>(n as u64, n, n);
        let a_ref = &a;
        let t_dm = run(dm_nodes, model, move |comm| {
            let input = if comm.rank() == 0 { Some(a_ref) } else { None };
            ata_d(input, n, n, comm, &cfg);
        })
        .critical_path();

        let s = t_sm / t_dm;
        speedups.push(s);
        table.row(vec![
            n.to_string(),
            format!("{t_sm:.3}"),
            format!("{t_dm:.3}"),
            format!("{s:.2}"),
        ]);
    }
    table.emit(&cli);

    let increasing = speedups.windows(2).all(|w| w[1] >= w[0] * 0.95);
    println!(
        "\nExpected shape (paper Table 1): speed-up grows with n — {}",
        if increasing {
            "reproduced"
        } else {
            "NOT reproduced at these sizes (communication-bound; increase --sizes)"
        }
    );
}
