//! Visualize the §4.1 task trees (Figure 1 regenerated as text/DOT).
//!
//! ```text
//! cargo run --release -p ata-bench --bin treeviz [-- --procs 16 --n 1024 --dot out.dot --shared]
//! ```
//!
//! Default output is the ASCII distributed tree for P = 16 — the
//! configuration the paper draws in Figure 1. `--dot FILE` additionally
//! writes a Graphviz digraph; `--shared` prints the AtA-S per-thread
//! task listing instead.

use ata_bench::Cli;
use ata_core::render::{dist_tree_ascii, dist_tree_dot, shared_plan_ascii};
use ata_core::tasktree::{dist_levels, shared_levels, DistTree, SharedPlan};

fn main() {
    let cli = Cli::from_env();
    let p = cli.usize("procs", 16);
    let n = cli.usize("n", 1024);

    if cli.has("shared") {
        let plan = SharedPlan::build(n, p);
        println!(
            "AtA-S task tree, P = {p}, n = {n} (Eq. 6 levels: {}, built depth: {})\n",
            shared_levels(p),
            plan.depth
        );
        print!("{}", shared_plan_ascii(&plan));
        return;
    }

    let tree = DistTree::build(n, n, p);
    println!(
        "AtA-D task tree, P = {p}, A = {n}x{n} (Eq. 5 levels: {}, built depth: {}, {} nodes, {} leaves)\n",
        dist_levels(p),
        tree.depth,
        tree.nodes.len(),
        tree.leaves().count()
    );
    print!("{}", dist_tree_ascii(&tree));

    if let Some(path) = cli.string("dot") {
        std::fs::write(path, dist_tree_dot(&tree)).expect("write DOT file");
        println!("\n[DOT graph written to {path}]");
    }
}
