//! Proposition 3.1 — measured cache complexity of AtA on the ideal
//! cache model.
//!
//! The paper proves `C_AtA(n; M, b) = C_S(n; M, b) =
//! Θ(1 + n²/b + n^(log₂7)/(b√M))` by induction. This harness *measures*
//! it on the `ata-cachesim` substrate:
//!
//! 1. an `n`-sweep at fixed `(M, b)`: misses of naive syrk,
//!    RecursiveGEMM (Algorithm 2), Strassen and AtA, each normalized by
//!    the Θ-expression — the AtA and Strassen columns should flatten to
//!    a constant while naive grows;
//! 2. the proof's sandwich `C_S(n/2) ≤ C_AtA(n) ≤ C_S(n)` printed as
//!    ratios (both must stay ≤ 1);
//! 3. an `M`-sweep at fixed `n`: in the `n^(log₂7)/(b√M)` regime,
//!    quadrupling `M` should halve the fast methods' misses.
//!
//! ```text
//! cargo run --release -p ata-bench --bin prop31 [-- --sizes 32,64,128 --cache-words 64 --line-words 8]
//! ```

use ata_bench::{Cli, Table};
use ata_cachesim::{prop31_expression, run_ata, run_naive_syrk, run_recursive_gemm, run_strassen};
use ata_mat::gen;

fn main() {
    let cli = Cli::from_env();
    let sizes = cli.usize_list("sizes", &[16, 32, 64, 128]);
    let m_words = cli.usize("cache-words", 64);
    let b_words = cli.usize("line-words", 8);
    let base = cli.usize("base-words", 8);

    println!(
        "Proposition 3.1: ideal-cache miss counts (M = {m_words} words, b = {b_words} words/line)"
    );
    println!("sizes = {sizes:?}, recursion base = {base} words");

    // ---- 1. n-sweep, normalized by the Θ-expression ----
    let mut t1 = Table::new(
        "Prop 3.1 — misses / Θ(1 + n²/b + n^lg7/(b√M))",
        &[
            "n",
            "Q_naive",
            "Q_recgemm",
            "Q_strassen",
            "Q_AtA",
            "AtA/Θ",
            "Strassen/Θ",
            "naive/Θ",
        ],
    );
    for &n in &sizes {
        let a = gen::standard::<f64>(n as u64, n, n);
        let (_, naive) = run_naive_syrk(&a, m_words, b_words);
        let (_, recg) = run_recursive_gemm(&a, &a.clone(), base, m_words, b_words);
        let (_, strassen) = run_strassen(&a, &a.clone(), base, m_words, b_words);
        let (_, ata) = run_ata(&a, base, m_words, b_words);
        let theta = prop31_expression(n, m_words, b_words);
        t1.row(vec![
            n.to_string(),
            naive.misses.to_string(),
            recg.misses.to_string(),
            strassen.misses.to_string(),
            ata.misses.to_string(),
            format!("{:.3}", ata.misses as f64 / theta),
            format!("{:.3}", strassen.misses as f64 / theta),
            format!("{:.3}", naive.misses as f64 / theta),
        ]);
    }
    t1.emit(&cli);

    // ---- 2. the proof's sandwich ----
    let mut t2 = Table::new(
        "Prop 3.1 — proof sandwich C_S(n/2) <= C_AtA(n) <= C_S(n)",
        &[
            "n",
            "C_S(n/2)",
            "C_AtA(n)",
            "C_S(n)",
            "S(n/2)/AtA",
            "AtA/S(n)",
        ],
    );
    for &n in sizes.iter().filter(|&&n| n >= 8) {
        let a = gen::standard::<f64>(n as u64 + 1, n, n);
        let h = gen::standard::<f64>(n as u64 + 2, n / 2, n / 2);
        let (_, ata) = run_ata(&a, base, m_words, b_words);
        let (_, s_full) = run_strassen(&a, &a.clone(), base, m_words, b_words);
        let (_, s_half) = run_strassen(&h, &h.clone(), base, m_words, b_words);
        t2.row(vec![
            n.to_string(),
            s_half.misses.to_string(),
            ata.misses.to_string(),
            s_full.misses.to_string(),
            format!("{:.3}", s_half.misses as f64 / ata.misses as f64),
            format!("{:.3}", ata.misses as f64 / s_full.misses as f64),
        ]);
    }
    t2.emit(&cli);

    // ---- 3. M-sweep at the largest n ----
    let n = *sizes.last().expect("nonempty sizes");
    let a = gen::standard::<f64>(99, n, n);
    let m_sweep = cli.usize_list("m-sweep", &[64, 256, 1024, 4096]);
    let mut t3 = Table::new(
        "Prop 3.1 — sqrt(M) scaling at fixed n",
        &["M", "Q_AtA", "Q_strassen", "Q_AtA * sqrt(M)"],
    );
    for &m in &m_sweep {
        let (_, ata) = run_ata(&a, base, m, b_words);
        let (_, s) = run_strassen(&a, &a.clone(), base, m, b_words);
        t3.row(vec![
            m.to_string(),
            ata.misses.to_string(),
            s.misses.to_string(),
            format!("{:.0}", ata.misses as f64 * (m as f64).sqrt()),
        ]);
    }
    t3.emit(&cli);

    println!("\nExpected shape: both sandwich ratios stay <= 1 at every n — that is");
    println!("Proposition 3.1's induction, measured. Naive misses scale by 8x per");
    println!("doubling (n³/b) while AtA's doubling ratio falls toward 7 (n^lg7); the");
    println!("normalized columns converge slowly because Θ hides transition-regime");
    println!("constants at these laptop sizes. In the M-sweep, growing the cache cuts");
    println!("fast-method misses until the working set fits (the 1/sqrt(M) term).");
}
