//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Leaf kernels of AtA-D** (§4.3.1's remark: leaves may run
//!    AtA/FastStrassen or the plain BLAS kernels) — simulated time for
//!    both choices across P.
//! 2. **1D vs 2D pdsyrk** — the two ScaLAPACK stand-ins; per-rank
//!    traffic and critical path.
//! 3. **Task decomposition of AtA-S** (the paper fixes 16 tasks) —
//!    modeled critical path when the task count over- or under-shoots
//!    the thread count.
//! 4. **Load-balance parameter alpha** (§4.1.2 derives `alpha = 1/2`
//!    from the gemm/syrk flop ratio) — simulated AtA-D time across the
//!    sweep; 1/2 should sit at or near the minimum.
//! 5. **Strassen variant** — classic 18-add Strassen vs the 15-add
//!    Strassen–Winograd form vs the per-level-allocating variant:
//!    wall time and measured block-add volume.
//!
//! ```text
//! cargo run --release -p ata-bench --bin ablation
//! ```

use ata_bench::{ata_s_modeled_flops, time_median, Cli, Table};
use ata_dist::baselines::pdsyrk_like;
use ata_dist::grid::pdsyrk_2d;
use ata_dist::{ata_d, AtaDConfig};
use ata_kernels::CacheConfig;
use ata_mat::gen;
use ata_mat::tracked::{measure, Tracked};
use ata_mat::Matrix;
use ata_mpisim::{run, CostModel};
use ata_strassen::alloc::strassen_allocating;
use ata_strassen::{fast_strassen_with, winograd_strassen_with, StrassenWorkspace};

fn leaf_kernel_ablation(cli: &Cli, n: usize) {
    let model = CostModel::terastat();
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));
    let a = gen::standard::<f64>(1, n, n);
    let mut table = Table::new(
        &format!("Ablation 1 — AtA-D leaf kernels, A = {n}x{n}"),
        &[
            "P",
            "strassen leaves (s)",
            "blas leaves (s)",
            "strassen/blas",
        ],
    );
    for &p in &cli.usize_list("procs", &[8, 16, 32]) {
        let mut times = Vec::new();
        for strassen in [true, false] {
            let cfg = AtaDConfig {
                cache,
                strassen_leaves: strassen,
                threads_per_rank: 1,
                ..AtaDConfig::default()
            };
            let a_ref = &a;
            let t = run(p, model, move |comm| {
                let input = if comm.rank() == 0 { Some(a_ref) } else { None };
                ata_d(input, n, n, comm, &cfg);
            })
            .critical_path();
            times.push(t);
        }
        table.row(vec![
            p.to_string(),
            format!("{:.4}", times[0]),
            format!("{:.4}", times[1]),
            format!("{:.3}", times[0] / times[1]),
        ]);
    }
    table.emit(cli);
    println!("  (Strassen leaves win once leaf blocks exceed the base-case size — §4.3.1's 'larger volumes of data')");
}

fn pdsyrk_1d_vs_2d(cli: &Cli, n: usize) {
    let model = CostModel::terastat();
    let a = gen::standard::<f64>(2, n, n);
    let mut table = Table::new(
        &format!("Ablation 2 — pdsyrk 1D vs 2D grid, A = {n}x{n}"),
        &[
            "P",
            "1D time (s)",
            "2D time (s)",
            "1D max rank words",
            "2D max rank words",
        ],
    );
    for &p in &cli.usize_list("procs", &[8, 16, 32]) {
        let a_ref = &a;
        let rep1 = run(p, model, move |comm| {
            let input = if comm.rank() == 0 { Some(a_ref) } else { None };
            pdsyrk_like(input, n, n, comm);
        });
        let a_ref = &a;
        let rep2 = run(p, model, move |comm| {
            let input = if comm.rank() == 0 { Some(a_ref) } else { None };
            pdsyrk_2d(input, n, n, comm);
        });
        let maxw = |rep: &ata_mpisim::RunReport<()>| {
            rep.metrics[1..]
                .iter()
                .map(|m| m.words_sent)
                .max()
                .unwrap_or(0)
        };
        table.row(vec![
            p.to_string(),
            format!("{:.4}", rep1.critical_path()),
            format!("{:.4}", rep2.critical_path()),
            maxw(&rep1).to_string(),
            maxw(&rep2).to_string(),
        ]);
    }
    table.emit(cli);
}

fn task_count_ablation(cli: &Cli, n: usize) {
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));
    let threads = 16usize;
    let mut table = Table::new(
        &format!("Ablation 3 — AtA-S task count on {threads} cores, A = {n}x{n}"),
        &["tasks", "modeled critical path (norm.)", "ideal speedup"],
    );
    let (total, _) = ata_s_modeled_flops(n, n, 1, &cache);
    for &tasks in &cli.usize_list("tasks", &[1, 2, 4, 8, 16, 32, 64]) {
        let (_, max_per) = ata_s_modeled_flops(n, n, tasks, &cache);
        // With `tasks` decomposition on `threads` cores, the per-core
        // load is at best ceil(tasks/threads) of the heaviest tasks.
        let speedup = total / max_per;
        let eff_speedup = speedup.min(threads as f64);
        table.row(vec![
            tasks.to_string(),
            format!("{:.3}", 1.0 / eff_speedup),
            format!("{:.2}", speedup),
        ]);
    }
    table.emit(cli);
    println!("  (16 tasks saturate 16 cores — the paper's fixed decomposition; more tasks add no ideal speedup)");
}

fn alpha_sweep(cli: &Cli, n: usize) {
    let model = CostModel::terastat();
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));
    let a = gen::standard::<f64>(4, n, n);
    let alphas = [0.25, 0.375, 0.5, 0.625, 0.75];
    let mut table = Table::new(
        &format!("Ablation 4 — load-balance alpha (AtA-D, A = {n}x{n})"),
        &["P", "a=0.25", "a=0.375", "a=0.5", "a=0.625", "a=0.75"],
    );
    for &p in &cli.usize_list("procs", &[8, 16, 32]) {
        let mut cells = vec![p.to_string()];
        let mut times = Vec::new();
        for &alpha in &alphas {
            let cfg = AtaDConfig {
                cache,
                alpha,
                ..AtaDConfig::default()
            };
            let a_ref = &a;
            let t = run(p, model, move |comm| {
                let input = if comm.rank() == 0 { Some(a_ref) } else { None };
                ata_d(input, n, n, comm, &cfg);
            })
            .critical_path();
            times.push(t);
        }
        let best = times.iter().cloned().fold(f64::INFINITY, f64::min);
        for t in times {
            let marker = if (t - best).abs() < 1e-12 { "*" } else { "" };
            cells.push(format!("{t:.4}{marker}"));
        }
        table.row(cells);
    }
    table.emit(cli);
    println!("  (* = fastest; §4.1.2's alpha = 1/2 should be at or adjacent to the minimum)");
}

fn strassen_variant_ablation(cli: &Cli, n: usize) {
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));
    let reps = cli.usize("reps", 3);
    let mut table = Table::new(
        "Ablation 5 — Strassen variants (C += A^T B, square f64)",
        &[
            "n",
            "t_classic",
            "t_winograd",
            "t_allocating",
            "adds_classic",
            "adds_winograd",
        ],
    );
    for &sz in &cli.usize_list("sizes", &[n / 2, n]) {
        let a = gen::standard::<f64>(1, sz, sz);
        let b = gen::standard::<f64>(2, sz, sz);
        let mut c = Matrix::<f64>::zeros(sz, sz);
        let mut ws = StrassenWorkspace::<f64>::empty();

        let t_classic = time_median(reps, || {
            c.as_mut().fill_zero();
            fast_strassen_with(
                1.0,
                a.as_ref(),
                b.as_ref(),
                &mut c.as_mut(),
                &cache,
                &mut ws,
            );
        });
        let t_wino = time_median(reps, || {
            c.as_mut().fill_zero();
            winograd_strassen_with(
                1.0,
                a.as_ref(),
                b.as_ref(),
                &mut c.as_mut(),
                &cache,
                &mut ws,
            );
        });
        let t_alloc = time_median(reps, || {
            c.as_mut().fill_zero();
            strassen_allocating(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cache);
        });

        // Measured block-add volume on a smaller tracked instance with a
        // proportionally smaller base, so several levels recurse.
        let tn = (sz / 4).max(32);
        let ta = gen::standard::<Tracked>(1, tn, tn);
        let tb = gen::standard::<Tracked>(2, tn, tn);
        let tcache = CacheConfig::with_words((cache.words / 16).max(2));
        let mut tc = Matrix::<Tracked>::zeros(tn, tn);
        let (_, cls) = measure(|| {
            ata_strassen::fast_strassen(
                Tracked(1.0),
                ta.as_ref(),
                tb.as_ref(),
                &mut tc.as_mut(),
                &tcache,
            );
        });
        let mut tc2 = Matrix::<Tracked>::zeros(tn, tn);
        let (_, win) = measure(|| {
            ata_strassen::winograd_strassen(
                Tracked(1.0),
                ta.as_ref(),
                tb.as_ref(),
                &mut tc2.as_mut(),
                &tcache,
            );
        });

        table.row(vec![
            sz.to_string(),
            format!("{t_classic:.4}s"),
            format!("{t_wino:.4}s"),
            format!("{t_alloc:.4}s"),
            cls.additive().to_string(),
            win.additive().to_string(),
        ]);
    }
    table.emit(cli);
    println!("  (Winograd: fewer block adds per level [19 vs 22 in accumulate form], ~2x arena;");
    println!("   the allocating variant pays malloc/free per level — the Fig. 4 prealloc story)");
}

fn main() {
    let cli = Cli::from_env();
    let n = cli.usize("n", 768);
    println!("Design-choice ablations (simulated TeraStat cluster where applicable)");
    leaf_kernel_ablation(&cli, n);
    pdsyrk_1d_vs_2d(&cli, n);
    task_count_ablation(&cli, n);
    alpha_sweep(&cli, n);
    strassen_variant_ablation(&cli, n);
}
