//! Figure 3 — sequential AtA vs the `dsyrk` substitute.
//!
//! Paper: square f64 matrices from 2.5K to 25K, single core; panel (a)
//! elapsed time, panel (b) effective GFLOPs (Eq. 9, r = 1 for both,
//! since both are `A^T A`-specific). The expected shape: the curves
//! track each other on small sizes and AtA pulls ahead as the
//! `n^(log2 7)` flop count overtakes `n^3` past the base-case size.
//!
//! ```text
//! cargo run --release -p ata-bench --bin fig3 [-- --sizes 256,512,... --reps 3 --csv out/]
//! ```

use ata_bench::{effective_gflops, fmt_secs, time_median, Cli, Table};
use ata_core::serial::ata_into_with;
use ata_kernels::{syrk_ln, CacheConfig};
use ata_mat::{gen, Matrix};
use ata_strassen::StrassenWorkspace;

fn main() {
    let cli = Cli::from_env();
    let sizes = if cli.has("paper-scale") {
        (1..=10).map(|i| i * 2500).collect()
    } else {
        cli.usize_list("sizes", &[256, 512, 768, 1024, 1280, 1536])
    };
    let reps = cli.usize("reps", 3);
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));

    println!("Figure 3: sequential AtA vs dsyrk-substitute (f64, square)");
    println!(
        "sizes = {sizes:?}, reps = {reps}, cache words = {}",
        cache.words
    );

    let mut table = Table::new(
        "Fig 3 — AtA vs dsyrk (sequential, f64)",
        &[
            "n",
            "t_AtA",
            "t_dsyrk",
            "EG_AtA",
            "EG_dsyrk",
            "AtA/dsyrk time",
        ],
    );

    for &n in &sizes {
        let a = gen::standard::<f64>(n as u64, n, n);
        let mut c = Matrix::<f64>::zeros(n, n);
        let mut ws = StrassenWorkspace::<f64>::empty();

        let t_ata = time_median(reps, || {
            c.as_mut().fill_zero();
            ata_into_with(1.0, a.as_ref(), &mut c.as_mut(), &cache, &mut ws);
        });
        let t_syrk = time_median(reps, || {
            c.as_mut().fill_zero();
            syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        });

        table.row(vec![
            n.to_string(),
            fmt_secs(t_ata),
            fmt_secs(t_syrk),
            format!("{:.2}", effective_gflops(1.0, n, n, t_ata)),
            format!("{:.2}", effective_gflops(1.0, n, n, t_syrk)),
            format!("{:.3}", t_ata / t_syrk),
        ]);
    }
    table.emit(&cli);
    println!("\nExpected shape (paper Fig. 3): ratio < 1 and decreasing for n well past the base-case size.");
}
