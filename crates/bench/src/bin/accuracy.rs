//! Numerical-accuracy study (extension — not a paper figure).
//!
//! The paper evaluates speed only; this harness adds the standard
//! forward-error sweep for Strassen-type algorithms (Higham §23.2.2):
//! for growing `n`, compute `A^T A` with the blocked `syrk` substitute,
//! with AtA (classic-Strassen products) and with AtA's products swapped
//! to the Strassen–Winograd variant, in both `f32` and `f64`, and
//! measure the componentwise error against a double-double reference
//! (`ata-core::accuracy`). Higham's classical and Strassen bound factors
//! are printed next to the measurements.
//!
//! Expected shape: all methods sit well below their bounds; the fast
//! methods lose a small constant factor (growing like `n^(log2 12)` vs
//! the classical `n`), and Winograd's weaker recombination bound shows
//! up as a slightly larger constant than classic Strassen — the
//! accuracy/speed trade AtA's adopters accept.
//!
//! ```text
//! cargo run --release -p ata-bench --bin accuracy [-- --sizes 64,128,... --base-words 4096 --csv out/]
//! ```

use ata_bench::{Cli, Table};
use ata_core::accuracy::{
    abs_gram, classical_bound_factor, compensated_gram, componentwise_factor, strassen_bound_factor,
};
use ata_core::serial::{ata_into, ata_into_with_kind, StrassenKind};
use ata_kernels::{syrk_ln, CacheConfig};
use ata_mat::{gen, Matrix, Scalar};
use ata_strassen::StrassenWorkspace;

fn run_precision<T: Scalar>(
    table: &mut Table,
    sizes: &[usize],
    m_factor: usize,
    cfg: &CacheConfig,
    base_n: usize,
) {
    for &n in sizes {
        let m = n * m_factor;
        // Generate in f64, convert: both precisions see the same data.
        // NOTE: entries are dyadic (f64), so the f32 conversion rounds;
        // the conversion error (~u32) is part of what an f32 user pays
        // and is included in the measurement.
        let a64 = gen::standard::<f64>(n as u64 * 7 + 1, m, n);
        let a = Matrix::<T>::from_fn(m, n, |i, j| T::from_f64(a64[(i, j)]));
        let reference = compensated_gram(a64.as_ref());
        let scale = abs_gram(a64.as_ref());
        let u = T::epsilon();

        let mut c_syrk = Matrix::<T>::zeros(n, n);
        syrk_ln(T::ONE, a.as_ref(), &mut c_syrk.as_mut());
        let f_syrk = componentwise_factor(&c_syrk, &reference, &scale, u);

        let mut c_ata = Matrix::<T>::zeros(n, n);
        ata_into(T::ONE, a.as_ref(), &mut c_ata.as_mut(), cfg);
        let f_ata = componentwise_factor(&c_ata, &reference, &scale, u);

        let mut c_win = Matrix::<T>::zeros(n, n);
        let mut ws = StrassenWorkspace::empty();
        ata_into_with_kind(
            T::ONE,
            a.as_ref(),
            &mut c_win.as_mut(),
            cfg,
            StrassenKind::Winograd,
            &mut ws,
        );
        let f_win = componentwise_factor(&c_win, &reference, &scale, u);

        table.row(vec![
            T::NAME.to_string(),
            n.to_string(),
            m.to_string(),
            format!("{:.2}", f_syrk),
            format!("{:.2}", f_ata),
            format!("{:.2}", f_win),
            format!("{:.0}", classical_bound_factor(m)),
            format!("{:.0}", strassen_bound_factor(n.max(base_n), base_n)),
            format!("{:.2}", f_ata / f_syrk.max(f64::MIN_POSITIVE)),
        ]);
    }
}

fn main() {
    let cli = Cli::from_env();
    let sizes = cli.usize_list("sizes", &[64, 128, 256, 384, 512]);
    let m_factor = cli.usize("m-factor", 1);
    // Small default base so the recursion is deep enough for the fast
    // methods' recombination error to be visible at laptop sizes (with a
    // production-size base case the worst entry is a base-case dot that
    // all methods compute identically).
    let base_words = cli.usize("base-words", 256);
    let cfg = CacheConfig::with_words(base_words);
    // Base-case edge length for the Strassen bound: the recursion stops
    // near m*n = words, i.e. edge ~ sqrt(words).
    let base_n = (base_words as f64).sqrt() as usize;

    println!("Accuracy study: forward error vs double-double reference");
    println!("sizes = {sizes:?}, m = {m_factor}*n, base words = {base_words}");

    let mut table = Table::new(
        "Accuracy — componentwise error factors (units of u * |A|^T|A|)",
        &[
            "type",
            "n",
            "m",
            "f_syrk",
            "f_AtA",
            "f_AtA-W",
            "bound_classic",
            "bound_strassen",
            "AtA/syrk",
        ],
    );
    run_precision::<f32>(&mut table, &sizes, m_factor, &cfg, base_n);
    run_precision::<f64>(&mut table, &sizes, m_factor, &cfg, base_n);
    table.emit(&cli);

    println!("\nExpected shape: all errors sit below their bounds; AtA loses a small");
    println!("constant over syrk that grows slowly with n (Higham's n^(log2 12) vs n);");
    println!("the Winograd-product variant is slightly less accurate than classic.");
}
