//! Figure 4 — FastStrassen vs the `dgemm` substitute, plus the
//! pre-allocation ablation.
//!
//! Paper: square f64 `A^T B` products from 2.5K to 25K on one core;
//! panel (a) elapsed time, panel (b) effective GFLOPs (r = 2 for both).
//! "Figure 4 proves how Strassen's algorithm benefits from the
//! pre-memory-allocation strategy described in Section 3.3" — so this
//! binary also runs the per-level-allocating Strassen.
//!
//! ```text
//! cargo run --release -p ata-bench --bin fig4 [-- --sizes ... --reps 3]
//! ```

use ata_bench::{effective_gflops, fmt_secs, time_median, Cli, Table};
use ata_kernels::{gemm_tn, CacheConfig};
use ata_mat::{gen, Matrix};
use ata_strassen::alloc::strassen_allocating;
use ata_strassen::{fast_strassen_with, StrassenWorkspace};

fn main() {
    let cli = Cli::from_env();
    let sizes = if cli.has("paper-scale") {
        (1..=10).map(|i| i * 2500).collect()
    } else {
        cli.usize_list("sizes", &[256, 512, 768, 1024, 1280, 1536])
    };
    let reps = cli.usize("reps", 3);
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));

    println!("Figure 4: FastStrassen vs dgemm-substitute (f64, square A^T B)");
    println!(
        "sizes = {sizes:?}, reps = {reps}, cache words = {}",
        cache.words
    );

    let mut table = Table::new(
        "Fig 4 — FastStrassen vs dgemm (sequential, f64)",
        &[
            "n",
            "t_Strassen",
            "t_dgemm",
            "t_alloc",
            "EG_Strassen",
            "EG_dgemm",
            "prealloc gain",
        ],
    );

    for &n in &sizes {
        let a = gen::standard::<f64>(n as u64, n, n);
        let b = gen::standard::<f64>(n as u64 + 1, n, n);
        let mut c = Matrix::<f64>::zeros(n, n);
        let mut ws = StrassenWorkspace::<f64>::for_problem(n, n, n, &cache);

        let t_fast = time_median(reps, || {
            c.as_mut().fill_zero();
            fast_strassen_with(
                1.0,
                a.as_ref(),
                b.as_ref(),
                &mut c.as_mut(),
                &cache,
                &mut ws,
            );
        });
        let t_gemm = time_median(reps, || {
            c.as_mut().fill_zero();
            gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
        });
        let t_alloc = time_median(reps, || {
            c.as_mut().fill_zero();
            strassen_allocating(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cache);
        });

        table.row(vec![
            n.to_string(),
            fmt_secs(t_fast),
            fmt_secs(t_gemm),
            fmt_secs(t_alloc),
            format!("{:.2}", effective_gflops(2.0, n, n, t_fast)),
            format!("{:.2}", effective_gflops(2.0, n, n, t_gemm)),
            format!("{:.3}x", t_alloc / t_fast),
        ]);
    }
    table.emit(&cli);
    println!("\nExpected shape (paper Fig. 4): Strassen beats dgemm increasingly with n; prealloc gain > 1 everywhere.");
}
