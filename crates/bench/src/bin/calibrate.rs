//! Calibrate the simulator's cost model against this machine.
//!
//! Measures the real flop rates of the blocked kernels (syrk, gemm,
//! axpy) and prints a `CostModel` whose `flop_time` matches the host,
//! so Figure 6-style simulations can be re-based on local hardware
//! instead of the default TeraStat-class constants.
//!
//! ```text
//! cargo run --release -p ata-bench --bin calibrate
//! ```

use ata_bench::{time_median, Cli, Table};
use ata_kernels::level1::axpy;
use ata_kernels::{gemm_tn, syrk_ln};
use ata_mat::{gen, Matrix};
use ata_mpisim::CostModel;

fn main() {
    let cli = Cli::from_env();
    let n = cli.usize("n", 512);
    let reps = cli.usize("reps", 3);

    println!("Calibrating kernel rates on this host (n = {n}, reps = {reps})...");

    let a = gen::standard::<f64>(1, n, n);
    let b = gen::standard::<f64>(2, n, n);
    let mut c = Matrix::<f64>::zeros(n, n);

    // gemm: 2 n^3 flops.
    let t_gemm = time_median(reps, || {
        c.as_mut().fill_zero();
        gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
    });
    let gemm_rate = 2.0 * (n as f64).powi(3) / t_gemm;

    // syrk: n^2 (n + 1) flops.
    let t_syrk = time_median(reps, || {
        c.as_mut().fill_zero();
        syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
    });
    let syrk_rate = (n as f64) * (n as f64) * (n as f64 + 1.0) / t_syrk;

    // axpy: 2 n flops per call; run n calls over the rows.
    let x = gen::standard::<f64>(3, 1, n);
    let mut y = gen::standard::<f64>(4, 1, n);
    let t_axpy = time_median(reps, || {
        for _ in 0..n {
            axpy(1.000001, x.row(0), y.as_mut().row_mut(0));
        }
    });
    let axpy_rate = 2.0 * (n as f64) * (n as f64) / t_axpy;

    let mut table = Table::new("Measured kernel rates", &["kernel", "time", "GFLOP/s"]);
    table.row(vec![
        "gemm_tn".into(),
        format!("{t_gemm:.4}s"),
        format!("{:.2}", gemm_rate / 1e9),
    ]);
    table.row(vec![
        "syrk_ln".into(),
        format!("{t_syrk:.4}s"),
        format!("{:.2}", syrk_rate / 1e9),
    ]);
    table.row(vec![
        "axpy".into(),
        format!("{t_axpy:.4}s"),
        format!("{:.2}", axpy_rate / 1e9),
    ]);
    table.emit(&cli);

    // Use the level-3 average as the effective rate (the simulator
    // charges level-3 flops almost exclusively).
    let rate = (gemm_rate + syrk_rate) / 2.0;
    let model = CostModel::new(25e-6, 6.4e-9, 1.0 / rate);
    println!("\nSuggested local cost model:");
    println!(
        "  CostModel::new(25e-6 /* alpha */, 6.4e-9 /* beta */, {:.3e} /* flop_time */)",
        model.flop_time
    );
    println!("  (network alpha/beta kept at the TeraStat defaults — measure separately on a real cluster)");

    let default = CostModel::terastat();
    println!(
        "\nHost is {:.2}x the default model's per-core rate.",
        default.flop_time / model.flop_time
    );
}
