//! `bench_gate` — the perf-regression gate over `BENCH_*.json` records.
//!
//! Compares the newest benchmark record against the previously committed
//! one and fails (exit code 1) when a tracked metric regresses beyond
//! the noise band:
//!
//! ```text
//! bench_gate --old BENCH_kernels.json --new target/BENCH_kernels.json \
//!            [--tol 0.10] [--strict]
//! ```
//!
//! Result entries are matched on their identity keys (every string/int
//! field that is not a metric), and the first present metric of
//! `secs_per_call` (kernel timings, lower is better) or
//! `root_recv_words_sim` / `total_words` (dist traffic, lower is
//! better) is compared as `new / old`. A ratio above `1 + tol` is a
//! regression.
//!
//! Noise policy: timing metrics from a record marked `"smoke": true`
//! (single CI iteration) are statistically meaningless, so they are
//! *reported* but do not fail the gate unless `--strict` is passed.
//! Word-count metrics are deterministic replay counts — they are
//! enforced even for smoke records, so a schedule change that moves more
//! words through the root cannot land silently.

use std::collections::BTreeMap;
use std::process::ExitCode;

// ---------------------------------------------------------------------
// Minimal JSON parsing (the records are flat and regular; no serde in
// the offline workspace).
// ---------------------------------------------------------------------

/// A parsed JSON value (the subset the records use).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

/// Parse a JSON document.
///
/// # Errors
/// Returns a position-annotated message on malformed input.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && b[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(b, pos);
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", ch as char))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = match parse_value(b, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match b.get(*pos) {
                    None => return Err("unterminated string".into()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match b.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&c) => {
                        out.push(c as char);
                        *pos += 1;
                    }
                }
            }
        }
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let tok = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            tok.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{tok}' at byte {start}"))
        }
    }
}

// ---------------------------------------------------------------------
// Gate logic.
// ---------------------------------------------------------------------

/// Metrics the gate knows how to compare (`(field, enforced_on_smoke)`).
/// All are lower-is-better. Word/message counts are deterministic
/// replays, so they stay enforced even on smoke records.
const METRICS: &[(&str, bool)] = &[
    ("secs_per_call", false),
    ("root_recv_words_pred", true),
    ("root_recv_words_sim", true),
    ("root_sent_words", true),
    ("root_msgs", true),
    ("total_words", true),
];

/// Fields that identify an entry rather than measure it: every
/// string-valued field plus the size/rank-count integers (including the
/// serving record's batch geometry: problem count, worker count, chunk
/// height and total streamed rows, and the shard record's routing
/// outcome: threshold, job count, whole/split lane counts — a routing
/// change must surface as a new grid point, not a metric drift).
/// Numeric fields outside this list are metrics (or derived values like
/// `gflops`) and must never participate in matching — otherwise a
/// regressed count would just fail to match and slip past the gate as
/// "absent".
const IDENTITY_INTS: &[&str] = &[
    "n",
    "m",
    "p",
    "k",
    "ranks",
    "threads",
    "problems",
    "workers",
    "chunk",
    "total_rows",
    "threshold",
    "jobs",
    "whole_jobs",
    "split_jobs",
];

/// The identity of one result entry, rendered to a stable string.
fn identity(entry: &Json) -> String {
    let mut id = BTreeMap::new();
    if let Json::Obj(fields) = entry {
        for (k, v) in fields {
            let rendered = match v {
                Json::Str(s) => s.clone(),
                Json::Num(x) if IDENTITY_INTS.contains(&k.as_str()) => format!("{x}"),
                Json::Bool(x) => format!("{x}"),
                _ => continue,
            };
            id.insert(k.clone(), rendered);
        }
    }
    id.iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ")
}

/// One comparison outcome.
#[derive(Debug)]
struct Outcome {
    id: String,
    metric: &'static str,
    old: f64,
    new: f64,
    enforced: bool,
}

impl Outcome {
    fn ratio(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.new / self.old
        }
    }
}

/// Compare two parsed records; `smoke` is the *new* record's smoke flag.
fn compare(old: &Json, new: &Json, smoke: bool) -> Result<Vec<Outcome>, String> {
    let old_results = match old.get("results") {
        Some(Json::Arr(items)) => items,
        _ => return Err("old record has no results array".into()),
    };
    let new_results = match new.get("results") {
        Some(Json::Arr(items)) => items,
        _ => return Err("new record has no results array".into()),
    };
    let mut outcomes = Vec::new();
    for old_entry in old_results {
        let id = identity(old_entry);
        let Some(new_entry) = new_results.iter().find(|e| identity(e) == id) else {
            // Entries may legitimately disappear when a bench's grid
            // changes; report, don't fail.
            eprintln!("bench_gate: note: '{id}' absent from the new record");
            continue;
        };
        for &(metric, enforced_on_smoke) in METRICS {
            let (Some(o), Some(n)) = (
                old_entry.get(metric).and_then(Json::as_f64),
                new_entry.get(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            outcomes.push(Outcome {
                id: id.clone(),
                metric,
                old: o,
                new: n,
                enforced: !smoke || enforced_on_smoke,
            });
        }
    }
    if outcomes.is_empty() {
        return Err("no comparable metrics between the two records".into());
    }
    Ok(outcomes)
}

fn run_gate(
    old_path: &str,
    new_path: &str,
    tol: f64,
    strict: bool,
) -> Result<(usize, usize), String> {
    let old_src =
        std::fs::read_to_string(old_path).map_err(|e| format!("reading {old_path}: {e}"))?;
    let new_src =
        std::fs::read_to_string(new_path).map_err(|e| format!("reading {new_path}: {e}"))?;
    let old = parse_json(&old_src).map_err(|e| format!("{old_path}: {e}"))?;
    let new = parse_json(&new_src).map_err(|e| format!("{new_path}: {e}"))?;
    let smoke = matches!(new.get("smoke"), Some(Json::Bool(true))) && !strict;

    let outcomes = compare(&old, &new, smoke)?;
    let mut regressions = 0usize;
    for o in &outcomes {
        let ratio = o.ratio();
        let regressed = ratio > 1.0 + tol;
        let status = if !regressed {
            "ok"
        } else if o.enforced {
            regressions += 1;
            "REGRESSION"
        } else {
            "regressed (smoke, informational)"
        };
        println!(
            "bench_gate: {} {}: {:.6e} -> {:.6e} ({:+.1}%) {}",
            o.id,
            o.metric,
            o.old,
            o.new,
            (ratio - 1.0) * 100.0,
            status
        );
    }
    Ok((outcomes.len(), regressions))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut old_path = None;
    let mut new_path = None;
    let mut tol = 0.10f64;
    let mut strict = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--old" => old_path = it.next().cloned(),
            "--new" => new_path = it.next().cloned(),
            "--tol" => {
                tol = match it.next().and_then(|v| v.parse().ok()) {
                    Some(t) => t,
                    None => {
                        eprintln!("bench_gate: --tol expects a number");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--strict" => strict = true,
            other => {
                eprintln!("bench_gate: unknown argument '{other}'");
                eprintln!("usage: bench_gate --old FILE --new FILE [--tol 0.10] [--strict]");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(old_path), Some(new_path)) = (old_path, new_path) else {
        eprintln!("usage: bench_gate --old FILE --new FILE [--tol 0.10] [--strict]");
        return ExitCode::FAILURE;
    };
    match run_gate(&old_path, &new_path, tol, strict) {
        Ok((compared, 0)) => {
            println!(
                "bench_gate: {compared} metrics compared, no regressions (tol {:.0}%)",
                tol * 100.0
            );
            ExitCode::SUCCESS
        }
        Ok((compared, regressions)) => {
            eprintln!(
                "bench_gate: {regressions} of {compared} metrics regressed beyond {:.0}%",
                tol * 100.0
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OLD: &str = r#"{
      "bench": "kernels", "schema": 1, "smoke": false,
      "results": [
        {"kernel": "gemm_tn", "engine": "micro", "dtype": "f64", "n": 128,
         "secs_per_call": 1.0e-4, "gflops": 10.0},
        {"kernel": "syrk_ln", "engine": "micro", "dtype": "f64", "n": 128,
         "secs_per_call": 2.0e-4, "gflops": 5.0}
      ]
    }"#;

    fn record_with(secs1: f64, secs2: f64, smoke: bool) -> String {
        format!(
            r#"{{"bench": "kernels", "schema": 1, "smoke": {smoke},
              "results": [
                {{"kernel": "gemm_tn", "engine": "micro", "dtype": "f64", "n": 128,
                  "secs_per_call": {secs1:e}, "gflops": 1.0}},
                {{"kernel": "syrk_ln", "engine": "micro", "dtype": "f64", "n": 128,
                  "secs_per_call": {secs2:e}, "gflops": 1.0}}
              ]}}"#
        )
    }

    #[test]
    fn parser_handles_the_record_shape() {
        let v = parse_json(OLD).expect("parse");
        assert_eq!(v.get("bench"), Some(&Json::Str("kernels".into())));
        assert_eq!(v.get("smoke"), Some(&Json::Bool(false)));
        let Json::Arr(results) = v.get("results").expect("results") else {
            panic!("results must be an array");
        };
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("secs_per_call").and_then(Json::as_f64),
            Some(1.0e-4)
        );
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1, }").is_err());
        assert!(parse_json("{\"a\": 1} x").is_err());
        assert!(parse_json("{\"a\": nope}").is_err());
    }

    #[test]
    fn identical_records_pass() {
        let old = parse_json(OLD).expect("old");
        let new = parse_json(OLD).expect("new");
        let outcomes = compare(&old, &new, false).expect("compare");
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(|o| o.ratio() == 1.0));
    }

    #[test]
    fn improvement_and_noise_pass_regression_fails() {
        let old = parse_json(OLD).expect("old");
        // 5% slower on one metric: inside the 10% band.
        let new = parse_json(&record_with(1.05e-4, 1.9e-4, false)).expect("new");
        let outcomes = compare(&old, &new, false).expect("compare");
        assert!(outcomes.iter().all(|o| o.ratio() <= 1.10));
        // 50% slower: a regression the gate must count as enforced.
        let bad = parse_json(&record_with(1.5e-4, 2.0e-4, false)).expect("bad");
        let outcomes = compare(&old, &bad, false).expect("compare");
        let regressed: Vec<_> = outcomes
            .iter()
            .filter(|o| o.ratio() > 1.10 && o.enforced)
            .collect();
        assert_eq!(regressed.len(), 1);
        assert!(regressed[0].id.contains("gemm_tn"));
    }

    #[test]
    fn smoke_records_demote_timing_regressions_to_informational() {
        let old = parse_json(OLD).expect("old");
        let noisy = parse_json(&record_with(9.0e-4, 9.0e-4, true)).expect("noisy");
        let outcomes = compare(&old, &noisy, true).expect("compare");
        assert!(
            outcomes.iter().all(|o| !o.enforced),
            "smoke timings must not be enforced"
        );
    }

    #[test]
    fn word_metrics_stay_enforced_on_smoke_records() {
        let old = parse_json(
            r#"{"bench": "dist-traffic", "schema": 1, "smoke": false,
               "results": [{"p": 8, "wire": "packed", "root_recv_words_sim": 1000,
                            "total_words": 5000}]}"#,
        )
        .expect("old");
        let new = parse_json(
            r#"{"bench": "dist-traffic", "schema": 1, "smoke": true,
               "results": [{"p": 8, "wire": "packed", "root_recv_words_sim": 2000,
                            "total_words": 5000}]}"#,
        )
        .expect("new");
        let outcomes = compare(&old, &new, true).expect("compare");
        assert_eq!(outcomes.len(), 2, "both word metrics compare");
        assert!(
            outcomes.iter().all(|o| o.enforced),
            "deterministic words always enforced"
        );
        assert!(
            outcomes
                .iter()
                .any(|o| o.metric == "root_recv_words_sim" && o.ratio() > 1.10),
            "the doubled root words must show as a regression"
        );
    }

    #[test]
    fn serving_record_identities_distinguish_batch_geometry() {
        // Two entries differing only in batch geometry must not be
        // conflated — the geometry ints are identity, not metrics.
        let old = parse_json(
            r#"{"bench": "serving", "schema": 1, "smoke": false,
               "results": [
                 {"mode": "batch", "scheme": "batched", "m": 96, "n": 48,
                  "problems": 16, "workers": 4, "chunk": 0, "total_rows": 0,
                  "secs_per_call": 1.0e-4},
                 {"mode": "stream", "scheme": "accumulator", "m": 4096, "n": 64,
                  "problems": 1, "workers": 1, "chunk": 512, "total_rows": 4096,
                  "secs_per_call": 2.0e-3}
               ]}"#,
        )
        .expect("old");
        let outcomes = compare(&old, &old, false).expect("compare");
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes[0].id.contains("problems=16"));
        assert!(outcomes[0].id.contains("workers=4"));
        assert!(outcomes[1].id.contains("chunk=512"));
        assert!(outcomes[1].id.contains("total_rows=4096"));
    }

    #[test]
    fn shard_record_routing_outcome_is_identity_and_words_stay_enforced() {
        // The shard record keys each grid point on its routing outcome
        // (threshold and whole/split lane counts). A routing change must
        // therefore fail to match (reported as missing) rather than be
        // compared metric-to-metric against a different route mix — and
        // the predicted word counts remain enforced even on smoke runs.
        let old = parse_json(
            r#"{"bench": "shard", "schema": 1, "smoke": false,
               "results": [{"p": 4, "threshold": 8192, "jobs": 8,
                            "whole_jobs": 4, "split_jobs": 4,
                            "root_recv_words_pred": 6208,
                            "root_recv_words_sim": 6208,
                            "total_words": 350528, "secs_per_call": 1.0e-3}]}"#,
        )
        .expect("old");
        let outcomes = compare(&old, &old, true).expect("compare");
        assert!(outcomes[0].id.contains("threshold=8192"));
        assert!(outcomes[0].id.contains("whole_jobs=4"));
        assert!(outcomes[0].id.contains("split_jobs=4"));
        assert!(
            outcomes
                .iter()
                .filter(|o| o.metric.contains("words"))
                .all(|o| o.enforced),
            "shard word counts are deterministic and stay enforced on smoke"
        );
        // Same grid point, shifted routing: nothing matches.
        let rerouted = parse_json(
            r#"{"bench": "shard", "schema": 1, "smoke": false,
               "results": [{"p": 4, "threshold": 8192, "jobs": 8,
                            "whole_jobs": 6, "split_jobs": 2,
                            "root_recv_words_pred": 3104,
                            "root_recv_words_sim": 3104,
                            "total_words": 278560, "secs_per_call": 1.0e-3}]}"#,
        )
        .expect("rerouted");
        assert!(
            compare(&old, &rerouted, false).is_err(),
            "a routing change must not be silently compared across lanes"
        );
    }

    #[test]
    fn kernel_isa_and_path_are_identity_not_metrics() {
        // Schema-2 kernel records tag every entry with the detected ISA
        // and the tile path it ran on. Both are string fields, so they
        // must participate in identity: the same grid point measured on
        // a different ISA, or on a different tile path, is a *different*
        // entry — never compared metric-to-metric across paths.
        let old = parse_json(
            r#"{"bench": "kernels", "schema": 2, "smoke": false, "isa": "fma",
               "results": [
                 {"kernel": "gemm_tn", "engine": "micro", "dtype": "f64", "n": 128,
                  "isa": "fma", "path": "intrinsic", "secs_per_call": 1.0e-4, "gflops": 40.0},
                 {"kernel": "gemm_tn", "engine": "micro", "dtype": "f64", "n": 128,
                  "isa": "fma", "path": "portable", "secs_per_call": 3.0e-4, "gflops": 13.0}
               ]}"#,
        )
        .expect("old");
        let outcomes = compare(&old, &old, false).expect("compare");
        assert_eq!(outcomes.len(), 2, "both path entries match themselves");
        assert!(outcomes[0].id.contains("isa=fma"));
        assert!(outcomes[0].id.contains("path=intrinsic"));
        assert!(outcomes[1].id.contains("path=portable"));
        // A record taken on a different ISA shares no identities at all.
        let other_isa = parse_json(
            r#"{"bench": "kernels", "schema": 2, "smoke": false, "isa": "generic",
               "results": [
                 {"kernel": "gemm_tn", "engine": "micro", "dtype": "f64", "n": 128,
                  "isa": "generic", "path": "portable", "secs_per_call": 3.0e-4,
                  "gflops": 13.0}
               ]}"#,
        )
        .expect("other");
        assert!(
            compare(&old, &other_isa, false).is_err(),
            "cross-ISA records must not be silently compared"
        );
    }

    #[test]
    fn missing_entries_are_reported_not_fatal() {
        let old = parse_json(OLD).expect("old");
        let new = parse_json(
            r#"{"bench": "kernels", "schema": 1, "smoke": false,
               "results": [{"kernel": "gemm_tn", "engine": "micro", "dtype": "f64",
                            "n": 128, "secs_per_call": 1.0e-4, "gflops": 1.0}]}"#,
        )
        .expect("new");
        let outcomes = compare(&old, &new, false).expect("compare");
        assert_eq!(outcomes.len(), 1, "the surviving entry still compares");
    }
}
