//! Eq. 3 — the multiplication-count table behind the headline claim:
//! AtA needs `2/3 n^(log2 7) + 1/3 n^2` multiplications, two thirds of
//! Strassen's count.
//!
//! The first table evaluates the recurrences; the second *measures* the
//! counts by running the real algorithms on the op-counting scalar
//! (`ata-mat::tracked`) and checks them against the closed form — the
//! reproduction's strongest evidence that the implementation is the
//! paper's algorithm.
//!
//! ```text
//! cargo run --release -p ata-bench --bin flops
//! ```

use ata_bench::{Cli, Table};
use ata_core::analysis::{ata_mults, ata_mults_closed_form};
use ata_core::serial::ata_into;
use ata_kernels::CacheConfig;
use ata_mat::tracked::{measure, Tracked};
use ata_mat::{gen, Matrix};
use ata_strassen::{fast_strassen, strassen_mults};

fn main() {
    let cli = Cli::from_env();
    let deep = CacheConfig::with_words(2); // fully recursive

    let mut t1 = Table::new(
        "Eq. 3 — multiplication counts (full recursion)",
        &[
            "n",
            "Strassen (7^q)",
            "AtA",
            "closed form",
            "AtA/Strassen",
            "naive syrk",
        ],
    );
    for q in 0..cli.usize("max-q", 10) as u32 {
        let n = 1usize << q;
        let s = strassen_mults(n, n, n, &deep);
        let a = ata_mults(n, n, &deep);
        let naive = (n as u64) * (n as u64) * (n as u64 + 1) / 2;
        assert_eq!(
            a,
            ata_mults_closed_form(q),
            "closed form must match recurrence"
        );
        t1.row(vec![
            n.to_string(),
            s.to_string(),
            a.to_string(),
            ata_mults_closed_form(q).to_string(),
            format!("{:.4}", a as f64 / s as f64),
            naive.to_string(),
        ]);
    }
    t1.emit(&cli);
    println!("  (ratio tends to 2/3 = 0.6667 from above — Eq. 3)");

    let mut t2 = Table::new(
        "Eq. 3 — MEASURED multiplications (op-counting scalar)",
        &[
            "n",
            "measured AtA",
            "formula",
            "exact?",
            "measured Strassen",
            "7^q",
        ],
    );
    for q in 1..=cli.usize("measured-max-q", 6) as u32 {
        let n = 1usize << q;
        let a = gen::standard::<Tracked>(q as u64, n, n);

        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, ops_ata) = measure(|| ata_into(Tracked(1.0), a.as_ref(), &mut c.as_mut(), &deep));

        let b = gen::standard::<Tracked>(q as u64 + 50, n, n);
        let mut cs = Matrix::<Tracked>::zeros(n, n);
        let (_, ops_s) = measure(|| {
            fast_strassen(
                Tracked(1.0),
                a.as_ref(),
                b.as_ref(),
                &mut cs.as_mut(),
                &deep,
            )
        });

        let formula = ata_mults_closed_form(q);
        t2.row(vec![
            n.to_string(),
            ops_ata.muls.to_string(),
            formula.to_string(),
            (ops_ata.muls == formula).to_string(),
            ops_s.muls.to_string(),
            7u64.pow(q).to_string(),
        ]);
        assert_eq!(
            ops_ata.muls, formula,
            "measured count must equal (2*7^q + 4^q)/3"
        );
        assert_eq!(
            ops_s.muls,
            7u64.pow(q),
            "measured Strassen count must equal 7^q"
        );
    }
    t2.emit(&cli);
    println!(
        "  (every row exact — the implementation performs precisely the paper's operation counts)"
    );
}
