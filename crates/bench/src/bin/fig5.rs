//! Figure 5 — shared-memory AtA-S vs multithreaded `ssyrk`, varying the
//! number of available cores `P` under a fixed 16-task decomposition.
//!
//! Paper: f32, matrices 30Kx30K, 40Kx40K and tall 60Kx5K; both methods
//! pinned to 16 threads while the core count varies 2..16; panels show
//! elapsed time and effective GFLOPs (r = 1).
//!
//! On this reproduction host the rayon pool models the core count, but
//! a single physical core cannot exhibit real multicore speedup, so the
//! harness prints *wall* time alongside the *modeled* time (the plan's
//! per-thread critical path under the measured serial rate — the
//! quantity Eq. 8 describes, reduced by 1/4 per complete tree level).
//! On a real multicore machine wall ≈ model.
//!
//! ```text
//! cargo run --release -p ata-bench --bin fig5 [-- --procs 1,2,4,8,16 --reps 1]
//! ```

use ata_bench::{ata_s_modeled_flops, effective_gflops, fmt_secs, scaled, time_median, Cli, Table};
use ata_core::parallel::ata_s;
use ata_kernels::par::{par_syrk_ln, pool_with_threads};
use ata_kernels::CacheConfig;
use ata_mat::{gen, Matrix};

fn run_shape(cli: &Cli, label: &str, m: usize, n: usize) {
    // The paper sweeps every core count 2..16 — the step pattern of
    // Eq. 6 is invisible on powers of two alone.
    let procs = cli.usize_list(
        "procs",
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
    );
    let reps = cli.usize("reps", 1);
    let tasks = cli.usize("tasks", 16); // the paper's fixed 16-thread setup
    let cache = CacheConfig::with_words(cli.usize("cache-words", CacheConfig::default().words));

    let a = gen::standard::<f32>(7, m, n);
    let mut c = Matrix::<f32>::zeros(n, n);

    // Serial reference rate for the modeled column.
    let t_serial = time_median(reps, || {
        c.as_mut().fill_zero();
        ata_s(1.0f32, a.as_ref(), &mut c.as_mut(), 1, &cache);
    });
    let (flops_total, _) = ata_s_modeled_flops(m, n, 1, &cache);
    let serial_rate = flops_total / t_serial; // flops/s of this host

    let mut table = Table::new(
        &format!("Fig 5 — AtA-S vs ssyrk, A = {label}"),
        &[
            "P",
            "wall_AtA-S",
            "wall_ssyrk",
            "model_AtA-S",
            "EG_model",
            "EG_ssyrk_wall",
        ],
    );

    for &p in &procs {
        let pool = pool_with_threads(p);
        let t_ata = time_median(reps, || {
            c.as_mut().fill_zero();
            pool.install(|| ata_s(1.0f32, a.as_ref(), &mut c.as_mut(), tasks, &cache));
        });
        let t_syrk = time_median(reps, || {
            c.as_mut().fill_zero();
            pool.install(|| par_syrk_ln(1.0f32, a.as_ref(), &mut c.as_mut(), tasks));
        });
        // Modeled time: the plan built for `p` workers, critical path =
        // slowest thread's flops at the measured serial rate.
        let (_, max_per_thread) = ata_s_modeled_flops(m, n, p, &cache);
        let t_model = max_per_thread / serial_rate;

        table.row(vec![
            p.to_string(),
            fmt_secs(t_ata),
            fmt_secs(t_syrk),
            fmt_secs(t_model),
            format!("{:.2}", effective_gflops(1.0, m, n, t_model)),
            format!("{:.2}", effective_gflops(1.0, m, n, t_syrk)),
        ]);
    }
    table.emit(cli);
}

fn main() {
    let cli = Cli::from_env();
    println!("Figure 5: AtA-S vs multithreaded ssyrk-substitute (f32, 16-task decomposition)");

    // Paper shapes: 30Kx30K, 40Kx40K, 60Kx5K.
    let shapes = [
        (scaled(&cli, 1024, 30_000), scaled(&cli, 1024, 30_000)),
        (scaled(&cli, 1536, 40_000), scaled(&cli, 1536, 40_000)),
        (scaled(&cli, 2048, 60_000), scaled(&cli, 256, 5_000)),
    ];
    for (m, n) in shapes {
        run_shape(&cli, &format!("{m}x{n}"), m, n);
    }
    println!("\nExpected shape (paper Fig. 5): modeled AtA-S time drops ~4x per complete level (P = 2, 8, 32, ...),");
    println!("with the step pattern of Eq. 6; ssyrk saturates once memory-bound.");
}
