//! Eq. 5 / Eq. 6 — the parallel-level step functions `l(P)`, printed
//! next to the depths of the actually-constructed task trees.
//!
//! The step pattern of these functions is what makes both parallel
//! algorithms' speedups non-linear in P (§4.2.2, §5.5): complete levels
//! give the 4x (shared) / 8x-ish (distributed) drops, and P values that
//! do not complete a level buy nothing.
//!
//! ```text
//! cargo run --release -p ata-bench --bin levels [-- --max-p 64]
//! ```

use ata_bench::{Cli, Table};
use ata_core::tasktree::{dist_levels, shared_levels, DistTree, SharedPlan};

fn main() {
    let cli = Cli::from_env();
    let max_p = cli.usize("max-p", 64);
    let n = cli.usize("n", 1 << 12); // large enough that size never caps a split

    let mut table = Table::new(
        "Eq. 5 / Eq. 6 — parallel levels vs constructed tree depth",
        &[
            "P",
            "Eq.5 l(P) dist",
            "DistTree depth",
            "Eq.6 l(P) shared",
            "SharedPlan depth",
            "tasks",
        ],
    );
    for p in 1..=max_p {
        let dist = DistTree::build(n, n, p);
        let shared = SharedPlan::build(n, p);
        table.row(vec![
            p.to_string(),
            dist_levels(p).to_string(),
            dist.depth.to_string(),
            shared_levels(p).to_string(),
            shared.depth.to_string(),
            shared.tasks.len().to_string(),
        ]);
        // The construction is never shallower than the formula and at
        // most one level deeper (remainder handling, see tasktree docs).
        assert!(dist.depth >= dist_levels(p) && dist.depth <= dist_levels(p) + 1);
        assert!(shared.depth >= shared_levels(p) && shared.depth <= shared_levels(p) + 1);
    }
    table.emit(&cli);
    println!("\n(step increases at P = 2, 7, ... for Eq. 5 and P = 2, 4, 8, 32 for Eq. 6 — the paper's step-function speedups)");
}
