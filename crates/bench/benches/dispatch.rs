//! Dispatch-overhead benchmark: repeated small-`n` Gram calls through
//! the one-shot legacy API vs a reused `AtaPlan`.
//!
//! This is the workload the Plan/Context redesign targets — a serving
//! loop computing many Gram matrices of one shape, where per-call
//! planning (task-tree build, arena allocation, thread spawn-up) is the
//! dominant cost at small sizes. The `amortization summary` benchmark
//! prints the one-shot/reused ratio directly so the win is tracked.
//!
//! Smoke mode for CI: set `ATA_BENCH_SMOKE=1` to run one timed
//! iteration per benchmark (the bench then only guards against rot).

#![allow(deprecated)] // the one-shot side *is* the deprecated path

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::Duration;

use ata::mat::{gen, Matrix};
use ata::{gram_with, AtaContext, AtaOptions, Output};

/// Measurement budget: tiny in smoke mode (CI), seconds otherwise.
fn budget() -> Duration {
    if std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0") {
        Duration::from_millis(1)
    } else {
        Duration::from_secs(2)
    }
}

fn bench_one_shot_vs_plan(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch overhead");
    group.sample_size(20).measurement_time(budget());
    let threads = NonZeroUsize::new(4).expect("4 > 0");
    for &n in &[16usize, 32, 64] {
        let m = 2 * n;
        let a = gen::standard::<f64>(7, m, n);
        let opts = AtaOptions::with_threads(threads.get());

        group.bench_with_input(BenchmarkId::new("one-shot gram_with", n), &n, |bch, _| {
            bch.iter(|| black_box(gram_with(a.as_ref(), &opts))[(0, 0)])
        });

        let ctx = AtaContext::shared(threads);
        let plan = ctx.plan_with::<f64>(m, n, Output::Gram);
        let mut out = Matrix::<f64>::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("reused plan", n), &n, |bch, _| {
            bch.iter(|| {
                plan.execute_into(a.as_ref(), &mut out.as_mut());
                black_box(out[(0, 0)])
            })
        });

        let serial_ctx = AtaContext::serial();
        let serial_plan = serial_ctx.plan_with::<f64>(m, n, Output::Gram);
        group.bench_with_input(BenchmarkId::new("reused serial plan", n), &n, |bch, _| {
            bch.iter(|| {
                serial_plan.execute_into(a.as_ref(), &mut out.as_mut());
                black_box(out[(0, 0)])
            })
        });
    }
    group.finish();
}

fn bench_amortization_summary(c: &mut Criterion) {
    // Direct ratio measurement outside criterion's per-bench loop: run
    // `reps` back-to-back calls each way and print one-shot / reused.
    let mut group = c.benchmark_group("amortization summary");
    group.sample_size(1).measurement_time(budget());
    let smoke = std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0");
    let reps = if smoke { 3usize } else { 200 };
    let threads = NonZeroUsize::new(4).expect("4 > 0");
    let n = 32usize;
    let m = 64usize;
    let a = gen::standard::<f64>(11, m, n);
    let opts = AtaOptions::with_threads(threads.get());

    // Warm both paths (global pool spawn-up, code paths hot).
    let _ = gram_with(a.as_ref(), &opts);
    let ctx = AtaContext::shared(threads);
    let plan = ctx.plan_with::<f64>(m, n, Output::Gram);
    let mut out = Matrix::<f64>::zeros(n, n);
    plan.execute_into(a.as_ref(), &mut out.as_mut());

    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        black_box(gram_with(a.as_ref(), &opts));
    }
    let one_shot = t0.elapsed().as_secs_f64() / reps as f64;

    let t0 = std::time::Instant::now();
    for _ in 0..reps {
        plan.execute_into(a.as_ref(), &mut out.as_mut());
        black_box(out[(0, 0)]);
    }
    let reused = t0.elapsed().as_secs_f64() / reps as f64;

    println!(
        "amortization (m={m}, n={n}, {} threads, {reps} reps): \
         one-shot {one_shot:.3e}s/call, reused plan {reused:.3e}s/call, \
         ratio {:.2}x",
        threads.get(),
        one_shot / reused
    );
    group.bench_function("noop anchor", |bch| bch.iter(|| black_box(1 + 1)));
    group.finish();
}

criterion_group!(benches, bench_one_shot_vs_plan, bench_amortization_summary);
criterion_main!(benches);
