//! Sharded-serving bench: the P × routing-threshold grid for
//! `ata::shard::ShardedService`, written to `BENCH_shard.json`.
//!
//! Each grid point floods one sharded service with the same fixed job
//! mix — word counts 2048, 8192 and 32768, chosen to straddle the swept
//! thresholds — so the whole/split routing mix shifts with the
//! threshold while the total work stays constant. The record captures,
//! per `{P, threshold}`:
//!
//! * the routing outcome (`whole_jobs` / `split_jobs`) as identity, so
//!   a routing change shows up as a new grid point rather than a silent
//!   metric swap;
//! * the split lane's traffic, predicted (`RoutePrice`, quoted before
//!   dispatch) and simulated (`RankMetrics`, counted during dispatch).
//!   The two are asserted bit-identical at every point — the quote is
//!   derived from the same `DistPlan` the lane executes — and
//!   `bench_gate` enforces the committed word counts even on smoke
//!   runs;
//! * wall-clock seconds per job, informational only (the container the
//!   record ships from has one CPU; timings are noise).
//!
//! Set `ATA_BENCH_SMOKE=1` for CI (cheap criterion anchor, output under
//! `target/`); `ATA_BENCH_OUT` overrides the output path.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ata::mat::{gen, Matrix};
use ata::shard::ShardedServiceBuilder;
use ata::AtaContext;

fn smoke() -> bool {
    std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Shard counts swept (the ISSUE grid: P in {2, 4, 8, 16}).
const SHARDS: &[usize] = &[2, 4, 8, 16];

/// Routing thresholds swept, in operand words `m * n`.
const THRESHOLDS: &[usize] = &[2048, 8192, 32768];

/// The fixed job mix: `(count, m, n)` with word counts 2048 / 8192 /
/// 32768, one per threshold tier, so each threshold flips one tier from
/// split to whole.
const MIX: &[(usize, usize, usize)] = &[(4, 64, 32), (2, 128, 64), (2, 512, 64)];

struct Rec {
    p: usize,
    threshold: usize,
    jobs: usize,
    whole_jobs: usize,
    split_jobs: usize,
    root_recv_words_pred: u64,
    root_recv_words_sim: u64,
    total_words: u64,
    secs_per_call: f64,
}

fn measure(p: usize, threshold: usize, inputs: &[Matrix<f64>]) -> Rec {
    let ctx = AtaContext::builder().cache_words(4096).build();
    let svc = ShardedServiceBuilder::new(&ctx)
        .shards(p)
        .split_words(threshold)
        .build::<f64>();
    let t0 = std::time::Instant::now();
    let handles: Vec<_> = inputs
        .iter()
        .map(|a| svc.submit(a.clone()).expect("healthy service accepts"))
        .collect();
    for h in handles {
        h.wait().expect("every job completes");
    }
    let secs_per_call = t0.elapsed().as_secs_f64() / inputs.len() as f64;
    let stats = svc.shutdown();
    assert_eq!(
        stats.completed_jobs(),
        inputs.len(),
        "P={p} threshold={threshold}: jobs lost"
    );
    assert_eq!(
        stats.predicted_split_words, stats.simulated_split_words,
        "P={p} threshold={threshold}: predictor out of sync with the simulator"
    );
    assert_eq!(
        stats.predicted_root_recv_words, stats.simulated_root_recv_words,
        "P={p} threshold={threshold}: root-recv prediction out of sync"
    );
    Rec {
        p,
        threshold,
        jobs: inputs.len(),
        whole_jobs: stats.whole_jobs,
        split_jobs: stats.split_jobs,
        root_recv_words_pred: stats.predicted_root_recv_words,
        root_recv_words_sim: stats.simulated_root_recv_words,
        total_words: stats.simulated_split_words,
        secs_per_call,
    }
}

fn bench_shard_record(c: &mut Criterion) {
    let inputs: Vec<Matrix<f64>> = MIX
        .iter()
        .flat_map(|&(count, m, n)| (0..count).map(move |i| (i, m, n)))
        .enumerate()
        .map(|(seed, (_, m, n))| gen::standard::<f64>(seed as u64, m, n))
        .collect();

    let recs: Vec<Rec> = SHARDS
        .iter()
        .flat_map(|&p| THRESHOLDS.iter().map(move |&w| (p, w)))
        .map(|(p, w)| measure(p, w, &inputs))
        .collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"shard\",\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"smoke\": {},\n", smoke()));
    json.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"p\": {}, \"threshold\": {}, \"jobs\": {}, \"whole_jobs\": {}, \
             \"split_jobs\": {}, \"root_recv_words_pred\": {}, \"root_recv_words_sim\": {}, \
             \"total_words\": {}, \"secs_per_call\": {:e}}}{}\n",
            r.p,
            r.threshold,
            r.jobs,
            r.whole_jobs,
            r.split_jobs,
            r.root_recv_words_pred,
            r.root_recv_words_sim,
            r.total_words,
            r.secs_per_call,
            if i + 1 == recs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out_path = std::env::var("ATA_BENCH_OUT").unwrap_or_else(|_| {
        if smoke() {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_shard.json").into()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").into()
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("shard record: wrote {out_path}"),
        Err(e) => eprintln!("shard record: could not write {out_path}: {e}"),
    }
    for r in &recs {
        println!(
            "shard: P={:<2} threshold={:<5}: {} whole / {} split, split traffic {:>6} words \
             ({:>5} into the root, pred == sim), {:.3e} s/job",
            r.p,
            r.threshold,
            r.whole_jobs,
            r.split_jobs,
            r.total_words,
            r.root_recv_words_sim,
            r.secs_per_call
        );
    }

    let mut group = c.benchmark_group("shard record");
    let budget = if smoke() {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(200)
    };
    group.sample_size(1).measurement_time(budget);
    group.bench_function("noop anchor", |bch| bch.iter(|| black_box(1 + 1)));
    group.finish();
}

criterion_group!(benches, bench_shard_record);
criterion_main!(benches);
