//! Serving-surface benchmark + machine-readable perf record:
//! `BENCH_serving.json`.
//!
//! Two serving shapes, each against its pre-redesign comparator:
//!
//! * **batch** — `execute_batch` (whole problems fanned out one-per-
//!   worker across the persistent pool) vs a reused-plan serial loop
//!   over the same problems. This is the acceptance headline: ≥ 1.25x
//!   throughput on ≥ 8 small grams (n ≤ 64) with 4 workers.
//! * **stream** — `GramAccumulator` fed row chunks (thin-chunk syrk
//!   path and tall-chunk Strassen path both exercised) vs the one-shot
//!   plan on the fully materialized matrix at the same total rows.
//!   Streaming trades a little arithmetic locality for `O(n²)` resident
//!   memory; the record tracks that the overhead stays modest.
//!
//! Smoke mode for CI: set `ATA_BENCH_SMOKE=1` for one timed iteration
//! per measurement (rot guard; the JSON goes to `target/` by default so
//! smoke numbers never clobber the committed record; `ATA_BENCH_OUT`
//! overrides). The ≥ 1.25x assertion runs on full measurements only —
//! single-iteration smoke timings are statistically meaningless — and
//! only where the host can physically express between-problem
//! parallelism (≥ 2 CPUs): on a single-core host the 4 workers
//! time-slice one core, so batched throughput is structurally capped at
//! 1.0x minus dispatch overhead, and the record (which carries
//! `host_cpus`) documents that instead of asserting the impossible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::num::NonZeroUsize;
use std::time::{Duration, Instant};

use ata::mat::{gen, Matrix};
use ata::{AtaContext, Output};

fn smoke() -> bool {
    std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Mean seconds/call of `f`, warmed once; smoke mode runs one timed
/// iteration, otherwise enough to fill ~0.5 s (min 3).
fn time_call(mut f: impl FnMut()) -> f64 {
    f();
    if smoke() {
        let t0 = Instant::now();
        f();
        return t0.elapsed().as_secs_f64();
    }
    let mut reps = 0u32;
    let t0 = Instant::now();
    while reps < 3 || t0.elapsed() < Duration::from_millis(500) {
        f();
        reps += 1;
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// One measured point. `secs_per_call` is per *problem* (batch) or per
/// *full pass* (stream), so old/new gate comparisons stay like-for-like
/// within an identity.
struct Rec {
    mode: &'static str,
    scheme: &'static str,
    m: usize,
    n: usize,
    problems: usize,
    workers: usize,
    chunk: usize,
    total_rows: usize,
    secs_per_call: f64,
}

const BATCH_PROBLEMS: usize = 16;
const BATCH_M: usize = 96;
const BATCH_N: usize = 48;
const BATCH_WORKERS: usize = 4;

/// Batched fan-out vs a reused-plan serial loop; returns
/// `(records, speedup_batched_over_looped)`.
fn measure_batch(recs: &mut Vec<Rec>) -> f64 {
    let inputs: Vec<Matrix<f64>> = (0..BATCH_PROBLEMS as u64)
        .map(|s| gen::standard::<f64>(s, BATCH_M, BATCH_N))
        .collect();
    let refs: Vec<_> = inputs.iter().map(|a| a.as_ref()).collect();

    let shared = AtaContext::shared(NonZeroUsize::new(BATCH_WORKERS).expect("4 > 0"));
    let batch = shared.batch_plan::<f64>(&[(BATCH_M, BATCH_N); BATCH_PROBLEMS], Output::Gram);
    let secs_batched = time_call(|| {
        let outs = batch.execute_batch(&refs);
        black_box(outs[0].order());
    }) / BATCH_PROBLEMS as f64;

    let serial = AtaContext::serial();
    let plan = serial.plan_with::<f64>(BATCH_M, BATCH_N, Output::Gram);
    let mut out = Matrix::<f64>::zeros(BATCH_N, BATCH_N);
    let secs_looped = time_call(|| {
        for a in &refs {
            plan.execute_into(*a, &mut out.as_mut());
        }
        black_box(out[(0, 0)]);
    }) / BATCH_PROBLEMS as f64;

    let base = Rec {
        mode: "batch",
        scheme: "",
        m: BATCH_M,
        n: BATCH_N,
        problems: BATCH_PROBLEMS,
        workers: BATCH_WORKERS,
        chunk: 0,
        total_rows: 0,
        secs_per_call: 0.0,
    };
    recs.push(Rec {
        scheme: "batched",
        secs_per_call: secs_batched,
        ..base
    });
    recs.push(Rec {
        scheme: "looped",
        workers: 1,
        secs_per_call: secs_looped,
        ..base
    });
    secs_looped / secs_batched
}

const STREAM_ROWS: usize = 4096;
const STREAM_N: usize = 64;

/// Accumulator at two chunk sizes vs the one-shot plan on the whole
/// matrix; returns `oneshot_secs / accumulator_secs` at the larger
/// chunk (how close streaming gets to resident execution).
fn measure_stream(recs: &mut Vec<Rec>) -> f64 {
    let a = gen::standard::<f64>(7, STREAM_ROWS, STREAM_N);
    let ctx = AtaContext::serial();

    let base = Rec {
        mode: "stream",
        scheme: "",
        m: STREAM_ROWS,
        n: STREAM_N,
        problems: 1,
        workers: 1,
        chunk: 0,
        total_rows: STREAM_ROWS,
        secs_per_call: 0.0,
    };

    let mut acc_secs_large = 0.0;
    for chunk in [64usize, 512] {
        let secs = time_call(|| {
            let mut acc = ctx.gram_accumulator::<f64>(STREAM_N);
            let mut r0 = 0;
            while r0 < STREAM_ROWS {
                let r1 = (r0 + chunk).min(STREAM_ROWS);
                acc.push(a.as_ref().block(r0, r1, 0, STREAM_N));
                r0 = r1;
            }
            black_box(acc.finish().order());
        });
        recs.push(Rec {
            scheme: "accumulator",
            chunk,
            secs_per_call: secs,
            ..base
        });
        acc_secs_large = secs;
    }

    let plan = ctx.plan_with::<f64>(STREAM_ROWS, STREAM_N, Output::Gram);
    let mut out = Matrix::<f64>::zeros(STREAM_N, STREAM_N);
    let secs_oneshot = time_call(|| {
        plan.execute_into(a.as_ref(), &mut out.as_mut());
        black_box(out[(0, 0)]);
    });
    recs.push(Rec {
        scheme: "oneshot",
        secs_per_call: secs_oneshot,
        ..base
    });
    secs_oneshot / acc_secs_large
}

fn bench_serving_record(c: &mut Criterion) {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut recs = Vec::new();
    let batch_speedup = measure_batch(&mut recs);
    let stream_ratio = measure_stream(&mut recs);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"serving\",\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"smoke\": {},\n", smoke()));
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    json.push_str(&format!(
        "  \"speedup_batched_over_looped\": {batch_speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"oneshot_over_accumulator\": {stream_ratio:.4},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"scheme\": \"{}\", \"m\": {}, \"n\": {}, \
             \"problems\": {}, \"workers\": {}, \"chunk\": {}, \"total_rows\": {}, \
             \"secs_per_call\": {:.6e}}}{}\n",
            r.mode,
            r.scheme,
            r.m,
            r.n,
            r.problems,
            r.workers,
            r.chunk,
            r.total_rows,
            r.secs_per_call,
            if i + 1 == recs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out_path = std::env::var("ATA_BENCH_OUT").unwrap_or_else(|_| {
        if smoke() {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/BENCH_serving.json"
            )
            .into()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json").into()
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("serving record: wrote {out_path}"),
        Err(e) => eprintln!("serving record: could not write {out_path}: {e}"),
    }

    for r in &recs {
        println!(
            "serving: {:>6}/{:<12} m={:<4} n={:<3} problems={:<2} workers={} chunk={:<4} \
             {:.3e} s/call",
            r.mode, r.scheme, r.m, r.n, r.problems, r.workers, r.chunk, r.secs_per_call
        );
    }
    println!(
        "serving: batched is {batch_speedup:.2}x the reused-plan serial loop \
         ({BATCH_PROBLEMS} grams of {BATCH_M}x{BATCH_N}, {BATCH_WORKERS} workers)"
    );
    println!(
        "serving: one-shot is {stream_ratio:.2}x the 512-row-chunk accumulator \
         ({STREAM_ROWS} rows x {STREAM_N} cols)"
    );
    if !smoke() && host_cpus >= 2 {
        assert!(
            batch_speedup >= 1.25,
            "acceptance: execute_batch must be >= 1.25x the serial loop \
             on a {host_cpus}-CPU host, got {batch_speedup:.2}x"
        );
    } else if host_cpus < 2 {
        println!(
            "serving: NOTE: single-CPU host — between-problem parallelism cannot \
             beat a serial loop here; the >= 1.25x acceptance gate applies on \
             multi-core hosts (CI runners, deployments)"
        );
    }

    let mut group = c.benchmark_group("serving record");
    let budget = if smoke() {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(200)
    };
    group.sample_size(1).measurement_time(budget);
    group.bench_function("noop anchor", |bch| bch.iter(|| black_box(1 + 1)));
    group.finish();
}

criterion_group!(benches, bench_serving_record);
criterion_main!(benches);
