//! Streaming-factorization benchmark + machine-readable perf record:
//! `BENCH_factor.json`.
//!
//! Two measurements, each against the pre-subsystem comparator:
//!
//! * **cycle** — one push of a `k`-row chunk followed by one solve, the
//!   steady state of an online-regression loop. `factored` runs it
//!   through [`ata::FactoredGram`] (rank-k sweep, or the policy's lazy
//!   refactor for tall chunks, then an allocation-free `O(n²)`
//!   triangular solve); `refactor` is what a user had before this tier:
//!   snapshot the accumulated Gram, Cholesky-factor the copy from
//!   scratch (`O(n³/3)`), substitute. The acceptance headline: factored
//!   beats refactor at every benched `(n, k)` — by avoiding the cubic
//!   refactor entirely when `6k <= n`, and by factoring straight off
//!   the live triangle (no snapshot copy, no allocation) when the chunk
//!   is tall enough that refactoring *is* the policy.
//! * **latency** — solve latency at a fixed `n` as the total streamed
//!   row count grows 128x. Queries run against the factor, never the
//!   row count, so the series must stay flat.
//!
//! Smoke mode for CI: set `ATA_BENCH_SMOKE=1` for one timed iteration
//! per measurement (rot guard; the JSON goes to `target/` by default so
//! smoke numbers never clobber the committed record; `ATA_BENCH_OUT`
//! overrides). The beat-the-refactor and flat-latency assertions run on
//! full measurements only — single-iteration smoke timings are
//! statistically meaningless.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use ata::linalg::{cholesky_factor, cholesky_solve};
use ata::mat::gen;
use ata::AtaContext;

fn smoke() -> bool {
    std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Mean seconds/call of `f`, warmed once; smoke mode runs one timed
/// iteration, otherwise enough to fill ~0.5 s (min 3).
fn time_call(mut f: impl FnMut()) -> f64 {
    f();
    if smoke() {
        let t0 = Instant::now();
        f();
        return t0.elapsed().as_secs_f64();
    }
    let mut reps = 0u32;
    let t0 = Instant::now();
    while reps < 3 || t0.elapsed() < Duration::from_millis(500) {
        f();
        reps += 1;
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// One measured point. `k` is the pushed chunk height in cycle mode;
/// `chunk`/`total_rows` carry the latency-series geometry.
struct Rec {
    mode: &'static str,
    scheme: &'static str,
    n: usize,
    k: usize,
    chunk: usize,
    total_rows: usize,
    secs_per_call: f64,
}

const CYCLE_NS: [usize; 3] = [64, 256, 512];
const CYCLE_KS: [usize; 3] = [1, 8, 64];

/// Push-then-solve cycles at every `(n, k)`; returns the minimum
/// `refactor / factored` speedup over the grid.
fn measure_cycles(recs: &mut Vec<Rec>) -> f64 {
    let ctx = AtaContext::serial();
    let mut min_speedup = f64::INFINITY;
    for &n in &CYCLE_NS {
        for &k in &CYCLE_KS {
            let chunk = gen::standard::<f64>((n + k) as u64, k, n);
            let rhs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin() + 0.5).collect();

            // Seed both paths with the same tall warm-up mass so the
            // first timed cycle is steady state, not a cold start.
            let warm = gen::standard::<f64>(n as u64, 2 * n, n);

            let mut fg = ctx.factored_gram::<f64>(n);
            fg.push(warm.as_ref());
            let mut x = rhs.clone();
            fg.solve_in_place(&mut x).expect("warm mass is SPD");
            let mut buf = vec![0.0f64; n];
            let secs_factored = time_call(|| {
                fg.push(chunk.as_ref());
                buf.copy_from_slice(&rhs);
                fg.solve_in_place(&mut buf).expect("SPD");
                black_box(buf[0]);
            });

            let mut acc = ctx.gram_accumulator::<f64>(n);
            acc.push(warm.as_ref());
            let secs_refactor = time_call(|| {
                acc.push(chunk.as_ref());
                let mut g = acc.snapshot().into_dense();
                cholesky_factor(&mut g).expect("SPD");
                let x = cholesky_solve(&g, &rhs).expect("shape");
                black_box(x[0]);
            });

            recs.push(Rec {
                mode: "cycle",
                scheme: "factored",
                n,
                k,
                chunk: 0,
                total_rows: 0,
                secs_per_call: secs_factored,
            });
            recs.push(Rec {
                mode: "cycle",
                scheme: "refactor",
                n,
                k,
                chunk: 0,
                total_rows: 0,
                secs_per_call: secs_refactor,
            });
            min_speedup = min_speedup.min(secs_refactor / secs_factored);
        }
    }
    min_speedup
}

const LAT_N: usize = 128;
const LAT_PUSH: usize = 512;
const LAT_ROWS: [usize; 3] = [512, 8192, 65536];

/// Solve latency after streaming ever more rows at fixed `n`; returns
/// `max / min` over the series (1.0 = perfectly flat).
fn measure_latency(recs: &mut Vec<Rec>) -> f64 {
    let ctx = AtaContext::serial();
    let mut fg = ctx.factored_gram::<f64>(LAT_N);
    let rhs: Vec<f64> = (0..LAT_N)
        .map(|i| ((i as f64) * 0.37).sin() + 0.5)
        .collect();
    let mut buf = vec![0.0f64; LAT_N];
    let mut series = Vec::new();
    for (i, &target) in LAT_ROWS.iter().enumerate() {
        while fg.rows() < target {
            let seed = (i * 1000 + fg.rows()) as u64;
            fg.push(gen::standard::<f64>(seed, LAT_PUSH, LAT_N).as_ref());
        }
        let secs = time_call(|| {
            buf.copy_from_slice(&rhs);
            fg.solve_in_place(&mut buf).expect("SPD");
            black_box(buf[0]);
        });
        recs.push(Rec {
            mode: "latency",
            scheme: "factored",
            n: LAT_N,
            k: 0,
            chunk: LAT_PUSH,
            total_rows: target,
            secs_per_call: secs,
        });
        series.push(secs);
    }
    let max = series.iter().cloned().fold(0.0f64, f64::max);
    let min = series.iter().cloned().fold(f64::INFINITY, f64::min);
    max / min
}

fn bench_factor_record(c: &mut Criterion) {
    let mut recs = Vec::new();
    let min_speedup = measure_cycles(&mut recs);
    let latency_spread = measure_latency(&mut recs);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"factor\",\n  \"schema\": 1,\n");
    json.push_str(&format!("  \"smoke\": {},\n", smoke()));
    json.push_str(&format!(
        "  \"min_speedup_factored_over_refactor\": {min_speedup:.4},\n"
    ));
    json.push_str(&format!(
        "  \"solve_latency_max_over_min\": {latency_spread:.4},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"mode\": \"{}\", \"scheme\": \"{}\", \"n\": {}, \"k\": {}, \
             \"chunk\": {}, \"total_rows\": {}, \"secs_per_call\": {:.6e}}}{}\n",
            r.mode,
            r.scheme,
            r.n,
            r.k,
            r.chunk,
            r.total_rows,
            r.secs_per_call,
            if i + 1 == recs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out_path = std::env::var("ATA_BENCH_OUT").unwrap_or_else(|_| {
        if smoke() {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/BENCH_factor.json"
            )
            .into()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_factor.json").into()
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("factor record: wrote {out_path}"),
        Err(e) => eprintln!("factor record: could not write {out_path}: {e}"),
    }

    for r in &recs {
        println!(
            "factor: {:>7}/{:<9} n={:<3} k={:<2} chunk={:<3} total_rows={:<5} {:.3e} s/call",
            r.mode, r.scheme, r.n, r.k, r.chunk, r.total_rows, r.secs_per_call
        );
    }
    println!(
        "factor: factored push+solve is >= {min_speedup:.2}x the snapshot-and-refactor \
         cycle at every (n, k) in {CYCLE_NS:?} x {CYCLE_KS:?}"
    );
    println!(
        "factor: solve latency spread {latency_spread:.2}x (max/min) over \
         {LAT_ROWS:?} streamed rows at n={LAT_N}"
    );
    if !smoke() {
        assert!(
            min_speedup > 1.0,
            "acceptance: the factored cycle must beat snapshot-and-refactor at \
             every benched (n, k); worst speedup was {min_speedup:.3}x"
        );
        assert!(
            latency_spread <= 1.5,
            "acceptance: solve latency must stay flat as streamed rows grow \
             (O(n²) against the factor, independent of row count); \
             got a {latency_spread:.2}x spread"
        );
    }

    let mut group = c.benchmark_group("factor record");
    let budget = if smoke() {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(200)
    };
    group.sample_size(1).measurement_time(budget);
    group.bench_function("noop anchor", |bch| bch.iter(|| black_box(1 + 1)));
    group.finish();
}

criterion_group!(benches, bench_factor_record);
criterion_main!(benches);
