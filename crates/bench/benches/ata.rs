//! Criterion benchmarks for the AtA algorithms: serial AtA vs the syrk
//! substitute (Figure 3 in microbenchmark form), AtA-S task
//! decomposition overhead, and the packed-storage conversion cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ata_core::parallel::ata_s;
use ata_core::serial::ata_into_with;
use ata_kernels::{syrk_ln, CacheConfig};
use ata_mat::{gen, Matrix, SymPacked};
use ata_strassen::StrassenWorkspace;

fn bench_serial_vs_syrk(c: &mut Criterion) {
    let mut group = c.benchmark_group("AtA vs syrk (serial)");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let cache = CacheConfig::with_words(4096);
    for &n in &[192usize, 384] {
        let a = gen::standard::<f64>(1, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        let mut ws = StrassenWorkspace::<f64>::empty();
        group.bench_with_input(BenchmarkId::new("AtA", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                ata_into_with(1.0, a.as_ref(), &mut out.as_mut(), &cache, &mut ws);
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("syrk", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                syrk_ln(1.0, a.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_ata_s_decomposition(c: &mut Criterion) {
    // Task-tree construction + disjoint carving overhead across thread
    // counts (compute dominated by the same total work on one core).
    let mut group = c.benchmark_group("AtA-S task count");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let cache = CacheConfig::with_words(4096);
    let n = 256usize;
    let a = gen::standard::<f64>(2, n, n);
    let mut out = Matrix::<f64>::zeros(n, n);
    for &tasks in &[1usize, 4, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &tasks, |bch, &tasks| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                ata_s(1.0, a.as_ref(), &mut out.as_mut(), tasks, &cache);
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_packed_conversion(c: &mut Criterion) {
    let mut group = c.benchmark_group("packed conversion");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let n = 512usize;
    let a = gen::standard::<f64>(3, n + 7, n);
    let g = ata_core::gram(a.as_ref());
    group.bench_function("from_lower + to_full", |bch| {
        bch.iter(|| {
            let p = SymPacked::from_lower(&g);
            black_box(p.to_full()[(0, 0)]);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_vs_syrk,
    bench_ata_s_decomposition,
    bench_packed_conversion
);
criterion_main!(benches);
