//! Dist-traffic bench: predicted vs simulated root-rank words for AtA-D
//! per `{shape, P, wire format}`, written to `BENCH_dist.json`.
//!
//! This is the machine-readable record of the communication-lean stack's
//! headline: §4.3.1's packed wire format strictly reducing the words
//! that converge on the root, with the analytical predictor
//! (`ata_dist::traffic`) agreeing with the simulator's exact counters on
//! every point. The shape grid sweeps aspect ratios — tall (512 x 64),
//! square-ish (96 x 80, the historical record point) and wide
//! (64 x 512) — because the task tree's AtB/AtA block mix, and with it
//! the packed format's savings, shifts with the aspect ratio. The
//! numbers are deterministic replays (no timing noise), so `bench_gate`
//! enforces them even on CI smoke runs — a schedule change that moves
//! more words through the root fails the gate until the committed
//! record is refreshed.
//!
//! Set `ATA_BENCH_SMOKE=1` to keep the criterion anchor cheap in CI (the
//! record itself costs a handful of zero-cost-model simulations either
//! way); `ATA_BENCH_OUT` overrides the output path (smoke runs default
//! to `target/` so they never clobber the committed record).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ata_dist::traffic::ata_d_traffic;
use ata_dist::{ata_d, AtaDConfig, WireFormat};
use ata_kernels::CacheConfig;
use ata_mat::gen;
use ata_mpisim::{run, CostModel};

fn smoke() -> bool {
    std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// The aspect-ratio grid: tall, square-ish, wide.
const SHAPES: &[(usize, usize)] = &[(512, 64), (96, 80), (64, 512)];

struct Rec {
    m: usize,
    n: usize,
    p: usize,
    wire: &'static str,
    root_recv_words_pred: u64,
    root_recv_words_sim: u64,
    root_sent_words: u64,
    root_msgs: u64,
    total_words: u64,
}

fn measure(m: usize, n: usize) -> Vec<Rec> {
    let mut recs = Vec::new();
    let a = gen::standard::<f64>(42, m, n);
    for &p in &[2usize, 4, 8, 16, 32] {
        for (wire, name) in [
            (WireFormat::Dense, "dense"),
            (WireFormat::SymPacked, "packed"),
        ] {
            let cfg = AtaDConfig {
                cache: CacheConfig::with_words(64),
                wire,
                ..AtaDConfig::default()
            };
            let plan = ata_d_traffic(m, n, p, &cfg);
            let a_ref = &a;
            let report = run(p, CostModel::zero(), move |comm| {
                let input = (comm.rank() == 0).then_some(a_ref);
                ata_d(input, m, n, comm, &cfg);
            });
            let sim_root_recv = report.metrics[0].words_recv;
            assert_eq!(
                sim_root_recv,
                plan.root_recv_words(),
                "P={p} {name}: predictor out of sync with the simulator"
            );
            assert_eq!(report.total_words(), plan.total_words());
            recs.push(Rec {
                m,
                n,
                p,
                wire: name,
                root_recv_words_pred: plan.root_recv_words(),
                root_recv_words_sim: sim_root_recv,
                root_sent_words: plan.root_sent_words(),
                root_msgs: plan.per_rank[0].msgs,
                total_words: plan.total_words(),
            });
        }
    }
    recs
}

fn bench_dist_traffic_record(c: &mut Criterion) {
    let recs: Vec<Rec> = SHAPES.iter().flat_map(|&(m, n)| measure(m, n)).collect();

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"dist-traffic\",\n  \"schema\": 2,\n");
    json.push_str(&format!("  \"smoke\": {},\n", smoke()));
    json.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"m\": {}, \"n\": {}, \"p\": {}, \"wire\": \"{}\", \
             \"root_recv_words_pred\": {}, \
             \"root_recv_words_sim\": {}, \"root_sent_words\": {}, \"root_msgs\": {}, \
             \"total_words\": {}}}{}\n",
            r.m,
            r.n,
            r.p,
            r.wire,
            r.root_recv_words_pred,
            r.root_recv_words_sim,
            r.root_sent_words,
            r.root_msgs,
            r.total_words,
            if i + 1 == recs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    let out_path = std::env::var("ATA_BENCH_OUT").unwrap_or_else(|_| {
        if smoke() {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_dist.json").into()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_dist.json").into()
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("dist-traffic record: wrote {out_path}"),
        Err(e) => eprintln!("dist-traffic record: could not write {out_path}: {e}"),
    }
    for r in &recs {
        println!(
            "dist-traffic: {:>3}x{:<3} P={:<2} {:>6}: root recv {:>6} words (pred == sim), \
             root sent {:>6}, root msgs {}, total {:>7}",
            r.m,
            r.n,
            r.p,
            r.wire,
            r.root_recv_words_sim,
            r.root_sent_words,
            r.root_msgs,
            r.total_words
        );
    }
    for &(m, n) in SHAPES {
        for p in [2usize, 4, 8, 16, 32] {
            let pick = |wire: &str| {
                recs.iter()
                    .find(|r| r.m == m && r.n == n && r.p == p && r.wire == wire)
                    .expect("grid point")
            };
            let (dense, packed) = (pick("dense"), pick("packed"));
            assert!(
                packed.root_recv_words_sim < dense.root_recv_words_sim,
                "{m}x{n} P={p}: packed must strictly reduce root words"
            );
            println!(
                "dist-traffic: {m}x{n} P={p}: packed cuts root recv words {:.1}% \
                 (dense {} -> packed {})",
                100.0
                    * (1.0 - packed.root_recv_words_sim as f64 / dense.root_recv_words_sim as f64),
                dense.root_recv_words_sim,
                packed.root_recv_words_sim
            );
        }
    }

    let mut group = c.benchmark_group("dist traffic record");
    let budget = if smoke() {
        Duration::from_millis(1)
    } else {
        Duration::from_millis(200)
    };
    group.sample_size(1).measurement_time(budget);
    group.bench_function("noop anchor", |bch| bch.iter(|| black_box(1 + 1)));
    group.finish();
}

criterion_group!(benches, bench_dist_traffic_record);
criterion_main!(benches);
