//! Criterion microbenchmarks for the BLAS-substitute kernels: the
//! blocking ablation for `gemm_tn` (blocked vs unblocked vs textbook
//! oracle) and the `syrk` triangle savings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ata_kernels::gemm::{gemm_tn_blocked, gemm_tn_unblocked, BlockSizes};
use ata_kernels::syrk_ln;
use ata_mat::{gen, reference, Matrix};

fn bench_gemm_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_tn blocking ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[128usize, 256] {
        let a = gen::standard::<f64>(1, n, n);
        let b = gen::standard::<f64>(2, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_blocked(
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    BlockSizes::default(),
                );
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_unblocked(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("textbook", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_syrk_vs_gemm(c: &mut Criterion) {
    // syrk computes half the entries: ~2x over gemm with B = A.
    let mut group = c.benchmark_group("syrk triangle savings");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in &[128usize, 256] {
        let a = gen::standard::<f64>(3, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("syrk_ln", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                syrk_ln(1.0, a.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm_self", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_blocked(
                    1.0,
                    a.as_ref(),
                    a.as_ref(),
                    &mut out.as_mut(),
                    BlockSizes::default(),
                );
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemm_blocking, bench_syrk_vs_gemm);
criterion_main!(benches);
