//! Criterion microbenchmarks + machine-readable perf record for the
//! BLAS-substitute kernels.
//!
//! Two layers:
//!
//! 1. Criterion groups — the blocking ablation for `gemm_tn` (packed
//!    microkernel vs blocked rank-1 vs unblocked vs textbook oracle) and
//!    the `syrk` triangle savings, for interactive runs.
//! 2. A `perf record` pass (schema 2) that times every
//!    `(kernel, engine, dtype, n, isa, path)` combination directly and
//!    writes `BENCH_kernels.json` at the workspace root — the
//!    regression-tracking trajectory the ROADMAP asks for. The record
//!    carries the detected ISA and, for the micro engine, one entry per
//!    tile path (resolved dispatch plus forced portable/scalar
//!    ablations), and includes the geomean micro-vs-blocked speedup on
//!    f64, the headline number of the packed engine.
//!
//! Smoke mode for CI: set `ATA_BENCH_SMOKE=1` to run one timed iteration
//! per measurement (guards against rot; the JSON is still written, with
//! `"smoke": true`, defaulting to `target/` so the committed full-run
//! record is never clobbered by smoke numbers; `ATA_BENCH_OUT`
//! overrides the destination either way).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

use ata_kernels::calibrate::tuned_for_path;
use ata_kernels::gemm::{gemm_tn_blocked, gemm_tn_unblocked, BlockSizes};
use ata_kernels::micro::{
    gemm_tn_micro, gemm_tn_micro_path, micro_path_for, syrk_ln_micro, syrk_ln_micro_path,
    KernelConfig, MicroPath,
};
use ata_kernels::simd;
use ata_kernels::syrk::syrk_ln_blocked;
use ata_mat::{gen, reference, Matrix, Scalar};

fn smoke() -> bool {
    std::env::var_os("ATA_BENCH_SMOKE").is_some_and(|v| v != "0")
}

/// Criterion measurement budget: tiny in smoke mode (CI), seconds
/// otherwise.
fn budget() -> Duration {
    if smoke() {
        Duration::from_millis(1)
    } else {
        Duration::from_secs(2)
    }
}

fn bench_gemm_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_tn blocking ablation");
    group.sample_size(10).measurement_time(budget());
    let cfg = KernelConfig::for_scalar::<f64>();
    for &n in &[128usize, 256] {
        let a = gen::standard::<f64>(1, n, n);
        let b = gen::standard::<f64>(2, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("micro", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_micro(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut(), &cfg);
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_blocked(
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    BlockSizes::default(),
                );
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("unblocked", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_unblocked(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("textbook", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_syrk_vs_gemm(c: &mut Criterion) {
    // syrk computes half the entries: ~2x over gemm with B = A.
    let mut group = c.benchmark_group("syrk triangle savings");
    group.sample_size(10).measurement_time(budget());
    let cfg = KernelConfig::for_scalar::<f64>();
    for &n in &[128usize, 256] {
        let a = gen::standard::<f64>(3, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("syrk_micro", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                syrk_ln_micro(1.0, a.as_ref(), &mut out.as_mut(), &cfg);
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm_self_micro", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn_micro(1.0, a.as_ref(), a.as_ref(), &mut out.as_mut(), &cfg);
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

// ---------------------------------------------------------------------
// Machine-readable perf record.
// ---------------------------------------------------------------------

/// One measured data point of the record.
///
/// `isa` is the host's detected instruction set and `path` the tile
/// implementation a micro-engine entry ran on (`none` for the blocked
/// and unblocked engines). Both are string fields, so `bench_gate`
/// automatically folds them into each entry's identity: a record taken
/// on a different ISA, or a dispatch change that silently moves a point
/// to another tile path, surfaces as a new grid point instead of being
/// compared metric-to-metric against a different kernel.
struct Rec {
    kernel: &'static str,
    engine: &'static str,
    dtype: &'static str,
    n: usize,
    isa: &'static str,
    path: &'static str,
    secs_per_call: f64,
    gflops: f64,
}

/// Mean seconds/call of `f`, warmed once; smoke mode runs one timed
/// iteration, otherwise enough to fill ~0.5 s (min 3).
fn time_call(mut f: impl FnMut()) -> f64 {
    f();
    if smoke() {
        let t0 = Instant::now();
        f();
        return t0.elapsed().as_secs_f64();
    }
    let mut reps = 0u32;
    let t0 = Instant::now();
    while reps < 3 || t0.elapsed() < Duration::from_millis(500) {
        f();
        reps += 1;
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Measure all engines of `gemm_tn` and `syrk_ln` for one scalar type.
///
/// The default `micro` entries run whatever tile path the dispatcher
/// resolves on this host (intrinsic where FMA kernels exist). On top of
/// those, every *other* tile path is measured explicitly through the
/// forced `*_micro_path` entry points with its own per-path tuned
/// config, so the record keeps a trajectory for each implementation —
/// the ablation the ISA-dispatch work is judged against.
fn record_dtype<T: Scalar>(sizes: &[usize], recs: &mut Vec<Rec>) {
    let isa = simd::detected().name();
    let resolved = micro_path_for::<T>();
    let cfg = KernelConfig::for_scalar::<T>();
    for &n in sizes {
        let a = gen::standard::<T>(1, n, n);
        let b = gen::standard::<T>(2, n, n);
        let mut out = Matrix::<T>::zeros(n, n);
        let gemm_flops = 2.0 * (n as f64).powi(3);
        let syrk_flops = (n as f64) * (n as f64) * (n as f64 + 1.0);

        let push = |recs: &mut Vec<Rec>, kernel, engine, path, secs: f64, flops: f64| {
            recs.push(Rec {
                kernel,
                engine,
                dtype: T::NAME,
                n,
                isa,
                path,
                secs_per_call: secs,
                gflops: flops / secs / 1e9,
            });
        };

        let secs =
            time_call(|| gemm_tn_micro(T::ONE, a.as_ref(), b.as_ref(), &mut out.as_mut(), &cfg));
        push(recs, "gemm_tn", "micro", resolved.name(), secs, gemm_flops);
        let secs = time_call(|| {
            gemm_tn_blocked(
                T::ONE,
                a.as_ref(),
                b.as_ref(),
                &mut out.as_mut(),
                BlockSizes::default(),
            )
        });
        push(recs, "gemm_tn", "blocked", "none", secs, gemm_flops);
        let secs =
            time_call(|| gemm_tn_unblocked(T::ONE, a.as_ref(), b.as_ref(), &mut out.as_mut()));
        push(recs, "gemm_tn", "unblocked", "none", secs, gemm_flops);

        let secs = time_call(|| syrk_ln_micro(T::ONE, a.as_ref(), &mut out.as_mut(), &cfg));
        push(recs, "syrk_ln", "micro", resolved.name(), secs, syrk_flops);
        let secs = time_call(|| {
            syrk_ln_blocked(T::ONE, a.as_ref(), &mut out.as_mut(), BlockSizes::default())
        });
        push(recs, "syrk_ln", "blocked", "none", secs, syrk_flops);

        // Forced-path ablation entries (skipping the resolved path,
        // which the default entries above already cover).
        for path in [MicroPath::Portable, MicroPath::Scalar] {
            if path == resolved {
                continue;
            }
            let pcfg = tuned_for_path::<T>(path).kernel;
            let secs = time_call(|| {
                gemm_tn_micro_path(
                    path,
                    T::ONE,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    &pcfg,
                )
            });
            push(recs, "gemm_tn", "micro", path.name(), secs, gemm_flops);
            let secs = time_call(|| {
                syrk_ln_micro_path(path, T::ONE, a.as_ref(), &mut out.as_mut(), &pcfg)
            });
            push(recs, "syrk_ln", "micro", path.name(), secs, syrk_flops);
        }
    }
}

/// Geomean of `blocked_time / micro_time` over f64 `gemm_tn` + `syrk_ln`
/// at every measured size — the acceptance headline of the packed
/// engine.
fn geomean_speedup(recs: &[Rec]) -> f64 {
    let resolved = micro_path_for::<f64>().name();
    let mut log_sum = 0.0;
    let mut count = 0usize;
    for r in recs.iter().filter(|r| r.dtype == "f64") {
        if r.engine != "micro" || r.path != resolved {
            continue;
        }
        let blocked = recs
            .iter()
            .find(|b| {
                b.dtype == "f64" && b.kernel == r.kernel && b.n == r.n && b.engine == "blocked"
            })
            .expect("every micro point has a blocked twin");
        log_sum += (blocked.secs_per_call / r.secs_per_call).ln();
        count += 1;
    }
    (log_sum / count.max(1) as f64).exp()
}

fn bench_perf_record(c: &mut Criterion) {
    let sizes = [128usize, 256, 512];
    let mut recs = Vec::new();
    record_dtype::<f64>(&sizes, &mut recs);
    record_dtype::<f32>(&sizes, &mut recs);
    let geomean = geomean_speedup(&recs);

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"kernels\",\n  \"schema\": 2,\n");
    json.push_str(&format!("  \"smoke\": {},\n", smoke()));
    json.push_str(&format!("  \"isa\": \"{}\",\n", simd::detected().name()));
    json.push_str(&format!(
        "  \"geomean_speedup_f64_micro_vs_blocked\": {geomean:.4},\n"
    ));
    json.push_str("  \"results\": [\n");
    for (i, r) in recs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"engine\": \"{}\", \"dtype\": \"{}\", \"n\": {}, \
             \"isa\": \"{}\", \"path\": \"{}\", \
             \"secs_per_call\": {:.6e}, \"gflops\": {:.3}}}{}\n",
            r.kernel,
            r.engine,
            r.dtype,
            r.n,
            r.isa,
            r.path,
            r.secs_per_call,
            r.gflops,
            if i + 1 == recs.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    // Full runs refresh the tracked record at the workspace root; smoke
    // runs (single timed iteration, meaningless numbers) default to
    // target/ so they never clobber the committed record.
    let out_path = std::env::var("ATA_BENCH_OUT").unwrap_or_else(|_| {
        if smoke() {
            concat!(
                env!("CARGO_MANIFEST_DIR"),
                "/../../target/BENCH_kernels.json"
            )
            .into()
        } else {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json").into()
        }
    });
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("perf record: wrote {}", out_path),
        Err(e) => eprintln!("perf record: could not write {out_path}: {e}"),
    }
    println!("perf record: geomean f64 micro-vs-blocked speedup {geomean:.2}x");
    for r in &recs {
        println!(
            "perf record: {}/{}/{} {} n={} {:.3e}s/call ({:.2} GFLOP/s)",
            r.kernel, r.engine, r.path, r.dtype, r.n, r.secs_per_call, r.gflops
        );
    }

    let mut group = c.benchmark_group("perf record");
    group.sample_size(1).measurement_time(budget());
    group.bench_function("noop anchor", |bch| bch.iter(|| black_box(1 + 1)));
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm_blocking,
    bench_syrk_vs_gemm,
    bench_perf_record
);
criterion_main!(benches);
