//! Criterion benchmarks for FastStrassen: the pre-allocation ablation
//! (§3.3, demonstrated by Figure 4) and the recursion cut-off sweep —
//! the "virtually tuning free" property the paper inherits from
//! recursive blocked algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

use ata_kernels::{gemm_tn, CacheConfig};
use ata_mat::{gen, Matrix};
use ata_strassen::alloc::strassen_allocating;
use ata_strassen::{fast_strassen_with, winograd_strassen_with, StrassenWorkspace};

fn bench_prealloc_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("strassen prealloc ablation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let cache = CacheConfig::with_words(1024); // force a few levels
    for &n in &[192usize, 384] {
        let a = gen::standard::<f64>(1, n, n);
        let b = gen::standard::<f64>(2, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        let mut ws = StrassenWorkspace::<f64>::for_problem(n, n, n, &cache);
        group.bench_with_input(BenchmarkId::new("fast (arena)", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                fast_strassen_with(
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    &cache,
                    &mut ws,
                );
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("allocating", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                strassen_allocating(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut(), &cache);
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("gemm (no strassen)", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut out.as_mut());
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_winograd_vs_classic(c: &mut Criterion) {
    // The 15-vs-18 block-addition trade (19 vs 22 add-volumes in
    // accumulate form) at ~2x workspace — ablation 5 of `bin/ablation`
    // as a tracked criterion series.
    let mut group = c.benchmark_group("strassen winograd vs classic");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let cache = CacheConfig::with_words(1024);
    for &n in &[192usize, 384] {
        let a = gen::standard::<f64>(3, n, n);
        let b = gen::standard::<f64>(4, n, n);
        let mut out = Matrix::<f64>::zeros(n, n);
        let mut ws = StrassenWorkspace::<f64>::empty();
        group.bench_with_input(BenchmarkId::new("classic (18 adds)", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                fast_strassen_with(
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    &cache,
                    &mut ws,
                );
                black_box(out.as_slice()[0]);
            })
        });
        group.bench_with_input(BenchmarkId::new("winograd (15 adds)", n), &n, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                winograd_strassen_with(
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    &cache,
                    &mut ws,
                );
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

fn bench_cutoff_sweep(c: &mut Criterion) {
    // The cache-oblivious claim: performance should be flat across a
    // broad range of base-case sizes (no fragile tuning knee).
    let mut group = c.benchmark_group("strassen base-case cutoff");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(4));
    let n = 384usize;
    let a = gen::standard::<f64>(5, n, n);
    let b = gen::standard::<f64>(6, n, n);
    let mut out = Matrix::<f64>::zeros(n, n);
    for &words in &[2048usize, 8192, 32768, 131072] {
        let cache = CacheConfig::with_words(words);
        let mut ws = StrassenWorkspace::<f64>::for_problem(n, n, n, &cache);
        group.bench_with_input(BenchmarkId::from_parameter(words), &words, |bch, _| {
            bch.iter(|| {
                out.as_mut().fill_zero();
                fast_strassen_with(
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    &mut out.as_mut(),
                    &cache,
                    &mut ws,
                );
                black_box(out.as_slice()[0]);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prealloc_ablation,
    bench_winograd_vs_classic,
    bench_cutoff_sweep
);
criterion_main!(benches);
