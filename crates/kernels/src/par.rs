//! Rayon-parallel kernel variants — the stand-ins for multi-threaded MKL
//! (`ssyrk`/`dgemm` with `MKL_NUM_THREADS > 1`) in the Figure 5 and 6
//! comparisons.
//!
//! Both routines split the *output* into disjoint `MatMut` regions and
//! hand one region per task to rayon: no locks, no atomics, no overlap —
//! the same "embarrassingly parallel" discipline the paper engineers for
//! AtA-S (§4.2.1). Run them inside a custom `rayon::ThreadPool` via
//! `pool.install(..)` to model a fixed core count `P`.

use crate::gemm::gemm_tn;
use crate::syrk::{syrk_ln, triangle_row_partition};
use ata_mat::{MatMut, MatRef, Scalar};
use rayon::prelude::*;

/// Split a view into `parts` balanced column strips (some may be empty).
fn split_cols_mut<'a, T>(mut c: MatMut<'a, T>, parts: usize) -> Vec<MatMut<'a, T>> {
    let k = c.cols();
    let base = k / parts;
    let extra = k % parts;
    let mut out = Vec::with_capacity(parts);
    for t in 0..parts {
        let w = base + usize::from(t < extra);
        let (left, rest) = c.split_at_col_mut(w);
        out.push(left);
        c = rest;
    }
    out
}

/// Parallel `C += alpha * A^T B`: column strips of `C` (and `B`) are
/// computed independently, one task per strip.
///
/// `tasks` controls the decomposition; pass the pool's thread count.
///
/// # Panics
/// On inconsistent shapes or `tasks == 0`.
pub fn par_gemm_tn<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    tasks: usize,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "par_gemm_tn: A is {m}x{n} but B has {mb} rows");
    assert_eq!(c.shape(), (n, k), "par_gemm_tn: C must be {n}x{k}");
    assert!(tasks > 0, "par_gemm_tn: tasks must be positive");

    let tasks = tasks.min(k.max(1));
    let strips = split_cols_mut(c.rb_mut(), tasks);
    // Column offsets of each strip for slicing B identically.
    let mut offsets = Vec::with_capacity(tasks + 1);
    offsets.push(0usize);
    for s in &strips {
        offsets.push(offsets.last().unwrap() + s.cols()); // ata-lint: allow(no-unwrap-in-lib): offsets starts non-empty (0 pushed above)
    }

    strips
        .into_par_iter()
        .enumerate()
        .for_each(|(t, mut c_strip)| {
            let b_strip = b.block(0, m, offsets[t], offsets[t + 1]);
            gemm_tn(alpha, a, b_strip, &mut c_strip);
        });
}

/// Parallel lower-triangular `C += alpha * A^T A`: the triangle is cut
/// into `tasks` row bands of equal *area* (see
/// [`triangle_row_partition`]); band `r0..r1` computes its rectangular
/// part with `gemm_tn` and its diagonal tile with `syrk_ln`.
///
/// # Panics
/// On inconsistent shapes or `tasks == 0`.
pub fn par_syrk_ln<T: Scalar>(alpha: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>, tasks: usize) {
    let (m, n) = a.shape();
    assert_eq!(c.shape(), (n, n), "par_syrk_ln: C must be {n}x{n}");
    assert!(tasks > 0, "par_syrk_ln: tasks must be positive");

    let tasks = tasks.min(n.max(1));
    let bounds = triangle_row_partition(n, tasks);

    // Carve C into disjoint row bands.
    let mut bands: Vec<(usize, usize, MatMut<'_, T>)> = Vec::with_capacity(tasks);
    let mut rest = c.rb_mut();
    for t in 0..tasks {
        let (r0, r1) = (bounds[t], bounds[t + 1]);
        let (band, below) = rest.split_at_row_mut(r1 - r0);
        bands.push((r0, r1, band));
        rest = below;
    }

    bands.into_par_iter().for_each(|(r0, r1, mut band)| {
        if r0 > 0 {
            let a_i = a.block(0, m, r0, r1);
            let a_j = a.block(0, m, 0, r0);
            let mut rect = band.block_mut(0, r1 - r0, 0, r0);
            gemm_tn(alpha, a_i, a_j, &mut rect);
        }
        let a_d = a.block(0, m, r0, r1);
        let mut diag = band.block_mut(0, r1 - r0, r0, r1);
        syrk_ln(alpha, a_d, &mut diag);
    });
}

/// Build a rayon pool with exactly `threads` workers (the paper's fixed
/// 16-thread setup for Figure 5).
///
/// # Panics
/// If the pool cannot be built.
pub fn pool_with_threads(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool") // ata-lint: allow(no-unwrap-in-lib): pool build only fails on OS thread-spawn failure, unrecoverable here
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference, Matrix};

    #[test]
    fn par_gemm_matches_oracle() {
        let (m, n, k) = (37, 29, 53);
        let a = gen::standard::<f64>(1, m, n);
        let b = gen::standard::<f64>(2, m, k);
        for tasks in [1, 2, 3, 8, 64] {
            let mut c = Matrix::zeros(n, k);
            par_gemm_tn(1.5, a.as_ref(), b.as_ref(), &mut c.as_mut(), tasks);
            let mut c_ref = Matrix::zeros(n, k);
            reference::gemm_tn(1.5, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
            assert!(c.max_abs_diff(&c_ref) < 1e-10, "tasks={tasks}");
        }
    }

    #[test]
    fn par_syrk_matches_oracle() {
        let (m, n) = (41, 33);
        let a = gen::standard::<f64>(3, m, n);
        for tasks in [1, 2, 5, 16] {
            let mut c = Matrix::zeros(n, n);
            par_syrk_ln(2.0, a.as_ref(), &mut c.as_mut(), tasks);
            let mut c_ref = Matrix::zeros(n, n);
            reference::syrk_ln(2.0, a.as_ref(), &mut c_ref.as_mut());
            assert!(c.max_abs_diff_lower(&c_ref) < 1e-10, "tasks={tasks}");
            // Upper triangle strictly zero (untouched from zeros()).
            let mut upper_ok = true;
            for i in 0..n {
                for j in (i + 1)..n {
                    upper_ok &= c[(i, j)] == 0.0;
                }
            }
            assert!(upper_ok, "tasks={tasks}: strict upper must stay zero");
        }
    }

    #[test]
    fn runs_inside_fixed_pool() {
        let pool = pool_with_threads(4);
        let a = gen::standard::<f64>(7, 24, 16);
        let mut c = Matrix::zeros(16, 16);
        pool.install(|| par_syrk_ln(1.0, a.as_ref(), &mut c.as_mut(), 4));
        let g = reference::gram(a.as_ref());
        assert!(c.max_abs_diff_lower(&g) < 1e-10);
    }

    #[test]
    fn more_tasks_than_columns_is_fine() {
        let a = gen::standard::<f64>(5, 10, 3);
        let b = gen::standard::<f64>(6, 10, 2);
        let mut c = Matrix::zeros(3, 2);
        par_gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), 99);
        let mut c_ref = Matrix::zeros(3, 2);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "tasks must be positive")]
    fn zero_tasks_rejected() {
        let a = Matrix::<f64>::zeros(2, 2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        par_syrk_ln(1.0, a.as_ref(), &mut c.as_mut(), 0);
    }
}
