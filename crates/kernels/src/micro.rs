//! The register-blocked microkernel engine (BLIS-style `GEMM`/`SYRK`).
//!
//! [`crate::gemm::gemm_tn`] and [`crate::syrk::syrk_ln`] dispatch onto
//! this module by default (see [`selected_path`]); the pre-engine loops
//! remain available as `gemm_tn_blocked` / `gemm_tn_unblocked` for
//! ablation and as the op-counting reference.
//!
//! # Anatomy
//!
//! The engine is the classical three-level blocking of Goto / BLIS,
//! specialized to the transposed-left product `C += alpha * A^T B` that
//! the paper's algorithms need (`A: m x n`, `B: m x k`, `C: n x k`):
//!
//! ```text
//! for jc in steps of NC over k        // C column blocks
//!   for pc in steps of KC over m      // reduction blocks
//!     pack B[pc.., jc..]  -> bpack    // NR-wide panels, alpha folded in
//!     for ic in steps of MC over n    // C row blocks
//!       pack A[pc.., ic..] -> apack   // MR-wide panels
//!       for jr in steps of NR         // micro-tile columns
//!         for ir in steps of MR       // micro-tile rows
//!           microkernel: MR x NR accumulators in registers,
//!           one fused multiply-add per (i, j, p)
//! ```
//!
//! The microkernel keeps an `MR x NR` accumulator array in registers,
//! seeded from `C` and written back once per `KC` block, so `C` traffic
//! is `1/KC` of the rank-1 scheme's and `A`/`B` traffic is `1/NR` and
//! `1/MR` respectively. `MR`/`NR` are const generics from a fixed menu
//! ([`KernelConfig::MENU`]); the blocking parameters come from the
//! measured per-scalar table in [`crate::calibrate`].
//!
//! # Exact operation accounting
//!
//! Every result element is produced by `Scalar::mul_add` chains seeded
//! from the existing `C` value: with `alpha = 1` — the hot path every
//! Strassen product and every measured-flop validation runs — the
//! engine performs *exactly* `m * n * k` multiplications and
//! `m * n * k` additions, the same counts as the rank-1 reference path
//! (a parity the `micro_props` proptests pin down). Ragged edges are
//! computed by a bounds-aware scalar tile ([`edge kernel`](self))
//! rather than with zero-padding arithmetic, which is what keeps the
//! counts exact for arbitrary shapes. `alpha = -1` stays
//! multiplication-exact too (`m * n * k` muls) by folding the sign into
//! the `B`-pack as `m * k` negations — *cheaper* than the rank-1 path,
//! which re-multiplies by `alpha` per tile, so negated products are not
//! count-identical across the [`selected_path`] dispatch boundary.

use crate::pack::{
    pack_panels, pack_panels_par, packed_elems, with_thread_bufs, PackBufs, PackScale,
};
use ata_mat::{MatMut, MatRef, Scalar};
use std::sync::OnceLock;

/// Blocking parameters of the microkernel engine.
///
/// `(mr, nr)` select the register tile (must come from
/// [`KernelConfig::MENU`] for the fast path; any other pair still
/// computes correctly through the bounds-aware edge kernel). `kc`, `mc`,
/// `nc` are the cache-blocking depths of the loop nest: a `kc x mc`
/// `A`-block should sit in L2 and a `kc x nr` `B`-sliver in L1 while a
/// micro-tile executes.
///
/// Defaults per scalar type come from the measured table in
/// [`crate::calibrate`]; construct explicitly (or set
/// `ATA_KERNEL_PARAMS`) to override.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Register-tile rows (micro-panel width of the packed `A` operand).
    pub mr: usize,
    /// Register-tile columns (micro-panel width of the packed `B`
    /// operand).
    pub nr: usize,
    /// Reduction-dimension block depth.
    pub kc: usize,
    /// `C` row-block height (columns of `A` packed per block).
    pub mc: usize,
    /// `C` column-block width (columns of `B` packed per block).
    pub nc: usize,
}

impl KernelConfig {
    /// Register tiles with a dedicated unrolled portable microkernel.
    /// Other `(mr, nr)` pairs run through the (slower) bounds-aware
    /// kernel. The intrinsic tiles ([`crate::simd::FMA_MENU_F64`] /
    /// [`crate::simd::FMA_MENU_F32`]) are a subset, so a forced
    /// `ATA_MICRO=portable` run keeps the unrolled kernel at any
    /// ISA-calibrated tile.
    pub const MENU: &'static [(usize, usize)] = &[
        (4, 4),
        (4, 8),
        (4, 12),
        (4, 16),
        (6, 4),
        (6, 8),
        (6, 16),
        (8, 4),
        (8, 6),
        (8, 8),
        (8, 16),
        (12, 4),
    ];

    /// Validated constructor.
    ///
    /// # Panics
    /// If any parameter is zero.
    pub fn new(mr: usize, nr: usize, kc: usize, mc: usize, nc: usize) -> Self {
        assert!(
            mr > 0 && nr > 0 && kc > 0 && mc > 0 && nc > 0,
            "kernel blocking parameters must be positive"
        );
        Self { mr, nr, kc, mc, nc }
    }

    /// The measured default for scalar type `T` (see
    /// [`crate::calibrate::tuned_for`]), after applying any
    /// `ATA_KERNEL_PARAMS` environment override.
    pub fn for_scalar<T: Scalar>() -> Self {
        crate::calibrate::tuned_for::<T>().kernel
    }

    /// Element counts `(apack, bpack)` of the packing buffers one kernel
    /// invocation under this config needs — what `AtaPlan` warms
    /// per-thread so steady-state executes allocate nothing.
    pub fn pack_buffer_elems(&self) -> (usize, usize) {
        (
            packed_elems(self.kc, self.mc, self.mr),
            packed_elems(self.kc, self.nc, self.nr),
        )
    }
}

/// Which implementation a kernel entry point selects for a given problem
/// (the dispatch is observable so CI can guard against silent fallback
/// regressions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// The packed register-blocked engine in this module.
    Micro,
    /// The legacy cache-blocked rank-1 loops
    /// ([`crate::gemm::gemm_tn_blocked`]).
    Blocked,
}

/// Which tile implementation the engine runs inside [`KernelPath::Micro`]
/// — the inner dispatch level below the micro-vs-blocked choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroPath {
    /// Explicit-SIMD fused kernels from [`crate::simd`] (full tiles
    /// only; ragged edges always stay on the scalar kernel).
    Intrinsic,
    /// The safe const-generic kernels in this module (unfused
    /// `mul_add`, autovectorizer-scheduled).
    Portable,
    /// The bounds-aware scalar kernel for every tile — bit-identical to
    /// `Portable` (same per-element accumulation order); the ablation
    /// baseline.
    Scalar,
}

impl MicroPath {
    /// Stable lowercase name, matching the `ATA_MICRO` values and the
    /// bench-record `path` field.
    pub fn name(self) -> &'static str {
        match self {
            MicroPath::Intrinsic => "intrinsic",
            MicroPath::Portable => "portable",
            MicroPath::Scalar => "scalar",
        }
    }
}

/// Problems below this flop volume (`m * n * k`) skip packing: the
/// buffer setup costs more than it saves on sub-microtile products.
/// This is the default floor; the effective per-scalar cutoff lives in
/// [`crate::calibrate::Tuned::micro_min_volume`].
pub const MICRO_MIN_VOLUME: usize = 4096;

/// Parsed `ATA_MICRO` ablation switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MicroMode {
    /// No override: engine on, best available tile path per scalar.
    Auto,
    /// `ATA_MICRO=0|off`: engine off, everything runs the blocked loops.
    Off,
    /// `ATA_MICRO=intrinsic|portable|scalar`: engine on, tile path pinned.
    Force(MicroPath),
}

/// The process-wide `ATA_MICRO` setting (read once; unknown values fall
/// back to `Auto` so stale scripts degrade to defaults, not to panics).
fn micro_mode() -> MicroMode {
    static MODE: OnceLock<MicroMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("ATA_MICRO").as_deref() {
        Ok("0") | Ok("off") => MicroMode::Off,
        Ok("intrinsic") => MicroMode::Force(MicroPath::Intrinsic),
        Ok("portable") => MicroMode::Force(MicroPath::Portable),
        Ok("scalar") => MicroMode::Force(MicroPath::Scalar),
        _ => MicroMode::Auto,
    })
}

/// True when `ATA_MICRO=0` disables the engine process-wide (the
/// ablation/escape hatch; read once).
fn micro_disabled() -> bool {
    micro_mode() == MicroMode::Off
}

/// The tile path the engine resolves for scalar type `T` under the
/// current `ATA_MICRO` setting and detected ISA.
///
/// A forced `intrinsic` (and plain `Auto`) degrades gracefully to
/// `Portable` when [`crate::simd`] has no kernels for `T` on this CPU —
/// notably `Tracked` and the exact fields never reach intrinsics, which
/// is what keeps their op-count contract independent of the host ISA.
pub fn micro_path_for<T: Scalar>() -> MicroPath {
    match micro_mode() {
        MicroMode::Force(MicroPath::Scalar) => MicroPath::Scalar,
        MicroMode::Force(MicroPath::Portable) => MicroPath::Portable,
        MicroMode::Force(MicroPath::Intrinsic) | MicroMode::Auto | MicroMode::Off => {
            if crate::simd::has_kernels::<T>() {
                MicroPath::Intrinsic
            } else {
                MicroPath::Portable
            }
        }
    }
}

/// The implementation [`crate::gemm::gemm_tn`] / [`crate::syrk::syrk_ln`]
/// will run for an `(m, n, k)` product of scalar type `T` (for `syrk`,
/// `k == n`).
///
/// The volume cutoff is the *per-scalar, per-path* calibrated
/// [`crate::calibrate::Tuned::micro_min_volume`], not the global
/// [`MICRO_MIN_VOLUME`] floor — f32's portable engine, for instance,
/// loses to the blocked loops up to much larger sizes than f64's and
/// gets a correspondingly higher cutoff.
pub fn selected_path<T: Scalar>(m: usize, n: usize, k: usize) -> KernelPath {
    let volume = m.saturating_mul(n).saturating_mul(k);
    if micro_disabled() || volume < crate::calibrate::tuned_for::<T>().micro_min_volume {
        KernelPath::Blocked
    } else {
        KernelPath::Micro
    }
}

// ---------------------------------------------------------------------
// Microkernels.
// ---------------------------------------------------------------------

/// The full-tile microkernel: `MR x NR` accumulators seeded from `C`,
/// one `mul_add` per `(i, j, p)`, written back once.
///
/// Deliberately *not* inlined: each instantiation must stay a
/// standalone function so LLVM vectorizes its accumulator loops in
/// isolation. Inlining all menu instantiations into the tile sweep
/// (the pre-dispatch layout) blows the optimizer's budget once the
/// menu grows past a handful of tiles and costs the portable path ~4x.
#[inline(never)]
fn kernel<T: Scalar, const MR: usize, const NR: usize>(
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut MatMut<'_, T>,
) {
    debug_assert_eq!(c.shape(), (MR, NR));
    let mut acc = [[T::ZERO; NR]; MR];
    for (i, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c.row(i)[..NR]);
    }
    let ap = &ap[..kc * MR];
    let bp = &bp[..kc * NR];
    for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        for (ai, row) in av.iter().zip(acc.iter_mut()) {
            for (bj, acc_ij) in bv.iter().zip(row.iter_mut()) {
                *acc_ij = ai.mul_add(*bj, *acc_ij);
            }
        }
    }
    for (i, row) in acc.iter().enumerate() {
        c.row_mut(i)[..NR].copy_from_slice(row);
    }
}

/// Dispatch a full `mr x nr` tile along the resolved [`MicroPath`].
///
/// `Intrinsic` tries the fused SIMD kernel first and falls through to
/// the portable instantiation when none takes the tile (unsupported
/// scalar/ISA or off-menu shape) — the graceful, bit-identical
/// fallback. `Scalar` runs the bounds-aware kernel even on full tiles,
/// which is bit-identical to `Portable` (same per-element accumulation
/// order) and serves as the ablation baseline.
#[inline]
fn full_tile<T: Scalar>(
    path: MicroPath,
    mr: usize,
    nr: usize,
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut MatMut<'_, T>,
) {
    match path {
        MicroPath::Intrinsic => {
            if crate::simd::full_tile(mr, nr, kc, ap, bp, c) {
                return;
            }
        }
        MicroPath::Scalar => {
            edge_tile(kc, mr, nr, mr, nr, ap, bp, c, None);
            return;
        }
        MicroPath::Portable => {}
    }
    match (mr, nr) {
        (4, 4) => kernel::<T, 4, 4>(kc, ap, bp, c),
        (4, 8) => kernel::<T, 4, 8>(kc, ap, bp, c),
        (4, 16) => kernel::<T, 4, 16>(kc, ap, bp, c),
        (6, 8) => kernel::<T, 6, 8>(kc, ap, bp, c),
        (6, 16) => kernel::<T, 6, 16>(kc, ap, bp, c),
        (8, 4) => kernel::<T, 8, 4>(kc, ap, bp, c),
        (8, 6) => kernel::<T, 8, 6>(kc, ap, bp, c),
        (8, 8) => kernel::<T, 8, 8>(kc, ap, bp, c),
        (8, 16) => kernel::<T, 8, 16>(kc, ap, bp, c),
        (12, 4) => kernel::<T, 12, 4>(kc, ap, bp, c),
        (4, 12) => kernel::<T, 4, 12>(kc, ap, bp, c),
        (6, 4) => kernel::<T, 6, 4>(kc, ap, bp, c),
        _ => edge_tile(kc, mr, nr, mr, nr, ap, bp, c, None),
    }
}

/// Full-size tile straddling the diagonal of a syrk block, on the
/// intrinsic path: run the fused kernel on the whole tile into a zeroed
/// scratch, then accumulate only the lower-triangle entries into `C`.
///
/// This keeps the expensive straddle band — a constant fraction of every
/// diagonal block — at fused speed instead of scalar speed, at the cost
/// of one extra add per stored element. Only the intrinsic path takes
/// it: the portable/scalar paths keep the exact-op [`edge_tile`], so
/// `Tracked` counts and portable bitwise behavior are unchanged. `false`
/// means no fused kernel took the tile and the caller must fall back.
#[allow(clippy::too_many_arguments)]
fn straddle_tile_intrinsic<T: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut MatMut<'_, T>,
    ir: usize,
    jr: usize,
) -> bool {
    const MAX_TILE: usize = 256;
    if mr * nr > MAX_TILE {
        return false;
    }
    let mut scratch = [T::ZERO; MAX_TILE];
    let mut sv = MatMut::from_slice(&mut scratch[..mr * nr], mr, nr);
    if !crate::simd::full_tile(mr, nr, kc, ap, bp, &mut sv) {
        return false;
    }
    for ii in 0..mr {
        let jj_max = (ir + ii + 1).saturating_sub(jr).min(nr);
        let srow = &scratch[ii * nr..ii * nr + nr];
        let crow = c.row_mut(ii);
        for (cv, sv) in crow.iter_mut().zip(srow).take(jj_max) {
            *cv += *sv;
        }
    }
    true
}

/// Bounds-aware tile for ragged edges and diagonal straddles.
///
/// Computes `c[ii, jj] (+)= sum_p ap[p, ii] * bp[p, jj]` for
/// `ii < mr_eff`, `jj < jj_max(ii)` where the column cap enforces the
/// lower-triangle constraint when `diag = Some((ir, jr))` (tile placed at
/// rows `ir..`, cols `jr..` of a diagonal block: only `ir + ii >= jr + jj`
/// entries are touched). Performs exactly one multiply and one add per
/// computed `(ii, jj, p)` triple — no padding arithmetic.
#[allow(clippy::too_many_arguments)]
fn edge_tile<T: Scalar>(
    kc: usize,
    mr: usize,
    nr: usize,
    mr_eff: usize,
    nr_eff: usize,
    ap: &[T],
    bp: &[T],
    c: &mut MatMut<'_, T>,
    diag: Option<(usize, usize)>,
) {
    debug_assert_eq!(c.shape(), (mr_eff, nr_eff));
    for ii in 0..mr_eff {
        let jj_max = match diag {
            None => nr_eff,
            Some((ir, jr)) => (ir + ii + 1).saturating_sub(jr).min(nr_eff),
        };
        let crow = c.row_mut(ii);
        for (jj, cv) in crow.iter_mut().enumerate().take(jj_max) {
            let mut acc = *cv;
            for p in 0..kc {
                acc = ap[p * mr + ii].mul_add(bp[p * nr + jj], acc);
            }
            *cv = acc;
        }
    }
}

// ---------------------------------------------------------------------
// Loop nests.
// ---------------------------------------------------------------------

/// Sweep the packed `(apack, bpack)` block over the `C` block at
/// `(row0, col0)` of extent `mc_eff x nc_eff`.
#[allow(clippy::too_many_arguments)]
fn sweep_tiles<T: Scalar>(
    path: MicroPath,
    cfg: &KernelConfig,
    kc_eff: usize,
    mc_eff: usize,
    nc_eff: usize,
    apack: &[T],
    bpack: &[T],
    c: &mut MatMut<'_, T>,
    row0: usize,
    col0: usize,
) {
    let (mr, nr) = (cfg.mr, cfg.nr);
    let mut jr = 0;
    while jr < nc_eff {
        let nr_eff = nr.min(nc_eff - jr);
        let bp = &bpack[(jr / nr) * kc_eff * nr..][..kc_eff * nr];
        let mut ir = 0;
        while ir < mc_eff {
            let mr_eff = mr.min(mc_eff - ir);
            let ap = &apack[(ir / mr) * kc_eff * mr..][..kc_eff * mr];
            let mut ctile =
                c.block_mut(row0 + ir, row0 + ir + mr_eff, col0 + jr, col0 + jr + nr_eff);
            if mr_eff == mr && nr_eff == nr {
                full_tile(path, mr, nr, kc_eff, ap, bp, &mut ctile);
            } else {
                edge_tile(kc_eff, mr, nr, mr_eff, nr_eff, ap, bp, &mut ctile, None);
            }
            ir += mr;
        }
        jr += nr;
    }
}

/// `C += alpha * A^T B` through the packed engine on an explicit tile
/// path, with caller-provided packing buffers.
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tn_micro_path_with<T: Scalar>(
    path: MicroPath,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
    bufs: &mut PackBufs<T>,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "gemm_tn: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "gemm_tn: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let scale = PackScale::from_alpha(alpha);
    let a_elems = packed_elems(cfg.kc.min(m), cfg.mc.min(n), cfg.mr);
    let b_elems = packed_elems(cfg.kc.min(m), cfg.nc.min(k), cfg.nr);
    let (apack, bpack) = bufs.split(a_elems, b_elems);

    let mut jc = 0;
    while jc < k {
        let jn = (jc + cfg.nc).min(k);
        let mut pc = 0;
        while pc < m {
            let pe = (pc + cfg.kc).min(m);
            let kc_eff = pe - pc;
            pack_panels_par(b.block(pc, pe, jc, jn), cfg.nr, scale, bpack);
            let mut ic = 0;
            while ic < n {
                let im = (ic + cfg.mc).min(n);
                pack_panels(a.block(pc, pe, ic, im), cfg.mr, PackScale::One, apack);
                sweep_tiles(path, cfg, kc_eff, im - ic, jn - jc, apack, bpack, c, ic, jc);
                ic = im;
            }
            pc = pe;
        }
        jc = jn;
    }
}

/// `C += alpha * A^T B` through the packed engine, with caller-provided
/// packing buffers, on the tile path resolved by [`micro_path_for`].
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm_tn_micro_with<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
    bufs: &mut PackBufs<T>,
) {
    gemm_tn_micro_path_with(micro_path_for::<T>(), alpha, a, b, c, cfg, bufs);
}

/// [`gemm_tn_micro_path_with`] using this thread's cached packing
/// buffers.
pub fn gemm_tn_micro_path<T: Scalar>(
    path: MicroPath,
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
) {
    with_thread_bufs(|bufs| gemm_tn_micro_path_with(path, alpha, a, b, c, cfg, bufs));
}

/// [`gemm_tn_micro_with`] using this thread's cached packing buffers.
pub fn gemm_tn_micro<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
) {
    with_thread_bufs(|bufs| gemm_tn_micro_with(alpha, a, b, c, cfg, bufs));
}

/// Lower-triangular `C += alpha * A^T A` through the packed engine on an
/// explicit tile path, with caller-provided packing buffers.
///
/// Strictly-lower rectangular blocks reuse the gemm loop nest; diagonal
/// blocks run micro-tiles below the diagonal at full speed and straddling
/// tiles through the bounds-aware kernel, so only `i >= j` entries are
/// read or written and the flop count stays the exact triangle count.
///
/// Shapes: `A: m x n`, `C: n x n`.
///
/// # Panics
/// On inconsistent shapes.
pub fn syrk_ln_micro_path_with<T: Scalar>(
    path: MicroPath,
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
    bufs: &mut PackBufs<T>,
) {
    let (m, n) = a.shape();
    assert_eq!(
        c.shape(),
        (n, n),
        "syrk_ln: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 {
        return;
    }
    let scale = PackScale::from_alpha(alpha);
    let (mr, nr) = (cfg.mr, cfg.nr);

    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + cfg.mc).min(n);
        // Strictly-lower rectangle of this block row:
        // C[i0..i1, 0..i0] += alpha * A[:, i0..i1]^T A[:, 0..i0].
        if i0 > 0 {
            let a_i = a.block(0, m, i0, i1);
            let a_j = a.block(0, m, 0, i0);
            let mut c_blk = c.block_mut(i0, i1, 0, i0);
            gemm_tn_micro_path_with(path, alpha, a_i, a_j, &mut c_blk, cfg, bufs);
        }
        // Diagonal block C[i0..i1, i0..i1], lower part only. Both packed
        // operands come from the same A columns; micro-tiles entirely
        // below the diagonal take the fast kernel.
        let t = i1 - i0;
        let a_elems = packed_elems(cfg.kc.min(m), t, mr);
        let b_elems = packed_elems(cfg.kc.min(m), t, nr);
        let mut pc = 0;
        while pc < m {
            let pe = (pc + cfg.kc).min(m);
            let kc_eff = pe - pc;
            let atile = a.block(pc, pe, i0, i1);
            let (apack, bpack) = bufs.split(a_elems, b_elems);
            pack_panels(atile, mr, PackScale::One, apack);
            pack_panels(atile, nr, scale, bpack);
            let mut jr = 0;
            while jr < t {
                let nr_eff = nr.min(t - jr);
                let bp = &bpack[(jr / nr) * kc_eff * nr..][..kc_eff * nr];
                // First micro-row containing any i >= j entry.
                let mut ir = (jr / mr) * mr;
                while ir < t {
                    let mr_eff = mr.min(t - ir);
                    let ap = &apack[(ir / mr) * kc_eff * mr..][..kc_eff * mr];
                    let mut ctile =
                        c.block_mut(i0 + ir, i0 + ir + mr_eff, i0 + jr, i0 + jr + nr_eff);
                    if mr_eff == mr && nr_eff == nr && ir >= jr + nr - 1 {
                        full_tile(path, mr, nr, kc_eff, ap, bp, &mut ctile);
                    } else if mr_eff == mr
                        && nr_eff == nr
                        && path == MicroPath::Intrinsic
                        && straddle_tile_intrinsic(mr, nr, kc_eff, ap, bp, &mut ctile, ir, jr)
                    {
                        // Fused straddle tile handled above.
                    } else {
                        edge_tile(
                            kc_eff,
                            mr,
                            nr,
                            mr_eff,
                            nr_eff,
                            ap,
                            bp,
                            &mut ctile,
                            Some((ir, jr)),
                        );
                    }
                    ir += mr;
                }
                jr += nr;
            }
            pc = pe;
        }
        i0 = i1;
    }
}

/// Lower-triangular `C += alpha * A^T A` with caller-provided packing
/// buffers, on the tile path resolved by [`micro_path_for`].
///
/// # Panics
/// On inconsistent shapes.
pub fn syrk_ln_micro_with<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
    bufs: &mut PackBufs<T>,
) {
    syrk_ln_micro_path_with(micro_path_for::<T>(), alpha, a, c, cfg, bufs);
}

/// [`syrk_ln_micro_path_with`] using this thread's cached packing
/// buffers.
pub fn syrk_ln_micro_path<T: Scalar>(
    path: MicroPath,
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
) {
    with_thread_bufs(|bufs| syrk_ln_micro_path_with(path, alpha, a, c, cfg, bufs));
}

/// [`syrk_ln_micro_with`] using this thread's cached packing buffers.
pub fn syrk_ln_micro<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    cfg: &KernelConfig,
) {
    with_thread_bufs(|bufs| syrk_ln_micro_with(alpha, a, c, cfg, bufs));
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::tracked::{measure, Tracked};
    use ata_mat::{gen, reference, Matrix};

    fn cfg_small() -> KernelConfig {
        // Deliberately tiny blocking so unit-test shapes span many
        // blocks and tiles.
        KernelConfig::new(4, 4, 8, 12, 16)
    }

    fn check_gemm(m: usize, n: usize, k: usize, alpha: f64, cfg: &KernelConfig) {
        let a = gen::standard::<f64>(10_000 + m as u64, m, n);
        let b = gen::standard::<f64>(20_000 + k as u64, m, k);
        let mut c_fast = gen::standard::<f64>(5, n, k);
        let mut c_ref = c_fast.clone();
        gemm_tn_micro(alpha, a.as_ref(), b.as_ref(), &mut c_fast.as_mut(), cfg);
        reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        let tol = ata_mat::ops::product_tol::<f64>(m.max(n), k, m as f64);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff <= tol,
            "({m},{n},{k}) micro gemm differs from oracle by {diff} > {tol}"
        );
    }

    #[test]
    fn matches_oracle_on_assorted_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (2, 3, 4),
            (7, 5, 3),
            (16, 16, 16),
            (33, 31, 29),
            (64, 1, 64),
            (1, 64, 64),
            (100, 37, 65),
        ] {
            check_gemm(m, n, k, 1.0, &cfg_small());
        }
    }

    #[test]
    fn default_config_matches_oracle() {
        let cfg = KernelConfig::for_scalar::<f64>();
        check_gemm(80, 60, 70, 1.0, &cfg);
        check_gemm(300, 40, 50, 1.0, &cfg);
    }

    #[test]
    fn alpha_paths() {
        for alpha in [1.0, -1.0, 2.5, -0.125] {
            check_gemm(21, 17, 19, alpha, &cfg_small());
        }
    }

    #[test]
    fn every_menu_tile_is_correct() {
        for &(mr, nr) in KernelConfig::MENU {
            let cfg = KernelConfig::new(mr, nr, 16, 2 * mr + 1, 2 * nr + 3);
            check_gemm(40, 2 * mr + 5, 2 * nr + 7, 1.0, &cfg);
        }
    }

    #[test]
    fn off_menu_tile_still_correct() {
        // (5, 3) has no unrolled instantiation: the sweep must fall back
        // to the bounds-aware kernel everywhere.
        let cfg = KernelConfig::new(5, 3, 8, 11, 10);
        check_gemm(25, 23, 22, 1.0, &cfg);
    }

    #[test]
    fn syrk_matches_oracle_and_preserves_upper() {
        for &(m, n) in &[(1, 1), (5, 7), (16, 16), (40, 33), (33, 80), (128, 35)] {
            let cfg = cfg_small();
            let a = gen::standard::<f64>(77 + m as u64, m, n);
            let mut c_fast = gen::standard::<f64>(6, n, n);
            let mut c_ref = c_fast.clone();
            syrk_ln_micro(1.0, a.as_ref(), &mut c_fast.as_mut(), &cfg);
            reference::syrk_ln(1.0, a.as_ref(), &mut c_ref.as_mut());
            let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
            let diff = c_fast.max_abs_diff_lower(&c_ref);
            assert!(diff <= tol, "({m},{n}) micro syrk differs by {diff}");
            assert_eq!(
                c_fast.max_abs_diff(&c_ref),
                diff,
                "({m},{n}) strict upper must be untouched"
            );
        }
    }

    #[test]
    fn syrk_alpha_and_menu_tiles() {
        for &(mr, nr) in &[(4, 4), (8, 4), (4, 8), (6, 8)] {
            let cfg = KernelConfig::new(mr, nr, 8, 3 * mr, 3 * nr);
            let a = gen::standard::<f64>(9, 30, 26);
            let mut c_fast = Matrix::zeros(26, 26);
            let mut c_ref = Matrix::zeros(26, 26);
            syrk_ln_micro(-1.5, a.as_ref(), &mut c_fast.as_mut(), &cfg);
            reference::syrk_ln(-1.5, a.as_ref(), &mut c_ref.as_mut());
            assert!(
                c_fast.max_abs_diff_lower(&c_ref) < 1e-10,
                "tile ({mr},{nr})"
            );
        }
    }

    #[test]
    fn gemm_op_counts_match_reference_volume_at_unit_alpha() {
        // Exactly m*n*k muls and adds, like the rank-1 path: the measured
        // flop validations of the paper's claims hold on the fast path.
        for &(m, n, k) in &[(8, 8, 8), (13, 7, 9), (20, 5, 30)] {
            let a = gen::standard::<Tracked>(1, m, n);
            let b = gen::standard::<Tracked>(2, m, k);
            let mut c = Matrix::<Tracked>::zeros(n, k);
            let (_, ops) = measure(|| {
                gemm_tn_micro(
                    Tracked(1.0),
                    a.as_ref(),
                    b.as_ref(),
                    &mut c.as_mut(),
                    &cfg_small(),
                );
            });
            let volume = (m * n * k) as u64;
            assert_eq!(ops.muls, volume, "({m},{n},{k}) muls");
            assert_eq!(ops.adds, volume, "({m},{n},{k}) adds");
            assert_eq!(ops.subs, 0);
        }
    }

    #[test]
    fn syrk_op_counts_are_the_exact_triangle_volume() {
        let (m, n) = (14, 11);
        let a = gen::standard::<Tracked>(3, m, n);
        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, ops) = measure(|| {
            syrk_ln_micro(Tracked(1.0), a.as_ref(), &mut c.as_mut(), &cfg_small());
        });
        let triangle = (m * n * (n + 1) / 2) as u64;
        assert_eq!(ops.muls, triangle);
        assert_eq!(ops.adds, triangle);
    }

    #[test]
    fn negative_unit_alpha_is_multiplication_free() {
        let (m, n, k) = (9, 6, 8);
        let a = gen::standard::<Tracked>(4, m, n);
        let b = gen::standard::<Tracked>(5, m, k);
        let mut c = Matrix::<Tracked>::zeros(n, k);
        let (_, ops) = measure(|| {
            gemm_tn_micro(
                Tracked(-1.0),
                a.as_ref(),
                b.as_ref(),
                &mut c.as_mut(),
                &cfg_small(),
            );
        });
        // The sign folds into the B-pack as negations, not multiplies.
        assert_eq!(ops.muls, (m * n * k) as u64);
        assert_eq!(ops.negs, (m * k) as u64);
    }

    #[test]
    fn works_on_strided_views() {
        let big = gen::standard::<f64>(9, 16, 16);
        let (a11, _, _, a22) = big.as_ref().quad_split();
        let mut c = Matrix::zeros(8, 8);
        gemm_tn_micro(1.0, a11, a22, &mut c.as_mut(), &cfg_small());
        let mut c_ref = Matrix::zeros(8, 8);
        reference::gemm_tn(1.0, a11, a22, &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn f32_path() {
        let cfg = KernelConfig::for_scalar::<f32>();
        let a = gen::standard::<f32>(11, 40, 30);
        let b = gen::standard::<f32>(12, 40, 35);
        let mut c = Matrix::<f32>::zeros(30, 35);
        gemm_tn_micro(2.0f32, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
        let mut c_ref = Matrix::<f32>::zeros(30, 35);
        reference::gemm_tn(2.0f32, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    fn selection_guard_micro_is_default_for_f64() {
        // CI guard: the engine must actually be selected for real
        // problems at the default config — a silent fallback to the
        // rank-1 loops would regress every backend at once. Sizes are
        // above every per-scalar, per-path calibrated cutoff so the
        // guard holds across the ATA_MICRO CI matrix.
        assert_eq!(selected_path::<f64>(256, 128, 128), KernelPath::Micro);
        assert_eq!(selected_path::<f64>(181, 181, 181), KernelPath::Micro);
        assert_eq!(selected_path::<f32>(512, 256, 256), KernelPath::Micro);
        // Tiny products stay on the cheap path by design.
        assert_eq!(selected_path::<f64>(4, 4, 4), KernelPath::Blocked);
    }

    #[test]
    fn dispatch_guard_resolves_the_detected_isa_path() {
        // The resolved tile path must follow ATA_MICRO when forced and
        // the detected ISA otherwise (this test runs under the CI
        // ATA_MICRO matrix, so it checks whichever branch is live).
        let expect_auto = |has: bool| {
            if has {
                MicroPath::Intrinsic
            } else {
                MicroPath::Portable
            }
        };
        match std::env::var("ATA_MICRO").as_deref() {
            Ok("portable") => {
                assert_eq!(micro_path_for::<f64>(), MicroPath::Portable);
                assert_eq!(micro_path_for::<f32>(), MicroPath::Portable);
            }
            Ok("scalar") => {
                assert_eq!(micro_path_for::<f64>(), MicroPath::Scalar);
                assert_eq!(micro_path_for::<f32>(), MicroPath::Scalar);
            }
            _ => {
                // Auto or forced-intrinsic: the detected-ISA kernels must
                // actually be selected where available.
                assert_eq!(
                    micro_path_for::<f64>(),
                    expect_auto(crate::simd::has_kernels::<f64>())
                );
                assert_eq!(
                    micro_path_for::<f32>(),
                    expect_auto(crate::simd::has_kernels::<f32>())
                );
            }
        }
        // Op counting never reaches intrinsics, whatever the host ISA.
        assert_ne!(micro_path_for::<Tracked>(), MicroPath::Intrinsic);
    }

    #[test]
    fn pack_buffer_elems_covers_worst_block() {
        let cfg = KernelConfig::new(8, 4, 16, 20, 24);
        let (ae, be) = cfg.pack_buffer_elems();
        assert_eq!(ae, packed_elems(16, 20, 8));
        assert_eq!(be, packed_elems(16, 24, 4));
    }

    #[test]
    #[should_panic(expected = "gemm_tn")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 2);
        let b = Matrix::<f64>::zeros(4, 2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_tn_micro(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg_small());
    }
}
