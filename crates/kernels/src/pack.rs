//! Operand packing for the BLIS-style microkernel engine.
//!
//! Huang et al. ("Implementing Strassen's Algorithm with BLIS") show that
//! a practical Strassen lives or dies by its leaves: the base-case
//! products must run on a *packed*, register-blocked kernel, not on loops
//! that re-stream the operands from main memory. This module provides the
//! packing half of that engine; [`crate::micro`] provides the register
//! tiles and the `KC/MC/NC` loop nest around them.
//!
//! # Layout
//!
//! The engine computes `C += alpha * A^T B` with `A: m x n`, `B: m x k`,
//! `C: n x k`. In BLIS terms the *M* dimension of the product is `n`
//! (columns of `A` become rows of `C`), the *N* dimension is `k`, and the
//! reduction dimension is `m`. Both packed buffers are laid out so the
//! microkernel reads them with unit stride:
//!
//! ```text
//! apack (one KC x MC block of A, MR-wide micro-panels):
//!   panel u = columns [u*MR, (u+1)*MR) of the block
//!   apack[u*KC*MR + p*MR + i] = A[pc + p, ic + u*MR + i]
//!
//! bpack (one KC x NC block of B, NR-wide micro-panels):
//!   panel v = columns [v*NR, (v+1)*NR) of the block
//!   bpack[v*KC*NR + p*NR + j] = alpha * B[pc + p, jc + v*NR + j]
//! ```
//!
//! A micro-panel interleaves `MR` (resp. `NR`) matrix columns so that one
//! step `p` of the microkernel's reduction loop reads `MR` consecutive
//! `A`-elements and `NR` consecutive `B`-elements. Because this workspace
//! stores matrices row-major and the engine multiplies `A^T` *without
//! materializing the transpose*, each packed row `p` is a contiguous
//! slice of a source row — packing is pure `memcpy`-shaped traffic.
//!
//! Ragged edges are padded with explicit zeros so the microkernel always
//! sees full panels; the loop nest never *computes* with the padding (the
//! edge tiles use a bounds-aware kernel), keeping measured flop counts
//! exact for the op-counting [`Tracked`](ata_mat::tracked::Tracked)
//! scalar.
//!
//! # Buffer reuse
//!
//! Packing must not allocate on the hot path (the same discipline as
//! `ata_strassen::ArenaPool` for recursion arenas). [`PackBufs`] is a
//! pair of grow-only buffers, and [`with_thread_bufs`] hands out a
//! per-thread, per-scalar-type cached instance, so repeated kernel calls
//! — e.g. every Strassen leaf of a plan executed in a serving loop —
//! reuse one warm allocation per worker thread.

use ata_mat::{MatRef, Scalar};
use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::HashMap;

/// How the packing pass scales `B`-panels.
///
/// Folding `alpha` into the `B`-pack keeps the microkernel itself
/// scale-free and multiplication-exact: `±1` never costs a multiply
/// (mirroring [`crate::level1::axpy`]), and a general `alpha` costs
/// exactly one multiply per packed element.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PackScale<T> {
    /// Copy verbatim (`alpha == 1`).
    One,
    /// Negate while packing (`alpha == -1`); negation is free in the
    /// workspace's multiplication accounting.
    NegOne,
    /// Multiply by an arbitrary factor while packing.
    Factor(T),
}

impl<T: Scalar> PackScale<T> {
    /// Classify `alpha` into the cheapest packing scale.
    #[inline]
    pub fn from_alpha(alpha: T) -> Self {
        if alpha == T::ONE {
            PackScale::One
        } else if alpha == T::NEG_ONE {
            PackScale::NegOne
        } else {
            PackScale::Factor(alpha)
        }
    }
}

/// Pack one `KC x W` operand block into `R`-wide micro-panels.
///
/// `src` is the block view (`kc` rows, `w` columns); `buf` must hold at
/// least [`packed_elems`]`(kc, w, r)` elements. Columns beyond `w` in the
/// last panel are zero-filled.
///
/// # Panics
/// If `buf` is too small or `r == 0`.
pub fn pack_panels<T: Scalar>(src: MatRef<'_, T>, r: usize, scale: PackScale<T>, buf: &mut [T]) {
    let (kc, w) = src.shape();
    assert!(r > 0, "panel width must be positive");
    let panels = w.div_ceil(r);
    let need = panels * kc * r;
    assert!(
        buf.len() >= need,
        "pack buffer holds {} elements, block needs {need}",
        buf.len()
    );
    for u in 0..panels {
        let c0 = u * r;
        let width = r.min(w - c0);
        let panel = &mut buf[u * kc * r..(u + 1) * kc * r];
        for p in 0..kc {
            let srow = &src.row(p)[c0..c0 + width];
            let drow = &mut panel[p * r..p * r + r];
            match scale {
                PackScale::One => drow[..width].copy_from_slice(srow),
                PackScale::NegOne => {
                    for (d, s) in drow[..width].iter_mut().zip(srow) {
                        *d = -*s;
                    }
                }
                PackScale::Factor(alpha) => {
                    for (d, s) in drow[..width].iter_mut().zip(srow) {
                        *d = alpha * *s;
                    }
                }
            }
            drow[width..].fill(T::ZERO);
        }
    }
}

/// Packed size in elements of a `kc x w` block in `r`-wide panels.
#[inline]
pub fn packed_elems(kc: usize, w: usize, r: usize) -> usize {
    w.div_ceil(r) * kc * r
}

/// Panel count below which [`pack_panels_par`] always stays serial: the
/// pool round-trip costs more than copying a few panels.
const PAR_PACK_MIN_PANELS: usize = 8;

/// Element count below which [`pack_panels_par`] always stays serial.
const PAR_PACK_MIN_ELEMS: usize = 32_768;

/// [`pack_panels`], fanned out across the rayon worker pool when the
/// block is large enough to pay for the coordination.
///
/// Each worker packs a disjoint run of whole panels (a `pack_panels`
/// call on a column sub-block into a disjoint buffer chunk), so the
/// result — zero padding included — is bitwise identical to the serial
/// pass regardless of scheduling. Small blocks, single-thread pools, and
/// non-`f32`/`f64` scalars stay serial; the latter keeps the op-counting
/// `Tracked` scalar's thread-local counters on the calling thread.
/// Inside a pool worker rayon runs nested iterators inline, so packs
/// issued from already-parallel callers (AtA-S leaves) degrade to the
/// serial pass instead of deadlocking or oversubscribing.
///
/// # Panics
/// If `buf` is too small or `r == 0`.
pub fn pack_panels_par<T: Scalar>(
    src: MatRef<'_, T>,
    r: usize,
    scale: PackScale<T>,
    buf: &mut [T],
) {
    let (kc, w) = src.shape();
    assert!(r > 0, "panel width must be positive");
    let panels = w.div_ceil(r);
    let need = panels * kc * r;
    assert!(
        buf.len() >= need,
        "pack buffer holds {} elements, block needs {need}",
        buf.len()
    );
    let t = TypeId::of::<T>();
    let plain_float = t == TypeId::of::<f64>() || t == TypeId::of::<f32>();
    let threads = rayon::current_num_threads();
    if !plain_float || panels < PAR_PACK_MIN_PANELS || need < PAR_PACK_MIN_ELEMS || threads < 2 {
        pack_panels(src, r, scale, buf);
        return;
    }
    use rayon::prelude::*;
    let per = panels.div_ceil(threads);
    buf[..need]
        .chunks_mut(per * kc * r)
        .collect::<Vec<_>>()
        .into_par_iter()
        .enumerate()
        .for_each(|(ci, chunk)| {
            let c0 = ci * per * r;
            let chunk_panels = chunk.len() / (kc * r);
            let c1 = w.min(c0 + chunk_panels * r);
            pack_panels(src.block(0, kc, c0, c1), r, scale, chunk);
        });
}

/// A reusable pair of packing buffers (`A`-side and `B`-side).
///
/// Buffers only ever grow, so a warm pair serves any sequence of kernel
/// calls without further allocation — the packing counterpart of
/// `ata_strassen::StrassenWorkspace`.
#[derive(Debug, Default)]
pub struct PackBufs<T> {
    a: Vec<T>,
    b: Vec<T>,
}

impl<T: Scalar> PackBufs<T> {
    /// Fresh, empty buffer pair.
    pub fn new() -> Self {
        Self {
            a: Vec::new(),
            b: Vec::new(),
        }
    }

    /// Grow (never shrink) both buffers and return them as disjoint
    /// mutable slices of the requested sizes.
    pub fn split(&mut self, a_elems: usize, b_elems: usize) -> (&mut [T], &mut [T]) {
        if self.a.len() < a_elems {
            self.a.resize(a_elems, T::ZERO);
        }
        if self.b.len() < b_elems {
            self.b.resize(b_elems, T::ZERO);
        }
        (&mut self.a[..a_elems], &mut self.b[..b_elems])
    }

    /// Current capacity in elements (`A`-side + `B`-side) — the warm
    /// footprint of this pair.
    pub fn capacity(&self) -> usize {
        self.a.len() + self.b.len()
    }
}

thread_local! {
    /// Per-thread cache of [`PackBufs`], keyed by scalar type. Entries
    /// are taken out while in use so re-entrant kernel calls fall back
    /// to a fresh (cold) pair instead of aliasing or panicking.
    static THREAD_BUFS: RefCell<HashMap<TypeId, Box<dyn Any>>> = RefCell::new(HashMap::new());
}

/// Run `f` with this thread's cached [`PackBufs`] for `T`.
///
/// The buffers persist across calls on the same thread, so steady-state
/// kernel invocations (every leaf of a reused plan) pack into warm
/// memory. The pair is *moved out* of the cache for the duration of `f`:
/// a nested call on the same thread simply gets a second, transient pair.
pub fn with_thread_bufs<T: Scalar, R>(f: impl FnOnce(&mut PackBufs<T>) -> R) -> R {
    let taken: Option<PackBufs<T>> = THREAD_BUFS.with(|cell| {
        cell.borrow_mut()
            .remove(&TypeId::of::<T>())
            .and_then(|any| any.downcast::<PackBufs<T>>().ok().map(|b| *b))
    });
    let mut bufs = taken.unwrap_or_default();
    let out = f(&mut bufs);
    THREAD_BUFS.with(|cell| {
        cell.borrow_mut()
            .insert(TypeId::of::<T>(), Box::new(bufs) as Box<dyn Any>);
    });
    out
}

/// Pre-grow this thread's cached buffers so the first kernel call after
/// planning allocates nothing (used by `AtaPlan` construction).
pub fn warm_thread<T: Scalar>(a_elems: usize, b_elems: usize) {
    with_thread_bufs::<T, _>(|bufs| {
        let _ = bufs.split(a_elems, b_elems);
    });
}

/// Warm footprint of this thread's cached buffers for `T`, in elements.
pub fn thread_buf_elems<T: Scalar>() -> usize {
    with_thread_bufs::<T, _>(|bufs| bufs.capacity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, Matrix};

    #[test]
    fn packs_panels_with_zero_padding() {
        // 3 x 5 block, panels of width 4: second panel has one live col.
        let src = Matrix::from_fn(3, 5, |i, j| (i * 5 + j) as f64);
        let mut buf = vec![-1.0f64; packed_elems(3, 5, 4)];
        pack_panels(src.as_ref(), 4, PackScale::One, &mut buf);
        // Panel 0, row 1 = A[1, 0..4].
        assert_eq!(&buf[4..8], &[5.0, 6.0, 7.0, 8.0]);
        // Panel 1, row 2 = A[2, 4], padded with three zeros.
        assert_eq!(&buf[12 + 2 * 4..12 + 3 * 4], &[14.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn scaling_variants() {
        let src = Matrix::from_fn(2, 2, |i, j| (1 + i * 2 + j) as f64);
        let mut one = vec![0.0; 4];
        let mut neg = vec![0.0; 4];
        let mut fac = vec![0.0; 4];
        pack_panels(src.as_ref(), 2, PackScale::One, &mut one);
        pack_panels(src.as_ref(), 2, PackScale::NegOne, &mut neg);
        pack_panels(src.as_ref(), 2, PackScale::Factor(0.5), &mut fac);
        assert_eq!(one, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(neg, vec![-1.0, -2.0, -3.0, -4.0]);
        assert_eq!(fac, vec![0.5, 1.0, 1.5, 2.0]);
    }

    #[test]
    fn packs_strided_views() {
        let big = gen::standard::<f64>(3, 8, 8);
        let (_, _, _, a22) = big.as_ref().quad_split();
        let mut buf = vec![0.0; packed_elems(4, 4, 4)];
        pack_panels(a22, 4, PackScale::One, &mut buf);
        for p in 0..4 {
            assert_eq!(&buf[p * 4..(p + 1) * 4], a22.row(p));
        }
    }

    #[test]
    fn bufs_grow_monotonically_and_split_disjoint() {
        let mut bufs = PackBufs::<f64>::new();
        {
            let (a, b) = bufs.split(8, 16);
            a.fill(1.0);
            b.fill(2.0);
        }
        assert_eq!(bufs.capacity(), 24);
        let (a, b) = bufs.split(4, 4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_eq!(bufs.capacity(), 24, "split never shrinks");
    }

    #[test]
    fn thread_bufs_persist_across_calls() {
        warm_thread::<f64>(100, 50);
        assert!(thread_buf_elems::<f64>() >= 150);
        // A second call sees the same warm pair: no further growth for a
        // smaller request.
        with_thread_bufs::<f64, _>(|bufs| {
            let before = bufs.capacity();
            let _ = bufs.split(10, 10);
            assert_eq!(bufs.capacity(), before);
        });
    }

    #[test]
    fn nested_with_thread_bufs_is_safe() {
        with_thread_bufs::<f64, _>(|outer| {
            let _ = outer.split(8, 8);
            // The outer pair is checked out; the inner call gets a
            // transient fresh pair rather than panicking.
            with_thread_bufs::<f64, _>(|inner| {
                let (a, _) = inner.split(4, 4);
                a.fill(7.0);
            });
        });
    }

    #[test]
    fn parallel_pack_is_bitwise_identical_to_serial() {
        // Big enough to clear both serial-fallback thresholds.
        let (kc, w, r) = (64, 1021, 8);
        let src = gen::standard::<f64>(42, kc, w);
        let mut serial = vec![-1.0f64; packed_elems(kc, w, r)];
        pack_panels(src.as_ref(), r, PackScale::NegOne, &mut serial);
        let pool = crate::par::pool_with_threads(4);
        for _ in 0..8 {
            let mut par = vec![-2.0f64; packed_elems(kc, w, r)];
            pool.install(|| {
                pack_panels_par(src.as_ref(), r, PackScale::NegOne, &mut par);
            });
            assert_eq!(serial, par, "scheduling must not change a single bit");
        }
    }

    #[test]
    fn parallel_pack_of_tracked_counts_on_the_calling_thread() {
        use ata_mat::tracked::{measure, Tracked};
        let (kc, w, r) = (64, 512, 8);
        let src = gen::standard::<Tracked>(7, kc, w);
        let mut buf = vec![Tracked(0.0); packed_elems(kc, w, r)];
        let pool = crate::par::pool_with_threads(4);
        let (_, ops) = measure(|| {
            pool.install(|| {
                pack_panels_par(src.as_ref(), r, PackScale::NegOne, &mut buf);
            });
        });
        assert_eq!(
            ops.negs,
            (kc * w) as u64,
            "Tracked packs serially so no ops scatter onto pool threads"
        );
    }

    #[test]
    #[should_panic(expected = "pack buffer")]
    fn undersized_buffer_rejected() {
        let src = Matrix::<f64>::zeros(4, 4);
        let mut buf = vec![0.0; 8];
        pack_panels(src.as_ref(), 4, PackScale::One, &mut buf);
    }
}
