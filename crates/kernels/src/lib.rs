//! BLAS-substitute kernels for the `ata` workspace.
//!
//! The paper builds on Intel MKL: `?gemm` for general products, `?syrk`
//! for the `A^T A` base case, `?axpy` for block sums (§3.1). MKL is not
//! available to a pure-Rust reproduction, so this crate provides the same
//! contracts with cache-blocked, autovectorizer-friendly implementations:
//!
//! * [`level1`] — `axpy`, `scal`, `dot`, `nrm2` on slices;
//! * [`gemm`] — `C += alpha * A^T B` without materializing `A^T`
//!   (the `?gemm('T','N')` case used everywhere in the paper);
//! * [`syrk`] — lower-triangular `C += alpha * A^T A`
//!   (the `?syrk('L','T')` case);
//! * [`pack`] / [`micro`] — the BLIS-style packed, register-blocked
//!   engine both of the above dispatch to (Huang et al.'s prescription
//!   for making Strassen leaves competitive), with the pre-engine loops
//!   retained as the ablation fallback;
//! * [`calibrate`] — the measured per-scalar blocking table and
//!   base-case cutoff model behind the engine's defaults;
//! * [`par`] — rayon-parallel versions standing in for multi-threaded MKL
//!   in the Figure 5/6 comparisons;
//! * [`simd`] — explicit AVX2/FMA register kernels behind one-time
//!   runtime CPU-feature detection, with the portable kernels as the
//!   bit-identical fallback on machines without them.
//!
//! Absolute GFLOPs are below MKL's hand-tuned assembly, but every
//! algorithm in the workspace — AtA and all baselines — calls these same
//! kernels, so the *relative* comparisons the paper makes are preserved.
//!
//! [`CacheConfig`] centralizes the "fits in cache" predicate that decides
//! the recursion base cases of Algorithms 1 and 2.

// Unsafe is confined to `simd` (pointer-based intrinsics behind runtime
// feature detection); everything else stays safe and `ata-lint`'s
// safety-comment + allowlist gates keep it that way.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod calibrate;
pub mod gemm;
pub mod level1;
pub mod micro;
pub mod pack;
pub mod par;
pub mod simd;
pub mod syrk;

pub use gemm::gemm_tn;
pub use micro::{KernelConfig, KernelPath, MicroPath};
pub use syrk::{syrk_ln, syrk_ln_beta};

/// Cache-size model driving the base-case tests of the recursive
/// algorithms (Algorithm 1 line 2; Algorithm 2 line 2).
///
/// The paper stops recursing "when the number of entries of the
/// sub-matrix fits in the cache". `words` is that capacity measured in
/// matrix elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of elements assumed to fit in the last-level private cache.
    pub words: usize,
}

impl Default for CacheConfig {
    /// The measured `f64` base-case crossover from the calibration table
    /// (see [`calibrate::tuned_for`]) — recursion stops where one more
    /// Strassen level stops paying for its block sums on this machine.
    /// Override per run with `ATA_KERNEL_PARAMS="words=..."`.
    fn default() -> Self {
        Self::for_scalar::<f64>()
    }
}

impl CacheConfig {
    /// Config with an explicit element budget.
    pub fn with_words(words: usize) -> Self {
        assert!(words >= 1, "cache budget must be positive");
        Self { words }
    }

    /// The measured base-case budget for scalar type `T` from the
    /// calibration table (plus any environment override).
    pub fn for_scalar<T: ata_mat::Scalar>() -> Self {
        Self::with_words(calibrate::tuned_for::<T>().base_words)
    }

    /// Base-case predicate of AtA (Algorithm 1): the `m x n` input block
    /// fits in cache.
    #[inline]
    pub fn ata_base(&self, m: usize, n: usize) -> bool {
        m.saturating_mul(n) <= self.words
    }

    /// Base-case predicate of the general `A^T B` recursion (Algorithm 2):
    /// both operands fit together.
    #[inline]
    pub fn gemm_base(&self, m: usize, n: usize, k: usize) -> bool {
        m.saturating_mul(n).saturating_add(m.saturating_mul(k)) <= self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_the_calibrated_f64_cutoff() {
        let c = CacheConfig::default();
        let words = calibrate::tuned_for::<f64>().base_words;
        assert_eq!(c.words, words);
        // The ata_base boundary sits exactly at sqrt(words).
        let s = (words as f64).sqrt() as usize;
        assert!(c.ata_base(s, words / s.max(1)));
        assert!(!c.ata_base(s + 1, words / s.max(1) + 1));
    }

    #[test]
    fn gemm_base_counts_both_operands() {
        let c = CacheConfig::with_words(100);
        assert!(c.gemm_base(5, 10, 10)); // 50 + 50
        assert!(!c.gemm_base(5, 10, 11)); // 50 + 55
    }

    #[test]
    fn saturating_dimensions_do_not_overflow() {
        let c = CacheConfig::default();
        assert!(!c.ata_base(usize::MAX, 2));
        assert!(!c.gemm_base(usize::MAX, 2, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = CacheConfig::with_words(0);
    }
}
