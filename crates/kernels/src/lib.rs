//! BLAS-substitute kernels for the `ata` workspace.
//!
//! The paper builds on Intel MKL: `?gemm` for general products, `?syrk`
//! for the `A^T A` base case, `?axpy` for block sums (§3.1). MKL is not
//! available to a pure-Rust reproduction, so this crate provides the same
//! contracts with cache-blocked, autovectorizer-friendly implementations:
//!
//! * [`level1`] — `axpy`, `scal`, `dot`, `nrm2` on slices;
//! * [`gemm`] — `C += alpha * A^T B` without materializing `A^T`
//!   (the `?gemm('T','N')` case used everywhere in the paper);
//! * [`syrk`] — lower-triangular `C += alpha * A^T A`
//!   (the `?syrk('L','T')` case);
//! * [`par`] — rayon-parallel versions standing in for multi-threaded MKL
//!   in the Figure 5/6 comparisons.
//!
//! Absolute GFLOPs are below MKL's hand-tuned assembly, but every
//! algorithm in the workspace — AtA and all baselines — calls these same
//! kernels, so the *relative* comparisons the paper makes are preserved.
//!
//! [`CacheConfig`] centralizes the "fits in cache" predicate that decides
//! the recursion base cases of Algorithms 1 and 2.

pub mod gemm;
pub mod level1;
pub mod par;
pub mod syrk;

pub use gemm::gemm_tn;
pub use syrk::syrk_ln;

/// Cache-size model driving the base-case tests of the recursive
/// algorithms (Algorithm 1 line 2; Algorithm 2 line 2).
///
/// The paper stops recursing "when the number of entries of the
/// sub-matrix fits in the cache". `words` is that capacity measured in
/// matrix elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of elements assumed to fit in the last-level private cache.
    pub words: usize,
}

impl Default for CacheConfig {
    /// 32768 elements = 256 KiB of `f64` — matches the L2 slice of the
    /// paper's Xeon E5-2630v3 per-core budget.
    fn default() -> Self {
        Self { words: 32_768 }
    }
}

impl CacheConfig {
    /// Config with an explicit element budget.
    pub fn with_words(words: usize) -> Self {
        assert!(words >= 1, "cache budget must be positive");
        Self { words }
    }

    /// Base-case predicate of AtA (Algorithm 1): the `m x n` input block
    /// fits in cache.
    #[inline]
    pub fn ata_base(&self, m: usize, n: usize) -> bool {
        m.saturating_mul(n) <= self.words
    }

    /// Base-case predicate of the general `A^T B` recursion (Algorithm 2):
    /// both operands fit together.
    #[inline]
    pub fn gemm_base(&self, m: usize, n: usize, k: usize) -> bool {
        m.saturating_mul(n).saturating_add(m.saturating_mul(k)) <= self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_sane() {
        let c = CacheConfig::default();
        assert!(c.ata_base(181, 181));
        assert!(!c.ata_base(182, 182));
    }

    #[test]
    fn gemm_base_counts_both_operands() {
        let c = CacheConfig::with_words(100);
        assert!(c.gemm_base(5, 10, 10)); // 50 + 50
        assert!(!c.gemm_base(5, 10, 11)); // 50 + 55
    }

    #[test]
    fn saturating_dimensions_do_not_overflow() {
        let c = CacheConfig::default();
        assert!(!c.ata_base(usize::MAX, 2));
        assert!(!c.gemm_base(usize::MAX, 2, 2));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = CacheConfig::with_words(0);
    }
}
