//! Runtime-dispatched explicit-SIMD microkernels.
//!
//! The portable engine in [`crate::micro`] leans on the autovectorizer
//! over const-generic accumulator arrays — robust, but it plateaus well
//! below the machine's fused-multiply-add peak because the
//! [`ata_mat::Scalar::mul_add`] contract is deliberately unfused. This
//! module adds hand-written [`core::arch`] kernels behind one-time CPU
//! feature detection:
//!
//! | detection ([`detected`])     | kernels (`x86` module, x86-64 only) | tiles                    |
//! |------------------------------|------------------------------------|---------------------------|
//! | `avx2` + `fma` → [`Isa::Fma`]| 256-bit fused `vfmadd` f64/f32     | [`FMA_MENU_F64`] / [`FMA_MENU_F32`] |
//! | otherwise → [`Isa::Generic`] | none — portable kernels only       | [`crate::micro::KernelConfig::MENU`] |
//!
//! Dispatch is structural, not trusted: the crate-internal `full_tile`
//! entry point returns `false`
//! whenever no intrinsic kernel takes the tile — wrong scalar type
//! (`Tracked` and the exact fields never reach intrinsics, preserving
//! their op-count contract), unsupported ISA, off-menu tile, or operand
//! bounds that fail the preconditions — and the engine then runs the
//! portable kernel on the very same packed panels. A host without FMA
//! therefore falls back *bit-identically* to the portable path: the
//! fallback is not an approximation of it, it *is* it.
//!
//! Rounding: the fused kernels contract each `a * b + acc` step to one
//! rounding, so intrinsic results differ from the portable/scalar paths
//! within the usual product tolerance (never more); portable and scalar
//! agree bit-for-bit with each other. `crates/kernels/tests/simd_paths.rs`
//! property-tests all three pairings.

use ata_mat::{MatMut, Scalar};
use std::any::TypeId;
use std::sync::OnceLock;

#[cfg(target_arch = "x86_64")]
mod x86;

/// Instruction-set tier of the running CPU, as far as this module has
/// kernels for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// AVX2 + FMA detected: 256-bit fused kernels for `f64` and `f32`.
    Fma,
    /// No supported vector extension (or not x86-64): every tile runs
    /// the portable const-generic kernels.
    Generic,
}

impl Isa {
    /// Stable lowercase name (used by bench records, `ata calibrate`,
    /// and the README dispatch table).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Fma => "fma",
            Isa::Generic => "generic",
        }
    }
}

/// The running CPU's ISA tier, detected once per process and cached.
pub fn detected() -> Isa {
    static ISA: OnceLock<Isa> = OnceLock::new();
    *ISA.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Isa::Fma;
            }
        }
        Isa::Generic
    })
}

/// Register tiles with a dedicated fused f64 kernel under [`Isa::Fma`]
/// (4 lanes per vector, so `nr` is a multiple of 4). Ordered with the
/// expected winner first: `6 x 8` fills 15 of AVX2's 16 vector
/// registers (12 accumulators + 2 `B` vectors + 1 broadcast).
pub const FMA_MENU_F64: &[(usize, usize)] = &[(6, 8), (4, 8), (8, 4), (8, 8), (4, 4), (6, 4)];

/// f32 twin of [`FMA_MENU_F64`] (8 lanes per vector, `nr` a multiple
/// of 8); `6 x 16` is the 15-register tile here.
pub const FMA_MENU_F32: &[(usize, usize)] = &[(6, 16), (4, 16), (8, 8), (8, 16), (4, 8), (6, 8)];

/// The intrinsic tile menu for `T` under the detected ISA, or `None`
/// when no fused kernels exist for this scalar type on this CPU (the
/// calibration sweep then stays on the portable menu).
pub fn fma_menu<T: Scalar>() -> Option<&'static [(usize, usize)]> {
    if detected() != Isa::Fma {
        return None;
    }
    let t = TypeId::of::<T>();
    if t == TypeId::of::<f64>() {
        Some(FMA_MENU_F64)
    } else if t == TypeId::of::<f32>() {
        Some(FMA_MENU_F32)
    } else {
        None
    }
}

/// True when the detected ISA has fused kernels for `T` — the predicate
/// behind [`crate::micro::micro_path_for`]'s auto resolution.
pub fn has_kernels<T: Scalar>() -> bool {
    fma_menu::<T>().is_some()
}

/// Try to run one full `mr x nr` tile of `C += Ap^T Bp` through an
/// intrinsic kernel. Returns `false` when no kernel takes the tile —
/// the caller must then fall through to the portable kernel on the same
/// packed operands (the graceful, bit-identical fallback).
#[cfg(target_arch = "x86_64")]
pub(crate) fn full_tile<T: Scalar>(
    mr: usize,
    nr: usize,
    kc: usize,
    ap: &[T],
    bp: &[T],
    c: &mut MatMut<'_, T>,
) -> bool {
    if detected() != Isa::Fma {
        return false;
    }
    let t = TypeId::of::<T>();
    if t == TypeId::of::<f64>() {
        // SAFETY: `T` is exactly `f64` (TypeId equality above), so these
        // pointer casts only rename the element type — length metadata,
        // layout, lifetimes, and aliasing are untouched.
        let (ap, bp, c) = unsafe {
            (
                &*(ap as *const [T] as *const [f64]),
                &*(bp as *const [T] as *const [f64]),
                &mut *(c as *mut MatMut<'_, T> as *mut MatMut<'_, f64>),
            )
        };
        return x86::tile_f64(mr, nr, kc, ap, bp, c);
    }
    if t == TypeId::of::<f32>() {
        // SAFETY: `T` is exactly `f32` (TypeId equality above); same
        // type-renaming-only argument as the f64 arm.
        let (ap, bp, c) = unsafe {
            (
                &*(ap as *const [T] as *const [f32]),
                &*(bp as *const [T] as *const [f32]),
                &mut *(c as *mut MatMut<'_, T> as *mut MatMut<'_, f32>),
            )
        };
        return x86::tile_f32(mr, nr, kc, ap, bp, c);
    }
    false
}

/// Non-x86-64 stub: no intrinsic kernels, every tile stays portable.
#[cfg(not(target_arch = "x86_64"))]
pub(crate) fn full_tile<T: Scalar>(
    _mr: usize,
    _nr: usize,
    _kc: usize,
    _ap: &[T],
    _bp: &[T],
    _c: &mut MatMut<'_, T>,
) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::tracked::Tracked;
    use ata_mat::Matrix;

    #[test]
    fn detection_is_cached_and_consistent() {
        assert_eq!(detected(), detected());
        assert_eq!(has_kernels::<f64>(), detected() == Isa::Fma);
        assert_eq!(has_kernels::<f32>(), detected() == Isa::Fma);
        assert!(!has_kernels::<Tracked>(), "op counting never vectorizes");
    }

    #[test]
    fn menus_are_lane_aligned() {
        for &(mr, nr) in FMA_MENU_F64 {
            assert!(mr > 0 && nr % 4 == 0, "f64 tile ({mr},{nr})");
        }
        for &(mr, nr) in FMA_MENU_F32 {
            assert!(mr > 0 && nr % 8 == 0, "f32 tile ({mr},{nr})");
        }
    }

    #[test]
    fn tracked_tiles_always_fall_through() {
        let kc = 3;
        let ap = vec![Tracked(1.0); kc * 4];
        let bp = vec![Tracked(2.0); kc * 4];
        let mut c = Matrix::<Tracked>::zeros(4, 4);
        let mut cv = c.as_mut();
        assert!(!full_tile(4, 4, kc, &ap, &bp, &mut cv));
        assert_eq!(c.as_ref().row(0)[0], Tracked(0.0), "tile left untouched");
    }

    #[test]
    fn fused_tile_matches_the_unfused_reference_within_tolerance() {
        if detected() != Isa::Fma {
            return;
        }
        let (kc, mr, nr) = (17usize, 6usize, 8usize);
        let ap: Vec<f64> = (0..kc * mr).map(|i| (i as f64).sin()).collect();
        let bp: Vec<f64> = (0..kc * nr).map(|i| (i as f64).cos()).collect();
        let mut c = Matrix::<f64>::zeros(mr, nr);
        let mut cv = c.as_mut();
        assert!(full_tile(mr, nr, kc, &ap, &bp, &mut cv));
        for i in 0..mr {
            for j in 0..nr {
                let mut want = 0.0f64;
                for p in 0..kc {
                    want += ap[p * mr + i] * bp[p * nr + j];
                }
                let got = c.as_ref().row(i)[j];
                assert!(
                    (got - want).abs() <= 1e-12 * kc as f64,
                    "({i},{j}): {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn undersized_operands_are_rejected_not_read() {
        if detected() != Isa::Fma {
            return;
        }
        let kc = 8;
        let ap = vec![1.0f64; kc * 4 - 1]; // one element short
        let bp = vec![1.0f64; kc * 4];
        let mut c = Matrix::<f64>::zeros(4, 4);
        let mut cv = c.as_mut();
        assert!(!full_tile(4, 4, kc, &ap, &bp, &mut cv));
    }
}
