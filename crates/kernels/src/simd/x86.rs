//! AVX2/FMA register microkernels for x86-64.
//!
//! Each kernel computes one full `MR x NR` tile of `C += Ap^T Bp` over
//! the packed micro-panels from [`crate::pack`], exactly like the
//! portable const-generic kernel in [`crate::micro`], but with explicit
//! 256-bit vectors and one fused `vfmadd` per lane-column per k-step.
//! `NR` is a multiple of the vector width (4 f64 / 8 f32 lanes), so a
//! tile's accumulators are `MR x NRV` registers; the 15-register tiles
//! (`6 x 8` f64, `6 x 16` f32: 12 accumulators + 2 B vectors + 1
//! broadcast) are the expected sweep winners on 16-register AVX2.
//!
//! Only *full* tiles come through here — ragged edges and diagonal
//! straddles stay on the scalar bounds-aware kernel, which is what
//! preserves the engine's exact-op `Tracked` contract (these kernels are
//! unreachable for non-`f32`/`f64` scalars; see [`super::full_tile`]).
//!
//! The fused accumulation rounds differently from the deliberately
//! unfused [`ata_mat::Scalar::mul_add`] chain of the portable kernel:
//! intrinsic results agree with the portable path to the usual product
//! tolerance, not bit-for-bit (`crates/kernels/tests/simd_paths.rs`
//! pins both properties).

use ata_mat::MatMut;
use core::arch::x86_64::{
    __m256, __m256d, _mm256_fmadd_pd, _mm256_fmadd_ps, _mm256_loadu_pd, _mm256_loadu_ps,
    _mm256_set1_pd, _mm256_set1_ps, _mm256_setzero_pd, _mm256_setzero_ps, _mm256_storeu_pd,
    _mm256_storeu_ps,
};

/// f64 lanes per 256-bit vector.
const LANES_F64: usize = 4;
/// f32 lanes per 256-bit vector.
const LANES_F32: usize = 8;

/// Generate one fused `MR x (LANES * NRV)` tile kernel: seed the
/// accumulators from `C`, run `kc` broadcast-FMA steps over the packed
/// panels, write back once.
macro_rules! fma_tile {
    ($name:ident, $elem:ty, $vec:ty, $lanes:expr, $setzero:ident, $set1:ident,
     $loadu:ident, $fmadd:ident, $storeu:ident, $mr:expr, $nrv:expr) => {
        /// One full register tile of `C += Ap^T Bp`, fused.
        ///
        /// # Safety
        /// The CPU must support AVX2 and FMA, `ap` must hold at least
        /// `kc * MR` elements, `bp` at least `kc * NR`, and `c` must be
        /// an `MR x NR` tile (`NR = LANES * NRV`). The dispatchers below
        /// check all four before calling.
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $name(kc: usize, ap: &[$elem], bp: &[$elem], c: &mut MatMut<'_, $elem>) {
            const MR: usize = $mr;
            const NRV: usize = $nrv;
            const NR: usize = NRV * $lanes;
            debug_assert_eq!(c.shape(), (MR, NR));
            debug_assert!(ap.len() >= kc * MR && bp.len() >= kc * NR);
            // SAFETY: the dispatcher verified the feature set via the
            // cached runtime detection and checked `ap.len() >= kc * MR`,
            // `bp.len() >= kc * NR`, and `c.shape() == (MR, NR)`, so
            // every unaligned load/store below stays inside its slice or
            // row (`p < kc`, lane offsets `< NR`, row indices `< MR`).
            unsafe {
                let mut acc: [[$vec; NRV]; MR] = [[$setzero(); NRV]; MR];
                for (i, arow) in acc.iter_mut().enumerate() {
                    let src = c.row(i).as_ptr();
                    for (v, a) in arow.iter_mut().enumerate() {
                        *a = $loadu(src.add(v * $lanes));
                    }
                }
                let mut app = ap.as_ptr();
                let mut bpp = bp.as_ptr();
                for _ in 0..kc {
                    let mut bvec: [$vec; NRV] = [$setzero(); NRV];
                    for (v, b) in bvec.iter_mut().enumerate() {
                        *b = $loadu(bpp.add(v * $lanes));
                    }
                    for (i, arow) in acc.iter_mut().enumerate() {
                        let ai = $set1(*app.add(i));
                        for (v, a) in arow.iter_mut().enumerate() {
                            *a = $fmadd(ai, bvec[v], *a);
                        }
                    }
                    app = app.add(MR);
                    bpp = bpp.add(NR);
                }
                for (i, arow) in acc.iter().enumerate() {
                    let dst = c.row_mut(i).as_mut_ptr();
                    for (v, a) in arow.iter().enumerate() {
                        $storeu(dst.add(v * $lanes), *a);
                    }
                }
            }
        }
    };
}

macro_rules! fma_tile_f64 {
    ($name:ident, $mr:expr, $nrv:expr) => {
        fma_tile!(
            $name,
            f64,
            __m256d,
            LANES_F64,
            _mm256_setzero_pd,
            _mm256_set1_pd,
            _mm256_loadu_pd,
            _mm256_fmadd_pd,
            _mm256_storeu_pd,
            $mr,
            $nrv
        );
    };
}

macro_rules! fma_tile_f32 {
    ($name:ident, $mr:expr, $nrv:expr) => {
        fma_tile!(
            $name,
            f32,
            __m256,
            LANES_F32,
            _mm256_setzero_ps,
            _mm256_set1_ps,
            _mm256_loadu_ps,
            _mm256_fmadd_ps,
            _mm256_storeu_ps,
            $mr,
            $nrv
        );
    };
}

fma_tile_f64!(tile_f64_4x4, 4, 1);
fma_tile_f64!(tile_f64_4x8, 4, 2);
fma_tile_f64!(tile_f64_6x4, 6, 1);
fma_tile_f64!(tile_f64_6x8, 6, 2);
fma_tile_f64!(tile_f64_8x4, 8, 1);
fma_tile_f64!(tile_f64_8x8, 8, 2);

fma_tile_f32!(tile_f32_4x8, 4, 1);
fma_tile_f32!(tile_f32_4x16, 4, 2);
fma_tile_f32!(tile_f32_6x8, 6, 1);
fma_tile_f32!(tile_f32_6x16, 6, 2);
fma_tile_f32!(tile_f32_8x8, 8, 1);
fma_tile_f32!(tile_f32_8x16, 8, 2);

/// Run the fused f64 kernel for tile `(mr, nr)`. `false` means "no
/// kernel took the tile" (unsupported ISA, off-menu tile, or operands
/// that fail the bounds checks) and the caller must use the portable
/// path.
pub(super) fn tile_f64(
    mr: usize,
    nr: usize,
    kc: usize,
    ap: &[f64],
    bp: &[f64],
    c: &mut MatMut<'_, f64>,
) -> bool {
    if super::detected() != super::Isa::Fma
        || ap.len() < kc * mr
        || bp.len() < kc * nr
        || c.shape() != (mr, nr)
    {
        return false;
    }
    // SAFETY: AVX2+FMA presence was just re-checked through the cached
    // runtime detection, and the operand bounds above are exactly the
    // kernels' preconditions (`ap` holds `kc * mr`, `bp` holds
    // `kc * nr`, `c` is `mr x nr`).
    unsafe {
        match (mr, nr) {
            (4, 4) => tile_f64_4x4(kc, ap, bp, c),
            (4, 8) => tile_f64_4x8(kc, ap, bp, c),
            (6, 4) => tile_f64_6x4(kc, ap, bp, c),
            (6, 8) => tile_f64_6x8(kc, ap, bp, c),
            (8, 4) => tile_f64_8x4(kc, ap, bp, c),
            (8, 8) => tile_f64_8x8(kc, ap, bp, c),
            _ => return false,
        }
    }
    true
}

/// f32 twin of [`tile_f64`] (8-lane vectors, so `nr` is a multiple of 8).
pub(super) fn tile_f32(
    mr: usize,
    nr: usize,
    kc: usize,
    ap: &[f32],
    bp: &[f32],
    c: &mut MatMut<'_, f32>,
) -> bool {
    if super::detected() != super::Isa::Fma
        || ap.len() < kc * mr
        || bp.len() < kc * nr
        || c.shape() != (mr, nr)
    {
        return false;
    }
    // SAFETY: as in `tile_f64` — feature set re-checked via the cached
    // detection, operand bounds checked against the kernel
    // preconditions directly above.
    unsafe {
        match (mr, nr) {
            (4, 8) => tile_f32_4x8(kc, ap, bp, c),
            (4, 16) => tile_f32_4x16(kc, ap, bp, c),
            (6, 8) => tile_f32_6x8(kc, ap, bp, c),
            (6, 16) => tile_f32_6x16(kc, ap, bp, c),
            (8, 8) => tile_f32_8x8(kc, ap, bp, c),
            (8, 16) => tile_f32_8x16(kc, ap, bp, c),
            _ => return false,
        }
    }
    true
}
