//! Measured kernel tuning: blocking parameters and base-case cutoffs.
//!
//! The pre-engine kernels ran with one guessed blocking (`MC = 32`,
//! `NC = 256`) and one guessed recursion cutoff (32768 cache words) for
//! every scalar type. This module replaces the guesses with a *measured*
//! model, in two layers:
//!
//! 1. [`tuned_for`] — the zero-cost lookup the kernel entry points use.
//!    It returns a per-scalar [`Tuned`] record from a table measured
//!    with [`measure`] (regenerate any time with `ata calibrate`), after
//!    applying the `ATA_KERNEL_PARAMS` environment override.
//! 2. [`measure`] — the calibration run itself: sweeps the register-tile
//!    menu and the `KC/MC/NC` grid with wall-clock timings, then locates
//!    the AtA base-case crossover (the problem size where one
//!    Algorithm 1 recursion level — four half-size syrk leaves plus two
//!    half-size products — stops beating a single syrk leaf).
//!
//! # Per-ISA tables
//!
//! The table is keyed on *(scalar type, resolved tile path)*: the fused
//! AVX2/FMA kernels in [`crate::simd`] prefer different register tiles
//! and cutoffs than the portable autovectorized kernels, so a machine
//! with FMA resolves the `*_FMA` rows and everything else (including
//! forced `ATA_MICRO=portable|scalar` runs) resolves the portable rows.
//! `ata calibrate` prints both sets where the hardware supports them.
//!
//! # Overriding
//!
//! `ATA_KERNEL_PARAMS` accepts comma-separated `key=value` pairs with
//! keys `mr`, `nr`, `kc`, `mc`, `nc`, `words`, `volume`, e.g.
//! `ATA_KERNEL_PARAMS="mr=8,nr=4,kc=128,words=16384"`. Unknown keys and
//! malformed pairs are ignored; the override applies to every scalar
//! type. `ATA_MICRO` selects the tile path (`intrinsic|portable|scalar`)
//! or disables the packed engine entirely (`0`; see
//! [`crate::micro::selected_path`]).

use crate::gemm::{gemm_tn_blocked, BlockSizes};
use crate::micro::{
    gemm_tn_micro_with, micro_path_for, syrk_ln_micro_with, KernelConfig, MicroPath,
    MICRO_MIN_VOLUME,
};
use crate::pack::PackBufs;
use ata_mat::{MatMut, MatRef, Scalar};
use std::sync::OnceLock;
use std::time::Instant;

/// One scalar type's measured kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tuned {
    /// Blocking parameters of the packed microkernel engine.
    pub kernel: KernelConfig,
    /// Cache-word budget at which the Strassen-style recursions stop
    /// splitting and call the packed kernel (the measured crossover,
    /// in elements; see [`crate::CacheConfig`]).
    pub base_words: usize,
    /// Minimum flop volume (`m * n * k`) at which the packed engine
    /// beats the blocked rank-1 loops for this scalar/path — below it
    /// [`crate::micro::selected_path`] keeps the blocked loops.
    pub micro_min_volume: usize,
}

/// Measured on the development container (Intel Xeon @ 2.10 GHz,
/// baseline x86-64 SSE2 codegen, single thread) via
/// `ATA_MICRO=portable ata calibrate`. Re-run [`measure`] on new
/// hardware and update these records.
const TUNED_F64: Tuned = Tuned {
    kernel: KernelConfig {
        mr: 4,
        nr: 8,
        kc: 256,
        mc: 64,
        nc: 256,
    },
    // No measured crossover below 256^2 operand pairs: the packed kernel
    // is flat-rate enough that one extra Strassen level only pays once
    // blocks exceed ~256 x 256 (validated end to end at n = 1024, where
    // this cutoff beats both 32768 and no-recursion).
    base_words: 131_072,
    micro_min_volume: MICRO_MIN_VOLUME,
};

/// See [`TUNED_F64`]; f32 packs twice the lanes per register, so the
/// measured register tile is wider (`nr = 12`).
const TUNED_F32: Tuned = Tuned {
    kernel: KernelConfig {
        mr: 4,
        nr: 12,
        kc: 256,
        mc: 64,
        nc: 256,
    },
    base_words: 131_072,
    // The portable f32 engine loses to the blocked loops up to n = 128
    // (14.3 vs 18.9 GF/s gemm in BENCH_kernels.json) and only wins from
    // n = 256 up, so its cutoff sits between those sizes: 128^3 < v <=
    // 192^3 measured, baked as the first losing size cubed plus one.
    micro_min_volume: 128 * 128 * 128 + 1,
};

/// Fused-kernel row for f64 under [`crate::simd::Isa::Fma`], measured
/// on the same container with the cross-size sweep (`ata calibrate`
/// plus 128/256/512 spot checks): the 4 x 8 tile (8 fused accumulator
/// vectors, 2 B vectors, 1 broadcast) beat the deeper 6 x 8 / 8 x 8
/// tiles at every size (33-38 GF/s gemm vs 13.5 portable), and the
/// fused kernel beats the blocked loops from the smallest packed sizes,
/// so the volume floor stays at the packing-overhead default.
const TUNED_F64_FMA: Tuned = Tuned {
    kernel: KernelConfig {
        mr: 4,
        nr: 8,
        kc: 128,
        mc: 64,
        nc: 256,
    },
    // The single-level crossover model lands between 2*192^2 and
    // 2*256^2 on repeated fused-path runs (timing noise at this
    // machine's resolution); keep the end-to-end-validated portable
    // value at the top of that band.
    base_words: 131_072,
    micro_min_volume: MICRO_MIN_VOLUME,
};

/// Fused-kernel row for f32 under [`crate::simd::Isa::Fma`] (see
/// [`TUNED_F64_FMA`]): 8 lanes per vector, same 4-row accumulator
/// block, twice the tile width (59-69 GF/s gemm, 34-51 syrk measured —
/// above the blocked loops at every benched size, unlike the portable
/// f32 engine).
const TUNED_F32_FMA: Tuned = Tuned {
    kernel: KernelConfig {
        mr: 4,
        nr: 16,
        kc: 256,
        mc: 64,
        nc: 256,
    },
    base_words: 131_072,
    // Measured crossover: the blocked loops still edge out the fused
    // f32 engine below 24^3 (packing overhead on narrow panels).
    micro_min_volume: 24 * 24 * 24 + 1,
};

/// The measured parameters for scalar type `T` on an explicit tile
/// path, with any `ATA_KERNEL_PARAMS` override applied.
///
/// Only a genuinely-available `Intrinsic` path (see
/// [`crate::simd::has_kernels`]) resolves the `*_FMA` rows; `Portable`
/// and `Scalar` — and any scalar the SIMD module has no kernels for —
/// resolve the portable rows, so the blocking a run uses always matches
/// the kernels it executes.
pub fn tuned_for_path<T: Scalar>(path: MicroPath) -> Tuned {
    let fused = path == MicroPath::Intrinsic && crate::simd::has_kernels::<T>();
    let base = match (T::NAME, fused) {
        ("f32", true) => TUNED_F32_FMA,
        ("f32", false) => TUNED_F32,
        ("f64", true) => TUNED_F64_FMA,
        // Types without their own row (the op-counting `Tracked` scalar,
        // exact fields) inherit the portable f64 row: their "speed" is
        // irrelevant, but sharing the row keeps their blocking — and
        // therefore their measured operation *counts* — identical to the
        // f64 reference path on every host ISA.
        _ => TUNED_F64,
    };
    apply_env(base)
}

/// The measured parameters for scalar type `T` on the tile path the
/// engine resolves under the current `ATA_MICRO` setting and detected
/// ISA, with any `ATA_KERNEL_PARAMS` override applied.
pub fn tuned_for<T: Scalar>() -> Tuned {
    tuned_for_path::<T>(micro_path_for::<T>())
}

/// The register-tile menu the calibration sweep walks for `T`: the
/// intrinsic menu of the detected ISA when the resolved path runs fused
/// kernels, the portable [`KernelConfig::MENU`] otherwise.
pub fn menu_for<T: Scalar>() -> &'static [(usize, usize)] {
    if micro_path_for::<T>() == MicroPath::Intrinsic {
        if let Some(menu) = crate::simd::fma_menu::<T>() {
            return menu;
        }
    }
    KernelConfig::MENU
}

/// Parsed `ATA_KERNEL_PARAMS` override (read once per process).
#[derive(Debug, Default, Clone, Copy)]
struct EnvOverride {
    mr: Option<usize>,
    nr: Option<usize>,
    kc: Option<usize>,
    mc: Option<usize>,
    nc: Option<usize>,
    words: Option<usize>,
    volume: Option<usize>,
}

fn env_override() -> &'static Option<EnvOverride> {
    static PARSED: OnceLock<Option<EnvOverride>> = OnceLock::new();
    PARSED.get_or_init(|| {
        let raw = std::env::var("ATA_KERNEL_PARAMS").ok()?;
        let mut ov = EnvOverride::default();
        for pair in raw.split(',') {
            let Some((key, value)) = pair.split_once('=') else {
                continue;
            };
            let Ok(v) = value.trim().parse::<usize>() else {
                continue;
            };
            if v == 0 {
                continue;
            }
            match key.trim() {
                "mr" => ov.mr = Some(v),
                "nr" => ov.nr = Some(v),
                "kc" => ov.kc = Some(v),
                "mc" => ov.mc = Some(v),
                "nc" => ov.nc = Some(v),
                "words" => ov.words = Some(v),
                "volume" => ov.volume = Some(v),
                _ => {}
            }
        }
        Some(ov)
    })
}

fn apply_env(mut t: Tuned) -> Tuned {
    if let Some(ov) = env_override() {
        let k = &mut t.kernel;
        k.mr = ov.mr.unwrap_or(k.mr);
        k.nr = ov.nr.unwrap_or(k.nr);
        k.kc = ov.kc.unwrap_or(k.kc);
        k.mc = ov.mc.unwrap_or(k.mc);
        k.nc = ov.nc.unwrap_or(k.nc);
        t.base_words = ov.words.unwrap_or(t.base_words);
        t.micro_min_volume = ov.volume.unwrap_or(t.micro_min_volume);
    }
    t
}

// ---------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------

/// Fill a buffer with a cheap deterministic pseudo-random pattern
/// (avoids depending on `gen` and keeps calibration self-contained).
fn fill_pattern<T: Scalar>(buf: &mut [T], seed: u64) {
    let mut state = seed | 1;
    for v in buf.iter_mut() {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let r = (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64;
        *v = T::from_f64(r / (1u64 << 53) as f64 - 0.5);
    }
}

/// Median-of-three wall-clock seconds of one `C += A^T B` run at
/// `m = n = k = size` under `cfg`.
fn time_gemm<T: Scalar>(size: usize, cfg: &KernelConfig, bufs: &mut PackBufs<T>) -> f64 {
    let mut a = vec![T::ZERO; size * size];
    let mut b = vec![T::ZERO; size * size];
    let mut c = vec![T::ZERO; size * size];
    fill_pattern(&mut a, 1);
    fill_pattern(&mut b, 2);
    let av = MatRef::from_slice(&a, size, size);
    let bv = MatRef::from_slice(&b, size, size);
    let mut samples = [0.0f64; 3];
    for s in samples.iter_mut() {
        let mut cv = MatMut::from_slice(&mut c, size, size);
        let t0 = Instant::now();
        gemm_tn_micro_with(T::ONE, av, bv, &mut cv, cfg, bufs);
        *s = t0.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    std::hint::black_box(&c);
    samples[1]
}

/// Sweep the register-tile menu and a coarse `KC/MC/NC` grid, returning
/// the fastest [`KernelConfig`] by measured square-gemm time.
///
/// `quick` trims the grid for smoke runs (CI, `ata calibrate --quick`).
pub fn measure_kernel<T: Scalar>(quick: bool) -> KernelConfig {
    let size = if quick { 64 } else { 192 };
    let kcs: &[usize] = if quick { &[128] } else { &[128, 256] };
    let mcs: &[usize] = if quick { &[64] } else { &[32, 64, 128] };
    let ncs: &[usize] = if quick { &[256] } else { &[128, 256] };
    let mut bufs = PackBufs::new();
    let mut best = (f64::INFINITY, KernelConfig::for_scalar::<T>());
    for &(mr, nr) in menu_for::<T>() {
        for &kc in kcs {
            for &mc in mcs {
                for &nc in ncs {
                    let cfg = KernelConfig::new(mr, nr, kc, mc, nc);
                    let t = time_gemm::<T>(size, &cfg, &mut bufs);
                    if t < best.0 {
                        best = (t, cfg);
                    }
                }
            }
        }
    }
    best.1
}

/// Median-of-three wall-clock seconds of one syrk-leaf rank update
/// `C_low += A^T A` at `m = n = size` under `cfg` — the base case the
/// AtA recursion actually bottoms out in.
fn time_syrk<T: Scalar>(size: usize, cfg: &KernelConfig, bufs: &mut PackBufs<T>) -> f64 {
    let mut a = vec![T::ZERO; size * size];
    let mut c = vec![T::ZERO; size * size];
    fill_pattern(&mut a, 4);
    let av = MatRef::from_slice(&a, size, size);
    let mut samples = [0.0f64; 3];
    for s in samples.iter_mut() {
        let mut cv = MatMut::from_slice(&mut c, size, size);
        let t0 = Instant::now();
        syrk_ln_micro_with(T::ONE, av, &mut cv, cfg, bufs);
        *s = t0.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    std::hint::black_box(&c);
    samples[1]
}

/// The sizes swept for the base-case crossover; the returned cutoff is
/// always `2 s^2` for some swept `s`, so `[2*48^2, 2*256^2]` is the
/// valid range of any measured (or baked) `base_words`.
pub const BASE_SWEEP_SIZES: &[usize] = &[48, 64, 96, 128, 192, 256];

/// Locate the AtA base-case crossover for `T` under `kernel`, by timing
/// the two sides of one Algorithm 1 recursion level directly:
///
/// * staying at the base case costs one size-`s` syrk leaf;
/// * recursing costs the level's actual kernel mix — four half-size
///   syrk leaves (the recursive AtA calls, themselves base cases at the
///   crossover) plus two half-size `A^T B` products (the off-diagonal
///   FastStrassen calls, which degenerate to direct gemm when their
///   children are base cases).
///
/// The previous model inferred both sides from square-gemm timings
/// alone (`7 t(s/2)` plus an axpy-priced block-sum term) — Strassen's
/// mix, not Algorithm 1's — and mispriced the syrk leaves, which skip
/// the strictly-upper half of every diagonal tile. The crossover `s*`
/// is the smallest swept size where recursing wins; recursion should
/// *stop* below it, i.e. when the operands fit `words = 2 * s*^2` cache
/// words (the `ata_base` predicate `m*n + n*n <= words` on a square
/// problem).
pub fn measure_base_words<T: Scalar>(kernel: &KernelConfig, quick: bool) -> usize {
    let sizes: &[usize] = if quick { &[48, 96] } else { BASE_SWEEP_SIZES };
    let mut bufs = PackBufs::new();
    for &s in sizes {
        let t_full = time_syrk::<T>(s, kernel, &mut bufs);
        let half = s.div_ceil(2);
        let t_level = 4.0 * time_syrk::<T>(half, kernel, &mut bufs)
            + 2.0 * time_gemm::<T>(half, kernel, &mut bufs);
        if t_level < 0.95 * t_full {
            return 2 * s * s;
        }
    }
    // No crossover in range: keep recursion rare.
    let s = *sizes.last().expect("size table is non-empty"); // ata-lint: allow(no-unwrap-in-lib): the size table is a non-empty constant
    2 * s * s
}

/// The sizes swept for the micro-vs-blocked crossover; any measured (or
/// baked) `micro_min_volume` is `s^3 + 1` for a swept `s` (or the
/// [`MICRO_MIN_VOLUME`] floor when the engine wins everywhere).
pub const VOLUME_SWEEP_SIZES: &[usize] = &[16, 24, 32, 48, 64, 96, 128, 192];

/// Median-of-three wall-clock seconds of one blocked rank-1
/// `C += A^T B` run at `m = n = k = size` — the path the engine's
/// volume cutoff competes against.
fn time_blocked<T: Scalar>(size: usize) -> f64 {
    let mut a = vec![T::ZERO; size * size];
    let mut b = vec![T::ZERO; size * size];
    let mut c = vec![T::ZERO; size * size];
    fill_pattern(&mut a, 1);
    fill_pattern(&mut b, 2);
    let av = MatRef::from_slice(&a, size, size);
    let bv = MatRef::from_slice(&b, size, size);
    let mut samples = [0.0f64; 3];
    for s in samples.iter_mut() {
        let mut cv = MatMut::from_slice(&mut c, size, size);
        let t0 = Instant::now();
        gemm_tn_blocked(T::ONE, av, bv, &mut cv, BlockSizes::default());
        *s = t0.elapsed().as_secs_f64();
    }
    samples.sort_by(f64::total_cmp);
    std::hint::black_box(&c);
    samples[1]
}

/// Locate the volume above which the packed engine under `kernel` beats
/// the blocked rank-1 loops for `T`, by walking
/// [`VOLUME_SWEEP_SIZES`] downward: the cutoff is the cube of the
/// largest size where the blocked loops still win, plus one (or the
/// [`MICRO_MIN_VOLUME`] packing-overhead floor when the engine wins at
/// every swept size — the f64 situation; portable f32 is the case this
/// sweep exists for).
pub fn measure_min_volume<T: Scalar>(kernel: &KernelConfig, quick: bool) -> usize {
    let sizes: &[usize] = if quick { &[32, 64] } else { VOLUME_SWEEP_SIZES };
    let mut bufs = PackBufs::new();
    for &s in sizes.iter().rev() {
        if s * s * s < MICRO_MIN_VOLUME {
            break;
        }
        let t_micro = time_gemm::<T>(s, kernel, &mut bufs);
        let t_blocked = time_blocked::<T>(s);
        if t_blocked < t_micro {
            return s * s * s + 1;
        }
    }
    MICRO_MIN_VOLUME
}

/// Full calibration for scalar type `T` on its resolved tile path:
/// tile/blocking sweep, the micro-vs-blocked volume crossover, and the
/// AtA base-case crossover. `quick` keeps the run under a second for
/// smoke use; the full run takes a few seconds per type.
pub fn measure<T: Scalar>(quick: bool) -> Tuned {
    let kernel = measure_kernel::<T>(quick);
    let micro_min_volume = measure_min_volume::<T>(&kernel, quick);
    let base_words = measure_base_words::<T>(&kernel, quick);
    Tuned {
        kernel,
        base_words,
        micro_min_volume,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baked_tables_are_on_menu() {
        for t in [TUNED_F64, TUNED_F32] {
            assert!(
                KernelConfig::MENU.contains(&(t.kernel.mr, t.kernel.nr)),
                "baked portable tile {:?} must have an unrolled kernel",
                (t.kernel.mr, t.kernel.nr)
            );
            assert!(t.base_words >= 1024, "cutoff suspiciously small");
        }
        for (t, menu) in [
            (TUNED_F64_FMA, crate::simd::FMA_MENU_F64),
            (TUNED_F32_FMA, crate::simd::FMA_MENU_F32),
        ] {
            let tile = (t.kernel.mr, t.kernel.nr);
            assert!(
                menu.contains(&tile),
                "baked fused tile {tile:?} must have an intrinsic kernel"
            );
            assert!(
                KernelConfig::MENU.contains(&tile),
                "baked fused tile {tile:?} needs a portable fallback kernel"
            );
        }
    }

    #[test]
    fn baked_cutoffs_lie_in_the_measured_sweep_range() {
        let lo = 2 * BASE_SWEEP_SIZES.first().unwrap().pow(2);
        let hi = 2 * BASE_SWEEP_SIZES.last().unwrap().pow(2);
        for t in [TUNED_F64, TUNED_F32, TUNED_F64_FMA, TUNED_F32_FMA] {
            assert!(
                (lo..=hi).contains(&t.base_words),
                "baked cutoff {} outside the sweep's valid range [{lo}, {hi}]",
                t.base_words
            );
            let vol_hi = VOLUME_SWEEP_SIZES.last().unwrap().pow(3) + 1;
            assert!(
                (MICRO_MIN_VOLUME..=vol_hi).contains(&t.micro_min_volume),
                "baked volume cutoff {} outside [{MICRO_MIN_VOLUME}, {vol_hi}]",
                t.micro_min_volume
            );
        }
    }

    #[test]
    fn tuned_for_covers_every_scalar() {
        let f64_portable = tuned_for_path::<f64>(MicroPath::Portable);
        let f32_t = tuned_for::<f32>();
        let tracked = tuned_for::<ata_mat::tracked::Tracked>();
        assert_eq!(
            tracked, f64_portable,
            "op-counting scalar must share the portable f64 blocking"
        );
        assert!(f32_t.kernel.mr > 0 && f32_t.kernel.nr > 0);
    }

    #[test]
    fn fused_rows_only_resolve_where_kernels_exist() {
        // Forcing Intrinsic for a scalar with no SIMD kernels must fall
        // back to the portable row, never the fused one.
        assert_eq!(
            tuned_for_path::<ata_mat::tracked::Tracked>(MicroPath::Intrinsic),
            tuned_for_path::<f64>(MicroPath::Portable),
        );
        if crate::simd::has_kernels::<f64>() {
            assert_eq!(
                tuned_for_path::<f64>(MicroPath::Intrinsic),
                apply_env(TUNED_F64_FMA)
            );
            assert_eq!(
                tuned_for_path::<f32>(MicroPath::Intrinsic),
                apply_env(TUNED_F32_FMA)
            );
        }
        assert_eq!(
            tuned_for_path::<f64>(MicroPath::Scalar),
            apply_env(TUNED_F64)
        );
    }

    #[test]
    fn menus_track_the_resolved_path() {
        use crate::micro::micro_path_for;
        if micro_path_for::<f64>() == MicroPath::Intrinsic {
            assert_eq!(menu_for::<f64>(), crate::simd::FMA_MENU_F64);
            assert_eq!(menu_for::<f32>(), crate::simd::FMA_MENU_F32);
        } else {
            assert_eq!(menu_for::<f64>(), KernelConfig::MENU);
        }
        assert_eq!(
            menu_for::<ata_mat::tracked::Tracked>(),
            KernelConfig::MENU,
            "op counting sweeps the portable menu on any host"
        );
    }

    #[test]
    fn quick_measurement_returns_sane_values() {
        // Smoke only: a quick sweep must terminate and produce a menu
        // tile with positive blocking. (The actual numbers are
        // hardware-dependent and not asserted.)
        let t = measure::<f32>(true);
        assert!(menu_for::<f32>().contains(&(t.kernel.mr, t.kernel.nr)));
        assert!(t.base_words >= 2 * 48 * 48);
        assert!(t.micro_min_volume >= MICRO_MIN_VOLUME);
    }
}
