//! Lower-triangular symmetric rank-k update: `C_low += alpha * A^T A`.
//!
//! This is the workspace's `?syrk('L','T')` — the base case of AtA
//! (Algorithm 1 line 3) and the sequential/multithreaded MKL comparator of
//! Figures 3 and 5. It computes only the `n(n+1)/2` lower entries,
//! halving the flops of a general product, exactly like the BLAS routine
//! it replaces.
//!
//! Blocking mirrors [`crate::gemm`]: the strictly-lower rectangular tiles
//! reuse the gemm tile kernel on column-strip views of `A`; diagonal tiles
//! use a dedicated triangular kernel whose inner `axpy` runs over the
//! `j <= i` prefix of the row — still unit-stride, still vectorizable.

use crate::gemm::{gemm_tn_blocked, BlockSizes};
use ata_mat::{MatMut, MatRef, Scalar};

/// `C_low += alpha * A^T A` — the workspace's default `?syrk('L','T')`.
///
/// Dispatches to the packed register-blocked engine
/// ([`crate::micro::syrk_ln_micro`], diagonal tiles included) with the
/// measured per-scalar blocking from [`crate::calibrate`]; tiny updates
/// (and builds with `ATA_MICRO=0`) fall back to [`syrk_ln_blocked`] —
/// see [`crate::micro::selected_path`].
///
/// Shapes: `A: m x n`, `C: n x n` (only `i >= j` entries touched).
///
/// # Panics
/// On inconsistent shapes.
#[inline]
pub fn syrk_ln<T: Scalar>(alpha: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
    let (m, n) = a.shape();
    match crate::micro::selected_path::<T>(m, n, n) {
        crate::micro::KernelPath::Micro => {
            let cfg = crate::micro::KernelConfig::for_scalar::<T>();
            crate::micro::syrk_ln_micro(alpha, a, c, &cfg);
        }
        crate::micro::KernelPath::Blocked => syrk_ln_blocked(alpha, a, c, BlockSizes::default()),
    }
}

/// `C_low = alpha * A^T A + beta * C_low` — the full `?syrk('L','T')`
/// contract with an explicit β, for callers that need more than the
/// accumulate-only (`β = 1`) mode of [`syrk_ln`].
///
/// The streaming Gram accumulator is the motivating call site: `β = 1`
/// folds a new row chunk into a running sum, `0 < β < 1` applies an
/// exponential forgetting factor in the same pass, and `β = 0` recovers
/// overwrite semantics without a separate zeroing sweep over `C`.
///
/// Exact-op contract (for `Tracked` measurements): the β-scaling costs
/// exactly `n(n+1)/2` multiplications when `beta ∉ {0, 1}` and zero
/// arithmetic otherwise; the update itself then costs exactly what
/// [`syrk_ln`] costs at the same shape. Following BLAS, the scaling is
/// applied even when `A` has no rows.
///
/// Shapes: `A: m x n`, `C: n x n` (only `i >= j` entries touched).
///
/// # Panics
/// On inconsistent shapes.
pub fn syrk_ln_beta<T: Scalar>(alpha: T, beta: T, a: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
    let (m, n) = a.shape();
    assert_eq!(
        c.shape(),
        (n, n),
        "syrk_ln_beta: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    if beta == T::ZERO {
        for i in 0..n {
            for cv in &mut c.row_mut(i)[..=i] {
                *cv = T::ZERO;
            }
        }
    } else if beta != T::ONE {
        for i in 0..n {
            for cv in &mut c.row_mut(i)[..=i] {
                *cv = beta * *cv;
            }
        }
    }
    if m == 0 || n == 0 {
        return;
    }
    syrk_ln(alpha, a, c);
}

/// `C_low += alpha * A^T A` with explicit blocking parameters.
///
/// # Panics
/// On inconsistent shapes.
pub fn syrk_ln_blocked<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    bs: BlockSizes,
) {
    let (m, n) = a.shape();
    assert_eq!(
        c.shape(),
        (n, n),
        "syrk_ln: C must be {n}x{n}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 {
        return;
    }

    // Tile C's lower triangle in square MC x MC blocks by block-row.
    let tile = bs.mc.max(1);
    let mut i0 = 0;
    while i0 < n {
        let i1 = (i0 + tile).min(n);
        // Strictly-lower rectangular part of this block row:
        // C[i0..i1, 0..i0] += alpha * A[:, i0..i1]^T A[:, 0..i0].
        if i0 > 0 {
            let a_i = a.block(0, m, i0, i1);
            let a_j = a.block(0, m, 0, i0);
            let mut c_blk = c.block_mut(i0, i1, 0, i0);
            gemm_tn_blocked(alpha, a_i, a_j, &mut c_blk, bs);
        }
        // Diagonal tile: triangular kernel.
        let alpha_is_one = alpha == T::ONE;
        for l in 0..m {
            let arow = a.row(l);
            for i in i0..i1 {
                let s = if alpha_is_one {
                    arow[i]
                } else {
                    alpha * arow[i]
                };
                // C[i, i0..=i] += s * A[l, i0..=i]
                let src = &arow[i0..=i];
                let dst = &mut c.row_mut(i)[i0..=i];
                for (cv, &av) in dst.iter_mut().zip(src) {
                    *cv += s * av;
                }
            }
        }
        i0 = i1;
    }
}

/// Balanced partition of the rows of an `n x n` lower triangle into `p`
/// contiguous row ranges of (approximately) equal area.
///
/// Row range `r0..r1` of the lower triangle holds
/// `(r1(r1+1) - r0(r0+1)) / 2` entries; equal-area ranges are what makes
/// the parallel [`crate::par::par_syrk_ln`] scale, since a naive equal-row
/// split gives the last thread almost twice the average work.
///
/// Returns `p + 1` boundaries starting at 0 and ending at `n`.
pub fn triangle_row_partition(n: usize, p: usize) -> Vec<usize> {
    assert!(p > 0, "partition needs at least one part");
    let total = (n as f64) * (n as f64 + 1.0) / 2.0;
    let mut bounds = Vec::with_capacity(p + 1);
    bounds.push(0);
    for t in 1..p {
        // Solve r(r+1)/2 = (t/p) * total for r.
        let target = total * t as f64 / p as f64;
        let r = ((2.0 * target + 0.25).sqrt() - 0.5).round() as usize;
        let r = r.clamp(*bounds.last().unwrap(), n); // ata-lint: allow(no-unwrap-in-lib): bounds starts non-empty (0 pushed above)
        bounds.push(r);
    }
    bounds.push(n);
    bounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference, Matrix};

    fn check(m: usize, n: usize, alpha: f64, bs: BlockSizes) {
        let a = gen::standard::<f64>(500 + m as u64 * 7 + n as u64, m, n);
        let mut c_fast = gen::standard::<f64>(42, n, n);
        let mut c_ref = c_fast.clone();
        syrk_ln_blocked(alpha, a.as_ref(), &mut c_fast.as_mut(), bs);
        reference::syrk_ln(alpha, a.as_ref(), &mut c_ref.as_mut());
        let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
        let diff = c_fast.max_abs_diff_lower(&c_ref);
        assert!(
            diff <= tol,
            "({m},{n}) syrk differs from oracle by {diff} > {tol}"
        );
        // Strict upper part untouched: both started from the same garbage.
        assert_eq!(
            c_fast.max_abs_diff(&c_ref),
            diff,
            "strict upper triangle must be untouched"
        );
    }

    #[test]
    fn matches_oracle_on_assorted_shapes() {
        for &(m, n) in &[
            (1, 1),
            (3, 2),
            (5, 7),
            (16, 16),
            (40, 33),
            (33, 80),
            (128, 35),
        ] {
            check(m, n, 1.0, BlockSizes::default());
        }
    }

    #[test]
    fn alpha_and_accumulation() {
        check(24, 24, 0.5, BlockSizes::default());
        check(24, 24, -3.0, BlockSizes::default());
    }

    #[test]
    fn degenerate_blocking() {
        check(17, 19, 1.0, BlockSizes::new(1, 1));
        check(17, 19, 1.0, BlockSizes::new(5, 4));
    }

    #[test]
    fn result_diagonal_is_nonnegative_for_alpha_one() {
        let a = gen::standard::<f64>(9, 30, 12);
        let mut c = Matrix::zeros(12, 12);
        syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
        for i in 0..12 {
            assert!(c[(i, i)] >= 0.0, "gram diagonal must be >= 0");
        }
    }

    #[test]
    fn partition_boundaries_are_monotone_and_cover() {
        for n in [0usize, 1, 7, 64, 1000] {
            for p in [1usize, 2, 3, 7, 16] {
                let b = triangle_row_partition(n, p);
                assert_eq!(b.len(), p + 1);
                assert_eq!(b[0], 0);
                assert_eq!(*b.last().unwrap(), n);
                assert!(b.windows(2).all(|w| w[0] <= w[1]));
            }
        }
    }

    #[test]
    fn partition_is_area_balanced() {
        let n = 1024;
        let p = 8;
        let b = triangle_row_partition(n, p);
        let area = |r0: usize, r1: usize| (r1 * (r1 + 1) - r0 * (r0 + 1)) / 2;
        let total = area(0, n);
        for w in b.windows(2) {
            let share = area(w[0], w[1]) as f64 / total as f64;
            assert!(
                (share - 1.0 / p as f64).abs() < 0.02,
                "unbalanced share {share}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "syrk_ln")]
    fn shape_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 4);
        let mut c = Matrix::<f64>::zeros(3, 3);
        syrk_ln(1.0, a.as_ref(), &mut c.as_mut());
    }

    #[test]
    fn beta_modes_match_reference() {
        let (m, n) = (18usize, 13usize);
        let a = gen::standard::<f64>(31, m, n);
        for beta in [0.0f64, 1.0, 0.5, -2.0] {
            let mut c = gen::standard::<f64>(32, n, n);
            let mut c_ref = c.clone();
            syrk_ln_beta(0.75, beta, a.as_ref(), &mut c.as_mut());
            // Reference: scale the lower triangle, then accumulate.
            for i in 0..n {
                for j in 0..=i {
                    c_ref[(i, j)] *= beta;
                }
            }
            reference::syrk_ln(0.75, a.as_ref(), &mut c_ref.as_mut());
            let tol = ata_mat::ops::product_tol::<f64>(m.max(n), n, m as f64);
            assert!(
                c.max_abs_diff_lower(&c_ref) <= tol,
                "beta={beta}: diff {} > {tol}",
                c.max_abs_diff_lower(&c_ref)
            );
            // Strict upper untouched for every beta.
            assert_eq!(c.max_abs_diff(&c_ref), c.max_abs_diff_lower(&c_ref));
        }
    }

    #[test]
    fn beta_scaling_applies_even_without_rows() {
        // BLAS semantics: k = 0 still scales C by beta.
        let a = Matrix::<f64>::zeros(0, 4);
        let mut c = Matrix::from_fn(4, 4, |_, _| 3.0);
        syrk_ln_beta(1.0, 0.5, a.as_ref(), &mut c.as_mut());
        for i in 0..4 {
            for j in 0..4 {
                let expect = if j <= i { 1.5 } else { 3.0 };
                assert_eq!(c[(i, j)], expect);
            }
        }
    }

    #[test]
    fn beta_scaling_op_counts_are_exact() {
        use ata_mat::tracked::{measure, Tracked};
        let (m, n) = (9usize, 7usize);
        let a = gen::standard::<Tracked>(5, m, n);
        let baseline = {
            let mut c = Matrix::<Tracked>::zeros(n, n);
            let (_, ops) = measure(|| syrk_ln(Tracked::ONE, a.as_ref(), &mut c.as_mut()));
            ops
        };
        // beta = 1: identical to the plain accumulate.
        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, ops1) = measure(|| {
            syrk_ln_beta(Tracked::ONE, Tracked::ONE, a.as_ref(), &mut c.as_mut());
        });
        assert_eq!(ops1.muls, baseline.muls);
        assert_eq!(ops1.additive(), baseline.additive());
        // beta = 0: zeroing is assignment, no arithmetic.
        let mut c = Matrix::<Tracked>::zeros(n, n);
        let (_, ops0) = measure(|| {
            syrk_ln_beta(Tracked::ONE, Tracked::ZERO, a.as_ref(), &mut c.as_mut());
        });
        assert_eq!(ops0.muls, baseline.muls);
        assert_eq!(ops0.additive(), baseline.additive());
        // General beta: exactly n(n+1)/2 extra multiplications.
        let beta = Tracked::ONE + Tracked::ONE;
        let extra_muls = {
            let mut c = Matrix::<Tracked>::zeros(n, n);
            let (_, ops) = measure(|| {
                syrk_ln_beta(Tracked::ONE, beta, a.as_ref(), &mut c.as_mut());
            });
            ops.muls - baseline.muls
        };
        assert_eq!(extra_muls, (n * (n + 1) / 2) as u64);
    }
}
