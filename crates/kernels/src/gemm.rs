//! Cache-blocked `C += alpha * A^T B` — the workspace's `?gemm('T','N')`.
//!
//! The product of a transposed left operand is the only general product
//! the paper's algorithms need (Algorithm 1 line 11, Algorithm 2 line 3),
//! and it is the hard case for row-major storage: naive column access of
//! `A` misses cache on every element. The scheme here never touches `A`
//! column-wise:
//!
//! For each row `l` of `A` and `B`, the update
//! `C[i, :] += (alpha * A[l, i]) * B[l, :]` is a contiguous `axpy`. Rows
//! `l` stream once per `(MC, NC)` tile of `C`, the tile itself stays hot
//! in L1/L2, and the inner loop is unit-stride over `NC` elements — the
//! autovectorizer turns it into packed FMAs.
//!
//! Tiles default to `MC = 32`, `NC = 256` (a 64 KiB f64 C-tile) and can be
//! overridden through [`BlockSizes`] for the blocking-ablation bench.

use ata_mat::{MatMut, MatRef, Scalar};

/// Loop-blocking parameters of [`gemm_tn_blocked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSizes {
    /// Rows of the C tile (columns of `A` handled per sweep).
    pub mc: usize,
    /// Columns of the C tile (columns of `B` handled per sweep).
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        Self { mc: 32, nc: 256 }
    }
}

impl BlockSizes {
    /// Validated constructor.
    ///
    /// # Panics
    /// If either block size is zero.
    pub fn new(mc: usize, nc: usize) -> Self {
        assert!(mc > 0 && nc > 0, "block sizes must be positive");
        Self { mc, nc }
    }
}

/// `C += alpha * A^T B` — the workspace's default `?gemm('T','N')`.
///
/// Dispatches to the packed register-blocked engine
/// ([`crate::micro::gemm_tn_micro`]) with the measured per-scalar
/// blocking from [`crate::calibrate`]; tiny products (and builds with
/// `ATA_MICRO=0`) fall back to [`gemm_tn_blocked`] — see
/// [`crate::micro::selected_path`].
///
/// Shapes: `A: m x n`, `B: m x k`, `C: n x k`.
///
/// # Panics
/// On inconsistent shapes.
#[inline]
pub fn gemm_tn<T: Scalar>(alpha: T, a: MatRef<'_, T>, b: MatRef<'_, T>, c: &mut MatMut<'_, T>) {
    let (m, n) = a.shape();
    let k = b.cols();
    match crate::micro::selected_path::<T>(m, n, k) {
        crate::micro::KernelPath::Micro => {
            let cfg = crate::micro::KernelConfig::for_scalar::<T>();
            crate::micro::gemm_tn_micro(alpha, a, b, c, &cfg);
        }
        crate::micro::KernelPath::Blocked => gemm_tn_blocked(alpha, a, b, c, BlockSizes::default()),
    }
}

/// `C += alpha * A^T B` with explicit blocking parameters.
///
/// # Panics
/// On inconsistent shapes.
pub fn gemm_tn_blocked<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
    bs: BlockSizes,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "gemm_tn: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "gemm_tn: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let alpha_is_one = alpha == T::ONE;

    let mut jc = 0;
    while jc < k {
        let jn = (jc + bs.nc).min(k);
        let mut ic = 0;
        while ic < n {
            let im = (ic + bs.mc).min(n);
            // C tile rows ic..im, cols jc..jn accumulate while A and B rows
            // stream through once. The `alpha == 1` unswitch keeps the hot
            // path multiplication-exact (important both for speed and for
            // the measured-flop tests in `ata-core::analysis`).
            for l in 0..m {
                let arow = &a.row(l)[ic..im];
                let brow = &b.row(l)[jc..jn];
                for (i, &ali) in arow.iter().enumerate() {
                    let s = if alpha_is_one { ali } else { alpha * ali };
                    let crow = &mut c.row_mut(ic + i)[jc..jn];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += s * bv;
                    }
                }
            }
            ic = im;
        }
        jc = jn;
    }
}

/// Unblocked rank-1-update variant kept for the blocking ablation bench;
/// semantically identical to [`gemm_tn`].
pub fn gemm_tn_unblocked<T: Scalar>(
    alpha: T,
    a: MatRef<'_, T>,
    b: MatRef<'_, T>,
    c: &mut MatMut<'_, T>,
) {
    let (m, n) = a.shape();
    let (mb, k) = b.shape();
    assert_eq!(m, mb, "gemm_tn: A is {m}x{n} but B has {mb} rows");
    assert_eq!(
        c.shape(),
        (n, k),
        "gemm_tn: C must be {n}x{k}, got {:?}",
        c.shape()
    );
    let alpha_is_one = alpha == T::ONE;
    for l in 0..m {
        let arow = a.row(l);
        let brow = b.row(l);
        for (i, &av) in arow.iter().enumerate() {
            let s = if alpha_is_one { av } else { alpha * av };
            let crow = c.row_mut(i);
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += s * bv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference, Matrix};

    fn check_against_oracle(m: usize, n: usize, k: usize, alpha: f64, bs: BlockSizes) {
        let a = gen::standard::<f64>(1000 + m as u64, m, n);
        let b = gen::standard::<f64>(2000 + k as u64, m, k);
        let mut c_fast = gen::standard::<f64>(3000, n, k);
        let mut c_ref = c_fast.clone();
        gemm_tn_blocked(alpha, a.as_ref(), b.as_ref(), &mut c_fast.as_mut(), bs);
        reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        let tol = ata_mat::ops::product_tol::<f64>(m.max(n), k, m as f64);
        let diff = c_fast.max_abs_diff(&c_ref);
        assert!(
            diff <= tol,
            "({m},{n},{k}) blocked gemm differs from oracle by {diff} > {tol}"
        );
    }

    #[test]
    fn matches_oracle_on_assorted_shapes() {
        for &(m, n, k) in &[
            (1, 1, 1),
            (2, 3, 4),
            (7, 5, 3),
            (16, 16, 16),
            (33, 31, 29), // primes exceed one MC block
            (64, 1, 64),
            (1, 64, 64),
            (100, 37, 300), // k spans multiple NC tiles
        ] {
            check_against_oracle(m, n, k, 1.0, BlockSizes::default());
        }
    }

    #[test]
    fn alpha_scaling_and_accumulation() {
        check_against_oracle(20, 20, 20, -2.5, BlockSizes::default());
    }

    #[test]
    fn tiny_blocks_still_correct() {
        check_against_oracle(19, 23, 17, 1.0, BlockSizes::new(1, 1));
        check_against_oracle(19, 23, 17, 1.0, BlockSizes::new(2, 3));
    }

    #[test]
    fn unblocked_matches_blocked() {
        let a = gen::standard::<f64>(5, 24, 18);
        let b = gen::standard::<f64>(6, 24, 20);
        let mut c1 = Matrix::zeros(18, 20);
        let mut c2 = Matrix::zeros(18, 20);
        gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c1.as_mut());
        gemm_tn_unblocked(1.0, a.as_ref(), b.as_ref(), &mut c2.as_mut());
        assert!(c1.max_abs_diff(&c2) < 1e-12);
    }

    #[test]
    fn works_on_strided_views() {
        // Multiply quadrants of a larger matrix without copying.
        let big = gen::standard::<f64>(9, 8, 8);
        let (a11, _, _, a22) = big.as_ref().quad_split();
        let mut c = Matrix::zeros(4, 4);
        gemm_tn(1.0, a11, a22, &mut c.as_mut());
        let mut c_ref = Matrix::zeros(4, 4);
        reference::gemm_tn(1.0, a11, a22, &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-12);
    }

    #[test]
    fn f32_path() {
        let a = gen::standard::<f32>(11, 30, 20);
        let b = gen::standard::<f32>(12, 30, 25);
        let mut c = Matrix::<f32>::zeros(20, 25);
        gemm_tn(2.0f32, a.as_ref(), b.as_ref(), &mut c.as_mut());
        let mut c_ref = Matrix::<f32>::zeros(20, 25);
        reference::gemm_tn(2.0f32, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert!(c.max_abs_diff(&c_ref) < 1e-3);
    }

    #[test]
    #[should_panic(expected = "gemm_tn")]
    fn dimension_mismatch_panics() {
        let a = Matrix::<f64>::zeros(3, 2);
        let b = Matrix::<f64>::zeros(4, 2);
        let mut c = Matrix::<f64>::zeros(2, 2);
        gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
    }

    #[test]
    fn zero_sized_edges() {
        let a = Matrix::<f64>::zeros(0, 4);
        let b = Matrix::<f64>::zeros(0, 5);
        let mut c = Matrix::from_fn(4, 5, |_, _| 1.0);
        gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut c.as_mut());
        assert!(c.as_slice().iter().all(|&x| x == 1.0));
    }
}
