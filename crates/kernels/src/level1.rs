//! Level-1 (vector) kernels: the `?axpy` family of the paper plus the
//! small helpers the examples need.
//!
//! All functions operate on contiguous slices — matrix rows in this
//! workspace are always contiguous, so the recursive algorithms express
//! their block sums as row-wise `axpy` calls, exactly like the paper's
//! use of BLAS `?axpy` for "sums between matrices of discordant size".

use ata_mat::Scalar;

/// `y += alpha * x` over the common prefix of `x` and `y`.
///
/// Operating on the *common prefix* (rather than requiring equal lengths)
/// is what implements the paper's virtual zero-padding: adding a block
/// whose last column was "peeled off" simply means the tail of `y`
/// receives `+ alpha * 0`, i.e. nothing.
///
/// `alpha = ±1` takes a multiplication-free path — Strassen's block
/// combinations only ever scale by `±1` or `±alpha`, so this both speeds
/// the hot path up and makes measured multiplication counts match the
/// paper's closed forms exactly (see `ata-core`'s `analysis` module).
#[inline]
pub fn axpy<T: Scalar>(alpha: T, x: &[T], y: &mut [T]) {
    let len = x.len().min(y.len());
    let (x, y) = (&x[..len], &mut y[..len]);
    if alpha == T::ONE {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += *xi;
        }
    } else if alpha == T::NEG_ONE {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= *xi;
        }
    } else {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * *xi;
        }
    }
}

/// `y = alpha * x + beta * y` over the common prefix (generalized axpby).
#[inline]
pub fn axpby<T: Scalar>(alpha: T, x: &[T], beta: T, y: &mut [T]) {
    let len = x.len().min(y.len());
    let (x, y) = (&x[..len], &mut y[..len]);
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = alpha * *xi + beta * *yi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scal<T: Scalar>(alpha: T, x: &mut [T]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// Dot product over the common prefix.
#[inline]
pub fn dot<T: Scalar>(x: &[T], y: &[T]) -> T {
    let len = x.len().min(y.len());
    let mut acc = T::ZERO;
    for (xi, yi) in x[..len].iter().zip(&y[..len]) {
        acc += *xi * *yi;
    }
    acc
}

/// Euclidean norm, accumulated in `f64` for robustness.
#[inline]
pub fn nrm2<T: Scalar>(x: &[T]) -> f64 {
    x.iter()
        .map(|v| {
            let f = v.to_f64();
            f * f
        })
        .sum::<f64>()
        .sqrt()
}

/// `y = x` over the common prefix; the tail of `y` is zero-filled.
///
/// This is the copy analogue of the padded [`axpy`]: used when a smaller
/// sub-block must be placed into a larger workspace slot.
#[inline]
pub fn copy_padded<T: Scalar>(x: &[T], y: &mut [T]) {
    let len = x.len().min(y.len());
    y[..len].copy_from_slice(&x[..len]);
    for t in &mut y[len..] {
        *t = T::ZERO;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_equal_lengths() {
        let x = [1.0f64, 2.0, 3.0];
        let mut y = [10.0f64, 20.0, 30.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [12.0, 24.0, 36.0]);
    }

    #[test]
    fn axpy_shorter_x_simulates_zero_padding() {
        let x = [1.0f64];
        let mut y = [10.0f64, 20.0];
        axpy(1.0, &x, &mut y);
        assert_eq!(y, [11.0, 20.0], "tail of y must be unchanged");
    }

    #[test]
    fn axpy_shorter_y_truncates() {
        let x = [1.0f64, 2.0];
        let mut y = [10.0f64];
        axpy(1.0, &x, &mut y);
        assert_eq!(y, [11.0]);
    }

    #[test]
    fn axpby_combines() {
        let x = [1.0f64, 1.0];
        let mut y = [2.0f64, 4.0];
        axpby(3.0, &x, 0.5, &mut y);
        assert_eq!(y, [4.0, 5.0]);
    }

    #[test]
    fn scal_and_dot_and_nrm2() {
        let mut x = [3.0f32, 4.0];
        scal(2.0, &mut x);
        assert_eq!(x, [6.0, 8.0]);
        assert_eq!(dot(&x, &x), 100.0);
        assert!((nrm2(&x) - 10.0).abs() < 1e-6);
    }

    #[test]
    fn dot_empty_is_zero() {
        let x: [f64; 0] = [];
        assert_eq!(dot(&x, &x), 0.0);
    }

    #[test]
    fn copy_padded_zero_fills_tail() {
        let x = [1.0f64, 2.0];
        let mut y = [9.0f64; 4];
        copy_padded(&x, &mut y);
        assert_eq!(y, [1.0, 2.0, 0.0, 0.0]);
    }
}
