//! Path-parity properties for the explicit-SIMD microkernel dispatch
//! (`ata_kernels::simd` + the `MicroPath` plumbing in
//! `ata_kernels::micro`):
//!
//! * `portable` and `scalar` are **bit-for-bit** identical — both run the
//!   same unfused per-element accumulation order, so forcing either path
//!   must produce the same bits on every shape, dtype and view.
//! * `intrinsic` is fused (FMA rounds once per multiply-add), so it is
//!   compared against `portable` within the analytic product tolerance,
//!   and must be deterministic run-to-run.
//! * The op-counting `Tracked` scalar has no intrinsic kernels: all three
//!   forced paths must produce the same bits *and* the same op ledger.

use ata_kernels::micro::{
    gemm_tn_micro_path, micro_path_for, syrk_ln_micro_path, KernelConfig, MicroPath,
};
use ata_kernels::simd;
use ata_mat::tracked::{measure, Tracked};
use ata_mat::{gen, Matrix};
use proptest::prelude::*;

const PRIMES: [usize; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Map a generated `(class, m0, n0, k0, p)` tuple onto a stress shape:
/// balanced, prime-sided, very tall (`m >> n`), or very wide (`n >> m`).
fn shape(class: usize, m0: usize, n0: usize, k0: usize, p: usize) -> (usize, usize, usize) {
    match class % 4 {
        0 => (m0, n0, k0),
        1 => (PRIMES[p % 12], PRIMES[(p + 5) % 12], PRIMES[(p + 9) % 12]),
        2 => (16 * m0, 1 + n0 / 8, 1 + k0 / 8), // m >> n, k
        _ => (1 + m0 / 8, 12 * n0, k0),         // n >> m
    }
}

/// A deliberately tiny blocking config (forces multiple KC/MC/NC blocks
/// and ragged edge tiles on small shapes) or the per-scalar default.
fn config(tiny: bool, mr: usize, nr: usize) -> KernelConfig {
    if tiny {
        KernelConfig::new(mr, nr, 8, 12, 16)
    } else {
        KernelConfig::new(mr, nr, 64, 32, 48)
    }
}

fn tol64(m: usize, n: usize) -> f64 {
    ata_mat::ops::product_tol::<f64>(m, n, m as f64) * 4.0
}

fn tol32(m: usize, n: usize) -> f64 {
    ata_mat::ops::product_tol::<f32>(m, n, m as f64) * 4.0
}

/// Bitwise equality for f64 matrices (stricter than `max_abs_diff == 0`:
/// distinguishes `-0.0` from `0.0` and would catch NaN payload drift).
fn bits_eq_f64(a: &Matrix<f64>, b: &Matrix<f64>) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn bits_eq_f32(a: &Matrix<f32>, b: &Matrix<f32>) -> bool {
    a.shape() == b.shape()
        && a.as_slice()
            .iter()
            .zip(b.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn portable_and_scalar_gemm_are_bit_identical_f64(
        class in 0usize..4,
        m0 in 1usize..48,
        n0 in 1usize..48,
        k0 in 1usize..48,
        alpha_neg in 0usize..2,
    ) {
        let (m, n, k) = shape(class, m0, n0, k0, m0 + n0);
        let alpha = if alpha_neg == 1 { -1.0 } else { 1.0 };
        let a = gen::standard::<f64>(m as u64 * 7 + n as u64, m, n);
        let b = gen::standard::<f64>(k as u64 * 13 + 1, m, k);
        let seed_c = gen::standard::<f64>(3, n, k);
        let cfg = config(class % 2 == 0, 4, 8);
        let mut c_portable = seed_c.clone();
        let mut c_scalar = seed_c;
        gemm_tn_micro_path(
            MicroPath::Portable, alpha, a.as_ref(), b.as_ref(), &mut c_portable.as_mut(), &cfg,
        );
        gemm_tn_micro_path(
            MicroPath::Scalar, alpha, a.as_ref(), b.as_ref(), &mut c_scalar.as_mut(), &cfg,
        );
        prop_assert!(bits_eq_f64(&c_portable, &c_scalar));
    }

    #[test]
    fn portable_and_scalar_gemm_are_bit_identical_f32(
        class in 0usize..4,
        m0 in 1usize..40,
        n0 in 1usize..40,
        k0 in 1usize..40,
    ) {
        let (m, n, k) = shape(class, m0, n0, k0, m0 + 3);
        let a = gen::standard::<f32>(2 + m as u64, m, n);
        let b = gen::standard::<f32>(4 + k as u64, m, k);
        let seed_c = gen::standard::<f32>(9, n, k);
        let cfg = config(class % 2 == 1, 4, 16);
        let mut c_portable = seed_c.clone();
        let mut c_scalar = seed_c;
        gemm_tn_micro_path(
            MicroPath::Portable, 1.0f32, a.as_ref(), b.as_ref(), &mut c_portable.as_mut(), &cfg,
        );
        gemm_tn_micro_path(
            MicroPath::Scalar, 1.0f32, a.as_ref(), b.as_ref(), &mut c_scalar.as_mut(), &cfg,
        );
        prop_assert!(bits_eq_f32(&c_portable, &c_scalar));
    }

    #[test]
    fn portable_and_scalar_syrk_are_bit_identical(
        class in 0usize..4,
        m0 in 1usize..48,
        n0 in 1usize..48,
    ) {
        let (m, n, _) = shape(class, m0, n0, 1, n0 + 1);
        let a = gen::standard::<f64>(m as u64 * 3 + n as u64, m, n);
        let seed_c = gen::standard::<f64>(11, n, n);
        let cfg = config(class % 2 == 0, 4, 8);
        let mut c_portable = seed_c.clone();
        let mut c_scalar = seed_c;
        syrk_ln_micro_path(
            MicroPath::Portable, 1.0, a.as_ref(), &mut c_portable.as_mut(), &cfg,
        );
        syrk_ln_micro_path(
            MicroPath::Scalar, 1.0, a.as_ref(), &mut c_scalar.as_mut(), &cfg,
        );
        prop_assert!(bits_eq_f64(&c_portable, &c_scalar));
    }

    #[test]
    fn portable_and_scalar_agree_on_strided_quad_views(
        rows in 2usize..48,
        cols in 2usize..48,
        seed in 0u64..500,
    ) {
        // Quadrants of a larger matrix: every operand is a strided view,
        // so packing (including the parallel B-pack) must reproduce the
        // same panels on both paths.
        let big_a = gen::standard::<f64>(seed, rows, cols);
        let big_b = gen::standard::<f64>(seed + 1, rows, cols);
        let (_, _, a21, _) = big_a.as_ref().quad_split();
        let (_, _, b21, b22) = big_b.as_ref().quad_split();
        let cfg = config(true, 4, 8);
        let (_, n) = a21.shape();
        for b in [b21, b22] {
            let k = b.cols();
            let mut c_portable = Matrix::zeros(n, k);
            let mut c_scalar = Matrix::zeros(n, k);
            gemm_tn_micro_path(
                MicroPath::Portable, 1.0, a21, b, &mut c_portable.as_mut(), &cfg,
            );
            gemm_tn_micro_path(
                MicroPath::Scalar, 1.0, a21, b, &mut c_scalar.as_mut(), &cfg,
            );
            prop_assert!(bits_eq_f64(&c_portable, &c_scalar));
        }
    }

    #[test]
    fn intrinsic_gemm_matches_portable_within_tolerance_f64(
        class in 0usize..4,
        m0 in 1usize..48,
        n0 in 1usize..48,
        k0 in 1usize..48,
    ) {
        // On machines without FMA the intrinsic path falls through to the
        // portable kernels, so this property degenerates to bit equality
        // there — still a valid (stronger) instance of the bound.
        let (m, n, k) = shape(class, m0, n0, k0, m0 + n0);
        let a = gen::standard::<f64>(m as u64 * 5 + 1, m, n);
        let b = gen::standard::<f64>(k as u64 * 3 + 2, m, k);
        let seed_c = gen::standard::<f64>(7, n, k);
        let cfg = config(class % 2 == 0, 4, 8);
        let mut c_fused = seed_c.clone();
        let mut c_ref = seed_c;
        gemm_tn_micro_path(
            MicroPath::Intrinsic, 1.0, a.as_ref(), b.as_ref(), &mut c_fused.as_mut(), &cfg,
        );
        gemm_tn_micro_path(
            MicroPath::Portable, 1.0, a.as_ref(), b.as_ref(), &mut c_ref.as_mut(), &cfg,
        );
        prop_assert!(c_fused.max_abs_diff(&c_ref) <= tol64(m.max(n), n.max(k)));
    }

    #[test]
    fn intrinsic_gemm_matches_portable_within_tolerance_f32(
        class in 0usize..4,
        m0 in 1usize..40,
        n0 in 1usize..40,
        k0 in 1usize..40,
    ) {
        let (m, n, k) = shape(class, m0, n0, k0, k0 + 2);
        let a = gen::standard::<f32>(m as u64 + 17, m, n);
        let b = gen::standard::<f32>(k as u64 + 19, m, k);
        let seed_c = gen::standard::<f32>(13, n, k);
        let cfg = config(class % 2 == 1, 4, 16);
        let mut c_fused = seed_c.clone();
        let mut c_ref = seed_c;
        gemm_tn_micro_path(
            MicroPath::Intrinsic, 1.0f32, a.as_ref(), b.as_ref(), &mut c_fused.as_mut(), &cfg,
        );
        gemm_tn_micro_path(
            MicroPath::Portable, 1.0f32, a.as_ref(), b.as_ref(), &mut c_ref.as_mut(), &cfg,
        );
        prop_assert!(c_fused.max_abs_diff(&c_ref) <= tol32(m.max(n), n.max(k)));
    }

    #[test]
    fn intrinsic_syrk_matches_portable_and_spares_upper(
        class in 0usize..4,
        m0 in 1usize..48,
        n0 in 1usize..48,
    ) {
        let (m, n, _) = shape(class, m0, n0, 1, m0 + 5);
        let a = gen::standard::<f64>(m as u64 * 11 + 3, m, n);
        let seed_c = gen::standard::<f64>(21, n, n);
        let cfg = config(class % 2 == 0, 4, 8);
        let mut c_fused = seed_c.clone();
        let mut c_ref = seed_c;
        syrk_ln_micro_path(
            MicroPath::Intrinsic, 1.0, a.as_ref(), &mut c_fused.as_mut(), &cfg,
        );
        syrk_ln_micro_path(
            MicroPath::Portable, 1.0, a.as_ref(), &mut c_ref.as_mut(), &cfg,
        );
        let diff = c_fused.max_abs_diff_lower(&c_ref);
        prop_assert!(diff <= tol64(m.max(n), n));
        // The straddle-tile scratch accumulate must never leak writes
        // into the strict upper triangle.
        prop_assert_eq!(c_fused.max_abs_diff(&c_ref), diff);
    }

    #[test]
    fn intrinsic_path_is_deterministic_across_runs(
        m in 1usize..64,
        n in 1usize..64,
        k in 1usize..64,
    ) {
        let a = gen::standard::<f64>(m as u64 + 29, m, n);
        let b = gen::standard::<f64>(k as u64 + 31, m, k);
        let cfg = config(false, 4, 8);
        let mut first = Matrix::zeros(n, k);
        let mut second = Matrix::zeros(n, k);
        gemm_tn_micro_path(
            MicroPath::Intrinsic, 1.0, a.as_ref(), b.as_ref(), &mut first.as_mut(), &cfg,
        );
        gemm_tn_micro_path(
            MicroPath::Intrinsic, 1.0, a.as_ref(), b.as_ref(), &mut second.as_mut(), &cfg,
        );
        prop_assert!(bits_eq_f64(&first, &second));
    }

    #[test]
    fn tracked_paths_agree_bitwise_with_equal_op_ledgers(
        m in 1usize..24,
        n in 1usize..24,
        k in 1usize..24,
    ) {
        // `Tracked` has no intrinsic kernels, so a forced-intrinsic run
        // must fall through to the portable kernels: same bits, same op
        // ledger as the portable and scalar paths. This is the contract
        // that keeps Strassen op-count validation independent of the ISA
        // the validating host happens to have.
        let a = gen::standard::<Tracked>(1, m, n);
        let b = gen::standard::<Tracked>(2, m, k);
        let cfg = config(true, 4, 8);
        let mut ledgers = Vec::new();
        let mut results = Vec::new();
        for path in [MicroPath::Intrinsic, MicroPath::Portable, MicroPath::Scalar] {
            let mut c = Matrix::<Tracked>::zeros(n, k);
            let (_, ops) = measure(|| {
                gemm_tn_micro_path(
                    path, Tracked(1.0), a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg,
                );
            });
            ledgers.push(ops);
            results.push(c);
        }
        prop_assert_eq!(ledgers[0], ledgers[1]);
        prop_assert_eq!(ledgers[1], ledgers[2]);
        prop_assert_eq!(ledgers[0].muls, (m * n * k) as u64);
        prop_assert_eq!(results[0].max_abs_diff(&results[1]), 0.0);
        prop_assert_eq!(results[1].max_abs_diff(&results[2]), 0.0);
    }
}

#[test]
fn dispatch_is_coherent_with_the_detected_isa() {
    // The one-time detection result, the kernel-availability probe and
    // the per-scalar menu must all tell the same story.
    let isa = simd::detected();
    assert_eq!(isa, simd::detected(), "detection is cached and stable");
    match isa {
        simd::Isa::Fma => {
            assert!(simd::has_kernels::<f64>());
            assert!(simd::has_kernels::<f32>());
            assert_eq!(simd::fma_menu::<f64>(), Some(simd::FMA_MENU_F64));
            assert_eq!(simd::fma_menu::<f32>(), Some(simd::FMA_MENU_F32));
        }
        simd::Isa::Generic => {
            assert!(!simd::has_kernels::<f64>());
            assert!(!simd::has_kernels::<f32>());
            assert_eq!(simd::fma_menu::<f64>(), None);
        }
    }
    // Tracked never has fused kernels and never resolves to Intrinsic,
    // whatever the host ISA or ATA_MICRO say.
    assert!(!simd::has_kernels::<Tracked>());
    assert_eq!(simd::fma_menu::<Tracked>(), None);
    assert_ne!(micro_path_for::<Tracked>(), MicroPath::Intrinsic);
}
