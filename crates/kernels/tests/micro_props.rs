//! Property-based coverage for the packed microkernel engine
//! (`ata_kernels::micro`): oracle agreement on adversarial shapes,
//! strided `quad_split` views, both float precisions, and exact
//! operation-count parity with the pre-engine reference kernels under
//! the op-counting `Tracked` scalar.

use ata_kernels::gemm::{gemm_tn_blocked, BlockSizes};
use ata_kernels::micro::{gemm_tn_micro, syrk_ln_micro, KernelConfig};
use ata_kernels::syrk::syrk_ln_blocked;
use ata_mat::tracked::{measure, Tracked};
use ata_mat::{gen, reference, Matrix, Scalar};
use proptest::prelude::*;

const PRIMES: [usize; 12] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37];

/// Map a generated `(class, m0, n0, k0, p)` tuple onto a stress shape:
/// balanced, prime-sided, very tall (`m >> n`), or very wide (`n >> m`).
fn shape(class: usize, m0: usize, n0: usize, k0: usize, p: usize) -> (usize, usize, usize) {
    match class % 4 {
        0 => (m0, n0, k0),
        1 => (PRIMES[p % 12], PRIMES[(p + 5) % 12], PRIMES[(p + 9) % 12]),
        2 => (16 * m0, 1 + n0 / 8, 1 + k0 / 8), // m >> n, k
        _ => (1 + m0 / 8, 12 * n0, k0),         // n >> m
    }
}

/// The two blocking configs the properties alternate between: the
/// measured default and a deliberately tiny one that forces every loop
/// in the nest (multiple KC/MC/NC blocks, ragged edge tiles) even on
/// small generated shapes.
fn config<T: Scalar>(tiny: bool) -> KernelConfig {
    if tiny {
        KernelConfig::new(4, 4, 8, 12, 16)
    } else {
        KernelConfig::for_scalar::<T>()
    }
}

fn tol(m: usize, n: usize, eps_scale: f64) -> f64 {
    ata_mat::ops::product_tol::<f64>(m, n, m as f64) * eps_scale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn micro_gemm_matches_oracle_on_stress_shapes(
        class in 0usize..4,
        m0 in 1usize..48,
        n0 in 1usize..48,
        k0 in 1usize..48,
    ) {
        let (m, n, k) = shape(class, m0, n0, k0, m0 + n0);
        let a = gen::standard::<f64>(m as u64 * 7 + n as u64, m, n);
        let b = gen::standard::<f64>(k as u64 * 13 + 1, m, k);
        let mut fast = gen::standard::<f64>(3, n, k);
        let mut slow = fast.clone();
        let cfg = config::<f64>(class % 2 == 0);
        gemm_tn_micro(1.0, a.as_ref(), b.as_ref(), &mut fast.as_mut(), &cfg);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        prop_assert!(fast.max_abs_diff(&slow) <= tol(m.max(n), n.max(k), 2.0));
    }

    #[test]
    fn micro_gemm_alpha_accumulates_like_oracle(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        alpha in -3.0f64..3.0,
    ) {
        let a = gen::standard::<f64>(11 + m as u64, m, n);
        let b = gen::standard::<f64>(17 + k as u64, m, k);
        let mut fast = gen::standard::<f64>(5, n, k);
        let mut slow = fast.clone();
        let cfg = config::<f64>(true);
        gemm_tn_micro(alpha, a.as_ref(), b.as_ref(), &mut fast.as_mut(), &cfg);
        reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        prop_assert!(fast.max_abs_diff(&slow) <= tol(m.max(n), n.max(k), 4.0));
    }

    #[test]
    fn micro_gemm_on_strided_quad_views(
        rows in 2usize..48,
        cols in 2usize..48,
        seed in 0u64..500,
        tiny in 0usize..2,
    ) {
        // Multiply quadrants of a larger matrix in place: every operand
        // is a strided view, the case packing must handle without
        // touching out-of-view memory.
        let big_a = gen::standard::<f64>(seed, rows, cols);
        let big_b = gen::standard::<f64>(seed + 1, rows, cols);
        let (_, _, a21, _) = big_a.as_ref().quad_split();
        let (_, _, b21, b22) = big_b.as_ref().quad_split();
        let cfg = config::<f64>(tiny == 1);
        let (m, n) = a21.shape();
        let k = b21.cols();
        let mut fast = Matrix::zeros(n, k);
        let mut slow = Matrix::zeros(n, k);
        gemm_tn_micro(1.0, a21, b21, &mut fast.as_mut(), &cfg);
        reference::gemm_tn(1.0, a21, b21, &mut slow.as_mut());
        prop_assert!(fast.max_abs_diff(&slow) <= tol(m.max(n), n.max(k), 2.0));
        // And with mismatched quadrants (different column offsets).
        let k2 = b22.cols();
        let mut fast2 = Matrix::zeros(n, k2);
        let mut slow2 = Matrix::zeros(n, k2);
        gemm_tn_micro(1.0, a21, b22, &mut fast2.as_mut(), &cfg);
        reference::gemm_tn(1.0, a21, b22, &mut slow2.as_mut());
        prop_assert!(fast2.max_abs_diff(&slow2) <= tol(m.max(n), n.max(k2), 2.0));
    }

    #[test]
    fn micro_gemm_f32_path(
        m in 1usize..40,
        n in 1usize..40,
        k in 1usize..40,
        tiny in 0usize..2,
    ) {
        let a = gen::standard::<f32>(2 + m as u64, m, n);
        let b = gen::standard::<f32>(4 + k as u64, m, k);
        let mut fast = Matrix::<f32>::zeros(n, k);
        let mut slow = Matrix::<f32>::zeros(n, k);
        let cfg = config::<f32>(tiny == 1);
        gemm_tn_micro(1.0f32, a.as_ref(), b.as_ref(), &mut fast.as_mut(), &cfg);
        reference::gemm_tn(1.0f32, a.as_ref(), b.as_ref(), &mut slow.as_mut());
        let tol32 = ata_mat::ops::product_tol::<f32>(m.max(n), n.max(k), m as f64) * 2.0;
        prop_assert!((fast.max_abs_diff(&slow)) <= tol32);
    }

    #[test]
    fn micro_syrk_matches_oracle_and_spares_upper(
        class in 0usize..4,
        m0 in 1usize..48,
        n0 in 1usize..48,
    ) {
        let (m, n, _) = shape(class, m0, n0, 1, m0 + 3);
        let a = gen::standard::<f64>(m as u64 * 3 + n as u64, m, n);
        let mut fast = gen::standard::<f64>(9, n, n);
        let mut slow = fast.clone();
        let cfg = config::<f64>(class % 2 == 1);
        syrk_ln_micro(1.0, a.as_ref(), &mut fast.as_mut(), &cfg);
        reference::syrk_ln(1.0, a.as_ref(), &mut slow.as_mut());
        let diff = fast.max_abs_diff_lower(&slow);
        prop_assert!(diff <= tol(m.max(n), n, 2.0));
        // Strict upper entries started as identical garbage in both and
        // must remain untouched by both.
        prop_assert_eq!(fast.max_abs_diff(&slow), diff);
    }

    #[test]
    fn tracked_op_counts_match_the_reference_kernels(
        m in 1usize..28,
        n in 1usize..28,
        k in 1usize..28,
    ) {
        // Exact parity on the alpha = 1 hot path (the one every Strassen
        // product and every measured-flop validation runs): the packed
        // engine must cost precisely the same multiplications and
        // additions as the pre-engine blocked kernel, on any shape.
        let a = gen::standard::<Tracked>(1, m, n);
        let b = gen::standard::<Tracked>(2, m, k);
        let cfg = config::<Tracked>(true);

        let mut c_micro = Matrix::<Tracked>::zeros(n, k);
        let (_, micro_ops) = measure(|| {
            gemm_tn_micro(Tracked(1.0), a.as_ref(), b.as_ref(), &mut c_micro.as_mut(), &cfg);
        });
        let mut c_ref = Matrix::<Tracked>::zeros(n, k);
        let (_, ref_ops) = measure(|| {
            gemm_tn_blocked(
                Tracked(1.0),
                a.as_ref(),
                b.as_ref(),
                &mut c_ref.as_mut(),
                BlockSizes::default(),
            );
        });
        prop_assert_eq!(micro_ops, ref_ops);
        prop_assert_eq!(micro_ops.muls, (m * n * k) as u64);

        // And the results are bit-identical only up to reassociation —
        // but on the op ledger both paths are pure mul/add.
        prop_assert_eq!(micro_ops.subs, 0);
        prop_assert_eq!(micro_ops.negs, 0);
    }

    #[test]
    fn tracked_syrk_op_counts_match_the_reference_kernel(
        m in 1usize..24,
        n in 1usize..24,
    ) {
        let a = gen::standard::<Tracked>(5, m, n);
        let cfg = config::<Tracked>(true);

        let mut c_micro = Matrix::<Tracked>::zeros(n, n);
        let (_, micro_ops) = measure(|| {
            syrk_ln_micro(Tracked(1.0), a.as_ref(), &mut c_micro.as_mut(), &cfg);
        });
        let mut c_ref = Matrix::<Tracked>::zeros(n, n);
        let (_, ref_ops) = measure(|| {
            syrk_ln_blocked(
                Tracked(1.0),
                a.as_ref(),
                &mut c_ref.as_mut(),
                BlockSizes::default(),
            );
        });
        prop_assert_eq!(micro_ops, ref_ops);
        prop_assert_eq!(micro_ops.muls, (m * n * (n + 1) / 2) as u64);
    }
}
