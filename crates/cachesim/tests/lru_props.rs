//! Property tests for the ideal cache: the O(1) intrusive-list LRU must
//! behave identically to an obviously-correct reference model (a plain
//! `Vec` kept in recency order), and must satisfy the classic paging
//! laws (inclusion property, miss-count monotonicity in capacity).

use ata_cachesim::IdealCache;
use proptest::prelude::*;

/// Reference LRU: vector of resident lines, most recent first.
struct RefLru {
    lines: Vec<u64>,
    cap: usize,
    b: u64,
    misses: u64,
}

impl RefLru {
    fn new(capacity_words: usize, line_words: usize) -> Self {
        Self {
            lines: Vec::new(),
            cap: capacity_words / line_words,
            b: line_words as u64,
            misses: 0,
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.b;
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.insert(0, line);
            true
        } else {
            self.misses += 1;
            if self.lines.len() == self.cap {
                self.lines.pop();
            }
            self.lines.insert(0, line);
            false
        }
    }
}

fn trace_strategy() -> impl Strategy<Value = Vec<u64>> {
    // Mix of local and scattered addresses, 1..400 accesses.
    prop::collection::vec(0u64..512, 1..400)
}

proptest! {
    #[test]
    fn intrusive_lru_matches_reference_model(
        trace in trace_strategy(),
        cap_lines in 1usize..24,
        line_words in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let mut fast = IdealCache::new(cap_lines * line_words, line_words);
        let mut slow = RefLru::new(cap_lines * line_words, line_words);
        for &addr in &trace {
            let h_fast = fast.access(addr);
            let h_slow = slow.access(addr);
            prop_assert_eq!(h_fast, h_slow, "hit/miss diverged at addr {}", addr);
        }
        prop_assert_eq!(fast.misses(), slow.misses);
        prop_assert_eq!(fast.resident(), slow.lines.len());
    }

    #[test]
    fn lru_inclusion_property(trace in trace_strategy()) {
        // A larger LRU cache's resident set contains the smaller one's —
        // therefore every hit in the small cache is a hit in the big one
        // (Mattson et al. stack property). Checked via miss counts.
        let mut small = IdealCache::new(4 * 4, 4);
        let mut big = IdealCache::new(16 * 4, 4);
        for &addr in &trace {
            let hit_small = small.access(addr);
            let hit_big = big.access(addr);
            prop_assert!(!hit_small || hit_big, "small hit but big missed at {}", addr);
        }
        prop_assert!(big.misses() <= small.misses());
    }

    #[test]
    fn miss_count_monotone_in_capacity(trace in trace_strategy()) {
        let mut prev = u64::MAX;
        for cap_lines in [2usize, 4, 8, 16, 32] {
            let mut c = IdealCache::new(cap_lines * 8, 8);
            for &addr in &trace {
                c.access(addr);
            }
            prop_assert!(c.misses() <= prev, "misses grew with capacity");
            prev = c.misses();
        }
    }

    #[test]
    fn compulsory_lower_bound_and_access_upper_bound(trace in trace_strategy()) {
        // Misses are at least the number of distinct lines touched and
        // at most the access count.
        let mut c = IdealCache::new(8 * 8, 8);
        let mut distinct: Vec<u64> = Vec::new();
        for &addr in &trace {
            c.access(addr);
            let line = addr / 8;
            if !distinct.contains(&line) {
                distinct.push(line);
            }
        }
        prop_assert!(c.misses() >= distinct.len() as u64);
        prop_assert!(c.misses() <= trace.len() as u64);
        prop_assert_eq!(c.accesses(), trace.len() as u64);
    }
}
