//! Instrumented walks of the workspace's algorithms over [`CachedMem`].
//!
//! Each walker mirrors the *address behaviour* of its real counterpart —
//! the same quadrant splits, the same arena slot carving, the same
//! row-wise `axpy` sweeps — while running the numerics for real, so the
//! result can be oracle-checked against `ata-mat::reference`. A walker
//! whose addressing diverged from the real algorithm would produce wrong
//! numbers and fail its tests; this is what makes the measured miss
//! counts credible evidence for Proposition 3.1.
//!
//! Base cases use the naive register-accumulator kernels, which realize
//! the `O(base^2 / b)` base-case transfer count the cache-oblivious
//! analysis assumes (all operand lines stay resident once the base block
//! fits in `M`).

use crate::lru::IdealCache;
use crate::mem::{CachedMem, Region};
use ata_mat::{Matrix, Scalar};

/// Miss/access statistics of one instrumented run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Ideal-cache misses (`Q(n; M, b)`).
    pub misses: u64,
    /// Total word accesses.
    pub accesses: u64,
}

/// Base-case predicate of the `A^T B` recursions — mirrors
/// `ata-strassen::workspace::is_base`.
#[inline]
fn gemm_base(m: usize, n: usize, k: usize, base_words: usize) -> bool {
    m * n + m * k <= base_words || (m <= 1 && n <= 1 && k <= 1)
}

/// Base-case predicate of AtA — mirrors `CacheConfig::ata_base`.
#[inline]
fn ata_base(m: usize, n: usize, base_words: usize) -> bool {
    m * n <= base_words
}

// ---------------------------------------------------------------------
// Base-case kernels.
// ---------------------------------------------------------------------

/// `C += A^T B`, naive register-accumulator loops.
fn gemm_tn_walk<T: Scalar>(mem: &mut CachedMem<T>, a: Region, b: Region, c: Region) {
    debug_assert_eq!(a.rows, b.rows);
    debug_assert_eq!((c.rows, c.cols), (a.cols, b.cols));
    for i in 0..c.rows {
        for j in 0..c.cols {
            let mut acc = T::ZERO;
            for l in 0..a.rows {
                acc += mem.read(a.at(l, i)) * mem.read(b.at(l, j));
            }
            mem.add(c.at(i, j), acc);
        }
    }
}

/// Lower triangle of `C += A^T A`, naive loops.
fn syrk_ln_walk<T: Scalar>(mem: &mut CachedMem<T>, a: Region, c: Region) {
    debug_assert_eq!((c.rows, c.cols), (a.cols, a.cols));
    for i in 0..a.cols {
        for j in 0..=i {
            let mut acc = T::ZERO;
            for l in 0..a.rows {
                acc += mem.read(a.at(l, i)) * mem.read(a.at(l, j));
            }
            mem.add(c.at(i, j), acc);
        }
    }
}

// ---------------------------------------------------------------------
// RecursiveGEMM (Algorithm 2).
// ---------------------------------------------------------------------

/// Cache-oblivious classical `C += A^T B` (Algorithm 2): eight recursive
/// calls on quadrants.
fn recursive_gemm_walk<T: Scalar>(
    mem: &mut CachedMem<T>,
    a: Region,
    b: Region,
    c: Region,
    base_words: usize,
) {
    let (m, n, k) = (a.rows, a.cols, b.cols);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if gemm_base(m, n, k, base_words) {
        gemm_tn_walk(mem, a, b, c);
        return;
    }
    let (a11, a12, a21, a22) = a.quad_split();
    let (b11, b12, b21, b22) = b.quad_split();
    let n1 = n.div_ceil(2);
    let k1 = k.div_ceil(2);
    let c11 = c.block(0, n1, 0, k1);
    let c12 = c.block(0, n1, k1, k);
    let c21 = c.block(n1, n, 0, k1);
    let c22 = c.block(n1, n, k1, k);
    // C(i,j) += sum_l A(l,i)^T B(l,j) — the paper's triple loop.
    recursive_gemm_walk(mem, a11, b11, c11, base_words);
    recursive_gemm_walk(mem, a21, b21, c11, base_words);
    recursive_gemm_walk(mem, a11, b12, c12, base_words);
    recursive_gemm_walk(mem, a21, b22, c12, base_words);
    recursive_gemm_walk(mem, a12, b11, c21, base_words);
    recursive_gemm_walk(mem, a22, b21, c21, base_words);
    recursive_gemm_walk(mem, a12, b12, c22, base_words);
    recursive_gemm_walk(mem, a22, b22, c22, base_words);
}

// ---------------------------------------------------------------------
// Strassen (mirror of `ata-strassen::fast`).
// ---------------------------------------------------------------------

/// Arena words the Strassen walker needs — must match its own carving.
fn strassen_arena_elems(m: usize, n: usize, k: usize, base_words: usize) -> usize {
    if m == 0 || n == 0 || k == 0 || gemm_base(m, n, k, base_words) {
        return 0;
    }
    let (m1, n1, k1) = (m.div_ceil(2), n.div_ceil(2), k.div_ceil(2));
    m1 * n1 + m1 * k1 + n1 * k1 + strassen_arena_elems(m1, n1, k1, base_words)
}

/// `dst = pad(src)` in the arena.
fn pad_into_walk<T: Scalar>(mem: &mut CachedMem<T>, dst: Region, src: Region) {
    for i in 0..dst.rows {
        for j in 0..dst.cols {
            let v = if i < src.rows && j < src.cols {
                mem.read(src.at(i, j))
            } else {
                T::ZERO
            };
            mem.write(dst.at(i, j), v);
        }
    }
}

/// `dst += sign * pad(src)` over the common prefix (row-wise axpy).
fn axpy_padded_walk<T: Scalar>(mem: &mut CachedMem<T>, sign: T, src: Region, dst: Region) {
    for i in 0..src.rows.min(dst.rows) {
        for j in 0..src.cols.min(dst.cols) {
            let v = mem.read(src.at(i, j));
            mem.add(dst.at(i, j), sign * v);
        }
    }
}

/// `c += coeff * mm`, truncating.
fn accumulate_walk<T: Scalar>(mem: &mut CachedMem<T>, c: Region, mm: Region, coeff: T) {
    for i in 0..c.rows {
        for j in 0..c.cols {
            let v = mem.read(mm.at(i, j));
            mem.add(c.at(i, j), coeff * v);
        }
    }
}

/// Strassen `C += alpha A^T B` with the arena at `arena`: the walk of
/// `ata-strassen::fast::rec` (same 7-product schedule and slot reuse).
#[allow(clippy::too_many_arguments)]
fn strassen_walk<T: Scalar>(
    mem: &mut CachedMem<T>,
    alpha: T,
    a: Region,
    b: Region,
    c: Region,
    base_words: usize,
    arena: usize,
) {
    let (m, n, k) = (a.rows, a.cols, b.cols);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    if gemm_base(m, n, k, base_words) {
        // alpha is folded into the accumulate of the parent; the real
        // base kernel takes alpha, and for the walker alpha is always
        // +-1 at this point except the outermost call. Scale explicitly.
        if alpha == T::ONE {
            gemm_tn_walk(mem, a, b, c);
        } else {
            // Rare path: materialize alpha by scaling after the multiply
            // — mirrors gemm_tn(alpha, ..) cost shape (one extra C pass
            // is *not* performed by the real kernel, so scale inline).
            for i in 0..c.rows {
                for j in 0..c.cols {
                    let mut acc = T::ZERO;
                    for l in 0..a.rows {
                        acc += mem.read(a.at(l, i)) * mem.read(b.at(l, j));
                    }
                    mem.add(c.at(i, j), alpha * acc);
                }
            }
        }
        return;
    }

    let (m1, n1, k1) = (m.div_ceil(2), n.div_ceil(2), k.div_ceil(2));
    let (a11, a12, a21, a22) = a.quad_split();
    let (b11, b12, b21, b22) = b.quad_split();

    let ta = Region::contiguous(arena, m1, n1);
    let tb = Region::contiguous(ta.end(), m1, k1);
    let mm = Region::contiguous(tb.end(), n1, k1);
    let child = mm.end();

    let c11 = c.block(0, n1, 0, k1);
    let c12 = c.block(0, n1, k1, k);
    let c21 = c.block(n1, n, 0, k1);
    let c22 = c.block(n1, n, k1, k);

    let one = T::ONE;
    let neg = T::NEG_ONE;

    // Build an operand into a slot, or pass the quadrant through if it
    // already has ceil shape (mirrors `direct_or_pad`).
    macro_rules! operand {
        ($slot:expr, $q:expr) => {{
            if $q.rows == $slot.rows && $q.cols == $slot.cols {
                $q
            } else {
                pad_into_walk(mem, $slot, $q);
                $slot
            }
        }};
    }
    macro_rules! operand_sum {
        ($slot:expr, $x:expr, $sign:expr, $y:expr) => {{
            pad_into_walk(mem, $slot, $x);
            axpy_padded_walk(mem, $sign, $y, $slot);
            $slot
        }};
    }
    // One product into the zeroed mm slot, then signed accumulations.
    macro_rules! product {
        ($ta:expr, $tb:expr, [$(($quad:expr, $sgn:expr)),+]) => {{
            let ta = $ta;
            let tb = $tb;
            for i in 0..mm.rows {
                for j in 0..mm.cols {
                    mem.write(mm.at(i, j), T::ZERO);
                }
            }
            strassen_walk(mem, one, ta, tb, mm, base_words, child);
            $(
                let coeff = if $sgn >= 0 { alpha } else { neg * alpha };
                accumulate_walk(mem, $quad, mm, coeff);
            )+
        }};
    }

    // M1 = (A11 + A22)^T (B11 + B22)  ->  +C11, +C22
    product!(
        operand_sum!(ta, a11, one, a22),
        operand_sum!(tb, b11, one, b22),
        [(c11, 1), (c22, 1)]
    );
    // M2 = (A12 + A22)^T B11          ->  +C21, -C22
    product!(operand_sum!(ta, a12, one, a22), b11, [(c21, 1), (c22, -1)]);
    // M3 = A11^T (B12 - B22)          ->  +C12, +C22
    product!(a11, operand_sum!(tb, b12, neg, b22), [(c12, 1), (c22, 1)]);
    // M4 = A22^T (B21 - B11)          ->  +C11, +C21
    product!(
        operand!(ta, a22),
        operand_sum!(tb, b21, neg, b11),
        [(c11, 1), (c21, 1)]
    );
    // M5 = (A11 + A21)^T B22          ->  -C11, +C12
    product!(
        operand_sum!(ta, a11, one, a21),
        operand!(tb, b22),
        [(c11, -1), (c12, 1)]
    );
    // M6 = (A12 - A11)^T (B11 + B12)  ->  +C22
    product!(
        operand_sum!(ta, a12, neg, a11),
        operand_sum!(tb, b11, one, b12),
        [(c22, 1)]
    );
    // M7 = (A21 - A22)^T (B21 + B22)  ->  +C11
    product!(
        operand_sum!(ta, a21, neg, a22),
        operand_sum!(tb, b21, one, b22),
        [(c11, 1)]
    );
}

// ---------------------------------------------------------------------
// AtA (Algorithm 1).
// ---------------------------------------------------------------------

/// Largest Strassen arena any `C21` product of the AtA recursion needs.
fn ata_arena_elems(m: usize, n: usize, base_words: usize) -> usize {
    if m == 0 || n == 0 || ata_base(m, n, base_words) {
        return 0;
    }
    let (m1, n1) = (m.div_ceil(2), n.div_ceil(2));
    let m2 = m - m1;
    let n2 = n - n1;
    let own = strassen_arena_elems(m1, n2, n1, base_words)
        .max(strassen_arena_elems(m2, n2, n1, base_words));
    own.max(ata_arena_elems(m1, n1, base_words))
        .max(ata_arena_elems(m2, n1, base_words))
        .max(ata_arena_elems(m1, n2, base_words))
        .max(ata_arena_elems(m2, n2, base_words))
}

/// AtA walk (Algorithm 1): four recursive calls plus two Strassen
/// products for `C21`, sharing one arena.
fn ata_walk<T: Scalar>(
    mem: &mut CachedMem<T>,
    a: Region,
    c: Region,
    base_words: usize,
    arena: usize,
) {
    let (m, n) = (a.rows, a.cols);
    if m == 0 || n == 0 {
        return;
    }
    if ata_base(m, n, base_words) {
        syrk_ln_walk(mem, a, c);
        return;
    }
    let n1 = n.div_ceil(2);
    let (a11, a12, a21, a22) = a.quad_split();
    let c11 = c.block(0, n1, 0, n1);
    let c22 = c.block(n1, n, n1, n);
    let c21 = c.block(n1, n, 0, n1);
    ata_walk(mem, a11, c11, base_words, arena);
    ata_walk(mem, a21, c11, base_words, arena);
    ata_walk(mem, a12, c22, base_words, arena);
    ata_walk(mem, a22, c22, base_words, arena);
    strassen_walk(mem, T::ONE, a12, a11, c21, base_words, arena);
    strassen_walk(mem, T::ONE, a22, a21, c21, base_words, arena);
}

// ---------------------------------------------------------------------
// Public entry points: load a real matrix, run cold, extract results.
// ---------------------------------------------------------------------

fn load<T: Scalar>(mem: &mut CachedMem<T>, r: Region, src: &Matrix<T>) {
    for i in 0..src.rows() {
        for j in 0..src.cols() {
            mem.poke(r.at(i, j), src[(i, j)]);
        }
    }
}

fn extract<T: Scalar>(mem: &CachedMem<T>, r: Region) -> Matrix<T> {
    Matrix::from_fn(r.rows, r.cols, |i, j| mem.peek(r.at(i, j)))
}

fn stats<T: Scalar>(mem: &CachedMem<T>) -> CacheStats {
    CacheStats {
        misses: mem.misses(),
        accesses: mem.accesses(),
    }
}

/// Measure the naive (non-recursive) `syrk` lower-triangle update.
pub fn run_naive_syrk<T: Scalar>(
    a: &Matrix<T>,
    capacity_words: usize,
    line_words: usize,
) -> (Matrix<T>, CacheStats) {
    let (m, n) = a.shape();
    let ra = Region::contiguous(0, m, n);
    let rc = Region::contiguous(ra.end(), n, n);
    let mut mem = CachedMem::new(rc.end(), IdealCache::new(capacity_words, line_words));
    load(&mut mem, ra, a);
    syrk_ln_walk(&mut mem, ra, rc);
    (extract(&mem, rc), stats(&mem))
}

/// Measure the cache-oblivious classical recursion (Algorithm 2) for
/// `C = A^T B`.
pub fn run_recursive_gemm<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    base_words: usize,
    capacity_words: usize,
    line_words: usize,
) -> (Matrix<T>, CacheStats) {
    let (m, n) = a.shape();
    let k = b.cols();
    assert_eq!(b.rows(), m, "A and B row mismatch");
    let ra = Region::contiguous(0, m, n);
    let rb = Region::contiguous(ra.end(), m, k);
    let rc = Region::contiguous(rb.end(), n, k);
    let mut mem = CachedMem::new(rc.end(), IdealCache::new(capacity_words, line_words));
    load(&mut mem, ra, a);
    load(&mut mem, rb, b);
    recursive_gemm_walk(&mut mem, ra, rb, rc, base_words);
    (extract(&mem, rc), stats(&mem))
}

/// Measure the arena Strassen recursion for `C = A^T B`.
pub fn run_strassen<T: Scalar>(
    a: &Matrix<T>,
    b: &Matrix<T>,
    base_words: usize,
    capacity_words: usize,
    line_words: usize,
) -> (Matrix<T>, CacheStats) {
    let (m, n) = a.shape();
    let k = b.cols();
    assert_eq!(b.rows(), m, "A and B row mismatch");
    let ra = Region::contiguous(0, m, n);
    let rb = Region::contiguous(ra.end(), m, k);
    let rc = Region::contiguous(rb.end(), n, k);
    let arena = rc.end();
    let words = arena + strassen_arena_elems(m, n, k, base_words);
    let mut mem = CachedMem::new(words, IdealCache::new(capacity_words, line_words));
    load(&mut mem, ra, a);
    load(&mut mem, rb, b);
    strassen_walk(&mut mem, T::ONE, ra, rb, rc, base_words, arena);
    (extract(&mem, rc), stats(&mem))
}

/// Measure AtA (Algorithm 1) for the lower triangle of `C = A^T A`.
pub fn run_ata<T: Scalar>(
    a: &Matrix<T>,
    base_words: usize,
    capacity_words: usize,
    line_words: usize,
) -> (Matrix<T>, CacheStats) {
    let (m, n) = a.shape();
    let ra = Region::contiguous(0, m, n);
    let rc = Region::contiguous(ra.end(), n, n);
    let arena = rc.end();
    let words = arena + ata_arena_elems(m, n, base_words);
    let mut mem = CachedMem::new(words, IdealCache::new(capacity_words, line_words));
    load(&mut mem, ra, a);
    ata_walk(&mut mem, ra, rc, base_words, arena);
    (extract(&mem, rc), stats(&mem))
}

/// The Θ-expression of Proposition 3.1 (and Frigo et al. for Strassen):
/// `1 + n^2/b + n^(log2 7) / (b sqrt(M))`, evaluated as a plain number
/// for normalizing measured miss counts.
pub fn prop31_expression(n: usize, capacity_words: usize, line_words: usize) -> f64 {
    let nf = n as f64;
    let b = line_words as f64;
    let m = capacity_words as f64;
    1.0 + nf * nf / b + nf.powf(7f64.log2()) / (b * m.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};

    const M: usize = 512; // cache words
    const B: usize = 8; // line words

    #[test]
    fn naive_syrk_walker_is_numerically_correct() {
        let a = gen::standard::<f64>(1, 20, 14);
        let (c, st) = run_naive_syrk(&a, M, B);
        let mut want = Matrix::zeros(14, 14);
        reference::syrk_ln(1.0, a.as_ref(), &mut want.as_mut());
        assert!(c.max_abs_diff_lower(&want) < 1e-12);
        assert!(st.misses > 0 && st.misses <= st.accesses);
    }

    #[test]
    fn recursive_gemm_walker_is_numerically_correct() {
        let a = gen::standard::<f64>(2, 18, 12);
        let b = gen::standard::<f64>(3, 18, 10);
        let (c, _) = run_recursive_gemm(&a, &b, 64, M, B);
        let mut want = Matrix::zeros(12, 10);
        reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut want.as_mut());
        assert!(c.max_abs_diff(&want) < 1e-12);
    }

    #[test]
    fn strassen_walker_is_numerically_correct_including_odd() {
        for &(m, n, k) in &[(16usize, 16usize, 16usize), (13, 11, 9), (24, 17, 21)] {
            let a = gen::standard::<f64>(m as u64, m, n);
            let b = gen::standard::<f64>(k as u64 + 40, m, k);
            let (c, _) = run_strassen(&a, &b, 32, M, B);
            let mut want = Matrix::zeros(n, k);
            reference::gemm_tn(1.0, a.as_ref(), b.as_ref(), &mut want.as_mut());
            assert!(c.max_abs_diff(&want) < 1e-10, "({m},{n},{k})");
        }
    }

    #[test]
    fn ata_walker_is_numerically_correct_including_odd() {
        for &(m, n) in &[(16usize, 16usize), (19, 15), (30, 22)] {
            let a = gen::standard::<f64>(m as u64 * 3, m, n);
            let (c, _) = run_ata(&a, 32, M, B);
            let mut want = Matrix::zeros(n, n);
            reference::syrk_ln(1.0, a.as_ref(), &mut want.as_mut());
            assert!(c.max_abs_diff_lower(&want) < 1e-10, "({m},{n})");
        }
    }

    #[test]
    fn proposition_31_inequality_chain() {
        // The proof's sandwich: C_S(n/2) <= C_AtA(n) <= C_S(n).
        for n in [24usize, 32, 48] {
            let a = gen::standard::<f64>(7, n, n);
            let half = gen::standard::<f64>(8, n / 2, n / 2);
            let base = 16;
            let (_, ata) = run_ata(&a, base, M, B);
            let (_, s_full) = run_strassen(&a, &a.clone(), base, M, B);
            let (_, s_half) = run_strassen(&half, &half.clone(), base, M, B);
            assert!(
                s_half.misses <= ata.misses,
                "n={n}: C_S(n/2)={} > C_AtA(n)={}",
                s_half.misses,
                ata.misses
            );
            assert!(
                ata.misses <= s_full.misses,
                "n={n}: C_AtA(n)={} > C_S(n)={}",
                ata.misses,
                s_full.misses
            );
        }
    }

    #[test]
    fn cache_oblivious_recursion_beats_naive_when_matrix_exceeds_cache() {
        // With A far larger than the cache, the naive column-dot loop
        // thrashes while the recursion localizes. (Same flop count.)
        let n = 48usize;
        let a = gen::standard::<f64>(9, n, n);
        let tiny_m = 256; // 4 KiB of f64 for a 2304-word matrix
        let (_, naive) = run_naive_syrk(&a, tiny_m, B);
        let (_, ata) = run_ata(&a, 64, tiny_m, B);
        assert!(
            ata.misses < naive.misses,
            "AtA {} !< naive {}",
            ata.misses,
            naive.misses
        );
    }

    #[test]
    fn misses_scale_with_the_prop31_expression() {
        // Deep in the out-of-cache regime (M = 64 words) the dominant
        // term is n^(log2 7)/(b sqrt(M)): doubling n must scale misses by
        // a factor that *decreases toward 7* as n grows. (Near the cache
        // boundary the ratio transiently overshoots — that transition is
        // exactly why the bound is asymptotic.)
        let base = 8;
        let (m_words, b_words) = (64usize, 8usize);
        let mut prev_misses = None;
        let mut ratios = Vec::new();
        for n in [32usize, 64, 128] {
            let a = gen::standard::<f64>(n as u64, n, n);
            let (_, q) = run_ata(&a, base, m_words, b_words);
            if let Some(p) = prev_misses {
                ratios.push(q.misses as f64 / p as f64);
            }
            prev_misses = Some(q.misses);
        }
        assert!(
            ratios.windows(2).all(|w| w[1] < w[0]),
            "ratios must decrease toward 7: {ratios:?}"
        );
        let last = *ratios.last().expect("two ratios");
        assert!(
            (6.5..9.0).contains(&last),
            "asymptotic doubling ratio {last} not near 7 ({ratios:?})"
        );
    }

    #[test]
    fn bigger_cache_reduces_misses() {
        let a = gen::standard::<f64>(5, 64, 64);
        let (_, small) = run_ata(&a, 16, 128, 8);
        let (_, big) = run_ata(&a, 16, 2048, 8);
        assert!(big.misses < small.misses);
        // Access count is identical — the algorithm does not change.
        assert_eq!(big.accesses, small.accesses);
    }

    #[test]
    fn longer_lines_reduce_misses_on_streaming() {
        let a = gen::standard::<f64>(6, 48, 48);
        let (_, b4) = run_ata(&a, 16, 512, 4);
        let (_, b16) = run_ata(&a, 16, 512, 16);
        assert!(b16.misses < b4.misses);
    }

    #[test]
    fn prop31_expression_regimes() {
        // Quadratic term dominates for small n, the n^log7 term for
        // large n relative to M.
        let e = |n| prop31_expression(n, 1 << 20, 8);
        assert!(e(64) < e(128));
        let growth_small = e(128) / e(64);
        assert!((3.5..4.5).contains(&growth_small), "{growth_small}");
        let eb = |n| prop31_expression(n, 64, 8);
        let growth_big = eb(1 << 14) / eb(1 << 13);
        assert!((6.0..7.5).contains(&growth_big), "{growth_big}");
    }
}
