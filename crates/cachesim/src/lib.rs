//! Ideal-cache simulation for the `ata` workspace — the measurement
//! substrate behind Proposition 3.1.
//!
//! Proposition 3.1 of Arrigoni et al. (ICPP 2021) claims that AtA's
//! cache complexity equals Strassen's,
//! `Θ(1 + n²/b + n^(log₂7) / (b√M))` in the ideal-cache model of Frigo
//! et al. (FOCS 1999). The paper proves this by induction; the
//! reproduction *measures* it:
//!
//! * [`lru::IdealCache`] — a fully-associative LRU cache with capacity
//!   `M` words and lines of `b` words (the ideal-cache machine);
//! * [`mem::CachedMem`] / [`mem::Region`] — simulated memory whose every
//!   access goes through the cache, plus the block-addressing mirror of
//!   the workspace's matrix views;
//! * [`algs`] — instrumented walks of naive `syrk`, RecursiveGEMM
//!   (Algorithm 2), arena-Strassen and AtA (Algorithm 1) that reproduce
//!   the real implementations' address behaviour *and* their numerics
//!   (each walker is oracle-checked, so the addressing cannot silently
//!   diverge);
//! * the `prop31` benchmark binary (in `ata-bench`) sweeps `n`, `M` and
//!   `b` and prints measured misses next to the Θ-expression.
//!
//! The headline test, `algs::tests::proposition_31_inequality_chain`,
//! checks the proof's actual sandwich — `C_S(n/2) ≤ C_AtA(n) ≤ C_S(n)`
//! — on measured counts.
//!
//! # Example
//!
//! ```
//! use ata_cachesim::{run_ata, run_naive_syrk};
//! use ata_mat::gen;
//!
//! let a = gen::standard::<f64>(1, 48, 48);
//! // Cache of 256 words (tiny), lines of 8 words.
//! let (_, ata) = run_ata(&a, 64, 256, 8);
//! let (_, naive) = run_naive_syrk(&a, 256, 8);
//! assert!(ata.misses < naive.misses, "cache-oblivious recursion wins");
//! ```

#![forbid(unsafe_code)]

pub mod algs;
pub mod lru;
pub mod mem;

pub use algs::{
    prop31_expression, run_ata, run_naive_syrk, run_recursive_gemm, run_strassen, CacheStats,
};
pub use lru::IdealCache;
pub use mem::{CachedMem, Region};
