//! Simulated memory: a flat word array whose every access goes through
//! the [`IdealCache`], plus the [`Region`] block-addressing the
//! recursive walkers use.

use crate::lru::IdealCache;
use ata_mat::Scalar;

/// Word-addressed memory with an ideal cache in front.
///
/// The algorithms in [`crate::algs`] run their numerics *for real*
/// against this memory, so a miscounted address would also corrupt the
/// result — every walker is oracle-checked in its tests, which makes the
/// miss counts trustworthy.
#[derive(Debug, Clone)]
pub struct CachedMem<T> {
    data: Vec<T>,
    cache: IdealCache,
}

impl<T: Scalar> CachedMem<T> {
    /// Zero-initialized memory of `words` words with the given cache.
    pub fn new(words: usize, cache: IdealCache) -> Self {
        Self {
            data: vec![T::ZERO; words],
            cache,
        }
    }

    /// Read the word at `addr`.
    #[inline]
    pub fn read(&mut self, addr: usize) -> T {
        self.cache.access(addr as u64);
        self.data[addr]
    }

    /// Write the word at `addr`.
    #[inline]
    pub fn write(&mut self, addr: usize, v: T) {
        self.cache.access(addr as u64);
        self.data[addr] = v;
    }

    /// `mem[addr] += v` — one access in the ideal model (the line is
    /// resident for the write after the read).
    #[inline]
    pub fn add(&mut self, addr: usize, v: T) {
        self.cache.access(addr as u64);
        self.data[addr] += v;
    }

    /// Bypass the cache (test setup / result extraction).
    pub fn poke(&mut self, addr: usize, v: T) {
        self.data[addr] = v;
    }

    /// Bypass the cache (test setup / result extraction).
    pub fn peek(&self, addr: usize) -> T {
        self.data[addr]
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.cache.misses()
    }

    /// Access count so far.
    pub fn accesses(&self) -> u64 {
        self.cache.accesses()
    }

    /// The cache itself.
    pub fn cache(&self) -> &IdealCache {
        &self.cache
    }

    /// Reset cache statistics (resident set kept).
    pub fn reset_stats(&mut self) {
        self.cache.reset_stats();
    }

    /// Cold-start the cache.
    pub fn flush_cache(&mut self) {
        self.cache.flush();
    }

    /// Total words of backing storage.
    pub fn words(&self) -> usize {
        self.data.len()
    }
}

/// A `rows x cols` block at `base` with the given row stride — the
/// address-space mirror of `ata-mat`'s views, so the walkers perform the
/// same quadrant splits as the real algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Word address of element (0, 0).
    pub base: usize,
    /// Rows in the block.
    pub rows: usize,
    /// Columns in the block.
    pub cols: usize,
    /// Words between the starts of consecutive rows.
    pub stride: usize,
}

impl Region {
    /// Contiguous region (`stride == cols`) at `base`.
    pub fn contiguous(base: usize, rows: usize, cols: usize) -> Self {
        Self {
            base,
            rows,
            cols,
            stride: cols,
        }
    }

    /// Address of element `(i, j)`.
    #[inline]
    pub fn at(&self, i: usize, j: usize) -> usize {
        debug_assert!(
            i < self.rows && j < self.cols,
            "({i},{j}) out of {}x{}",
            self.rows,
            self.cols
        );
        self.base + i * self.stride + j
    }

    /// One past the last addressable word.
    pub fn end(&self) -> usize {
        if self.rows == 0 || self.cols == 0 {
            self.base
        } else {
            self.at(self.rows - 1, self.cols - 1) + 1
        }
    }

    /// Sub-block by index ranges (mirrors `MatRef::block`).
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Region {
        debug_assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        Region {
            base: self.base + r0 * self.stride + c0,
            rows: r1 - r0,
            cols: c1 - c0,
            stride: self.stride,
        }
    }

    /// The paper's quadrant split with ceil-halved upper-left (Eq. 1).
    pub fn quad_split(&self) -> (Region, Region, Region, Region) {
        let m1 = self.rows.div_ceil(2);
        let n1 = self.cols.div_ceil(2);
        (
            self.block(0, m1, 0, n1),
            self.block(0, m1, n1, self.cols),
            self.block(m1, self.rows, 0, n1),
            self.block(m1, self.rows, n1, self.cols),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_roundtrip_and_counting() {
        let mut m = CachedMem::<f64>::new(64, IdealCache::new(16, 4));
        m.write(10, 3.5);
        assert_eq!(m.read(10), 3.5);
        m.add(10, 1.5);
        assert_eq!(m.peek(10), 5.0);
        assert_eq!(m.accesses(), 3);
        assert_eq!(m.misses(), 1, "all three touch one resident line");
    }

    #[test]
    fn poke_peek_bypass_cache() {
        let mut m = CachedMem::<f64>::new(8, IdealCache::new(4, 1));
        m.poke(3, 7.0);
        assert_eq!(m.peek(3), 7.0);
        assert_eq!(m.accesses(), 0);
    }

    #[test]
    fn region_addressing_matches_row_major() {
        let r = Region::contiguous(100, 4, 6);
        assert_eq!(r.at(0, 0), 100);
        assert_eq!(r.at(2, 3), 100 + 2 * 6 + 3);
        assert_eq!(r.end(), 100 + 24);
        let b = r.block(1, 3, 2, 5);
        assert_eq!(b.rows, 2);
        assert_eq!(b.cols, 3);
        assert_eq!(b.at(0, 0), r.at(1, 2));
        assert_eq!(b.stride, 6);
    }

    #[test]
    fn quad_split_is_the_papers_ceil_split() {
        let r = Region::contiguous(0, 5, 7);
        let (r11, r12, r21, r22) = r.quad_split();
        assert_eq!((r11.rows, r11.cols), (3, 4));
        assert_eq!((r12.rows, r12.cols), (3, 3));
        assert_eq!((r21.rows, r21.cols), (2, 4));
        assert_eq!((r22.rows, r22.cols), (2, 3));
        assert_eq!(r12.at(0, 0), r.at(0, 4));
        assert_eq!(r21.at(0, 0), r.at(3, 0));
        assert_eq!(r22.at(1, 2), r.at(4, 6));
    }

    #[test]
    fn empty_region_end_is_base() {
        let r = Region::contiguous(42, 0, 5);
        assert_eq!(r.end(), 42);
    }
}
