//! The ideal cache: fully associative, capacity `M` words, lines of `b`
//! words, LRU replacement.
//!
//! This is the machine model of Frigo, Leiserson, Prokop and
//! Ramachandran's cache-oblivious framework, which Proposition 3.1 of
//! the paper builds on. "Ideal" means full associativity and optimal-ish
//! (LRU is 2-competitive) replacement — no conflict misses, so measured
//! miss counts track the Θ-bounds cleanly.
//!
//! The implementation is a hash map from line number to a slot in an
//! intrusive doubly-linked list kept in most-recent-first order; all
//! operations are O(1).

use std::collections::HashMap;

const NIL: usize = usize::MAX;

/// One resident cache line.
#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u64,
    prev: usize,
    next: usize,
}

/// Fully-associative LRU cache over abstract word addresses.
#[derive(Debug, Clone)]
pub struct IdealCache {
    /// Words per line (`b`).
    line_words: usize,
    /// Maximum resident lines (`M / b`).
    max_lines: usize,
    map: HashMap<u64, usize>,
    slots: Vec<Slot>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    hits: u64,
    misses: u64,
}

impl IdealCache {
    /// Cache with capacity `capacity_words` (`M`) and `line_words` (`b`)
    /// words per line.
    ///
    /// # Panics
    /// If `line_words == 0` or the capacity holds no complete line.
    pub fn new(capacity_words: usize, line_words: usize) -> Self {
        assert!(line_words > 0, "line size must be positive");
        let max_lines = capacity_words / line_words;
        assert!(max_lines > 0, "cache must hold at least one line");
        Self {
            line_words,
            max_lines,
            map: HashMap::with_capacity(max_lines * 2),
            slots: Vec::with_capacity(max_lines),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Words per line (`b`).
    pub fn line_words(&self) -> usize {
        self.line_words
    }

    /// Capacity in lines (`M / b`).
    pub fn max_lines(&self) -> usize {
        self.max_lines
    }

    /// Total accesses so far.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far (the `Q(n; M, b)` of the cache-oblivious
    /// bounds).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of currently resident lines.
    pub fn resident(&self) -> usize {
        self.map.len()
    }

    /// Reset statistics, keeping the resident set.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Drop the entire resident set and statistics (cold cache).
    pub fn flush(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.reset_stats();
    }

    /// Touch word address `addr`; returns `true` on a hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_words as u64;
        if let Some(&slot) = self.map.get(&line) {
            self.hits += 1;
            self.move_to_front(slot);
            true
        } else {
            self.misses += 1;
            if self.map.len() == self.max_lines {
                self.evict_lru();
            }
            let slot = self.alloc_slot(line);
            self.map.insert(line, slot);
            self.push_front(slot);
            false
        }
    }

    fn alloc_slot(&mut self, line: u64) -> usize {
        if let Some(s) = self.free.pop() {
            self.slots[s] = Slot {
                line,
                prev: NIL,
                next: NIL,
            };
            s
        } else {
            self.slots.push(Slot {
                line,
                prev: NIL,
                next: NIL,
            });
            self.slots.len() - 1
        }
    }

    fn push_front(&mut self, slot: usize) {
        self.slots[slot].prev = NIL;
        self.slots[slot].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: usize) {
        let Slot { prev, next, .. } = self.slots[slot];
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn move_to_front(&mut self, slot: usize) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.push_front(slot);
    }

    fn evict_lru(&mut self) {
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "evict on empty cache");
        let line = self.slots[victim].line;
        self.unlink(victim);
        self.map.remove(&line);
        self.free.push(victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_scan_misses_once_per_line() {
        let mut c = IdealCache::new(64, 8);
        for addr in 0..256u64 {
            c.access(addr);
        }
        assert_eq!(c.misses(), 256 / 8);
        assert_eq!(c.hits(), 256 - 256 / 8);
        assert_eq!(c.accesses(), 256);
    }

    #[test]
    fn working_set_within_capacity_never_re_misses() {
        let mut c = IdealCache::new(128, 8); // 16 lines
        for pass in 0..5 {
            for addr in 0..128u64 {
                c.access(addr);
            }
            if pass == 0 {
                assert_eq!(c.misses(), 16, "cold pass");
            }
        }
        assert_eq!(c.misses(), 16, "warm passes are free");
        assert_eq!(c.resident(), 16);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = IdealCache::new(2, 1); // two 1-word lines
        c.access(0);
        c.access(1);
        c.access(0); // 0 is now MRU
        c.access(2); // evicts 1
        assert!(c.access(0), "0 must still be resident");
        assert!(!c.access(1), "1 must have been evicted");
        // That re-access of 1 evicted 2 (LRU was 2 after access(0)).
        assert!(!c.access(2));
    }

    #[test]
    fn cyclic_scan_larger_than_cache_always_misses() {
        // The classic LRU worst case: a cyclic scan over M + b words
        // re-misses every line forever.
        let mut c = IdealCache::new(32, 1);
        for _ in 0..3 {
            for addr in 0..33u64 {
                c.access(addr);
            }
        }
        assert_eq!(c.misses(), 99, "every access misses");
    }

    #[test]
    fn line_granularity_groups_addresses() {
        let mut c = IdealCache::new(1024, 16);
        c.access(0);
        assert!(c.access(15), "same line");
        assert!(!c.access(16), "next line");
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn flush_and_reset() {
        let mut c = IdealCache::new(64, 8);
        for a in 0..64u64 {
            c.access(a);
        }
        c.reset_stats();
        assert_eq!(c.accesses(), 0);
        assert!(c.resident() > 0, "reset keeps residents");
        c.access(0);
        assert_eq!(c.hits(), 1, "still warm");
        c.flush();
        assert_eq!(c.resident(), 0);
        c.access(0);
        assert_eq!(c.misses(), 1, "cold after flush");
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn undersized_cache_rejected() {
        let _ = IdealCache::new(4, 8);
    }

    #[test]
    fn stress_random_accesses_maintain_invariants() {
        // Cheap LCG; checks map/list consistency under churn.
        let mut c = IdealCache::new(256, 4);
        let mut x = 0x2545f4914f6cdd1du64;
        for _ in 0..10_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            c.access(x % 4096);
            assert!(c.resident() <= c.max_lines());
        }
        assert_eq!(c.accesses(), 10_000);
        assert_eq!(c.hits() + c.misses(), 10_000);
    }
}
