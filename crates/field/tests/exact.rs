//! The "any algebraic field" claim, made decidable.
//!
//! Every algorithm layer — blocked kernels, the arena Strassen recursion
//! (including its virtual padding for odd sizes), serial AtA, the
//! shared-memory AtA-S and the distributed AtA-D on the simulated
//! cluster — is run over exact rationals ([`Q64`]) and the prime field
//! [`Gf31`], and compared to the naive `O(n^3)` oracle with **exact
//! equality**. There is no tolerance anywhere in this file: one dropped
//! term or sign error in any recombination fails the suite.

use ata_core::{ata_into, ata_s};
use ata_field::{Gf31, Q64};
use ata_kernels::{gemm_tn, syrk_ln, CacheConfig};
use ata_mat::{reference, Matrix, Scalar};
use ata_strassen::{fast_strassen, winograd_strassen};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Random rational matrix with small numerators and dyadic-ish
/// denominators, so reduced intermediates stay far from `i64` range.
fn rational_matrix(seed: u64, m: usize, n: usize) -> Matrix<Q64> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| {
        Q64::new(rng.random_range(-4i64..=4), rng.random_range(1i64..=4))
    })
}

/// Random prime-field matrix over the full representative range.
fn gf_matrix(seed: u64, m: usize, n: usize) -> Matrix<Gf31> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(m, n, |_, _| Gf31::new(rng.random_range(0i64..1 << 31)))
}

/// Exact equality of full matrices, with a readable failure message.
fn assert_matrix_eq<T: Scalar>(got: &Matrix<T>, want: &Matrix<T>, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape");
    for i in 0..got.rows() {
        for j in 0..got.cols() {
            assert_eq!(
                got[(i, j)],
                want[(i, j)],
                "{what}: first mismatch at ({i}, {j})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Blocked kernels are exact over both fields.
// ---------------------------------------------------------------------

#[test]
fn kernels_exact_over_q() {
    for &(m, n, k) in &[(7, 5, 6), (16, 16, 16), (13, 9, 11), (1, 8, 3)] {
        let a = rational_matrix(m as u64 * 100 + n as u64, m, n);
        let b = rational_matrix(k as u64 * 7 + 1, m, k);
        let mut c = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        gemm_tn(Q64::ONE, a.as_ref(), b.as_ref(), &mut c.as_mut());
        reference::gemm_tn(Q64::ONE, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c, &c_ref, &format!("gemm_tn Q ({m},{n},{k})"));

        let mut g = Matrix::zeros(n, n);
        let mut g_ref = Matrix::zeros(n, n);
        syrk_ln(Q64::ONE, a.as_ref(), &mut g.as_mut());
        reference::syrk_ln(Q64::ONE, a.as_ref(), &mut g_ref.as_mut());
        assert_matrix_eq(&g, &g_ref, &format!("syrk_ln Q ({m},{n})"));
    }
}

#[test]
fn kernels_exact_over_gf31() {
    for &(m, n, k) in &[(8, 6, 9), (17, 13, 5), (32, 32, 32)] {
        let a = gf_matrix(m as u64 * 31 + n as u64, m, n);
        let b = gf_matrix(k as u64 * 17 + 3, m, k);
        let mut c = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        gemm_tn(Gf31::ONE, a.as_ref(), b.as_ref(), &mut c.as_mut());
        reference::gemm_tn(Gf31::ONE, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c, &c_ref, &format!("gemm_tn GF ({m},{n},{k})"));
    }
}

// ---------------------------------------------------------------------
// Strassen's recombination is exact over both fields — including odd
// sizes, where the virtual-padding bookkeeping must drop exactly the
// right rows and columns.
// ---------------------------------------------------------------------

#[test]
fn strassen_exact_over_q() {
    let cfg = CacheConfig::with_words(8);
    for &(m, n, k) in &[(8, 8, 8), (7, 7, 7), (9, 6, 15), (13, 10, 11), (5, 17, 3)] {
        let a = rational_matrix(m as u64 + 1, m, n);
        let b = rational_matrix(n as u64 + 2, m, k);
        let mut c = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        fast_strassen(Q64::ONE, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
        reference::gemm_tn(Q64::ONE, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c, &c_ref, &format!("strassen Q ({m},{n},{k})"));
    }
}

#[test]
fn strassen_exact_over_gf31() {
    let cfg = CacheConfig::with_words(8);
    for &(m, n, k) in &[(16, 16, 16), (11, 13, 7), (23, 5, 19), (6, 27, 9)] {
        let a = gf_matrix(m as u64 + 41, m, n);
        let b = gf_matrix(n as u64 + 42, m, k);
        let mut c = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        fast_strassen(Gf31::ONE, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
        reference::gemm_tn(Gf31::ONE, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c, &c_ref, &format!("strassen GF ({m},{n},{k})"));
    }
}

#[test]
fn winograd_exact_over_both_fields() {
    // The Winograd rearrangement shares intermediate sums (U2/U3); over
    // a field the sharing is exact, so it must match classic Strassen
    // and the oracle bit-for-bit — including odd shapes where the
    // in-place operand chains interact with virtual padding.
    let cfg = CacheConfig::with_words(8);
    for &(m, n, k) in &[(8, 8, 8), (9, 7, 11), (13, 5, 10)] {
        let a = rational_matrix(m as u64 + 60, m, n);
        let b = rational_matrix(n as u64 + 61, m, k);
        let mut c_win = Matrix::zeros(n, k);
        let mut c_cls = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        winograd_strassen(Q64::ONE, a.as_ref(), b.as_ref(), &mut c_win.as_mut(), &cfg);
        fast_strassen(Q64::ONE, a.as_ref(), b.as_ref(), &mut c_cls.as_mut(), &cfg);
        reference::gemm_tn(Q64::ONE, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c_win, &c_ref, &format!("winograd Q ({m},{n},{k})"));
        assert_matrix_eq(&c_win, &c_cls, &format!("winograd=classic Q ({m},{n},{k})"));
    }
    for &(m, n, k) in &[(16, 16, 16), (11, 13, 7)] {
        let a = gf_matrix(m as u64 + 70, m, n);
        let b = gf_matrix(n as u64 + 71, m, k);
        let mut c_win = Matrix::zeros(n, k);
        let mut c_ref = Matrix::zeros(n, k);
        winograd_strassen(Gf31::ONE, a.as_ref(), b.as_ref(), &mut c_win.as_mut(), &cfg);
        reference::gemm_tn(Gf31::ONE, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c_win, &c_ref, &format!("winograd GF ({m},{n},{k})"));
    }
}

#[test]
fn strassen_respects_alpha_over_q() {
    // alpha = -3/2 exercises the signed accumulate paths exactly.
    let cfg = CacheConfig::with_words(8);
    let (m, n, k) = (10, 9, 8);
    let a = rational_matrix(5, m, n);
    let b = rational_matrix(6, m, k);
    let alpha = Q64::new(-3, 2);
    let mut c = rational_matrix(7, n, k);
    let mut c_ref = c.clone();
    fast_strassen(alpha, a.as_ref(), b.as_ref(), &mut c.as_mut(), &cfg);
    reference::gemm_tn(alpha, a.as_ref(), b.as_ref(), &mut c_ref.as_mut());
    assert_matrix_eq(&c, &c_ref, "strassen Q alpha=-3/2");
}

// ---------------------------------------------------------------------
// AtA (Algorithm 1) is exact over both fields.
// ---------------------------------------------------------------------

#[test]
fn ata_exact_over_q() {
    let cfg = CacheConfig::with_words(8);
    for &(m, n) in &[(8, 8), (9, 7), (15, 12), (5, 21), (21, 5), (1, 6)] {
        let a = rational_matrix(m as u64 * 3 + n as u64, m, n);
        let mut c = Matrix::zeros(n, n);
        let mut c_ref = Matrix::zeros(n, n);
        ata_into(Q64::ONE, a.as_ref(), &mut c.as_mut(), &cfg);
        reference::syrk_ln(Q64::ONE, a.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c, &c_ref, &format!("AtA Q ({m},{n})"));
    }
}

#[test]
fn ata_exact_over_gf31() {
    let cfg = CacheConfig::with_words(8);
    for &(m, n) in &[(16, 16), (13, 11), (7, 18), (25, 6)] {
        let a = gf_matrix(m as u64 * 5 + n as u64, m, n);
        let mut c = Matrix::zeros(n, n);
        let mut c_ref = Matrix::zeros(n, n);
        ata_into(Gf31::ONE, a.as_ref(), &mut c.as_mut(), &cfg);
        reference::syrk_ln(Gf31::ONE, a.as_ref(), &mut c_ref.as_mut());
        assert_matrix_eq(&c, &c_ref, &format!("AtA GF ({m},{n})"));
    }
}

#[test]
fn gram_is_exactly_symmetric_over_q() {
    // Compute the full Gram matrix from its lower triangle and verify
    // C[i][j] == C[j][i] as rationals — symmetry is exact, not approximate.
    let cfg = CacheConfig::with_words(8);
    let a = rational_matrix(99, 12, 10);
    let mut c = Matrix::zeros(10, 10);
    ata_into(Q64::ONE, a.as_ref(), &mut c.as_mut(), &cfg);
    let mut full = Matrix::zeros(10, 10);
    reference::gemm_tn(Q64::ONE, a.as_ref(), a.as_ref(), &mut full.as_mut());
    for i in 0..10 {
        for j in 0..=i {
            assert_eq!(c[(i, j)], full[(i, j)]);
            assert_eq!(c[(i, j)], full[(j, i)], "Gram symmetry at ({i},{j})");
        }
    }
}

// ---------------------------------------------------------------------
// The parallel algorithms are exact too: field ops are associative and
// commutative, so thread/rank decomposition cannot change the result.
// ---------------------------------------------------------------------

#[test]
fn ata_s_exact_over_q() {
    let cfg = CacheConfig::with_words(8);
    let (m, n) = (18, 14);
    let a = rational_matrix(123, m, n);
    let mut c_ref = Matrix::zeros(n, n);
    reference::syrk_ln(Q64::ONE, a.as_ref(), &mut c_ref.as_mut());
    for threads in [1usize, 2, 4, 7] {
        let mut c = Matrix::zeros(n, n);
        ata_s(Q64::ONE, a.as_ref(), &mut c.as_mut(), threads, &cfg);
        assert_matrix_eq(&c, &c_ref, &format!("AtA-S Q (P={threads})"));
    }
}

#[test]
fn ata_s_exact_over_gf31() {
    let cfg = CacheConfig::with_words(8);
    let (m, n) = (20, 16);
    let a = gf_matrix(321, m, n);
    let mut c_ref = Matrix::zeros(n, n);
    reference::syrk_ln(Gf31::ONE, a.as_ref(), &mut c_ref.as_mut());
    for threads in [1usize, 3, 8] {
        let mut c = Matrix::zeros(n, n);
        ata_s(Gf31::ONE, a.as_ref(), &mut c.as_mut(), threads, &cfg);
        assert_matrix_eq(&c, &c_ref, &format!("AtA-S GF (P={threads})"));
    }
}

#[test]
fn ata_d_exact_over_gf31_on_simulated_cluster() {
    use ata_dist::{ata_d, AtaDConfig};
    use ata_mpisim::{run, CostModel};

    let (m, n) = (24, 20);
    let a = gf_matrix(7, m, n);
    let mut c_ref = Matrix::zeros(n, n);
    reference::syrk_ln(Gf31::ONE, a.as_ref(), &mut c_ref.as_mut());

    for p in [1usize, 4, 6, 8] {
        let a_root = a.clone();
        let cfg = AtaDConfig {
            cache: CacheConfig::with_words(8),
            ..AtaDConfig::default()
        };
        let report = run::<Gf31, _, _>(p, CostModel::zero(), move |comm| {
            let input = (comm.rank() == 0).then_some(&a_root);
            ata_d(input, m, n, comm, &cfg)
        });
        let c = report
            .results
            .into_iter()
            .flatten()
            .next()
            .expect("root returns C");
        assert_matrix_eq(&c, &c_ref, &format!("AtA-D GF (P={p})"));
    }
}
