//! Property-based field-axiom suites for [`Q64`] and [`Gf31`].
//!
//! The AtA/Strassen correctness argument needs exactly the commutative
//! ring axioms (Strassen never divides); we check the full field axioms
//! anyway since both types expose inverses. Each law is tested on
//! proptest-generated elements, so the suites double as fuzzers for the
//! reduction/overflow logic.

use ata_field::{Gf31, Q64};
use ata_mat::Scalar;
use proptest::prelude::*;

/// Small rationals: numerators/denominators bounded so that any
/// three-term law evaluates without overflow.
fn small_q() -> impl Strategy<Value = Q64> {
    (-1000i64..=1000, 1i64..=1000).prop_map(|(n, d)| Q64::new(n, d))
}

fn any_gf() -> impl Strategy<Value = Gf31> {
    (0i64..(1i64 << 31)).prop_map(Gf31::new)
}

macro_rules! field_axioms {
    ($modname:ident, $strategy:expr, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_commutative(a in $strategy, b in $strategy) {
                    prop_assert_eq!(a + b, b + a);
                }

                #[test]
                fn add_associative(a in $strategy, b in $strategy, c in $strategy) {
                    prop_assert_eq!((a + b) + c, a + (b + c));
                }

                #[test]
                fn add_identity_and_inverse(a in $strategy) {
                    prop_assert_eq!(a + <$ty>::ZERO, a);
                    prop_assert_eq!(a + (-a), <$ty>::ZERO);
                    prop_assert_eq!(a - a, <$ty>::ZERO);
                }

                #[test]
                fn mul_commutative(a in $strategy, b in $strategy) {
                    prop_assert_eq!(a * b, b * a);
                }

                #[test]
                fn mul_associative(a in $strategy, b in $strategy, c in $strategy) {
                    prop_assert_eq!((a * b) * c, a * (b * c));
                }

                #[test]
                fn mul_identity(a in $strategy) {
                    prop_assert_eq!(a * <$ty>::ONE, a);
                    prop_assert_eq!(a * <$ty>::NEG_ONE, -a);
                }

                #[test]
                fn distributive(a in $strategy, b in $strategy, c in $strategy) {
                    prop_assert_eq!(a * (b + c), a * b + a * c);
                    prop_assert_eq!((a + b) * c, a * c + b * c);
                }

                #[test]
                fn subtraction_is_add_of_negation(a in $strategy, b in $strategy) {
                    prop_assert_eq!(a - b, a + (-b));
                }

                #[test]
                fn strassen_m1_identity(
                    a11 in $strategy, a22 in $strategy,
                    b11 in $strategy, b22 in $strategy,
                ) {
                    // The scalar shadow of Strassen's M1 recombination:
                    // (a11 + a22)(b11 + b22) expands correctly.
                    let lhs = (a11 + a22) * (b11 + b22);
                    let rhs = a11 * b11 + a11 * b22 + a22 * b11 + a22 * b22;
                    prop_assert_eq!(lhs, rhs);
                }
            }
        }
    };
}

field_axioms!(q64_axioms, small_q(), Q64);
field_axioms!(gf31_axioms, any_gf(), Gf31);

mod q64_only {
    use super::*;

    proptest! {
        #[test]
        fn mul_inverse(a in small_q()) {
            prop_assume!(a != Q64::ZERO);
            prop_assert_eq!(a * a.recip(), Q64::ONE);
        }

        #[test]
        fn reduction_canonical(n in -1000i64..=1000, d in 1i64..=1000) {
            let q = Q64::new(n, d);
            // gcd(num, den) == 1 and den > 0.
            let g = {
                let (mut a, mut b) = (q.numer().unsigned_abs(), q.denom().unsigned_abs());
                while b != 0 { let t = a % b; a = b; b = t; }
                a
            };
            prop_assert!(q.denom() > 0);
            prop_assert!(q.numer() == 0 || g == 1, "not reduced: {}", q);
        }

        #[test]
        fn order_agrees_with_f64(a in small_q(), b in small_q()) {
            // At these magnitudes f64 comparison is exact enough to agree
            // with the exact cross-multiplied order unless values are equal.
            if a != b {
                prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
            }
        }

        #[test]
        fn to_f64_from_f64_roundtrip_on_dyadics(n in -4096i64..=4096, k in 0u32..=8) {
            let x = n as f64 / (1i64 << k) as f64;
            prop_assert_eq!(Q64::from_f64(x).to_f64(), x);
        }
    }
}

mod gf31_only {
    use super::*;

    proptest! {
        #[test]
        fn mul_inverse(a in any_gf()) {
            prop_assume!(a != Gf31::ZERO);
            prop_assert_eq!(a * a.inv(), Gf31::ONE);
        }

        #[test]
        fn embedding_is_a_ring_hom(x in -100_000i64..=100_000, y in -100_000i64..=100_000) {
            prop_assert_eq!(Gf31::new(x) + Gf31::new(y), Gf31::new(x + y));
            prop_assert_eq!(Gf31::new(x) * Gf31::new(y), Gf31::new(x * y));
            prop_assert_eq!(-Gf31::new(x), Gf31::new(-x));
        }

        #[test]
        fn frobenius_fixed_points(a in any_gf()) {
            // x^p = x for all x in GF(p).
            prop_assert_eq!(a.pow(ata_field::gf::P as u64), a);
        }
    }
}
