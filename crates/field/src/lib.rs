//! Exact-arithmetic scalar types for the `ata` workspace.
//!
//! Section 1 of Arrigoni et al. (ICPP 2021) claims that, in contrast to
//! the skew-orthogonal construction of Dumas, Pernet and Sedoglavic
//! (ISSAC 2020) — which requires fields where `i^2 = -1` exists, ruling
//! out `R` and `Q` — **AtA works on any algebraic field**, because it
//! only uses ring operations (`+`, `-`, `*`) and the symmetry
//! `C12 = C21^T`.
//!
//! Floating-point tests can only check this claim up to rounding error.
//! This crate makes the claim *decidable*: it provides two exact field
//! implementations of [`ata_mat::Scalar`],
//!
//! * [`Q64`] — reduced rationals over `i64` with overflow-checked
//!   arithmetic (a faithful model of `Q` for bounded workloads), and
//! * [`Gf31`] — the prime field `GF(2^31 - 1)` (a Mersenne prime, so
//!   reduction is two shifts and an add),
//!
//! so that the whole algorithm stack — `syrk`/`gemm` kernels, the
//! Strassen recursion with its virtual padding, AtA itself, the task
//! trees and the distributed gather sums — can be run over `Q` and
//! `GF(p)` and compared against the naive `O(n^3)` oracle with **exact
//! equality**, not tolerances. Any sign error, lost term or misplaced
//! block in the Strassen recombination shows up as a hard mismatch.
//!
//! Both types are ordinary `Copy` scalars; no allocation happens during
//! arithmetic. `Q64` panics on overflow rather than silently wrapping:
//! exactness is the whole point, so saturation would be a bug factory.
//!
//! # Example
//!
//! ```
//! use ata_field::Q64;
//! use ata_mat::{Matrix, Scalar, reference};
//!
//! // An exact Gram matrix of a 3x2 rational matrix.
//! let a = Matrix::from_fn(3, 2, |i, j| Q64::new((i + j) as i64, 2));
//! let mut c = Matrix::zeros(2, 2);
//! reference::syrk_ln(Q64::ONE, a.as_ref(), &mut c.as_mut());
//! assert_eq!(c[(0, 0)], Q64::new(5, 4)); // 0 + 1/4 + 1
//! ```

#![forbid(unsafe_code)]

pub mod gf;
pub mod rational;

pub use gf::Gf31;
pub use rational::Q64;

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::Scalar;

    #[test]
    fn names_are_distinct_from_float_scalars() {
        assert_eq!(<Q64 as Scalar>::NAME, "q64");
        assert_eq!(<Gf31 as Scalar>::NAME, "gf31");
    }

    #[test]
    fn identities_behave() {
        assert_eq!(Q64::ZERO + Q64::ONE, Q64::ONE);
        assert_eq!(Gf31::ZERO + Gf31::ONE, Gf31::ONE);
        assert_eq!(Q64::ONE + Q64::NEG_ONE, Q64::ZERO);
        assert_eq!(Gf31::ONE + Gf31::NEG_ONE, Gf31::ZERO);
    }
}
