//! [`Q64`] — reduced rationals over `i64` with overflow-checked arithmetic.
//!
//! A faithful, allocation-free model of `Q` for bounded workloads. Every
//! value is kept in lowest terms with a strictly positive denominator, so
//! equality is structural and hashing/ordering are consistent. All
//! arithmetic goes through `i128` intermediates and panics (with the
//! offending operands in the message) if a reduced result no longer fits
//! in `i64` — silent wrapping would defeat the purpose of an exact type.

use ata_mat::Scalar;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A rational number `num / den` in lowest terms, `den > 0`.
///
/// Implements [`Scalar`], so every kernel and algorithm in the workspace
/// runs over it unchanged — and exactly.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q64 {
    num: i64,
    den: i64,
}

/// Greatest common divisor (non-negative, `gcd(0, 0) = 0`).
const fn gcd_u(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[track_caller]
fn narrow(x: i128, what: &str) -> i64 {
    i64::try_from(x).unwrap_or_else(|_| panic!("Q64 overflow in {what}: {x} does not fit i64"))
}

impl Q64 {
    /// Construct `num / den`, reducing to lowest terms.
    ///
    /// # Panics
    /// If `den == 0`.
    #[track_caller]
    pub fn new(num: i64, den: i64) -> Self {
        assert!(den != 0, "Q64: zero denominator");
        Self::reduce(num as i128, den as i128)
    }

    /// Construct the integer `n / 1`.
    pub const fn from_int(n: i64) -> Self {
        Q64 { num: n, den: 1 }
    }

    /// Numerator of the reduced form.
    pub const fn numer(self) -> i64 {
        self.num
    }

    /// Denominator of the reduced form (always positive).
    pub const fn denom(self) -> i64 {
        self.den
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// If `self` is zero.
    #[track_caller]
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "Q64: division by zero");
        if self.num < 0 {
            Q64 {
                num: narrow(-(self.den as i128), "recip"),
                den: narrow(-(self.num as i128), "recip"),
            }
        } else {
            Q64 {
                num: self.den,
                den: self.num,
            }
        }
    }

    /// True if the value is an integer (denominator 1).
    pub const fn is_integer(self) -> bool {
        self.den == 1
    }

    #[track_caller]
    fn reduce(num: i128, den: i128) -> Self {
        debug_assert!(den != 0);
        let sign: i128 = if den < 0 { -1 } else { 1 };
        let g = gcd_u(num.unsigned_abs(), den.unsigned_abs());
        if g == 0 {
            return Q64 { num: 0, den: 1 };
        }
        let g = g as i128;
        Q64 {
            num: narrow(sign * (num / g), "reduce"),
            den: narrow(sign * den / g, "reduce"),
        }
    }
}

impl fmt::Debug for Q64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl fmt::Display for Q64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl Default for Q64 {
    fn default() -> Self {
        Q64 { num: 0, den: 1 }
    }
}

impl PartialOrd for Q64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Q64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Denominators are positive, so cross-multiplication preserves
        // order; i128 cannot overflow on i64 products.
        let lhs = self.num as i128 * other.den as i128;
        let rhs = other.num as i128 * self.den as i128;
        lhs.cmp(&rhs)
    }
}

impl Add for Q64 {
    type Output = Q64;
    #[track_caller]
    fn add(self, rhs: Self) -> Self {
        let num = self.num as i128 * rhs.den as i128 + rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Q64::reduce(num, den)
    }
}

impl Sub for Q64 {
    type Output = Q64;
    #[track_caller]
    fn sub(self, rhs: Self) -> Self {
        let num = self.num as i128 * rhs.den as i128 - rhs.num as i128 * self.den as i128;
        let den = self.den as i128 * rhs.den as i128;
        Q64::reduce(num, den)
    }
}

impl Mul for Q64 {
    type Output = Q64;
    #[track_caller]
    fn mul(self, rhs: Self) -> Self {
        // Cross-reduce before multiplying to keep intermediates small:
        // (a/b)(c/d) = (a/gcd(a,d))(c/gcd(c,b)) / ((b/gcd(c,b))(d/gcd(a,d))).
        let g1 = gcd_u(
            self.num.unsigned_abs() as u128,
            rhs.den.unsigned_abs() as u128,
        )
        .max(1) as i128;
        let g2 = gcd_u(
            rhs.num.unsigned_abs() as u128,
            self.den.unsigned_abs() as u128,
        )
        .max(1) as i128;
        let num = (self.num as i128 / g1) * (rhs.num as i128 / g2);
        let den = (self.den as i128 / g2) * (rhs.den as i128 / g1);
        Q64::reduce(num, den)
    }
}

impl Div for Q64 {
    type Output = Q64;
    #[allow(clippy::suspicious_arithmetic_impl)] // field division is multiplication by the inverse
    #[track_caller]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl Neg for Q64 {
    type Output = Q64;
    #[track_caller]
    fn neg(self) -> Self {
        Q64 {
            num: narrow(-(self.num as i128), "neg"),
            den: self.den,
        }
    }
}

impl AddAssign for Q64 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Q64 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Q64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Q64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Q64::default(), |a, b| a + b)
    }
}

impl Scalar for Q64 {
    const ZERO: Self = Q64 { num: 0, den: 1 };
    const ONE: Self = Q64 { num: 1, den: 1 };
    const NEG_ONE: Self = Q64 { num: -1, den: 1 };
    const NAME: &'static str = "q64";

    /// Exact conversion: every finite `f64` is a dyadic rational
    /// `mantissa * 2^exp`.
    ///
    /// # Panics
    /// If the value is not finite or the exact rational does not fit
    /// (`|exp|` too large for `i64` numerator/denominator).
    #[track_caller]
    fn from_f64(x: f64) -> Self {
        assert!(x.is_finite(), "Q64::from_f64({x}): not finite");
        if x == 0.0 {
            return Q64::ZERO;
        }
        // Decompose into mantissa and binary exponent.
        let bits = x.to_bits();
        let sign = if bits >> 63 == 1 { -1i64 } else { 1 };
        let biased = ((bits >> 52) & 0x7ff) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mut mant, mut exp) = if biased == 0 {
            (frac as i64, -1074i64) // subnormal
        } else {
            ((frac | (1 << 52)) as i64, biased - 1075)
        };
        while mant % 2 == 0 && exp < 0 {
            mant /= 2;
            exp += 1;
        }
        if exp >= 0 {
            assert!(exp < 63, "Q64::from_f64({x}): magnitude too large");
            Q64::from_int(sign * (mant << exp))
        } else {
            assert!(-exp < 63, "Q64::from_f64({x}): denominator too large");
            Q64 {
                num: sign * mant,
                den: 1i64 << (-exp),
            }
        }
    }

    fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Exact type: comparisons tolerate no error at all.
    fn epsilon() -> f64 {
        0.0
    }

    fn abs(self) -> Self {
        if self.num < 0 {
            -self
        } else {
            self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(n: i64, d: i64) -> Q64 {
        Q64::new(n, d)
    }

    #[test]
    fn construction_reduces_and_normalizes_sign() {
        assert_eq!(q(2, 4), q(1, 2));
        assert_eq!(q(-2, 4), q(1, -2));
        assert_eq!(q(-2, -4), q(1, 2));
        assert_eq!(q(0, -7), Q64::ZERO);
        assert_eq!(q(6, 3).numer(), 2);
        assert_eq!(q(6, 3).denom(), 1);
        assert!(q(5, -3).denom() > 0);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_rejected() {
        let _ = q(1, 0);
    }

    #[test]
    fn basic_arithmetic() {
        assert_eq!(q(1, 2) + q(1, 3), q(5, 6));
        assert_eq!(q(1, 2) - q(1, 3), q(1, 6));
        assert_eq!(q(2, 3) * q(3, 4), q(1, 2));
        assert_eq!(q(1, 2) / q(1, 4), q(2, 1));
        assert_eq!(-q(3, 5), q(-3, 5));
        assert_eq!(q(7, 3).recip(), q(3, 7));
        assert_eq!(q(-7, 3).recip(), q(-3, 7));
    }

    #[test]
    fn assign_ops_match_binary_ops() {
        let mut x = q(1, 3);
        x += q(1, 6);
        assert_eq!(x, q(1, 2));
        x -= q(1, 4);
        assert_eq!(x, q(1, 4));
        x *= q(8, 3);
        assert_eq!(x, q(2, 3));
    }

    #[test]
    fn sum_folds_exactly() {
        // Harmonic-ish sum that floats cannot represent exactly.
        let s: Q64 = (1..=9).map(|k| q(1, k)).sum();
        assert_eq!(s, q(7129, 2520));
    }

    #[test]
    fn ordering_is_total_and_cross_multiplied() {
        assert!(q(1, 3) < q(1, 2));
        assert!(q(-1, 2) < q(-1, 3));
        assert!(q(2, 4) == q(1, 2));
        let mut v = vec![q(3, 4), q(-1, 2), q(0, 1), q(5, 8)];
        v.sort();
        assert_eq!(v, vec![q(-1, 2), q(0, 1), q(5, 8), q(3, 4)]);
    }

    #[test]
    fn from_f64_is_exact_for_dyadics() {
        assert_eq!(Q64::from_f64(0.0), Q64::ZERO);
        assert_eq!(Q64::from_f64(1.0), Q64::ONE);
        assert_eq!(Q64::from_f64(-1.0), Q64::NEG_ONE);
        assert_eq!(Q64::from_f64(0.5), q(1, 2));
        assert_eq!(Q64::from_f64(-0.375), q(-3, 8));
        assert_eq!(Q64::from_f64(42.0), Q64::from_int(42));
        // Round-trips for every dyadic we produce.
        for i in -40i64..=40 {
            let x = i as f64 / 16.0;
            assert_eq!(Q64::from_f64(x).to_f64(), x);
        }
    }

    #[test]
    fn from_f64_handles_subnormal_scale_rejection() {
        // 2^-1074 needs a denominator far beyond i64: must panic, not wrap.
        let r = std::panic::catch_unwind(|| Q64::from_f64(f64::MIN_POSITIVE / 1e10));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "not finite")]
    fn from_f64_rejects_nan() {
        let _ = Q64::from_f64(f64::NAN);
    }

    #[test]
    fn overflow_panics_cleanly() {
        let big = Q64::from_int(i64::MAX / 2 + 1);
        let r = std::panic::catch_unwind(|| big + big);
        assert!(r.is_err(), "doubling near-max must overflow-panic");
        let r = std::panic::catch_unwind(|| big * Q64::from_int(3));
        assert!(r.is_err());
    }

    #[test]
    fn cross_reduction_avoids_spurious_overflow() {
        // (2^40 / 3) * (3 / 2^40) = 1: naive multiplication would need
        // 2^80 intermediates; cross-reduction keeps it tiny.
        let a = q(1 << 40, 3);
        let b = q(3, 1 << 40);
        assert_eq!(a * b, Q64::ONE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(q(3, 1).to_string(), "3");
        assert_eq!(q(-3, 7).to_string(), "-3/7");
        assert_eq!(format!("{:?}", q(3, 7)), "3/7");
    }

    #[test]
    fn abs_and_is_integer() {
        assert_eq!(q(-5, 2).abs(), q(5, 2));
        assert_eq!(q(5, 2).abs(), q(5, 2));
        assert!(Q64::from_int(4).is_integer());
        assert!(!q(1, 2).is_integer());
    }

    #[test]
    fn scalar_contract() {
        assert_eq!(<Q64 as Scalar>::epsilon(), 0.0);
        assert_eq!(Scalar::mul_add(q(1, 2), q(1, 3), q(1, 6)), q(1, 3));
        assert_eq!(q(5, 4).to_f64(), 1.25);
    }
}
