//! [`Gf31`] — the prime field `GF(2^31 - 1)`.
//!
//! `p = 2^31 - 1` is a Mersenne prime, so `x mod p` reduces with a shift
//! and an add instead of a division; products of two canonical
//! representatives fit comfortably in `u64`. Finite fields of prime
//! characteristic are exactly the setting of Dumas et al. (ISSAC 2020),
//! the A·Aᵀ competitor the paper contrasts with in §1 — running AtA over
//! `GF(p)` shows the two approaches meet on common ground, while AtA
//! additionally covers `R` and `Q`.
//!
//! The [`ata_mat::Scalar`] super-traits require `PartialOrd` and `abs`;
//! a finite field has no compatible order, so `Gf31` orders by canonical
//! representative in `[0, p)` and `abs` is the identity. Both are only
//! used by test/diagnostic helpers (`max_abs_diff`), never by the
//! algorithms themselves, and `a == b ⇔ |a - b| == 0` still holds, which
//! is all the exact-equality checks need.

use ata_mat::Scalar;
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `p = 2^31 - 1 = 2147483647`.
pub const P: u32 = (1 << 31) - 1;

/// An element of `GF(2^31 - 1)`, stored as its canonical representative
/// in `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf31(u32);

/// Mersenne reduction of a value `< 2p`: conditional subtract.
#[inline]
const fn red_once(x: u32) -> u32 {
    if x >= P {
        x - P
    } else {
        x
    }
}

/// Mersenne reduction of a full `u64` product into `[0, p)`.
#[inline]
const fn red_u64(mut x: u64) -> u32 {
    // Fold high bits twice: (hi << 31 | lo) ≡ hi + lo (mod 2^31 - 1).
    x = (x >> 31) + (x & P as u64);
    x = (x >> 31) + (x & P as u64);
    red_once(x as u32)
}

impl Gf31 {
    /// Embed an integer (of either sign) into the field.
    pub const fn new(x: i64) -> Self {
        let r = x.rem_euclid(P as i64);
        Gf31(r as u32)
    }

    /// The canonical representative in `[0, p)`.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// Field exponentiation by repeated squaring.
    pub fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Gf31(1);
        while e > 0 {
            if e & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            e >>= 1;
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^(p-2)`).
    ///
    /// # Panics
    /// If `self` is zero.
    #[track_caller]
    pub fn inv(self) -> Self {
        assert!(self.0 != 0, "Gf31: inverse of zero");
        self.pow(P as u64 - 2)
    }
}

impl fmt::Debug for Gf31 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}₍₃₁₎", self.0)
    }
}

impl fmt::Display for Gf31 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl Add for Gf31 {
    type Output = Gf31;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf31(red_once(self.0 + rhs.0))
    }
}

impl Sub for Gf31 {
    type Output = Gf31;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Gf31(red_once(self.0 + P - rhs.0))
    }
}

impl Mul for Gf31 {
    type Output = Gf31;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Gf31(red_u64(self.0 as u64 * rhs.0 as u64))
    }
}

impl Div for Gf31 {
    type Output = Gf31;
    #[allow(clippy::suspicious_arithmetic_impl)] // field division is multiplication by the inverse
    #[track_caller]
    fn div(self, rhs: Self) -> Self {
        self * rhs.inv()
    }
}

impl Neg for Gf31 {
    type Output = Gf31;
    #[inline]
    fn neg(self) -> Self {
        Gf31(red_once(P - self.0))
    }
}

impl AddAssign for Gf31 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl SubAssign for Gf31 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl MulAssign for Gf31 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Gf31 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Gf31(0), |a, b| a + b)
    }
}

impl Scalar for Gf31 {
    const ZERO: Self = Gf31(0);
    const ONE: Self = Gf31(1);
    const NEG_ONE: Self = Gf31(P - 1);
    const NAME: &'static str = "gf31";

    /// Round to the nearest integer, then embed mod `p`. Generators in
    /// this workspace feed integral values, so no information is lost.
    fn from_f64(x: f64) -> Self {
        Gf31::new(x.round() as i64)
    }

    fn to_f64(self) -> f64 {
        self.0 as f64
    }

    /// Exact type: comparisons tolerate no error at all.
    fn epsilon() -> f64 {
        0.0
    }

    /// Identity — a finite field has no magnitude; see module docs.
    fn abs(self) -> Self {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(x: i64) -> Gf31 {
        Gf31::new(x)
    }

    #[test]
    fn canonical_embedding() {
        assert_eq!(g(0).value(), 0);
        assert_eq!(g(P as i64).value(), 0);
        assert_eq!(g(P as i64 + 5).value(), 5);
        assert_eq!(g(-1).value(), P - 1);
        assert_eq!(g(-(P as i64)).value(), 0);
        assert_eq!(g(i64::MIN).value(), Gf31::new(i64::MIN).value()); // total
    }

    #[test]
    fn add_sub_wrap_at_modulus() {
        assert_eq!(g(P as i64 - 1) + g(1), g(0));
        assert_eq!(g(0) - g(1), g(-1));
        assert_eq!(g(5) - g(7), g(P as i64 - 2));
        assert_eq!(-g(1), g(P as i64 - 1));
        assert_eq!(-g(0), g(0));
    }

    #[test]
    fn mersenne_reduction_is_exact_at_extremes() {
        // Largest possible product of canonical representatives.
        let m = g(P as i64 - 1);
        let prod = m * m;
        // (p-1)^2 mod p = 1.
        assert_eq!(prod, g(1));
        // A couple of mid-range spot checks against i128 arithmetic.
        for (a, b) in [(123_456_789i64, 2_000_000_000), (P as i64 - 7, 77_777_777)] {
            let want = ((a as i128 * b as i128) % P as i128) as i64;
            assert_eq!(g(a) * g(b), g(want), "{a} * {b}");
        }
    }

    #[test]
    fn fermat_inverse() {
        for x in [1i64, 2, 3, 12345, P as i64 - 1] {
            let xi = g(x).inv();
            assert_eq!(g(x) * xi, g(1), "x = {x}");
        }
        assert_eq!(g(10) / g(5), g(2));
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn zero_has_no_inverse() {
        let _ = g(0).inv();
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = g(987_654_321);
        let mut acc = g(1);
        for e in 0..12u64 {
            assert_eq!(x.pow(e), acc, "e = {e}");
            acc *= x;
        }
        assert_eq!(x.pow(P as u64 - 1), g(1), "Fermat: x^(p-1) = 1");
    }

    #[test]
    fn scalar_contract() {
        assert_eq!(<Gf31 as Scalar>::ZERO, g(0));
        assert_eq!(<Gf31 as Scalar>::ONE, g(1));
        assert_eq!(<Gf31 as Scalar>::NEG_ONE + <Gf31 as Scalar>::ONE, g(0));
        assert_eq!(<Gf31 as Scalar>::epsilon(), 0.0);
        assert_eq!(Gf31::from_f64(-3.0), g(-3));
        assert_eq!(Gf31::from_f64(7.4), g(7));
        assert_eq!(g(42).to_f64(), 42.0);
        assert_eq!(g(-5).abs(), g(-5), "abs is the identity");
        assert_eq!(Scalar::mul_add(g(3), g(4), g(5)), g(17));
    }

    #[test]
    fn sum_folds() {
        let s: Gf31 = (1..=100i64).map(g).sum();
        assert_eq!(s, g(5050));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(g(7).to_string(), "7");
        assert!(format!("{:?}", g(7)).contains('7'));
    }
}
