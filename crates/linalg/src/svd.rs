//! Singular values and right singular vectors via the Gram matrix —
//! §1: "the Singular Value Decomposition (SVD) of a matrix A can be
//! computed by studying the eigenproblem for A^T A and A A^T".
//!
//! `A^T A = V diag(sigma^2) V^T`, so the singular values are the square
//! roots of the Gram eigenvalues and `V` holds the right singular
//! vectors. The Gram matrix is computed with AtA; the eigenproblem with
//! [`crate::eigen::jacobi_eigen`]. (Squaring the spectrum halves the
//! attainable relative accuracy of the *small* singular values — the
//! standard trade of the Gram route, acceptable where the paper's
//! applications use it.)

use crate::eigen::jacobi_eigen;
use crate::gram_lower_opts;
use ata_core::AtaOptions;
use ata_mat::{MatRef, Matrix, Scalar};

/// Singular values of `A` (descending). Negative Gram eigenvalues
/// produced by roundoff are clamped to zero.
pub fn singular_values<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> Vec<f64> {
    let g = gram_lower_opts(a, opts);
    let (w, _) = jacobi_eigen(&g, 1e-12);
    w.into_iter().map(|x| x.max(0.0).sqrt()).collect()
}

/// Full thin SVD data from the Gram route: `(sigma, V)` with `sigma`
/// descending and the right singular vectors as columns of `V`
/// (`A = U diag(sigma) V^T`; `U`'s columns are `A v_i / sigma_i` for
/// nonzero `sigma_i`).
pub fn gram_svd<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> (Vec<f64>, Matrix<f64>) {
    let g = gram_lower_opts(a, opts);
    let (w, v) = jacobi_eigen(&g, 1e-12);
    (w.into_iter().map(|x| x.max(0.0).sqrt()).collect(), v)
}

/// Spectral condition number `sigma_max / sigma_min` (infinite for
/// rank-deficient input).
pub fn condition_number<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> f64 {
    let s = singular_values(a, opts);
    let (max, min) = (
        s.first().copied().unwrap_or(0.0),
        s.last().copied().unwrap_or(0.0),
    );
    if min == 0.0 {
        f64::INFINITY
    } else {
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::gen;

    #[test]
    fn identity_has_unit_singular_values() {
        let a = Matrix::<f64>::identity(5);
        let s = singular_values(a.as_ref(), &AtaOptions::serial());
        for v in s {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }

    #[test]
    fn known_diagonal_rectangular() {
        // A = diag(3, 2) padded to 4x2: singular values 3, 2.
        let mut a = Matrix::<f64>::zeros(4, 2);
        a[(0, 0)] = 3.0;
        a[(1, 1)] = 2.0;
        let s = singular_values(a.as_ref(), &AtaOptions::serial());
        assert!((s[0] - 3.0).abs() < 1e-10);
        assert!((s[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn frobenius_identity() {
        // sum sigma_i^2 == ||A||_F^2.
        let a = gen::standard::<f64>(8, 20, 10);
        let s = singular_values(a.as_ref(), &AtaOptions::serial());
        let sum_sq: f64 = s.iter().map(|x| x * x).sum();
        let frob_sq = a.as_ref().frobenius().powi(2);
        assert!((sum_sq - frob_sq).abs() < 1e-8 * frob_sq.max(1.0));
    }

    #[test]
    fn right_singular_vectors_diagonalize_gram() {
        let a = gen::standard::<f64>(9, 16, 6);
        let (s, v) = gram_svd(a.as_ref(), &AtaOptions::serial());
        // ||A v_i||_2 == sigma_i.
        for c in 0..6 {
            let mut norm_sq = 0.0;
            for i in 0..16 {
                let mut av = 0.0;
                for j in 0..6 {
                    av += a[(i, j)] * v[(j, c)];
                }
                norm_sq += av * av;
            }
            assert!((norm_sq.sqrt() - s[c]).abs() < 1e-8, "column {c}");
        }
    }

    #[test]
    fn condition_number_detects_rank_deficiency() {
        let mut a = gen::standard::<f64>(10, 12, 4);
        for i in 0..12 {
            a[(i, 3)] = a[(i, 0)]; // duplicate column
        }
        assert!(condition_number(a.as_ref(), &AtaOptions::serial()) > 1e6);
        let good = gen::tall_well_conditioned::<f64>(11, 30, 6);
        assert!(condition_number(good.as_ref(), &AtaOptions::serial()) < 10.0);
    }
}
