//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! Small, robust, and quadratically convergent — exactly what is needed
//! to diagonalize the Gram matrices produced by AtA (`svd` builds on
//! it, following the paper's §1 remark that "the SVD of a matrix A can
//! be computed by studying the eigenproblem for A^T A").

use ata_mat::{Matrix, Scalar};

/// Eigen decomposition of a symmetric matrix by the cyclic Jacobi
/// method: returns `(eigenvalues, eigenvectors)` with eigenvalues in
/// **descending** order and eigenvectors as the *columns* of the
/// returned matrix (so `S = V diag(w) V^T`).
///
/// Only the lower triangle of `s` is read (AtA-output friendly).
///
/// # Panics
/// If `s` is not square or the sweep limit is exhausted before the
/// off-diagonal norm reaches `tol * frobenius(s)` (ill behaviour on
/// non-symmetric input).
pub fn jacobi_eigen<T: Scalar>(s: &Matrix<T>, tol: f64) -> (Vec<f64>, Matrix<f64>) {
    let n = s.rows();
    assert_eq!(s.cols(), n, "jacobi_eigen needs a square matrix");

    // Work in f64, reading the lower triangle symmetrically.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            let v = if i >= j {
                s[(i, j)].to_f64()
            } else {
                s[(j, i)].to_f64()
            };
            a[i * n + j] = v;
        }
    }
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let frob: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let target = (tol * frob).max(f64::MIN_POSITIVE);

    let off = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in 0..i {
                s += 2.0 * a[i * n + j] * a[i * n + j];
            }
        }
        s.sqrt()
    };

    let max_sweeps = 30 + 2 * n;
    let mut sweeps = 0;
    while off(&a) > target {
        assert!(
            sweeps < max_sweeps,
            "jacobi_eigen did not converge in {max_sweeps} sweeps (non-symmetric input?)"
        );
        sweeps += 1;
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() <= target / (n as f64) {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                // Rotation angle (Golub & Van Loan 8.4).
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s_ = t * c;
                // A <- J^T A J on rows/cols p, q.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s_ * akq;
                    a[k * n + q] = s_ * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s_ * aqk;
                    a[q * n + k] = s_ * apk + c * aqk;
                }
                // Accumulate V <- V J.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s_ * vkq;
                    v[k * n + q] = s_ * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort descending.
    let mut order: Vec<usize> = (0..n).collect();
    let w: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    // total_cmp gives a total order even if an eigenvalue is NaN
    // (possible only on non-finite input), so sorting cannot panic.
    order.sort_by(|&i, &j| w[j].total_cmp(&w[i]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| w[i]).collect();
    let eigenvectors = Matrix::from_fn(n, n, |r, c| v[r * n + order[c]]);
    (eigenvalues, eigenvectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ata_mat::{gen, reference};

    #[test]
    fn diagonal_matrix_is_its_own_decomposition() {
        let mut d = Matrix::<f64>::zeros(3, 3);
        d[(0, 0)] = 3.0;
        d[(1, 1)] = 1.0;
        d[(2, 2)] = 2.0;
        let (w, v) = jacobi_eigen(&d, 1e-14);
        assert!((w[0] - 3.0).abs() < 1e-12);
        assert!((w[1] - 2.0).abs() < 1e-12);
        assert!((w[2] - 1.0).abs() < 1e-12);
        // Eigenvectors are signed unit vectors.
        for c in 0..3 {
            let norm: f64 = (0..3).map(|r| v[(r, c)] * v[(r, c)]).sum();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let mut s = Matrix::<f64>::zeros(2, 2);
        s[(0, 0)] = 2.0;
        s[(1, 0)] = 1.0;
        s[(1, 1)] = 2.0;
        let (w, _) = jacobi_eigen(&s, 1e-14);
        assert!((w[0] - 3.0).abs() < 1e-12);
        assert!((w[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstructs_gram_matrix() {
        let a = gen::standard::<f64>(5, 12, 8);
        let g = reference::gram(a.as_ref());
        let (w, v) = jacobi_eigen(&g, 1e-13);
        // V diag(w) V^T == G.
        let n = 8;
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += v[(i, k)] * w[k] * v[(j, k)];
                }
                assert!((s - g[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
        // Gram eigenvalues are nonnegative.
        for &x in &w {
            assert!(x > -1e-9);
        }
        // Sorted descending.
        assert!(w.windows(2).all(|p| p[0] >= p[1] - 1e-12));
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = gen::standard::<f64>(6, 10, 6);
        let g = reference::gram(a.as_ref());
        let (_, v) = jacobi_eigen(&g, 1e-13);
        for c1 in 0..6 {
            for c2 in 0..6 {
                let dot: f64 = (0..6).map(|r| v[(r, c1)] * v[(r, c2)]).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "({c1},{c2})");
            }
        }
    }

    #[test]
    fn trace_is_preserved() {
        let a = gen::standard::<f64>(7, 9, 5);
        let g = reference::gram(a.as_ref());
        let trace: f64 = (0..5).map(|i| g[(i, i)]).sum();
        let (w, _) = jacobi_eigen(&g, 1e-13);
        let sum: f64 = w.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }
}
