//! Streaming factorization kernels: rank-k updates and downdates of a
//! factored Gram matrix in `O(n²k)`, instead of an `O(n³)` refactor.
//!
//! `GramAccumulator` maintains `C = AᵀA` incrementally; this module
//! maintains a *factorization* of `C` under the same stream operations:
//!
//! * [`LdltFactor`] — a square-root-free `C = L D Lᵀ` factor that
//!   supports signed rank-k sweeps ([`LdltFactor::rank_update`], one
//!   Givens-free column sweep per streamed row, 4 flops per updated
//!   entry — the method C1 recurrence of Gill–Golub–Murray–Saunders),
//!   `O(n)` decay, and forward/backward solves. The factor is stored
//!   as `Lᵀ` in row-major order so both the update sweep and the
//!   substitutions walk contiguous memory. This is the production
//!   representation behind the facade's `FactoredGram`.
//! * [`llt_rank_update`] / [`llt_rank1_update`] / [`llt_rank1_downdate`]
//!   — classical `L Lᵀ` sweeps (Givens rotations for updates,
//!   hyperbolic rotations for downdates) operating directly on the
//!   lower-triangular factor produced by
//!   [`crate::cholesky::cholesky_factor`], for callers that already
//!   hold an `L Lᵀ` factor.
//! * [`ShiftedSolver`] — a one-time Householder tridiagonalization
//!   `C = Q T Qᵀ` after which *any* shifted system `(C + λI)x = b`
//!   solves in `O(n²)`; this is the kernel behind
//!   `RidgeSolver::solve_path` reusing one base factorization across a
//!   whole λ sweep.
//!
//! Downdating can fail: subtracting rows may make the implied matrix
//! indefinite. Every kernel detects the failing pivot *before* dividing
//! by it and returns the typed [`UpdateError::Indefinite`] — no NaN is
//! ever written into a factor.
//!
//! Scalar accounting: all `O(n²k)` / `O(n³)` work is performed in `T`
//! (so the op-counting `Tracked` scalar observes the asymptotics);
//! square roots and reciprocals have no `Scalar` method and go through
//! `f64` as uncounted per-column bookkeeping, mirroring the existing
//! `Tracked::abs` convention.

use ata_mat::{MatRef, Matrix, Scalar};

/// Failure modes of streaming factor maintenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateError {
    /// A pivot became zero, negative, or non-finite: the implied matrix
    /// is no longer positive definite. For a downdate this means the
    /// retracted rows were not a subset of the accumulated mass; the
    /// factor contents are unspecified (but finite) afterwards and must
    /// be refactored before further use.
    Indefinite {
        /// Column at which the pivot failed.
        column: usize,
    },
    /// An operand's length or shape does not match the factor's order.
    ShapeMismatch {
        /// Expected dimension (the factor's order `n`).
        expected: usize,
        /// Offending dimension supplied by the caller.
        got: usize,
    },
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Indefinite { column } => {
                write!(
                    f,
                    "factor update made the matrix indefinite (pivot at column {column})"
                )
            }
            UpdateError::ShapeMismatch { expected, got } => {
                write!(f, "operand shape mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

/// Uncounted reciprocal bookkeeping: `Scalar` has no division, so
/// pivot reciprocals are formed in `f64` like `Tracked::abs`.
#[inline]
fn recip<T: Scalar>(x: T) -> T {
    T::from_f64(1.0 / x.to_f64())
}

/// A square-root-free `C = L D Lᵀ` factorization maintained under
/// streaming rank-k updates.
///
/// `L` is unit lower triangular and `D` diagonal with strictly positive
/// entries (positive definiteness is an invariant: every constructor
/// and update checks pivots and fails typed rather than storing a bad
/// factor). Internally the factor is stored *transposed* — row `j` of
/// the backing matrix holds column `j` of `L` — so the rank-k sweep and
/// both substitution passes stream over contiguous rows.
///
/// ```
/// use ata_linalg::update::LdltFactor;
/// use ata_mat::Matrix;
///
/// // C = AᵀA for a small tall A, then stream one more row in.
/// let a = Matrix::from_fn(5, 3, |i, j| (1 + i * 3 + j) as f64);
/// let mut c = Matrix::<f64>::zeros(3, 3);
/// for j in 0..3 {
///     for k in 0..=j {
///         for i in 0..5 {
///             c[(j, k)] += a[(i, j)] * a[(i, k)];
///         }
///     }
///     c[(j, j)] += 1.0; // ridge mass keeps the example SPD
/// }
/// let mut f = LdltFactor::from_lower(c.as_ref()).unwrap();
/// let row = Matrix::from_vec(vec![0.5, -1.0, 2.0], 1, 3);
/// f.rank_update(1.0, row.as_ref()).unwrap(); // O(n²) instead of O(n³)
/// let x = f.solve(&[1.0, 2.0, 3.0]).unwrap();
/// assert_eq!(x.len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct LdltFactor<T: Scalar> {
    /// `Lᵀ` row-major: `ut[(j, i)] = L[(i, j)]` for `i > j`. The
    /// diagonal and strict lower part of `ut` are unused (zero).
    ut: Matrix<T>,
    /// The diagonal `D` (all entries `> 0`).
    d: Vec<T>,
    /// Cached reciprocals of `d` (uncounted bookkeeping).
    inv_d: Vec<T>,
    /// Column gather scratch for refactorization.
    s: Vec<T>,
    /// Row workspace for the rank-k sweep (`k · n` elements).
    wbuf: Vec<T>,
    /// Per-vector running α of the sweep recurrence.
    alphas: Vec<T>,
}

impl<T: Scalar> LdltFactor<T> {
    /// Factor the lower triangle of `g` (the strictly-upper part is
    /// never read, matching the AtA storage convention).
    ///
    /// # Errors
    /// [`UpdateError::Indefinite`] if `g` is not positive definite.
    ///
    /// # Panics
    /// If `g` is not square.
    pub fn from_lower(g: MatRef<'_, T>) -> Result<Self, UpdateError> {
        let n = g.rows();
        assert_eq!(g.cols(), n, "LDL^T needs a square matrix");
        let mut f = Self {
            ut: Matrix::zeros(n, n),
            d: vec![T::ZERO; n],
            inv_d: vec![T::ZERO; n],
            s: vec![T::ZERO; n],
            wbuf: Vec::new(),
            alphas: Vec::new(),
        };
        f.refactor_from_lower(g)?;
        Ok(f)
    }

    /// Order `n` of the factored matrix.
    pub fn order(&self) -> usize {
        self.d.len()
    }

    /// The diagonal `D` of the factorization.
    pub fn diag(&self) -> &[T] {
        &self.d
    }

    /// Re-factor from scratch in `O(n³/3)`, reusing all internal
    /// buffers (no allocation once constructed). Left-looking jki
    /// order: every inner loop is a contiguous row of the transposed
    /// factor.
    ///
    /// # Errors
    /// [`UpdateError::Indefinite`] if `g` is not positive definite; the
    /// factor must not be used afterwards until a refactor succeeds.
    ///
    /// # Panics
    /// If `g` is not square.
    pub fn refactor_from_lower(&mut self, g: MatRef<'_, T>) -> Result<(), UpdateError> {
        let n = self.order();
        assert_eq!(g.cols(), g.rows(), "LDL^T needs a square matrix");
        if g.rows() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: g.rows(),
            });
        }
        for j in 0..n {
            // Gather column j of the lower triangle: s[i] = g[i][j].
            for i in j..n {
                self.s[i] = *g.at(i, j);
            }
            // Subtract the contributions of previous columns:
            // s[i] -= L[j][k]·d[k] · L[i][k], streaming row k of Lᵀ.
            for k in 0..j {
                let row_k = self.ut.row(k);
                let vk = row_k[j] * self.d[k];
                if vk == T::ZERO {
                    continue;
                }
                for (si, lk) in self.s[j..].iter_mut().zip(&row_k[j..]) {
                    *si -= vk * *lk;
                }
            }
            let dj = self.s[j];
            let djf = dj.to_f64();
            if djf <= 0.0 || !djf.is_finite() {
                return Err(UpdateError::Indefinite { column: j });
            }
            let inv = recip(dj);
            self.d[j] = dj;
            self.inv_d[j] = inv;
            let row_j = self.ut.row_mut(j);
            for (lj, si) in row_j[j + 1..].iter_mut().zip(&self.s[j + 1..]) {
                *lj = *si * inv;
            }
        }
        Ok(())
    }

    /// Fold `α · chunkᵀ·chunk` into the factor: one GGMS method-C1
    /// column sweep per chunk row, `O(n²)` each, `O(n²k)` total — the
    /// streaming complement of `GramAccumulator::push_scaled`. `α < 0`
    /// downdates (sliding-window retraction), `α > 0` updates; both run
    /// the same recurrence.
    ///
    /// # Errors
    /// * [`UpdateError::ShapeMismatch`] if `chunk` does not have `n`
    ///   columns (the factor is untouched).
    /// * [`UpdateError::Indefinite`] if a downdate drives a pivot
    ///   non-positive. The failing pivot is detected *before* the
    ///   division, so no NaN is ever written; the factor contents are
    ///   finite but unspecified and must be refactored.
    pub fn rank_update(&mut self, alpha: T, chunk: MatRef<'_, T>) -> Result<(), UpdateError> {
        let n = self.order();
        if chunk.cols() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: chunk.cols(),
            });
        }
        let k = chunk.rows();
        if k == 0 || alpha == T::ZERO {
            return Ok(());
        }
        self.wbuf.clear();
        self.wbuf.resize(k * n, T::ZERO);
        for r in 0..k {
            self.wbuf[r * n..(r + 1) * n].copy_from_slice(chunk.row(r));
        }
        self.alphas.clear();
        self.alphas.resize(k, alpha);
        for j in 0..n {
            let row_j = self.ut.row_mut(j);
            for (r, a) in self.alphas.iter_mut().enumerate() {
                let w = &mut self.wbuf[r * n..(r + 1) * n];
                let p = w[j];
                if p == T::ZERO || *a == T::ZERO {
                    continue;
                }
                let ap = *a * p;
                let dp = self.d[j] + ap * p;
                let dpf = dp.to_f64();
                if dpf <= 0.0 || !dpf.is_finite() {
                    return Err(UpdateError::Indefinite { column: j });
                }
                let inv = recip(dp);
                let b = ap * inv;
                *a *= self.d[j] * inv;
                self.d[j] = dp;
                self.inv_d[j] = inv;
                // w uses the old column, the column the new w — both
                // tails are contiguous (row j of Lᵀ, row r of wbuf).
                for (lj, wi) in row_j[j + 1..].iter_mut().zip(&mut w[j + 1..]) {
                    *wi -= p * *lj;
                    *lj += b * *wi;
                }
            }
        }
        Ok(())
    }

    /// Scale the factored matrix by `beta > 0` (`C → βC`): `D → βD`,
    /// `L` unchanged — `O(n)`. This is the factor-side mirror of
    /// `GramAccumulator::decay`, and the reason LDLᵀ is the streaming
    /// representation of choice (an `L Lᵀ` factor needs `√β` and a full
    /// triangle scaling).
    ///
    /// # Panics
    /// If `beta <= 0` (a non-positive scale destroys definiteness).
    pub fn decay(&mut self, beta: T) {
        assert!(
            beta.to_f64() > 0.0,
            "decay factor must be positive to preserve definiteness"
        );
        for (dv, iv) in self.d.iter_mut().zip(self.inv_d.iter_mut()) {
            *dv *= beta;
            *iv = recip(*dv);
        }
    }

    /// Solve `C x = rhs` in place: unit forward substitution, diagonal
    /// scale, unit backward substitution — `2n²` flops and zero
    /// allocations.
    ///
    /// # Errors
    /// [`UpdateError::ShapeMismatch`] if `rhs.len() != n`.
    pub fn solve_in_place(&self, rhs: &mut [T]) -> Result<(), UpdateError> {
        let n = self.order();
        if rhs.len() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: rhs.len(),
            });
        }
        // L y = rhs (unit diagonal), saxpy form over rows of Lᵀ.
        for j in 0..n {
            let yj = rhs[j];
            if yj == T::ZERO {
                continue;
            }
            let row_j = self.ut.row(j);
            for (yi, lj) in rhs[j + 1..].iter_mut().zip(&row_j[j + 1..]) {
                *yi -= *lj * yj;
            }
        }
        // D z = y.
        for (yi, iv) in rhs.iter_mut().zip(&self.inv_d) {
            *yi *= *iv;
        }
        // Lᵀ x = z, dot form over rows of Lᵀ.
        for i in (0..n).rev() {
            let row_i = self.ut.row(i);
            let mut s = rhs[i];
            for (lj, xv) in row_i[i + 1..].iter().zip(&rhs[i + 1..]) {
                s -= *lj * *xv;
            }
            rhs[i] = s;
        }
        Ok(())
    }

    /// Solve `C x = rhs`, allocating the result vector.
    ///
    /// # Errors
    /// [`UpdateError::ShapeMismatch`] if `rhs.len() != n`.
    pub fn solve(&self, rhs: &[T]) -> Result<Vec<T>, UpdateError> {
        let mut x = rhs.to_vec();
        self.solve_in_place(&mut x)?;
        Ok(x)
    }

    /// Solve `C X = B` for an `n × p` right-hand-side block, column by
    /// column.
    ///
    /// # Errors
    /// [`UpdateError::ShapeMismatch`] if `rhs` does not have `n` rows.
    pub fn solve_multi(&self, rhs: MatRef<'_, T>) -> Result<Matrix<T>, UpdateError> {
        let n = self.order();
        if rhs.rows() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: rhs.rows(),
            });
        }
        let p = rhs.cols();
        let mut out = Matrix::zeros(n, p);
        let mut col = vec![T::ZERO; n];
        for c in 0..p {
            for (i, cv) in col.iter_mut().enumerate() {
                *cv = *rhs.at(i, c);
            }
            self.solve_in_place(&mut col)?;
            for (i, cv) in col.iter().enumerate() {
                out[(i, c)] = *cv;
            }
        }
        Ok(out)
    }

    /// `xᵀ C⁻¹ x` via one forward substitution (`x` is not modified):
    /// with `y = L⁻¹x`, the quadratic form is `Σ y_i² / d_i`. This is
    /// the leverage score of a candidate row against the accumulated
    /// Gram mass, at half the cost of a full solve.
    ///
    /// # Errors
    /// [`UpdateError::ShapeMismatch`] if `x.len() != n`.
    pub fn inv_quadform(&self, x: &[T]) -> Result<f64, UpdateError> {
        let n = self.order();
        if x.len() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: x.len(),
            });
        }
        let mut y = x.to_vec();
        for j in 0..n {
            let yj = y[j];
            if yj == T::ZERO {
                continue;
            }
            let row_j = self.ut.row(j);
            for (yi, lj) in y[j + 1..].iter_mut().zip(&row_j[j + 1..]) {
                *yi -= *lj * yj;
            }
        }
        let mut acc = 0.0f64;
        for (yi, dv) in y.iter().zip(&self.d) {
            let yf = yi.to_f64();
            acc += yf * yf / dv.to_f64();
        }
        Ok(acc)
    }

    /// `log det C = Σ log d_i` — exact in the factored form, no
    /// overflow for determinants far outside `f64` range.
    pub fn logdet(&self) -> f64 {
        self.d.iter().map(|v| v.to_f64().ln()).sum()
    }

    /// Materialize the conventional lower-triangular `L` (unit
    /// diagonal) — diagnostics and tests; the streaming paths never
    /// need it.
    pub fn unit_lower(&self) -> Matrix<T> {
        let n = self.order();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                T::ONE
            } else if i > j {
                self.ut[(j, i)]
            } else {
                T::ZERO
            }
        })
    }
}

/// Rank-1 update of a Cholesky factor: `L Lᵀ → L'L'ᵀ = L Lᵀ + w wᵀ` by
/// a sweep of Givens rotations (LINPACK `dchud`). `w` is consumed as
/// workspace. Operates on the conventional lower-triangular factor
/// produced by [`crate::cholesky::cholesky_factor`]; for streaming
/// workloads prefer [`LdltFactor`], whose transposed storage keeps the
/// sweep contiguous.
///
/// # Errors
/// * [`UpdateError::ShapeMismatch`] if `w.len() != n`.
/// * [`UpdateError::Indefinite`] if a diagonal entry of `l` is zero (a
///   corrupt factor); detected before dividing, never writing NaN.
///
/// # Panics
/// If `l` is not square.
pub fn llt_rank1_update<T: Scalar>(l: &mut Matrix<T>, w: &mut [T]) -> Result<(), UpdateError> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "rank-1 update needs a square factor");
    if w.len() != n {
        return Err(UpdateError::ShapeMismatch {
            expected: n,
            got: w.len(),
        });
    }
    for j in 0..n {
        let ljj = l[(j, j)];
        let wj = w[j];
        let rr = ljj * ljj + wj * wj;
        let rrf = rr.to_f64();
        if rrf <= 0.0 || !rrf.is_finite() {
            return Err(UpdateError::Indefinite { column: j });
        }
        let rf = rrf.sqrt();
        let c = T::from_f64(ljj.to_f64() / rf);
        let s = T::from_f64(wj.to_f64() / rf);
        l[(j, j)] = T::from_f64(rf);
        for i in (j + 1)..n {
            let t = l[(i, j)];
            l[(i, j)] = c * t + s * w[i];
            w[i] = c * w[i] - s * t;
        }
    }
    Ok(())
}

/// Rank-1 downdate of a Cholesky factor: `L Lᵀ → L'L'ᵀ = L Lᵀ − w wᵀ`
/// by a sweep of hyperbolic rotations (LINPACK `dchdd`). `w` is
/// consumed as workspace.
///
/// # Errors
/// * [`UpdateError::ShapeMismatch`] if `w.len() != n`.
/// * [`UpdateError::Indefinite`] if the downdated matrix is not
///   positive definite (`l_jj² − w_j² ≤ 0` at some column). The check
///   runs *before* any division at that column, so the factor stays
///   finite — but its contents are unspecified and must be refactored.
///
/// # Panics
/// If `l` is not square.
pub fn llt_rank1_downdate<T: Scalar>(l: &mut Matrix<T>, w: &mut [T]) -> Result<(), UpdateError> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "rank-1 downdate needs a square factor");
    if w.len() != n {
        return Err(UpdateError::ShapeMismatch {
            expected: n,
            got: w.len(),
        });
    }
    for j in 0..n {
        let ljj = l[(j, j)];
        let wj = w[j];
        let rr = ljj * ljj - wj * wj;
        let rrf = rr.to_f64();
        if rrf <= 0.0 || !rrf.is_finite() {
            return Err(UpdateError::Indefinite { column: j });
        }
        let rf = rrf.sqrt();
        // Hyperbolic parameters: s = w_j/l_jj, 1/c = l_jj/r with
        // c = √(1−s²) = r/l_jj.
        let s = T::from_f64(wj.to_f64() / ljj.to_f64());
        let inv_c = T::from_f64(ljj.to_f64() / rf);
        l[(j, j)] = T::from_f64(rf);
        for i in (j + 1)..n {
            let t = l[(i, j)];
            l[(i, j)] = (t - s * w[i]) * inv_c;
            w[i] = (w[i] - s * t) * inv_c;
        }
    }
    Ok(())
}

/// Rank-k update of a Cholesky factor:
/// `L Lᵀ → L Lᵀ + α·chunkᵀ·chunk`, one rank-1 sweep per chunk row
/// (each row scaled by `√|α|`; `α < 0` downdates). `O(n²k)`.
///
/// # Errors
/// * [`UpdateError::ShapeMismatch`] if `chunk` does not have `n`
///   columns (the factor is untouched).
/// * [`UpdateError::Indefinite`] from a failed downdate sweep; rows
///   before the failing one are already applied, so the factor must be
///   refactored.
///
/// # Panics
/// If `l` is not square.
pub fn llt_rank_update<T: Scalar>(
    l: &mut Matrix<T>,
    alpha: T,
    chunk: MatRef<'_, T>,
) -> Result<(), UpdateError> {
    let n = l.rows();
    assert_eq!(l.cols(), n, "rank-k update needs a square factor");
    if chunk.cols() != n {
        return Err(UpdateError::ShapeMismatch {
            expected: n,
            got: chunk.cols(),
        });
    }
    let af = alpha.to_f64();
    if af == 0.0 || chunk.rows() == 0 {
        return Ok(());
    }
    let scale = T::from_f64(af.abs().sqrt());
    let mut w = vec![T::ZERO; n];
    for r in 0..chunk.rows() {
        for (wv, cv) in w.iter_mut().zip(chunk.row(r)) {
            *wv = scale * *cv;
        }
        if af > 0.0 {
            llt_rank1_update(l, &mut w)?;
        } else {
            llt_rank1_downdate(l, &mut w)?;
        }
    }
    Ok(())
}

/// A λ-shift solve kernel: one Householder tridiagonalization
/// `C = Q T Qᵀ` (`O(n³)`, done once), after which every shifted system
/// `(C + λI) x = b` costs `O(n²)` — apply `Qᵀ`, solve the tridiagonal
/// `(T + λI)` by its own LDLᵀ in `O(n)`, apply `Q`.
///
/// This is what lets a ridge λ-path reuse a single base factorization:
/// `P` regularization values cost `O(n³ + P·n²)` instead of `P·O(n³)`.
///
/// ```
/// use ata_linalg::update::ShiftedSolver;
/// use ata_mat::Matrix;
///
/// let g = Matrix::from_vec(vec![4.0, 1.0, 1.0, 3.0], 2, 2);
/// let base = ShiftedSolver::new(g.as_ref());
/// for lambda in [0.0, 0.5, 10.0] {
///     let x = base.solve_shifted(lambda, &[1.0, 2.0]).unwrap();
///     assert_eq!(x.len(), 2); // each solve is O(n²), no refactor
/// }
/// ```
#[derive(Debug, Clone)]
pub struct ShiftedSolver<T: Scalar> {
    n: usize,
    /// Householder vectors: row `j` holds `v_j` supported on
    /// `j+1..n` with the pivot element normalized to 1.
    vs: Matrix<T>,
    /// Reflection coefficients `β_j` (`0` where no reflection).
    betas: Vec<T>,
    /// Main diagonal of the tridiagonal `T`.
    diag: Vec<T>,
    /// Subdiagonal of `T` (length `n−1`).
    sub: Vec<T>,
}

impl<T: Scalar> ShiftedSolver<T> {
    /// Tridiagonalize the symmetric matrix whose lower triangle is in
    /// `g` (the strictly-upper part is never read). Always succeeds —
    /// definiteness is only needed (and checked) at solve time, per
    /// shift.
    ///
    /// # Panics
    /// If `g` is not square.
    pub fn new(g: MatRef<'_, T>) -> Self {
        let n = g.rows();
        assert_eq!(g.cols(), n, "tridiagonalization needs a square matrix");
        // Dense symmetric working copy (both triangles, so the
        // reflection update is a plain dense rank-2 correction).
        let mut a = Matrix::from_fn(n, n, |i, j| if j <= i { *g.at(i, j) } else { *g.at(j, i) });
        let mut vs = Matrix::zeros(n, n);
        let mut betas = vec![T::ZERO; n];
        let mut p = vec![T::ZERO; n];
        for j in 0..n.saturating_sub(2) {
            // σ = Σ_{i>j+1} a[i][j]² — the mass to annihilate.
            let mut sigma = T::ZERO;
            for i in (j + 2)..n {
                let v = a[(i, j)];
                sigma += v * v;
            }
            let x0 = a[(j + 1, j)];
            if sigma.to_f64() == 0.0 {
                // Column already tridiagonal; H_j = I.
                continue;
            }
            let x0f = x0.to_f64();
            let sigf = sigma.to_f64();
            let muf = (x0f * x0f + sigf).sqrt();
            // Stable v0 = x0 − μ (rewritten when x0 > 0 to avoid
            // cancellation); uncounted f64 bookkeeping, like the
            // pivot square roots elsewhere in this module.
            let v0f = if x0f <= 0.0 {
                x0f - muf
            } else {
                -sigf / (x0f + muf)
            };
            let betaf = 2.0 * v0f * v0f / (sigf + v0f * v0f);
            let inv_v0 = T::from_f64(1.0 / v0f);
            vs[(j, j + 1)] = T::ONE;
            for i in (j + 2)..n {
                vs[(j, i)] = a[(i, j)] * inv_v0;
            }
            betas[j] = T::from_f64(betaf);
            // The reflected column is μ·e₁; record it where the final
            // subdiagonal sweep will read it.
            a[(j + 1, j)] = T::from_f64(muf);
            // Trailing-block similarity update: p = βAv,
            // w = p − (β·pᵀv/2)·v, A ← A − vwᵀ − wvᵀ.
            let beta = betas[j];
            let mut pv = T::ZERO;
            for i in (j + 1)..n {
                let mut acc = T::ZERO;
                let row = a.row(i);
                let vrow = vs.row(j);
                for (av, vv) in row[j + 1..].iter().zip(&vrow[j + 1..]) {
                    acc += *av * *vv;
                }
                let pi = beta * acc;
                p[i] = pi;
                pv += pi * vs[(j, i)];
            }
            let gamma = beta * pv * T::from_f64(0.5);
            for i in (j + 1)..n {
                p[i] -= gamma * vs[(j, i)];
            }
            for i in (j + 1)..n {
                let vi = vs[(j, i)];
                let wi = p[i];
                let vrow = vs.row(j);
                let row = a.row_mut(i);
                for ((av, vt), wt) in row[j + 1..].iter_mut().zip(&vrow[j + 1..]).zip(&p[j + 1..]) {
                    *av -= vi * *wt + wi * *vt;
                }
            }
        }
        let diag = (0..n).map(|i| a[(i, i)]).collect();
        let sub = (0..n.saturating_sub(1)).map(|i| a[(i + 1, i)]).collect();
        Self {
            n,
            vs,
            betas,
            diag,
            sub,
        }
    }

    /// Order `n` of the factored matrix.
    pub fn order(&self) -> usize {
        self.n
    }

    /// Solve `(C + λI) x = rhs` in `O(n²)`.
    ///
    /// # Errors
    /// * [`UpdateError::ShapeMismatch`] if `rhs.len() != n`.
    /// * [`UpdateError::Indefinite`] if `C + λI` is not positive
    ///   definite (checked pivot-by-pivot on the tridiagonal form,
    ///   before any division).
    pub fn solve_shifted(&self, lambda: T, rhs: &[T]) -> Result<Vec<T>, UpdateError> {
        let mut x = rhs.to_vec();
        self.solve_shifted_in_place(lambda, &mut x)?;
        Ok(x)
    }

    /// In-place variant of [`ShiftedSolver::solve_shifted`].
    ///
    /// # Errors
    /// As [`ShiftedSolver::solve_shifted`].
    pub fn solve_shifted_in_place(&self, lambda: T, rhs: &mut [T]) -> Result<(), UpdateError> {
        let n = self.n;
        if rhs.len() != n {
            return Err(UpdateError::ShapeMismatch {
                expected: n,
                got: rhs.len(),
            });
        }
        // y = Qᵀ rhs = H_{n-3} … H_0 rhs (apply H_0 first).
        for j in 0..n.saturating_sub(2) {
            self.apply_reflector(j, rhs);
        }
        // LDLᵀ of the shifted tridiagonal, fused with the forward pass.
        let mut lv = vec![T::ZERO; n];
        let mut inv_dv = vec![T::ZERO; n];
        for i in 0..n {
            let di = if i == 0 {
                self.diag[0] + lambda
            } else {
                let li = self.sub[i - 1] * inv_dv[i - 1];
                lv[i] = li;
                rhs[i] -= li * rhs[i - 1];
                self.diag[i] + lambda - li * self.sub[i - 1]
            };
            let dif = di.to_f64();
            if dif <= 0.0 || !dif.is_finite() {
                return Err(UpdateError::Indefinite { column: i });
            }
            inv_dv[i] = recip(di);
        }
        for (ri, iv) in rhs.iter_mut().zip(&inv_dv) {
            *ri *= *iv;
        }
        for i in (0..n.saturating_sub(1)).rev() {
            let t = lv[i + 1] * rhs[i + 1];
            rhs[i] -= t;
        }
        // x = Q y = H_0 … H_{n-3} y (apply H_{n-3} first).
        for j in (0..n.saturating_sub(2)).rev() {
            self.apply_reflector(j, rhs);
        }
        Ok(())
    }

    /// Apply the (symmetric, involutory) reflector `H_j` to `y`.
    fn apply_reflector(&self, j: usize, y: &mut [T]) {
        let beta = self.betas[j];
        if beta == T::ZERO {
            return;
        }
        let vrow = self.vs.row(j);
        let mut acc = T::ZERO;
        for (vv, yv) in vrow[j + 1..].iter().zip(&y[j + 1..]) {
            acc += *vv * *yv;
        }
        let t = beta * acc;
        for (yv, vv) in y[j + 1..].iter_mut().zip(&vrow[j + 1..]) {
            *yv -= t * *vv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::{cholesky_factor, cholesky_solve};
    use ata_mat::{gen, reference};

    fn spd(n: usize, seed: u64) -> Matrix<f64> {
        let a = gen::standard::<f64>(seed, n + 4, n);
        let mut g = reference::gram(a.as_ref());
        for i in 0..n {
            g[(i, i)] += 0.5;
        }
        g
    }

    fn reconstruct(f: &LdltFactor<f64>) -> Matrix<f64> {
        let n = f.order();
        let l = f.unit_lower();
        Matrix::from_fn(n, n, |i, j| {
            let mut s = 0.0;
            for k in 0..n {
                s += l[(i, k)] * f.diag()[k] * l[(j, k)];
            }
            s
        })
    }

    #[test]
    fn ldlt_reconstructs() {
        let g = spd(9, 1);
        let f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let r = reconstruct(&f);
        for i in 0..9 {
            for j in 0..=i {
                assert!((r[(i, j)] - g[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn rank_update_matches_refactor() {
        let n = 8;
        let g = spd(n, 2);
        let mut f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let chunk = gen::standard::<f64>(7, 3, n);
        f.rank_update(1.0, chunk.as_ref()).expect("update");
        // Reference: refactor G + chunkᵀ·chunk from scratch.
        let mut g2 = g.clone();
        for i in 0..n {
            for j in 0..=i {
                for r in 0..3 {
                    g2[(i, j)] += chunk[(r, i)] * chunk[(r, j)];
                }
            }
        }
        let fr = LdltFactor::from_lower(g2.as_ref()).expect("SPD");
        let x1 = f.solve(&vec![1.0; n]).unwrap();
        let x2 = fr.solve(&vec![1.0; n]).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn downdate_reverses_update() {
        let n = 6;
        let g = spd(n, 3);
        let mut f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let before = f.solve(&vec![1.0; n]).unwrap();
        let chunk = gen::standard::<f64>(8, 2, n);
        f.rank_update(1.0, chunk.as_ref()).expect("update");
        f.rank_update(-1.0, chunk.as_ref()).expect("downdate");
        let after = f.solve(&vec![1.0; n]).unwrap();
        for (u, v) in before.iter().zip(&after) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn downdate_to_indefinite_is_typed_and_finite() {
        let n = 5;
        let g = spd(n, 4);
        let mut f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        // Retract far more mass than was ever inserted.
        let mut big = Matrix::<f64>::zeros(1, n);
        for j in 0..n {
            big[(0, j)] = 100.0 * (j + 1) as f64;
        }
        let err = f.rank_update(-1.0, big.as_ref()).expect_err("indefinite");
        assert!(matches!(err, UpdateError::Indefinite { .. }));
        // Never NaN: every stored value stays finite.
        for v in f.diag() {
            assert!(v.is_finite());
        }
        let l = f.unit_lower();
        for i in 0..n {
            for j in 0..n {
                assert!(l[(i, j)].is_finite());
            }
        }
    }

    #[test]
    fn decay_scales_solution() {
        let n = 7;
        let g = spd(n, 5);
        let mut f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let x1 = f.solve(&vec![1.0; n]).unwrap();
        f.decay(0.5);
        // (βC)⁻¹ b = C⁻¹ b / β.
        let x2 = f.solve(&vec![1.0; n]).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((v - u / 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn logdet_matches_cholesky() {
        let g = spd(6, 6);
        let f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        let via_llt: f64 = (0..6).map(|i| 2.0 * l[(i, i)].ln()).sum();
        assert!((f.logdet() - via_llt).abs() < 1e-9);
    }

    #[test]
    fn inv_quadform_matches_solve() {
        let n = 6;
        let g = spd(n, 7);
        let f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let q = f.inv_quadform(&x).unwrap();
        let sol = f.solve(&x).unwrap();
        let direct: f64 = x.iter().zip(&sol).map(|(a, b)| a * b).sum();
        assert!((q - direct).abs() < 1e-9);
    }

    #[test]
    fn solve_multi_matches_single() {
        let n = 5;
        let g = spd(n, 8);
        let f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        let b = Matrix::from_fn(n, 3, |i, j| (i + 2 * j) as f64 * 0.25 - 1.0);
        let xs = f.solve_multi(b.as_ref()).unwrap();
        for c in 0..3 {
            let col: Vec<f64> = (0..n).map(|i| b[(i, c)]).collect();
            let x = f.solve(&col).unwrap();
            for i in 0..n {
                assert!((xs[(i, c)] - x[i]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_mismatches_are_typed() {
        let g = spd(4, 9);
        let mut f = LdltFactor::from_lower(g.as_ref()).expect("SPD");
        assert_eq!(
            f.solve(&[1.0; 3]).unwrap_err(),
            UpdateError::ShapeMismatch {
                expected: 4,
                got: 3
            }
        );
        let bad = Matrix::<f64>::zeros(2, 5);
        assert_eq!(
            f.rank_update(1.0, bad.as_ref()).unwrap_err(),
            UpdateError::ShapeMismatch {
                expected: 4,
                got: 5
            }
        );
        assert!(f.solve(&[1.0; 4]).is_ok(), "factor untouched by rejection");
    }

    #[test]
    fn llt_update_matches_refactor() {
        let n = 7;
        let g = spd(n, 10);
        let mut l = g.clone();
        cholesky_factor(&mut l).expect("SPD");
        let chunk = gen::standard::<f64>(11, 2, n);
        llt_rank_update(&mut l, 1.0, chunk.as_ref()).expect("update");
        let mut g2 = g.clone();
        for i in 0..n {
            for j in 0..=i {
                for r in 0..2 {
                    g2[(i, j)] += chunk[(r, i)] * chunk[(r, j)];
                }
            }
        }
        cholesky_factor(&mut g2).expect("SPD");
        for i in 0..n {
            for j in 0..=i {
                assert!((l[(i, j)] - g2[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
    }

    #[test]
    fn llt_downdate_matches_refactor_and_fails_typed() {
        let n = 6;
        let g = spd(n, 12);
        let chunk = gen::standard::<f64>(13, 1, n);
        // Grow first so the retraction stays definite.
        let mut g_plus = g.clone();
        for i in 0..n {
            for j in 0..=i {
                g_plus[(i, j)] += chunk[(0, i)] * chunk[(0, j)];
            }
        }
        let mut l = g_plus.clone();
        cholesky_factor(&mut l).expect("SPD");
        llt_rank_update(&mut l, -1.0, chunk.as_ref()).expect("downdate");
        let mut lr = g.clone();
        cholesky_factor(&mut lr).expect("SPD");
        for i in 0..n {
            for j in 0..=i {
                assert!((l[(i, j)] - lr[(i, j)]).abs() < 1e-8, "({i},{j})");
            }
        }
        // Over-retraction is a typed error with finite contents.
        let mut big = vec![0.0; n];
        big[0] = 1e6;
        let err = llt_rank1_downdate(&mut l, &mut big).expect_err("indefinite");
        assert!(matches!(err, UpdateError::Indefinite { column: 0 }));
        for i in 0..n {
            for j in 0..=i {
                assert!(l[(i, j)].is_finite());
            }
        }
    }

    #[test]
    fn shifted_solver_matches_direct_factorization() {
        let n = 10;
        let g = spd(n, 14);
        let base = ShiftedSolver::new(g.as_ref());
        let b: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.4).cos()).collect();
        for lambda in [0.0, 1e-3, 0.7, 25.0] {
            let x = base.solve_shifted(lambda, &b).expect("SPD + shift");
            let mut gl = g.clone();
            for i in 0..n {
                gl[(i, i)] += lambda;
            }
            cholesky_factor(&mut gl).expect("SPD");
            let xr = cholesky_solve(&gl, &b).expect("shape");
            for (u, v) in x.iter().zip(&xr) {
                assert!((u - v).abs() < 1e-8, "lambda={lambda}");
            }
        }
    }

    #[test]
    fn shifted_solver_small_orders() {
        for n in [1usize, 2, 3] {
            let g = spd(n, 20 + n as u64);
            let base = ShiftedSolver::new(g.as_ref());
            let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let x = base.solve_shifted(0.25, &b).expect("SPD");
            let mut gl = g.clone();
            for i in 0..n {
                gl[(i, i)] += 0.25;
            }
            cholesky_factor(&mut gl).expect("SPD");
            let xr = cholesky_solve(&gl, &b).expect("shape");
            for (u, v) in x.iter().zip(&xr) {
                assert!((u - v).abs() < 1e-10, "n={n}");
            }
        }
    }

    #[test]
    fn shifted_solver_indefinite_shift_is_typed() {
        let g = Matrix::<f64>::identity(4);
        let base = ShiftedSolver::new(g.as_ref());
        let err = base
            .solve_shifted(-2.0, &[1.0; 4])
            .expect_err("negative shift past the spectrum");
        assert!(matches!(err, UpdateError::Indefinite { .. }));
    }
}
