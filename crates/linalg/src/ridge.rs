//! Ridge (Tikhonov-regularized) regression on top of AtA.
//!
//! `min_x ||A x - b||² + lambda ||x||²` solves
//! `(A^T A + lambda I) x = A^T b`. The expensive part — the Gram matrix
//! — is *independent of `lambda`*, so the idiomatic workflow computes it
//! once with AtA and then factors `G + lambda I` per regularization
//! value; that is exactly what [`RidgeSolver`] packages. This is the
//! workload where the paper's `A^T A` speedup multiplies: a lambda
//! sweep (cross-validation) reuses one AtA call across dozens of
//! factorizations.

use crate::cholesky::{cholesky_factor, cholesky_solve, CholeskyError};
use crate::gram_lower_opts;
use crate::update::{ShiftedSolver, UpdateError};
use ata_core::AtaOptions;
use ata_kernels::gemm_tn;
use ata_mat::{MatRef, Matrix, Scalar};

/// Below this many lambdas (or features) the per-lambda refactor loop
/// is cheaper than building the shared tridiagonal base, so
/// [`RidgeSolver::solve_path`] falls back to it. The base costs
/// `~2n³` once vs `n³/3` per refactor, so reuse pays off from roughly
/// six lambdas; 4 plus the small-n guard keeps the crossover safely on
/// the winning side without a runtime calibration.
const PATH_REUSE_MIN_LAMBDAS: usize = 4;
const PATH_REUSE_MIN_FEATURES: usize = 16;

/// Map a shifted-solve failure onto this module's error type: an
/// indefinite shifted system is exactly a failed Cholesky pivot.
fn shift_err(e: UpdateError) -> CholeskyError {
    match e {
        UpdateError::Indefinite { column } => CholeskyError::NotPositiveDefinite { column },
        UpdateError::ShapeMismatch { expected, got } => {
            CholeskyError::ShapeMismatch { expected, got }
        }
    }
}

/// Precomputed normal-equation data for a fixed design matrix `A`:
/// the Gram matrix `G = A^T A` (lower triangle) and `A^T b`.
#[derive(Debug, Clone)]
pub struct RidgeSolver<T: Scalar> {
    gram_lower: Matrix<T>,
    atb: Vec<T>,
    m: usize,
}

impl<T: Scalar> RidgeSolver<T> {
    /// Precompute `A^T A` (via AtA, honoring `opts`) and `A^T b`.
    ///
    /// # Panics
    /// If `b.len() != m` or `m < n`.
    pub fn new(a: MatRef<'_, T>, b: &[T], opts: &AtaOptions) -> Self {
        let (m, n) = a.shape();
        assert!(
            m >= n,
            "ridge regression needs a tall (overdetermined) system"
        );
        assert_eq!(b.len(), m, "rhs length must equal A's row count");
        let gram_lower = gram_lower_opts(a, opts);
        let b_mat = Matrix::from_vec(b.to_vec(), m, 1);
        let mut rhs = Matrix::<T>::zeros(n, 1);
        gemm_tn(T::ONE, a, b_mat.as_ref(), &mut rhs.as_mut());
        let atb = (0..n).map(|i| rhs[(i, 0)]).collect();
        Self { gram_lower, atb, m }
    }

    /// Number of features (columns of `A`).
    pub fn features(&self) -> usize {
        self.gram_lower.rows()
    }

    /// Number of observations (rows of `A`).
    pub fn observations(&self) -> usize {
        self.m
    }

    /// Solve for one regularization strength `lambda >= 0`.
    ///
    /// # Errors
    /// [`CholeskyError::NotPositiveDefinite`] if `G + lambda I` is not
    /// positive definite (only possible at `lambda = 0` with a
    /// rank-deficient `A`).
    ///
    /// # Panics
    /// If `lambda < 0`.
    pub fn solve(&self, lambda: T) -> Result<Vec<T>, CholeskyError> {
        assert!(lambda >= T::ZERO, "lambda must be non-negative");
        let n = self.features();
        let mut g = self.gram_lower.clone();
        for i in 0..n {
            g[(i, i)] += lambda;
        }
        cholesky_factor(&mut g)?;
        cholesky_solve(&g, &self.atb)
    }

    /// Solve for a whole lambda sweep (ascending or not): one Gram
    /// matrix, **one** base factorization. For paths worth the setup
    /// (`>= 4` lambdas, `>= 16` features) the Gram matrix is
    /// tridiagonalized once ([`ShiftedSolver`], `O(n³)`) and every
    /// shifted system `(G + λI)x = Aᵀb` then solves in `O(n²)` —
    /// instead of the `O(n³)` per-lambda refactor the fallback loop
    /// (and every release before the streaming tier) performs. The
    /// speedup is pinned by an op-count test.
    ///
    /// # Errors
    /// First factorization error, if any.
    ///
    /// # Panics
    /// If any `lambda < 0`.
    pub fn solve_path(&self, lambdas: &[T]) -> Result<Vec<Vec<T>>, CholeskyError> {
        if lambdas.len() < PATH_REUSE_MIN_LAMBDAS || self.features() < PATH_REUSE_MIN_FEATURES {
            return lambdas.iter().map(|&l| self.solve(l)).collect();
        }
        let base = ShiftedSolver::new(self.gram_lower.as_ref());
        lambdas
            .iter()
            .map(|&l| {
                assert!(l >= T::ZERO, "lambda must be non-negative");
                base.solve_shifted(l, &self.atb).map_err(shift_err)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::{residual_norm, solve_normal_equations};
    use ata_mat::gen;

    fn setup(m: usize, n: usize, seed: u64) -> (Matrix<f64>, Vec<f64>) {
        let a = gen::tall_well_conditioned::<f64>(seed, m, n);
        let b: Vec<f64> = (0..m).map(|i| ((i as f64) * 0.3).sin() * 2.0).collect();
        (a, b)
    }

    #[test]
    fn lambda_zero_equals_ordinary_least_squares() {
        let (a, b) = setup(50, 10, 1);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let ridge = solver.solve(0.0).expect("full rank");
        let ols = solve_normal_equations(a.as_ref(), &b, &AtaOptions::serial()).expect("rank");
        for (r, o) in ridge.iter().zip(&ols) {
            assert!((r - o).abs() < 1e-10);
        }
    }

    #[test]
    fn shrinkage_is_monotone_in_lambda() {
        // ||x(lambda)||_2 decreases as lambda grows — the defining
        // behaviour of ridge.
        let (a, b) = setup(60, 12, 2);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let lambdas = [0.0, 0.1, 1.0, 10.0, 100.0];
        let path = solver.solve_path(&lambdas).expect("spd");
        let norms: Vec<f64> = path
            .iter()
            .map(|x| x.iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        for w in norms.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "norm grew along the path: {norms:?}");
        }
        // And residuals increase (bias/variance trade).
        let res: Vec<f64> = path
            .iter()
            .map(|x| residual_norm(a.as_ref(), x, &b))
            .collect();
        for w in res.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "residual shrank along the path: {res:?}"
            );
        }
    }

    #[test]
    fn solve_path_agrees_with_per_lambda_solves() {
        // Above the reuse thresholds the path goes through the shared
        // tridiagonal base — it must match the direct refactor route.
        let (a, b) = setup(90, 20, 7);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let lambdas: Vec<f64> = (0..8).map(|i| 0.05 * (i as f64 + 1.0)).collect();
        let path = solver.solve_path(&lambdas).expect("spd");
        for (x, &l) in path.iter().zip(&lambdas) {
            let direct = solver.solve(l).expect("spd");
            for (u, v) in x.iter().zip(&direct) {
                assert!((u - v).abs() < 1e-8, "lambda={l}");
            }
        }
    }

    #[test]
    fn solve_path_reuses_one_base_factorization() {
        use ata_mat::tracked::{measure, Tracked};
        // Pin the satellite win: a lambda path shares one base
        // factorization, so (a) the whole path costs fewer counted
        // flops than per-lambda refactoring, and (b) each *additional*
        // lambda costs O(n²), far below an O(n³/3) refactor.
        let n = 48usize;
        let m = 96usize;
        let a = gen::tall_well_conditioned::<Tracked>(8, m, n);
        let b: Vec<Tracked> = (0..m)
            .map(|i| Tracked::from_f64(((i as f64) * 0.3).sin() * 2.0))
            .collect();
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let lam = |i: usize| Tracked::from_f64(0.01 * (i as f64 + 1.0));
        let l16: Vec<Tracked> = (0..16).map(lam).collect();
        let l8: Vec<Tracked> = (0..8).map(lam).collect();

        let (path, path_ops) = measure(|| solver.solve_path(&l16));
        let path = path.expect("spd");
        let (looped, loop_ops) = measure(|| {
            l16.iter()
                .map(|&l| solver.solve(l))
                .collect::<Result<Vec<_>, _>>()
        });
        let looped = looped.expect("spd");
        for (x1, x2) in path.iter().zip(&looped) {
            for (u, v) in x1.iter().zip(x2) {
                assert!((u.0 - v.0).abs() < 1e-8);
            }
        }
        assert!(
            path_ops.total() < loop_ops.total(),
            "shared base must beat per-lambda refactors: {} vs {}",
            path_ops.total(),
            loop_ops.total()
        );
        let (_, ops8) = measure(|| solver.solve_path(&l8).expect("spd"));
        let marginal = (path_ops.total() - ops8.total()) / 8;
        assert!(
            marginal <= (6 * n * n) as u64,
            "marginal lambda must cost O(n²), got {marginal} flops (n²={})",
            n * n
        );
    }

    #[test]
    fn normal_equation_identity_holds() {
        // (A^T A + lambda I) x == A^T b at the returned solution.
        let (a, b) = setup(40, 8, 3);
        let lambda = 0.75;
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let x = solver.solve(lambda).expect("spd");
        let n = 8;
        // Build full G and A^T b naively.
        let mut g = vec![vec![0.0f64; n]; n];
        let mut atb = vec![0.0f64; n];
        for i in 0..40 {
            for j in 0..n {
                atb[j] += a[(i, j)] * b[i];
                for k in 0..n {
                    g[j][k] += a[(i, j)] * a[(i, k)];
                }
            }
        }
        for j in 0..n {
            let mut lhs = lambda * x[j];
            for k in 0..n {
                lhs += g[j][k] * x[k];
            }
            assert!((lhs - atb[j]).abs() < 1e-9, "row {j}: {lhs} != {}", atb[j]);
        }
    }

    #[test]
    fn regularization_rescues_rank_deficiency() {
        // Duplicate a column: the Gram matrix is exactly singular. In
        // floating point the unregularized factorization either errors
        // or returns a wildly unstable solution; with lambda > 0 the
        // system is SPD and the two tied columns must receive identical
        // coefficients (symmetry of the regularized minimum).
        let (mut a, b) = setup(30, 6, 4);
        for i in 0..30 {
            a[(i, 5)] = a[(i, 4)];
        }
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let x = solver.solve(1e-6).expect("regularized solve must succeed");
        assert!((x[4] - x[5]).abs() < 1e-6, "tied columns split: {x:?}");
        // The regularized solution still fits well.
        assert!(residual_norm(a.as_ref(), &x, &b) < residual_norm(a.as_ref(), &[0.0; 6], &b));
        // Stronger lambda shrinks the tied pair together, staying tied.
        let x2 = solver.solve(10.0).expect("spd");
        assert!((x2[4] - x2[5]).abs() < 1e-9);
        assert!(x2[4].abs() < x[4].abs() + 1e-12);
    }

    #[test]
    fn parallel_and_winograd_options_agree() {
        let (a, b) = setup(64, 16, 5);
        let base = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let par = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::with_threads(4).cache_words(64));
        let win = RidgeSolver::new(
            a.as_ref(),
            &b,
            &AtaOptions::serial().cache_words(64).winograd(),
        );
        let xb = base.solve(0.5).expect("spd");
        let xp = par.solve(0.5).expect("spd");
        let xw = win.solve(0.5).expect("spd");
        for ((u, v), w) in xb.iter().zip(&xp).zip(&xw) {
            assert!((u - v).abs() < 1e-9);
            assert!((u - w).abs() < 1e-9);
        }
        assert_eq!(base.features(), 16);
        assert_eq!(base.observations(), 64);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        let (a, b) = setup(20, 4, 6);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let _ = solver.solve(-1.0);
    }
}
