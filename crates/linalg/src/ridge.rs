//! Ridge (Tikhonov-regularized) regression on top of AtA.
//!
//! `min_x ||A x - b||² + lambda ||x||²` solves
//! `(A^T A + lambda I) x = A^T b`. The expensive part — the Gram matrix
//! — is *independent of `lambda`*, so the idiomatic workflow computes it
//! once with AtA and then factors `G + lambda I` per regularization
//! value; that is exactly what [`RidgeSolver`] packages. This is the
//! workload where the paper's `A^T A` speedup multiplies: a lambda
//! sweep (cross-validation) reuses one AtA call across dozens of
//! factorizations.

use crate::cholesky::{cholesky_factor, cholesky_solve, CholeskyError};
use crate::gram_lower_opts;
use ata_core::AtaOptions;
use ata_kernels::gemm_tn;
use ata_mat::{MatRef, Matrix, Scalar};

/// Precomputed normal-equation data for a fixed design matrix `A`:
/// the Gram matrix `G = A^T A` (lower triangle) and `A^T b`.
#[derive(Debug, Clone)]
pub struct RidgeSolver<T: Scalar> {
    gram_lower: Matrix<T>,
    atb: Vec<T>,
    m: usize,
}

impl<T: Scalar> RidgeSolver<T> {
    /// Precompute `A^T A` (via AtA, honoring `opts`) and `A^T b`.
    ///
    /// # Panics
    /// If `b.len() != m` or `m < n`.
    pub fn new(a: MatRef<'_, T>, b: &[T], opts: &AtaOptions) -> Self {
        let (m, n) = a.shape();
        assert!(
            m >= n,
            "ridge regression needs a tall (overdetermined) system"
        );
        assert_eq!(b.len(), m, "rhs length must equal A's row count");
        let gram_lower = gram_lower_opts(a, opts);
        let b_mat = Matrix::from_vec(b.to_vec(), m, 1);
        let mut rhs = Matrix::<T>::zeros(n, 1);
        gemm_tn(T::ONE, a, b_mat.as_ref(), &mut rhs.as_mut());
        let atb = (0..n).map(|i| rhs[(i, 0)]).collect();
        Self { gram_lower, atb, m }
    }

    /// Number of features (columns of `A`).
    pub fn features(&self) -> usize {
        self.gram_lower.rows()
    }

    /// Number of observations (rows of `A`).
    pub fn observations(&self) -> usize {
        self.m
    }

    /// Solve for one regularization strength `lambda >= 0`.
    ///
    /// # Errors
    /// [`CholeskyError::NotPositiveDefinite`] if `G + lambda I` is not
    /// positive definite (only possible at `lambda = 0` with a
    /// rank-deficient `A`).
    ///
    /// # Panics
    /// If `lambda < 0`.
    pub fn solve(&self, lambda: T) -> Result<Vec<T>, CholeskyError> {
        assert!(lambda >= T::ZERO, "lambda must be non-negative");
        let n = self.features();
        let mut g = self.gram_lower.clone();
        for i in 0..n {
            g[(i, i)] += lambda;
        }
        cholesky_factor(&mut g)?;
        Ok(cholesky_solve(&g, &self.atb))
    }

    /// Solve for a whole lambda sweep (ascending or not); one Gram
    /// matrix, `lambdas.len()` factorizations.
    ///
    /// # Errors
    /// First factorization error, if any.
    pub fn solve_path(&self, lambdas: &[T]) -> Result<Vec<Vec<T>>, CholeskyError> {
        lambdas.iter().map(|&l| self.solve(l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::{residual_norm, solve_normal_equations};
    use ata_mat::gen;

    fn setup(m: usize, n: usize, seed: u64) -> (Matrix<f64>, Vec<f64>) {
        let a = gen::tall_well_conditioned::<f64>(seed, m, n);
        let b: Vec<f64> = (0..m).map(|i| ((i as f64) * 0.3).sin() * 2.0).collect();
        (a, b)
    }

    #[test]
    fn lambda_zero_equals_ordinary_least_squares() {
        let (a, b) = setup(50, 10, 1);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let ridge = solver.solve(0.0).expect("full rank");
        let ols = solve_normal_equations(a.as_ref(), &b, &AtaOptions::serial()).expect("rank");
        for (r, o) in ridge.iter().zip(&ols) {
            assert!((r - o).abs() < 1e-10);
        }
    }

    #[test]
    fn shrinkage_is_monotone_in_lambda() {
        // ||x(lambda)||_2 decreases as lambda grows — the defining
        // behaviour of ridge.
        let (a, b) = setup(60, 12, 2);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let lambdas = [0.0, 0.1, 1.0, 10.0, 100.0];
        let path = solver.solve_path(&lambdas).expect("spd");
        let norms: Vec<f64> = path
            .iter()
            .map(|x| x.iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        for w in norms.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "norm grew along the path: {norms:?}");
        }
        // And residuals increase (bias/variance trade).
        let res: Vec<f64> = path
            .iter()
            .map(|x| residual_norm(a.as_ref(), x, &b))
            .collect();
        for w in res.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-12,
                "residual shrank along the path: {res:?}"
            );
        }
    }

    #[test]
    fn normal_equation_identity_holds() {
        // (A^T A + lambda I) x == A^T b at the returned solution.
        let (a, b) = setup(40, 8, 3);
        let lambda = 0.75;
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let x = solver.solve(lambda).expect("spd");
        let n = 8;
        // Build full G and A^T b naively.
        let mut g = vec![vec![0.0f64; n]; n];
        let mut atb = vec![0.0f64; n];
        for i in 0..40 {
            for j in 0..n {
                atb[j] += a[(i, j)] * b[i];
                for k in 0..n {
                    g[j][k] += a[(i, j)] * a[(i, k)];
                }
            }
        }
        for j in 0..n {
            let mut lhs = lambda * x[j];
            for k in 0..n {
                lhs += g[j][k] * x[k];
            }
            assert!((lhs - atb[j]).abs() < 1e-9, "row {j}: {lhs} != {}", atb[j]);
        }
    }

    #[test]
    fn regularization_rescues_rank_deficiency() {
        // Duplicate a column: the Gram matrix is exactly singular. In
        // floating point the unregularized factorization either errors
        // or returns a wildly unstable solution; with lambda > 0 the
        // system is SPD and the two tied columns must receive identical
        // coefficients (symmetry of the regularized minimum).
        let (mut a, b) = setup(30, 6, 4);
        for i in 0..30 {
            a[(i, 5)] = a[(i, 4)];
        }
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let x = solver.solve(1e-6).expect("regularized solve must succeed");
        assert!((x[4] - x[5]).abs() < 1e-6, "tied columns split: {x:?}");
        // The regularized solution still fits well.
        assert!(residual_norm(a.as_ref(), &x, &b) < residual_norm(a.as_ref(), &[0.0; 6], &b));
        // Stronger lambda shrinks the tied pair together, staying tied.
        let x2 = solver.solve(10.0).expect("spd");
        assert!((x2[4] - x2[5]).abs() < 1e-9);
        assert!(x2[4].abs() < x[4].abs() + 1e-12);
    }

    #[test]
    fn parallel_and_winograd_options_agree() {
        let (a, b) = setup(64, 16, 5);
        let base = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let par = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::with_threads(4).cache_words(64));
        let win = RidgeSolver::new(
            a.as_ref(),
            &b,
            &AtaOptions::serial().cache_words(64).winograd(),
        );
        let xb = base.solve(0.5).expect("spd");
        let xp = par.solve(0.5).expect("spd");
        let xw = win.solve(0.5).expect("spd");
        for ((u, v), w) in xb.iter().zip(&xp).zip(&xw) {
            assert!((u - v).abs() < 1e-9);
            assert!((u - w).abs() < 1e-9);
        }
        assert_eq!(base.features(), 16);
        assert_eq!(base.observations(), 64);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_lambda_rejected() {
        let (a, b) = setup(20, 4, 6);
        let solver = RidgeSolver::new(a.as_ref(), &b, &AtaOptions::serial());
        let _ = solver.solve(-1.0);
    }
}
