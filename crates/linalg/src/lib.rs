//! Downstream applications of the `A^T A` product.
//!
//! The paper's introduction motivates AtA with a list of problems in
//! which the Gram matrix is the expensive intermediate step: checking
//! orthogonality, Gram–Schmidt, least squares via the normal equations,
//! and the SVD through the eigenproblem of `A^T A` (§1). This crate
//! turns those motivations into library code built on `ata-core`:
//!
//! * [`cholesky`] — `G = L L^T` factorization and SPD solves;
//! * [`update`] — streaming factorization: rank-k Cholesky/LDLᵀ
//!   updates and downdates in `O(n²k)`, plus the `O(n²)`-per-shift
//!   [`update::ShiftedSolver`] behind ridge lambda paths;
//! * [`triangular`] — forward/backward substitution;
//! * [`lstsq`] — normal-equations least squares (`A^T A x = A^T b`);
//! * [`eigen`] — cyclic Jacobi eigensolver for symmetric matrices;
//! * [`svd`] — singular values/vectors of `A` from the eigen
//!   decomposition of its Gram matrix;
//! * [`ortho`] — modified Gram–Schmidt and the one-product
//!   orthogonality check.
//!
//! Numerical scope: these are robust textbook implementations meant for
//! the well-conditioned regimes where the normal-equations approach is
//! appropriate (forming `A^T A` squares the condition number — the
//! classical caveat, documented per function).

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod eigen;
pub mod lstsq;
pub mod ortho;
pub mod ridge;
pub mod svd;
pub mod triangular;
pub mod update;

pub use cholesky::{
    cholesky_factor, cholesky_solve, cholesky_solve_in_place, cholesky_solve_multi, CholeskyError,
};
pub use eigen::jacobi_eigen;
pub use lstsq::solve_normal_equations;
pub use ortho::{mgs_orthonormalize, orthogonality_defect};
pub use ridge::RidgeSolver;
pub use svd::singular_values;
pub use update::{LdltFactor, ShiftedSolver, UpdateError};

use ata_core::{parallel::ata_s_kind, serial::ata_into_with_kind, AtaOptions};
use ata_mat::{MatRef, Matrix, Scalar};
use ata_strassen::StrassenWorkspace;

/// Internal Gram plumbing: the lower triangle of `A^T A` honoring the
/// legacy [`AtaOptions`] knobs, through the non-deprecated core entry
/// points. The serial case runs inline on the calling thread (no pool
/// spawn-up, and thread-local scalar state like `Tracked` counters
/// stays observable); `threads > 1` goes through AtA-S. This keeps the
/// crate's stable `AtaOptions` signatures off the deprecated `_with`
/// wrappers.
pub(crate) fn gram_lower_opts<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    let n = a.cols();
    let mut c = Matrix::zeros(n, n);
    if opts.threads <= 1 {
        let mut ws = StrassenWorkspace::empty();
        ata_into_with_kind(
            T::ONE,
            a,
            &mut c.as_mut(),
            &opts.cache,
            opts.strassen,
            &mut ws,
        );
    } else {
        ata_s_kind(
            T::ONE,
            a,
            &mut c.as_mut(),
            opts.threads,
            &opts.cache,
            opts.strassen,
        );
    }
    c
}

/// [`gram_lower_opts`] with both triangles filled.
pub(crate) fn gram_full_opts<T: Scalar>(a: MatRef<'_, T>, opts: &AtaOptions) -> Matrix<T> {
    let mut c = gram_lower_opts(a, opts);
    c.mirror_lower_to_upper();
    c
}
